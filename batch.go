package maya

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"

	"maya/internal/core"
)

// Request is one workload evaluation in a PredictBatch call.
type Request struct {
	// Workload is the training program to predict.
	Workload Workload
	// Options carries the same per-call knobs Predict accepts
	// (WithModelFLOPs, WithDType, WithOracleAnnotation,
	// WithStallBreakdown, ...). A WithTimeline recorder must be
	// unique to its request: batch requests simulate concurrently,
	// and a recorder shared between them would interleave runs.
	Options []PredictOption
}

// BatchResult pairs one request's report with its error. Exactly one
// of the two is set: a request that fails (invalid workload,
// emulation error, cancellation) carries its own error and does not
// affect its neighbors. Out-of-memory configurations are reports, not
// errors.
type BatchResult struct {
	Report *Report
	Err    error
}

// batchConfig collects PredictBatch options.
type batchConfig struct {
	concurrency int
}

// BatchOption customizes a PredictBatch call.
type BatchOption func(*batchConfig)

// WithBatchConcurrency bounds the worker pool evaluating the batch.
// The default is runtime.GOMAXPROCS(0).
func WithBatchConcurrency(n int) BatchOption {
	return func(c *batchConfig) { c.concurrency = n }
}

// captureKey identifies requests that can share one capture: same
// workload value and same capture-relevant settings (collation
// validation, silicon seed). Annotation and simulation knobs —
// oracle, netsim, physical replay, FLOPs, timelines, stall
// breakdowns — do not affect the capture and may differ freely
// within a group.
type captureKey struct {
	w        Workload
	validate bool
	seed     uint64
}

// sharedCapture captures once on first demand; later requests in the
// group wait for (or reuse) the same artifact.
type sharedCapture struct {
	once sync.Once
	cap  *core.Capture
	paid bool // the capturing call actually emulated (capture-cache miss)
	err  error
}

// get returns the group's capture, running it if nobody has yet. The
// capture itself goes through captureFor, so a predictor-level
// CaptureCache is consulted first (cross-call reuse) while the
// batch-local group still guarantees at most one capture per
// identical workload even under cache eviction pressure. paid
// reports whether THIS call performed the emulation — at most one
// request per group, and none on a cache hit — and only its report
// carries the capture's emulate/collate stage timings.
func (sc *sharedCapture) get(ctx context.Context, p *Predictor, w Workload, s predictSettings) (cap *core.Capture, paid bool, err error) {
	ran := false
	sc.once.Do(func() {
		ran = true
		sc.cap, sc.paid, sc.err = p.captureFor(ctx, p.capturePipeline(s), w, s)
	})
	return sc.cap, ran && sc.paid, sc.err
}

// batchCaptureKey builds the sharing key for a request, reporting
// ok=false for workload values that cannot be map keys. The check is
// on the value, not just the type: an otherwise-comparable workload
// holding a non-comparable value in an interface field would panic
// the map insert.
func (p *Predictor) batchCaptureKey(w Workload, s predictSettings) (captureKey, bool) {
	if v := reflect.ValueOf(w); !v.IsValid() || !v.Comparable() {
		return captureKey{}, false
	}
	k := captureKey{w: w, validate: p.opts.Validate, seed: p.opts.Seed}
	if s.validate != nil {
		k.validate = *s.validate
	}
	if s.seed != nil {
		k.seed = *s.seed
	}
	return k, true
}

// PredictBatch evaluates many workloads through a bounded worker pool
// sharing one trained estimator suite — the primitive for scenario
// sweeps ("these 500 candidate deployments, tonight") and request
// serving. Results are positional: results[i] answers reqs[i].
//
// Requests that evaluate the same workload value (with the same
// capture-relevant settings) share one capture: the emulate and
// collate stages run once and every variant — learned, oracle,
// netsim, physical replay — simulates from the same Trace artifact.
// Each capture carries its estimate plan, so the first learned
// simulate of a (capture, suite) pair resolves every unique kernel
// shape once and later requests annotate by a single table copy, and
// every replay draws its simulation engine from the process-wide
// pool instead of reallocating one.
//
// Per-request failures are isolated in their BatchResult. The
// returned error is non-nil only when the whole batch is doomed —
// ctx was cancelled, or the shared suite failed to resolve; the
// positional results are still returned, every unfinished request
// carrying that error.
func (p *Predictor) PredictBatch(ctx context.Context, reqs []Request, opts ...BatchOption) ([]BatchResult, error) {
	cfg := batchConfig{concurrency: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}

	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results, ctx.Err()
	}

	// Resolve the shared suite once, up front, unless every request
	// annotates with ground truth: workers must never race into
	// training, and a batch doomed by a failing (or cancelled)
	// training should fail before any emulation starts.
	for _, r := range reqs {
		s := applyPredictOptions(r.Options)
		if r.Workload == nil || s.oracle || s.physical {
			continue
		}
		if _, err := p.resolveSuite(ctx, s); err != nil {
			for i := range results {
				results[i] = BatchResult{Err: err}
			}
			return results, err
		}
		break
	}

	// Group requests that can reuse one capture. Building an entry per
	// distinct (workload, capture-settings) key costs nothing for
	// singletons — their capture path equals Predict's — and turns
	// repeated workloads into a single emulate+collate.
	shared := make(map[captureKey]*sharedCapture)
	for _, r := range reqs {
		if r.Workload == nil {
			continue
		}
		if k, ok := p.batchCaptureKey(r.Workload, applyPredictOptions(r.Options)); ok {
			if shared[k] == nil {
				shared[k] = &sharedCapture{}
			}
		}
	}

	workers := cfg.concurrency
	if workers > len(reqs) {
		workers = len(reqs)
	}
	// Estimate sharing needs no batch-local layer: requests that share
	// a capture share its capture-attached estimate plan, so the first
	// simulate of each (capture, suite) pair resolves every unique
	// kernel shape once and the rest fill their overlays by copy.
	idx := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := reqs[i]
				if r.Workload == nil {
					results[i] = BatchResult{Err: errors.New("maya: batch request with nil workload")}
					continue
				}
				results[i] = p.evalBatchRequest(ctx, r.Workload, applyPredictOptions(r.Options), shared)
			}
		}()
	}

feed:
	for i := range reqs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Report == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// evalBatchRequest runs one request, reusing the group capture when
// the workload is shareable (and, through it, the predictor's
// CaptureCache when one is configured — see sharedCapture.get).
func (p *Predictor) evalBatchRequest(ctx context.Context, w Workload, s predictSettings, shared map[captureKey]*sharedCapture) BatchResult {
	k, ok := p.batchCaptureKey(w, s)
	if !ok || shared[k] == nil {
		rep, err := p.predict(ctx, w, s)
		return BatchResult{Report: rep, Err: err}
	}
	c, paid, err := shared[k].get(ctx, p, w, s)
	if err != nil {
		return BatchResult{Err: err}
	}
	pipe, err := p.pipelineFor(ctx, s)
	if err != nil {
		return BatchResult{Err: err}
	}
	// Only the request that performed the capture reports its cost;
	// the rest reused the artifact and report zero emulate/collate,
	// so stage timings sum correctly across the batch.
	rep, err := p.simulateCapture(ctx, pipe, c, s, paid)
	return BatchResult{Report: rep, Err: err}
}
