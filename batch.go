package maya

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"maya/internal/estimator"
)

// Request is one workload evaluation in a PredictBatch call.
type Request struct {
	// Workload is the training program to predict.
	Workload Workload
	// Options carries the same per-call knobs Predict accepts
	// (WithModelFLOPs, WithDType, WithOracleAnnotation, ...).
	Options []PredictOption
}

// BatchResult pairs one request's report with its error. Exactly one
// of the two is set: a request that fails (invalid workload,
// emulation error, cancellation) carries its own error and does not
// affect its neighbors. Out-of-memory configurations are reports, not
// errors.
type BatchResult struct {
	Report *Report
	Err    error
}

// batchConfig collects PredictBatch options.
type batchConfig struct {
	concurrency int
}

// BatchOption customizes a PredictBatch call.
type BatchOption func(*batchConfig)

// WithBatchConcurrency bounds the worker pool evaluating the batch.
// The default is runtime.GOMAXPROCS(0).
func WithBatchConcurrency(n int) BatchOption {
	return func(c *batchConfig) { c.concurrency = n }
}

// PredictBatch evaluates many workloads through a bounded worker pool
// sharing one trained estimator suite — the primitive for scenario
// sweeps ("these 500 candidate deployments, tonight") and request
// serving. Results are positional: results[i] answers reqs[i].
//
// Per-request failures are isolated in their BatchResult. The
// returned error is non-nil only when the whole batch is doomed —
// ctx was cancelled, or the shared suite failed to resolve; the
// positional results are still returned, every unfinished request
// carrying that error.
func (p *Predictor) PredictBatch(ctx context.Context, reqs []Request, opts ...BatchOption) ([]BatchResult, error) {
	cfg := batchConfig{concurrency: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}

	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results, ctx.Err()
	}

	// Resolve the shared suite once, up front, unless every request
	// annotates with the oracle: workers must never race into
	// training, and a batch doomed by a failing (or cancelled)
	// training should fail before any emulation starts.
	for _, r := range reqs {
		if r.Workload == nil || applyPredictOptions(r.Options).oracle {
			continue
		}
		if _, err := p.resolveSuite(ctx); err != nil {
			for i := range results {
				results[i] = BatchResult{Err: err}
			}
			return results, err
		}
		break
	}

	workers := cfg.concurrency
	if workers > len(reqs) {
		workers = len(reqs)
	}
	// One estimate memo for the whole batch: sweep configurations of a
	// model share most kernel shapes, so later requests skip the
	// forest inference their predecessors already did.
	memo := estimator.NewKernelMemo()
	idx := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := reqs[i]
				if r.Workload == nil {
					results[i] = BatchResult{Err: errors.New("maya: batch request with nil workload")}
					continue
				}
				s := applyPredictOptions(r.Options)
				s.memo = memo
				rep, err := p.predict(ctx, r.Workload, s)
				results[i] = BatchResult{Report: rep, Err: err}
			}
		}()
	}

feed:
	for i := range reqs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Report == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}
