package maya_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"maya"
	"maya/internal/cuda"
	"maya/internal/workload"
)

// stubJob builds a one-rank workload that drives a few kernels. With
// WithOracleAnnotation these predict without any estimator training,
// keeping batch tests fast.
func stubJob(name string, kernels int, body func(dev cuda.Device) error) maya.Request {
	w := workload.Func{
		JobName: name,
		Ranks:   1,
		Body: func(rank int, dev cuda.Device) error {
			if body != nil {
				if err := body(dev); err != nil {
					return err
				}
			}
			ptr, err := dev.Malloc(1 << 20)
			if err != nil {
				return err
			}
			for i := 0; i < kernels; i++ {
				k := cuda.KernelDesc{
					Name: "vectorized_elementwise_kernel", Dims: []int{1 << 16},
					Bytes: 1 << 18, FLOPs: 1 << 16, DType: "bf16",
				}
				if err := dev.LaunchKernel(k, cuda.DefaultStream); err != nil {
					return err
				}
			}
			if err := dev.DeviceSynchronize(); err != nil {
				return err
			}
			return dev.Free(ptr)
		},
	}
	return maya.Request{Workload: w, Options: []maya.PredictOption{maya.WithOracleAnnotation()}}
}

func testPredictor(t *testing.T) *maya.Predictor {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM,
		maya.WithEstimatorCache(maya.NewEstimatorCache()))
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestPredictBatchOrdering(t *testing.T) {
	pred := testPredictor(t)
	const n = 12
	reqs := make([]maya.Request, n)
	for i := range reqs {
		reqs[i] = stubJob(fmt.Sprintf("job-%02d", i), 4+i, nil)
	}
	results, err := pred.PredictBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results for %d requests", len(results), n)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		want := fmt.Sprintf("job-%02d", i)
		if res.Report.Workload != want {
			t.Errorf("results[%d] answers %q, want %q (ordering broken)", i, res.Report.Workload, want)
		}
	}
}

func TestPredictBatchErrorIsolation(t *testing.T) {
	pred := testPredictor(t)
	boom := errors.New("boom")
	reqs := []maya.Request{
		stubJob("ok-one", 4, nil),
		{Workload: nil}, // invalid request
		stubJob("fails", 2, func(cuda.Device) error { return boom }),
		// An allocation beyond the 32 GiB V100 is an OOM *report*, not
		// an error.
		stubJob("oom", 2, func(dev cuda.Device) error {
			_, err := dev.Malloc(1 << 45)
			return err
		}),
		stubJob("ok-two", 4, nil),
	}
	results, err := pred.PredictBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("batch-level error despite per-request isolation: %v", err)
	}
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("healthy requests failed: %v / %v", results[0].Err, results[4].Err)
	}
	if results[1].Err == nil {
		t.Fatal("nil workload did not error")
	}
	if results[2].Err == nil || !errors.Is(results[2].Err, boom) {
		t.Fatalf("failing workload: err = %v, want %v", results[2].Err, boom)
	}
	if results[3].Err != nil {
		t.Fatalf("OOM config must be a report, got error %v", results[3].Err)
	}
	if !results[3].Report.OOM {
		t.Fatalf("OOM config not flagged: %+v", results[3].Report)
	}
}

func TestPredictBatchConcurrencyLimit(t *testing.T) {
	pred := testPredictor(t)
	const limit = 2
	var inFlight, peak atomic.Int64
	reqs := make([]maya.Request, 10)
	for i := range reqs {
		reqs[i] = stubJob(fmt.Sprintf("c%d", i), 2, func(cuda.Device) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			inFlight.Add(-1)
			return nil
		})
	}
	results, err := pred.PredictBatch(context.Background(), reqs, maya.WithBatchConcurrency(limit))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent evaluations, limit %d", p, limit)
	}
	if p := peak.Load(); p == 0 {
		t.Fatal("no request ever ran")
	}
}

func TestPredictBatchCancellation(t *testing.T) {
	pred := testPredictor(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	reqs := make([]maya.Request, 32)
	for i := range reqs {
		reqs[i] = stubJob(fmt.Sprintf("s%d", i), 2, func(cuda.Device) error {
			started <- struct{}{}
			time.Sleep(10 * time.Millisecond)
			return nil
		})
	}
	done := make(chan struct{})
	var results []maya.BatchResult
	var err error
	go func() {
		defer close(done)
		results, err = pred.PredictBatch(ctx, reqs, maya.WithBatchConcurrency(2))
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var unfinished int
	for _, res := range results {
		if res.Err != nil && errors.Is(res.Err, context.Canceled) {
			unfinished++
		}
	}
	if unfinished == 0 {
		t.Fatal("cancellation finished every request — nothing was cut short")
	}
}
