package maya_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Each
// Benchmark prints the experiment's rows once — running
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at MAYA_EXP_SCALE=quick (default;
// set MAYA_EXP_SCALE=full for the paper-sized sweeps). Experiment
// state (trained estimator suites, accuracy sweeps, searches) is
// memoized in a shared environment, so repeated benchmark iterations
// measure cache-hit cost while the first iteration does the work.
//
// Micro-benchmarks at the bottom measure the core engines themselves
// (emulation, simulation, forest inference, CMA-ES) for -benchmem.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"maya"
	"maya/internal/core"
	"maya/internal/cuda"
	"maya/internal/emulator"
	"maya/internal/estimator"
	"maya/internal/experiments"
	"maya/internal/faults"
	"maya/internal/forest"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/prand"
	"maya/internal/silicon"
	"maya/internal/sim"
	"maya/internal/trace"
	"maya/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	printedMu    sync.Mutex
	printed      = map[string]bool{}
)

func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.ScaleFromEnv())
	})
	return benchEnv
}

// runExperiment executes one registered experiment, printing its
// table the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(context.Background(), id, env())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			fmt.Fprintln(os.Stdout)
			tbl.Render(os.Stdout)
		}
		printedMu.Unlock()
	}
}

// --- One benchmark per paper artifact (DESIGN.md experiment index) ---

func BenchmarkFig2CrossDeployment(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkTable1Capabilities(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkTable2KnobEffects(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkFig7PredictionAccuracy(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8CostOfSelection(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9ErrorCDF(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTable3OracleBreakdown(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkTable4Generality(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkFig10ResNet(b *testing.B)            { runExperiment(b, "fig10") }
func BenchmarkFig11Search(b *testing.B)            { runExperiment(b, "fig11") }
func BenchmarkFig12HyperscaleMFU(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13StackRuntime(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14DedupAblation(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15TrialBreakdown(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkTable6SearchStages(b *testing.B)     { runExperiment(b, "table6") }
func BenchmarkTable7KernelMAPEH100(b *testing.B)   { runExperiment(b, "table7") }
func BenchmarkTable8KernelMAPEV100(b *testing.B)   { runExperiment(b, "table8") }
func BenchmarkTable9KernelMAPEA40(b *testing.B)    { runExperiment(b, "table9") }
func BenchmarkFig16SearchAlgorithms(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkTable10PruningTactics(b *testing.B)  { runExperiment(b, "table10") }
func BenchmarkFig17StallBreakdown(b *testing.B)    { runExperiment(b, "fig17") }
func BenchmarkNetsimValidation(b *testing.B)       { runExperiment(b, "netsim") }
func BenchmarkFig18FaultSweep(b *testing.B)        { runExperiment(b, "fig18") }

// --- Engine micro-benchmarks ---

// BenchmarkEmulateMegatronRank measures transparent-emulation
// throughput: one GPT-3 2.7B rank, tp2/pp2, 4 microbatches.
func BenchmarkEmulateMegatronRank(b *testing.B) {
	m, err := framework.NewMegatron(framework.MegatronConfig{
		Model: models.GPT3_2_7B(), NGPUs: 8, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4,
		ActRecompute: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	cluster := hardware.DGXV100(1)
	b.ReportAllocs()
	b.ResetTimer()
	var ops int
	for i := 0; i < b.N; i++ {
		em := emulator.New(emulator.Config{Rank: 0, World: 8, GPU: cluster.Node.GPU, Host: cluster.Host})
		if err := m.Run(0, em); err != nil {
			b.Fatal(err)
		}
		ops = len(em.Trace().Ops)
	}
	b.ReportMetric(float64(ops), "trace-ops")
}

// simBenchJob builds the annotated 8-worker megatron job the
// simulator micro-benchmarks replay, returning it with its op count.
func simBenchJob(b *testing.B) (*trace.Job, int) {
	b.Helper()
	m, err := framework.NewMegatron(framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	cluster := hardware.DGXV100(1)
	var workers []*trace.Worker
	for r := 0; r < 8; r++ {
		em := emulator.New(emulator.Config{Rank: r, World: 8, GPU: cluster.Node.GPU, Host: cluster.Host})
		if err := m.Run(r, em); err != nil {
			b.Fatal(err)
		}
		workers = append(workers, em.Trace())
	}
	job, err := trace.NewJob(workers)
	if err != nil {
		b.Fatal(err)
	}
	// Constant annotation is enough for a throughput benchmark.
	totalOps := 0
	for _, w := range job.Workers {
		for i := range w.Ops {
			if w.Ops[i].IsDeviceWork() {
				w.Ops[i].Dur = 20 * time.Microsecond
			}
			totalOps++
		}
	}
	return job, totalOps
}

// BenchmarkSimRun measures discrete-event simulation throughput on an
// annotated 8-worker job, one fresh engine per run. The typed-event
// loop keeps allocs/op in the hundreds where the closure-heap engine
// paid two heap allocations per scheduled event (~62k on this
// fixture).
func BenchmarkSimRun(b *testing.B) {
	job, totalOps := simBenchJob(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), job, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalOps)/float64(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mops/s")
}

// BenchmarkSimRunPooled is BenchmarkSimRun through the engine pool —
// the steady state of batch sweeps and search trials, where stream,
// heap and interval storage is reused across runs.
func BenchmarkSimRunPooled(b *testing.B) {
	job, totalOps := simBenchJob(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPooled(context.Background(), job, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalOps)/float64(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mops/s")
}

// BenchmarkFaultsRecovery measures the fault-scenario walk on the
// annotated 8-worker job: a seeded MTBF failure process over a
// 100-iteration schedule, one wedge simulation per failure to price
// survivor idling, checkpoint rewind and redo priced analytically.
func BenchmarkFaultsRecovery(b *testing.B) {
	job, _ := simBenchJob(b)
	run := func(ctx context.Context, inj *sim.Injection, obs sim.Observer) (*sim.Report, error) {
		o := sim.Options{Faults: inj, Observer: obs}
		return sim.RunPooled(ctx, job, o)
	}
	perturbed, err := run(context.Background(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	iter := perturbed.IterTime()
	plan := &faults.Plan{
		Seed:            7,
		CheckpointEvery: 4,
		CheckpointCost:  iter / 20,
		MTBF:            20 * iter,
		Detect:          iter / 2,
		Restore:         iter / 4,
		Iterations:      100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var failures int
	for i := 0; i < b.N; i++ {
		rec, err := faults.Evaluate(context.Background(), plan, job, perturbed, run)
		if err != nil {
			b.Fatal(err)
		}
		failures = len(rec.Failures)
	}
	b.ReportMetric(float64(failures), "failures")
}

// BenchmarkTrainSuite measures full estimator-suite training on the
// synthetic LLM profile: per-kernel forests (column-presorted, grown
// through the bounded worker pool) plus the collective model. This is
// the cost a cold EstimatorCache pays per (cluster, profile kind).
func BenchmarkTrainSuite(b *testing.B) {
	cluster := hardware.DGXV100(1)
	oracle := silicon.NewOracle(cluster, 7)
	profile := estimator.SyntheticProfile(oracle, cluster, estimator.ProfileLLM, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimator.TrainSuite(profile, cluster, estimator.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateKernel measures one steady-state kernel estimate:
// stack-buffered features plus a flattened-forest walk. The contract
// is 0 allocs/op.
func BenchmarkEstimateKernel(b *testing.B) {
	cluster := hardware.DGXV100(1)
	suite, _, err := core.DefaultSuiteCache().SuiteFor(context.Background(), cluster, core.DefaultOracle(cluster), estimator.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	op := &trace.Op{Kind: trace.KindKernel, Name: "cublasGemmEx",
		Dims: []int{1, 4096, 4096, 4096}, FLOPs: 2 * 4096 * 4096 * 4096,
		Bytes: 2 * 3 * 4096 * 4096, DType: "bf16"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.EstimateKernel(op)
	}
}

// BenchmarkAnnotatePlan contrasts the two steady-state annotation
// paths on the 8-worker megatron fixture: the shape-memo baseline (a
// hash plus a sync.Map probe per op) versus the capture-attached
// estimate plan (one table copy into the pooled overlay). "build" is
// the one-time cost of resolving the plan.
func BenchmarkAnnotatePlan(b *testing.B) {
	ctx := context.Background()
	cluster := hardware.DGXV100(1)
	suite, _, err := core.DefaultSuiteCache().SuiteFor(ctx, cluster, core.DefaultOracle(cluster), estimator.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	job, _ := simBenchJob(b)

	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := suite.BuildEstimatePlan(ctx, job, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via-memo", func(b *testing.B) {
		memo := estimator.NewKernelMemo()
		ann := trace.NewAnnotations(job)
		// Warm once: steady state is what sweeps see.
		if err := suite.AnnotateInto(ctx, job, nil, nil, memo, ann); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ann := trace.AcquireAnnotations(job)
			if err := suite.AnnotateInto(ctx, job, nil, nil, memo, ann); err != nil {
				b.Fatal(err)
			}
			ann.Release()
		}
	})
	b.Run("via-plan", func(b *testing.B) {
		plan, err := suite.BuildEstimatePlan(ctx, job, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ann := trace.AcquireAnnotations(job)
			if !plan.Fill(ann) {
				b.Fatal("plan.Fill rejected the overlay")
			}
			ann.Release()
		}
	})
}

// BenchmarkForestPredict measures kernel-estimator inference.
func BenchmarkForestPredict(b *testing.B) {
	rng := prand.New(1)
	samples := make([]forest.Sample, 2000)
	for i := range samples {
		x := make([]float64, 14)
		for j := range x {
			x[j] = rng.Float64() * 30
		}
		samples[i] = forest.Sample{X: x, Y: x[0] + x[1]}
	}
	f, err := forest.Train(samples, forest.Options{Seed: 1, Trees: 16, MaxDepth: 12})
	if err != nil {
		b.Fatal(err)
	}
	probe := samples[17].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(probe)
	}
}

// BenchmarkEstimatorAnnotate measures trace annotation end to end.
func BenchmarkEstimatorAnnotate(b *testing.B) {
	cluster := hardware.DGXV100(1)
	m, err := framework.NewMegatron(framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	em := emulator.New(emulator.Config{Rank: 0, World: 8, GPU: cluster.Node.GPU, Host: cluster.Host})
	if err := m.Run(0, em); err != nil {
		b.Fatal(err)
	}
	job, err := trace.NewJob([]*trace.Worker{em.Trace()})
	if err != nil {
		b.Fatal(err)
	}
	suite, _, err := core.DefaultSuiteCache().SuiteFor(context.Background(), cluster, core.DefaultOracle(cluster), estimator.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := suite.Annotate(context.Background(), job, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPrediction is the headline number: full pipeline
// latency for one configuration (the unit of work in a search).
func BenchmarkEndToEndPrediction(b *testing.B) {
	cluster := hardware.DGXV100(1)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	model := models.GPT3_2_7B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 64, TP: 2, PP: 2, MicroBatches: 8,
		ActRecompute: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	flops := model.TrainFLOPsPerIter(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := pred.Predict(context.Background(), w,
			maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
		if err != nil {
			b.Fatal(err)
		}
		if rep.OOM {
			b.Fatal("unexpected OOM")
		}
	}
}

// BenchmarkCaptureReuse is the capture-once/simulate-many story: N
// evaluations of one workload as N full Predict calls versus one
// Capture plus N Simulate calls. The reuse path pays emulation and
// collation once, so it skips N-1 copies of the expensive front half
// (ground-truth annotation keeps the comparison free of estimator
// training).
func BenchmarkCaptureReuse(b *testing.B) {
	ctx := context.Background()
	cluster := hardware.DGXV100(1)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	model := models.GPT3_2_7B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 64, TP: 2, PP: 2, MicroBatches: 8,
		ActRecompute: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const simsPerCapture = 4
	flops := model.TrainFLOPsPerIter(64)
	opts := []maya.PredictOption{
		maya.WithOracleAnnotation(), maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16),
	}

	b.Run("repeated-predict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < simsPerCapture; j++ {
				if _, err := pred.Predict(ctx, w, opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("capture-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := pred.Capture(ctx, w)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < simsPerCapture; j++ {
				if _, err := pred.Simulate(ctx, tr, opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// The Simulate stage in isolation: annotation lands in a pooled
	// duration overlay and the engine comes from the process pool, so
	// the per-simulation cost no longer includes deep-copying the
	// captured job.
	b.Run("simulate-only", func(b *testing.B) {
		tr, err := pred.Capture(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pred.Simulate(ctx, tr, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// hideClassHints conceals a Megatron's ClassHinter and
// SelectiveLauncher so capture takes the full O(world) dynamic-dedup
// probe — the baseline BenchmarkCaptureHyperscale compares against.
type hideClassHints struct {
	m *framework.Megatron
}

func (h hideClassHints) Name() string                        { return h.m.Name() }
func (h hideClassHints) World() int                          { return h.m.World() }
func (h hideClassHints) Run(rank int, dev cuda.Device) error { return h.m.Run(rank, dev) }
func (h hideClassHints) CommGroups() map[uint64][]int        { return h.m.CommGroups() }
func (h hideClassHints) Probe() workload.Workload {
	if inner := h.m.Probe(); inner != workload.Workload(h.m) {
		return hideClassHints{m: inner.(*framework.Megatron)}
	}
	return h
}

// BenchmarkCaptureHyperscale measures the capture (emulate + collate)
// half of a prediction on a 256-rank megatron job under dynamic
// deduplication: the full probe emulates every rank once, the
// class-hint fast path emulates one representative per pipeline stage
// plus the verification sample. The ratio is the structural-dedup
// win, which grows linearly with the data-parallel degree.
func BenchmarkCaptureHyperscale(b *testing.B) {
	m, err := framework.NewMegatron(framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 256, GlobalBatch: 128,
		TP: 2, PP: 2, MicroBatches: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Cluster: hardware.DGXV100(32)}
	run := func(b *testing.B, w maya.Workload) {
		b.Helper()
		b.ReportAllocs()
		var emuls int
		for i := 0; i < b.N; i++ {
			c, err := pipe.Capture(context.Background(), w)
			if err != nil {
				b.Fatal(err)
			}
			if c.OOM {
				b.Fatal("unexpected OOM")
			}
			emuls = c.RankEmulations
		}
		b.ReportMetric(float64(emuls), "rank-emulations")
	}
	b.Run("full-probe", func(b *testing.B) { run(b, hideClassHints{m: m}) })
	b.Run("class-hints", func(b *testing.B) { run(b, m) })
}

// BenchmarkPredictBatch contrasts N sequential Predict calls with one
// PredictBatch over the same N configurations, both on a warm suite
// cache: the batch path's bounded worker pool is the win a scenario
// sweep sees.
func BenchmarkPredictBatch(b *testing.B) {
	ctx := context.Background()
	cluster := hardware.DGXV100(1)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		b.Fatal(err)
	}
	model := models.GPT3_1_3B()
	flops := model.TrainFLOPsPerIter(32)
	var reqs []maya.Request
	for _, cfg := range []framework.MegatronConfig{
		{TP: 1, PP: 2, MicroBatches: 2},
		{TP: 2, PP: 1, MicroBatches: 2},
		{TP: 2, PP: 2, MicroBatches: 2},
		{TP: 2, PP: 2, MicroBatches: 4},
		{TP: 4, PP: 2, MicroBatches: 2},
		{TP: 2, PP: 4, MicroBatches: 4},
		{TP: 4, PP: 1, MicroBatches: 2},
		{TP: 2, PP: 2, MicroBatches: 8, ActRecompute: true},
	} {
		cfg.Model, cfg.NGPUs, cfg.GlobalBatch = model, 8, 32
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, maya.Request{Workload: w, Options: []maya.PredictOption{
			maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16),
		}})
	}
	// Warm the suite so both paths measure pure evaluation.
	if _, err := pred.Predict(ctx, reqs[0].Workload, reqs[0].Options...); err != nil {
		b.Fatal(err)
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := pred.Predict(ctx, r.Workload, r.Options...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, err := pred.PredictBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkSearchThroughput measures recipe-search throughput
// (trials/sec) at Parallel 1/2/4/8 on the fig16 setups, with the
// capture cache warmed first so the number isolates the per-trial
// search cost: verdict fast path, domination abort, worker-affine
// simulation. CI archives it as BENCH_search.json.
func BenchmarkSearchThroughput(b *testing.B) {
	ctx := context.Background()
	setups := []struct {
		name    string
		cluster hardware.Cluster
		model   models.Transformer
		batch   int
	}{
		{"GPT3-2.7B/8xV100", hardware.DGXV100(1), models.GPT3_2_7B(), 64},
		{"GPT3-18.4B/64xH100", hardware.DGXH100(8), models.GPT3_18_4B(), 128},
	}
	const budget = 128
	for _, s := range setups {
		pred, err := maya.NewPredictor(s.cluster, maya.ProfileLLM,
			maya.WithCaptureCache(maya.NewCaptureCache(2048)))
		if err != nil {
			b.Fatal(err)
		}
		problem := maya.SearchProblem{Model: s.model, GlobalBatch: s.batch}
		base := maya.SearchOptions{Algorithm: "cma", Budget: budget, Seed: 7, EarlyStopWindow: -1}
		run := func(name string, opts maya.SearchOptions) {
			// Warm the estimator suite and the capture cache on this
			// variant's own trajectory: CMA-ES is deterministic at fixed
			// seed (and independent of Parallel), so the timed runs
			// revisit exactly the topologies the warm run captures.
			if _, err := pred.FindRecipe(ctx, problem, opts); err != nil {
				b.Fatal(err)
			}
			b.Run(name, func(b *testing.B) {
				trials := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := pred.FindRecipe(ctx, problem, opts)
					if err != nil {
						b.Fatal(err)
					}
					trials += len(out.History)
				}
				b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
			})
		}
		for _, par := range []int{1, 2, 4, 8} {
			opts := base
			opts.Parallel = par
			run(fmt.Sprintf("%s/p%d", s.name, par), opts)
		}
		// Baseline ablation: verdict fast path and domination abort
		// disabled, so every trial pays the full resolve+simulate cost
		// the search paid before those optimizations landed.
		ablated := base
		ablated.Parallel = 8
		ablated.DisableVerdictFastPath = true
		ablated.DominationSlack = -1
		run(fmt.Sprintf("%s/ablated-p8", s.name), ablated)
	}
}
