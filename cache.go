package maya

import (
	"context"

	"maya/internal/core"
)

// EstimatorCache holds trained estimator suites keyed by (cluster,
// profile kind). Training a suite — microbenchmark profiling plus
// random-forest fitting — is the expensive part of predictor setup,
// so suites are shared: across predictors, across batch requests and
// across searches.
//
// The cache is an explicit handle rather than hidden process state:
// services can pre-train with Warm at startup, watch hit/miss/trained
// counters through Stats, and drop stale suites with Evict or Purge
// (for example after swapping the modeled hardware). Predictors use
// DefaultEstimatorCache unless one is injected with
// WithEstimatorCache. All methods are safe for concurrent use.
type EstimatorCache struct {
	impl *core.SuiteCache
}

// NewEstimatorCache returns an empty, independent cache.
func NewEstimatorCache() *EstimatorCache {
	return &EstimatorCache{impl: core.NewSuiteCache()}
}

var defaultEstimatorCache = &EstimatorCache{impl: core.DefaultSuiteCache()}

// DefaultEstimatorCache returns the shared process-wide cache that
// predictors are born with.
func DefaultEstimatorCache() *EstimatorCache { return defaultEstimatorCache }

// Warm trains (or confirms) the estimator suite for a cluster and
// profile kind, so later predictions pay no training latency.
// Concurrent warms of the same key train once; the rest wait.
// Cancelling ctx aborts the training, which is then not cached — the
// next call retries.
func (c *EstimatorCache) Warm(ctx context.Context, cluster Cluster, kind ProfileKind) error {
	return c.impl.Warm(ctx, cluster, kind)
}

// Stats returns a snapshot of cache accounting: hits, misses, suites
// trained, evictions, training errors and current entries.
func (c *EstimatorCache) Stats() CacheStats { return c.impl.Stats() }

// SetTrainWorkers bounds the worker pool used when this cache trains
// a suite; the pool spans kernel classes and trees jointly. n <= 0
// restores the default (runtime.GOMAXPROCS). Trained suites are
// byte-identical for every worker count — this is purely a
// throughput/CPU-footprint knob (the CLIs expose it as
// -train-workers). It affects subsequent trainings only.
func (c *EstimatorCache) SetTrainWorkers(n int) { c.impl.SetTrainWorkers(n) }

// Evict drops the suite for a cluster and profile kind, reporting
// whether one was cached. The next lookup of that key retrains.
func (c *EstimatorCache) Evict(cluster Cluster, kind ProfileKind) bool {
	return c.impl.Evict(cluster, kind)
}

// Purge empties the cache, returning how many suites were dropped.
func (c *EstimatorCache) Purge() int { return c.impl.Purge() }
