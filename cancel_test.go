package maya_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"maya"
	"maya/internal/cuda"
)

// bigMegatron is a 64-rank GPT-3 workload whose full (no-dedup)
// emulation takes long enough that a mid-flight cancel lands while
// ranks are still being emulated.
func bigMegatron(t *testing.T) (*maya.Predictor, maya.Workload) {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(8), maya.ProfileLLM,
		maya.WithEstimatorCache(maya.NewEstimatorCache()), maya.WithoutDedup())
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_2_7B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 64, GlobalBatch: 128, TP: 2, PP: 4, MicroBatches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred, w
}

func TestPredictPreCancelledReturnsPromptly(t *testing.T) {
	pred, w := bigMegatron(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	// No oracle option: the call would have to train estimators, and
	// the pre-cancelled ctx must abort before that starts.
	_, err := pred.Predict(ctx, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict(pre-cancelled): err = %v, want context.Canceled", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("pre-cancelled Predict took %v, want immediate return", e)
	}
}

// firstRunSignal wraps a workload and announces the first rank
// starting, so the cancel lands deterministically mid-emulation
// regardless of how many ranks run in parallel.
type firstRunSignal struct {
	maya.Workload
	started chan struct{}
	once    sync.Once
}

func (s *firstRunSignal) Run(rank int, dev cuda.Device) error {
	s.once.Do(func() { close(s.started) })
	return s.Workload.Run(rank, dev)
}

func TestPredictMidFlightCancelReturnsPromptly(t *testing.T) {
	pred, inner := bigMegatron(t)
	w := &firstRunSignal{Workload: inner, started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Oracle annotation: no estimator training, so the cancel lands
		// inside the 64-rank emulation / simulation itself.
		_, err := pred.Predict(ctx, w, maya.WithOracleAnnotation())
		done <- err
	}()
	<-w.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Predict(mid-flight cancel): err = %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Predict did not observe mid-flight cancellation within 15s")
	}
}

func TestMeasureActualPreCancelled(t *testing.T) {
	pred, w := bigMegatron(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pred.MeasureActual(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeasureActual(pre-cancelled): err = %v, want context.Canceled", err)
	}
}

func TestFindRecipePreCancelled(t *testing.T) {
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM,
		maya.WithEstimatorCache(maya.NewEstimatorCache()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = pred.FindRecipe(ctx,
		maya.SearchProblem{Model: maya.GPT3_1_3B(), GlobalBatch: 32},
		maya.SearchOptions{Algorithm: "cma", Budget: 500, Parallel: 4, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FindRecipe(pre-cancelled): err = %v, want context.Canceled", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("pre-cancelled FindRecipe took %v (trained estimators?)", e)
	}
}

func TestFindRecipeMidFlightCancelStopsTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	// Shared default cache: the V100 suite is reused across the heavy
	// facade tests.
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		out *maya.SearchOutcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := pred.FindRecipe(ctx,
			maya.SearchProblem{Model: maya.GPT3_1_3B(), GlobalBatch: 32},
			maya.SearchOptions{Algorithm: "random", Budget: 100000, Parallel: 4, Seed: 3,
				EarlyStopWindow: -1})
		done <- res{out, err}
	}()
	time.Sleep(2 * time.Second) // let training + some trials run
	cancel()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("FindRecipe(mid-cancel): err = %v, want context.Canceled", r.err)
		}
		if r.out == nil || r.out.Stopped != "cancelled" {
			t.Fatalf("outcome = %+v, want Stopped == cancelled", r.out)
		}
		if len(r.out.History) >= 100000 {
			t.Fatal("search ran its full budget despite cancellation")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("FindRecipe did not stop after cancel")
	}
}
