package maya

import (
	"context"
	"fmt"
	"hash/fnv"

	"maya/internal/core"
	"maya/internal/hardware"
	"maya/internal/workload"
)

// CaptureCacheStats is a snapshot of CaptureCache accounting.
type CaptureCacheStats struct {
	// Hits counts lookups served by a completed (or in-flight)
	// capture.
	Hits int64
	// Misses counts lookups that had to run the capture.
	Misses int64
	// Evictions counts entries dropped by the LRU bound or Purge.
	Evictions int64
	// Errors counts captures that failed (including cancellations);
	// failed entries are dropped so later lookups retry.
	Errors int64
	// Entries is the number of captures currently cached.
	Entries int
}

// CaptureCache memoizes Trace captures across calls, keyed by a
// canonical workload fingerprint (workload.Fingerprinter) plus the
// cluster and every capture-relevant option. Emulation and collation
// are the expensive half of a prediction; with a capture cache,
// repeated evaluations of the same topology — across Predict calls,
// PredictBatch sweeps and FindRecipe trials — pay them once.
//
// Captures are immutable, so cached entries are shared, not copied.
// Exactly one caller captures per key; concurrent callers of the same
// key wait for the in-flight capture (honoring their own ctx). The
// cache is bounded: least-recently-used entries are evicted beyond
// the configured capacity. All methods are safe for concurrent use.
//
// Inject one with WithCaptureCache; predictors without it capture
// per call (batch-local sharing still applies inside PredictBatch).
// Workloads that do not implement workload.Fingerprinter bypass the
// cache.
type CaptureCache struct {
	impl *core.CaptureLRU
}

// NewCaptureCache returns an empty cache bounded to maxEntries
// captures (minimum 1). Size it to the working set of distinct
// topologies: a capture of a large job holds its full collated trace,
// so the bound is what keeps hyperscale sweeps from retaining every
// candidate ever evaluated.
func NewCaptureCache(maxEntries int) *CaptureCache {
	return &CaptureCache{impl: core.NewCaptureLRU(maxEntries)}
}

// Stats returns a snapshot of the cache counters.
func (c *CaptureCache) Stats() CaptureCacheStats {
	s := c.impl.Stats()
	return CaptureCacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Errors: s.Errors, Entries: s.Entries,
	}
}

// Purge empties the cache, returning how many captures were dropped.
// In-flight captures are unaffected (their callers still receive
// them) but will not be cached.
func (c *CaptureCache) Purge() int { return c.impl.Purge() }

// WithCaptureCache injects the capture cache the predictor consults
// before emulating: Predict, Capture, PredictBatch and FindRecipe all
// share it, so repeated evaluations of one topology across calls
// reuse a single capture.
func WithCaptureCache(cache *CaptureCache) PredictorOption {
	return predictorOption(func(c *predictorConfig) { c.captures = cache })
}

// captureCacheKey builds the cache key for a workload under the
// call's capture-relevant settings, reporting ok=false for workloads
// without a canonical fingerprint.
func (p *Predictor) captureCacheKey(w Workload, s predictSettings) (string, bool) {
	fp, ok := w.(workload.Fingerprinter)
	if !ok {
		return "", false
	}
	opts := p.opts
	if s.validate != nil {
		opts.Validate = *s.validate
	}
	if s.seed != nil {
		opts.Seed = *s.seed
	}
	return fmt.Sprintf("%s|cluster=%s/%x|validate=%t|seed=%d|nodedup=%t|sel=%t",
		fp.Fingerprint(), p.cluster.Name, clusterFingerprint(p.cluster), opts.Validate,
		opts.Seed, opts.NoDedup, opts.SelectiveLaunch), true
}

// clusterFingerprint hashes the full hardware description, so two
// clusters sharing a name but differing in GPU/host/interconnect
// parameters (emulation inputs all) never share a cache entry. Struct
// rendering via %+v is deterministic: fmt prints map keys sorted.
func clusterFingerprint(c hardware.Cluster) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", c)
	return h.Sum64()
}

// captureFor returns the capture for a workload, consulting the
// predictor's capture cache when one is configured and the workload
// is fingerprintable. paid reports whether this call performed the
// emulation (cache misses and uncached paths) — only then should a
// report carry the capture's emulate/collate stage cost.
func (p *Predictor) captureFor(ctx context.Context, pipe *core.Pipeline, w Workload, s predictSettings) (c *core.Capture, paid bool, err error) {
	if p.captures == nil {
		c, err = pipe.Capture(ctx, w)
		return c, true, err
	}
	key, ok := p.captureCacheKey(w, s)
	if !ok {
		c, err = pipe.Capture(ctx, w)
		return c, true, err
	}
	return p.captures.impl.Get(ctx, key, func() (*core.Capture, error) {
		return pipe.Capture(ctx, w)
	})
}
