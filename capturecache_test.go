package maya_test

// Tests of the fingerprinted capture cache: cross-call reuse, LRU
// bounding, single-flight under concurrency (exercised by the CI
// -race job) and sharing between Predict, PredictBatch and Capture.
// Everything annotates with ground truth so no estimator training is
// needed.

import (
	"context"
	"sync"
	"testing"

	"maya"
)

func cachedPredictor(t *testing.T, cc *maya.CaptureCache) (*maya.Predictor, maya.Workload) {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM, maya.WithCaptureCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred, w
}

func TestCaptureCacheReusesAcrossPredictCalls(t *testing.T) {
	ctx := context.Background()
	cc := maya.NewCaptureCache(8)
	pred, w := cachedPredictor(t, cc)

	first, err := pred.Predict(ctx, w, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	second, err := pred.Predict(ctx, w, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if s := cc.Stats(); s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats after two predicts = %+v, want 1 miss / 1 hit / 1 entry", s)
	}
	// The cached capture must not change the answer, and the reusing
	// call must not report emulation cost it did not pay.
	if first.Stages.Emulate <= 0 {
		t.Error("first predict should carry emulation cost")
	}
	if second.Stages.Emulate != 0 || second.Stages.Collate != 0 {
		t.Errorf("cached predict reports capture stages it skipped: %+v", second.Stages)
	}
	f, s := *first, *second
	f.Stages, s.Stages = maya.StageTimings{}, maya.StageTimings{}
	if f != s {
		t.Errorf("cached prediction diverged:\nfirst:  %+v\nsecond: %+v", f, s)
	}

	// A distinct recipe is a distinct key.
	w2, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Predict(ctx, w2, maya.WithOracleAnnotation()); err != nil {
		t.Fatal(err)
	}
	if s := cc.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("stats after distinct recipe = %+v, want 2 misses / 2 entries", s)
	}

	// A different capture seed must not hit the old entry.
	if _, err := pred.Predict(ctx, w, maya.WithOracleAnnotation(), maya.WithSeed(42)); err != nil {
		t.Fatal(err)
	}
	if s := cc.Stats(); s.Misses != 3 {
		t.Fatalf("seeded predict reused an incompatible capture: %+v", s)
	}
}

func TestCaptureCacheSharedByCaptureAndBatch(t *testing.T) {
	ctx := context.Background()
	cc := maya.NewCaptureCache(8)
	pred, w := cachedPredictor(t, cc)

	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	// A batch over the same workload reuses the explicit capture.
	reqs := []maya.Request{
		{Workload: w, Options: []maya.PredictOption{maya.WithOracleAnnotation()}},
		{Workload: w, Options: []maya.PredictOption{maya.WithPhysicalReplay()}},
	}
	results, err := pred.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Report.Stages.Emulate != 0 {
			t.Errorf("request %d re-paid emulation despite the cache", i)
		}
	}
	// The whole batch group resolves through one cache lookup (a hit
	// on the explicit Capture's entry).
	s := cc.Stats()
	if s.Misses != 1 || s.Hits < 1 {
		t.Fatalf("stats = %+v, want 1 miss and ≥1 hit", s)
	}
	// Simulating from the explicitly captured trace still agrees with
	// the batch's cached-capture result.
	rep, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	a, b := *rep, *results[0].Report
	a.Stages, b.Stages = maya.StageTimings{}, maya.StageTimings{}
	if a != b {
		t.Errorf("trace-simulate and cached-batch reports diverge:\n%+v\n%+v", a, b)
	}
}

// TestBatchLocalSharingSurvivesEvictionPressure pins the layering:
// batch-local capture sharing stays the outer layer, so a tiny cache
// being thrashed by interleaved topologies cannot make one batch
// re-emulate a workload value it already captured.
func TestBatchLocalSharingSurvivesEvictionPressure(t *testing.T) {
	ctx := context.Background()
	cc := maya.NewCaptureCache(1)
	pred, w := cachedPredictor(t, cc)
	w2, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// w and w2 interleaved: with capacity 1 the cache cannot hold
	// both, but each value must still emulate at most once.
	reqs := []maya.Request{
		{Workload: w, Options: []maya.PredictOption{maya.WithOracleAnnotation()}},
		{Workload: w2, Options: []maya.PredictOption{maya.WithOracleAnnotation()}},
		{Workload: w, Options: []maya.PredictOption{maya.WithPhysicalReplay()}},
		{Workload: w2, Options: []maya.PredictOption{maya.WithPhysicalReplay()}},
	}
	results, err := pred.PredictBatch(ctx, reqs, maya.WithBatchConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	var emulationsPaid int
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Report.Stages.Emulate > 0 {
			emulationsPaid++
		}
	}
	if emulationsPaid > 2 {
		t.Fatalf("%d requests paid emulation, want ≤2 (one per distinct workload)", emulationsPaid)
	}
}

func TestCaptureCacheLRUEviction(t *testing.T) {
	ctx := context.Background()
	cc := maya.NewCaptureCache(1)
	pred, w := cachedPredictor(t, cc)
	w2, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, wl := range []maya.Workload{w, w2, w} {
		if _, err := pred.Predict(ctx, wl, maya.WithOracleAnnotation()); err != nil {
			t.Fatal(err)
		}
	}
	s := cc.Stats()
	if s.Misses != 3 || s.Evictions != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 3 misses / 2 evictions / 1 entry (capacity 1)", s)
	}
	if n := cc.Purge(); n != 1 {
		t.Fatalf("Purge dropped %d entries, want 1", n)
	}
	if s := cc.Stats(); s.Entries != 0 {
		t.Fatalf("entries after purge = %d", s.Entries)
	}
}

// TestCaptureCacheConcurrentSingleFlight drives many concurrent
// predictions of one topology through a shared cache: exactly one
// must pay the capture. The CI -race job runs this under the race
// detector.
func TestCaptureCacheConcurrentSingleFlight(t *testing.T) {
	ctx := context.Background()
	cc := maya.NewCaptureCache(4)
	pred, w := cachedPredictor(t, cc)

	const callers = 8
	reports := make([]*maya.Report, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = pred.Predict(ctx, w, maya.WithOracleAnnotation())
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	s := cc.Stats()
	if s.Misses != 1 || s.Hits != callers-1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / 1 entry", s, callers-1)
	}
	want := *reports[0]
	want.Stages = maya.StageTimings{}
	for i, r := range reports[1:] {
		got := *r
		got.Stages = maya.StageTimings{}
		if got != want {
			t.Fatalf("caller %d diverged:\n%+v\n%+v", i+1, got, want)
		}
	}
}

func TestFindRecipeSharesCaptureCache(t *testing.T) {
	if testing.Short() {
		t.Skip("search needs a trained suite")
	}
	ctx := context.Background()
	cc := maya.NewCaptureCache(64)
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM, maya.WithCaptureCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	problem := maya.SearchProblem{Model: maya.GPT3_1_3B(), GlobalBatch: 32}
	opts := maya.SearchOptions{Algorithm: "grid", Budget: 12, Seed: 7}
	if _, err := pred.FindRecipe(ctx, problem, opts); err != nil {
		t.Fatal(err)
	}
	first := cc.Stats()
	if first.Misses == 0 {
		t.Fatalf("search did not populate the capture cache: %+v", first)
	}
	// Re-running the same search re-evaluates the same topologies:
	// every capture must now be a hit.
	if _, err := pred.FindRecipe(ctx, problem, opts); err != nil {
		t.Fatal(err)
	}
	second := cc.Stats()
	if second.Misses != first.Misses {
		t.Fatalf("second search re-captured: %+v -> %+v", first, second)
	}
	if second.Hits <= first.Hits {
		t.Fatalf("second search did not hit the cache: %+v -> %+v", first, second)
	}
}
