// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive the
// performance trajectory of the hot paths as an artifact:
//
//	go test -run '^$' -bench 'SimRun|CaptureReuse' -benchmem -benchtime=1x | benchjson > BENCH_sim.json
//
// The -match flag filters benchmarks by regular expression, so one
// bench run can be split into several artifacts:
//
//	benchjson -match 'SimRun' < bench.txt > BENCH_sim.json
//	benchjson -match 'Capture|EndToEnd' < bench.txt > BENCH_capture.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) get their own
// fields; custom b.ReportMetric units land in "metrics". Lines that
// are not benchmark results (experiment tables, PASS/ok) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the artifact schema.
type Doc struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	match := flag.String("match", "", "only emit benchmarks whose name matches this regexp")
	flag.Parse()
	var filter *regexp.Regexp
	if *match != "" {
		var err error
		if filter, err = regexp.Compile(*match); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -match:", err)
			os.Exit(2)
		}
	}
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Context["goos"] = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Context["goarch"] = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Context["pkg"] = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.Context["cpu"] = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if r, ok := parseLine(line); ok {
			if filter != nil && !filter.MatchString(r.Name) {
				continue
			}
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-8  N  12.3 ns/op  4 B/op ..."
// result line: the name, the iteration count, then (value, unit)
// pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNs
}
