// Command maya-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	maya-experiments -list              # show experiment ids
//	maya-experiments -exp fig7          # one experiment
//	maya-experiments -exp all           # everything
//	MAYA_EXP_SCALE=full maya-experiments -exp fig7
package main

import (
	"flag"
	"fmt"
	"os"

	"maya/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	env := experiments.NewEnv(experiments.ScaleFromEnv())
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		t, err := experiments.Run(id, env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maya-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
}
