// Command maya-experiments regenerates the paper's tables and figures.
// Ctrl-C cancels the in-flight experiment cleanly.
//
// Usage:
//
//	maya-experiments -list              # show experiment ids
//	maya-experiments -exp fig7          # one experiment
//	maya-experiments -exp all           # everything
//	MAYA_EXP_SCALE=full maya-experiments -exp fig7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"maya/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	env := experiments.NewEnv(experiments.ScaleFromEnv())
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		t, err := experiments.Run(ctx, id, env)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "maya-experiments: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "maya-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
}
