// Command maya-load is a closed-loop load generator for maya-serve:
// N concurrent clients issue predictions back-to-back (optionally
// paced to a target RPS), spread across tenants and a named workload
// mix, and the run summarizes throughput and latency quantiles as
// JSON — the client half of the saturation benchmarks.
//
//	maya-load -addr http://127.0.0.1:8080 -duration 10s -concurrency 16 -mix sweep
//
// Mixes (drawn from the repo's examples):
//
//	smoke    one small oracle-annotated recipe — no estimator
//	         training, the CI smoke default
//	sweep    six distinct parallelism variants of the same model —
//	         exercises the capture cache and worker pool
//	coalesce one identical request repeated — exercises single-flight
//	         coalescing (watch coalesced in the summary)
//	quickstart the README's GPT-3 18.4B recipe, learned annotation —
//	         requires a warmed server
//	chaos    two oracle variants sharing the degrade-cache working
//	         set — pair with -deadline and a chaos-injected server
//
// Under a fault-injecting server the summary separates the outcome
// classes that matter for resilience: shed (429 with X-Maya-Shed),
// degraded (stale 200 with "degraded": true), and wedged (client
// timeouts — requests the server neither answered nor refused).
// -report writes the summary plus a per-second outcome timeline and a
// recovery-time estimate as JSON (the CI chaos smoke's
// BENCH_resilience.json).
//
// The process exits non-zero if no request produced an answer — fresh
// or degraded — so CI can assert liveness with the exit code alone.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"maya/internal/buildinfo"
	"maya/internal/serve"
)

// mixes names the request mixes. Requests cycle through a mix's specs
// in order, per global request index.
var mixes = map[string][]serve.PredictSpec{
	"smoke": {
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2, Annotation: "oracle"},
	},
	"sweep": {
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 4, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 8, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4, Annotation: "oracle"},
	},
	"coalesce": {
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2, Annotation: "learned"},
	},
	"quickstart": {
		{Model: "gpt3-18.4b", GlobalBatch: 256, TP: 2, PP: 4, MicroBatches: 8,
			SeqParallel: true, ActRecompute: true, DistOptimizer: true, Annotation: "learned"},
	},
	// Two identities, both cacheable after one healthy answer: during
	// an injected outage every request has stale cover, so the run
	// measures degradation rather than a wall of 503s.
	"chaos": {
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2, Annotation: "oracle"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 4, Annotation: "oracle"},
	},
}

// sample is one completed request.
type sample struct {
	at         time.Time // completion time, for the outcome timeline
	latencyMS  float64
	status     int
	coalesced  bool
	degraded   bool   // body carried "degraded": true (stale answer)
	shed       string // X-Maya-Shed verdict, if the server shed it
	retries    int
	retryAfter time.Duration // server's Retry-After hint, if any
	err        error
}

// summary is the run's JSON report.
type summary struct {
	Mix         string  `json:"mix"`
	Concurrency int     `json:"concurrency"`
	TargetRPS   float64 `json:"target_rps,omitempty"`
	DurationS   float64 `json:"duration_s"`

	Sent      int64 `json:"sent"`
	OK        int64 `json:"ok"`       // fresh 200s
	Degraded  int64 `json:"degraded"` // stale 200s ("degraded": true)
	Shed      int64 `json:"shed"`     // refused with an X-Maya-Shed verdict
	Throttled int64 `json:"throttled"`
	Rejected  int64 `json:"rejected"`
	Wedged    int64 `json:"wedged"` // client timeouts: neither answered nor refused
	Errors    int64 `json:"errors"`
	Coalesced int64 `json:"coalesced"`
	Retries   int64 `json:"retries"` // total retry attempts across all requests
	Retried   int64 `json:"retried"` // requests that needed at least one retry

	ThroughputRPS float64 `json:"throughput_rps"`

	LatencyMS struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
		Mean float64 `json:"mean"`
	} `json:"latency_ms"`
}

// timelineBucket is one second of the run, by outcome class.
type timelineBucket struct {
	StartMS  int64 `json:"start_ms"`
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"` // throttled + unavailable, not shed
	Failed   int64 `json:"failed"`   // wedged + transport/server errors
}

// resilienceReport is the -report file: the run summary plus the
// per-second outcome timeline and a recovery-time estimate.
type resilienceReport struct {
	summary
	Timeline []timelineBucket `json:"timeline"`
	// RecoveryMS estimates, from the client's vantage, how long after
	// the last impacted second the service took to produce a fresh
	// answer again: 0 when nothing was impacted, -1 when it never
	// recovered within the run.
	RecoveryMS int64 `json:"recovery_ms"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "maya-serve base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = flag.Int("concurrency", 8, "concurrent closed-loop clients")
		rps         = flag.Float64("rps", 0, "target aggregate request rate (0 = unpaced closed loop)")
		mixName     = flag.String("mix", "smoke", "workload mix: smoke | sweep | coalesce | quickstart | chaos")
		tenants     = flag.String("tenants", "loadgen", "comma-separated tenant names, assigned round-robin")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		reqDeadline = flag.Duration("deadline", 0, "server-side deadline_ms attached to every request (0 = server default); lets the server shed doomed work early")
		retries     = flag.Int("retries", 3, "max retries per request on 429/503 (0 disables); capped exponential backoff with jitter, honoring Retry-After")
		reportPath  = flag.String("report", "", "write the summary plus per-second outcome timeline as JSON to this path")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "maya-load: unknown mix %q (have smoke, sweep, coalesce, quickstart, chaos)\n", *mixName)
		os.Exit(2)
	}
	tenantList := strings.Split(*tenants, ",")
	bodies := make([][]byte, len(mix))
	for i := range mix {
		spec := mix[i]
		if *reqDeadline > 0 {
			spec.DeadlineMS = reqDeadline.Milliseconds()
		}
		b, err := json.Marshal(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maya-load:", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	// Optional pacing: a shared ticker the workers draw from. Without
	// it, each worker re-issues the moment its previous answer lands
	// (pure closed loop).
	var pace <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rps))
		defer t.Stop()
		pace = t.C
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base // bare host:port is fine
	}
	url := base + "/v1/predict"

	var (
		mu      sync.Mutex
		samples []sample
		seq     int64 // global request index, for mix/tenant round-robin
	)
	next := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		seq++
		return seq - 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				i := next()
				s := issue(ctx, client, url, bodies[i%int64(len(bodies))],
					tenantList[i%int64(len(tenantList))], *retries)
				if ctx.Err() != nil && s.err != nil {
					return // cut short by the run deadline, not a real failure
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := summarize(samples, elapsed)
	out.Mix, out.Concurrency, out.TargetRPS = *mixName, *concurrency, *rps
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
	if *reportPath != "" {
		rep := resilienceReport{summary: out}
		rep.Timeline, rep.RecoveryMS = timeline(samples, start)
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "maya-load: writing report:", err)
			os.Exit(1)
		}
	}
	// Degraded answers are answers: under injected faults the run is
	// alive as long as the service kept responding from stale state.
	if out.OK == 0 && out.Degraded == 0 {
		fmt.Fprintln(os.Stderr, "maya-load: no request produced an answer")
		os.Exit(1)
	}
}

// issue sends one prediction, retrying throttled (429) and
// shed (503) answers up to maxRetries times with capped exponential
// backoff plus jitter, honoring a Retry-After header when the server
// sets one. The returned sample classifies the final attempt and
// carries the retry count; latency covers the final attempt only, so
// quantiles keep measuring the server, not the backoff schedule.
func issue(ctx context.Context, client *http.Client, url string, body []byte, tenant string, maxRetries int) sample {
	for attempt := 0; ; attempt++ {
		s := attemptOne(ctx, client, url, body, tenant)
		s.retries = attempt
		if attempt >= maxRetries ||
			(s.status != http.StatusTooManyRequests && s.status != http.StatusServiceUnavailable) {
			return s
		}
		if !sleepBackoff(ctx, attempt, s.retryAfter) {
			return s // run deadline hit mid-backoff: report the last answer
		}
	}
}

// attemptOne is a single request/response exchange.
func attemptOne(ctx context.Context, client *http.Client, url string, body []byte, tenant string) sample {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return sample{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Maya-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{err: err, latencyMS: msSince(start), at: time.Now()}
	}
	defer resp.Body.Close()
	var answer struct {
		Coalesced bool `json:"coalesced"`
		Degraded  bool `json:"degraded"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	json.Unmarshal(raw, &answer)
	return sample{
		at:         time.Now(),
		latencyMS:  msSince(start),
		status:     resp.StatusCode,
		coalesced:  answer.Coalesced,
		degraded:   answer.Degraded,
		shed:       resp.Header.Get("X-Maya-Shed"),
		retryAfter: retryAfter(resp),
	}
}

// retryAfter reads the server's backpressure hint, if any. Only the
// delay-seconds form is parsed; HTTP dates are rare from limiters.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepBackoff waits out one retry delay: the server's Retry-After if
// given, else 50ms doubled per attempt and capped at 2s, both with
// ±25% jitter so synchronized clients desynchronize. Returns false if
// the run deadline expired first.
func sleepBackoff(ctx context.Context, attempt int, hint time.Duration) bool {
	d := hint
	if d == 0 {
		d = min(2*time.Second, 50*time.Millisecond<<attempt)
	}
	d = d - d/4 + rand.N(d/2)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// summarize folds the samples into the run report.
func summarize(samples []sample, elapsed time.Duration) summary {
	var out summary
	out.DurationS = elapsed.Seconds()
	var oks []float64
	var sum float64
	for _, s := range samples {
		out.Sent++
		if s.retries > 0 {
			out.Retries += int64(s.retries)
			out.Retried++
		}
		if s.shed != "" {
			out.Shed++
		}
		switch {
		case s.err != nil:
			if isTimeout(s.err) {
				out.Wedged++
			} else {
				out.Errors++
			}
		case s.status == http.StatusOK:
			if s.degraded {
				out.Degraded++
			} else {
				out.OK++
			}
			oks = append(oks, s.latencyMS)
			sum += s.latencyMS
			if s.coalesced {
				out.Coalesced++
			}
		case s.status == http.StatusTooManyRequests:
			out.Throttled++
		case s.status == http.StatusServiceUnavailable:
			out.Rejected++
		default:
			out.Errors++
		}
	}
	if out.DurationS > 0 {
		out.ThroughputRPS = float64(out.OK) / out.DurationS
	}
	if len(oks) > 0 {
		sort.Float64s(oks)
		out.LatencyMS.P50 = quantile(oks, 0.50)
		out.LatencyMS.P90 = quantile(oks, 0.90)
		out.LatencyMS.P99 = quantile(oks, 0.99)
		out.LatencyMS.Max = oks[len(oks)-1]
		out.LatencyMS.Mean = sum / float64(len(oks))
	}
	return out
}

// isTimeout reports whether a transport error is a timeout — the
// wedged class: the server neither answered nor refused before the
// client gave up.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// timeline folds the samples into per-second outcome buckets and
// estimates recovery time: the gap between the end of the last
// impacted second and the first subsequent second with a fresh
// answer. 0 when no second was impacted, -1 when the run ended before
// a fresh answer returned.
func timeline(samples []sample, start time.Time) ([]timelineBucket, int64) {
	const bucketMS = 1000
	var tl []timelineBucket
	for _, s := range samples {
		if s.at.IsZero() {
			continue
		}
		i := int(s.at.Sub(start).Milliseconds() / bucketMS)
		if i < 0 {
			i = 0
		}
		for len(tl) <= i {
			tl = append(tl, timelineBucket{StartMS: int64(len(tl)) * bucketMS})
		}
		b := &tl[i]
		switch {
		case s.err != nil:
			b.Failed++
		case s.status == http.StatusOK && s.degraded:
			b.Degraded++
		case s.status == http.StatusOK:
			b.OK++
		case s.shed != "":
			b.Shed++
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			b.Rejected++
		default:
			b.Failed++
		}
	}
	// Impact means fault signals — degraded, shed, failed. Plain
	// throttles and queue-full rejections happen under healthy
	// saturation too and would make the estimate read "never
	// recovered" from one stray 503.
	lastImpact := -1
	for i, b := range tl {
		if b.Degraded+b.Shed+b.Failed > 0 {
			lastImpact = i
		}
	}
	if lastImpact == -1 {
		return tl, 0
	}
	impactEnd := tl[lastImpact].StartMS + bucketMS
	for i := lastImpact + 1; i < len(tl); i++ {
		if tl[i].OK > 0 {
			return tl, tl[i].StartMS - impactEnd
		}
	}
	return tl, -1
}

// quantile reads the q-th quantile from sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
