// Command maya-search finds cost-optimal training recipes by
// black-box search over the Megatron configuration space, evaluating
// every candidate through Maya's emulation pipeline. Ctrl-C stops
// the search cleanly and reports the best recipe found so far.
//
// Example:
//
//	maya-search -cluster 64xH100 -model gpt3-18.4b -batch 256 -algo cma -budget 400
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"maya"
	"maya/internal/buildinfo"
	"maya/internal/models"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "32xH100", "cluster spec")
		topology    = flag.String("topology", "", "network fabric spec: auto (default), flat, rail, oversub:K, pods:K")
		congestion  = flag.Bool("congestion", false, "resolve collectives against link-level contention (concurrent collectives sharing a fabric link split its bandwidth)")
		modelName   = flag.String("model", "gpt3-18.4b", "model preset")
		batch       = flag.Int("batch", 256, "global batch size")
		algo        = flag.String("algo", "cma", "cma | oneplusone | pso | twopointsde | random | grid")
		budget      = flag.Int("budget", 400, "sampled configurations budget")
		parallel    = flag.Int("parallel", 8, "concurrent trials")
		noPrune     = flag.Bool("no-prune", false, "disable fidelity-preserving pruning")
		capCache    = flag.Int("capture-cache", 256, "capture cache capacity (0 disables); optimizers that revisit topologies skip re-emulation")
		trainWork   = flag.Int("train-workers", runtime.GOMAXPROCS(0), "worker pool for estimator training (spans kernel classes and trees; results are identical for any value)")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	maya.DefaultEstimatorCache().SetTrainWorkers(*trainWork)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cluster, err := maya.ClusterByName(*clusterSpec)
	fatalIf(err)
	mdl, err := models.ByName(*modelName)
	fatalIf(err)

	fmt.Fprintf(os.Stderr, "maya-search: %s on %s, algorithm=%s budget=%d\n",
		mdl.Name, cluster.Name, *algo, *budget)

	popts := []maya.PredictorOption{maya.WithTopology(*topology)}
	if *congestion {
		popts = append(popts, maya.WithCongestion())
	}
	if *capCache > 0 {
		popts = append(popts, maya.WithCaptureCache(maya.NewCaptureCache(*capCache)))
	}
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, popts...)
	fatalIf(err)

	out, err := pred.FindRecipe(ctx,
		maya.SearchProblem{Model: mdl, Cluster: cluster, GlobalBatch: *batch},
		maya.SearchOptions{
			Algorithm: *algo, Budget: *budget, Parallel: *parallel,
			DisablePruning: *noPrune, Seed: 7,
		})
	interrupted := errors.Is(err, context.Canceled) && out != nil && out.Best != nil
	if interrupted {
		fmt.Fprintln(os.Stderr, "maya-search: interrupted; best recipe so far:")
	} else {
		fatalIf(err)
	}

	fmt.Printf("best recipe:   %s\n", out.Best.Knobs)
	fmt.Printf("  iteration:   %v\n", out.Best.IterTime)
	fmt.Printf("  MFU:         %.1f%%\n", out.Best.MFU*100)
	fmt.Printf("  peak memory: %.1f GiB\n", float64(out.Best.PeakMem)/(1<<30))
	fmt.Printf("trials: %d executed, %d oom-verdict, %d dominated, %d cached, %d pruned, %d invalid (%s in %v)\n",
		out.Stats.Executed, out.Stats.Verdict, out.Stats.Dominated,
		out.Stats.Cached, out.Stats.Skipped, out.Stats.Invalid,
		out.Stopped, out.Elapsed.Round(1e6))
	if interrupted {
		os.Exit(130)
	}
}

func fatalIf(err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "maya-search: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "maya-search:", err)
		os.Exit(1)
	}
}
