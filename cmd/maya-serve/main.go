// Command maya-serve is the long-running Maya prediction service: an
// HTTP/JSON daemon fronting one shared predictor with request
// admission (per-tenant token buckets via the X-Maya-Tenant header),
// single-flight coalescing of identical predictions, a bounded
// prediction worker pool, a fingerprinted capture cache, and
// warm-started estimator suites.
//
//	maya-serve -addr :8080 -cluster 32xH100 -workers 8 -preload 8xV100,8xA40/vision
//
// Endpoints:
//
//	POST /v1/predict          one prediction, or {"requests":[...]} for a batch
//	POST /v1/capture          capture a workload, archive the trace
//	GET  /v1/traces/{fp}      download a serialized trace (maya simulate -trace)
//	POST /v1/traces           upload a serialized trace
//	GET  /metrics             Prometheus text metrics
//	GET  /healthz             build info, cache stats, drain state
//
// SIGTERM (or Ctrl-C) drains gracefully: new requests get 503,
// /healthz flips to "draining" so balancers stop routing, in-flight
// predictions finish, the trace store is snapshotted, then the
// listener closes and the process exits zero.
//
// Resilience knobs: -shed-target/-shed-interval shape CoDel-style
// overload shedding, -breaker-threshold/-breaker-probe the
// per-dependency circuit breakers, -degrade-cache the stale-result
// cache served (marked `"degraded": true`) while shedding or with a
// breaker open. -state persists the trace store across restarts
// (atomic snapshots, per-entry checksum validation at boot). -chaos
// loads a seeded fault-injection plan — the deterministic chaos
// harness used by the CI chaos smoke:
//
//	{"seed": 42, "events": [
//	  {"kind": "outage", "target": "predict", "from_ms": 3000, "until_ms": 5000}
//	]}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"maya"
	"maya/internal/buildinfo"
	"maya/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		clusterSpec = flag.String("cluster", "32xH100", "cluster spec the service models (e.g. 8xV100, 64xH100)")
		topology    = flag.String("topology", "", "network fabric spec: auto (default), flat, rail, oversub:K, pods:K")
		congestion  = flag.Bool("congestion", false, "resolve collectives against link-level contention on every prediction")
		profile     = flag.String("profile", "llm", "estimator profile: llm | vision | all")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "prediction worker pool size")
		queue       = flag.Int("queue", 0, "admission queue capacity (default 4*workers)")
		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant sustained predictions/sec (0 disables throttling)")
		tenantBurst = flag.Int("tenant-burst", 32, "per-tenant burst allowance")
		capCache    = flag.Int("capture-cache", 256, "capture cache capacity (distinct topologies retained)")
		traceStore  = flag.Int("trace-store", 128, "trace store capacity (/v1/traces)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 2*time.Minute, "largest per-request deadline honored")
		preload     = flag.String("preload", "", "comma-separated suites to warm at boot, as CLUSTERSPEC[/PROFILE] (e.g. 8xV100,8xA40/vision)")
		shedTarget  = flag.Duration("shed-target", 0, "queue-delay target for overload shedding (default 150ms)")
		shedIval    = flag.Duration("shed-interval", 0, "how long queue delay must exceed the target before shedding (default 1s)")
		brThreshold = flag.Int("breaker-threshold", 0, "consecutive dependency failures that trip a circuit breaker (default 5)")
		brProbe     = flag.Duration("breaker-probe", 0, "open-breaker probe interval (default 1s)")
		degradeSize = flag.Int("degrade-cache", 0, "stale-result cache capacity for degraded answers (default 256)")
		statePath   = flag.String("state", "", "trace-store snapshot path; restored at boot, written on capture/upload/drain")
		chaosPath   = flag.String("chaos", "", "chaos plan JSON file: seeded fault injection at the predictor boundary (testing only)")
		noWarm      = flag.Bool("no-warm", false, "skip estimator warm-up at boot (first learned request trains)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		trainWork   = flag.Int("train-workers", runtime.GOMAXPROCS(0), "worker pool for estimator training")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	cluster, err := maya.ClusterByName(*clusterSpec)
	fatalIf(err)
	kind, err := serve.ParseProfile(*profile)
	fatalIf(err)

	var preloadList []string
	if *preload != "" {
		for _, e := range strings.Split(*preload, ",") {
			if e = strings.TrimSpace(e); e != "" {
				preloadList = append(preloadList, e)
			}
		}
	}

	var chaosPlan *serve.ChaosPlan
	if *chaosPath != "" {
		f, err := os.Open(*chaosPath)
		fatalIf(err)
		chaosPlan, err = serve.ReadChaosPlan(f)
		f.Close()
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "maya-serve: CHAOS PLAN ACTIVE (%s: seed %d, %d events) — testing only\n",
			*chaosPath, chaosPlan.Seed, len(chaosPlan.Events))
	}

	srv, err := serve.New(serve.Config{
		Cluster:          cluster,
		Topology:         *topology,
		Congestion:       *congestion,
		Profile:          kind,
		Workers:          *workers,
		Queue:            *queue,
		TenantRate:       *tenantRPS,
		TenantBurst:      *tenantBurst,
		CaptureCacheSize: *capCache,
		TraceStoreSize:   *traceStore,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		Preload:          preloadList,
		ShedTarget:       *shedTarget,
		ShedInterval:     *shedIval,
		BreakerThreshold: *brThreshold,
		BreakerProbe:     *brProbe,
		DegradeCacheSize: *degradeSize,
		StatePath:        *statePath,
		Chaos:            chaosPlan,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	fatalIf(err)
	srv.Predictor().EstimatorCache().SetTrainWorkers(*trainWork)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*noWarm {
		fmt.Fprintf(os.Stderr, "maya-serve: warming estimator suites (%s/%s", cluster.Name, *profile)
		if len(preloadList) > 0 {
			fmt.Fprintf(os.Stderr, " + %s", strings.Join(preloadList, ", "))
		}
		fmt.Fprintln(os.Stderr, ")...")
		warmStart := time.Now()
		fatalIf(srv.Warm(ctx))
		fmt.Fprintf(os.Stderr, "maya-serve: warm in %v\n", time.Since(warmStart).Round(time.Millisecond))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "maya-serve: %s; serving %s (%s) on %s with %d workers\n",
			buildinfo.Get(), cluster.Name, *profile, *addr, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatalIf(err)
	case <-ctx.Done():
		// Graceful drain: refuse new work, let balancers see
		// "draining", wait for in-flight requests, then close.
		fmt.Fprintln(os.Stderr, "maya-serve: draining...")
		srv.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "maya-serve: drain timeout exceeded:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "maya-serve: drained cleanly")
	}
}

func fatalIf(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "maya-serve: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "maya-serve:", err)
		os.Exit(1)
	}
}
