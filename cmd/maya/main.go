// Command maya predicts the performance of Megatron-LM training
// recipes on a cluster, without GPUs. Ctrl-C cancels the in-flight
// work cleanly, including estimator training.
//
// The trace artifact is first-class: capture once, simulate many.
//
//	maya predict  -cluster 32xH100 -model gpt3-18.4b -batch 256 -tp 2 -pp 4 -micro 8
//	maya capture  -cluster 32xH100 -model gpt3-18.4b -batch 256 -tp 2 -pp 4 -micro 8 -o job.mtrace
//	maya simulate -trace job.mtrace
//	maya simulate -trace job.mtrace -oracle
//	maya simulate -trace job.mtrace -actual -flops 1.2e18
//	maya simulate -trace job.mtrace -timeline run.json -breakdown
//
// -timeline records the simulated run at CUDA-API granularity and
// writes a Chrome-trace JSON file: open it in chrome://tracing or
// https://ui.perfetto.dev to see every kernel, collective, stall and
// host stretch per worker and stream. -breakdown attributes each
// worker's idle time (event waits, collective straggler waits,
// host-bound stretches, pipeline bubbles) and prints the table.
//
// Bare flags (no verb) behave like "predict", preserving the old
// interface.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"maya"
	"maya/internal/buildinfo"
	"maya/internal/models"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	args := os.Args[1:]
	verb := "predict"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		verb, args = args[0], args[1:]
	}
	if len(args) > 0 && args[0] == "-version" {
		verb = "version"
	}
	switch verb {
	case "predict":
		runPredict(ctx, args)
	case "capture":
		runCapture(ctx, args)
	case "simulate":
		runSimulate(ctx, args)
	case "version":
		fmt.Println(buildinfo.Get())
	default:
		fmt.Fprintf(os.Stderr, "maya: unknown verb %q (have predict, capture, simulate, version)\n", verb)
		os.Exit(2)
	}
}

// recipeFlags registers the workload/cluster flags shared by predict
// and capture.
type recipeFlags struct {
	cluster   *string
	topology  *string
	model     *string
	batch     *int
	tp        *int
	pp        *int
	micro     *int
	virtual   *int
	seqpar    *bool
	recompute *bool
	distopt   *bool
}

func addRecipeFlags(fs *flag.FlagSet) *recipeFlags {
	return &recipeFlags{
		cluster:   fs.String("cluster", "32xH100", "cluster spec (e.g. 8xV100, 64xH100, 8xA40)"),
		topology:  addTopologyFlag(fs),
		model:     fs.String("model", "gpt3-18.4b", "model preset (gpt3-1.3b/2.7b/18.4b/145.6b, llama2-7b, ...)"),
		batch:     fs.Int("batch", 256, "global batch size (sequences)"),
		tp:        fs.Int("tp", 1, "tensor-parallel degree"),
		pp:        fs.Int("pp", 1, "pipeline-parallel degree"),
		micro:     fs.Int("micro", 1, "number of microbatches"),
		virtual:   fs.Int("virtual", 1, "virtual pipeline stages (interleaving)"),
		seqpar:    fs.Bool("seqpar", false, "sequence parallelism"),
		recompute: fs.Bool("recompute", false, "activation recomputation"),
		distopt:   fs.Bool("distopt", false, "distributed optimizer"),
	}
}

// addTopologyFlag registers the network-fabric spec flag shared by
// every verb that builds a predictor.
func addTopologyFlag(fs *flag.FlagSet) *string {
	return fs.String("topology", "", "network fabric spec: auto (default), flat, rail, oversub:K, pods:K")
}

// addTrainWorkersFlag registers the estimator-training parallelism
// flag shared by the verbs that may train (predict, simulate).
// Trained suites are byte-identical for every worker count; the flag
// only bounds training's CPU footprint.
func addTrainWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("train-workers", runtime.GOMAXPROCS(0),
		"worker pool for estimator training (spans kernel classes and trees; results are identical for any value)")
}

// build turns the flags into a cluster, workload and model-FLOPs
// count.
func (r *recipeFlags) build() (maya.Cluster, maya.Workload, float64) {
	cluster, err := maya.ClusterByName(*r.cluster)
	fatalIf(err)
	mdl, err := models.ByName(*r.model)
	fatalIf(err)
	cfg := maya.MegatronConfig{
		Model: mdl, NGPUs: cluster.TotalGPUs(), GlobalBatch: *r.batch,
		TP: *r.tp, PP: *r.pp, MicroBatches: *r.micro, VirtualStages: *r.virtual,
		SeqParallel: *r.seqpar, ActRecompute: *r.recompute, DistOptimizer: *r.distopt,
	}
	w, err := maya.NewMegatron(cfg)
	fatalIf(err)
	return cluster, w, mdl.TrainFLOPsPerIter(*r.batch)
}

func runPredict(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("maya predict", flag.ExitOnError)
	recipe := addRecipeFlags(fs)
	actual := fs.Bool("actual", false, "also measure on the synthetic silicon (ground truth)")
	congestion := fs.Bool("congestion", false, "resolve collectives against link-level contention (concurrent collectives sharing a fabric link split its bandwidth)")
	timeline := fs.String("timeline", "", "write the simulated run as Chrome-trace JSON to this file (chrome://tracing, Perfetto)")
	breakdown := fs.Bool("breakdown", false, "attribute per-worker stall time (event/collective waits, host-bound, pipeline bubbles)")
	trainWorkers := addTrainWorkersFlag(fs)
	asJSON := fs.Bool("json", false, "emit JSON")
	fatalIf(fs.Parse(args))
	maya.DefaultEstimatorCache().SetTrainWorkers(*trainWorkers)

	cluster, w, flops := recipe.build()
	fmt.Fprintf(os.Stderr, "maya: training estimators for %s (cached after first run)...\n", cluster.Name)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithTopology(*recipe.topology))
	fatalIf(err)

	// One capture serves both the prediction and the ground-truth
	// measurement: -actual no longer re-pays emulation.
	tr, err := pred.Capture(ctx, w)
	fatalIf(err)
	opts := []maya.PredictOption{maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16)}
	var tl *maya.Timeline
	if *timeline != "" {
		tl = maya.NewTimeline()
		opts = append(opts, maya.WithTimeline(tl))
	}
	if *breakdown {
		opts = append(opts, maya.WithStallBreakdown())
	}
	if *congestion {
		opts = append(opts, maya.WithCongestion())
	}
	rep, err := pred.Simulate(ctx, tr, opts...)
	fatalIf(err)
	writeTimeline(tl, *timeline)
	// The predicted report keeps the full stage breakdown: this run
	// did pay the capture, once.
	cs := tr.CaptureStages()
	rep.Stages.Emulate, rep.Stages.Collate = cs.Emulate, cs.Collate

	out := map[string]any{"predicted": rep}
	if *actual {
		act, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay(),
			maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
		fatalIf(err)
		out["actual"] = act
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(out))
		return
	}
	fmt.Println(rep)
	printStalls(rep)
	if *actual {
		fmt.Println(out["actual"])
	}
}

// writeTimeline exports a recorded timeline, if one was requested.
func writeTimeline(tl *maya.Timeline, path string) {
	if tl == nil {
		return
	}
	f, err := os.Create(path)
	fatalIf(err)
	err = tl.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "maya: wrote timeline %s (%d events); open in chrome://tracing or ui.perfetto.dev\n", path, tl.Len())
}

// printStalls renders the per-worker stall attribution, if present.
func printStalls(rep *maya.Report) {
	if rep.Stalls == nil {
		return
	}
	fmt.Println("stall breakdown (idle time per worker):")
	fmt.Printf("  %-8s %12s %16s %12s %12s\n", "worker", "event-wait", "collective-wait", "host-bound", "bubble")
	for i, s := range rep.Stalls.Workers {
		fmt.Printf("  %-8d %12s %16s %12s %12s\n", i, s.EventWait, s.CollectiveWait, s.HostBound, s.Bubble)
	}
	t := rep.Stalls.Total()
	fmt.Printf("  %-8s %12s %16s %12s %12s\n", "total", t.EventWait, t.CollectiveWait, t.HostBound, t.Bubble)
}

func runCapture(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("maya capture", flag.ExitOnError)
	recipe := addRecipeFlags(fs)
	out := fs.String("o", "job.mtrace", "output trace file")
	noDedup := fs.Bool("no-dedup", false, "emulate and keep every rank (required for traces simulated with -faults)")
	fatalIf(fs.Parse(args))

	cluster, w, _ := recipe.build()
	// Capture never trains estimators: it is pure emulate + collate.
	popts := []maya.PredictorOption{maya.WithTopology(*recipe.topology)}
	if *noDedup {
		popts = append(popts, maya.WithoutDedup())
	}
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, popts...)
	fatalIf(err)
	tr, err := pred.Capture(ctx, w)
	fatalIf(err)

	f, err := os.Create(*out)
	fatalIf(err)
	n, err := tr.WriteTo(f)
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "maya: wrote %s (%d bytes): %s\n", *out, n, tr)
}

func runSimulate(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("maya simulate", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file written by `maya capture` (required)")
	oracle := fs.Bool("oracle", false, "annotate with ground-truth kernel times (Table 3 oracle rows)")
	netsim := fs.Bool("netsim", false, "model collectives with the hierarchical network simulator")
	topology := addTopologyFlag(fs)
	congestion := fs.Bool("congestion", false, "resolve collectives against link-level contention (concurrent collectives sharing a fabric link split its bandwidth)")
	actual := fs.Bool("actual", false, "physical replay with ground truth (MeasureActual equivalent)")
	faultsPath := fs.String("faults", "", "evaluate the fault scenario in this JSON plan (stragglers, fail-stops, resizes, checkpoint schedule); needs a trace captured with -no-dedup")
	flops := fs.Float64("flops", 0, "per-iteration model FLOPs (enables MFU)")
	timeline := fs.String("timeline", "", "write the simulated run as Chrome-trace JSON to this file (chrome://tracing, Perfetto)")
	breakdown := fs.Bool("breakdown", false, "attribute per-worker stall time (event/collective waits, host-bound, pipeline bubbles)")
	trainWorkers := addTrainWorkersFlag(fs)
	asJSON := fs.Bool("json", false, "emit JSON")
	fatalIf(fs.Parse(args))
	maya.DefaultEstimatorCache().SetTrainWorkers(*trainWorkers)

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "maya simulate: -trace is required")
		os.Exit(2)
	}
	if *netsim && (*oracle || *actual) {
		fmt.Fprintln(os.Stderr, "maya simulate: -netsim plugs into the learned estimators and cannot combine with -oracle or -actual (those annotate every collective with ground truth)")
		os.Exit(2)
	}
	if *faultsPath != "" && *actual {
		fmt.Fprintln(os.Stderr, "maya simulate: -faults applies to simulated predictions; -actual models the silicon, not operational faults")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	fatalIf(err)
	tr, err := maya.ReadTrace(f)
	f.Close()
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "maya: loaded %s\n", tr)

	cluster, err := maya.ClusterByName(tr.Cluster())
	fatalIf(err)
	if *topology == "" {
		// Default to the fabric the trace was captured under.
		*topology = tr.Topology()
	}
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithTopology(*topology))
	fatalIf(err)

	opts := []maya.PredictOption{maya.WithModelFLOPs(*flops), maya.WithDType(maya.BF16)}
	switch {
	case *actual:
		opts = append(opts, maya.WithPhysicalReplay())
	case *oracle:
		opts = append(opts, maya.WithOracleAnnotation())
	default:
		fmt.Fprintf(os.Stderr, "maya: training estimators for %s (cached after first run)...\n", cluster.Name)
	}
	if *netsim {
		opts = append(opts, maya.WithNetSim())
	}
	var tl *maya.Timeline
	if *timeline != "" {
		tl = maya.NewTimeline()
		opts = append(opts, maya.WithTimeline(tl))
	}
	if *breakdown {
		opts = append(opts, maya.WithStallBreakdown())
	}
	if *congestion {
		opts = append(opts, maya.WithCongestion())
	}
	if *faultsPath != "" {
		pf, err := os.Open(*faultsPath)
		fatalIf(err)
		plan, err := maya.ParseFaultPlan(pf)
		pf.Close()
		fatalIf(err)
		opts = append(opts, maya.WithFaults(plan))
	}
	rep, err := pred.Simulate(ctx, tr, opts...)
	fatalIf(err)
	writeTimeline(tl, *timeline)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(rep))
		return
	}
	fmt.Println(rep)
	printStalls(rep)
	printRecovery(rep)
}

// printRecovery renders the fault-scenario evaluation, if present.
func printRecovery(rep *maya.Report) {
	r := rep.Recovery
	if r == nil {
		return
	}
	fmt.Printf("fault scenario (%d iterations, world %d, goodput %.3f):\n", r.Iterations, r.World, r.Goodput)
	fmt.Printf("  %-18s %14s\n", "clean baseline", r.CleanTime)
	if r.PerturbedTime != r.CleanTime {
		fmt.Printf("  %-18s %14s\n", "with stragglers", r.PerturbedTime)
	}
	fmt.Printf("  %-18s %14s\n", "total wall", r.TotalTime)
	if r.CheckpointEvery > 0 {
		fmt.Printf("  %-18s %14s  (%d writes, every %d iters)\n", "checkpoint cost", r.CheckpointOverhead, r.Checkpoints, r.CheckpointEvery)
	}
	if len(r.Failures) > 0 {
		fmt.Printf("  %-18s %14s  detection %s, restore %s, survivor idle %s\n",
			"lost work", r.LostWork, r.Detection, r.Restore, r.SurvivorIdle)
		fmt.Printf("  failures (%d):\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Printf("    rank %-4d at %-14s lost %-12s wedged %d workers\n", f.Rank, f.At, f.LostWork, f.WedgedWorkers)
		}
	}
	for _, rz := range r.Resizes {
		fmt.Printf("  resize at iter %d: %d -> %d workers, reshard %s\n", rz.AtIteration, rz.OldWorld, rz.NewWorld, rz.Reshard)
	}
}

func fatalIf(err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "maya: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "maya:", err)
		os.Exit(1)
	}
}
