// Command maya predicts the performance of one Megatron-LM training
// recipe on a cluster, without GPUs. Ctrl-C cancels the in-flight
// prediction cleanly, including estimator training.
//
// Example:
//
//	maya -cluster 32xH100 -model gpt3-18.4b -batch 256 -tp 2 -pp 4 -micro 8 -seqpar
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"maya"
	"maya/internal/models"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "32xH100", "cluster spec (e.g. 8xV100, 64xH100, 8xA40)")
		modelName   = flag.String("model", "gpt3-18.4b", "model preset (gpt3-1.3b/2.7b/18.4b/145.6b, llama2-7b, ...)")
		batch       = flag.Int("batch", 256, "global batch size (sequences)")
		tp          = flag.Int("tp", 1, "tensor-parallel degree")
		pp          = flag.Int("pp", 1, "pipeline-parallel degree")
		micro       = flag.Int("micro", 1, "number of microbatches")
		virtual     = flag.Int("virtual", 1, "virtual pipeline stages (interleaving)")
		seqpar      = flag.Bool("seqpar", false, "sequence parallelism")
		recompute   = flag.Bool("recompute", false, "activation recomputation")
		distopt     = flag.Bool("distopt", false, "distributed optimizer")
		actual      = flag.Bool("actual", false, "also measure on the synthetic silicon (ground truth)")
		asJSON      = flag.Bool("json", false, "emit JSON")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cluster, err := maya.ClusterByName(*clusterSpec)
	fatalIf(err)
	mdl, err := models.ByName(*modelName)
	fatalIf(err)

	cfg := maya.MegatronConfig{
		Model: mdl, NGPUs: cluster.TotalGPUs(), GlobalBatch: *batch,
		TP: *tp, PP: *pp, MicroBatches: *micro, VirtualStages: *virtual,
		SeqParallel: *seqpar, ActRecompute: *recompute, DistOptimizer: *distopt,
	}
	w, err := maya.NewMegatron(cfg)
	fatalIf(err)

	fmt.Fprintf(os.Stderr, "maya: training estimators for %s (cached after first run)...\n", cluster.Name)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	fatalIf(err)

	flops := mdl.TrainFLOPsPerIter(*batch)
	rep, err := pred.Predict(ctx, w, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
	fatalIf(err)

	out := map[string]any{"predicted": rep}
	if *actual {
		act, err := pred.MeasureActual(ctx, w, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
		fatalIf(err)
		out["actual"] = act
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(out))
		return
	}
	fmt.Println(rep)
	if *actual {
		fmt.Println(out["actual"])
	}
}

func fatalIf(err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "maya: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "maya:", err)
		os.Exit(1)
	}
}
