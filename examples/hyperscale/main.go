// Hyperscale study: predict GPT-3 145.6B training across thousands of
// GPUs. Profiled collective data cannot exist at this scale, so the
// predictor switches to the built-in hierarchical network simulator,
// and selective launch emulates only one worker per pipeline stage
// (§7.4 of the paper).
package main

import (
	"context"
	"fmt"
	"log"

	"maya"
)

func main() {
	ctx := context.Background()
	model := maya.GPT3_145_6B()
	// Reduced depth keeps this example snappy; the scaling trend is
	// identical, each stage just repeats fewer layers.
	model.Layers = 32

	const (
		tp           = 8
		pp           = 8
		globalBatch  = 12288
		microbatches = 64
	)

	fmt.Printf("%-8s %-6s %12s %8s %12s\n", "gpus", "dp", "iter time", "MFU", "stack time")
	for _, dp := range []int{16, 32, 64, 128} {
		ngpus := tp * pp * dp
		cluster := maya.DGXH100(ngpus / 8)

		pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithNetSim())
		if err != nil {
			log.Fatal(err)
		}

		job, err := maya.NewMegatron(maya.MegatronConfig{
			Model: model, NGPUs: ngpus, GlobalBatch: globalBatch,
			TP: tp, PP: pp, MicroBatches: microbatches, DistOptimizer: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pred.Predict(ctx, job,
			maya.WithModelFLOPs(model.TrainFLOPsPerIter(globalBatch)), maya.WithDType(maya.BF16))
		if err != nil {
			log.Fatal(err)
		}
		if rep.OOM {
			fmt.Printf("%-8d %-6d %12s\n", ngpus, dp, "OOM")
			continue
		}
		fmt.Printf("%-8d %-6d %12v %7.1f%% %12v\n",
			ngpus, dp, rep.IterTime, rep.MFU*100, rep.Stages.Total().Round(1e6))
	}
	fmt.Println("\nexpected: iteration time scales down with DP while MFU erodes (communication dominates)")
}
