// Compare Megatron-LM training recipes for GPT-3 2.7B on a 16xV100
// cluster: the workload the paper's introduction motivates. Each
// recipe is captured ONCE — the expensive emulate+collate half of the
// pipeline — and the resulting Trace artifact is then simulated twice
// from the same capture: once with learned estimators (Maya's
// prediction) and once as a physical ground-truth replay ("actual"),
// demonstrating the <5% prediction error that makes recipe selection
// trustworthy without re-paying emulation per view.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"maya"
)

func main() {
	ctx := context.Background()
	cluster := maya.DGXV100(2)
	model := maya.GPT3_2_7B()
	const globalBatch = 64

	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		log.Fatal(err)
	}

	recipes := []maya.MegatronConfig{
		{TP: 1, PP: 1, MicroBatches: 4},                                       // pure data parallel
		{TP: 2, PP: 1, MicroBatches: 2},                                       // tensor parallel
		{TP: 2, PP: 2, MicroBatches: 8},                                       // 3D parallel
		{TP: 2, PP: 2, MicroBatches: 8, SeqParallel: true},                    // + sequence parallelism
		{TP: 2, PP: 2, MicroBatches: 8, ActRecompute: true},                   // + recomputation
		{TP: 2, PP: 4, MicroBatches: 16, VirtualStages: 2, SeqParallel: true}, // interleaved pipeline
		{TP: 4, PP: 2, MicroBatches: 8, DistOptimizer: true},                  // distributed optimizer
		{TP: 2, PP: 2, MicroBatches: 8, ActRecompute: true, DualPipe: true},   // DeepSeek bidirectional schedule
	}

	fmt.Printf("%-55s %12s %12s %7s %7s %9s\n",
		"recipe", "predicted", "actual", "err", "MFU", "peak mem")
	for i := range recipes {
		r := &recipes[i]
		r.Model = model
		r.NGPUs = cluster.TotalGPUs()
		r.GlobalBatch = globalBatch
		job, err := maya.NewMegatron(*r)
		if err != nil {
			log.Fatalf("recipe %d: %v", i, err)
		}
		flops := model.TrainFLOPsPerIter(globalBatch)

		// Capture once; predicted and actual views share the trace.
		tr, err := pred.Capture(ctx, job)
		if err != nil {
			log.Fatal(err)
		}
		if tr.OOM() {
			fmt.Printf("%-55s %12s\n", r, "OOM")
			continue
		}
		p, err := pred.Simulate(ctx, tr, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
		if err != nil {
			log.Fatal(err)
		}
		a, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay(),
			maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
		if err != nil {
			log.Fatal(err)
		}
		errPct := math.Abs(p.IterTime.Seconds()-a.IterTime.Seconds()) / a.IterTime.Seconds() * 100
		fmt.Printf("%-55s %12v %12v %6.2f%% %6.1f%% %6.1fGiB\n",
			r, p.IterTime, a.IterTime, errPct, a.MFU*100, float64(p.PeakMemBytes)/(1<<30))
	}
}
