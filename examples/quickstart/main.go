// Quickstart: predict the iteration time, memory footprint and MFU of
// a GPT-3 training recipe on a 32xH100 cluster — no GPUs involved.
package main

import (
	"context"
	"fmt"
	"log"

	"maya"
)

func main() {
	ctx := context.Background()
	cluster := maya.DGXH100(4) // 4 nodes x 8 H100 = 32 GPUs

	// Estimator training is the expensive part of setup; warming the
	// shared cache makes the cost explicit (predictors would otherwise
	// train lazily on first use).
	if err := maya.DefaultEstimatorCache().Warm(ctx, cluster, maya.ProfileLLM); err != nil {
		log.Fatal(err)
	}
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		log.Fatal(err)
	}

	// An unmodified Megatron-style training job: GPT-3 18.4B with
	// tensor parallelism 2, pipeline parallelism 4 and 8 microbatches.
	model := maya.GPT3_18_4B()
	recipe := maya.MegatronConfig{
		Model:         model,
		NGPUs:         cluster.TotalGPUs(),
		GlobalBatch:   256,
		TP:            2,
		PP:            4,
		MicroBatches:  8,
		SeqParallel:   true,
		ActRecompute:  true,
		DistOptimizer: true,
	}
	job, err := maya.NewMegatron(recipe)
	if err != nil {
		log.Fatal(err)
	}

	report, err := pred.Predict(ctx, job,
		maya.WithModelFLOPs(model.TrainFLOPsPerIter(recipe.GlobalBatch)),
		maya.WithDType(maya.BF16))
	if err != nil {
		log.Fatal(err)
	}
	stats := maya.DefaultEstimatorCache().Stats()
	fmt.Printf("estimator cache: %d trained, %d hits\n", stats.Trained, stats.Hits)

	if report.OOM {
		fmt.Printf("recipe does not fit: peak %0.1f GiB per GPU\n", float64(report.PeakMemBytes)/(1<<30))
		return
	}
	fmt.Printf("cluster:        %s\n", cluster)
	fmt.Printf("recipe:         %s\n", recipe)
	fmt.Printf("iteration time: %v\n", report.IterTime)
	fmt.Printf("comm (busy):    %v (exposed %v)\n", report.CommTime, report.ExposedComm)
	fmt.Printf("peak memory:    %0.1f GiB per GPU\n", float64(report.PeakMemBytes)/(1<<30))
	fmt.Printf("MFU:            %0.1f%%\n", report.MFU*100)
	fmt.Printf("pipeline cost:  %v (emulate %v, simulate %v) for %d unique workers\n",
		report.Stages.Total(), report.Stages.Emulate, report.Stages.Simulate, report.UniqueWorkers)
}
