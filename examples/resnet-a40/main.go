// Vision workloads: predict ResNet-152 distributed training on the
// 8xA40 node (heterogeneous pairwise NVLink), with and without
// torch.compile-style kernel fusion — the Fig. 10 scenario. The
// batch/compile sweep goes through PredictBatch: one trained suite,
// a bounded worker pool, per-request failure isolation.
package main

import (
	"context"
	"fmt"
	"log"

	"maya"
)

func main() {
	ctx := context.Background()
	cluster := maya.A40Node()
	model := maya.ResNet152()

	pred, err := maya.NewPredictor(cluster, maya.ProfileVision)
	if err != nil {
		log.Fatal(err)
	}

	// One request per (batch, compile) point; the pool evaluates them
	// concurrently against the shared suite.
	type cfg struct {
		batch   int
		compile bool
	}
	var cfgs []cfg
	var reqs []maya.Request
	for _, batch := range []int{128, 256, 512} {
		for _, compile := range []bool{false, true} {
			job, err := maya.NewDataParallel(maya.DataParallelConfig{
				CNN:         &model,
				NGPUs:       cluster.TotalGPUs(),
				GlobalBatch: batch,
				Strategy:    maya.DDP,
				Compile:     compile,
				DType:       "fp16",
			})
			if err != nil {
				log.Fatal(err)
			}
			cfgs = append(cfgs, cfg{batch, compile})
			reqs = append(reqs, maya.Request{
				Workload: job,
				Options: []maya.PredictOption{
					maya.WithModelFLOPs(model.TrainFLOPsPerIter(batch)),
					maya.WithDType(maya.FP16),
				},
			})
		}
	}
	results, err := pred.PredictBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-42s %12s %10s %9s\n", "config", "iter time", "MFU", "peak mem")
	for i, res := range results {
		name := fmt.Sprintf("resnet152 batch=%d compile=%t", cfgs[i].batch, cfgs[i].compile)
		if res.Err != nil {
			fmt.Printf("%-42s %12s\n", name, "error: "+res.Err.Error())
			continue
		}
		rep := res.Report
		if rep.OOM {
			fmt.Printf("%-42s %12s\n", name, "OOM")
			continue
		}
		fmt.Printf("%-42s %12v %9.1f%% %7.1fGiB\n",
			name, rep.IterTime, rep.MFU*100, float64(rep.PeakMemBytes)/(1<<30))
	}

	// ZeRO stages trade memory for communication even on vision
	// models; compare footprints at a fixed batch.
	fmt.Println()
	for _, strat := range []struct {
		name string
		s    maya.DPStrategy
	}{{"ddp", maya.DDP}, {"zero1", maya.ZeRO1}, {"zero3", maya.ZeRO3}} {
		job, err := maya.NewDataParallel(maya.DataParallelConfig{
			CNN: &model, NGPUs: 8, GlobalBatch: 256, Strategy: strat.s,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pred.Predict(ctx, job,
			maya.WithModelFLOPs(model.TrainFLOPsPerIter(256)), maya.WithDType(maya.FP16))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s iter %v, peak %0.2f GiB, comm %v\n",
			strat.name, rep.IterTime, float64(rep.PeakMemBytes)/(1<<30), rep.CommTime)
	}
}
