// Maya-Search: find a cost-optimal training recipe for GPT-3 18.4B on
// 32xH100 with CMA-ES over the Table-5 knob space, every trial
// evaluated by emulation — the end-to-end workflow that replaces
// manual trial-and-error on expensive clusters.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"

	"maya"
)

func main() {
	// Ctrl-C stops the search mid-trial-loop; the predictor's context
	// flows through every emulation underneath it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cluster := maya.DGXH100(4)
	model := maya.GPT3_18_4B()

	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		log.Fatal(err)
	}
	out, err := pred.FindRecipe(ctx,
		maya.SearchProblem{Model: model, Cluster: cluster, GlobalBatch: 256},
		maya.SearchOptions{
			Algorithm: "cma",
			Budget:    150,
			Parallel:  8,
			Seed:      7,
		})
	switch {
	case errors.Is(err, context.Canceled) && out != nil && out.Best != nil:
		fmt.Println("interrupted — best recipe so far:")
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("best recipe:    %s\n", out.Best.Knobs)
	fmt.Printf("iteration time: %v\n", out.Best.IterTime)
	fmt.Printf("MFU:            %.1f%%\n", out.Best.MFU*100)
	fmt.Printf("peak memory:    %.1f GiB\n", float64(out.Best.PeakMem)/(1<<30))
	fmt.Println()
	fmt.Printf("trials: %d executed, %d cached, %d pruned by tactics, %d invalid\n",
		out.Stats.Executed, out.Stats.Cached, out.Stats.Skipped, out.Stats.Invalid)
	for tactic, n := range out.Stats.SkippedByTactic {
		fmt.Printf("  %-24s %d skips\n", tactic, n)
	}
	fmt.Printf("search finished in %v (%s)\n", out.Elapsed.Round(1e6), out.Stopped)

	fmt.Println("\nprogress (best MFU vs unique valid configs):")
	for _, p := range out.Trajectory[:min(len(out.Trajectory), 12)] {
		fmt.Printf("  %4d configs: %.1f%%\n", p.UniqueValid, p.BestMFU*100)
	}
}
