package maya

import (
	"io"

	"maya/internal/faults"
	"maya/internal/sim"
)

// FaultPlan is a deterministic fault scenario: stragglers, fail-stop
// deaths (explicit or drawn from a seeded MTBF process), elastic
// resizes and a checkpoint schedule, evaluated against a prediction
// into Report.Recovery. Plans are plain serializable data — build one
// in code or load it with ParseFaultPlan — and safe to share across
// concurrent calls. See WithFaults.
type FaultPlan = faults.Plan

// FaultStraggler selects ranks and slows their device compute.
type FaultStraggler = faults.Straggler

// FaultStop schedules one rank's fail-stop death.
type FaultStop = faults.FailStop

// FaultResize changes the world size at an iteration boundary.
type FaultResize = faults.Resize

// RecoveryReport is a fault scenario's evaluation: lost work,
// detection/restore/redo time, survivor idle time and goodput versus
// the fault-free baseline. Attached to Report.Recovery by calls that
// carry a FaultPlan.
type RecoveryReport = sim.RecoveryReport

// ParseFaultPlan decodes and validates a JSON fault plan (the format
// `maya simulate -faults` reads). Unknown fields are errors.
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.ParsePlan(r) }

// WithFaults evaluates the fault scenario against this prediction:
// the plan's stragglers perturb the simulated run, its failures and
// resizes are walked over the iteration schedule, and the result
// lands in Report.Recovery. Fault scenarios address world ranks, so
// the option forces full capture (as if WithoutDedup were set) for
// the calls it applies to; captures taken without it cannot be
// reused by fault calls. Not combinable with physical replay —
// MeasureActual models the silicon, not operational faults.
// Deterministic: equal plans and workloads yield bit-identical
// recovery reports. As a PredictorOption it becomes the predictor's
// default; as a PredictOption it applies to one call.
func WithFaults(plan *FaultPlan) Option {
	return dualOption{
		ctor: func(c *predictorConfig) {
			c.opts.Faults = plan
			if plan != nil {
				c.opts.NoDedup = true
			}
		},
		call: func(s *predictSettings) { s.faults = plan; s.faultsSet = true },
	}
}

// WithCheckpointEvery sets (or overrides) the checkpoint interval, in
// iterations, of the call's fault plan — the boundary failures rewind
// to. Usable alone (k iterations between checkpoints, no other
// faults: Recovery then prices pure checkpoint overhead) or together
// with WithFaults, whose plan's own CheckpointEvery it overrides.
// k <= 0 disables checkpointing.
func WithCheckpointEvery(k int) Option {
	return dualOption{
		ctor: func(c *predictorConfig) { c.ckptEvery = k; c.ckptSet = true },
		call: func(s *predictSettings) { s.ckptEvery = k; s.ckptSet = true },
	}
}
