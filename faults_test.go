package maya_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"maya"
)

func faultsFixture(t *testing.T) (*maya.Predictor, maya.Workload) {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred, w
}

func TestPublicFaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	ctx := context.Background()
	pred, w := faultsFixture(t)

	base, err := pred.Predict(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if base.Recovery != nil {
		t.Fatal("plain prediction carries a recovery report")
	}

	plan := &maya.FaultPlan{
		Seed:            11,
		CheckpointEvery: 2,
		CheckpointCost:  base.IterTime / 20,
		MTBF:            3 * base.IterTime,
		Detect:          base.IterTime / 2,
		Restore:         base.IterTime / 4,
		Iterations:      12,
	}
	rep, err := pred.Predict(ctx, w, maya.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery
	if rec == nil {
		t.Fatal("fault prediction returned no recovery report")
	}
	if rec.Iterations != 12 || rec.World != 8 {
		t.Fatalf("recovery shape: %+v", rec)
	}
	if rec.Goodput <= 0 || rec.Goodput > 1 {
		t.Fatalf("goodput = %v", rec.Goodput)
	}

	// The whole path — capture, annotate, simulate, walk — must be
	// deterministic at the facade too.
	again, err := pred.Predict(ctx, w, maya.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Recovery, rec) {
		t.Fatalf("recovery diverged across calls:\n got %+v\nwant %+v", again.Recovery, rec)
	}

	// WithCheckpointEvery overrides the plan's interval without
	// mutating the caller's plan.
	before := *plan
	rep3, err := pred.Predict(ctx, w, maya.WithFaults(plan), maya.WithCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Recovery.CheckpointEvery != 5 {
		t.Fatalf("checkpoint override = %d, want 5", rep3.Recovery.CheckpointEvery)
	}
	if !reflect.DeepEqual(*plan, before) {
		t.Fatal("WithCheckpointEvery mutated the caller's plan")
	}

	// WithCheckpointEvery alone prices pure checkpoint overhead.
	solo, err := pred.Predict(ctx, w, maya.WithCheckpointEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Recovery == nil || solo.Recovery.CheckpointEvery != 1 {
		t.Fatalf("checkpoint-only recovery: %+v", solo.Recovery)
	}

	// Physical replay rejects fault plans.
	if _, err := pred.MeasureActual(ctx, w, maya.WithFaults(plan)); err == nil {
		t.Fatal("MeasureActual accepted a fault plan")
	}
}

func TestPublicFaultPlanParsing(t *testing.T) {
	plan, err := maya.ParseFaultPlan(strings.NewReader(`{
		"seed": 7,
		"checkpoint_every": 10,
		"checkpoint_cost_ns": 30000000000,
		"mtbf_ns": 21600000000000,
		"detect_ns": 30000000000,
		"restore_ns": 120000000000,
		"stragglers": [{"ranks": [3], "factor": 1.3}],
		"failures": [{"rank": 1, "at_ns": 3600000000000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.CheckpointEvery != 10 || plan.MTBF != 6*time.Hour || len(plan.Stragglers) != 1 {
		t.Fatalf("parsed plan: %+v", plan)
	}
	if _, err := maya.ParseFaultPlan(strings.NewReader(`{"mtbf": "6h"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
