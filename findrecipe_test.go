package maya_test

import (
	"context"
	"reflect"
	"testing"

	"maya"
)

// TestFindRecipeVerdictAblation runs the same search with and without
// the capture-verdict fast path: everything about the outcome must
// match — best recipe, stop reason, trajectory, history order — with
// only the Executed/Verdict accounting split differing, and
// Executed+Verdict invariant across the two.
func TestFindRecipeVerdictAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("search needs a trained suite")
	}
	ctx := context.Background()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM,
		maya.WithCaptureCache(maya.NewCaptureCache(256)))
	if err != nil {
		t.Fatal(err)
	}
	problem := maya.SearchProblem{Model: maya.GPT3_2_7B(), GlobalBatch: 64}
	opts := maya.SearchOptions{Algorithm: "random", Budget: 96, Seed: 7, EarlyStopWindow: -1}

	fast, err := pred.FindRecipe(ctx, problem, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableVerdictFastPath = true
	ablated, err := pred.FindRecipe(ctx, problem, opts)
	if err != nil {
		t.Fatal(err)
	}

	if fast.Stats.Verdict == 0 {
		t.Fatal("no verdict trials: the fast path never ran (widen the budget?)")
	}
	if ablated.Stats.Verdict != 0 {
		t.Fatalf("ablated run still recorded %d verdicts", ablated.Stats.Verdict)
	}
	if fast.Stats.Executed+fast.Stats.Verdict != ablated.Stats.Executed {
		t.Fatalf("Executed+Verdict = %d+%d, want %d",
			fast.Stats.Executed, fast.Stats.Verdict, ablated.Stats.Executed)
	}
	if fast.Stopped != ablated.Stopped {
		t.Fatalf("stop reason diverged: %q vs %q", fast.Stopped, ablated.Stopped)
	}
	if fast.Best.Knobs != ablated.Best.Knobs || fast.Best.IterTime != ablated.Best.IterTime ||
		fast.Best.MFU != ablated.Best.MFU {
		t.Fatalf("fast path changed the best recipe: %+v vs %+v", fast.Best, ablated.Best)
	}
	if !reflect.DeepEqual(fast.Trajectory, ablated.Trajectory) {
		t.Fatalf("fast path changed the trajectory:\n%+v\n%+v", fast.Trajectory, ablated.Trajectory)
	}
	if len(fast.History) != len(ablated.History) {
		t.Fatalf("history lengths diverged: %d vs %d", len(fast.History), len(ablated.History))
	}
	for i := range fast.History {
		a, b := fast.History[i], ablated.History[i]
		if a.Knobs != b.Knobs || a.OOM != b.OOM || a.IterTime != b.IterTime {
			t.Fatalf("history[%d] diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestFindRecipeDeterministicAcrossParallel pins the worker-affine
// evaluation path end to end: the full pipeline-backed search returns
// a bit-identical outcome for Parallel 1, 4 and 8.
func TestFindRecipeDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("search needs a trained suite")
	}
	ctx := context.Background()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM,
		maya.WithCaptureCache(maya.NewCaptureCache(256)))
	if err != nil {
		t.Fatal(err)
	}
	problem := maya.SearchProblem{Model: maya.GPT3_2_7B(), GlobalBatch: 64}
	opts := maya.SearchOptions{Algorithm: "cma", Budget: 64, Seed: 3, EarlyStopWindow: -1}

	opts.Parallel = 1
	base, err := pred.FindRecipe(ctx, problem, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 8} {
		opts.Parallel = par
		got, err := pred.FindRecipe(ctx, problem, opts)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *base, *got
		a.Elapsed, b.Elapsed = 0, 0
		if !reflect.DeepEqual(&a, &b) {
			t.Fatalf("Parallel=%d diverged from Parallel=1:\nstats %+v vs %+v\nbest %+v vs %+v",
				par, base.Stats, got.Stats, base.Best, got.Best)
		}
	}
}
