module maya

go 1.24
