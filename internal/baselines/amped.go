package baselines

import (
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
)

// AMPeD is the analytical transformer-training model of Moolchandani
// et al.: a fixed library of per-operator formulas behind a
// declarative configuration. Its operator models carry conservative
// efficiency constants and it composes them with no
// compute/communication overlap, so predictions run 2-3x high
// (Fig. 9). It models only plain TP/PP/DP: sequence parallelism,
// interleaving, the distributed optimizer, activation recomputation
// and gradient accumulation are outside its domain (Table 1) — the
// generality cost of a closed operator library.
type AMPeD struct {
	// GemmEff is the conservative sustained-throughput assumption.
	GemmEff float64
	// MemEff is the conservative bandwidth assumption.
	MemEff float64
	// LinkEff is the conservative link assumption.
	LinkEff float64
}

// NewAMPeD returns the model with its default assumptions.
func NewAMPeD() *AMPeD {
	return &AMPeD{GemmEff: 0.24, MemEff: 0.35, LinkEff: 0.45}
}

// Name implements System.
func (a *AMPeD) Name() string { return "AMPeD" }

// Predict implements System.
func (a *AMPeD) Predict(cfg framework.MegatronConfig, cluster hardware.Cluster) (time.Duration, bool) {
	if cluster.Node.GPU.Arch == hardware.Volta {
		return 0, false // no Volta bf16 model
	}
	if err := cfg.Validate(); err != nil {
		return 0, false
	}
	// Domain limits (Table 1).
	if cfg.SeqParallel || cfg.VirtualStages > 1 || cfg.DistOptimizer || cfg.ActRecompute {
		return 0, false
	}
	if cfg.PP == 1 && cfg.MicroBatches > 1 {
		return 0, false // gradient accumulation unsupported
	}

	acc := account(cfg)
	gpu := cluster.Node.GPU
	peak := gpu.PeakTFLOPS(hardware.BF16) * 1e12
	bw := gpu.MemBWGBps * 1e9

	fwd := acc.gemmFLOPsPerMB/(peak*a.GemmEff) + acc.memBytesPerMB/(bw*a.MemEff)
	bwd := 2 * fwd

	intra, inter := linkBW(cluster)
	tpBW := intra * a.LinkEff
	if tpSpansNodes(cfg, cluster) {
		tpBW = inter * a.LinkEff
	}
	tpTime := 0.0
	if cfg.TP > 1 {
		fn := float64(cfg.TP)
		// Forward and backward synchronizations, fully exposed.
		tpTime = 2 * 2 * (fn - 1) / fn * 3 * acc.tpBytesPerMB / (tpBW * 1e9)
	}
	perMB := fwd + bwd + tpTime

	// Pessimistic bubble — and computed against the operator
	// library's built-in assumption of four microbatches rather than
	// the configured count: microbatch tuning is invisible to AMPeD's
	// fixed analytical recipe, one of the blind spots that makes its
	// selected configurations up to 56% costlier in the paper.
	m := float64(cfg.MicroBatches)
	const assumedMicrobatches = 4
	bubble := 2 * float64(cfg.PP-1) / assumedMicrobatches
	iter := perMB * m * (1 + bubble)

	if cfg.PP > 1 {
		ppBW := inter * a.LinkEff
		iter += 2 * m * acc.ppBytes / (ppBW * 1e9)
	}
	// Data-parallel gradient all-reduce, fully exposed.
	if cfg.DP() > 1 {
		dpBW := intra * a.LinkEff
		if dpSpansNodes(cfg, cluster) {
			dpBW = inter * a.LinkEff
		}
		iter += ringTime(acc.dpGradBytes, cfg.DP(), dpBW).Seconds()
	}
	return time.Duration(iter * 1e9), true
}
