// Package baselines reimplements the three performance-modeling
// systems the paper compares against, with the modeling limitations
// the paper documents for each:
//
//   - Calculon: an analytical model specialized for Megatron-LM-style
//     transformer training. Covers the whole knob space but assumes
//     idealized efficiencies and free host time, so it systematically
//     underestimates (Fig. 7/9: consistent underestimation; Fig. 8:
//     10-15% costlier selected configs).
//   - AMPeD: a per-operator analytical model with conservative
//     hardware assumptions and no compute/communication overlap; it
//     overestimates 2-3x and supports only plain TP/PP/DP.
//   - Proteus: a domain-specific simulator driven by a manually
//     translated "strategy tree". Its per-kernel times come from real
//     profiling on its native Volta testbed; on other architectures
//     it extrapolates and can be off by an order of magnitude
//     (Fig. 7, H100). The manual translation drops host overheads and
//     the kernel long tail — the semantic gap.
//
// Every system implements the same System interface and reports when
// a configuration lies outside its modeling domain (Table 1), which
// the experiments then skip, as the paper does.
package baselines

import (
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
)

// System is a runtime-prediction baseline.
type System interface {
	Name() string
	// Predict estimates the per-iteration time of a Megatron recipe
	// on a cluster. ok=false means the configuration or hardware is
	// outside the system's modeling domain.
	Predict(cfg framework.MegatronConfig, cluster hardware.Cluster) (time.Duration, bool)
}

// All returns the three baselines.
func All() []System {
	return []System{NewCalculon(), NewAMPeD(), NewProteus()}
}

// accounting holds the per-rank analytic quantities every analytical
// baseline starts from.
type accounting struct {
	// gemmFLOPsPerMB is forward GEMM work per rank per microbatch.
	gemmFLOPsPerMB float64
	// memBytesPerMB is forward pointwise/normalization traffic per
	// rank per microbatch.
	memBytesPerMB float64
	// tpBytesPerMB is the total tensor-parallel collective payload
	// per rank per microbatch (forward).
	tpBytesPerMB float64
	// ppBytes is the boundary tensor size.
	ppBytes float64
	// dpGradBytes is the gradient volume reduced across DP.
	dpGradBytes float64
	// layersPerStage is layers per pipeline stage.
	layersPerStage int
}

func account(cfg framework.MegatronConfig) accounting {
	mdl := cfg.Model
	t := float64(cfg.TP)
	h := float64(mdl.Hidden)
	f := float64(mdl.FFN)
	s := float64(mdl.Seq)
	v := float64(mdl.Vocab)
	mbs := float64(cfg.MicroBatchSize())
	n := mbs * s // tokens per microbatch
	layersPerStage := mdl.Layers / cfg.PP

	mlpMats := 2.0
	if mdl.GatedMLP {
		mlpMats = 3.0
	}
	perLayerGemm := 2 * n * (4*h*h + mlpMats*h*f) / t
	attn := 4 * n * s * h / t                           // scores + context batched GEMMs
	head := 2 * n * v * h / t / float64(layersPerStage) // amortized per layer
	gemm := float64(layersPerStage) * (perLayerGemm + attn + head)

	es := 2.0
	perLayerMem := es * (16*n*h + 4*n*f/t + 10*n*s*float64(mdl.Heads)/t)
	mem := float64(layersPerStage) * perLayerMem

	tpPayload := 0.0
	if cfg.TP > 1 {
		tpPayload = float64(layersPerStage) * 2 * es * n * h // two syncs per layer
	}

	params := float64(mdl.Layers)*(4*h*h+mlpMats*h*f)/(t*float64(cfg.PP)) + v*h/t

	return accounting{
		gemmFLOPsPerMB: gemm,
		memBytesPerMB:  mem,
		tpBytesPerMB:   tpPayload,
		ppBytes:        es * n * h,
		dpGradBytes:    4 * params,
		layersPerStage: layersPerStage,
	}
}

// linkBW returns nominal intra-node and inter-node bandwidths in
// GB/s, before any system-specific efficiency assumption.
func linkBW(cluster hardware.Cluster) (intra, inter float64) {
	node := cluster.Node
	intra = node.GPU.NVLinkGBps
	if intra == 0 {
		intra = node.PCIeGBps
	}
	inter = node.Inter.PerGPUGBps
	return intra, inter
}

// tpSpansNodes reports whether tensor groups cross node boundaries.
func tpSpansNodes(cfg framework.MegatronConfig, cluster hardware.Cluster) bool {
	return cfg.TP > cluster.Node.GPUsPerNode
}

// dpSpansNodes reports whether data-parallel groups cross nodes
// under Megatron's tp-dp-pp rank order.
func dpSpansNodes(cfg framework.MegatronConfig, cluster hardware.Cluster) bool {
	return cfg.TP*cfg.DP() > cluster.Node.GPUsPerNode && cfg.DP() > 1
}

// ringTime is the ideal ring all-reduce time for the given payload.
func ringTime(bytes float64, n int, bwGBps float64) time.Duration {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	fn := float64(n)
	sec := 2 * (fn - 1) / fn * bytes / (bwGBps * 1e9)
	return time.Duration(sec * 1e9)
}
