package baselines

import (
	"testing"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func h100Config() framework.MegatronConfig {
	return framework.MegatronConfig{
		Model: models.GPT3_18_4B(), NGPUs: 32, GlobalBatch: 128,
		TP: 2, PP: 2, MicroBatches: 4,
	}
}

func TestSupportMatrixMatchesTable1(t *testing.T) {
	cluster := hardware.DGXH100(4)
	type probe struct {
		name   string
		mutate func(*framework.MegatronConfig)
		// expected support: proteus, calculon, amped
		proteus, calculon, amped bool
	}
	probes := []probe{
		{"plain 3D", func(c *framework.MegatronConfig) {}, true, true, true},
		{"seq parallel", func(c *framework.MegatronConfig) { c.SeqParallel = true }, false, true, false},
		{"interleaving", func(c *framework.MegatronConfig) { c.VirtualStages = 2; c.MicroBatches = 8 }, true, true, false},
		{"dist optimizer", func(c *framework.MegatronConfig) { c.DistOptimizer = true }, true, true, false},
		{"act recompute", func(c *framework.MegatronConfig) { c.ActRecompute = true }, true, true, false},
		{"grad accumulation", func(c *framework.MegatronConfig) { c.TP, c.PP, c.MicroBatches = 2, 1, 8 }, false, true, false},
	}
	proteus, calculon, amped := NewProteus(), NewCalculon(), NewAMPeD()
	for _, p := range probes {
		cfg := h100Config()
		p.mutate(&cfg)
		if _, ok := proteus.Predict(cfg, cluster); ok != p.proteus {
			t.Errorf("%s: Proteus support = %t, want %t", p.name, ok, p.proteus)
		}
		if _, ok := calculon.Predict(cfg, cluster); ok != p.calculon {
			t.Errorf("%s: Calculon support = %t, want %t", p.name, ok, p.calculon)
		}
		if _, ok := amped.Predict(cfg, cluster); ok != p.amped {
			t.Errorf("%s: AMPeD support = %t, want %t", p.name, ok, p.amped)
		}
	}
}

func TestVoltaBF16Omitted(t *testing.T) {
	cfg := framework.MegatronConfig{
		Model: models.GPT3_2_7B(), NGPUs: 8, GlobalBatch: 64, TP: 2, PP: 2, MicroBatches: 4,
	}
	cluster := hardware.DGXV100(1)
	if _, ok := NewCalculon().Predict(cfg, cluster); ok {
		t.Error("Calculon should not model Volta bf16 (paper omits it)")
	}
	if _, ok := NewAMPeD().Predict(cfg, cluster); ok {
		t.Error("AMPeD should not model Volta bf16")
	}
	if _, ok := NewProteus().Predict(cfg, cluster); !ok {
		t.Error("Proteus is the V100-native system and must support it")
	}
}

func TestAMPeDOverestimatesCalculon(t *testing.T) {
	// Structural bias check: for the same config, AMPeD's estimate
	// must exceed Calculon's several-fold (pessimistic vs optimistic
	// efficiency assumptions).
	cfg := h100Config()
	cluster := hardware.DGXH100(4)
	tc, ok := NewCalculon().Predict(cfg, cluster)
	if !ok {
		t.Fatal("calculon rejected plain config")
	}
	ta, ok := NewAMPeD().Predict(cfg, cluster)
	if !ok {
		t.Fatal("amped rejected plain config")
	}
	if ta < 2*tc {
		t.Fatalf("AMPeD %v not ≫ Calculon %v", ta, tc)
	}
}

func TestProteusVoltaVsHopperFidelity(t *testing.T) {
	// Proteus extrapolation error should be much larger off its
	// native Volta: compare the spread of predictions for shape
	// variants between architectures.
	p := NewProteus()
	variance := func(cluster hardware.Cluster, model models.Transformer, batch int) float64 {
		// Ratio spread across per-layer-shape variants.
		var ratios []float64
		for _, tp := range []int{1, 2, 4} {
			cfg := framework.MegatronConfig{
				Model: model, NGPUs: 8, GlobalBatch: batch, TP: tp, PP: 2, MicroBatches: 4,
			}
			if cfg.Validate() != nil {
				continue
			}
			t1, ok := p.Predict(cfg, cluster)
			if !ok {
				continue
			}
			ratios = append(ratios, t1.Seconds())
		}
		if len(ratios) < 2 {
			return 0
		}
		max, min := ratios[0], ratios[0]
		for _, r := range ratios {
			if r > max {
				max = r
			}
			if r < min {
				min = r
			}
		}
		return max / min
	}
	_ = variance // spread alone is weak; directly check the misextrapolation factor instead.

	v100 := hardware.V100()
	h100 := hardware.H100()
	// Identical GEMM on both: the Volta time comes from real profiles;
	// Hopper goes through peak-scaling with per-shape error.
	tV := p.kernelTime("cublasGemmEx", 1, 4096, 4096, 4096, v100)
	tH := p.kernelTime("cublasGemmEx", 1, 4096, 4096, 4096, h100)
	ideal := tV * h100.PeakTFLOPS(hardware.BF16) / v100.PeakTFLOPS(hardware.BF16)
	_ = ideal
	ratio := tV / tH
	peakRatio := h100.PeakTFLOPS(hardware.BF16) / v100.PeakTFLOPS(hardware.BF16)
	mis := ratio / peakRatio
	if mis > 0.8 && mis < 1.25 {
		t.Fatalf("Hopper extrapolation suspiciously exact (mis=%.2f) — the semantic gap should show", mis)
	}
}

func TestRingTime(t *testing.T) {
	if ringTime(0, 8, 100) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	if ringTime(1e9, 1, 100) != 0 {
		t.Fatal("single rank should cost nothing")
	}
	d := ringTime(100e9, 4, 100) // 100GB over 100GB/s ring, 4 ranks
	want := 2.0 * 3 / 4 * 1.0    // 1.5s
	if d != time.Duration(want*1e9) {
		t.Fatalf("ring time = %v, want %vs", d, want)
	}
}

func TestAllReturnsThreeSystems(t *testing.T) {
	if len(All()) != 3 {
		t.Fatalf("All() = %d systems", len(All()))
	}
	names := map[string]bool{}
	for _, s := range All() {
		names[s.Name()] = true
	}
	for _, want := range []string{"Calculon", "AMPeD", "Proteus"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestInvalidConfigRejectedEverywhere(t *testing.T) {
	cfg := h100Config()
	cfg.TP = 3 // indivisible
	for _, s := range All() {
		if _, ok := s.Predict(cfg, hardware.DGXH100(4)); ok {
			t.Errorf("%s accepted an invalid config", s.Name())
		}
	}
}
