package baselines

import (
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
)

// Calculon is the analytical co-design model of Isaev et al.: fast,
// covers the full Megatron knob space, but optimistic — it assumes
// near-peak sustained GEMM efficiency, ideal link bandwidth, perfect
// overlap of data-parallel communication and zero host time. The
// optimism makes it systematically underestimate, the behavior the
// paper measures.
type Calculon struct {
	// GemmEff is the assumed sustained fraction of peak tensor
	// throughput.
	GemmEff float64
	// MemEff is the assumed fraction of peak HBM bandwidth.
	MemEff float64
	// LinkEff is the assumed fraction of nominal link bandwidth.
	LinkEff float64
}

// NewCalculon returns the model with its published default
// assumptions.
func NewCalculon() *Calculon {
	return &Calculon{GemmEff: 0.87, MemEff: 0.92, LinkEff: 0.92}
}

// Name implements System.
func (c *Calculon) Name() string { return "Calculon" }

// Predict implements System.
func (c *Calculon) Predict(cfg framework.MegatronConfig, cluster hardware.Cluster) (time.Duration, bool) {
	if cluster.Node.GPU.Arch == hardware.Volta {
		// Calculon has no Volta bf16 model (the paper omits it there).
		return 0, false
	}
	if err := cfg.Validate(); err != nil {
		return 0, false
	}
	acc := account(cfg)
	gpu := cluster.Node.GPU
	peak := gpu.PeakTFLOPS(hardware.BF16) * 1e12
	bw := gpu.MemBWGBps * 1e9

	// Per-microbatch forward: compute plus memory-bound work, each at
	// idealized efficiency; backward is 2x the GEMM work.
	fwd := acc.gemmFLOPsPerMB/(peak*c.GemmEff) + acc.memBytesPerMB/(bw*c.MemEff)
	bwd := 2*acc.gemmFLOPsPerMB/(peak*c.GemmEff) + 1.5*acc.memBytesPerMB/(bw*c.MemEff)
	if cfg.ActRecompute {
		bwd += acc.gemmFLOPsPerMB / (peak * c.GemmEff)
	}

	// Tensor-parallel synchronization is serial with compute.
	intra, inter := linkBW(cluster)
	tpBW := intra * c.LinkEff
	if tpSpansNodes(cfg, cluster) {
		tpBW = inter * c.LinkEff
	}
	tpTime := 0.0
	if cfg.TP > 1 {
		fn := float64(cfg.TP)
		tpTime = 2 * (fn - 1) / fn * 3 * acc.tpBytesPerMB / (tpBW * 1e9)
	}

	perMB := fwd + bwd + tpTime

	// Pipeline bubble with interleaving (Megatron formula).
	m := float64(cfg.MicroBatches)
	bubble := float64(cfg.PP-1) / (m * float64(cfg.VirtualStages))
	iter := perMB * m * (1 + bubble)

	// Pipeline boundary transfers and the data-parallel gradient
	// reduction are assumed perfectly overlapped with compute — the
	// idealized-overlap assumption that makes Calculon prefer
	// communication-heavy recipes and underestimate across the board.
	_ = inter

	return time.Duration(iter * 1e9), true
}
