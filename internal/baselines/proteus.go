package baselines

import (
	"math"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/prand"
	"maya/internal/silicon"
	"maya/internal/trace"
)

// Proteus is the strategy-tree simulator of Duan et al. Its inputs
// are a manually translated model definition plus an explicit
// parallelization strategy tree, and its kernel times come from real
// profiling on its native V100 testbed.
//
// The reproduction captures both properties the paper measures:
//
//   - On Volta it is competitive: the profiled kernel times are real,
//     so only the semantic gap (dropped host overheads and the
//     pointwise kernel long tail that the manual translation omits)
//     separates it from ground truth.
//   - Off Volta it extrapolates profiled times by peak-FLOPS ratio,
//     which misses architecture-specific behavior entirely; per-shape
//     deviations reach an order of magnitude (Fig. 7, H100), matching
//     the anomaly the paper reports.
//   - Sequence parallelism and gradient accumulation are outside its
//     strategy-tree vocabulary (Table 1).
type Proteus struct {
	profiled *silicon.Oracle // its V100 profiling testbed
}

// NewProteus builds the simulator with its V100 profiling data.
func NewProteus() *Proteus {
	return &Proteus{profiled: silicon.NewOracle(hardware.DGXV100(2), silicon.DefaultSeed)}
}

// Name implements System.
func (p *Proteus) Name() string { return "Proteus" }

// kernelTime looks up a GEMM in the V100 profile and extrapolates to
// the target architecture.
func (p *Proteus) kernelTime(name string, batch, m, n, k int, target hardware.GPU) float64 {
	es := int64(2)
	b := int64(batch)
	op := trace.Op{
		Kind:  trace.KindKernel,
		Name:  name,
		Dims:  []int{batch, m, n, k},
		FLOPs: 2 * b * int64(m) * int64(n) * int64(k),
		Bytes: b * es * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)),
		DType: "bf16",
	}
	t := p.profiled.KernelTime(&op).Seconds()
	v100 := hardware.V100()
	if target.Arch == hardware.Volta {
		return t
	}
	// Peak-ratio extrapolation plus the architecture-specific error
	// it cannot see: deterministic per-shape, up to an order of
	// magnitude on Hopper.
	scale := v100.PeakTFLOPS(hardware.BF16) / target.PeakTFLOPS(hardware.BF16)
	sigma := 0.5
	if target.Arch == hardware.Hopper {
		sigma = 1.1
	}
	h := prand.Hash64("proteus-extrap", string(target.Arch), name)
	h = prand.HashInts(h, int64(batch), int64(m), int64(n), int64(k))
	mis := math.Exp(sigma * prand.New(h).NormFloat64())
	mis = math.Min(math.Max(mis, 0.08), 12)
	return t * scale * mis
}

// Predict implements System.
func (p *Proteus) Predict(cfg framework.MegatronConfig, cluster hardware.Cluster) (time.Duration, bool) {
	if err := cfg.Validate(); err != nil {
		return 0, false
	}
	// Strategy trees have no vocabulary for these (Table 1).
	if cfg.SeqParallel {
		return 0, false
	}
	if cfg.PP == 1 && cfg.MicroBatches > 1 {
		return 0, false
	}

	mdl := cfg.Model
	gpu := cluster.Node.GPU
	t := cfg.TP
	mbs := cfg.MicroBatchSize()
	nTok := mbs * mdl.Seq
	h := mdl.Hidden
	f := mdl.FFN
	heads := mdl.Heads / t
	headDim := h / mdl.Heads
	attnBatch := mbs * heads
	layersPerStage := mdl.Layers / cfg.PP

	// The translated strategy tree keeps the GEMMs; layernorms,
	// dropouts, residuals and host dispatch are lost in translation.
	fwdLayer := p.kernelTime("cublasGemmEx", 1, nTok, 3*h/t, h, gpu) +
		p.kernelTime("cublasSgemmStridedBatched", attnBatch, mdl.Seq, mdl.Seq, headDim, gpu) +
		p.kernelTime("cublasSgemmStridedBatched", attnBatch, mdl.Seq, headDim, mdl.Seq, gpu) +
		p.kernelTime("cublasGemmEx", 1, nTok, h, h/t, gpu) +
		p.kernelTime("cublasGemmEx", 1, nTok, f/t, h, gpu) +
		p.kernelTime("cublasGemmEx", 1, nTok, h, f/t, gpu)
	if mdl.GatedMLP {
		fwdLayer += p.kernelTime("cublasGemmEx", 1, nTok, f/t, h, gpu)
	}
	bwdLayer := 2 * fwdLayer
	if cfg.ActRecompute {
		bwdLayer += fwdLayer
	}
	head := p.kernelTime("cublasGemmEx", 1, nTok, mdl.Vocab/t, h, gpu) / float64(layersPerStage)

	perMB := float64(layersPerStage) * (fwdLayer + bwdLayer + 3*head)

	// Tensor-parallel synchronization at nominal link bandwidth.
	if cfg.TP > 1 {
		intra, inter := linkBW(cluster)
		bw := intra
		if tpSpansNodes(cfg, cluster) {
			bw = inter
		}
		fn := float64(cfg.TP)
		payload := float64(layersPerStage) * 2 * 2 * float64(nTok) * float64(h)
		perMB += 3 * 2 * (fn - 1) / fn * payload / (bw * 1e9)
	}

	m := float64(cfg.MicroBatches)
	bubble := float64(cfg.PP-1) / (m * float64(cfg.VirtualStages))
	iter := perMB * m * (1 + bubble)

	if cfg.PP > 1 {
		_, inter := linkBW(cluster)
		iter += 2 * m * 2 * float64(nTok) * float64(h) / (inter * 1e9)
	}
	if cfg.DP() > 1 {
		intra, inter := linkBW(cluster)
		bw := intra
		if dpSpansNodes(cfg, cluster) {
			bw = inter
		}
		acc := account(cfg)
		grad := acc.dpGradBytes
		if cfg.DistOptimizer {
			grad /= 2
		}
		// Proteus models the reduction with a 50% overlap assumption.
		iter += 0.5 * ringTime(grad, cfg.DP(), bw).Seconds()
	}
	return time.Duration(iter * 1e9), true
}
