// Package buildinfo reports what build of Maya is running: the module
// version and the VCS state baked into the binary by the Go toolchain
// (debug.ReadBuildInfo). The CLIs surface it behind -version and the
// serve daemon embeds it in /healthz, so a fleet operator can always
// answer "which revision is serving?".
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info describes the running build.
type Info struct {
	// Version is the module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash, empty when the binary was built
	// outside a checkout (e.g. go test binaries).
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time in RFC 3339, when known.
	Time string `json:"time,omitempty"`
	// Dirty marks builds from a checkout with uncommitted changes.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the build information of the running binary. It never
// fails: binaries without embedded build info (rare; some test
// harnesses) report version "unknown".
func Get() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the info on one line, the shape every -version flag
// prints: "maya <version> (<revision>[+dirty], <go version>)".
func (i Info) String() string {
	rev := i.Revision
	if rev == "" {
		rev = "no vcs"
	} else {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Dirty {
			rev += "+dirty"
		}
	}
	return fmt.Sprintf("maya %s (%s, %s)", i.Version, rev, i.GoVersion)
}
