// Package collator reconstructs the distributed execution pattern
// from individual worker traces: it merges them into a job-level
// trace, learns communicator membership from ncclCommInitRank
// records, matches collective calls across workers by
// (communicator, sequence) keys, and validates that matched calls
// agree on payload and group size.
//
// It also implements Maya's dynamic worker deduplication: workers
// whose operation sequences hash identically (rolling hash over
// operation signatures) are redundant — in data-parallel training
// most workers are — and only one representative per group needs to
// be emulated further and simulated.
package collator

import (
	"context"
	"fmt"
	"sort"

	"maya/internal/trace"
)

// Options controls collation.
type Options struct {
	// Validate enables cross-worker consistency checks on matched
	// collectives (mismatched bytes or group sizes fail collation).
	Validate bool
}

// Result is the collated view of a job.
type Result struct {
	// Job holds the (possibly deduplicated) workers, sorted by rank.
	Job *trace.Job
	// Comms maps communicator IDs to member global ranks ordered by
	// their rank within the communicator. Membership may be partial
	// when only unique workers were emulated.
	Comms map[uint64][]int
	// CommSizes maps communicator IDs to their declared size.
	CommSizes map[uint64]int
	// Participants counts, per collective call, how many present
	// workers join it — the simulator's wait-map expectations.
	Participants map[trace.CollKey]int
}

// Collate merges worker traces into a job-level result. Cancellation
// of ctx is observed between the per-worker passes.
func Collate(ctx context.Context, workers []*trace.Worker, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	job, err := trace.NewJob(workers)
	if err != nil {
		return nil, err
	}
	comms, sizes, err := CommMembership(job.Workers)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Validate {
		if err := validateCollectives(job); err != nil {
			return nil, err
		}
	}
	return &Result{
		Job:          job,
		Comms:        comms,
		CommSizes:    sizes,
		Participants: trace.Participation(job),
	}, nil
}

// CommMembership reconstructs communicator membership (global ranks
// ordered by communicator rank) and declared sizes from the
// ncclCommInitRank records in worker traces. With deduplication, the
// pre-dedup worker set yields complete membership; the collator's own
// pass over unique workers yields a partial view.
func CommMembership(workers []*trace.Worker) (map[uint64][]int, map[uint64]int, error) {
	type member struct {
		commRank, globalRank int
	}
	members := make(map[uint64][]member)
	sizes := make(map[uint64]int)
	for _, w := range workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if op.Kind != trace.KindCollective || op.Coll.Op != "ncclCommInitRank" {
				continue
			}
			c := op.Coll
			if prev, ok := sizes[c.CommID]; ok && prev != c.NRanks {
				return nil, nil, fmt.Errorf("collator: comm %#x declared with %d and %d ranks", c.CommID, prev, c.NRanks)
			}
			sizes[c.CommID] = c.NRanks
			members[c.CommID] = append(members[c.CommID], member{c.Rank, w.Rank})
		}
	}
	comms := make(map[uint64][]int, len(members))
	for id, ms := range members {
		sort.Slice(ms, func(i, j int) bool { return ms[i].commRank < ms[j].commRank })
		ranks := make([]int, 0, len(ms))
		for i, m := range ms {
			if i > 0 && ms[i-1].commRank == m.commRank {
				return nil, nil, fmt.Errorf("collator: comm %#x rank %d claimed by global ranks %d and %d",
					id, m.commRank, ms[i-1].globalRank, m.globalRank)
			}
			ranks = append(ranks, m.globalRank)
		}
		comms[id] = ranks
	}
	return comms, sizes, nil
}

// validateCollectives checks that every matched collective call
// agrees across participants.
func validateCollectives(job *trace.Job) error {
	type seen struct {
		bytes  int64
		nranks int
		rank   int
	}
	calls := make(map[trace.CollKey]seen)
	for _, w := range job.Workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if op.Kind != trace.KindCollective || op.Coll.Seq < 0 {
				continue
			}
			k := trace.CollKeyOf(op)
			c := op.Coll
			prev, ok := calls[k]
			if !ok {
				calls[k] = seen{c.Bytes, c.NRanks, w.Rank}
				continue
			}
			if prev.bytes != c.Bytes {
				return fmt.Errorf("collator: %s comm %#x seq %d: rank %d sends %d bytes, rank %d sends %d",
					c.Op, c.CommID, c.Seq, prev.rank, prev.bytes, w.Rank, c.Bytes)
			}
			if prev.nranks != c.NRanks {
				return fmt.Errorf("collator: %s comm %#x seq %d: group size disagreement %d vs %d",
					c.Op, c.CommID, c.Seq, prev.nranks, c.NRanks)
			}
		}
	}
	return nil
}

// Signature computes a rolling hash over a worker's operation
// signatures. Two workers with equal signatures perform identical
// work modulo communicator identities — the deduplication criterion.
// Each op's signature bytes are length-prefixed before hashing, so
// the op boundaries are unambiguous: no splice of separator bytes
// inside one op's fields (e.g. an adversarial kernel name) can make a
// different op sequence hash to the same byte stream.
func Signature(w *trace.Worker) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := range w.Ops {
		sig := w.Ops[i].SigString()
		n := uint64(len(sig))
		for j := 0; j < 8; j++ {
			h ^= n & 0xff
			h *= prime
			n >>= 8
		}
		for j := 0; j < len(sig); j++ {
			h ^= uint64(sig[j])
			h *= prime
		}
		h ^= 0x1f
		h *= prime
	}
	return h
}

// structuralSampleWindow bounds how many op positions structurallyEqual
// compares per worker pair: evenly spread across the stream, first and
// last included.
const structuralSampleWindow = 64

// structurallyEqual is the collision guard behind signature-based
// deduplication: two workers whose signatures match must also agree
// on op-stream length and on the op kinds at a deterministic sample
// of positions before they merge. A 64-bit rolling FNV makes
// accidental collisions vanishingly rare but not impossible (and
// adversarial kernel names can manufacture them), and merging two
// genuinely different workers would silently corrupt the simulated
// job.
func structurallyEqual(a, b *trace.Worker) bool {
	if len(a.Ops) != len(b.Ops) {
		return false
	}
	n := len(a.Ops)
	if n == 0 {
		return true
	}
	step := 1
	if n > structuralSampleWindow {
		step = n / structuralSampleWindow
	}
	for i := 0; i < n; i += step {
		if a.Ops[i].Kind != b.Ops[i].Kind {
			return false
		}
	}
	return a.Ops[n-1].Kind == b.Ops[n-1].Kind
}

// DuplicateGroups clusters workers by signature, sub-partitioning any
// signature bucket whose members are not structurally equal (see
// structurallyEqual) so hash collisions cannot merge distinct
// workers. The returned map sends each representative (lowest rank of
// its group) to the ranks it stands for, representative included, in
// ascending order.
func DuplicateGroups(workers []*trace.Worker) map[int][]int {
	type subgroup struct {
		leader *trace.Worker
		ranks  []int
	}
	bySig := make(map[uint64][]*subgroup)
	for _, w := range workers {
		sig := Signature(w)
		subs := bySig[sig]
		placed := false
		for _, sg := range subs {
			if structurallyEqual(sg.leader, w) {
				sg.ranks = append(sg.ranks, w.Rank)
				placed = true
				break
			}
		}
		if !placed {
			bySig[sig] = append(subs, &subgroup{leader: w, ranks: []int{w.Rank}})
		}
	}
	groups := make(map[int][]int, len(bySig))
	for _, subs := range bySig {
		for _, sg := range subs {
			sort.Ints(sg.ranks)
			groups[sg.ranks[0]] = sg.ranks
		}
	}
	return groups
}

// Deduplicate returns only the representative workers of each
// duplicate group, preserving rank order, plus the group map.
func Deduplicate(workers []*trace.Worker) (unique []*trace.Worker, groups map[int][]int) {
	groups = DuplicateGroups(workers)
	reps := make(map[int]bool, len(groups))
	for rep := range groups {
		reps[rep] = true
	}
	for _, w := range workers {
		if reps[w.Rank] {
			unique = append(unique, w)
		}
	}
	sort.Slice(unique, func(i, j int) bool { return unique[i].Rank < unique[j].Rank })
	return unique, groups
}
