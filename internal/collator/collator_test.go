package collator

import (
	"context"
	"strings"
	"testing"

	"maya/internal/trace"
)

func worker(rank, world int) *trace.Worker {
	return &trace.Worker{Rank: rank, World: world, Device: "test"}
}

func addInit(w *trace.Worker, comm uint64, nranks, commRank int) {
	w.Append(trace.Op{Kind: trace.KindCollective, Coll: &trace.Collective{
		Op: "ncclCommInitRank", CommID: comm, Seq: -1, NRanks: nranks, Rank: commRank, Peer: -1,
	}})
}

func addAllReduce(w *trace.Worker, comm uint64, seq int, nranks, commRank int, bytes int64) {
	w.Append(trace.Op{Kind: trace.KindCollective, Coll: &trace.Collective{
		Op: "ncclAllReduce", CommID: comm, Seq: seq, NRanks: nranks, Rank: commRank, Peer: -1, Bytes: bytes,
	}})
}

func TestMembershipReconstruction(t *testing.T) {
	// Comm 7: global ranks {2, 0} as comm ranks {0, 1}.
	w0 := worker(0, 3)
	addInit(w0, 7, 2, 1)
	w2 := worker(2, 3)
	addInit(w2, 7, 2, 0)
	res, err := Collate(context.Background(), []*trace.Worker{w0, w2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Comms[7]
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("membership = %v, want [2 0] (ordered by comm rank)", got)
	}
	if res.CommSizes[7] != 2 {
		t.Fatalf("size = %d", res.CommSizes[7])
	}
}

func TestConflictingCommRankRejected(t *testing.T) {
	w0 := worker(0, 2)
	addInit(w0, 7, 2, 0)
	w1 := worker(1, 2)
	addInit(w1, 7, 2, 0) // same comm rank claimed twice
	_, err := Collate(context.Background(), []*trace.Worker{w0, w1}, Options{})
	if err == nil || !strings.Contains(err.Error(), "claimed") {
		t.Fatalf("err = %v", err)
	}
}

func TestConflictingSizeRejected(t *testing.T) {
	w0 := worker(0, 2)
	addInit(w0, 7, 2, 0)
	w1 := worker(1, 2)
	addInit(w1, 7, 4, 1)
	_, err := Collate(context.Background(), []*trace.Worker{w0, w1}, Options{})
	if err == nil {
		t.Fatal("expected size-conflict error")
	}
}

func TestValidateCatchesByteMismatch(t *testing.T) {
	w0 := worker(0, 2)
	addAllReduce(w0, 7, 0, 2, 0, 1024)
	w1 := worker(1, 2)
	addAllReduce(w1, 7, 0, 2, 1, 2048) // different payload, same call
	_, err := Collate(context.Background(), []*trace.Worker{w0, w1}, Options{Validate: true})
	if err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("err = %v", err)
	}
	// Without validation it passes.
	if _, err := Collate(context.Background(), []*trace.Worker{w0, w1}, Options{}); err != nil {
		t.Fatalf("non-validating collate failed: %v", err)
	}
}

func TestParticipantsCountPresentWorkersOnly(t *testing.T) {
	w0 := worker(0, 4)
	addAllReduce(w0, 7, 0, 4, 0, 64)
	w1 := worker(1, 4)
	addAllReduce(w1, 7, 0, 4, 1, 64)
	res, err := Collate(context.Background(), []*trace.Worker{w0, w1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := trace.CollKey{Comm: 7, Seq: 0}
	if res.Participants[key] != 2 {
		t.Fatalf("participants = %d, want 2 (present), not 4 (declared)", res.Participants[key])
	}
}

func kernelOp(name string, bytes int64) trace.Op {
	return trace.Op{Kind: trace.KindKernel, Name: name, Bytes: bytes}
}

func TestSignatureAndDuplicateGroups(t *testing.T) {
	mk := func(rank int, kernels ...string) *trace.Worker {
		w := worker(rank, 4)
		for _, k := range kernels {
			w.Append(kernelOp(k, 128))
		}
		return w
	}
	a := mk(0, "x", "y")
	b := mk(1, "x", "y")
	c := mk(2, "x", "z")
	d := mk(3, "x", "y")
	groups := DuplicateGroups([]*trace.Worker{a, b, c, d})
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if g := groups[0]; len(g) != 3 || g[0] != 0 || g[1] != 1 || g[2] != 3 {
		t.Fatalf("group of 0 = %v", g)
	}
	if g := groups[2]; len(g) != 1 {
		t.Fatalf("group of 2 = %v", g)
	}

	unique, _ := Deduplicate([]*trace.Worker{a, b, c, d})
	if len(unique) != 2 || unique[0].Rank != 0 || unique[1].Rank != 2 {
		t.Fatalf("unique = %v", ranksOf(unique))
	}
}

func ranksOf(ws []*trace.Worker) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = w.Rank
	}
	return out
}

func TestSignatureIgnoresHostDelayDurations(t *testing.T) {
	a := worker(0, 2)
	a.Append(trace.Op{Kind: trace.KindHostDelay, Dur: 100})
	a.Append(kernelOp("k", 64))
	b := worker(1, 2)
	b.Append(trace.Op{Kind: trace.KindHostDelay, Dur: 999})
	b.Append(kernelOp("k", 64))
	if Signature(a) != Signature(b) {
		t.Fatal("host-delay jitter must not break deduplication")
	}
}

// TestCraftedSignatureCollisionNotMerged pins both layers of the
// collision defense. The crafted worker pair below hashed identically
// under the unprefixed rolling signature: a kernel name embedding the
// 0x1f op separator made one op's signature bytes equal two ops'.
// Length-prefixing each op's signature bytes (layer 1) makes the
// boundaries unambiguous, so the splice no longer collides; and even
// on a raw 64-bit collision, the structural guard (layer 2) refuses
// to merge workers that differ in op count or sampled kinds.
func TestCraftedSignatureCollisionNotMerged(t *testing.T) {
	a := worker(0, 2)
	a.Append(trace.Op{Kind: trace.KindKernel, Name: "x"})
	a.Append(trace.Op{Kind: trace.KindKernel, Name: "y"})
	b := worker(1, 2)
	// One op whose unprefixed signature bytes equal a's two ops plus
	// separator: "0|x|[]|0|0||0" + 0x1f + "0|y|[]|0|0||0".
	b.Append(trace.Op{Kind: trace.KindKernel, Name: "x|[]|0|0||0\x1f0|y"})

	if Signature(a) == Signature(b) {
		t.Fatal("length-prefixing no longer disambiguates the spliced op stream")
	}
	// Layer 2, independent of the hash: different op counts must
	// never merge, even when signatures agree.
	if structurallyEqual(a, b) {
		t.Fatal("structural guard accepted workers with different op counts")
	}
	groups := DuplicateGroups([]*trace.Worker{a, b})
	if len(groups) != 2 {
		t.Fatalf("structurally different workers merged: groups = %v", groups)
	}
	unique, _ := Deduplicate([]*trace.Worker{a, b})
	if len(unique) != 2 {
		t.Fatalf("Deduplicate dropped a distinct worker: kept %v", ranksOf(unique))
	}
}

// TestSameLengthKindMismatchNotMerged covers the sampled-kind check:
// equal signatures and equal op counts, but different kind sequences,
// must still partition.
func TestSameLengthKindMismatchNotMerged(t *testing.T) {
	a := worker(0, 2)
	a.Append(trace.Op{Kind: trace.KindKernel, Name: "x"})
	a.Append(trace.Op{Kind: trace.KindHostDelay})
	b := worker(1, 2)
	// KindMemcpy's signature string starts with its own kind number,
	// so these do not actually collide — force the comparison through
	// structurallyEqual directly to pin the guard's behavior.
	b.Append(trace.Op{Kind: trace.KindMemcpy, Name: "x"})
	b.Append(trace.Op{Kind: trace.KindHostDelay})
	if structurallyEqual(a, b) {
		t.Fatal("kind mismatch at sampled position must fail the structural check")
	}
	c := worker(2, 2)
	c.Append(trace.Op{Kind: trace.KindKernel, Name: "x"})
	c.Append(trace.Op{Kind: trace.KindHostDelay})
	if !structurallyEqual(a, c) {
		t.Fatal("identical streams must pass the structural check")
	}
}

func TestSignatureSensitiveToShapes(t *testing.T) {
	a := worker(0, 2)
	a.Append(kernelOp("k", 64))
	b := worker(1, 2)
	b.Append(kernelOp("k", 65))
	if Signature(a) == Signature(b) {
		t.Fatal("different byte volumes must change the signature")
	}
}
