package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"maya/internal/estimator"
	"maya/internal/netsim"
	"maya/internal/sim"
	"maya/internal/trace"
)

// Capture is the durable artifact of the pipeline's expensive front
// half: one emulation plus collation of a workload on a cluster. It
// holds the collated job trace, the communicator membership
// (supplemented by workload configuration knowledge), the per-call
// participation counts the simulator's wait map needs, the dedup
// accounting, and the peak-memory / OOM verdict.
//
// A capture is immutable once built: annotation and simulation read
// through pooled duration overlays (filled from capture-attached
// estimate plans on the learned path), so one capture can feed any
// number of predictions (learned, oracle, netsim, physical replay)
// without re-paying emulation or collation. Captures serialize with
// WriteTo and load with ReadCapture.
type Capture struct {
	// Workload and Cluster identify what was captured where.
	Workload string
	Cluster  string
	// Topology records the topo.ByName fabric spec the prediction ran
	// against ("" means the cluster's canonical auto topology).
	// Provenance only: the trace itself is topology-independent, so a
	// reloaded capture can be re-simulated against any fabric.
	Topology string
	// TotalWorkers is the job's world size; UniqueWorkers counts the
	// ranks actually emulated after dedup / selective launch.
	TotalWorkers  int
	UniqueWorkers int
	// Job is the collated trace, durations unannotated except for
	// measured host delays. Nil when the capture ended in OOM.
	Job *trace.Job
	// Comms and CommSizes map communicator IDs to member global ranks
	// and declared sizes — trace-derived, supplemented by the
	// workload's own group knowledge for selectively launched jobs.
	Comms     map[uint64][]int
	CommSizes map[uint64]int
	// Participants counts, per collective call, how many present
	// workers join it (the simulator's wait-map expectations).
	Participants map[trace.CollKey]int
	// PeakMemBytes is the largest per-device allocator high-water
	// mark; OOM marks configurations that exceeded device memory.
	PeakMemBytes int64
	OOM          bool
	// RankEmulations counts every rank emulation this capture paid,
	// deduplication probes included — the accounting that makes
	// structural-dedup wins measurable (a class-hinted hyperscale
	// capture emulates ~classes+samples ranks, not world).
	RankEmulations int
	// ClassHinted marks captures served by the verified class-hint
	// fast path (workload.ClassHinter); false means selective launch,
	// the full dynamic-dedup probe, or no dedup at all.
	ClassHinted bool
	// EmulateTime and CollateTime record what this capture cost, so
	// reuse wins are measurable (Fig. 13-style stage accounting).
	EmulateTime time.Duration
	CollateTime time.Duration

	// planMu guards plans: lazily built estimate plans keyed by the
	// suite that resolved them. A plan is the capture's job fully
	// annotated once — later Simulates against the same suite fill
	// their overlay by a single copy instead of re-walking forests.
	// Runtime-only state: plans never serialize and a reloaded
	// capture rebuilds them on first use. The map is bounded
	// (maxPlansPerCapture, insertion-order eviction): suite pointers
	// go stale when the estimator cache retrains, and a long-lived
	// capture must not pin every suite it ever simulated against.
	planMu    sync.Mutex
	plans     map[*estimator.Suite]*planEntry
	planOrder []*estimator.Suite

	// congMu guards congs: congestion demand maps keyed by the netsim
	// model that priced them, memoized like plans (the walk over every
	// collective call is linear in the trace; one capture feeds many
	// Simulates). Runtime-only, never serialized, same bound and
	// eviction policy as plans.
	congMu    sync.Mutex
	congs     map[*netsim.Model]*sim.CongestionModel
	congOrder []*netsim.Model
}

// maxPlansPerCapture bounds how many suites' plans one capture
// retains. Real callers use one or two suite identities per capture
// (the learned suite, plus its netsim view); the bound only matters
// when estimator-cache evictions mint fresh suites repeatedly.
const maxPlansPerCapture = 8

// planEntry is one in-flight or completed estimate plan.
type planEntry struct {
	ready chan struct{} // closed once the build finished
	plan  *estimator.EstimatePlan
	err   error
}

// planFor returns the capture's estimate plan for the suite, building
// it on first use. Exactly one caller builds per (capture, suite)
// pair; concurrent callers wait on the in-flight build but honor
// their own ctx. A cancelled or failed build is not cached: the entry
// is dropped, the next lookup retries, and a waiter whose own ctx is
// still alive when the builder's was cancelled takes over the build.
func (c *Capture) planFor(ctx context.Context, suite *estimator.Suite) (*estimator.EstimatePlan, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		c.planMu.Lock()
		if e, ok := c.plans[suite]; ok {
			c.planMu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil && ctxError(e.err) && ctx.Err() == nil {
					continue
				}
				return e.plan, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if c.plans == nil {
			c.plans = make(map[*estimator.Suite]*planEntry)
		}
		if len(c.plans) >= maxPlansPerCapture {
			// Evict the oldest-inserted plan: its suite has likely
			// been retrained away. Evicted entries stay valid for
			// whoever already holds them; a future lookup of that
			// suite just rebuilds.
			c.dropPlanLocked(c.planOrder[0])
		}
		e := &planEntry{ready: make(chan struct{})}
		c.plans[suite] = e
		c.planOrder = append(c.planOrder, suite)
		c.planMu.Unlock()

		e.plan, e.err = suite.BuildEstimatePlan(ctx, c.Job, c.Comms, c.CommSizes)

		if e.err != nil {
			c.planMu.Lock()
			if c.plans[suite] == e {
				c.dropPlanLocked(suite)
			}
			c.planMu.Unlock()
		}
		close(e.ready)
		return e.plan, e.err
	}
}

// dropPlanLocked removes a suite's plan entry and its insertion-order
// record. Callers hold planMu.
func (c *Capture) dropPlanLocked(suite *estimator.Suite) {
	delete(c.plans, suite)
	for i, s := range c.planOrder {
		if s == suite {
			c.planOrder = append(c.planOrder[:i], c.planOrder[i+1:]...)
			break
		}
	}
}

// congestionFor returns the capture's congestion demand map priced by
// the given netsim model, building it on first use. The map assigns
// every collective call its link footprint and latency split from the
// model's cheapest-algorithm plan; the sim engine then resolves
// concurrently-active footprints against link widths.
func (c *Capture) congestionFor(m *netsim.Model) *sim.CongestionModel {
	c.congMu.Lock()
	defer c.congMu.Unlock()
	if cm, ok := c.congs[m]; ok {
		return cm
	}
	cm := c.buildCongestion(m)
	if c.congs == nil {
		c.congs = make(map[*netsim.Model]*sim.CongestionModel)
	}
	if len(c.congs) >= maxPlansPerCapture {
		delete(c.congs, c.congOrder[0])
		c.congOrder = c.congOrder[1:]
	}
	c.congs[m] = cm
	c.congOrder = append(c.congOrder, m)
	return cm
}

// buildCongestion walks the collated trace once, planning each
// distinct collective call on the model's topology to record which
// link domains it occupies and how much of its duration is latency.
// Calls the model cannot place (unknown membership, empty footprint)
// are simply left out of the map and replay at their fixed annotated
// duration.
func (c *Capture) buildCongestion(m *netsim.Model) *sim.CongestionModel {
	demands := make(map[trace.CollKey]sim.CollDemand)
	if c.Job == nil {
		return &sim.CongestionModel{Widths: m.Topology().LinkWidths(), Demands: demands}
	}
	world := 0
	for _, w := range c.Job.Workers {
		if w.World > world {
			world = w.World
		}
	}
	for _, w := range c.Job.Workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if op.Kind != trace.KindCollective || op.Coll.Seq < 0 {
				continue
			}
			key := trace.CollKeyOf(op)
			if _, ok := demands[key]; ok {
				continue
			}
			cl := op.Coll
			ranks := trace.ExpandRanks(c.Comms[cl.CommID], c.CommSizes[cl.CommID], world)
			if len(ranks) == 0 {
				ranks = trace.ExpandRanks([]int{w.Rank}, cl.NRanks, world)
			}
			n := cl.NRanks
			if cl.Peer >= 0 {
				// Point-to-point: the footprint is the two endpoints, not
				// the whole communicator.
				if cl.Rank >= len(ranks) || cl.Peer >= len(ranks) {
					continue
				}
				ranks = []int{ranks[cl.Rank], ranks[cl.Peer]}
				n = 2
			}
			est := m.Plan(cl.Op, cl.Bytes, ranks, n)
			if len(est.Links) == 0 {
				continue
			}
			demands[key] = sim.CollDemand{Links: est.Links, Lat: est.Lat.Nanoseconds()}
		}
	}
	return &sim.CongestionModel{Widths: m.Topology().LinkWidths(), Demands: demands}
}

// baseReport starts a Report with everything the capture already
// knows; stage timings are left zero for the caller to fill.
func (c *Capture) baseReport() *Report {
	return &Report{
		Workload:      c.Workload,
		Cluster:       c.Cluster,
		TotalWorkers:  c.TotalWorkers,
		UniqueWorkers: c.UniqueWorkers,
		PeakMemBytes:  c.PeakMemBytes,
		OOM:           c.OOM,
	}
}

// TraceFormatVersion is the serialization version WriteTo emits and
// ReadCapture accepts. Bump it on any incompatible payload change.
const TraceFormatVersion = 1

// Serialization errors, matchable with errors.Is.
var (
	// ErrTraceFormat marks input that is not a Maya trace or is
	// corrupt (bad magic, checksum mismatch, malformed payload).
	ErrTraceFormat = errors.New("malformed maya trace")
	// ErrTraceVersion marks a trace written by an incompatible
	// format version.
	ErrTraceVersion = errors.New("unsupported maya trace version")
)

// traceMagic opens every serialized capture.
var traceMagic = [6]byte{'M', 'A', 'Y', 'A', 'T', 'R'}

// capturePayload is the JSON body of a serialized capture.
// Participants is recomputed from the job on load (it is a pure
// function of the trace), so it is not stored.
type capturePayload struct {
	Workload      string           `json:"workload"`
	Cluster       string           `json:"cluster"`
	Topology      string           `json:"topology,omitempty"`
	TotalWorkers  int              `json:"total_workers"`
	UniqueWorkers int              `json:"unique_workers"`
	Job           *trace.Job       `json:"job,omitempty"`
	Comms         map[uint64][]int `json:"comms,omitempty"`
	CommSizes     map[uint64]int   `json:"comm_sizes,omitempty"`
	PeakMemBytes  int64            `json:"peak_mem_bytes"`
	OOM           bool             `json:"oom,omitempty"`
	EmulateNS     int64            `json:"emulate_ns"`
	CollateNS     int64            `json:"collate_ns"`
	RankEmuls     int              `json:"rank_emulations,omitempty"`
	ClassHinted   bool             `json:"class_hinted,omitempty"`
}

// WriteTo serializes the capture: a fixed header (magic, big-endian
// uint16 format version, uint64 payload length), a JSON payload, and
// a trailing FNV-1a checksum of the payload. It implements
// io.WriterTo.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	payload, err := json.Marshal(capturePayload{
		Workload:      c.Workload,
		Cluster:       c.Cluster,
		Topology:      c.Topology,
		TotalWorkers:  c.TotalWorkers,
		UniqueWorkers: c.UniqueWorkers,
		Job:           c.Job,
		Comms:         c.Comms,
		CommSizes:     c.CommSizes,
		PeakMemBytes:  c.PeakMemBytes,
		OOM:           c.OOM,
		EmulateNS:     c.EmulateTime.Nanoseconds(),
		CollateNS:     c.CollateTime.Nanoseconds(),
		RankEmuls:     c.RankEmulations,
		ClassHinted:   c.ClassHinted,
	})
	if err != nil {
		return 0, fmt.Errorf("core: encoding capture: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(traceMagic) + 2 + 8 + len(payload) + 8)
	buf.Write(traceMagic[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], TraceFormatVersion)
	buf.Write(u16[:])
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	binary.BigEndian.PutUint64(u64[:], payloadSum(payload))
	buf.Write(u64[:])
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadCapture parses a capture produced by WriteTo. It rejects
// non-trace input (ErrTraceFormat), incompatible versions
// (ErrTraceVersion), and reports truncation as io.ErrUnexpectedEOF.
func ReadCapture(r io.Reader) (*Capture, error) {
	var header [len(traceMagic) + 2 + 8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("core: reading trace header: %w", err)
	}
	if !bytes.Equal(header[:len(traceMagic)], traceMagic[:]) {
		return nil, fmt.Errorf("core: %w: bad magic", ErrTraceFormat)
	}
	version := binary.BigEndian.Uint16(header[len(traceMagic):])
	if version != TraceFormatVersion {
		return nil, fmt.Errorf("core: %w: trace is v%d, this build reads v%d",
			ErrTraceVersion, version, TraceFormatVersion)
	}
	size := binary.BigEndian.Uint64(header[len(traceMagic)+2:])
	const maxPayload = 1 << 34 // 16 GiB: far beyond any real trace
	if size > maxPayload {
		return nil, fmt.Errorf("core: %w: implausible payload size %d", ErrTraceFormat, size)
	}
	// Grow the buffer as bytes arrive rather than trusting the header
	// length up front: a crafted size field must fail at EOF, not
	// allocate gigabytes first.
	var payloadBuf bytes.Buffer
	if _, err := io.CopyN(&payloadBuf, r, int64(size)); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("core: reading trace payload: %w", err)
	}
	payload := payloadBuf.Bytes()
	var sumBuf [8]byte
	if _, err := io.ReadFull(r, sumBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("core: reading trace checksum: %w", err)
	}
	if got, want := binary.BigEndian.Uint64(sumBuf[:]), payloadSum(payload); got != want {
		return nil, fmt.Errorf("core: %w: checksum mismatch", ErrTraceFormat)
	}
	var p capturePayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("core: %w: %v", ErrTraceFormat, err)
	}
	c := &Capture{
		Workload:       p.Workload,
		Cluster:        p.Cluster,
		Topology:       p.Topology,
		TotalWorkers:   p.TotalWorkers,
		UniqueWorkers:  p.UniqueWorkers,
		Job:            p.Job,
		Comms:          p.Comms,
		CommSizes:      p.CommSizes,
		PeakMemBytes:   p.PeakMemBytes,
		OOM:            p.OOM,
		EmulateTime:    time.Duration(p.EmulateNS),
		CollateTime:    time.Duration(p.CollateNS),
		RankEmulations: p.RankEmuls,
		ClassHinted:    p.ClassHinted,
	}
	if c.Job != nil {
		// A well-formed envelope can still carry a hostile payload:
		// JSON null decodes into a nil worker, which every consumer of
		// the job (starting with Participation below) would trip over.
		for i, w := range c.Job.Workers {
			if w == nil {
				return nil, fmt.Errorf("core: %w: null worker at index %d", ErrTraceFormat, i)
			}
		}
		c.Participants = trace.Participation(c.Job)
	}
	return c, nil
}

func payloadSum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}
