package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

// testCapture builds a small real capture without training estimators.
func testCapture(t *testing.T) (*Pipeline, *Capture) {
	t.Helper()
	cluster := hardware.DGXV100(1)
	p := oraclePipeline(cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	c, err := p.Capture(context.Background(), m)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if c.OOM {
		t.Fatalf("test capture unexpectedly OOM")
	}
	return p, c
}

// zeroStages strips wall-clock stage timings for value comparison.
func zeroStages(r *Report) Report {
	c := *r
	c.Stages = StageTimings{}
	return c
}

func TestPredictEqualsCapturePlusSimulate(t *testing.T) {
	cluster := hardware.DGXV100(1)
	p := oraclePipeline(cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	ctx := context.Background()

	composed, err := p.Predict(ctx, m, 1e15, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Capture(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := p.Simulate(ctx, c, 1e15, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := zeroStages(staged), zeroStages(composed); got != want {
		t.Errorf("Capture+Simulate disagrees with Predict:\n got %+v\nwant %+v", got, want)
	}

	oracle := DefaultOracle(cluster)
	actComposed, err := p.MeasureActual(ctx, m, oracle, 1e15, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	actStaged, err := p.Measure(ctx, c, oracle, 1e15, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := zeroStages(actStaged), zeroStages(actComposed); got != want {
		t.Errorf("Capture+Measure disagrees with MeasureActual:\n got %+v\nwant %+v", got, want)
	}
}

func TestCaptureIsImmutableUnderSimulate(t *testing.T) {
	p, c := testCapture(t)
	before, err := json.Marshal(c.Job)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r1, err := p.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(ctx, c, DefaultOracle(p.Cluster), 0, hardware.BF16); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(c.Job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Simulate/Measure mutated the capture's job trace")
	}
	if zeroStages(r1) != zeroStages(r2) {
		t.Errorf("repeated Simulate from one capture diverged: %+v vs %+v", r1, r2)
	}
	if r1.Stages.Emulate != 0 || r1.Stages.Collate != 0 {
		t.Errorf("Simulate from a capture must not report emulate/collate time, got %+v", r1.Stages)
	}
}

func TestCaptureSerializationRoundTrip(t *testing.T) {
	_, c := testCapture(t)
	c.EmulateTime, c.CollateTime = 123*time.Millisecond, 45*time.Millisecond

	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCapture: %v", err)
	}

	if got.Workload != c.Workload || got.Cluster != c.Cluster ||
		got.TotalWorkers != c.TotalWorkers || got.UniqueWorkers != c.UniqueWorkers ||
		got.PeakMemBytes != c.PeakMemBytes || got.OOM != c.OOM ||
		got.EmulateTime != c.EmulateTime || got.CollateTime != c.CollateTime {
		t.Errorf("metadata did not round-trip:\n got %+v\nwant %+v", got, c)
	}
	if !reflect.DeepEqual(got.Comms, c.Comms) || !reflect.DeepEqual(got.CommSizes, c.CommSizes) {
		t.Error("communicator membership did not round-trip")
	}
	if !reflect.DeepEqual(got.Participants, c.Participants) {
		t.Error("participation counts were not reconstructed")
	}
	gj, _ := json.Marshal(got.Job)
	cj, _ := json.Marshal(c.Job)
	if !bytes.Equal(gj, cj) {
		t.Error("job trace did not round-trip")
	}
}

func TestCaptureSerializationVersionMismatch(t *testing.T) {
	_, c := testCapture(t)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(traceMagic)] = 0xFF // corrupt the version field
	_, err := ReadCapture(bytes.NewReader(raw))
	if !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("future-version trace: err = %v, want ErrTraceVersion", err)
	}
}

func TestCaptureSerializationBadInput(t *testing.T) {
	_, c := testCapture(t)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Truncations at every structural boundary report unexpected EOF.
	for _, cut := range []int{0, 3, len(traceMagic) + 1, len(traceMagic) + 2 + 4, len(raw) / 2, len(raw) - 3} {
		trunc := raw[:cut]
		_, err := ReadCapture(bytes.NewReader(trunc))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncated at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	// Not a trace at all.
	if _, err := ReadCapture(bytes.NewReader([]byte("definitely not a maya trace, but long enough"))); !errors.Is(err, ErrTraceFormat) {
		t.Errorf("garbage input: err = %v, want ErrTraceFormat", err)
	}

	// A flipped payload byte fails the checksum.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(traceMagic)+2+8+10] ^= 0x40
	if _, err := ReadCapture(bytes.NewReader(corrupt)); !errors.Is(err, ErrTraceFormat) {
		t.Errorf("corrupt payload: err = %v, want ErrTraceFormat", err)
	}

	// A crafted huge length field must fail cheaply at EOF, not
	// allocate gigabytes up front.
	huge := append([]byte(nil), raw...)
	binary.BigEndian.PutUint64(huge[len(traceMagic)+2:], 1<<33)
	if _, err := ReadCapture(bytes.NewReader(huge)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("lying length field: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestSimulateOOMCapture(t *testing.T) {
	cluster := hardware.DGXV100(1)
	p := oraclePipeline(cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_18_4B(), NGPUs: 8, GlobalBatch: 64, TP: 1, PP: 1, MicroBatches: 1,
	})
	ctx := context.Background()
	c, err := p.Capture(ctx, m)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if !c.OOM {
		t.Fatal("expected an OOM capture")
	}
	rep, err := p.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OOM || rep.IterTime != 0 {
		t.Errorf("OOM capture must simulate to an OOM report, got %+v", rep)
	}

	// OOM captures serialize too (they carry the verdict, no job).
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OOM || got.Job != nil || got.PeakMemBytes != c.PeakMemBytes {
		t.Errorf("OOM capture did not round-trip: %+v", got)
	}
}
