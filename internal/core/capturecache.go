package core

import (
	"container/list"
	"context"
	"sync"
)

// CaptureCacheStats is a snapshot of CaptureLRU accounting.
type CaptureCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Errors    int64
	Entries   int
}

// CaptureLRU is a bounded, single-flight cache of Capture artifacts
// keyed by canonical capture identity (workload fingerprint, cluster,
// capture options — the caller builds the key). Captures are
// immutable, so entries are shared. Exactly one caller captures per
// key: concurrent lookups of an in-flight key wait on it, honoring
// their own context; a failed or cancelled capture is dropped so the
// next lookup retries. Least-recently-used entries are evicted beyond
// the capacity. The zero value is not usable; call NewCaptureLRU.
type CaptureLRU struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	stats   CaptureCacheStats
}

type captureEntry struct {
	key   string
	ready chan struct{} // closed once the capture finished
	cap   *Capture
	err   error
}

// NewCaptureLRU returns an empty cache bounded to maxEntries
// (minimum 1).
func NewCaptureLRU(maxEntries int) *CaptureLRU {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &CaptureLRU{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the capture for key, running fn if nobody has yet.
// paid reports whether THIS call ran fn. Waiters observe their own
// ctx; when the capturing caller fails with a context error while a
// waiter's ctx is still live, the waiter retries (and likely becomes
// the capturer).
func (c *CaptureLRU) Get(ctx context.Context, key string, fn func() (*Capture, error)) (cap *Capture, paid bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}

		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*captureEntry)
			c.stats.Hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil && ctxError(e.err) && ctx.Err() == nil {
					// The capturer was cancelled, we were not: the
					// failed entry is already dropped, so retry.
					continue
				}
				return e.cap, false, e.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &captureEntry{key: key, ready: make(chan struct{})}
		c.entries[key] = c.lru.PushFront(e)
		c.stats.Misses++
		for c.lru.Len() > c.max {
			c.evictOldest()
		}
		c.mu.Unlock()

		e.cap, e.err = fn()

		c.mu.Lock()
		if e.err != nil {
			c.stats.Errors++
			// Drop the failed entry only if it is still ours (an
			// eviction racing with the capture may have removed it).
			if el, ok := c.entries[key]; ok && el.Value.(*captureEntry) == e {
				c.lru.Remove(el)
				delete(c.entries, key)
			}
		}
		c.mu.Unlock()
		close(e.ready)
		return e.cap, true, e.err
	}
}

// evictOldest removes the least-recently-used entry. Waiters already
// holding the entry still receive its result; the capture is simply
// no longer cached. Callers must hold c.mu.
func (c *CaptureLRU) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*captureEntry).key)
	c.stats.Evictions++
}

// Purge empties the cache and returns how many entries were dropped.
func (c *CaptureLRU) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.stats.Evictions += int64(n)
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *CaptureLRU) Stats() CaptureCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
