package core

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// CaptureCacheStats is a snapshot of CaptureLRU accounting.
type CaptureCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Errors    int64
	Entries   int
}

// CaptureLRU is a bounded, single-flight cache of Capture artifacts
// keyed by canonical capture identity (workload fingerprint, cluster,
// capture options — the caller builds the key). Captures are
// immutable, so entries are shared. Exactly one caller captures per
// key: concurrent lookups of an in-flight key wait on it, honoring
// their own context; a failed or cancelled capture is dropped so the
// next lookup retries. Least-recently-used entries are evicted beyond
// the capacity. The zero value is not usable; call NewCaptureLRU.
//
// The accounting counters are atomics, so Stats is lock-free: a
// metrics endpoint polling it continuously never contends with
// lookups or in-flight captures.
type CaptureLRU struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions, errors atomic.Int64
	entryCount                      atomic.Int64 // mirrors len(entries)
}

type captureEntry struct {
	key   string
	ready chan struct{} // closed once the capture finished
	cap   *Capture
	err   error
}

// NewCaptureLRU returns an empty cache bounded to maxEntries
// (minimum 1).
func NewCaptureLRU(maxEntries int) *CaptureLRU {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &CaptureLRU{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the capture for key, running fn if nobody has yet.
// paid reports whether THIS call ran fn. Waiters observe their own
// ctx; when the capturing caller fails with a context error while a
// waiter's ctx is still live, the waiter retries (and likely becomes
// the capturer).
func (c *CaptureLRU) Get(ctx context.Context, key string, fn func() (*Capture, error)) (cap *Capture, paid bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}

		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*captureEntry)
			c.hits.Add(1)
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil && ctxError(e.err) && ctx.Err() == nil {
					// The capturer was cancelled, we were not: the
					// failed entry is already dropped, so retry.
					continue
				}
				return e.cap, false, e.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &captureEntry{key: key, ready: make(chan struct{})}
		c.entries[key] = c.lru.PushFront(e)
		c.misses.Add(1)
		for c.lru.Len() > c.max {
			c.evictOldest()
		}
		c.entryCount.Store(int64(len(c.entries)))
		c.mu.Unlock()

		e.cap, e.err = fn()

		c.mu.Lock()
		if e.err != nil {
			c.errors.Add(1)
			// Drop the failed entry only if it is still ours (an
			// eviction racing with the capture may have removed it).
			if el, ok := c.entries[key]; ok && el.Value.(*captureEntry) == e {
				c.lru.Remove(el)
				delete(c.entries, key)
				c.entryCount.Store(int64(len(c.entries)))
			}
		}
		c.mu.Unlock()
		close(e.ready)
		return e.cap, true, e.err
	}
}

// evictOldest removes the least-recently-used entry. Waiters already
// holding the entry still receive its result; the capture is simply
// no longer cached. Callers must hold c.mu.
func (c *CaptureLRU) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*captureEntry).key)
	c.evictions.Add(1)
}

// Purge empties the cache and returns how many entries were dropped.
func (c *CaptureLRU) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.entryCount.Store(0)
	c.evictions.Add(int64(n))
	return n
}

// Stats returns a snapshot of the cache counters. It is lock-free —
// each counter is read atomically — so it is safe (and cheap) to poll
// from a metrics endpoint while captures are in flight. Counters are
// loaded individually, so a snapshot taken mid-update may be
// transiently skewed by one in-flight operation.
func (c *CaptureLRU) Stats() CaptureCacheStats {
	return CaptureCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Errors:    c.errors.Load(),
		Entries:   int(c.entryCount.Load()),
	}
}
