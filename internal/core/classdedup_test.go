package core

// Tests of the structural-dedup (ClassHinter) capture fast path: the
// verified class hints must produce bit-identical captures and
// reports to the full O(world) probe, lying hints must be caught by
// the verification sample, and incomplete communicator knowledge must
// force the fallback.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"maya/internal/cuda"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/workload"
)

// hideHints forwards a Megatron workload's behavior but conceals its
// ClassHinter (and SelectiveLauncher) implementation, forcing the
// pipeline onto the full dynamic-dedup probe — the reference path the
// fast path must match bit for bit.
type hideHints struct {
	m *framework.Megatron
}

func (h hideHints) Name() string                        { return h.m.Name() }
func (h hideHints) World() int                          { return h.m.World() }
func (h hideHints) Run(rank int, dev cuda.Device) error { return h.m.Run(rank, dev) }
func (h hideHints) CommGroups() map[uint64][]int        { return h.m.CommGroups() }
func (h hideHints) Probe() workload.Workload {
	inner := h.m.Probe()
	if inner == workload.Workload(h.m) {
		return h
	}
	return hideHints{m: inner.(*framework.Megatron)}
}

var (
	_ workload.Prober     = hideHints{}
	_ workload.GroupAware = hideHints{}
)

// captureEqual compares everything about two captures except their
// wall-clock and emulation accounting (which legitimately differ
// between the fast path and the full probe).
func captureEqual(t *testing.T, hinted, full *Capture) {
	t.Helper()
	if hinted.UniqueWorkers != full.UniqueWorkers || hinted.TotalWorkers != full.TotalWorkers {
		t.Fatalf("worker accounting differs: hinted %d/%d, full %d/%d",
			hinted.UniqueWorkers, hinted.TotalWorkers, full.UniqueWorkers, full.TotalWorkers)
	}
	if hinted.PeakMemBytes != full.PeakMemBytes || hinted.OOM != full.OOM {
		t.Fatalf("memory verdict differs: hinted (%d, %t), full (%d, %t)",
			hinted.PeakMemBytes, hinted.OOM, full.PeakMemBytes, full.OOM)
	}
	if !reflect.DeepEqual(hinted.Comms, full.Comms) {
		t.Fatalf("communicator membership differs:\nhinted: %v\nfull:   %v", hinted.Comms, full.Comms)
	}
	if !reflect.DeepEqual(hinted.CommSizes, full.CommSizes) {
		t.Fatalf("communicator sizes differ:\nhinted: %v\nfull:   %v", hinted.CommSizes, full.CommSizes)
	}
	if !reflect.DeepEqual(hinted.Participants, full.Participants) {
		t.Fatal("participation counts differ")
	}
	var hj, fj bytes.Buffer
	if err := hinted.Job.WriteJSON(&hj); err != nil {
		t.Fatal(err)
	}
	if err := full.Job.WriteJSON(&fj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hj.Bytes(), fj.Bytes()) {
		t.Fatal("collated job traces are not byte-identical")
	}
}

func TestClassHintedCaptureMatchesFullProbe(t *testing.T) {
	cluster := hardware.DGXV100(2)
	for _, iters := range []int{1, 2} {
		cfg := framework.MegatronConfig{
			Model: models.GPT3_1_3B(), NGPUs: 16, GlobalBatch: 32,
			TP: 2, PP: 2, MicroBatches: 2, Iterations: iters,
		}
		m := megatron(t, cfg)
		p := oraclePipeline(cluster, Options{}) // dynamic dedup, no selective launch

		hinted, err := p.Capture(context.Background(), m)
		if err != nil {
			t.Fatalf("hinted capture (it=%d): %v", iters, err)
		}
		full, err := p.Capture(context.Background(), hideHints{m: m})
		if err != nil {
			t.Fatalf("full-probe capture (it=%d): %v", iters, err)
		}

		if !hinted.ClassHinted {
			t.Fatalf("it=%d: megatron capture did not take the class-hint fast path", iters)
		}
		if full.ClassHinted {
			t.Fatalf("it=%d: hidden-hint capture claims the fast path", iters)
		}
		// tp2/pp2/dp4: 2 classes of 8 — one representative plus two
		// verification samples each, then (for it>1) one full-workload
		// emulation per unique rank. The full probe pays all 16.
		probeCost := 6
		fullEmuls := 16
		if iters > 1 {
			probeCost += hinted.UniqueWorkers
			fullEmuls += full.UniqueWorkers
		}
		if hinted.RankEmulations != probeCost {
			t.Errorf("it=%d: hinted RankEmulations = %d, want %d", iters, hinted.RankEmulations, probeCost)
		}
		if full.RankEmulations != fullEmuls {
			t.Errorf("it=%d: full RankEmulations = %d, want %d", iters, full.RankEmulations, fullEmuls)
		}
		captureEqual(t, hinted, full)

		// And the reports downstream are bit-identical too.
		rh, err := p.Simulate(context.Background(), hinted, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := p.Simulate(context.Background(), full, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		rh.Stages, rf.Stages = StageTimings{}, StageTimings{}
		if !reflect.DeepEqual(rh, rf) {
			t.Errorf("it=%d: reports diverge:\nhinted: %+v\nfull:   %+v", iters, rh, rf)
		}
	}
}

// hintedWorkload is a minimal ClassHinter whose per-rank behavior and
// claimed classes the tests control directly.
type hintedWorkload struct {
	name    string
	world   int
	classes [][]int
	body    func(rank int, dev cuda.Device) error
}

func (h *hintedWorkload) Name() string         { return h.name }
func (h *hintedWorkload) World() int           { return h.world }
func (h *hintedWorkload) RankClasses() [][]int { return h.classes }
func (h *hintedWorkload) Run(rank int, dev cuda.Device) error {
	return h.body(rank, dev)
}

// plainKernels emits count kernels on one stream.
func plainKernels(dev cuda.Device, count int) error {
	s, err := dev.StreamCreate()
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		if err := dev.LaunchKernel(cuda.KernelDesc{
			Name: "vectorized_elementwise_kernel", Dims: []int{1 << 16},
			Bytes: 1 << 18, DType: "fp32",
		}, s); err != nil {
			return err
		}
	}
	return dev.StreamSynchronize(s)
}

func TestLyingClassHintsCaughtBySample(t *testing.T) {
	cluster := hardware.DGXV100(1)
	// Ranks 0..2 are identical; rank 3 performs extra work. The hint
	// lies that all four are one class, so the deterministic sample
	// (middle and last member: ranks 2 and 3) must expose rank 3.
	mk := func() *hintedWorkload {
		return &hintedWorkload{
			name:    "liar",
			world:   4,
			classes: [][]int{{0, 1, 2, 3}},
			body: func(rank int, dev cuda.Device) error {
				n := 4
				if rank == 3 {
					n = 7
				}
				return plainKernels(dev, n)
			},
		}
	}
	p := oraclePipeline(cluster, Options{})
	hinted, err := p.Capture(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if hinted.ClassHinted {
		t.Fatal("lying hint survived verification")
	}
	if hinted.UniqueWorkers != 2 {
		t.Fatalf("unique workers = %d, want 2 (ranks {0,1,2} and {3})", hinted.UniqueWorkers)
	}
	// Fallback cost: the failed probe (rep 0 + samples 2,3) plus the
	// full-path emulation of every rank.
	if hinted.RankEmulations != 3+4 {
		t.Errorf("RankEmulations = %d, want 7 (3 probe + 4 fallback)", hinted.RankEmulations)
	}

	// The fallback must be bit-identical to never having hinted: same
	// workload body without the ClassHinter interface.
	plain := &hintedWorkload{name: "liar", world: 4, body: mk().body}
	ref, err := p.Capture(context.Background(), &noHints{plain})
	if err != nil {
		t.Fatal(err)
	}
	captureEqual(t, hinted, ref)

	rh, err := p.Simulate(context.Background(), hinted, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := p.Simulate(context.Background(), ref, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rh.Stages, rr.Stages = StageTimings{}, StageTimings{}
	if !reflect.DeepEqual(rh, rr) {
		t.Fatalf("fallback report diverges from unhinted report:\n%+v\n%+v", rh, rr)
	}
}

// noHints strips every optional interface from a workload.
type noHints struct {
	w workload.Workload
}

func (n *noHints) Name() string                        { return n.w.Name() }
func (n *noHints) World() int                          { return n.w.World() }
func (n *noHints) Run(rank int, dev cuda.Device) error { return n.w.Run(rank, dev) }

func TestMalformedClassHintsFallBack(t *testing.T) {
	cluster := hardware.DGXV100(1)
	body := func(rank int, dev cuda.Device) error { return plainKernels(dev, 3) }
	for name, classes := range map[string][][]int{
		"missing-rank":   {{0, 1, 2}},
		"duplicate-rank": {{0, 1}, {1, 2, 3}},
		"out-of-range":   {{0, 1, 2, 4}},
		"unsorted":       {{0, 2, 1, 3}},
		"empty-class":    {{0, 1, 2, 3}, {}},
	} {
		w := &hintedWorkload{name: name, world: 4, classes: classes, body: body}
		cap, err := oraclePipeline(cluster, Options{}).Capture(context.Background(), w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cap.ClassHinted {
			t.Errorf("%s: malformed partition accepted", name)
		}
		if cap.UniqueWorkers != 1 {
			t.Errorf("%s: unique workers = %d, want 1", name, cap.UniqueWorkers)
		}
	}
}

func TestHyperscaleClassHintedCapture(t *testing.T) {
	// A ≥256-world fixture: capture must scale with unique structure
	// (2 pipeline stages), not world size — the acceptance bound is
	// classes + verification samples.
	cluster := hardware.DGXV100(32)
	cfg := framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 256, GlobalBatch: 128,
		TP: 2, PP: 2, MicroBatches: 1,
	}
	m := megatron(t, cfg)
	p := oraclePipeline(cluster, Options{})
	cap, err := p.Capture(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if cap.OOM {
		t.Fatalf("fixture OOM (peak %d)", cap.PeakMemBytes)
	}
	if !cap.ClassHinted {
		t.Fatal("hyperscale capture did not take the class-hint fast path")
	}
	classes := len(m.RankClasses())
	samples := 2 * classes // middle + last member per class
	if cap.RankEmulations > classes+samples {
		t.Fatalf("RankEmulations = %d, want ≤ classes+samples = %d (world %d)",
			cap.RankEmulations, classes+samples, cfg.NGPUs)
	}
	if cap.TotalWorkers != 256 || cap.UniqueWorkers != classes {
		t.Fatalf("workers = %d/%d, want %d/256", cap.UniqueWorkers, cap.TotalWorkers, classes)
	}
}
