package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"maya/internal/faults"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func TestFaultPlanThroughPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	ctx := context.Background()
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{NoDedup: true})
	cfg := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2}
	c, err := p.Capture(ctx, megatron(t, cfg))
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	base, err := p.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("baseline Simulate: %v", err)
	}
	if base.Recovery != nil {
		t.Fatal("baseline report has Recovery without a plan")
	}

	// The trace itself holds one iteration; Iterations extends the
	// walk at the steady-state rate so the mid-run failure lands.
	plan := &faults.Plan{
		CheckpointEvery: 1,
		CheckpointCost:  base.IterTime / 10,
		Detect:          base.IterTime / 2,
		Restore:         base.IterTime / 4,
		Iterations:      8,
		Stragglers:      []faults.Straggler{{Ranks: []int{1}, Factor: 1.5}},
		Failures:        []faults.FailStop{{Rank: 3, At: 3 * base.IterTime}},
	}
	pf := &Pipeline{Cluster: p.Cluster, Suite: p.Suite, Opts: Options{NoDedup: true, Faults: plan}}
	rep, err := pf.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("fault Simulate: %v", err)
	}
	rec := rep.Recovery
	if rec == nil {
		t.Fatal("fault run returned no Recovery")
	}
	if len(rec.Failures) != 1 || rec.Failures[0].Rank != 3 {
		t.Fatalf("failures = %+v, want one for rank 3", rec.Failures)
	}
	if rec.Goodput <= 0 || rec.Goodput >= 1 {
		t.Fatalf("goodput = %v, want in (0, 1)", rec.Goodput)
	}
	if rec.PerturbedTime <= rec.CleanTime {
		t.Fatalf("perturbed %v not above clean %v despite straggler", rec.PerturbedTime, rec.CleanTime)
	}
	if rec.TotalTime <= rec.PerturbedTime {
		t.Fatalf("total %v not above perturbed %v despite failure", rec.TotalTime, rec.PerturbedTime)
	}

	// Bit-identical across reruns and across the pooled vs
	// scratch-owned engine strategies.
	again, err := pf.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(again.Recovery, rec) {
		t.Fatalf("rerun recovery diverged:\n got %+v\nwant %+v", again.Recovery, rec)
	}
	scratch := NewSimScratch()
	viaScratch, err := pf.SimulateScratch(ctx, c, 0, hardware.BF16, scratch, 0)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}
	if !reflect.DeepEqual(viaScratch.Recovery, rec) {
		t.Fatalf("scratch recovery diverged:\n got %+v\nwant %+v", viaScratch.Recovery, rec)
	}

	// The recovery block must survive the JSON contract round trip.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back.Recovery, rec) {
		t.Fatalf("JSON round trip diverged:\n got %+v\nwant %+v", back.Recovery, rec)
	}

	// A truncated run skips the walk: no Recovery on a lower bound.
	trunc, err := pf.SimulateScratch(ctx, c, 0, hardware.BF16, nil, time.Microsecond)
	if err != nil {
		t.Fatalf("truncated run: %v", err)
	}
	if !trunc.Truncated || trunc.Recovery != nil {
		t.Fatalf("truncated run: truncated=%v recovery=%v, want true/nil", trunc.Truncated, trunc.Recovery)
	}
}

func TestFaultPlanRejectsDedupedCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	ctx := context.Background()
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	// tp2 x pp2 x dp2: duplicate ranks collapse under dedup.
	cfg := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2}
	c, err := p.Capture(ctx, megatron(t, cfg))
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if c.UniqueWorkers >= c.TotalWorkers {
		t.Fatalf("fixture did not dedup (%d of %d unique)", c.UniqueWorkers, c.TotalWorkers)
	}
	pf := &Pipeline{Cluster: p.Cluster, Suite: p.Suite, Opts: Options{Faults: &faults.Plan{Detect: time.Second}}}
	if _, err := pf.Simulate(ctx, c, 0, hardware.BF16); err == nil {
		t.Fatal("fault plan accepted a deduplicated capture")
	}
}
