package core

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"maya/internal/trace"
)

// fuzzCaptureBytes serializes one structurally complete capture as
// the seed the mutator works from. Hand-built rather than emulated:
// every fuzz worker process replays the seed corpus on startup, so
// the seed must cost microseconds, not an emulation run.
func fuzzCaptureBytes(f *testing.F) []byte {
	f.Helper()
	mk := func(rank int) *trace.Worker {
		w := &trace.Worker{Rank: rank, Device: "V100", World: 2, PeakBytes: 1 << 20}
		w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkSetupEnd})
		w.Append(trace.Op{Kind: trace.KindKernel, Stream: 7, Name: "gemm",
			Dims: []int{64, 64}, FLOPs: 1 << 18, DType: "bf16", Dur: time.Millisecond})
		w.Append(trace.Op{Kind: trace.KindCollective, Stream: 7,
			Coll: &trace.Collective{Op: "ncclAllReduce", Bytes: 1 << 16, CommID: 0xc0, NRanks: 2, Rank: rank, Peer: -1},
			Dur:  time.Millisecond})
		w.Append(trace.Op{Kind: trace.KindDeviceSync})
		w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd})
		return w
	}
	job, err := trace.NewJob([]*trace.Worker{mk(0), mk(1)})
	if err != nil {
		f.Fatal(err)
	}
	c := &Capture{
		Workload: "fuzz-seed", Cluster: "8xV100", Topology: "auto",
		TotalWorkers: 2, UniqueWorkers: 2, Job: job,
		Comms:        map[uint64][]int{0xc0: {0, 1}},
		CommSizes:    map[uint64]int{0xc0: 2},
		PeakMemBytes: 1 << 20,
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// envelope wraps raw bytes as a trace payload with a correct header
// and checksum, so mutations reach the JSON and semantic layers
// instead of dying on the checksum.
func envelope(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], TraceFormatVersion)
	buf.Write(u16[:])
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	binary.BigEndian.PutUint64(u64[:], payloadSum(payload))
	buf.Write(u64[:])
	return buf.Bytes()
}

// FuzzReadTrace feeds the trace reader hostile bytes two ways: the
// raw input as-is (header, length and checksum handling) and wrapped
// in a valid envelope (JSON payload and semantic validation, e.g.
// null workers). Whatever arrives, ReadCapture must reject with an
// error or return a capture consistent enough to re-serialize —
// never panic, never over-allocate on a crafted length field.
func FuzzReadTrace(f *testing.F) {
	valid := fuzzCaptureBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated payload
	f.Add(valid[:len(traceMagic)+2+4]) // truncated header
	f.Add([]byte{})
	f.Add([]byte("not a trace"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40 // payload bit flip: checksum must catch it
	f.Add(corrupt)
	badver := append([]byte(nil), valid...)
	badver[len(traceMagic)] ^= 0xff // version bump: ErrTraceVersion
	f.Add(badver)
	f.Add(envelope([]byte(`{}`)))
	f.Add(envelope([]byte(`{"job":{"Workers":[null]}}`)))
	f.Add(envelope([]byte(`{"total_workers":-1,"job":{"Workers":[]}}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, blob := range [][]byte{data, envelope(data)} {
			c, err := ReadCapture(bytes.NewReader(blob))
			if err != nil {
				continue // rejected: fine, as long as it didn't panic
			}
			var out bytes.Buffer
			if _, err := c.WriteTo(&out); err != nil {
				t.Fatalf("accepted capture fails to re-serialize: %v", err)
			}
		}
	})
}
