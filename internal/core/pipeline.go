// Package core is Maya's prediction pipeline: transparent emulation
// of every (unique) worker, trace collation, kernel-runtime
// annotation and discrete-event simulation, producing a performance
// report for an unmodified training workload — no accelerator
// hardware involved.
//
// The same machinery measures "actual" performance by annotating the
// identical trace with the synthetic-silicon ground truth and
// replaying it in the simulator's physical mode; every evaluation
// experiment compares these two paths.
package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"maya/internal/collator"
	"maya/internal/emulator"
	"maya/internal/estimator"
	"maya/internal/faults"
	"maya/internal/hardware"
	"maya/internal/netsim"
	"maya/internal/silicon"
	"maya/internal/sim"
	"maya/internal/trace"
	"maya/internal/workload"
)

// Options configures prediction runs.
type Options struct {
	// NoDedup disables worker deduplication: every rank is emulated
	// and simulated (the Fig. 14 ablation baseline).
	NoDedup bool
	// SelectiveLaunch uses the workload's own unique-rank knowledge
	// (workload.SelectiveLauncher) instead of hash-based discovery,
	// skipping the all-ranks probe (§7.4).
	SelectiveLaunch bool
	// Validate enables cross-worker collective consistency checks.
	Validate bool
	// Oracle, when set, annotates kernels with ground-truth runtimes
	// instead of learned estimates — the "oracle" rows of Table 3.
	Oracle *silicon.Oracle
	// Seed namespaces measurement randomness for actual runs.
	Seed uint64
	// Observer, when set, watches the simulation at CUDA-API
	// granularity (e.g. a sim.Timeline recording a Chrome trace).
	// Use one observer per run; it is not shared safely across
	// concurrent calls.
	Observer sim.Observer
	// Topology is the network-topology spec predictions run against
	// (topo.ByName syntax; empty means the cluster's canonical
	// hierarchy). Stamped into captures for provenance.
	Topology string
	// Congestion, when set, resolves collective durations at
	// simulation time against this network model's shared-link
	// occupancy: concurrently-active collectives sharing a link split
	// its bandwidth. Nil replays annotated durations verbatim.
	Congestion *netsim.Model
	// Breakdown attaches a stall-attribution observer to the run and
	// fills Report.Stalls with the per-worker result.
	Breakdown bool
	// Faults, when set, perturbs the simulation with the plan's
	// stragglers and evaluates its failures, resizes and checkpoint
	// schedule into Report.Recovery. Fault scenarios address world
	// ranks, so the capture must carry every worker (NoDedup, no
	// selective launch). Nil costs nothing.
	Faults *faults.Plan
}

// StageTimings records the wall-clock cost of each pipeline stage
// (the Fig. 13 / Table 6 breakdown).
type StageTimings struct {
	Emulate  time.Duration
	Collate  time.Duration
	Estimate time.Duration
	Simulate time.Duration
}

// Total sums the stages.
func (s StageTimings) Total() time.Duration {
	return s.Emulate + s.Collate + s.Estimate + s.Simulate
}

// Report is a prediction (or measurement) result.
type Report struct {
	Workload string
	Cluster  string

	// IterTime is the steady-state per-iteration time.
	IterTime time.Duration
	// CommTime is the busiest worker's collective wall time.
	CommTime time.Duration
	// ExposedComm is collective time not hidden behind compute.
	ExposedComm time.Duration
	// PeakMemBytes is the largest per-device allocator high-water mark.
	PeakMemBytes int64
	// OOM marks configurations that exceeded device memory; timing
	// fields are zero in that case.
	OOM bool
	// Truncated marks a simulation abandoned at the caller's
	// simulated-clock horizon (SimulateScratch's limit): every timing
	// field is a lower bound on the full run, and the true iteration
	// time is known to exceed the horizon. Recipe searches use this to
	// discard trials provably slower than an incumbent.
	Truncated bool
	// MFU is model FLOPs utilization, when model FLOPs were supplied.
	MFU float64

	Stages        StageTimings
	UniqueWorkers int
	TotalWorkers  int

	// Stalls attributes each worker's idle time (event waits,
	// collective straggler waits, host-bound stretches, pipeline
	// bubbles). Populated only when the run requested a breakdown
	// (Options.Breakdown / maya.WithStallBreakdown); nil otherwise.
	Stalls *StallProfile

	// Recovery is the fault-scenario evaluation (goodput, lost work,
	// detection/restore/redo time). Populated only when the run
	// carried a fault plan (Options.Faults / maya.WithFaults); nil
	// otherwise.
	Recovery *sim.RecoveryReport
}

// WorkerStall is one worker's stall attribution.
type WorkerStall = sim.StallBreakdown

// StallProfile is the per-worker stall attribution of one simulated
// run — the Breakdown observer's result, indexed by simulated worker.
type StallProfile struct {
	Workers []WorkerStall
}

// Total sums the attribution across workers.
func (s *StallProfile) Total() WorkerStall {
	var t WorkerStall
	for _, w := range s.Workers {
		t.EventWait += w.EventWait
		t.CollectiveWait += w.CollectiveWait
		t.HostBound += w.HostBound
		t.Bubble += w.Bubble
		t.Busy += w.Busy
	}
	return t
}

func (r *Report) String() string {
	if r.OOM {
		return fmt.Sprintf("%s on %s: OOM (peak %0.1f GiB)", r.Workload, r.Cluster, float64(r.PeakMemBytes)/(1<<30))
	}
	return fmt.Sprintf("%s on %s: iter %v, comm %v, peak %0.1f GiB, MFU %0.1f%%",
		r.Workload, r.Cluster, r.IterTime, r.CommTime, float64(r.PeakMemBytes)/(1<<30), r.MFU*100)
}

// Pipeline predicts workload performance on one cluster. It is a
// composition of three stages over the Capture artifact:
//
//	Capture  — emulate + collate (the expensive half); yields a
//	           reusable, immutable Capture
//	Simulate — annotate a pooled duration overlay (learned suite via
//	           the capture's estimate plan, or Opts.Oracle) and
//	           replay in prediction mode
//	Measure  — annotate with silicon ground truth and replay in
//	           physical mode (the deployment stand-in)
//
// Predict and MeasureActual are thin compositions; callers that
// evaluate one workload several ways (oracle vs learned, ±netsim,
// predicted vs actual) should Capture once and fan out.
type Pipeline struct {
	Cluster hardware.Cluster
	Suite   *estimator.Suite
	Opts    Options
}

// Capture runs the emulation and collation stages once and returns
// the collated trace artifact. Out-of-memory configurations are a
// result, not an error: the returned capture carries the OOM verdict
// (with a nil Job) exactly as the emulator detected it. Cancellation
// of ctx aborts emulation between ranks and collation between
// passes.
func (p *Pipeline) Capture(ctx context.Context, w workload.Workload) (*Capture, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &Capture{
		Workload:     w.Name(),
		Cluster:      p.Cluster.Name,
		Topology:     p.Opts.Topology,
		TotalWorkers: w.World(),
	}

	t0 := time.Now()
	workers, comms, sizes, err := p.emulate(ctx, w, c)
	if err != nil {
		return nil, err
	}
	c.EmulateTime = time.Since(t0)

	for _, wk := range workers {
		if wk.PeakBytes > c.PeakMemBytes {
			c.PeakMemBytes = wk.PeakBytes
		}
		if wk.OOM {
			c.OOM = true
		}
	}
	c.UniqueWorkers = len(workers)
	if c.OOM {
		return c, nil
	}

	t0 = time.Now()
	col, err := collator.Collate(ctx, workers, collator.Options{Validate: p.Opts.Validate})
	if err != nil {
		return nil, err
	}
	c.CollateTime = time.Since(t0)
	// Membership comes from the emulation pass (complete, including
	// GroupAware supplements), not the collator's unique-worker view.
	c.Job, c.Comms, c.CommSizes = col.Job, comms, sizes
	c.Participants = col.Participants
	return c, nil
}

// Simulate annotates a view of the capture's job — with the
// ground-truth oracle when Opts.Oracle is set, otherwise with the
// learned suite — and replays it in prediction mode. The capture is
// never mutated: annotations land in a pooled duration overlay the
// simulator reads through (falling back to a deep copy for jobs the
// overlay cannot index), so any number of concurrent Simulate calls
// can reuse one capture; the report's Emulate/Collate stage timings
// are zero because those stages did not run.
//
// Suite annotation goes through the capture-attached estimate plan:
// the first Simulate of a (capture, suite) pair resolves every unique
// kernel shape once into a positional duration table, and every later
// Simulate of the pair — batch sweeps, search trials, repeated
// per-call annotation — fills the overlay with one copy.
func (p *Pipeline) Simulate(ctx context.Context, c *Capture, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	return p.SimulateScratch(ctx, c, modelFLOPs, dtype, nil, 0)
}

// SimScratch is caller-owned simulation scratch: a persistent engine
// and annotation overlay that one goroutine reuses across many
// Simulate calls. A search worker evaluating thousands of trials owns
// one SimScratch for its lifetime, so trial evaluation skips the
// process-wide engine and overlay pools entirely (no cross-goroutine
// pool churn, storage stays hot in one worker's hands). Not safe for
// concurrent use; zero value is not usable — construct with
// NewSimScratch.
type SimScratch struct {
	engine *sim.Engine
	ann    *trace.Annotations
}

// NewSimScratch returns fresh scratch for one evaluation goroutine.
func NewSimScratch() *SimScratch {
	return &SimScratch{engine: sim.NewEngine(), ann: &trace.Annotations{}}
}

var simScratchPool = sync.Pool{New: func() any { return NewSimScratch() }}

// AcquireSimScratch returns scratch from a process-wide pool. Unlike
// NewSimScratch it usually hands back storage already grown by a
// previous owner, so a fresh batch of search workers skips the
// slice-growth churn of their first trials. Pair with Release.
func AcquireSimScratch() *SimScratch {
	return simScratchPool.Get().(*SimScratch)
}

// Release scrubs the scratch — dropping every reference to the last
// simulated job — and parks it for the next AcquireSimScratch.
// The scratch must not be used after Release.
func (s *SimScratch) Release() {
	s.engine.Scrub()
	simScratchPool.Put(s)
}

// SimulateScratch is Simulate with two search-loop extensions: when
// scratch is non-nil the run reuses the caller's persistent engine
// and overlay instead of the process-wide pools, and when limit is
// positive the simulation stops at that simulated-clock horizon,
// returning a report with Truncated set (see sim.Options.TimeLimit).
// A nil scratch with zero limit is exactly Simulate.
func (p *Pipeline) SimulateScratch(ctx context.Context, c *Capture, modelFLOPs float64, dtype hardware.DType, scratch *SimScratch, limit time.Duration) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := c.baseReport()
	if c.OOM {
		return rep, nil
	}
	t0 := time.Now()
	job := c.Job
	var ann *trace.Annotations
	if scratch != nil {
		if scratch.ann.Rebind(job) {
			ann = scratch.ann
		}
	} else {
		ann = trace.AcquireAnnotations(job)
		defer ann.Release()
	}
	if ann == nil {
		job = c.Job.Clone()
	}
	var err error
	if p.Opts.Oracle != nil {
		err = p.Opts.Oracle.AnnotateInto(ctx, job, c.Comms, c.CommSizes, ann)
	} else {
		if p.Suite == nil {
			return nil, errors.New("core: Simulate needs a trained Suite or an Oracle")
		}
		if ann != nil {
			var plan *estimator.EstimatePlan
			plan, err = c.planFor(ctx, p.Suite)
			if err == nil && !plan.Fill(ann) {
				// The plan was built for this capture's job, so a
				// layout mismatch cannot happen; annotate directly if
				// it somehow does.
				err = p.Suite.AnnotateInto(ctx, job, c.Comms, c.CommSizes, nil, ann)
			}
		} else {
			err = p.Suite.AnnotateInto(ctx, job, c.Comms, c.CommSizes, nil, nil)
		}
	}
	if err != nil {
		return nil, err
	}
	rep.Stages.Estimate = time.Since(t0)

	t0 = time.Now()
	obs, bd := p.runObserver()
	simOpts := sim.Options{Participants: c.Participants, Observer: obs, Annotations: ann, TimeLimit: limit}
	if p.Opts.Congestion != nil {
		simOpts.Congestion = c.congestionFor(p.Opts.Congestion)
	}
	if p.Opts.Faults != nil {
		// Fault plans address world ranks: a deduplicated or
		// selectively launched capture is missing potential victims.
		if len(job.Workers) != c.TotalWorkers {
			return nil, fmt.Errorf("core: fault scenarios need every rank simulated, capture of %s has %d of %d workers (capture with dedup disabled)",
				c.Workload, len(job.Workers), c.TotalWorkers)
		}
		inj, ferr := p.Opts.Faults.Injection(job)
		if ferr != nil {
			return nil, ferr
		}
		simOpts.Faults = inj
	}
	var sr *sim.Report
	if scratch != nil {
		scratch.engine.Reset(job, simOpts)
		sr, err = scratch.engine.Run(ctx)
	} else {
		sr, err = sim.RunPooled(ctx, job, simOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: simulating %s: %w", c.Workload, err)
	}
	if p.Opts.Faults != nil && !sr.Truncated {
		// The main run above is the straggler-perturbed baseline; the
		// walk re-runs the job per failure (and once cleanly when
		// stragglers skew the baseline), reusing this call's engine
		// strategy. Per-run observers are Evaluate's own — the
		// caller's observer saw exactly one run, the main one.
		runner := func(rctx context.Context, inj *sim.Injection, robs sim.Observer) (*sim.Report, error) {
			o := simOpts
			o.Faults = inj
			o.Observer = robs
			if scratch != nil {
				scratch.engine.Reset(job, o)
				return scratch.engine.Run(rctx)
			}
			return sim.RunPooled(rctx, job, o)
		}
		rec, ferr := faults.Evaluate(ctx, p.Opts.Faults, job, sr, runner)
		if ferr != nil {
			return nil, fmt.Errorf("core: fault scenario for %s: %w", c.Workload, ferr)
		}
		rep.Recovery = rec
	}
	rep.Stages.Simulate = time.Since(t0)

	rep.Truncated = sr.Truncated
	p.fill(rep, sr, modelFLOPs, dtype)
	attachStalls(rep, bd, sr)
	return rep, nil
}

// runObserver assembles the simulation observer for one run: the
// caller-supplied one, plus a stall-attribution collector when the
// pipeline asks for a breakdown.
func (p *Pipeline) runObserver() (sim.Observer, *sim.Breakdown) {
	if !p.Opts.Breakdown {
		return p.Opts.Observer, nil
	}
	bd := sim.NewBreakdown()
	return sim.Observers(p.Opts.Observer, bd), bd
}

// attachStalls resolves the breakdown collector into the report.
func attachStalls(rep *Report, bd *sim.Breakdown, sr *sim.Report) {
	if bd != nil {
		rep.Stalls = &StallProfile{Workers: bd.Result(sr)}
	}
}

// Measure replays the capture against the silicon ground truth in
// physical mode — "deploy the job on the cluster and time it". The
// capture is never mutated (the oracle annotates a deep copy), so
// measurement and any number of predictions share one capture. It
// needs no trained suite.
func (p *Pipeline) Measure(ctx context.Context, c *Capture, oracle *silicon.Oracle, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := c.baseReport()
	if c.OOM {
		return rep, nil
	}
	t0 := time.Now()
	obs, bd := p.runObserver()
	sr, err := silicon.MeasureActual(ctx, c.Job, oracle, c.Comms, c.CommSizes, c.Participants, p.Opts.Seed, obs)
	if err != nil {
		return nil, fmt.Errorf("core: measuring %s: %w", c.Workload, err)
	}
	rep.Stages.Simulate = time.Since(t0)
	p.fill(rep, sr, modelFLOPs, dtype)
	attachStalls(rep, bd, sr)
	return rep, nil
}

// Predict runs the full pipeline: Capture then Simulate. modelFLOPs
// is the workload's per-iteration model FLOP count (for MFU); pass 0
// to skip MFU. Every stage observes ctx: cancellation aborts
// emulation between ranks, collation, estimation and the simulator's
// event loop, so a large multi-rank prediction stops promptly and
// returns ctx.Err().
func (p *Pipeline) Predict(ctx context.Context, w workload.Workload, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	c, err := p.Capture(ctx, w)
	if err != nil {
		return nil, err
	}
	rep, err := p.Simulate(ctx, c, modelFLOPs, dtype)
	if err != nil {
		return nil, err
	}
	rep.Stages.Emulate, rep.Stages.Collate = c.EmulateTime, c.CollateTime
	return rep, nil
}

// MeasureActual is the ground-truth path: Capture then Measure —
// same trace, true kernel times, physical-mode simulation. It stands
// in for deploying the workload on the cluster.
func (p *Pipeline) MeasureActual(ctx context.Context, w workload.Workload, oracle *silicon.Oracle, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	c, err := p.Capture(ctx, w)
	if err != nil {
		return nil, err
	}
	rep, err := p.Measure(ctx, c, oracle, modelFLOPs, dtype)
	if err != nil {
		return nil, err
	}
	rep.Stages.Emulate, rep.Stages.Collate = c.EmulateTime, c.CollateTime
	return rep, nil
}

func (p *Pipeline) fill(rep *Report, sr *sim.Report, modelFLOPs float64, dtype hardware.DType) {
	rep.IterTime = sr.IterTime()
	for i := range sr.CommBusy {
		if sr.CommBusy[i] > rep.CommTime {
			rep.CommTime = sr.CommBusy[i]
		}
		if sr.ExposedComm[i] > rep.ExposedComm {
			rep.ExposedComm = sr.ExposedComm[i]
		}
	}
	if modelFLOPs > 0 && rep.IterTime > 0 {
		peak := p.Cluster.Node.GPU.PeakTFLOPS(dtype) * 1e12
		avail := rep.IterTime.Seconds() * float64(rep.TotalWorkers) * peak
		rep.MFU = modelFLOPs / avail
	}
}

// emulate runs the workload's ranks through transparent emulators,
// applying selective launch, verified structural deduplication
// (ClassHinter) or dynamic deduplication. Alongside the (possibly
// reduced) worker set it returns the complete communicator
// membership: from the pre-deduplication traces when all ranks were
// emulated, supplemented by configuration knowledge (GroupAware) for
// selectively launched and class-hinted jobs.
func (p *Pipeline) emulate(ctx context.Context, w workload.Workload, c *Capture) ([]*trace.Worker, map[uint64][]int, map[uint64]int, error) {
	// Selective launch: the workload names its unique ranks a priori.
	if p.Opts.SelectiveLaunch && !p.Opts.NoDedup {
		if sl, ok := w.(workload.SelectiveLauncher); ok {
			workers, err := p.emulateRanks(ctx, w, sl.UniqueRanks(), c)
			if err != nil {
				return nil, nil, nil, err
			}
			comms, sizes, err := p.membership(w, workers)
			return workers, comms, sizes, err
		}
	}
	if !p.Opts.NoDedup && w.World() > 1 {
		// Structural deduplication: the workload predicts its rank
		// equivalence classes from topology; the pipeline probes one
		// representative per class plus a deterministic verification
		// sample and falls back to the full probe on any mismatch, so
		// capture scales with unique structure instead of world size.
		if ch, ok := w.(workload.ClassHinter); ok {
			workers, comms, sizes, served, err := p.emulateClassHinted(ctx, w, ch, c)
			if err != nil {
				return nil, nil, nil, err
			}
			if served {
				c.ClassHinted = true
				return workers, comms, sizes, nil
			}
		}
		// Dynamic deduplication: probe every rank for one iteration,
		// hash the operation streams, then run the full workload only
		// on the unique representatives (paper §4.2).
		if pr, ok := w.(workload.Prober); ok {
			probe := pr.Probe()
			probed, err := p.emulateRanks(ctx, probe, allRanks(w.World()), c)
			if err != nil {
				return nil, nil, nil, err
			}
			comms, sizes, err := p.membership(w, probed)
			if err != nil {
				return nil, nil, nil, err
			}
			unique, _ := collator.Deduplicate(probed)
			reps := make([]int, len(unique))
			for i, u := range unique {
				reps[i] = u.Rank
			}
			if sameWorkload(probe, w) {
				// Single-iteration workloads: the probe trace is the
				// full trace.
				return unique, comms, sizes, nil
			}
			workers, err := p.emulateRanks(ctx, w, reps, c)
			if err != nil {
				return nil, nil, nil, err
			}
			return workers, comms, sizes, nil
		}
	}
	workers, err := p.emulateRanks(ctx, w, allRanks(w.World()), c)
	if err != nil {
		return nil, nil, nil, err
	}
	comms, sizes, err := p.membership(w, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	if p.Opts.NoDedup || len(workers) <= 1 {
		return workers, comms, sizes, nil
	}
	unique, _ := collator.Deduplicate(workers)
	return unique, comms, sizes, nil
}

// emulateClassHinted is the structural-dedup fast path: probe only
// class representatives plus a verification sample, check the
// samples' trace signatures against their representatives, and build
// the capture from the deduplicated probes. served=false (with nil
// error) means the hint could not be trusted — malformed partition, a
// signature mismatch, or membership the workload's group knowledge
// cannot complete — and the caller must fall back to the full probe,
// which produces bit-identical results by construction.
func (p *Pipeline) emulateClassHinted(ctx context.Context, w workload.Workload, ch workload.ClassHinter, c *Capture) (workers []*trace.Worker, comms map[uint64][]int, sizes map[uint64]int, served bool, err error) {
	classes := ch.RankClasses()
	if !validClasses(classes, w.World()) {
		return nil, nil, nil, false, nil
	}
	var probeRanks []int
	for _, class := range classes {
		probeRanks = append(probeRanks, class[0])
		probeRanks = append(probeRanks, verificationSample(class)...)
	}
	sort.Ints(probeRanks)

	// Without a Prober the workload is its own (full) probe.
	probe := workload.Workload(w)
	probeIsFull := true
	if pr, ok := w.(workload.Prober); ok {
		probe = pr.Probe()
		probeIsFull = sameWorkload(probe, w)
	}
	probed, err := p.emulateRanks(ctx, probe, probeRanks, c)
	if err != nil {
		return nil, nil, nil, false, err
	}
	// Deduplicate merges the verification samples back into their
	// representatives — and merges hinted classes that turn out to be
	// duplicates of each other, exactly as the full probe would. Its
	// groups double as the verification: a sampled member whose trace
	// diverges from its class representative (by signature or by the
	// collision guard's structural check) lands in a different group.
	unique, groups := collator.Deduplicate(probed)
	repOf := make(map[int]int, len(probed))
	for rep, ranks := range groups {
		for _, r := range ranks {
			repOf[r] = rep
		}
	}
	for _, class := range classes {
		for _, s := range verificationSample(class) {
			if repOf[s] != repOf[class[0]] {
				// The hint lied: a sampled member's trace diverges
				// from its representative's.
				return nil, nil, nil, false, nil
			}
		}
	}
	comms, sizes, err = p.membership(w, probed)
	if err != nil {
		return nil, nil, nil, false, err
	}
	// The fast path must not change results. The full probe derives
	// complete communicator membership from every rank's trace; here
	// only the probed subset plus the workload's group knowledge is
	// available, so any group left partial forces the fallback.
	for id, size := range sizes {
		if len(comms[id]) != size {
			return nil, nil, nil, false, nil
		}
	}
	if probeIsFull {
		// The probe trace is the full trace (single-iteration
		// workloads and workloads without a cheap probe).
		return unique, comms, sizes, true, nil
	}
	reps := make([]int, len(unique))
	for i, u := range unique {
		reps[i] = u.Rank
	}
	workers, err = p.emulateRanks(ctx, w, reps, c)
	if err != nil {
		return nil, nil, nil, false, err
	}
	return workers, comms, sizes, true, nil
}

// sameWorkload reports whether two workload interface values are the
// same value, without panicking when their dynamic type is not
// comparable (a value workload holding a slice or map field): such
// values are conservatively treated as distinct.
func sameWorkload(a, b workload.Workload) bool {
	if v := reflect.ValueOf(a); !v.IsValid() || !v.Comparable() {
		return false
	}
	return a == b
}

// verificationSample returns the deterministic sample of non-
// representative class members whose traces the fast path checks
// against the representative's: the last member, plus the middle one
// for classes of three or more.
func verificationSample(class []int) []int {
	switch {
	case len(class) <= 1:
		return nil
	case len(class) == 2:
		return class[1:]
	default:
		mid, last := class[len(class)/2], class[len(class)-1]
		if mid == last {
			return []int{last}
		}
		return []int{mid, last}
	}
}

// validClasses reports whether classes is a well-formed partition of
// [0, world): every rank exactly once, each class non-empty and
// sorted ascending.
func validClasses(classes [][]int, world int) bool {
	seen := make([]bool, world)
	n := 0
	for _, class := range classes {
		if len(class) == 0 {
			return false
		}
		prev := -1
		for _, r := range class {
			if r < 0 || r >= world || r <= prev || seen[r] {
				return false
			}
			seen[r] = true
			prev = r
			n++
		}
	}
	return n == world
}

// membership reconstructs communicator membership from traces,
// supplemented by workload configuration knowledge when available.
func (p *Pipeline) membership(w workload.Workload, workers []*trace.Worker) (map[uint64][]int, map[uint64]int, error) {
	comms, sizes, err := collator.CommMembership(workers)
	if err != nil {
		return nil, nil, err
	}
	if ga, ok := w.(workload.GroupAware); ok {
		for id, group := range ga.CommGroups() {
			if len(comms[id]) < len(group) {
				comms[id] = group
				sizes[id] = len(group)
			}
		}
	}
	return comms, sizes, nil
}

// emulateRanks runs the given ranks through a bounded worker pool,
// one emulator per rank — a 4096-rank probe keeps GOMAXPROCS
// goroutines busy instead of spawning 4096 up front. Cancellation is
// observed at rank granularity: queued ranks never start after ctx is
// done, so a large emulation (the expensive stage at hyperscale)
// aborts after at most one in-flight rank per pool slot. Each call
// adds its rank count to the capture's emulation accounting.
func (p *Pipeline) emulateRanks(ctx context.Context, w workload.Workload, ranks []int, c *Capture) ([]*trace.Worker, error) {
	if c != nil {
		c.RankEmulations += len(ranks)
	}
	workers := make([]*trace.Worker, len(ranks))
	errs := make([]error, len(ranks))
	pool := min(runtime.GOMAXPROCS(0), len(ranks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < pool; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranks) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				rank := ranks[i]
				em := emulator.New(emulator.Config{
					Rank:  rank,
					World: w.World(),
					GPU:   p.Cluster.Node.GPU,
					Host:  p.Cluster.Host,
					Seed:  p.Opts.Seed,
				})
				err := w.Run(rank, em)
				tr := em.Trace()
				if err != nil && !tr.OOM {
					errs[i] = fmt.Errorf("core: emulating rank %d: %w", rank, err)
					continue
				}
				workers[i] = tr
			}
		}()
	}
	wg.Wait()
	// A genuine emulation failure outranks the cancellations that
	// follow it; report ctx.Err() only when every error is one.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || errors.Is(first, context.Canceled) || errors.Is(first, context.DeadlineExceeded) {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return workers, nil
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
