// Package core is Maya's prediction pipeline: transparent emulation
// of every (unique) worker, trace collation, kernel-runtime
// annotation and discrete-event simulation, producing a performance
// report for an unmodified training workload — no accelerator
// hardware involved.
//
// The same machinery measures "actual" performance by annotating the
// identical trace with the synthetic-silicon ground truth and
// replaying it in the simulator's physical mode; every evaluation
// experiment compares these two paths.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"maya/internal/collator"
	"maya/internal/emulator"
	"maya/internal/estimator"
	"maya/internal/hardware"
	"maya/internal/silicon"
	"maya/internal/sim"
	"maya/internal/trace"
	"maya/internal/workload"
)

// Options configures prediction runs.
type Options struct {
	// NoDedup disables worker deduplication: every rank is emulated
	// and simulated (the Fig. 14 ablation baseline).
	NoDedup bool
	// SelectiveLaunch uses the workload's own unique-rank knowledge
	// (workload.SelectiveLauncher) instead of hash-based discovery,
	// skipping the all-ranks probe (§7.4).
	SelectiveLaunch bool
	// Validate enables cross-worker collective consistency checks.
	Validate bool
	// Oracle, when set, annotates kernels with ground-truth runtimes
	// instead of learned estimates — the "oracle" rows of Table 3.
	Oracle *silicon.Oracle
	// Memo, when set, shares kernel-runtime estimates across
	// predictions (batch sweeps over one model reuse most shapes).
	Memo *estimator.KernelMemo
	// Seed namespaces measurement randomness for actual runs.
	Seed uint64
}

// StageTimings records the wall-clock cost of each pipeline stage
// (the Fig. 13 / Table 6 breakdown).
type StageTimings struct {
	Emulate  time.Duration
	Collate  time.Duration
	Estimate time.Duration
	Simulate time.Duration
}

// Total sums the stages.
func (s StageTimings) Total() time.Duration {
	return s.Emulate + s.Collate + s.Estimate + s.Simulate
}

// Report is a prediction (or measurement) result.
type Report struct {
	Workload string
	Cluster  string

	// IterTime is the steady-state per-iteration time.
	IterTime time.Duration
	// CommTime is the busiest worker's collective wall time.
	CommTime time.Duration
	// ExposedComm is collective time not hidden behind compute.
	ExposedComm time.Duration
	// PeakMemBytes is the largest per-device allocator high-water mark.
	PeakMemBytes int64
	// OOM marks configurations that exceeded device memory; timing
	// fields are zero in that case.
	OOM bool
	// MFU is model FLOPs utilization, when model FLOPs were supplied.
	MFU float64

	Stages        StageTimings
	UniqueWorkers int
	TotalWorkers  int
}

func (r *Report) String() string {
	if r.OOM {
		return fmt.Sprintf("%s on %s: OOM (peak %0.1f GiB)", r.Workload, r.Cluster, float64(r.PeakMemBytes)/(1<<30))
	}
	return fmt.Sprintf("%s on %s: iter %v, comm %v, peak %0.1f GiB, MFU %0.1f%%",
		r.Workload, r.Cluster, r.IterTime, r.CommTime, float64(r.PeakMemBytes)/(1<<30), r.MFU*100)
}

// Pipeline predicts workload performance on one cluster.
type Pipeline struct {
	Cluster hardware.Cluster
	Suite   *estimator.Suite
	Opts    Options
}

// Predict runs the full pipeline. modelFLOPs is the workload's
// per-iteration model FLOP count (for MFU); pass 0 to skip MFU.
// Every stage observes ctx: cancellation aborts emulation between
// ranks, collation, estimation and the simulator's event loop, so a
// large multi-rank prediction stops promptly and returns ctx.Err().
func (p *Pipeline) Predict(ctx context.Context, w workload.Workload, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{
		Workload:     w.Name(),
		Cluster:      p.Cluster.Name,
		TotalWorkers: w.World(),
	}

	t0 := time.Now()
	workers, comms, sizes, err := p.emulate(ctx, w)
	if err != nil {
		return nil, err
	}
	rep.Stages.Emulate = time.Since(t0)

	// Out-of-memory configurations are a result, not an error: the
	// emulator detected what the deployment would hit.
	for _, wk := range workers {
		if wk.PeakBytes > rep.PeakMemBytes {
			rep.PeakMemBytes = wk.PeakBytes
		}
		if wk.OOM {
			rep.OOM = true
		}
	}
	rep.UniqueWorkers = len(workers)
	if rep.OOM {
		return rep, nil
	}

	t0 = time.Now()
	col, err := collator.Collate(ctx, workers, collator.Options{Validate: p.Opts.Validate})
	if err != nil {
		return nil, err
	}
	rep.Stages.Collate = time.Since(t0)

	t0 = time.Now()
	if p.Opts.Oracle != nil {
		err = p.Opts.Oracle.Annotate(ctx, col.Job, comms, sizes)
	} else {
		err = p.Suite.AnnotateMemo(ctx, col.Job, comms, sizes, p.Opts.Memo)
	}
	if err != nil {
		return nil, err
	}
	rep.Stages.Estimate = time.Since(t0)

	t0 = time.Now()
	sr, err := sim.Run(ctx, col.Job, sim.Options{Participants: col.Participants})
	if err != nil {
		return nil, fmt.Errorf("core: simulating %s: %w", w.Name(), err)
	}
	rep.Stages.Simulate = time.Since(t0)

	p.fill(rep, sr, modelFLOPs, dtype)
	return rep, nil
}

// MeasureActual is the ground-truth path: same trace, true kernel
// times, physical-mode simulation. It stands in for deploying the
// workload on the cluster.
func (p *Pipeline) MeasureActual(ctx context.Context, w workload.Workload, oracle *silicon.Oracle, modelFLOPs float64, dtype hardware.DType) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{
		Workload:     w.Name(),
		Cluster:      p.Cluster.Name,
		TotalWorkers: w.World(),
	}
	workers, comms, sizes, err := p.emulate(ctx, w)
	if err != nil {
		return nil, err
	}
	for _, wk := range workers {
		if wk.PeakBytes > rep.PeakMemBytes {
			rep.PeakMemBytes = wk.PeakBytes
		}
		if wk.OOM {
			rep.OOM = true
		}
	}
	rep.UniqueWorkers = len(workers)
	if rep.OOM {
		return rep, nil
	}
	col, err := collator.Collate(ctx, workers, collator.Options{Validate: p.Opts.Validate})
	if err != nil {
		return nil, err
	}
	sr, err := silicon.MeasureActual(ctx, col.Job, oracle, comms, sizes, col.Participants, p.Opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: measuring %s: %w", w.Name(), err)
	}
	p.fill(rep, sr, modelFLOPs, dtype)
	return rep, nil
}

func (p *Pipeline) fill(rep *Report, sr *sim.Report, modelFLOPs float64, dtype hardware.DType) {
	rep.IterTime = sr.IterTime()
	for i := range sr.CommBusy {
		if sr.CommBusy[i] > rep.CommTime {
			rep.CommTime = sr.CommBusy[i]
		}
		if sr.ExposedComm[i] > rep.ExposedComm {
			rep.ExposedComm = sr.ExposedComm[i]
		}
	}
	if modelFLOPs > 0 && rep.IterTime > 0 {
		peak := p.Cluster.Node.GPU.PeakTFLOPS(dtype) * 1e12
		avail := rep.IterTime.Seconds() * float64(rep.TotalWorkers) * peak
		rep.MFU = modelFLOPs / avail
	}
}

// emulate runs the workload's ranks through transparent emulators,
// applying selective launch or dynamic deduplication. Alongside the
// (possibly reduced) worker set it returns the complete communicator
// membership: from the pre-deduplication traces when all ranks were
// emulated, supplemented by configuration knowledge (GroupAware) for
// selectively launched jobs.
func (p *Pipeline) emulate(ctx context.Context, w workload.Workload) ([]*trace.Worker, map[uint64][]int, map[uint64]int, error) {
	// Selective launch: the workload names its unique ranks a priori.
	if p.Opts.SelectiveLaunch && !p.Opts.NoDedup {
		if sl, ok := w.(workload.SelectiveLauncher); ok {
			workers, err := p.emulateRanks(ctx, w, sl.UniqueRanks())
			if err != nil {
				return nil, nil, nil, err
			}
			comms, sizes, err := p.membership(w, workers)
			return workers, comms, sizes, err
		}
	}
	// Dynamic deduplication: probe every rank for one iteration, hash
	// the operation streams, then run the full workload only on the
	// unique representatives (paper §4.2).
	if !p.Opts.NoDedup && w.World() > 1 {
		if pr, ok := w.(workload.Prober); ok {
			probe := pr.Probe()
			probed, err := p.emulateRanks(ctx, probe, allRanks(w.World()))
			if err != nil {
				return nil, nil, nil, err
			}
			comms, sizes, err := p.membership(w, probed)
			if err != nil {
				return nil, nil, nil, err
			}
			unique, _ := collator.Deduplicate(probed)
			reps := make([]int, len(unique))
			for i, u := range unique {
				reps[i] = u.Rank
			}
			if probe == workload.Workload(w) {
				// Single-iteration workloads: the probe trace is the
				// full trace.
				return unique, comms, sizes, nil
			}
			workers, err := p.emulateRanks(ctx, w, reps)
			if err != nil {
				return nil, nil, nil, err
			}
			return workers, comms, sizes, nil
		}
	}
	workers, err := p.emulateRanks(ctx, w, allRanks(w.World()))
	if err != nil {
		return nil, nil, nil, err
	}
	comms, sizes, err := p.membership(w, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	if p.Opts.NoDedup || len(workers) <= 1 {
		return workers, comms, sizes, nil
	}
	unique, _ := collator.Deduplicate(workers)
	return unique, comms, sizes, nil
}

// membership reconstructs communicator membership from traces,
// supplemented by workload configuration knowledge when available.
func (p *Pipeline) membership(w workload.Workload, workers []*trace.Worker) (map[uint64][]int, map[uint64]int, error) {
	comms, sizes, err := collator.CommMembership(workers)
	if err != nil {
		return nil, nil, err
	}
	if ga, ok := w.(workload.GroupAware); ok {
		for id, group := range ga.CommGroups() {
			if len(comms[id]) < len(group) {
				comms[id] = group
				sizes[id] = len(group)
			}
		}
	}
	return comms, sizes, nil
}

// emulateRanks runs the given ranks concurrently, one emulator each.
// Cancellation is observed at rank granularity: queued ranks never
// start after ctx is done, so a large emulation (the expensive stage
// at hyperscale) aborts after at most one in-flight rank per worker
// slot.
func (p *Pipeline) emulateRanks(ctx context.Context, w workload.Workload, ranks []int) ([]*trace.Worker, error) {
	workers := make([]*trace.Worker, len(ranks))
	errs := make([]error, len(ranks))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, rank := range ranks {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			em := emulator.New(emulator.Config{
				Rank:  rank,
				World: w.World(),
				GPU:   p.Cluster.Node.GPU,
				Host:  p.Cluster.Host,
				Seed:  p.Opts.Seed,
			})
			err := w.Run(rank, em)
			tr := em.Trace()
			if err != nil && !tr.OOM {
				errs[i] = fmt.Errorf("core: emulating rank %d: %w", rank, err)
				return
			}
			workers[i] = tr
		}(i, rank)
	}
	wg.Wait()
	// A genuine emulation failure outranks the cancellations that
	// follow it; report ctx.Err() only when every error is one.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || errors.Is(first, context.Canceled) || errors.Is(first, context.DeadlineExceeded) {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return workers, nil
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
