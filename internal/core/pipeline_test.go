package core

import (
	"math"
	"testing"
	"time"

	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func pipelineFor(t *testing.T, cluster hardware.Cluster, opts Options) (*Pipeline, *Pipeline) {
	t.Helper()
	oracle := DefaultOracle(cluster)
	suite, _, err := SuiteFor(cluster, oracle, estimator.ProfileLLM)
	if err != nil {
		t.Fatalf("SuiteFor: %v", err)
	}
	p := &Pipeline{Cluster: cluster, Suite: suite, Opts: opts}
	return p, p
}

func megatron(t *testing.T, cfg framework.MegatronConfig) *framework.Megatron {
	t.Helper()
	m, err := framework.NewMegatron(cfg)
	if err != nil {
		t.Fatalf("NewMegatron(%+v): %v", cfg, err)
	}
	return m
}

func relErr(a, b time.Duration) float64 {
	return math.Abs(float64(a-b)) / float64(b)
}

func TestEndToEndPredictionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{Validate: true})
	oracle := DefaultOracle(cluster)

	configs := []framework.MegatronConfig{
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 1, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2, SeqParallel: true},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4, ActRecompute: true},
	}
	for _, cfg := range configs {
		m := megatron(t, cfg)
		flops := cfg.Model.TrainFLOPsPerIter(cfg.GlobalBatch)
		pred, err := p.Predict(m, flops, hardware.BF16)
		if err != nil {
			t.Fatalf("Predict(%s): %v", cfg, err)
		}
		actual, err := p.MeasureActual(m, oracle, flops, hardware.BF16)
		if err != nil {
			t.Fatalf("MeasureActual(%s): %v", cfg, err)
		}
		if pred.OOM || actual.OOM {
			t.Fatalf("%s unexpectedly OOM (peak %d)", cfg, pred.PeakMemBytes)
		}
		e := relErr(pred.IterTime, actual.IterTime)
		t.Logf("%s: pred %v actual %v err %.2f%% (mfu %.1f%%)", cfg, pred.IterTime, actual.IterTime, e*100, actual.MFU*100)
		if e > 0.10 {
			t.Errorf("%s: prediction error %.1f%% exceeds 10%%", cfg, e*100)
		}
		if pred.IterTime <= 0 {
			t.Errorf("%s: non-positive iteration time", cfg)
		}
	}
}

func TestOraclePredictionBeatsLearnedOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	oracle := DefaultOracle(cluster)
	pOracle := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{Oracle: oracle}}

	var e2e, orc float64
	configs := []framework.MegatronConfig{
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2},
	}
	for _, cfg := range configs {
		m := megatron(t, cfg)
		actual, err := p.MeasureActual(m, oracle, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := p.Predict(m, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		po, err := pOracle.Predict(m, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		e2e += relErr(pe.IterTime, actual.IterTime)
		orc += relErr(po.IterTime, actual.IterTime)
	}
	t.Logf("mean oracle err %.2f%%, mean e2e err %.2f%%", orc/3*100, e2e/3*100)
	if orc > 0.05*3 {
		t.Errorf("oracle error %.1f%% too large — simulator fidelity problem", orc/3*100)
	}
}

func TestDedupPreservesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(2)
	p, _ := pipelineFor(t, cluster, Options{})
	// 16 GPUs: tp2 x pp2 x dp4 — plenty of duplicate workers.
	cfg := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 16, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 2}
	m := megatron(t, cfg)

	full := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{NoDedup: true}}
	ded := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{}}
	sel := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{SelectiveLaunch: true}}

	rf, err := full.Predict(m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ded.Predict(m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sel.Predict(m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rf.UniqueWorkers != 16 {
		t.Errorf("no-dedup pipeline should simulate 16 workers, got %d", rf.UniqueWorkers)
	}
	if rd.UniqueWorkers >= rf.UniqueWorkers {
		t.Errorf("dedup did not reduce workers: %d vs %d", rd.UniqueWorkers, rf.UniqueWorkers)
	}
	if rs.UniqueWorkers != 2 {
		t.Errorf("selective launch should emulate one rank per pipeline stage (2), got %d", rs.UniqueWorkers)
	}
	if e := relErr(rd.IterTime, rf.IterTime); e > 0.02 {
		t.Errorf("dedup changed prediction by %.2f%%: %v vs %v", e*100, rd.IterTime, rf.IterTime)
	}
	if e := relErr(rs.IterTime, rf.IterTime); e > 0.02 {
		t.Errorf("selective launch changed prediction by %.2f%%: %v vs %v", e*100, rs.IterTime, rf.IterTime)
	}
}

func TestOOMDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	// 18.4B on 8 V100-40GB without sharding: hopelessly over capacity.
	cfg := framework.MegatronConfig{Model: models.GPT3_18_4B(), NGPUs: 8, GlobalBatch: 64, TP: 1, PP: 1, MicroBatches: 1}
	m := megatron(t, cfg)
	rep, err := p.Predict(m, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if !rep.OOM {
		t.Fatalf("expected OOM, got %v", rep)
	}
}

func TestKnobsMoveMemoryTheRightWay(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	base := framework.MegatronConfig{Model: models.GPT3_2_7B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 4}

	peak := func(cfg framework.MegatronConfig) int64 {
		rep, err := p.Predict(megatron(t, cfg), 0, hardware.BF16)
		if err != nil {
			t.Fatalf("Predict(%s): %v", cfg, err)
		}
		return rep.PeakMemBytes
	}

	basePeak := peak(base)

	rec := base
	rec.ActRecompute = true
	if p := peak(rec); p >= basePeak {
		t.Errorf("activation recomputation did not reduce memory: %d -> %d", basePeak, p)
	}

	sp := base
	sp.SeqParallel = true
	if p := peak(sp); p >= basePeak {
		t.Errorf("sequence parallelism did not reduce memory: %d -> %d", basePeak, p)
	}

	do := base
	do.DistOptimizer = true
	if p := peak(do); p >= basePeak {
		t.Errorf("distributed optimizer did not reduce memory: %d -> %d", basePeak, p)
	}

	moreTP := base
	moreTP.TP, moreTP.PP = 4, 2
	if p := peak(moreTP); p >= basePeak {
		t.Errorf("higher TP did not reduce memory: %d -> %d", basePeak, p)
	}
}

func TestInterleavingReducesIterTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	base := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 8}
	inter := base
	inter.VirtualStages = 2

	rb, err := p.Predict(megatron(t, base), 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := p.Predict(megatron(t, inter), 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rb.OOM || ri.OOM {
		t.Fatalf("test configs must fit in memory: base OOM=%t inter OOM=%t (peak %d)", rb.OOM, ri.OOM, rb.PeakMemBytes)
	}
	if ri.IterTime >= rb.IterTime {
		t.Errorf("interleaving (v=2) did not reduce iteration time: %v vs %v", ri.IterTime, rb.IterTime)
	}
}
