package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"maya/internal/cuda"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/workload"
)

func pipelineFor(t *testing.T, cluster hardware.Cluster, opts Options) (*Pipeline, *Pipeline) {
	t.Helper()
	oracle := DefaultOracle(cluster)
	suite, _, err := DefaultSuiteCache().SuiteFor(context.Background(), cluster, oracle, estimator.ProfileLLM)
	if err != nil {
		t.Fatalf("SuiteFor: %v", err)
	}
	p := &Pipeline{Cluster: cluster, Suite: suite, Opts: opts}
	return p, p
}

func megatron(t *testing.T, cfg framework.MegatronConfig) *framework.Megatron {
	t.Helper()
	m, err := framework.NewMegatron(cfg)
	if err != nil {
		t.Fatalf("NewMegatron(%+v): %v", cfg, err)
	}
	return m
}

func relErr(a, b time.Duration) float64 {
	return math.Abs(float64(a-b)) / float64(b)
}

func TestEndToEndPredictionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{Validate: true})
	oracle := DefaultOracle(cluster)

	configs := []framework.MegatronConfig{
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 1, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2, SeqParallel: true},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4, ActRecompute: true},
	}
	for _, cfg := range configs {
		m := megatron(t, cfg)
		flops := cfg.Model.TrainFLOPsPerIter(cfg.GlobalBatch)
		pred, err := p.Predict(context.Background(), m, flops, hardware.BF16)
		if err != nil {
			t.Fatalf("Predict(%s): %v", cfg, err)
		}
		actual, err := p.MeasureActual(context.Background(), m, oracle, flops, hardware.BF16)
		if err != nil {
			t.Fatalf("MeasureActual(%s): %v", cfg, err)
		}
		if pred.OOM || actual.OOM {
			t.Fatalf("%s unexpectedly OOM (peak %d)", cfg, pred.PeakMemBytes)
		}
		e := relErr(pred.IterTime, actual.IterTime)
		t.Logf("%s: pred %v actual %v err %.2f%% (mfu %.1f%%)", cfg, pred.IterTime, actual.IterTime, e*100, actual.MFU*100)
		if e > 0.10 {
			t.Errorf("%s: prediction error %.1f%% exceeds 10%%", cfg, e*100)
		}
		if pred.IterTime <= 0 {
			t.Errorf("%s: non-positive iteration time", cfg)
		}
	}
}

func TestOraclePredictionBeatsLearnedOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	oracle := DefaultOracle(cluster)
	pOracle := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{Oracle: oracle}}

	var e2e, orc float64
	configs := []framework.MegatronConfig{
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 2},
	}
	for _, cfg := range configs {
		m := megatron(t, cfg)
		actual, err := p.MeasureActual(context.Background(), m, oracle, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := p.Predict(context.Background(), m, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		po, err := pOracle.Predict(context.Background(), m, 0, hardware.BF16)
		if err != nil {
			t.Fatal(err)
		}
		e2e += relErr(pe.IterTime, actual.IterTime)
		orc += relErr(po.IterTime, actual.IterTime)
	}
	t.Logf("mean oracle err %.2f%%, mean e2e err %.2f%%", orc/3*100, e2e/3*100)
	if orc > 0.05*3 {
		t.Errorf("oracle error %.1f%% too large — simulator fidelity problem", orc/3*100)
	}
}

func TestDedupPreservesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(2)
	p, _ := pipelineFor(t, cluster, Options{})
	// 16 GPUs: tp2 x pp2 x dp4 — plenty of duplicate workers.
	cfg := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 16, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 2}
	m := megatron(t, cfg)

	full := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{NoDedup: true}}
	ded := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{}}
	sel := &Pipeline{Cluster: cluster, Suite: p.Suite, Opts: Options{SelectiveLaunch: true}}

	rf, err := full.Predict(context.Background(), m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ded.Predict(context.Background(), m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sel.Predict(context.Background(), m, 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rf.UniqueWorkers != 16 {
		t.Errorf("no-dedup pipeline should simulate 16 workers, got %d", rf.UniqueWorkers)
	}
	if rd.UniqueWorkers >= rf.UniqueWorkers {
		t.Errorf("dedup did not reduce workers: %d vs %d", rd.UniqueWorkers, rf.UniqueWorkers)
	}
	if rs.UniqueWorkers != 2 {
		t.Errorf("selective launch should emulate one rank per pipeline stage (2), got %d", rs.UniqueWorkers)
	}
	if e := relErr(rd.IterTime, rf.IterTime); e > 0.02 {
		t.Errorf("dedup changed prediction by %.2f%%: %v vs %v", e*100, rd.IterTime, rf.IterTime)
	}
	if e := relErr(rs.IterTime, rf.IterTime); e > 0.02 {
		t.Errorf("selective launch changed prediction by %.2f%%: %v vs %v", e*100, rs.IterTime, rf.IterTime)
	}
}

func TestOOMDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	// 18.4B on 8 V100-40GB without sharding: hopelessly over capacity.
	cfg := framework.MegatronConfig{Model: models.GPT3_18_4B(), NGPUs: 8, GlobalBatch: 64, TP: 1, PP: 1, MicroBatches: 1}
	m := megatron(t, cfg)
	rep, err := p.Predict(context.Background(), m, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if !rep.OOM {
		t.Fatalf("expected OOM, got %v", rep)
	}
}

func TestKnobsMoveMemoryTheRightWay(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	base := framework.MegatronConfig{Model: models.GPT3_2_7B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 4}

	peak := func(cfg framework.MegatronConfig) int64 {
		rep, err := p.Predict(context.Background(), megatron(t, cfg), 0, hardware.BF16)
		if err != nil {
			t.Fatalf("Predict(%s): %v", cfg, err)
		}
		return rep.PeakMemBytes
	}

	basePeak := peak(base)

	rec := base
	rec.ActRecompute = true
	if p := peak(rec); p >= basePeak {
		t.Errorf("activation recomputation did not reduce memory: %d -> %d", basePeak, p)
	}

	sp := base
	sp.SeqParallel = true
	if p := peak(sp); p >= basePeak {
		t.Errorf("sequence parallelism did not reduce memory: %d -> %d", basePeak, p)
	}

	do := base
	do.DistOptimizer = true
	if p := peak(do); p >= basePeak {
		t.Errorf("distributed optimizer did not reduce memory: %d -> %d", basePeak, p)
	}

	moreTP := base
	moreTP.TP, moreTP.PP = 4, 2
	if p := peak(moreTP); p >= basePeak {
		t.Errorf("higher TP did not reduce memory: %d -> %d", basePeak, p)
	}
}

func TestInterleavingReducesIterTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	base := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 8}
	inter := base
	inter.VirtualStages = 2

	rb, err := p.Predict(context.Background(), megatron(t, base), 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := p.Predict(context.Background(), megatron(t, inter), 0, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rb.OOM || ri.OOM {
		t.Fatalf("test configs must fit in memory: base OOM=%t inter OOM=%t (peak %d)", rb.OOM, ri.OOM, rb.PeakMemBytes)
	}
	if ri.IterTime >= rb.IterTime {
		t.Errorf("interleaving (v=2) did not reduce iteration time: %v vs %v", ri.IterTime, rb.IterTime)
	}
}

// oraclePipeline builds a pipeline that needs no trained suite: the
// oracle annotates directly, which keeps cancellation tests fast.
func oraclePipeline(cluster hardware.Cluster, opts Options) *Pipeline {
	opts.Oracle = DefaultOracle(cluster)
	return &Pipeline{Cluster: cluster, Opts: opts}
}

func TestPredictPreCancelled(t *testing.T) {
	cluster := hardware.DGXV100(2)
	p := oraclePipeline(cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 16, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := p.Predict(ctx, m, 0, hardware.BF16)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict with pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("pre-cancelled Predict took %v, want immediate return", e)
	}
}

// signalOnFirstRun wraps a workload and announces the first rank
// starting, so cancellation tests can cancel deterministically
// mid-emulation instead of racing a fixed sleep against core count.
type signalOnFirstRun struct {
	workload.Workload
	started chan struct{}
	once    sync.Once
}

func (s *signalOnFirstRun) Run(rank int, dev cuda.Device) error {
	s.once.Do(func() { close(s.started) })
	return s.Workload.Run(rank, dev)
}

func TestPredictMidFlightCancel(t *testing.T) {
	// A 64-rank full emulation (NoDedup): the cancel fires as soon as
	// the first rank starts, so it lands mid-emulation regardless of
	// how many ranks run in parallel; the prediction must abort well
	// before it would have completed.
	cluster := hardware.DGXV100(8)
	p := oraclePipeline(cluster, Options{NoDedup: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_2_7B(), NGPUs: 64, GlobalBatch: 128, TP: 2, PP: 4, MicroBatches: 8,
	})
	w := &signalOnFirstRun{Workload: m, started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := p.Predict(ctx, w, 0, hardware.BF16)
		done <- err
	}()
	<-w.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Predict after mid-flight cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("Predict did not observe cancellation within 15s (elapsed %v)", time.Since(start))
	}
}

func TestMeasureActualPreCancelled(t *testing.T) {
	cluster := hardware.DGXV100(1)
	p := oraclePipeline(cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.MeasureActual(ctx, m, DefaultOracle(cluster), 0, hardware.BF16); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeasureActual with pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}
