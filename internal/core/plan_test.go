package core

import (
	"context"
	"sync"
	"testing"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

// learnedCapture builds a small capture plus a learned-suite pipeline
// (the path that exercises capture-attached estimate plans).
func learnedCapture(t *testing.T) (*Pipeline, *Capture) {
	t.Helper()
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{SelectiveLaunch: true})
	m := megatron(t, framework.MegatronConfig{
		Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	c, err := p.Capture(context.Background(), m)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if c.OOM {
		t.Fatal("test capture unexpectedly OOM")
	}
	return p, c
}

func TestSimulateViaPlanDeterministicAndConcurrent(t *testing.T) {
	p, c := learnedCapture(t)
	ctx := context.Background()

	base, err := p.Simulate(ctx, c, 1e15, hardware.BF16)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent Simulates share the capture's plan; all must agree
	// with the first (plan-building) call bit for bit.
	const n = 8
	reports := make([]*Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = p.Simulate(ctx, c, 1e15, hardware.BF16)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent Simulate %d: %v", i, errs[i])
		}
		if zeroStages(reports[i]) != zeroStages(base) {
			t.Fatalf("concurrent Simulate %d diverged:\n got %+v\nwant %+v",
				i, zeroStages(reports[i]), zeroStages(base))
		}
	}
	c.planMu.Lock()
	entries := len(c.plans)
	c.planMu.Unlock()
	if entries != 1 {
		t.Fatalf("capture caches %d plans, want 1 (one suite)", entries)
	}
}

func TestPlanForSingleFlightAndPerSuite(t *testing.T) {
	p, c := learnedCapture(t)
	ctx := context.Background()

	p1, err := c.planFor(ctx, p.Suite)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.planFor(ctx, p.Suite)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated planFor for one suite built a second plan")
	}

	// A distinct suite identity gets its own plan.
	other := p.Suite.WithCollectiveEstimator(nil)
	p3, err := c.planFor(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct suites share one plan entry")
	}
	c.planMu.Lock()
	entries := len(c.plans)
	c.planMu.Unlock()
	if entries != 2 {
		t.Fatalf("capture caches %d plans, want 2", entries)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	p, c := learnedCapture(t)
	ctx := context.Background()
	// Simulate repeated estimator-cache retraining: every wrap mints a
	// distinct suite identity. The capture must not retain them all.
	for i := 0; i < maxPlansPerCapture+4; i++ {
		if _, err := c.planFor(ctx, p.Suite.WithCollectiveEstimator(nil)); err != nil {
			t.Fatal(err)
		}
	}
	c.planMu.Lock()
	entries, order := len(c.plans), len(c.planOrder)
	c.planMu.Unlock()
	if entries > maxPlansPerCapture || order != entries {
		t.Fatalf("plan cache holds %d entries (%d ordered), want <= %d and equal",
			entries, order, maxPlansPerCapture)
	}
}

func TestPlanForCancellationRetries(t *testing.T) {
	p, c := learnedCapture(t)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.planFor(cancelled, p.Suite); err != context.Canceled {
		t.Fatalf("planFor(cancelled) = %v, want context.Canceled", err)
	}
	// The failed build is not cached: a live context builds cleanly.
	plan, err := c.planFor(context.Background(), p.Suite)
	if err != nil {
		t.Fatalf("planFor after cancellation: %v", err)
	}
	if plan == nil || plan.Ops() == 0 {
		t.Fatal("rebuilt plan is empty")
	}
}
