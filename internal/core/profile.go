package core

import (
	"context"
	"fmt"

	"maya/internal/emulator"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/silicon"
	"maya/internal/trace"
	"maya/internal/workload"
)

// scrapeWorkload runs rank 0 of a workload under the emulator and
// measures every compute/memory op with the oracle, producing profile
// samples whose feature shapes are exactly what real traces contain.
// This is the paper's approach for the long tail of kernels:
// "scraped from traces, collected by running a single-layer model
// over a range of batch sizes and tensor-parallel dimensions".
// Collectives are excluded — the dense nccl-tests-style sweep covers
// them with controlled topology.
func scrapeWorkload(oracle *silicon.Oracle, cluster hardware.Cluster, w workload.Workload, id *int64) ([]estimator.ProfileSample, error) {
	em := emulator.New(emulator.Config{
		Rank:  0,
		World: w.World(),
		GPU:   cluster.Node.GPU,
		Host:  cluster.Host,
	})
	if err := w.Run(0, em); err != nil {
		return nil, fmt.Errorf("core: scraping %s: %w", w.Name(), err)
	}
	tr := em.Trace()
	out := make([]estimator.ProfileSample, 0, len(tr.Ops)/2)
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if !op.IsDeviceWork() || op.Kind == trace.KindCollective {
			continue
		}
		*id++
		dur := oracle.Measure(op, nil, *id)
		out = append(out, estimator.ProfileSample{Op: *op, Dur: dur})
	}
	return out, nil
}

// scrapeLLMProfile sweeps single-layer transformer variants across
// hidden sizes, sequence lengths, microbatch sizes and TP degrees.
func scrapeLLMProfile(ctx context.Context, oracle *silicon.Oracle, cluster hardware.Cluster) ([]estimator.ProfileSample, error) {
	type shape struct {
		hidden, heads int
	}
	shapes := []shape{
		{1024, 16}, {2048, 16}, {2560, 32}, {4096, 32}, {6144, 48}, {8192, 64},
	}
	seqs := []int{1024, 2048, 4096}
	tps := []int{1, 2, 4, 8}
	batches := []int{1, 2, 4, 8}

	var out []estimator.ProfileSample
	id := int64(1 << 40)
	maxTP := cluster.Node.GPUsPerNode
	for _, sh := range shapes {
		for _, seq := range seqs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, tp := range tps {
				if tp > maxTP || sh.heads%tp != 0 || 51200%tp != 0 {
					continue
				}
				for _, b := range batches {
					mdl := models.Transformer{
						Name: "scrape", Layers: 1, Hidden: sh.hidden, Heads: sh.heads,
						FFN: 4 * sh.hidden, Seq: seq, Vocab: 51200,
					}
					m, err := framework.NewMegatron(framework.MegatronConfig{
						Model: mdl, NGPUs: tp, GlobalBatch: b, TP: tp, PP: 1, MicroBatches: 1,
					})
					if err != nil {
						return nil, err
					}
					samples, err := scrapeWorkload(oracle, cluster, m, &id)
					if err != nil {
						// Single-layer probes can exceed memory at the
						// largest shapes; skip those points.
						continue
					}
					out = append(out, samples...)
				}
			}
		}
	}
	// Gated-MLP (Llama-style) coverage.
	for _, b := range []int{1, 4} {
		mdl := models.Transformer{
			Name: "scrape-gated", Layers: 1, Hidden: 4096, Heads: 32,
			FFN: 11008, GatedMLP: true, Seq: 4096, Vocab: 32000,
		}
		m, err := framework.NewMegatron(framework.MegatronConfig{
			Model: mdl, NGPUs: 2, GlobalBatch: b, TP: 2, PP: 1, MicroBatches: 1,
		})
		if err != nil {
			return nil, err
		}
		samples, err := scrapeWorkload(oracle, cluster, m, &id)
		if err != nil {
			continue
		}
		out = append(out, samples...)
	}
	return out, nil
}

// scrapeVisionProfile sweeps small CNN variants (with and without
// torch.compile) across batch sizes.
func scrapeVisionProfile(ctx context.Context, oracle *silicon.Oracle, cluster hardware.Cluster) ([]estimator.ProfileSample, error) {
	var out []estimator.ProfileSample
	id := int64(2 << 40)
	cnns := []models.CNN{models.ResNet50(), models.MobileNetV2(), models.VGG19()}
	for _, cnn := range cnns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, b := range []int{4, 16, 32, 64} {
			for _, compile := range []bool{false, true} {
				c := cnn
				dp, err := framework.NewDataParallel(framework.DataParallelConfig{
					CNN: &c, NGPUs: 1, GlobalBatch: b, Compile: compile,
				})
				if err != nil {
					return nil, err
				}
				samples, err := scrapeWorkload(oracle, cluster, dp, &id)
				if err != nil {
					continue
				}
				out = append(out, samples...)
			}
		}
	}
	// A small transformer under DDP covers the NLP kernels vision
	// clusters also run (BERT/T5 in the generality study).
	small := models.BERTLarge()
	dp, err := framework.NewDataParallel(framework.DataParallelConfig{
		Transformer: &small, NGPUs: 1, GlobalBatch: 8,
	})
	if err != nil {
		return nil, err
	}
	samples, err := scrapeWorkload(oracle, cluster, dp, &id)
	if err == nil {
		out = append(out, samples...)
	}
	return out, nil
}

// BuildProfile assembles the full training corpus for a cluster:
// dense synthetic sweeps for heavy hitters plus trace-scraped tails.
// The scrape sweeps observe ctx so a cancelled warm-up stops without
// finishing the corpus.
func BuildProfile(ctx context.Context, oracle *silicon.Oracle, cluster hardware.Cluster, kind estimator.ProfileKind) ([]estimator.ProfileSample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	profile := estimator.SyntheticProfile(oracle, cluster, kind, 0xA11CE)
	if kind == estimator.ProfileLLM || kind == estimator.ProfileAll {
		scraped, err := scrapeLLMProfile(ctx, oracle, cluster)
		if err != nil {
			return nil, err
		}
		profile = append(profile, scraped...)
	}
	if kind == estimator.ProfileVision || kind == estimator.ProfileAll {
		scraped, err := scrapeVisionProfile(ctx, oracle, cluster)
		if err != nil {
			return nil, err
		}
		profile = append(profile, scraped...)
	}
	return profile, nil
}
