package core

import (
	"encoding/json"
	"time"

	"maya/internal/sim"
)

// The JSON shape of Report is a stable contract for external tooling
// consuming `maya -json` output: snake_case field names, raw
// nanosecond integers as the authoritative values, and redundant
// millisecond floats plus Go duration strings for human readers.
// UnmarshalJSON restores a Report from the *_ns fields alone, so the
// encoding round-trips exactly.

type stageTimingsJSON struct {
	EmulateNS  int64  `json:"emulate_ns"`
	Emulate    string `json:"emulate"`
	CollateNS  int64  `json:"collate_ns"`
	Collate    string `json:"collate"`
	EstimateNS int64  `json:"estimate_ns"`
	Estimate   string `json:"estimate"`
	SimulateNS int64  `json:"simulate_ns"`
	Simulate   string `json:"simulate"`
	TotalNS    int64  `json:"total_ns"`
	Total      string `json:"total"`
}

// MarshalJSON implements json.Marshaler.
func (s StageTimings) MarshalJSON() ([]byte, error) {
	return json.Marshal(stageTimingsJSON{
		EmulateNS:  s.Emulate.Nanoseconds(),
		Emulate:    s.Emulate.String(),
		CollateNS:  s.Collate.Nanoseconds(),
		Collate:    s.Collate.String(),
		EstimateNS: s.Estimate.Nanoseconds(),
		Estimate:   s.Estimate.String(),
		SimulateNS: s.Simulate.Nanoseconds(),
		Simulate:   s.Simulate.String(),
		TotalNS:    s.Total().Nanoseconds(),
		Total:      s.Total().String(),
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring from the raw
// nanosecond fields.
func (s *StageTimings) UnmarshalJSON(data []byte) error {
	var j stageTimingsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.Emulate = time.Duration(j.EmulateNS)
	s.Collate = time.Duration(j.CollateNS)
	s.Estimate = time.Duration(j.EstimateNS)
	s.Simulate = time.Duration(j.SimulateNS)
	return nil
}

// workerStallJSON is one worker's stall attribution: raw nanoseconds
// as the authoritative values plus Go duration strings for humans.
type workerStallJSON struct {
	Worker int `json:"worker"`

	EventWaitNS int64  `json:"event_wait_ns"`
	EventWait   string `json:"event_wait"`

	CollectiveWaitNS int64  `json:"collective_wait_ns"`
	CollectiveWait   string `json:"collective_wait"`

	HostBoundNS int64  `json:"host_bound_ns"`
	HostBound   string `json:"host_bound"`

	BubbleNS int64  `json:"bubble_ns"`
	Bubble   string `json:"bubble"`

	BusyNS int64  `json:"busy_ns"`
	Busy   string `json:"busy"`
}

type reportJSON struct {
	Workload string `json:"workload"`
	Cluster  string `json:"cluster"`

	IterTimeNS int64   `json:"iter_time_ns"`
	IterTimeMS float64 `json:"iter_time_ms"`
	IterTime   string  `json:"iter_time"`

	CommTimeNS int64   `json:"comm_time_ns"`
	CommTimeMS float64 `json:"comm_time_ms"`
	CommTime   string  `json:"comm_time"`

	ExposedCommNS int64   `json:"exposed_comm_ns"`
	ExposedCommMS float64 `json:"exposed_comm_ms"`
	ExposedComm   string  `json:"exposed_comm"`

	PeakMemBytes int64   `json:"peak_mem_bytes"`
	OOM          bool    `json:"oom"`
	MFU          float64 `json:"mfu"`

	Stages        StageTimings `json:"stages"`
	UniqueWorkers int          `json:"unique_workers"`
	TotalWorkers  int          `json:"total_workers"`

	Stalls []workerStallJSON `json:"stalls,omitempty"`

	// Recovery serializes through sim.RecoveryReport's own tags:
	// time.Duration fields are raw nanosecond integers, so the block
	// round-trips exactly.
	Recovery *sim.RecoveryReport `json:"recovery,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// MarshalJSON implements json.Marshaler.
func (r Report) MarshalJSON() ([]byte, error) {
	var stalls []workerStallJSON
	if r.Stalls != nil {
		stalls = make([]workerStallJSON, len(r.Stalls.Workers))
		for i, s := range r.Stalls.Workers {
			stalls[i] = workerStallJSON{
				Worker:           i,
				EventWaitNS:      s.EventWait.Nanoseconds(),
				EventWait:        s.EventWait.String(),
				CollectiveWaitNS: s.CollectiveWait.Nanoseconds(),
				CollectiveWait:   s.CollectiveWait.String(),
				HostBoundNS:      s.HostBound.Nanoseconds(),
				HostBound:        s.HostBound.String(),
				BubbleNS:         s.Bubble.Nanoseconds(),
				Bubble:           s.Bubble.String(),
				BusyNS:           s.Busy.Nanoseconds(),
				Busy:             s.Busy.String(),
			}
		}
	}
	return json.Marshal(reportJSON{
		Workload:      r.Workload,
		Cluster:       r.Cluster,
		IterTimeNS:    r.IterTime.Nanoseconds(),
		IterTimeMS:    ms(r.IterTime),
		IterTime:      r.IterTime.String(),
		CommTimeNS:    r.CommTime.Nanoseconds(),
		CommTimeMS:    ms(r.CommTime),
		CommTime:      r.CommTime.String(),
		ExposedCommNS: r.ExposedComm.Nanoseconds(),
		ExposedCommMS: ms(r.ExposedComm),
		ExposedComm:   r.ExposedComm.String(),
		PeakMemBytes:  r.PeakMemBytes,
		OOM:           r.OOM,
		MFU:           r.MFU,
		Stages:        r.Stages,
		UniqueWorkers: r.UniqueWorkers,
		TotalWorkers:  r.TotalWorkers,
		Stalls:        stalls,
		Recovery:      r.Recovery,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring from the raw
// nanosecond fields.
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Report{
		Workload:      j.Workload,
		Cluster:       j.Cluster,
		IterTime:      time.Duration(j.IterTimeNS),
		CommTime:      time.Duration(j.CommTimeNS),
		ExposedComm:   time.Duration(j.ExposedCommNS),
		PeakMemBytes:  j.PeakMemBytes,
		OOM:           j.OOM,
		MFU:           j.MFU,
		Stages:        j.Stages,
		UniqueWorkers: j.UniqueWorkers,
		TotalWorkers:  j.TotalWorkers,
		Recovery:      j.Recovery,
	}
	if len(j.Stalls) > 0 {
		prof := &StallProfile{Workers: make([]WorkerStall, len(j.Stalls))}
		for i, s := range j.Stalls {
			prof.Workers[i] = WorkerStall{
				EventWait:      time.Duration(s.EventWaitNS),
				CollectiveWait: time.Duration(s.CollectiveWaitNS),
				HostBound:      time.Duration(s.HostBoundNS),
				Bubble:         time.Duration(s.BubbleNS),
				Busy:           time.Duration(s.BusyNS),
			}
		}
		r.Stalls = prof
	}
	return nil
}
