package core

import (
	"encoding/json"
	"time"
)

// The JSON shape of Report is a stable contract for external tooling
// consuming `maya -json` output: snake_case field names, raw
// nanosecond integers as the authoritative values, and redundant
// millisecond floats plus Go duration strings for human readers.
// UnmarshalJSON restores a Report from the *_ns fields alone, so the
// encoding round-trips exactly.

type stageTimingsJSON struct {
	EmulateNS  int64  `json:"emulate_ns"`
	Emulate    string `json:"emulate"`
	CollateNS  int64  `json:"collate_ns"`
	Collate    string `json:"collate"`
	EstimateNS int64  `json:"estimate_ns"`
	Estimate   string `json:"estimate"`
	SimulateNS int64  `json:"simulate_ns"`
	Simulate   string `json:"simulate"`
	TotalNS    int64  `json:"total_ns"`
	Total      string `json:"total"`
}

// MarshalJSON implements json.Marshaler.
func (s StageTimings) MarshalJSON() ([]byte, error) {
	return json.Marshal(stageTimingsJSON{
		EmulateNS:  s.Emulate.Nanoseconds(),
		Emulate:    s.Emulate.String(),
		CollateNS:  s.Collate.Nanoseconds(),
		Collate:    s.Collate.String(),
		EstimateNS: s.Estimate.Nanoseconds(),
		Estimate:   s.Estimate.String(),
		SimulateNS: s.Simulate.Nanoseconds(),
		Simulate:   s.Simulate.String(),
		TotalNS:    s.Total().Nanoseconds(),
		Total:      s.Total().String(),
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring from the raw
// nanosecond fields.
func (s *StageTimings) UnmarshalJSON(data []byte) error {
	var j stageTimingsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.Emulate = time.Duration(j.EmulateNS)
	s.Collate = time.Duration(j.CollateNS)
	s.Estimate = time.Duration(j.EstimateNS)
	s.Simulate = time.Duration(j.SimulateNS)
	return nil
}

type reportJSON struct {
	Workload string `json:"workload"`
	Cluster  string `json:"cluster"`

	IterTimeNS int64   `json:"iter_time_ns"`
	IterTimeMS float64 `json:"iter_time_ms"`
	IterTime   string  `json:"iter_time"`

	CommTimeNS int64   `json:"comm_time_ns"`
	CommTimeMS float64 `json:"comm_time_ms"`
	CommTime   string  `json:"comm_time"`

	ExposedCommNS int64   `json:"exposed_comm_ns"`
	ExposedCommMS float64 `json:"exposed_comm_ms"`
	ExposedComm   string  `json:"exposed_comm"`

	PeakMemBytes int64   `json:"peak_mem_bytes"`
	OOM          bool    `json:"oom"`
	MFU          float64 `json:"mfu"`

	Stages        StageTimings `json:"stages"`
	UniqueWorkers int          `json:"unique_workers"`
	TotalWorkers  int          `json:"total_workers"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// MarshalJSON implements json.Marshaler.
func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		Workload:      r.Workload,
		Cluster:       r.Cluster,
		IterTimeNS:    r.IterTime.Nanoseconds(),
		IterTimeMS:    ms(r.IterTime),
		IterTime:      r.IterTime.String(),
		CommTimeNS:    r.CommTime.Nanoseconds(),
		CommTimeMS:    ms(r.CommTime),
		CommTime:      r.CommTime.String(),
		ExposedCommNS: r.ExposedComm.Nanoseconds(),
		ExposedCommMS: ms(r.ExposedComm),
		ExposedComm:   r.ExposedComm.String(),
		PeakMemBytes:  r.PeakMemBytes,
		OOM:           r.OOM,
		MFU:           r.MFU,
		Stages:        r.Stages,
		UniqueWorkers: r.UniqueWorkers,
		TotalWorkers:  r.TotalWorkers,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring from the raw
// nanosecond fields.
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Report{
		Workload:      j.Workload,
		Cluster:       j.Cluster,
		IterTime:      time.Duration(j.IterTimeNS),
		CommTime:      time.Duration(j.CommTimeNS),
		ExposedComm:   time.Duration(j.ExposedCommNS),
		PeakMemBytes:  j.PeakMemBytes,
		OOM:           j.OOM,
		MFU:           j.MFU,
		Stages:        j.Stages,
		UniqueWorkers: j.UniqueWorkers,
		TotalWorkers:  j.TotalWorkers,
	}
	return nil
}
