package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleReport() Report {
	return Report{
		Workload:     "megatron-gpt3-2.7b",
		Cluster:      "16xV100",
		IterTime:     1234567890 * time.Nanosecond,
		CommTime:     345 * time.Millisecond,
		ExposedComm:  12 * time.Millisecond,
		PeakMemBytes: 31 << 30,
		MFU:          0.4215,
		Stages: StageTimings{
			Emulate:  130 * time.Millisecond,
			Collate:  7 * time.Millisecond,
			Estimate: 52 * time.Millisecond,
			Simulate: 260 * time.Millisecond,
		},
		UniqueWorkers: 4,
		TotalWorkers:  16,
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	want := sampleReport()
	data, err := json.Marshal(&want)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != want {
		t.Fatalf("round trip changed report:\n got %+v\nwant %+v", got, want)
	}
}

func TestReportJSONStableFieldNames(t *testing.T) {
	data, err := json.Marshal(sampleReport())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	for _, field := range []string{
		`"workload"`, `"cluster"`,
		`"iter_time_ns"`, `"iter_time_ms"`, `"iter_time"`,
		`"comm_time_ns"`, `"comm_time_ms"`, `"comm_time"`,
		`"exposed_comm_ns"`, `"exposed_comm_ms"`, `"exposed_comm"`,
		`"peak_mem_bytes"`, `"oom"`, `"mfu"`,
		`"stages"`, `"emulate_ns"`, `"collate_ns"`, `"estimate_ns"`, `"simulate_ns"`, `"total_ns"`,
		`"unique_workers"`, `"total_workers"`,
	} {
		if !strings.Contains(s, field) {
			t.Errorf("JSON missing stable field %s in %s", field, s)
		}
	}
}

func TestReportJSONHumanReadableDurations(t *testing.T) {
	rep := sampleReport()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if got := raw["iter_time"]; got != rep.IterTime.String() {
		t.Errorf("iter_time = %v, want %q", got, rep.IterTime.String())
	}
	if got := raw["iter_time_ms"].(float64); got != 1234.56789 {
		t.Errorf("iter_time_ms = %v, want 1234.56789", got)
	}
	if got := raw["iter_time_ns"].(float64); int64(got) != rep.IterTime.Nanoseconds() {
		t.Errorf("iter_time_ns = %v, want %d", got, rep.IterTime.Nanoseconds())
	}
	stages := raw["stages"].(map[string]any)
	if got := stages["total"]; got != rep.Stages.Total().String() {
		t.Errorf("stages.total = %v, want %q", got, rep.Stages.Total().String())
	}
}

func TestReportJSONStallBreakdown(t *testing.T) {
	rep := sampleReport()
	rep.Stalls = &StallProfile{Workers: []WorkerStall{
		{EventWait: 2 * time.Millisecond, CollectiveWait: 30 * time.Millisecond,
			HostBound: time.Millisecond, Bubble: 7 * time.Millisecond, Busy: 1200 * time.Millisecond},
		{CollectiveWait: 11 * time.Millisecond, Busy: 1229 * time.Millisecond},
	}}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	for _, field := range []string{
		`"stalls"`, `"worker"`,
		`"event_wait_ns"`, `"event_wait"`,
		`"collective_wait_ns"`, `"collective_wait"`,
		`"host_bound_ns"`, `"host_bound"`,
		`"bubble_ns"`, `"bubble"`,
		`"busy_ns"`, `"busy"`,
	} {
		if !strings.Contains(s, field) {
			t.Errorf("stall JSON missing stable field %s in %s", field, s)
		}
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Stalls == nil || len(got.Stalls.Workers) != 2 {
		t.Fatalf("stalls did not round-trip: %+v", got.Stalls)
	}
	for i := range rep.Stalls.Workers {
		if got.Stalls.Workers[i] != rep.Stalls.Workers[i] {
			t.Errorf("worker %d stalls changed: got %+v want %+v",
				i, got.Stalls.Workers[i], rep.Stalls.Workers[i])
		}
	}
	// Totals aggregate across workers.
	tot := got.Stalls.Total()
	if tot.CollectiveWait != 41*time.Millisecond || tot.Busy != 2429*time.Millisecond {
		t.Errorf("Total() = %+v", tot)
	}

	// Reports without a breakdown omit the field entirely — the
	// contract's shape does not change for callers that never opt in.
	plain, err := json.Marshal(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), `"stalls"`) {
		t.Error("stalls field present on a report without a breakdown")
	}
}
