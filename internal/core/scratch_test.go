package core

import (
	"context"
	"testing"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

// TestSimulateScratchMatchesSimulate asserts the worker-affine path
// (persistent engine + rebindable overlay) produces the exact report
// the pooled path does, across repeated reuse of one scratch.
func TestSimulateScratchMatchesSimulate(t *testing.T) {
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	scratch := NewSimScratch()

	configs := []framework.MegatronConfig{
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 4, PP: 2, MicroBatches: 4},
		{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 1, PP: 4, MicroBatches: 4},
	}
	for _, cfg := range configs {
		c, err := p.Capture(context.Background(), megatron(t, cfg))
		if err != nil {
			t.Fatalf("Capture(%+v): %v", cfg, err)
		}
		flops := cfg.Model.TrainFLOPsPerIter(cfg.GlobalBatch)
		pooled, err := p.Simulate(context.Background(), c, flops, hardware.BF16)
		if err != nil {
			t.Fatalf("Simulate: %v", err)
		}
		affine, err := p.SimulateScratch(context.Background(), c, flops, hardware.BF16, scratch, 0)
		if err != nil {
			t.Fatalf("SimulateScratch: %v", err)
		}
		if affine.IterTime != pooled.IterTime || affine.CommTime != pooled.CommTime ||
			affine.ExposedComm != pooled.ExposedComm || affine.MFU != pooled.MFU ||
			affine.PeakMemBytes != pooled.PeakMemBytes || affine.Truncated {
			t.Fatalf("scratch path diverged for %+v:\npooled %+v\naffine %+v", cfg, pooled, affine)
		}
	}
}

// TestSimulateScratchTruncates asserts the limit threads through to
// the simulator and surfaces as Report.Truncated, and that a limit
// beyond the iteration time changes nothing.
func TestSimulateScratchTruncates(t *testing.T) {
	cluster := hardware.DGXV100(1)
	p, _ := pipelineFor(t, cluster, Options{})
	cfg := framework.MegatronConfig{Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2}
	c, err := p.Capture(context.Background(), megatron(t, cfg))
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	full, err := p.Simulate(context.Background(), c, 0, hardware.BF16)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	scratch := NewSimScratch()

	cut, err := p.SimulateScratch(context.Background(), c, 0, hardware.BF16, scratch, full.IterTime/4)
	if err != nil {
		t.Fatalf("SimulateScratch(limit): %v", err)
	}
	if !cut.Truncated {
		t.Fatalf("limit %v below iter time %v did not truncate", full.IterTime/4, full.IterTime)
	}

	far, err := p.SimulateScratch(context.Background(), c, 0, hardware.BF16, scratch, 10*time.Hour)
	if err != nil {
		t.Fatalf("SimulateScratch(far limit): %v", err)
	}
	if far.Truncated || far.IterTime != full.IterTime {
		t.Fatalf("far limit changed the run: full %+v vs %+v", full, far)
	}

	// nil scratch with a limit also works (the pooled path).
	cut2, err := p.SimulateScratch(context.Background(), c, 0, hardware.BF16, nil, full.IterTime/4)
	if err != nil {
		t.Fatalf("SimulateScratch(nil scratch): %v", err)
	}
	if !cut2.Truncated || cut2.IterTime != cut.IterTime {
		t.Fatalf("nil-scratch truncation diverged: %+v vs %+v", cut, cut2)
	}
}
