package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"maya/internal/estimator"
	"maya/internal/hardware"
)

// TestCaptureLRUStatsConcurrent hammers the cache's mutating paths
// while other goroutines poll Stats() the way a metrics scraper
// would. Run under -race this proves the snapshot counters are safe
// lock-free reads; the final totals prove no increment was lost.
func TestCaptureLRUStatsConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 200
		capacity   = 16
	)
	c := NewCaptureLRU(capacity)
	ctx := context.Background()
	stub := func() (*Capture, error) { return &Capture{}, nil }

	var wg, scrapers sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers: poll stats continuously and check invariants that
	// must hold in every snapshot, torn or not. Yield between polls
	// so single-core runs don't starve the mutators.
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
				s := c.Stats()
				if s.Hits < 0 || s.Misses < 0 || s.Entries < 0 || s.Evictions < 0 {
					t.Errorf("negative counter in snapshot: %+v", s)
					return
				}
			}
		}()
	}
	// Mutators: a mix of fresh keys (misses + evictions), repeated
	// keys (hits), failures, and purges.
	var gets, fails atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					gets.Add(1)
					c.Get(ctx, fmt.Sprintf("fresh-%d-%d", g, i), stub)
				case 1:
					gets.Add(1)
					c.Get(ctx, "shared", stub)
				case 2:
					gets.Add(1)
					fails.Add(1)
					c.Get(ctx, fmt.Sprintf("fail-%d-%d", g, i), func() (*Capture, error) {
						return nil, errors.New("boom")
					})
				case 3:
					if i%40 == 3 {
						c.Purge()
					} else {
						gets.Add(1)
						c.Get(ctx, "shared", stub)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	s := c.Stats()
	// Every Get resolved as exactly one hit or miss; joining an
	// in-flight entry counts as a hit. A leader whose fn fails also
	// counts one error on top of its miss.
	if got := s.Hits + s.Misses; got != gets.Load() {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d lookups",
			s.Hits, s.Misses, got, gets.Load())
	}
	// Failing keys are unique, so every failing Get led its own
	// capture: the error count is exact.
	if s.Errors != fails.Load() {
		t.Errorf("errors = %d, want %d", s.Errors, fails.Load())
	}
	if s.Entries > capacity {
		t.Errorf("entries = %d beyond capacity %d", s.Entries, capacity)
	}
	c.Purge()
	if got := c.Stats().Entries; got != 0 {
		t.Errorf("entries after purge = %d, want 0", got)
	}
}

// TestSuiteCacheStatsConcurrent trains one real suite, then races
// cache hits, evictions, re-misses, and Stats polls against each
// other. Kept -short-skippable because eviction forces retraining.
func TestSuiteCacheStatsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	c := NewSuiteCache()
	cluster := hardware.DGXV100(1)
	oracle := DefaultOracle(cluster)
	ctx := context.Background()
	if err := c.Warm(ctx, cluster, estimator.ProfileLLM); err != nil {
		t.Fatalf("Warm: %v", err)
	}

	const goroutines, iters = 8, 50
	var wg, scrapers sync.WaitGroup
	stop := make(chan struct{})
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
			s := c.Stats()
			if s.Entries < 0 || s.Entries > 1 {
				t.Errorf("entry count snapshot = %d, want 0 or 1", s.Entries)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 0 && i%25 == 13 {
					c.Evict(cluster, estimator.ProfileLLM)
					continue
				}
				if _, _, err := c.SuiteFor(ctx, cluster, oracle, estimator.ProfileLLM); err != nil {
					t.Errorf("SuiteFor: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	s := c.Stats()
	if s.Trained < 1 || s.Trained != s.Misses {
		t.Errorf("trained = %d, misses = %d: every miss trains exactly once", s.Trained, s.Misses)
	}
	if s.Hits == 0 {
		t.Error("concurrent lookups recorded no hits")
	}
	if s.Evictions < 1 {
		t.Errorf("evictions = %d, want at least 1", s.Evictions)
	}
}
