package core

import (
	"sync"

	"maya/internal/estimator"
	"maya/internal/hardware"
	"maya/internal/silicon"
)

// suiteCache memoizes trained estimator suites per (cluster, profile
// kind): profiling and forest training are the expensive part of
// setup and are reused across every experiment on the same cluster.
var suiteCache sync.Map // string -> *suiteEntry

type suiteEntry struct {
	once  sync.Once
	suite *estimator.Suite
	mape  map[string]float64
	err   error
}

func profileKindName(k estimator.ProfileKind) string {
	switch k {
	case estimator.ProfileLLM:
		return "llm"
	case estimator.ProfileVision:
		return "vision"
	default:
		return "all"
	}
}

// SuiteFor returns the trained estimator suite for a cluster,
// profiling the synthetic silicon and training forests on first use.
// The held-out per-kernel MAPE (Tables 7-9) is returned alongside.
func SuiteFor(cluster hardware.Cluster, oracle *silicon.Oracle, kind estimator.ProfileKind) (*estimator.Suite, map[string]float64, error) {
	key := cluster.Name + "/" + profileKindName(kind)
	v, _ := suiteCache.LoadOrStore(key, &suiteEntry{})
	e := v.(*suiteEntry)
	e.once.Do(func() {
		profile, err := BuildProfile(oracle, cluster, kind)
		if err != nil {
			e.err = err
			return
		}
		e.suite, e.mape, e.err = estimator.TrainAndEvaluate(profile, cluster, estimator.TrainOptions{})
	})
	return e.suite, e.mape, e.err
}

// DefaultOracle returns the canonical silicon instance for a cluster:
// a fixed seed, so every experiment sees the same "hardware".
func DefaultOracle(cluster hardware.Cluster) *silicon.Oracle {
	return silicon.NewOracle(cluster, silicon.DefaultSeed)
}
