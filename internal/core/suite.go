package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"maya/internal/estimator"
	"maya/internal/hardware"
	"maya/internal/silicon"
)

// CacheStats is a snapshot of SuiteCache accounting.
type CacheStats struct {
	// Hits counts lookups served by a trained (or in-flight) suite.
	Hits int64
	// Misses counts lookups that had to initiate training.
	Misses int64
	// Trained counts suites trained to completion.
	Trained int64
	// Evictions counts entries removed by Evict or Purge.
	Evictions int64
	// Errors counts training attempts that failed (including
	// cancellations); failed entries are dropped so later lookups
	// retry.
	Errors int64
	// Entries is the number of suites currently cached.
	Entries int
}

// SuiteCache memoizes trained estimator suites per (cluster, profile
// kind). Profiling and forest training are the expensive part of
// setup; a cache instance makes their reuse explicit and observable —
// hit/miss/trained counters, eviction, pre-warming — instead of the
// former unobservable process-global map. The zero value is not
// usable; call NewSuiteCache.
//
// The accounting counters are atomics, so Stats is lock-free: a
// metrics endpoint polling it continuously never contends with
// lookups or in-flight trainings.
type SuiteCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// trainWorkers bounds the worker pool of trainings this cache
	// initiates (0 means the estimator default, GOMAXPROCS).
	trainWorkers int

	hits, misses, trained, evictions, errors atomic.Int64
	entryCount                               atomic.Int64 // mirrors len(entries)
}

// SetTrainWorkers bounds the worker pool used when this cache trains
// a suite — the pool spans kernel classes and trees jointly. n <= 0
// restores the default (runtime.GOMAXPROCS). Training output is
// byte-identical for every worker count, so this is purely a
// throughput/CPU-footprint knob; it affects subsequent trainings
// only.
func (c *SuiteCache) SetTrainWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.trainWorkers = n
}

type cacheEntry struct {
	ready chan struct{} // closed once training finished
	suite *estimator.Suite
	mape  map[string]float64
	err   error
}

// NewSuiteCache returns an empty cache.
func NewSuiteCache() *SuiteCache {
	return &SuiteCache{entries: make(map[string]*cacheEntry)}
}

var defaultSuiteCache = NewSuiteCache()

// DefaultSuiteCache returns the process-wide shared cache that
// predictors use unless one is injected explicitly.
func DefaultSuiteCache() *SuiteCache { return defaultSuiteCache }

func profileKindName(k estimator.ProfileKind) string {
	switch k {
	case estimator.ProfileLLM:
		return "llm"
	case estimator.ProfileVision:
		return "vision"
	default:
		return "all"
	}
}

func suiteKey(cluster hardware.Cluster, kind estimator.ProfileKind) string {
	return cluster.Name + "/" + profileKindName(kind)
}

// SuiteFor returns the trained estimator suite for a cluster,
// profiling the synthetic silicon and training forests on first use.
// The held-out per-kernel MAPE (Tables 7-9) is returned alongside.
//
// Exactly one caller trains per key; concurrent callers wait on the
// in-flight training but honor their own ctx while doing so. A
// cancelled or failed training is not cached: the entry is dropped,
// the next lookup retries, and a waiter whose own ctx is still alive
// when the trainer's was cancelled takes over the training itself.
func (c *SuiteCache) SuiteFor(ctx context.Context, cluster hardware.Cluster, oracle *silicon.Oracle, kind estimator.ProfileKind) (*estimator.Suite, map[string]float64, error) {
	key := suiteKey(cluster, kind)
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}

		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits.Add(1)
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil && ctxError(e.err) && ctx.Err() == nil {
					// The trainer was cancelled, we were not: the
					// failed entry is already dropped, so retry (and
					// likely become the trainer).
					continue
				}
				return e.suite, e.mape, e.err
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.entryCount.Store(int64(len(c.entries)))
		c.misses.Add(1)
		workers := c.trainWorkers
		c.mu.Unlock()

		e.suite, e.mape, e.err = trainSuite(ctx, cluster, oracle, kind, workers)

		c.mu.Lock()
		if e.err != nil {
			c.errors.Add(1)
			// Drop the failed entry only if it is still ours (an Evict
			// racing with training may already have replaced it).
			if c.entries[key] == e {
				delete(c.entries, key)
				c.entryCount.Store(int64(len(c.entries)))
			}
		} else {
			c.trained.Add(1)
		}
		c.mu.Unlock()
		close(e.ready)
		return e.suite, e.mape, e.err
	}
}

// ctxError reports whether err is a context cancellation/deadline —
// a transient, caller-scoped failure rather than a training defect.
func ctxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Warm trains (or confirms) the suite for a cluster and profile kind
// without constructing a predictor, so services can pay the training
// cost at startup rather than on the first request.
func (c *SuiteCache) Warm(ctx context.Context, cluster hardware.Cluster, kind estimator.ProfileKind) error {
	_, _, err := c.SuiteFor(ctx, cluster, DefaultOracle(cluster), kind)
	return err
}

// Evict removes the cached suite for a cluster and profile kind,
// reporting whether an entry was present. Lookups already waiting on
// an in-flight training are unaffected; subsequent lookups retrain.
func (c *SuiteCache) Evict(cluster hardware.Cluster, kind estimator.ProfileKind) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := suiteKey(cluster, kind)
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	c.entryCount.Store(int64(len(c.entries)))
	c.evictions.Add(1)
	return true
}

// Purge empties the cache and returns how many entries were dropped.
func (c *SuiteCache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*cacheEntry)
	c.entryCount.Store(0)
	c.evictions.Add(int64(n))
	return n
}

// Stats returns a snapshot of the cache counters. It is lock-free —
// each counter is read atomically — so it is safe (and cheap) to poll
// from a metrics endpoint while lookups and trainings are in flight.
// Counters are loaded individually, so a snapshot taken mid-update
// may be transiently skewed by one in-flight operation.
func (c *SuiteCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Trained:   c.trained.Load(),
		Evictions: c.evictions.Load(),
		Errors:    c.errors.Load(),
		Entries:   int(c.entryCount.Load()),
	}
}

func trainSuite(ctx context.Context, cluster hardware.Cluster, oracle *silicon.Oracle, kind estimator.ProfileKind, workers int) (*estimator.Suite, map[string]float64, error) {
	profile, err := BuildProfile(ctx, oracle, cluster, kind)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return estimator.TrainAndEvaluate(profile, cluster, estimator.TrainOptions{Workers: workers})
}

// DefaultOracle returns the canonical silicon instance for a cluster:
// a fixed seed, so every experiment sees the same "hardware".
func DefaultOracle(cluster hardware.Cluster) *silicon.Oracle {
	return silicon.NewOracle(cluster, silicon.DefaultSeed)
}
