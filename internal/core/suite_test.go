package core

import (
	"context"
	"errors"
	"testing"

	"maya/internal/estimator"
	"maya/internal/hardware"
)

func TestSuiteCachePreCancelled(t *testing.T) {
	c := NewSuiteCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cluster := hardware.DGXV100(1)
	_, _, err := c.SuiteFor(ctx, cluster, DefaultOracle(cluster), estimator.ProfileLLM)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SuiteFor with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The failed lookup must not poison the cache.
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("cancelled lookup left %d entries", s.Entries)
	}
}

func TestSuiteCacheWarmCancelled(t *testing.T) {
	c := NewSuiteCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Warm(ctx, hardware.DGXV100(1), estimator.ProfileLLM); !errors.Is(err, context.Canceled) {
		t.Fatalf("Warm with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSuiteCacheStatsAndEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	c := NewSuiteCache()
	cluster := hardware.DGXV100(1)
	ctx := context.Background()

	if err := c.Warm(ctx, cluster, estimator.ProfileLLM); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Trained != 1 || s.Entries != 1 || s.Hits != 0 {
		t.Fatalf("after warm: %+v", s)
	}

	// Second lookup is a hit and returns the identical suite.
	s1, _, err := c.SuiteFor(ctx, cluster, DefaultOracle(cluster), estimator.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := c.SuiteFor(ctx, cluster, DefaultOracle(cluster), estimator.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("cache returned distinct suites for the same key")
	}
	s = c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Trained != 1 {
		t.Fatalf("after hits: %+v", s)
	}

	// Eviction empties the cache; a different kind was never present.
	if c.Evict(cluster, estimator.ProfileVision) {
		t.Fatal("evicted an entry that was never cached")
	}
	if !c.Evict(cluster, estimator.ProfileLLM) {
		t.Fatal("failed to evict the cached suite")
	}
	s = c.Stats()
	if s.Entries != 0 || s.Evictions != 1 {
		t.Fatalf("after evict: %+v", s)
	}
}
