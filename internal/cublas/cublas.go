// Package cublas emulates the cuBLAS host API on top of the narrow
// waist. cuBLAS is stateful: matrix multiplications are configured
// through a sequence of handle calls (Create, SetStream, SetMathMode,
// SetMatrix) before the compute entry point runs. Maya must track
// those sequences to assemble complete operation metadata — this
// package is that context-aware modeling layer.
package cublas

import (
	"fmt"

	"maya/internal/cuda"
)

// MathMode mirrors cublasMath_t.
type MathMode int

// Math modes.
const (
	DefaultMath MathMode = iota
	TensorOpMath
)

// Handle is a cuBLAS context bound to a device. The zero value is
// unusable; obtain handles from Create, as with cublasCreate.
type Handle struct {
	dev    cuda.Device
	stream cuda.Stream
	math   MathMode
	valid  bool
}

// Create initializes a cuBLAS handle on dev (cublasCreate_v2).
func Create(dev cuda.Device) (*Handle, error) {
	if dev == nil {
		return nil, fmt.Errorf("cublas: %w: nil device", cuda.ErrInvalidValue)
	}
	return &Handle{dev: dev, stream: cuda.DefaultStream, valid: true}, nil
}

// Destroy invalidates the handle (cublasDestroy_v2).
func (h *Handle) Destroy() error {
	if !h.valid {
		return fmt.Errorf("cublas: %w", cuda.ErrInvalidHandle)
	}
	h.valid = false
	return nil
}

// SetStream binds subsequent launches to s (cublasSetStream_v2).
func (h *Handle) SetStream(s cuda.Stream) error {
	if !h.valid {
		return fmt.Errorf("cublas: %w", cuda.ErrInvalidHandle)
	}
	h.stream = s
	return nil
}

// Stream returns the currently bound stream.
func (h *Handle) Stream() cuda.Stream { return h.stream }

// SetMathMode selects tensor-core usage (cublasSetMathMode).
func (h *Handle) SetMathMode(m MathMode) error {
	if !h.valid {
		return fmt.Errorf("cublas: %w", cuda.ErrInvalidHandle)
	}
	h.math = m
	return nil
}

// SetMatrix uploads a host matrix to the device (cublasSetMatrix):
// semantically a HtoD copy of rows*cols elements.
func (h *Handle) SetMatrix(rows, cols int, elemSize int64, dst cuda.DevicePtr) error {
	if !h.valid {
		return fmt.Errorf("cublas: %w", cuda.ErrInvalidHandle)
	}
	if rows <= 0 || cols <= 0 || elemSize <= 0 {
		return fmt.Errorf("cublas: %w: SetMatrix %dx%d elem %d", cuda.ErrInvalidValue, rows, cols, elemSize)
	}
	return h.dev.MemcpyAsync(dst, 0, int64(rows)*int64(cols)*elemSize, cuda.MemcpyHostToDevice, h.stream)
}

func (h *Handle) check(m, n, k int) error {
	if !h.valid {
		return fmt.Errorf("cublas: %w", cuda.ErrInvalidHandle)
	}
	if m <= 0 || n <= 0 || k <= 0 {
		return fmt.Errorf("cublas: %w: gemm %dx%dx%d", cuda.ErrInvalidValue, m, n, k)
	}
	return nil
}

func dtypeSize(dt string) int64 {
	switch dt {
	case "fp16", "bf16":
		return 2
	case "fp8", "int8":
		return 1
	default:
		return 4
	}
}

func gemmDesc(name string, batch, m, n, k int, dt string) cuda.KernelDesc {
	b := int64(batch)
	es := dtypeSize(dt)
	return cuda.KernelDesc{
		Name:  name,
		Dims:  []int{batch, m, n, k},
		FLOPs: 2 * b * int64(m) * int64(n) * int64(k),
		Bytes: b * es * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)),
		DType: dt,
	}
}

// SgemmV2 is cublasSgemm_v2: single-precision C = A*B with
// dimensions MxK * KxN.
func (h *Handle) SgemmV2(m, n, k int) error {
	if err := h.check(m, n, k); err != nil {
		return err
	}
	return h.dev.LaunchKernel(gemmDesc("cublasSgemm_v2", 1, m, n, k, "fp32"), h.stream)
}

// GemmEx is cublasGemmEx: mixed-precision GEMM with an explicit
// compute type. Training frameworks use it for bf16/fp16 matmuls.
func (h *Handle) GemmEx(m, n, k int, dtype string) error {
	if err := h.check(m, n, k); err != nil {
		return err
	}
	name := "cublasGemmEx"
	if dtype == "fp32" {
		// cuBLAS routes fp32 GemmEx through the classic Sgemm kernel.
		name = "cublasSgemm_v2"
	}
	return h.dev.LaunchKernel(gemmDesc(name, 1, m, n, k, dtype), h.stream)
}

// SgemmStridedBatched is cublasSgemmStridedBatched: batch GEMMs with
// uniform strides, the workhorse of attention score/context matmuls.
func (h *Handle) SgemmStridedBatched(batch, m, n, k int, dtype string) error {
	if err := h.check(m, n, k); err != nil {
		return err
	}
	if batch <= 0 {
		return fmt.Errorf("cublas: %w: batch %d", cuda.ErrInvalidValue, batch)
	}
	return h.dev.LaunchKernel(gemmDesc("cublasSgemmStridedBatched", batch, m, n, k, dtype), h.stream)
}

// LtMatmul is cublasLtMatmul, the epilogue-fusing matmul entry that
// torch.compile lowers dense layers to on Ampere+.
func (h *Handle) LtMatmul(m, n, k int, dtype string) error {
	if err := h.check(m, n, k); err != nil {
		return err
	}
	return h.dev.LaunchKernel(gemmDesc("cublasLtMatmul", 1, m, n, k, dtype), h.stream)
}
