package cublas

import (
	"errors"
	"testing"

	"maya/internal/cuda"
	"maya/internal/emulator"
	"maya/internal/hardware"
	"maya/internal/trace"
)

func handle(t *testing.T) (*Handle, *emulator.Emulator) {
	t.Helper()
	d := emulator.New(emulator.Config{GPU: hardware.H100(), Host: hardware.Host{}})
	h, err := Create(d)
	if err != nil {
		t.Fatal(err)
	}
	return h, d
}

func lastKernel(t *testing.T, d *emulator.Emulator) *trace.Op {
	t.Helper()
	ops := d.Trace().Ops
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].Kind == trace.KindKernel {
			return &ops[i]
		}
	}
	t.Fatal("no kernel in trace")
	return nil
}

func TestGemmExMetadata(t *testing.T) {
	h, d := handle(t)
	if err := h.GemmEx(256, 512, 1024, "bf16"); err != nil {
		t.Fatal(err)
	}
	k := lastKernel(t, d)
	if k.Name != "cublasGemmEx" {
		t.Fatalf("name = %s", k.Name)
	}
	wantFLOPs := int64(2 * 256 * 512 * 1024)
	if k.FLOPs != wantFLOPs {
		t.Fatalf("flops = %d, want %d", k.FLOPs, wantFLOPs)
	}
	wantBytes := int64(2 * (256*1024 + 1024*512 + 256*512))
	if k.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", k.Bytes, wantBytes)
	}
	if len(k.Dims) != 4 || k.Dims[1] != 256 || k.Dims[2] != 512 || k.Dims[3] != 1024 {
		t.Fatalf("dims = %v", k.Dims)
	}
}

func TestFP32GemmExRoutesToSgemm(t *testing.T) {
	h, d := handle(t)
	if err := h.GemmEx(64, 64, 64, "fp32"); err != nil {
		t.Fatal(err)
	}
	if k := lastKernel(t, d); k.Name != "cublasSgemm_v2" {
		t.Fatalf("fp32 GemmEx lowered to %s", k.Name)
	}
}

func TestStridedBatchedCarriesBatch(t *testing.T) {
	h, d := handle(t)
	if err := h.SgemmStridedBatched(16, 128, 64, 32, "fp16"); err != nil {
		t.Fatal(err)
	}
	k := lastKernel(t, d)
	if k.Dims[0] != 16 {
		t.Fatalf("batch dim = %d", k.Dims[0])
	}
	if k.FLOPs != int64(16)*2*128*64*32 {
		t.Fatalf("flops = %d", k.FLOPs)
	}
}

func TestSetStreamRoutesLaunches(t *testing.T) {
	h, d := handle(t)
	s, err := d.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetStream(s); err != nil {
		t.Fatal(err)
	}
	if err := h.SgemmV2(32, 32, 32); err != nil {
		t.Fatal(err)
	}
	if k := lastKernel(t, d); k.Stream != int64(s) {
		t.Fatalf("kernel on stream %d, want %d", k.Stream, s)
	}
}

func TestSetMatrixEmitsHtoD(t *testing.T) {
	h, d := handle(t)
	p, err := d.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetMatrix(128, 128, 4, p); err != nil {
		t.Fatal(err)
	}
	ops := d.Trace().Ops
	last := ops[len(ops)-1]
	if last.Kind != trace.KindMemcpy || last.MemKind != "HtoD" || last.Bytes != 128*128*4 {
		t.Fatalf("SetMatrix recorded %+v", last)
	}
}

func TestInvalidDimensionsAndHandleState(t *testing.T) {
	h, _ := handle(t)
	if err := h.SgemmV2(0, 4, 4); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("zero dim err = %v", err)
	}
	if err := h.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := h.SgemmV2(4, 4, 4); !errors.Is(err, cuda.ErrInvalidHandle) {
		t.Fatalf("use after destroy err = %v", err)
	}
	if _, err := Create(nil); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("nil device err = %v", err)
	}
}
