// Package cuda defines the narrow-waist accelerator API that training
// code programs against. It mirrors the CUDA runtime surface the
// paper's emulator interposes on — device management, memory, streams,
// events, synchronization and kernel launch — as a Go interface.
//
// This boundary is the reproduction of the paper's LD_PRELOAD shim:
// everything above it (the training frameworks in internal/framework)
// is "user code" that never knows whether it is talking to the
// transparent emulator, the profiling backend, or the synthetic
// silicon used as ground truth. The cublas, cudnn and nccl packages
// layer library semantics (stateful handles, descriptors,
// communicators) on top of this interface, exactly as the real
// libraries layer on the driver API.
package cuda

import (
	"errors"
	"fmt"
)

// DevicePtr is an opaque device memory address.
type DevicePtr uint64

// Stream is an opaque stream handle. The zero value is the default
// (legacy) stream.
type Stream int64

// DefaultStream is the implicit stream every device starts with.
const DefaultStream Stream = 0

// Event is an opaque event handle.
type Event int64

// MemcpyKind enumerates transfer directions, as in cudaMemcpyKind.
type MemcpyKind uint8

// Transfer directions.
const (
	MemcpyHostToDevice MemcpyKind = iota
	MemcpyDeviceToHost
	MemcpyDeviceToDevice
	MemcpyHostToHost
)

// String implements fmt.Stringer using the trace abbreviations.
func (k MemcpyKind) String() string {
	switch k {
	case MemcpyHostToDevice:
		return "HtoD"
	case MemcpyDeviceToHost:
		return "DtoH"
	case MemcpyDeviceToDevice:
		return "DtoD"
	case MemcpyHostToHost:
		return "HtoH"
	}
	return "?"
}

// Errors mirroring the CUDA error model. The emulator reports the
// same failures a real device would (OOM, invalid handles), which is
// how Maya flags broken configurations without hardware.
var (
	ErrOutOfMemory        = errors.New("cuda: out of memory")
	ErrInvalidValue       = errors.New("cuda: invalid value")
	ErrInvalidHandle      = errors.New("cuda: invalid resource handle")
	ErrInvalidDevicePtr   = errors.New("cuda: invalid device pointer")
	ErrNotInitialized     = errors.New("cuda: not initialized")
	ErrMisalignedAddress  = errors.New("cuda: misaligned address")
	ErrUnsupportedLibCall = errors.New("cuda: unsupported library call sequence")
)

// KernelDesc is the metadata recorded for a compute-kernel launch.
// Shapes, byte volumes and FLOP counts — never values; the decoupling
// of control flow from computation results is what makes no-op
// emulation possible.
type KernelDesc struct {
	// Name is the device-symbol name, e.g. "cublasSgemm_v2" or
	// "cuApplyLayerNorm". Estimators key their per-kernel models on it.
	Name string
	// Dims carries the semantic shape: (M,N,K) for GEMMs,
	// (N,C,H,W,K,R,S,stride,pad) for convolutions, element counts for
	// pointwise kernels.
	Dims []int
	// Bytes is the total memory traffic the kernel generates.
	Bytes int64
	// FLOPs is the arithmetic work.
	FLOPs int64
	// DType is the element type ("bf16", "fp32", ...).
	DType string
	// Extra carries auxiliary features, e.g. Triton primitive
	// instruction counts for compiler-fused kernels.
	Extra map[string]float64
}

// Validate rejects obviously malformed launches.
func (k KernelDesc) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("%w: kernel with empty name", ErrInvalidValue)
	}
	if k.Bytes < 0 || k.FLOPs < 0 {
		return fmt.Errorf("%w: kernel %s with negative work", ErrInvalidValue, k.Name)
	}
	for _, d := range k.Dims {
		if d < 0 {
			return fmt.Errorf("%w: kernel %s with negative dim", ErrInvalidValue, k.Name)
		}
	}
	return nil
}

// CollectiveDesc is the metadata recorded for a NCCL collective or
// point-to-point operation. The nccl package fills it from
// communicator state; the device backend only records it.
type CollectiveDesc struct {
	Op     string // "ncclAllReduce", "ncclSend", ...
	CommID uint64 // global communicator identity
	Seq    int    // per-communicator (or per-peer-pair for P2P) call index
	NRanks int    // communicator size
	Rank   int    // caller rank within the communicator
	Peer   int    // destination/source rank for P2P, -1 otherwise
	Bytes  int64  // payload bytes
}

// Device is the complete device-API surface training code may use.
// Implementations: the transparent emulator (internal/emulator) and
// any future real binding. All methods follow CUDA semantics; in
// particular "Async" operations only enqueue work.
type Device interface {
	// Ordinal returns the device index within the job (global rank's
	// device).
	Ordinal() int

	// MemGetInfo mimics cudaMemGetInfo: free and total HBM bytes.
	// Frameworks use it for allocator decisions, so the emulator must
	// answer consistently with its tracked allocations.
	MemGetInfo() (free, total int64, err error)

	// Malloc reserves device memory, failing with ErrOutOfMemory when
	// capacity is exceeded — Maya's OOM detection.
	Malloc(bytes int64) (DevicePtr, error)
	// Free releases an allocation made by Malloc.
	Free(ptr DevicePtr) error

	// StreamCreate returns a new asynchronous work queue.
	StreamCreate() (Stream, error)
	// StreamDestroy disposes a stream created by StreamCreate.
	StreamDestroy(s Stream) error

	// EventCreate returns a new event handle.
	EventCreate() (Event, error)
	// EventDestroy disposes an event.
	EventDestroy(e Event) error
	// EventRecord captures the state of a stream into an event.
	EventRecord(e Event, s Stream) error
	// StreamWaitEvent makes future work on s wait for the most recent
	// record of e (a no-op if e was never recorded), as in CUDA.
	StreamWaitEvent(s Stream, e Event) error
	// EventSynchronize blocks the host until e completes.
	EventSynchronize(e Event) error
	// StreamSynchronize blocks the host until s drains.
	StreamSynchronize(s Stream) error
	// DeviceSynchronize blocks the host until all streams drain.
	DeviceSynchronize() error

	// MemcpyAsync enqueues a transfer on s. Host pointers are modeled
	// by DevicePtr(0) plus kind; the emulator resolves the ambiguity
	// the way the paper describes for unified-memory workloads.
	MemcpyAsync(dst, src DevicePtr, bytes int64, kind MemcpyKind, s Stream) error
	// MemsetAsync enqueues a fill on s.
	MemsetAsync(dst DevicePtr, bytes int64, s Stream) error

	// LaunchKernel enqueues a compute kernel on s. Under emulation
	// this records metadata and returns immediately (the no-op
	// transformation at the heart of Maya).
	LaunchKernel(k KernelDesc, s Stream) error

	// LaunchCollective enqueues a communication operation on s. It is
	// the single entry point the nccl package lowers to.
	LaunchCollective(c CollectiveDesc, s Stream) error

	// Mark inserts an application-level annotation (iteration
	// boundaries) into the trace. Real CUDA exposes similar
	// functionality through NVTX ranges.
	Mark(label string) error
}
