// Package cudnn emulates the cuDNN host API: opaque descriptors are
// configured incrementally (tensor, filter and convolution
// descriptors) and later combined by compute entry points. Maya
// tracks the descriptor state so that each convolution launch carries
// its complete geometry — uninitialized or inconsistent descriptors
// are flagged the way the real library would fail.
package cudnn

import (
	"fmt"

	"maya/internal/cuda"
)

// Handle is a cuDNN context bound to a device.
type Handle struct {
	dev    cuda.Device
	stream cuda.Stream
	valid  bool
}

// Create initializes a handle (cudnnCreate).
func Create(dev cuda.Device) (*Handle, error) {
	if dev == nil {
		return nil, fmt.Errorf("cudnn: %w: nil device", cuda.ErrInvalidValue)
	}
	return &Handle{dev: dev, stream: cuda.DefaultStream, valid: true}, nil
}

// Destroy invalidates the handle (cudnnDestroy).
func (h *Handle) Destroy() error {
	if !h.valid {
		return fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	h.valid = false
	return nil
}

// SetStream binds subsequent launches to s (cudnnSetStream).
func (h *Handle) SetStream(s cuda.Stream) error {
	if !h.valid {
		return fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	h.stream = s
	return nil
}

// TensorDesc describes an activation tensor (cudnnTensorDescriptor).
// Build one with NewTensorDesc then Set4D.
type TensorDesc struct {
	n, c, hh, w int
	dtype       string
	set         bool
}

// NewTensorDesc creates an unset descriptor (cudnnCreateTensorDescriptor).
func NewTensorDesc() *TensorDesc { return &TensorDesc{} }

// Set4D configures an NCHW tensor (cudnnSetTensor4dDescriptor).
func (t *TensorDesc) Set4D(n, c, hgt, w int, dtype string) error {
	if n <= 0 || c <= 0 || hgt <= 0 || w <= 0 {
		return fmt.Errorf("cudnn: %w: tensor %dx%dx%dx%d", cuda.ErrInvalidValue, n, c, hgt, w)
	}
	t.n, t.c, t.hh, t.w, t.dtype, t.set = n, c, hgt, w, dtype, true
	return nil
}

// Elems returns the number of elements described.
func (t *TensorDesc) Elems() int64 {
	return int64(t.n) * int64(t.c) * int64(t.hh) * int64(t.w)
}

// FilterDesc describes convolution weights (cudnnFilterDescriptor).
type FilterDesc struct {
	k, c, r, s int
	set        bool
}

// NewFilterDesc creates an unset descriptor.
func NewFilterDesc() *FilterDesc { return &FilterDesc{} }

// Set4D configures a KCRS filter (cudnnSetFilter4dDescriptor).
func (f *FilterDesc) Set4D(k, c, r, s int) error {
	if k <= 0 || c <= 0 || r <= 0 || s <= 0 {
		return fmt.Errorf("cudnn: %w: filter %dx%dx%dx%d", cuda.ErrInvalidValue, k, c, r, s)
	}
	f.k, f.c, f.r, f.s, f.set = k, c, r, s, true
	return nil
}

// ConvDesc describes convolution geometry (cudnnConvolutionDescriptor).
type ConvDesc struct {
	padH, padW, strideH, strideW int
	set                          bool
}

// NewConvDesc creates an unset descriptor.
func NewConvDesc() *ConvDesc { return &ConvDesc{} }

// Set2D configures padding and stride (cudnnSetConvolution2dDescriptor).
func (c *ConvDesc) Set2D(padH, padW, strideH, strideW int) error {
	if padH < 0 || padW < 0 || strideH <= 0 || strideW <= 0 {
		return fmt.Errorf("cudnn: %w: conv pad %d,%d stride %d,%d", cuda.ErrInvalidValue, padH, padW, strideH, strideW)
	}
	c.padH, c.padW, c.strideH, c.strideW, c.set = padH, padW, strideH, strideW, true
	return nil
}

// OutputDim computes the forward output shape, mirroring
// cudnnGetConvolution2dForwardOutputDim.
func (c *ConvDesc) OutputDim(x *TensorDesc, f *FilterDesc) (n, k, oh, ow int, err error) {
	if !c.set || !x.set || !f.set {
		return 0, 0, 0, 0, fmt.Errorf("cudnn: %w: descriptor not configured", cuda.ErrUnsupportedLibCall)
	}
	if x.c != f.c {
		return 0, 0, 0, 0, fmt.Errorf("cudnn: %w: input channels %d != filter channels %d", cuda.ErrInvalidValue, x.c, f.c)
	}
	oh = (x.hh+2*c.padH-f.r)/c.strideH + 1
	ow = (x.w+2*c.padW-f.s)/c.strideW + 1
	if oh <= 0 || ow <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("cudnn: %w: degenerate output %dx%d", cuda.ErrInvalidValue, oh, ow)
	}
	return x.n, f.k, oh, ow, nil
}

func dtypeSize(dt string) int64 {
	switch dt {
	case "fp16", "bf16":
		return 2
	default:
		return 4
	}
}

func (h *Handle) convDesc(name string, x *TensorDesc, f *FilterDesc, c *ConvDesc) (cuda.KernelDesc, error) {
	if !h.valid {
		return cuda.KernelDesc{}, fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	n, k, oh, ow, err := c.OutputDim(x, f)
	if err != nil {
		return cuda.KernelDesc{}, err
	}
	es := dtypeSize(x.dtype)
	flops := 2 * int64(n) * int64(k) * int64(oh) * int64(ow) * int64(f.c) * int64(f.r) * int64(f.s)
	bytes := es * (x.Elems() + int64(f.k)*int64(f.c)*int64(f.r)*int64(f.s) + int64(n)*int64(k)*int64(oh)*int64(ow))
	return cuda.KernelDesc{
		Name:  name,
		Dims:  []int{n, x.c, x.hh, x.w, k, f.r, f.s, c.strideH, c.padH, oh, ow},
		FLOPs: flops,
		Bytes: bytes,
		DType: x.dtype,
	}, nil
}

// ConvolutionForward launches the forward convolution.
func (h *Handle) ConvolutionForward(x *TensorDesc, f *FilterDesc, c *ConvDesc) error {
	k, err := h.convDesc("cudnnConvolutionForward", x, f, c)
	if err != nil {
		return err
	}
	return h.dev.LaunchKernel(k, h.stream)
}

// ConvolutionBackwardData launches the input-gradient convolution.
func (h *Handle) ConvolutionBackwardData(x *TensorDesc, f *FilterDesc, c *ConvDesc) error {
	k, err := h.convDesc("cudnnConvolutionBackwardData", x, f, c)
	if err != nil {
		return err
	}
	return h.dev.LaunchKernel(k, h.stream)
}

// ConvolutionBackwardFilter launches the weight-gradient convolution.
func (h *Handle) ConvolutionBackwardFilter(x *TensorDesc, f *FilterDesc, c *ConvDesc) error {
	k, err := h.convDesc("cudnnConvolutionBackwardFilter", x, f, c)
	if err != nil {
		return err
	}
	return h.dev.LaunchKernel(k, h.stream)
}

// PoolingForward launches a pooling kernel over x.
func (h *Handle) PoolingForward(x *TensorDesc, window, stride int) error {
	if !h.valid {
		return fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	if !x.set {
		return fmt.Errorf("cudnn: %w: tensor not configured", cuda.ErrUnsupportedLibCall)
	}
	es := dtypeSize(x.dtype)
	return h.dev.LaunchKernel(cuda.KernelDesc{
		Name:  "pooling_fwd_nhwc",
		Dims:  []int{x.n, x.c, x.hh, x.w, window, stride},
		Bytes: 2 * es * x.Elems(),
		FLOPs: x.Elems() * int64(window) * int64(window),
		DType: x.dtype,
	}, h.stream)
}

// PoolingBackward launches the pooling gradient kernel.
func (h *Handle) PoolingBackward(x *TensorDesc, window, stride int) error {
	if !h.valid {
		return fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	if !x.set {
		return fmt.Errorf("cudnn: %w: tensor not configured", cuda.ErrUnsupportedLibCall)
	}
	es := dtypeSize(x.dtype)
	return h.dev.LaunchKernel(cuda.KernelDesc{
		Name:  "max_pool_backward_nhwc",
		Dims:  []int{x.n, x.c, x.hh, x.w, window, stride},
		Bytes: 3 * es * x.Elems(),
		FLOPs: x.Elems() * int64(window) * int64(window),
		DType: x.dtype,
	}, h.stream)
}

// BatchNormForward launches batch normalization over x.
func (h *Handle) BatchNormForward(x *TensorDesc) error {
	return h.bn("batchnorm_fwd", x)
}

// BatchNormBackward launches the batch-norm gradient kernel.
func (h *Handle) BatchNormBackward(x *TensorDesc) error {
	return h.bn("batchnorm_bwd", x)
}

func (h *Handle) bn(name string, x *TensorDesc) error {
	if !h.valid {
		return fmt.Errorf("cudnn: %w", cuda.ErrInvalidHandle)
	}
	if !x.set {
		return fmt.Errorf("cudnn: %w: tensor not configured", cuda.ErrUnsupportedLibCall)
	}
	es := dtypeSize(x.dtype)
	return h.dev.LaunchKernel(cuda.KernelDesc{
		Name:  name,
		Dims:  []int{x.n, x.c, x.hh, x.w},
		Bytes: 3 * es * x.Elems(),
		FLOPs: 8 * x.Elems(),
		DType: x.dtype,
	}, h.stream)
}
