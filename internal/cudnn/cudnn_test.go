package cudnn

import (
	"errors"
	"testing"

	"maya/internal/cuda"
	"maya/internal/emulator"
	"maya/internal/hardware"
	"maya/internal/trace"
)

func handle(t *testing.T) (*Handle, *emulator.Emulator) {
	t.Helper()
	d := emulator.New(emulator.Config{GPU: hardware.A40(), Host: hardware.Host{}})
	h, err := Create(d)
	if err != nil {
		t.Fatal(err)
	}
	return h, d
}

func descriptors(t *testing.T) (*TensorDesc, *FilterDesc, *ConvDesc) {
	t.Helper()
	x := NewTensorDesc()
	if err := x.Set4D(8, 64, 56, 56, "fp16"); err != nil {
		t.Fatal(err)
	}
	f := NewFilterDesc()
	if err := f.Set4D(128, 64, 3, 3); err != nil {
		t.Fatal(err)
	}
	c := NewConvDesc()
	if err := c.Set2D(1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	return x, f, c
}

func TestOutputDim(t *testing.T) {
	x, f, c := descriptors(t)
	n, k, oh, ow, err := c.OutputDim(x, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || k != 128 || oh != 56 || ow != 56 {
		t.Fatalf("output = %d %d %d %d", n, k, oh, ow)
	}
	// Stride 2 halves the resolution.
	c2 := NewConvDesc()
	_ = c2.Set2D(1, 1, 2, 2)
	_, _, oh, _, _ = c2.OutputDim(x, f)
	if oh != 28 {
		t.Fatalf("strided output height = %d, want 28", oh)
	}
}

func TestConvolutionForwardMetadata(t *testing.T) {
	h, d := handle(t)
	x, f, c := descriptors(t)
	if err := h.ConvolutionForward(x, f, c); err != nil {
		t.Fatal(err)
	}
	ops := d.Trace().Ops
	k := ops[len(ops)-1]
	if k.Name != "cudnnConvolutionForward" {
		t.Fatalf("name = %s", k.Name)
	}
	wantFLOPs := int64(2) * 8 * 128 * 56 * 56 * 64 * 3 * 3
	if k.FLOPs != wantFLOPs {
		t.Fatalf("flops = %d, want %d", k.FLOPs, wantFLOPs)
	}
	// Dims layout: n,c,h,w,k,r,s,stride — estimator features depend on
	// the first 8 staying stable.
	if len(k.Dims) < 8 || k.Dims[0] != 8 || k.Dims[1] != 64 || k.Dims[4] != 128 || k.Dims[7] != 1 {
		t.Fatalf("dims = %v", k.Dims)
	}
}

func TestUnconfiguredDescriptorsFlagged(t *testing.T) {
	h, _ := handle(t)
	x := NewTensorDesc() // never Set4D
	f := NewFilterDesc()
	_ = f.Set4D(8, 8, 3, 3)
	c := NewConvDesc()
	_ = c.Set2D(1, 1, 1, 1)
	err := h.ConvolutionForward(x, f, c)
	if !errors.Is(err, cuda.ErrUnsupportedLibCall) {
		t.Fatalf("unset tensor err = %v", err)
	}
}

func TestChannelMismatchRejected(t *testing.T) {
	h, _ := handle(t)
	x := NewTensorDesc()
	_ = x.Set4D(8, 64, 56, 56, "fp16")
	f := NewFilterDesc()
	_ = f.Set4D(128, 32, 3, 3) // filter expects 32 channels, input has 64
	c := NewConvDesc()
	_ = c.Set2D(1, 1, 1, 1)
	if err := h.ConvolutionForward(x, f, c); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("channel mismatch err = %v", err)
	}
}

func TestBackwardKernelsNamed(t *testing.T) {
	h, d := handle(t)
	x, f, c := descriptors(t)
	if err := h.ConvolutionBackwardData(x, f, c); err != nil {
		t.Fatal(err)
	}
	if err := h.ConvolutionBackwardFilter(x, f, c); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, op := range d.Trace().Ops {
		if op.Kind == trace.KindKernel {
			names = append(names, op.Name)
		}
	}
	if len(names) != 2 || names[0] != "cudnnConvolutionBackwardData" || names[1] != "cudnnConvolutionBackwardFilter" {
		t.Fatalf("names = %v", names)
	}
}

func TestPoolingAndBatchNorm(t *testing.T) {
	h, d := handle(t)
	x := NewTensorDesc()
	_ = x.Set4D(8, 64, 56, 56, "fp16")
	if err := h.PoolingForward(x, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.PoolingBackward(x, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.BatchNormForward(x); err != nil {
		t.Fatal(err)
	}
	if err := h.BatchNormBackward(x); err != nil {
		t.Fatal(err)
	}
	st := d.Trace().Stats()
	for _, name := range []string{"pooling_fwd_nhwc", "max_pool_backward_nhwc", "batchnorm_fwd", "batchnorm_bwd"} {
		if st.ByName[name] != 1 {
			t.Fatalf("missing kernel %s: %v", name, st.ByName)
		}
	}
}

func TestDegenerateGeometryRejected(t *testing.T) {
	x := NewTensorDesc()
	_ = x.Set4D(1, 3, 2, 2, "fp16")
	f := NewFilterDesc()
	_ = f.Set4D(8, 3, 7, 7)
	c := NewConvDesc()
	_ = c.Set2D(0, 0, 1, 1) // 7x7 kernel over 2x2 input, no padding
	if _, _, _, _, err := c.OutputDim(x, f); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("degenerate output err = %v", err)
	}
}
