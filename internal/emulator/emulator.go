// Package emulator implements Maya's transparent device emulator: a
// cuda.Device whose compute is a no-op but whose state tracking is
// real. Training code runs against it unmodified; the emulator
// captures a complete trace of device interactions — kernels, memory
// operations, synchronization and collectives — plus the host time
// spent between calls, while detecting the errors a real device would
// raise (out-of-memory, invalid handles).
package emulator

import (
	"fmt"
	"time"

	"maya/internal/cuda"
	"maya/internal/hardware"
	"maya/internal/prand"
	"maya/internal/trace"
)

// Config configures one emulated worker.
type Config struct {
	// Rank is the worker's global rank; World the job size.
	Rank  int
	World int
	// GPU provides the memory capacity the allocator enforces.
	GPU hardware.GPU
	// Host provides the deterministic host-overhead model that stands
	// in for the paper's wall-clock measurement between API calls.
	Host hardware.Host
	// Seed perturbs host-delay jitter so distinct workers (and
	// distinct experiments) do not share identical noise.
	Seed uint64
}

// Emulator implements cuda.Device by recording instead of executing.
// It is not safe for concurrent use: like a CUDA context, each worker
// owns exactly one.
type Emulator struct {
	cfg Config
	tr  *trace.Worker
	rng *prand.SplitMix64

	mem        allocator
	streams    map[cuda.Stream]struct{}
	events     map[cuda.Event]int // handle -> record version (0 = never)
	nextStream int64
	nextEvent  int64
}

var _ cuda.Device = (*Emulator)(nil)

// New returns an emulator for one worker.
func New(cfg Config) *Emulator {
	e := &Emulator{
		cfg: cfg,
		tr: &trace.Worker{
			Rank:   cfg.Rank,
			World:  cfg.World,
			Device: cfg.GPU.Name,
		},
		rng:     prand.New(prand.HashInts(cfg.Seed, int64(cfg.Rank), 0x5eed)),
		streams: map[cuda.Stream]struct{}{cuda.DefaultStream: {}},
		events:  make(map[cuda.Event]int),
	}
	e.mem.capacity = cfg.GPU.MemBytes
	e.mem.blocks = make(map[cuda.DevicePtr]int64)
	return e
}

// Trace returns the captured worker trace. The emulator can continue
// to be used afterwards; the returned value reflects ops so far.
func (e *Emulator) Trace() *trace.Worker {
	e.tr.PeakBytes = e.mem.peak
	return e.tr
}

// hostDelay appends the modeled CPU time preceding an API call. The
// paper measures wall-clock deltas; we synthesize them
// deterministically from the host spec (see DESIGN.md substitutions).
func (e *Emulator) hostDelay(kernelPrep bool) {
	h := e.cfg.Host
	d := h.DispatchOverhead
	if kernelPrep {
		d += h.KernelPrepOverhead
	}
	if h.JitterFrac > 0 && d > 0 {
		// Uniform jitter in [-JitterFrac, +JitterFrac].
		j := (e.rng.Float64()*2 - 1) * h.JitterFrac
		d = time.Duration(float64(d) * (1 + j))
	}
	if d <= 0 {
		return
	}
	e.tr.Append(trace.Op{Kind: trace.KindHostDelay, Dur: d})
}

// Ordinal implements cuda.Device.
func (e *Emulator) Ordinal() int { return e.cfg.Rank }

// MemGetInfo implements cuda.Device, answering from tracked
// allocations so framework memory heuristics behave as on hardware.
func (e *Emulator) MemGetInfo() (free, total int64, err error) {
	e.hostDelay(false)
	return e.mem.capacity - e.mem.used, e.mem.capacity, nil
}

// Malloc implements cuda.Device. Exceeding capacity returns
// ErrOutOfMemory and marks the trace, which is how broken
// configurations surface during search.
func (e *Emulator) Malloc(bytes int64) (cuda.DevicePtr, error) {
	e.hostDelay(false)
	if bytes <= 0 {
		return 0, fmt.Errorf("%w: malloc of %d bytes", cuda.ErrInvalidValue, bytes)
	}
	ptr, err := e.mem.alloc(bytes)
	if err != nil {
		e.tr.OOM = true
		return 0, err
	}
	e.tr.Append(trace.Op{Kind: trace.KindMalloc, Bytes: bytes, Ptr: uint64(ptr)})
	return ptr, nil
}

// Free implements cuda.Device.
func (e *Emulator) Free(ptr cuda.DevicePtr) error {
	e.hostDelay(false)
	n, err := e.mem.free(ptr)
	if err != nil {
		return err
	}
	e.tr.Append(trace.Op{Kind: trace.KindFree, Bytes: n, Ptr: uint64(ptr)})
	return nil
}

// StreamCreate implements cuda.Device.
func (e *Emulator) StreamCreate() (cuda.Stream, error) {
	e.hostDelay(false)
	e.nextStream++
	s := cuda.Stream(e.nextStream)
	e.streams[s] = struct{}{}
	return s, nil
}

// StreamDestroy implements cuda.Device.
func (e *Emulator) StreamDestroy(s cuda.Stream) error {
	e.hostDelay(false)
	if s == cuda.DefaultStream {
		return fmt.Errorf("%w: cannot destroy default stream", cuda.ErrInvalidValue)
	}
	if _, ok := e.streams[s]; !ok {
		return fmt.Errorf("%w: stream %d", cuda.ErrInvalidHandle, s)
	}
	delete(e.streams, s)
	return nil
}

// EventCreate implements cuda.Device.
func (e *Emulator) EventCreate() (cuda.Event, error) {
	e.hostDelay(false)
	e.nextEvent++
	ev := cuda.Event(e.nextEvent)
	e.events[ev] = 0
	return ev, nil
}

// EventDestroy implements cuda.Device.
func (e *Emulator) EventDestroy(ev cuda.Event) error {
	e.hostDelay(false)
	if _, ok := e.events[ev]; !ok {
		return fmt.Errorf("%w: event %d", cuda.ErrInvalidHandle, ev)
	}
	delete(e.events, ev)
	return nil
}

// EventRecord implements cuda.Device, bumping the event's version so
// later waits bind to this record, mirroring CUDA event reuse.
func (e *Emulator) EventRecord(ev cuda.Event, s cuda.Stream) error {
	e.hostDelay(false)
	ver, ok := e.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", cuda.ErrInvalidHandle, ev)
	}
	if err := e.checkStream(s); err != nil {
		return err
	}
	ver++
	e.events[ev] = ver
	e.tr.Append(trace.Op{
		Kind:     trace.KindEventRecord,
		Stream:   int64(s),
		Event:    int64(ev),
		EventVer: ver,
	})
	return nil
}

// StreamWaitEvent implements cuda.Device, capturing the version the
// wait observed (0 means never recorded: a no-op, per CUDA).
func (e *Emulator) StreamWaitEvent(s cuda.Stream, ev cuda.Event) error {
	e.hostDelay(false)
	ver, ok := e.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", cuda.ErrInvalidHandle, ev)
	}
	if err := e.checkStream(s); err != nil {
		return err
	}
	e.tr.Append(trace.Op{
		Kind:     trace.KindStreamWait,
		Stream:   int64(s),
		Event:    int64(ev),
		EventVer: ver,
	})
	return nil
}

// EventSynchronize implements cuda.Device (host-blocking).
func (e *Emulator) EventSynchronize(ev cuda.Event) error {
	e.hostDelay(false)
	ver, ok := e.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", cuda.ErrInvalidHandle, ev)
	}
	e.tr.Append(trace.Op{Kind: trace.KindEventSync, Event: int64(ev), EventVer: ver})
	return nil
}

// StreamSynchronize implements cuda.Device (host-blocking).
func (e *Emulator) StreamSynchronize(s cuda.Stream) error {
	e.hostDelay(false)
	if err := e.checkStream(s); err != nil {
		return err
	}
	e.tr.Append(trace.Op{Kind: trace.KindStreamSync, Stream: int64(s)})
	return nil
}

// DeviceSynchronize implements cuda.Device (host-blocking).
func (e *Emulator) DeviceSynchronize() error {
	e.hostDelay(false)
	e.tr.Append(trace.Op{Kind: trace.KindDeviceSync})
	return nil
}

// MemcpyAsync implements cuda.Device. Device-side pointers are
// validated against live allocations; host pointers are represented
// by 0 and resolved via the transfer kind, the ambiguity resolution
// the paper describes for offloading workloads.
func (e *Emulator) MemcpyAsync(dst, src cuda.DevicePtr, bytes int64, kind cuda.MemcpyKind, s cuda.Stream) error {
	e.hostDelay(true)
	if bytes < 0 {
		return fmt.Errorf("%w: memcpy of %d bytes", cuda.ErrInvalidValue, bytes)
	}
	if err := e.checkStream(s); err != nil {
		return err
	}
	switch kind {
	case cuda.MemcpyHostToDevice:
		if err := e.mem.check(dst, bytes); err != nil {
			return err
		}
	case cuda.MemcpyDeviceToHost:
		if err := e.mem.check(src, bytes); err != nil {
			return err
		}
	case cuda.MemcpyDeviceToDevice:
		if err := e.mem.check(dst, bytes); err != nil {
			return err
		}
		if err := e.mem.check(src, bytes); err != nil {
			return err
		}
	}
	e.tr.Append(trace.Op{
		Kind:    trace.KindMemcpy,
		Name:    "Memcpy" + kind.String(),
		Stream:  int64(s),
		Bytes:   bytes,
		MemKind: kind.String(),
	})
	return nil
}

// MemsetAsync implements cuda.Device.
func (e *Emulator) MemsetAsync(dst cuda.DevicePtr, bytes int64, s cuda.Stream) error {
	e.hostDelay(true)
	if err := e.checkStream(s); err != nil {
		return err
	}
	if err := e.mem.check(dst, bytes); err != nil {
		return err
	}
	e.tr.Append(trace.Op{Kind: trace.KindMemset, Name: "Memset", Stream: int64(s), Bytes: bytes})
	return nil
}

// LaunchKernel implements cuda.Device: the no-op transformation. The
// kernel's metadata is recorded, nothing executes.
func (e *Emulator) LaunchKernel(k cuda.KernelDesc, s cuda.Stream) error {
	e.hostDelay(true)
	if err := k.Validate(); err != nil {
		return err
	}
	if err := e.checkStream(s); err != nil {
		return err
	}
	e.tr.Append(trace.Op{
		Kind:   trace.KindKernel,
		Name:   k.Name,
		Stream: int64(s),
		Dims:   append([]int(nil), k.Dims...),
		Bytes:  k.Bytes,
		FLOPs:  k.FLOPs,
		DType:  k.DType,
		Extra:  k.Extra,
	})
	return nil
}

// LaunchCollective implements cuda.Device.
func (e *Emulator) LaunchCollective(c cuda.CollectiveDesc, s cuda.Stream) error {
	e.hostDelay(true)
	if c.NRanks <= 0 || c.Rank < 0 || c.Rank >= c.NRanks {
		return fmt.Errorf("%w: collective %s rank %d of %d", cuda.ErrInvalidValue, c.Op, c.Rank, c.NRanks)
	}
	if err := e.checkStream(s); err != nil {
		return err
	}
	e.tr.Append(trace.Op{
		Kind:   trace.KindCollective,
		Name:   c.Op,
		Stream: int64(s),
		Bytes:  c.Bytes,
		Coll: &trace.Collective{
			Op:     c.Op,
			CommID: c.CommID,
			Seq:    c.Seq,
			NRanks: c.NRanks,
			Rank:   c.Rank,
			Peer:   c.Peer,
			Bytes:  c.Bytes,
		},
	})
	return nil
}

// Mark implements cuda.Device, inserting an annotation op.
func (e *Emulator) Mark(label string) error {
	e.tr.Append(trace.Op{Kind: trace.KindMark, Name: label})
	return nil
}

func (e *Emulator) checkStream(s cuda.Stream) error {
	if _, ok := e.streams[s]; !ok {
		return fmt.Errorf("%w: stream %d", cuda.ErrInvalidHandle, s)
	}
	return nil
}

// allocator tracks device memory: a bump allocator with explicit
// frees, a live-byte counter and a high-water mark. Addresses are
// never reused, so stale-pointer bugs in workloads are caught.
type allocator struct {
	capacity int64
	used     int64
	peak     int64
	next     uint64
	blocks   map[cuda.DevicePtr]int64
}

func (a *allocator) alloc(bytes int64) (cuda.DevicePtr, error) {
	if a.used+bytes > a.capacity {
		return 0, fmt.Errorf("%w: requested %d, in use %d of %d",
			cuda.ErrOutOfMemory, bytes, a.used, a.capacity)
	}
	// 512-byte alignment, like the CUDA allocator.
	a.next += 512
	ptr := cuda.DevicePtr(a.next)
	a.next += uint64(bytes)
	a.blocks[ptr] = bytes
	a.used += bytes
	if a.used > a.peak {
		a.peak = a.used
	}
	return ptr, nil
}

func (a *allocator) free(ptr cuda.DevicePtr) (int64, error) {
	n, ok := a.blocks[ptr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", cuda.ErrInvalidDevicePtr, uint64(ptr))
	}
	delete(a.blocks, ptr)
	a.used -= n
	return n, nil
}

// check validates that [ptr, ptr+bytes) lies inside a live block.
func (a *allocator) check(ptr cuda.DevicePtr, bytes int64) error {
	if ptr == 0 {
		// Host pointer stand-in; nothing to validate device-side.
		return nil
	}
	if n, ok := a.blocks[ptr]; ok {
		if bytes > n {
			return fmt.Errorf("%w: access of %d bytes in %d-byte block", cuda.ErrInvalidDevicePtr, bytes, n)
		}
		return nil
	}
	return fmt.Errorf("%w: %#x", cuda.ErrInvalidDevicePtr, uint64(ptr))
}
