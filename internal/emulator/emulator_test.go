package emulator

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"maya/internal/cuda"
	"maya/internal/hardware"
	"maya/internal/trace"
)

func testEmulator() *Emulator {
	gpu := hardware.H100()
	gpu.MemBytes = 1 << 30 // 1 GiB for easy OOM tests
	return New(Config{Rank: 0, World: 1, GPU: gpu, Host: hardware.EpycHost()})
}

func TestMallocFreeAccounting(t *testing.T) {
	e := testEmulator()
	free0, total, err := e.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if total != 1<<30 || free0 != total {
		t.Fatalf("fresh device: free %d total %d", free0, total)
	}
	p, err := e.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	free1, _, _ := e.MemGetInfo()
	if free1 != free0-(1<<20) {
		t.Fatalf("free after malloc = %d, want %d", free1, free0-(1<<20))
	}
	if err := e.Free(p); err != nil {
		t.Fatal(err)
	}
	free2, _, _ := e.MemGetInfo()
	if free2 != free0 {
		t.Fatalf("free after free = %d, want %d", free2, free0)
	}
	if tr := e.Trace(); tr.PeakBytes != 1<<20 {
		t.Fatalf("peak = %d, want %d", tr.PeakBytes, 1<<20)
	}
}

func TestOOMDetection(t *testing.T) {
	e := testEmulator()
	if _, err := e.Malloc(1 << 29); err != nil {
		t.Fatal(err)
	}
	_, err := e.Malloc(1 << 30)
	if !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if !e.Trace().OOM {
		t.Fatal("trace not marked OOM")
	}
	// The device remains usable after an OOM (caching allocators
	// retry after freeing).
	if _, err := e.Malloc(1 << 20); err != nil {
		t.Fatalf("post-OOM malloc failed: %v", err)
	}
}

func TestDoubleFreeAndInvalidPointer(t *testing.T) {
	e := testEmulator()
	p, _ := e.Malloc(4096)
	if err := e.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(p); !errors.Is(err, cuda.ErrInvalidDevicePtr) {
		t.Fatalf("double free err = %v", err)
	}
	if err := e.Free(cuda.DevicePtr(0xDEAD)); !errors.Is(err, cuda.ErrInvalidDevicePtr) {
		t.Fatalf("bogus free err = %v", err)
	}
}

func TestStreamHandleValidity(t *testing.T) {
	e := testEmulator()
	s, err := e.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LaunchKernel(cuda.KernelDesc{Name: "k"}, s); err != nil {
		t.Fatal(err)
	}
	if err := e.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
	if err := e.LaunchKernel(cuda.KernelDesc{Name: "k"}, s); !errors.Is(err, cuda.ErrInvalidHandle) {
		t.Fatalf("launch on destroyed stream: %v", err)
	}
	if err := e.StreamDestroy(cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("destroying default stream: %v", err)
	}
}

func TestEventVersioning(t *testing.T) {
	e := testEmulator()
	ev, err := e.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	// Wait before any record observes version 0 (no-op per CUDA).
	if err := e.StreamWaitEvent(cuda.DefaultStream, ev); err != nil {
		t.Fatal(err)
	}
	if err := e.EventRecord(ev, cuda.DefaultStream); err != nil {
		t.Fatal(err)
	}
	if err := e.StreamWaitEvent(cuda.DefaultStream, ev); err != nil {
		t.Fatal(err)
	}
	if err := e.EventRecord(ev, cuda.DefaultStream); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	var vers []int
	for _, op := range tr.Ops {
		switch op.Kind {
		case trace.KindStreamWait, trace.KindEventRecord:
			vers = append(vers, op.EventVer)
		}
	}
	want := []int{0, 1, 1, 2}
	if len(vers) != len(want) {
		t.Fatalf("versions = %v", vers)
	}
	for i := range want {
		if vers[i] != want[i] {
			t.Fatalf("versions = %v, want %v", vers, want)
		}
	}
}

func TestMemcpyValidation(t *testing.T) {
	e := testEmulator()
	p, _ := e.Malloc(4096)
	if err := e.MemcpyAsync(p, 0, 4096, cuda.MemcpyHostToDevice, cuda.DefaultStream); err != nil {
		t.Fatal(err)
	}
	// Overflowing the allocation is an invalid access.
	if err := e.MemcpyAsync(p, 0, 8192, cuda.MemcpyHostToDevice, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidDevicePtr) {
		t.Fatalf("overflow copy err = %v", err)
	}
	// DtoH from a bogus pointer.
	if err := e.MemcpyAsync(0, cuda.DevicePtr(0x1234), 16, cuda.MemcpyDeviceToHost, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidDevicePtr) {
		t.Fatalf("bogus src err = %v", err)
	}
}

func TestKernelMetadataCaptured(t *testing.T) {
	e := testEmulator()
	desc := cuda.KernelDesc{
		Name: "cublasGemmEx", Dims: []int{1, 64, 64, 64},
		FLOPs: 2 * 64 * 64 * 64, Bytes: 3 * 2 * 64 * 64, DType: "bf16",
		Extra: map[string]float64{"triton_instrs": 4},
	}
	if err := e.LaunchKernel(desc, cuda.DefaultStream); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	var k *trace.Op
	for i := range tr.Ops {
		if tr.Ops[i].Kind == trace.KindKernel {
			k = &tr.Ops[i]
		}
	}
	if k == nil {
		t.Fatal("no kernel recorded")
	}
	if k.Name != desc.Name || k.FLOPs != desc.FLOPs || k.Bytes != desc.Bytes || k.DType != "bf16" {
		t.Fatalf("metadata lost: %+v", k)
	}
	if k.Extra["triton_instrs"] != 4 {
		t.Fatalf("extra lost: %+v", k.Extra)
	}
}

func TestInvalidKernelRejected(t *testing.T) {
	e := testEmulator()
	if err := e.LaunchKernel(cuda.KernelDesc{}, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("empty kernel err = %v", err)
	}
	if err := e.LaunchKernel(cuda.KernelDesc{Name: "k", FLOPs: -1}, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("negative flops err = %v", err)
	}
}

func TestHostDelaysRecorded(t *testing.T) {
	e := testEmulator()
	for i := 0; i < 10; i++ {
		if err := e.LaunchKernel(cuda.KernelDesc{Name: "k"}, cuda.DefaultStream); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Trace().Stats()
	if st.HostTime == 0 {
		t.Fatal("no host time recorded")
	}
	// Kernel launches carry dispatch + prep overhead: mean per launch
	// should be near the host model's sum.
	perLaunch := st.HostTime / 10
	want := hardware.EpycHost().DispatchOverhead + hardware.EpycHost().KernelPrepOverhead
	lo := time.Duration(float64(want) * 0.7)
	hi := time.Duration(float64(want) * 1.3)
	if perLaunch < lo || perLaunch > hi {
		t.Fatalf("per-launch host time %v outside [%v, %v]", perLaunch, lo, hi)
	}
}

func TestHostDelayDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) time.Duration {
		e := New(Config{Rank: 3, World: 8, GPU: hardware.H100(), Host: hardware.EpycHost(), Seed: seed})
		for i := 0; i < 50; i++ {
			if err := e.LaunchKernel(cuda.KernelDesc{Name: "k"}, cuda.DefaultStream); err != nil {
				t.Fatal(err)
			}
		}
		return e.Trace().Stats().HostTime
	}
	if run(1) != run(1) {
		t.Fatal("host delays not deterministic for equal seeds")
	}
	if run(1) == run(2) {
		t.Fatal("host delays identical across seeds")
	}
}

func TestCollectiveValidation(t *testing.T) {
	e := testEmulator()
	bad := cuda.CollectiveDesc{Op: "ncclAllReduce", NRanks: 4, Rank: 4}
	if err := e.LaunchCollective(bad, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("rank out of range err = %v", err)
	}
}

func TestAllocatorNeverExceedsCapacity(t *testing.T) {
	// Property: under arbitrary alloc/free sequences, used never
	// exceeds capacity and peak is an upper bound of used.
	if err := quick.Check(func(sizes []uint16) bool {
		gpu := hardware.H100()
		gpu.MemBytes = 1 << 20
		e := New(Config{GPU: gpu, Host: hardware.Host{}})
		var live []cuda.DevicePtr
		for i, s := range sizes {
			n := int64(s) + 1
			if i%3 == 2 && len(live) > 0 {
				if err := e.Free(live[0]); err != nil {
					return false
				}
				live = live[1:]
				continue
			}
			p, err := e.Malloc(n)
			if err != nil {
				continue // OOM is fine; invariants still must hold
			}
			live = append(live, p)
			free, total, _ := e.MemGetInfo()
			if free < 0 || free > total {
				return false
			}
		}
		tr := e.Trace()
		free, total, _ := e.MemGetInfo()
		used := total - free
		return tr.PeakBytes >= used && tr.PeakBytes <= total
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
