package estimator

import (
	"math"
	"sort"
	"time"

	"maya/internal/hardware"
)

// CollectiveModel predicts collective runtimes from profiled
// bandwidth curves, the approach the paper takes for the small (<10)
// set of network operations: profile intra-host and inter-host link
// characteristics across sizes and participant counts, then
// interpolate within the profiled range.
type CollectiveModel struct {
	cluster hardware.Cluster
	curves  map[curveKey]*curve
	// byScope indexes the available participant counts per (op, scope)
	// for nearest-neighbor fallback on unprofiled group sizes.
	byScope map[scopeKey][]int
}

type curveKey struct {
	op     string
	intra  bool
	nranks int
}

type scopeKey struct {
	op    string
	intra bool
}

// curve is a piecewise-linear map from log2(bytes) to log(ns).
type curve struct {
	xs, ys []float64
}

func (c *curve) at(x float64) float64 {
	n := len(c.xs)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return c.ys[0]
	case x <= c.xs[0]:
		// Below the profiled range the operation is latency-bound:
		// the smallest profiled time is an upper bound, never
		// extrapolate a local wiggle outward.
		return c.ys[0]
	case x >= c.xs[n-1]:
		// Above the range, bandwidth-bound behavior: extrapolate with
		// the edge slope clamped to [0, 1.5] (log-time vs log-bytes
		// slope of a bandwidth-bound transfer is 1).
		slope := (c.ys[n-1] - c.ys[n-2]) / (c.xs[n-1] - c.xs[n-2])
		if slope < 0 {
			slope = 0
		}
		if slope > 1.5 {
			slope = 1.5
		}
		return c.ys[n-1] + slope*(x-c.xs[n-1])
	}
	i := sort.SearchFloat64s(c.xs, x)
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// trainCollectiveModel fits curves from collective profile samples.
func trainCollectiveModel(cluster hardware.Cluster, samples []ProfileSample) *CollectiveModel {
	type acc struct {
		sum   float64
		count int
	}
	points := make(map[curveKey]map[float64]*acc)
	m := &CollectiveModel{
		cluster: cluster,
		curves:  make(map[curveKey]*curve),
		byScope: make(map[scopeKey][]int),
	}
	for i := range samples {
		ps := &samples[i]
		c := ps.Op.Coll
		if c == nil || ps.Dur <= 0 || c.Bytes <= 0 {
			continue
		}
		key := curveKey{op: c.Op, intra: m.allSameNode(ps.Ranks), nranks: c.NRanks}
		if points[key] == nil {
			points[key] = make(map[float64]*acc)
		}
		x := math.Log2(float64(c.Bytes))
		a := points[key][x]
		if a == nil {
			a = &acc{}
			points[key][x] = a
		}
		a.sum += math.Log(float64(ps.Dur))
		a.count++
	}
	for key, pts := range points {
		cv := &curve{}
		xs := make([]float64, 0, len(pts))
		for x := range pts {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, x := range xs {
			cv.xs = append(cv.xs, x)
			cv.ys = append(cv.ys, pts[x].sum/float64(pts[x].count))
		}
		m.curves[key] = cv
		sk := scopeKey{key.op, key.intra}
		m.byScope[sk] = append(m.byScope[sk], key.nranks)
	}
	for sk := range m.byScope {
		sort.Ints(m.byScope[sk])
	}
	return m
}

func (m *CollectiveModel) allSameNode(ranks []int) bool {
	if len(ranks) == 0 {
		return true
	}
	n0 := m.cluster.NodeOf(ranks[0])
	for _, r := range ranks[1:] {
		if m.cluster.NodeOf(r) != n0 {
			return false
		}
	}
	return true
}

// algFactor is the analytical data-volume factor of each collective
// as a function of group size, used to rescale a profiled curve to a
// nearby unprofiled participant count.
func algFactor(op string, n int) float64 {
	if n < 2 {
		return 0.5
	}
	fn := float64(n)
	switch op {
	case "ncclAllReduce":
		return 2 * (fn - 1) / fn
	case "ncclAllGather", "ncclReduceScatter":
		return fn - 1
	case "ncclAllToAll":
		return 1.5 * (fn - 1)
	case "ncclBroadcast", "ncclSend", "ncclRecv":
		return 1
	default:
		return (fn - 1) / fn
	}
}

// Estimate predicts one collective's duration.
func (m *CollectiveModel) Estimate(op string, bytes int64, ranks []int, nranks int) time.Duration {
	n := nranks
	if n <= 0 {
		n = len(ranks)
	}
	if n <= 1 {
		return 10 * time.Microsecond
	}
	if bytes <= 0 {
		bytes = 1
	}
	intra := m.allSameNode(ranks)
	x := math.Log2(float64(bytes))

	if cv, ok := m.curves[curveKey{op, intra, n}]; ok {
		return time.Duration(math.Exp(cv.at(x)))
	}
	// Nearest profiled participant count in the same scope, rescaled
	// by the analytical volume factor.
	if avail := m.byScope[scopeKey{op, intra}]; len(avail) > 0 {
		near := nearest(avail, n)
		cv := m.curves[curveKey{op, intra, near}]
		base := math.Exp(cv.at(x))
		return time.Duration(base * algFactor(op, n) / algFactor(op, near))
	}
	// Opposite scope as a last resort (e.g. inter-node groups when the
	// profile only covered one node), with a bandwidth-ratio penalty.
	if avail := m.byScope[scopeKey{op, !intra}]; len(avail) > 0 {
		near := nearest(avail, n)
		cv := m.curves[curveKey{op, !intra, near}]
		base := math.Exp(cv.at(x))
		ratio := m.scopeBandwidthRatio(intra)
		return time.Duration(base * ratio * algFactor(op, n) / algFactor(op, near))
	}
	// Fully analytical fallback.
	return m.analytical(op, bytes, n, intra)
}

// scopeBandwidthRatio approximates how much slower (or faster) the
// requested scope is than the profiled one.
func (m *CollectiveModel) scopeBandwidthRatio(wantIntra bool) float64 {
	node := m.cluster.Node
	intraBW := node.GPU.NVLinkGBps
	if intraBW == 0 {
		intraBW = node.PCIeGBps
	}
	interBW := node.Inter.PerGPUGBps
	if interBW == 0 {
		interBW = 1
	}
	if wantIntra {
		return interBW / intraBW
	}
	return intraBW / interBW
}

func (m *CollectiveModel) analytical(op string, bytes int64, n int, intra bool) time.Duration {
	node := m.cluster.Node
	bw := node.Inter.PerGPUGBps * 0.8
	if intra {
		bw = node.GPU.NVLinkGBps * 0.7
		if bw == 0 {
			bw = node.PCIeGBps * 0.6
		}
	}
	ns := algFactor(op, n) * float64(bytes) / (bw * 1e9) * 1e9
	ns += math.Ceil(math.Log2(float64(n))) * 8000
	return time.Duration(ns)
}

func nearest(sorted []int, n int) int {
	i := sort.SearchInts(sorted, n)
	if i == 0 {
		return sorted[0]
	}
	if i == len(sorted) {
		return sorted[len(sorted)-1]
	}
	if n-sorted[i-1] <= sorted[i]-n {
		return sorted[i-1]
	}
	return sorted[i]
}
