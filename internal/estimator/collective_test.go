package estimator

import (
	"testing"
	"time"

	"maya/internal/hardware"
	"maya/internal/trace"
)

// fitCurve builds a collective model from synthetic linear-in-bytes
// samples.
func fitCurve(t *testing.T, cluster hardware.Cluster, nranks int, ranks []int) *CollectiveModel {
	t.Helper()
	var samples []ProfileSample
	for exp := 20; exp <= 30; exp++ {
		bytes := int64(1) << uint(exp)
		// time = 1us + bytes / 100GB/s
		dur := time.Duration(1000 + bytes/100)
		samples = append(samples, ProfileSample{
			Op: trace.Op{Kind: trace.KindCollective, Coll: &trace.Collective{
				Op: "ncclAllReduce", CommID: 1, NRanks: nranks, Rank: 0, Peer: -1, Bytes: bytes,
			}},
			Ranks: ranks,
			Dur:   dur,
		})
	}
	return trainCollectiveModel(cluster, samples)
}

func TestCurveInterpolationExactAtKnots(t *testing.T) {
	cluster := hardware.DGXH100(1)
	ranks := []int{0, 1, 2, 3}
	m := fitCurve(t, cluster, 4, ranks)
	got := m.Estimate("ncclAllReduce", 1<<24, ranks, 4)
	want := time.Duration(1000 + (1<<24)/100)
	if rel := float64(got-want) / float64(want); rel > 0.01 || rel < -0.01 {
		t.Fatalf("knot estimate %v, want %v", got, want)
	}
}

func TestTinyCollectiveDoesNotExplode(t *testing.T) {
	// Regression test: extrapolating the log-log curve far below the
	// profiled range must clamp to the latency floor rather than
	// blow up (a 4-byte grad-norm all-reduce once predicted ~1000h).
	cluster := hardware.DGXH100(1)
	ranks := []int{0, 1, 2, 3}
	m := fitCurve(t, cluster, 4, ranks)
	got := m.Estimate("ncclAllReduce", 4, ranks, 4)
	smallest := m.Estimate("ncclAllReduce", 1<<20, ranks, 4)
	if got > smallest*2 {
		t.Fatalf("4-byte collective %v exceeds smallest profiled %v", got, smallest)
	}
}

func TestLargeExtrapolationBandwidthBound(t *testing.T) {
	cluster := hardware.DGXH100(1)
	ranks := []int{0, 1, 2, 3}
	m := fitCurve(t, cluster, 4, ranks)
	at32g := m.Estimate("ncclAllReduce", 1<<35, ranks, 4)
	at1g := m.Estimate("ncclAllReduce", 1<<30, ranks, 4)
	ratio := float64(at32g) / float64(at1g)
	if ratio < 8 || ratio > 128 {
		t.Fatalf("32x size scaled time by %.1fx, want ~32x", ratio)
	}
}

func TestNearestGroupSizeRescaling(t *testing.T) {
	cluster := hardware.DGXH100(1)
	ranks4 := []int{0, 1, 2, 3}
	m := fitCurve(t, cluster, 4, ranks4)
	// No 8-rank curve exists: the 4-rank one is rescaled by the
	// analytic volume factor 2*(n-1)/n.
	ranks8 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	t4 := m.Estimate("ncclAllReduce", 1<<26, ranks4, 4)
	t8 := m.Estimate("ncclAllReduce", 1<<26, ranks8, 8)
	wantRatio := (2.0 * 7 / 8) / (2.0 * 3 / 4)
	ratio := float64(t8) / float64(t4)
	if ratio < wantRatio*0.9 || ratio > wantRatio*1.1 {
		t.Fatalf("8-rank rescale ratio %.3f, want ~%.3f", ratio, wantRatio)
	}
}

func TestEmptyModelFallsBackToAnalytical(t *testing.T) {
	m := trainCollectiveModel(hardware.DGXH100(2), nil)
	d := m.Estimate("ncclAllReduce", 1<<28, []int{0, 8}, 2)
	if d <= 0 || d > time.Minute {
		t.Fatalf("analytical fallback = %v", d)
	}
}

func TestKernelFeatureLength(t *testing.T) {
	op := &trace.Op{Kind: trace.KindKernel, Name: "k", Dims: []int{1, 2, 3}, DType: "bf16"}
	if got := len(KernelFeatures(op)); got != featureLen {
		t.Fatalf("feature length %d != %d", got, featureLen)
	}
	// bf16 and fp16 must be distinguishable (same width, different
	// tensor-core paths on Volta).
	a := KernelFeatures(&trace.Op{Kind: trace.KindKernel, Name: "k", DType: "bf16"})
	b := KernelFeatures(&trace.Op{Kind: trace.KindKernel, Name: "k", DType: "fp16"})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("bf16 and fp16 feature vectors identical")
	}
}
