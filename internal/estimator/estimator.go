// Package estimator predicts per-operation runtimes for annotated
// traces: Maya's pluggable kernel-runtime estimation phase. The
// default implementation mirrors the paper — random-forest regressors
// per kernel type trained on profiled microbenchmarks, plus
// interpolated bandwidth curves for the small set of collective
// operations — with an analytical roofline fallback for kernels that
// were never profiled.
package estimator

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"maya/internal/forest"
	"maya/internal/hardware"
	"maya/internal/trace"
)

// featureLen is the fixed kernel feature dimensionality.
const featureLen = 14

// KernelFeatures maps a traced op to the regressor's feature vector:
// log-scaled work volumes, up to eight semantic dimensions, element
// type and compiler-IR features for fused kernels.
func KernelFeatures(op *trace.Op) []float64 {
	return AppendKernelFeatures(make([]float64, 0, featureLen), op)
}

// AppendKernelFeatures appends op's feature vector to dst and returns
// the extended slice — the allocation-free path for hot loops, which
// pass a stack-backed dst (see EstimateKernel). The layout is
// identical to KernelFeatures.
func AppendKernelFeatures(dst []float64, op *trace.Op) []float64 {
	dst = append(dst,
		math.Log2(1+float64(op.FLOPs)),
		math.Log2(1+float64(op.Bytes)))
	for i := 0; i < 8; i++ {
		if i < len(op.Dims) {
			dst = append(dst, math.Log2(1+float64(op.Dims[i])))
		} else {
			dst = append(dst, 0)
		}
	}
	dst = append(dst, float64(hardware.DType(op.DType).Size()))
	if op.Extra != nil {
		dst = append(dst, op.Extra["triton_instrs"], op.Extra["triton_loads"])
	} else {
		dst = append(dst, 0, 0)
	}
	// The element type identity matters beyond its width: bf16 and
	// fp16 share a size but can differ 4x in tensor-core throughput
	// on pre-Ampere parts.
	return append(dst, dtypeCode(op.DType))
}

func dtypeCode(dt string) float64 {
	switch dt {
	case "fp32":
		return 1
	case "fp16":
		return 2
	case "bf16":
		return 3
	case "fp8":
		return 4
	default:
		return 0
	}
}

// CollectiveEstimator predicts one collective's on-the-wire time.
// The profiled CollectiveModel is the default; network simulators
// (internal/netsim, standing in for ASTRA-sim) plug in through the
// same interface, as the paper's §4.3 describes.
type CollectiveEstimator interface {
	EstimateCollective(op string, bytes int64, ranks []int, nranks int) time.Duration
}

// Suite bundles the trained estimators for one cluster.
type Suite struct {
	cluster hardware.Cluster
	kernels map[string]*forest.Forest
	coll    *CollectiveModel
	collAlt CollectiveEstimator // optional override
}

// WithCollectiveEstimator returns a copy of the suite whose
// collective predictions come from ce (nil restores the profiled
// model). The kernel forests are shared.
func (s *Suite) WithCollectiveEstimator(ce CollectiveEstimator) *Suite {
	c := *s
	c.collAlt = ce
	return &c
}

// Cluster returns the cluster the suite was profiled on.
func (s *Suite) Cluster() hardware.Cluster { return s.cluster }

// KernelNames lists the kernels with trained forests, sorted.
func (s *Suite) KernelNames() []string {
	names := make([]string, 0, len(s.kernels))
	for n := range s.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EstimateKernel predicts the duration of a compute/memory op,
// falling back to an analytical roofline for unprofiled kernels. It
// performs no heap allocation in steady state: the feature vector
// lives in a stack buffer and the flattened forest walk allocates
// nothing.
func (s *Suite) EstimateKernel(op *trace.Op) time.Duration {
	if f, ok := s.kernels[op.Name]; ok {
		var buf [featureLen]float64
		logNs := f.Predict(AppendKernelFeatures(buf[:0], op))
		return time.Duration(math.Exp(logNs))
	}
	return s.analyticalKernel(op)
}

// analyticalKernel is the coarse roofline used when no forest exists.
func (s *Suite) analyticalKernel(op *trace.Op) time.Duration {
	gpu := s.cluster.Node.GPU
	peak := gpu.PeakTFLOPS(hardware.DType(op.DType)) * 1e12
	bw := gpu.MemBWGBps * 1e9
	var tc, tm float64
	if op.FLOPs > 0 && peak > 0 {
		tc = float64(op.FLOPs) / (peak * 0.5)
	}
	if op.Bytes > 0 {
		tm = float64(op.Bytes) / (bw * 0.6)
	}
	ns := math.Max(tc, tm)*1e9 + 3000
	return time.Duration(ns)
}

// EstimateCollective predicts the on-the-wire time of a collective
// among the given global ranks (nranks is the declared group size,
// used when membership is partial).
func (s *Suite) EstimateCollective(opName string, bytes int64, ranks []int, nranks int) time.Duration {
	if s.collAlt != nil {
		return s.collAlt.EstimateCollective(opName, bytes, ranks, nranks)
	}
	return s.coll.Estimate(opName, bytes, ranks, nranks)
}

// KernelMemo caches kernel-runtime estimates by operation shape.
// Safe for concurrent use. Collectives are never memoized (their
// time depends on communicator topology), nor are kernels carrying
// Extra features.
//
// The production annotate paths no longer wire a memo: captures carry
// an EstimatePlan, which resolves every position of a (capture,
// suite) pair once and fills overlays by copy — strictly less work
// per annotate than a hash and sync.Map probe per op. The memo
// remains as the shape-level layer for callers annotating many
// distinct jobs without captures, and as the baseline the plan is
// benchmarked against (BenchmarkAnnotatePlan).
type KernelMemo struct {
	m sync.Map // uint64 shape hash -> time.Duration
}

// NewKernelMemo returns an empty memo.
func NewKernelMemo() *KernelMemo { return &KernelMemo{} }

// kernelKey hashes the estimate-relevant shape of a kernel op
// (FNV-1a over name, dtype, dims and work counts), allocation-free.
// ok is false for ops whose estimate depends on more than the shape.
func kernelKey(op *trace.Op) (uint64, bool) {
	if op.Extra != nil {
		return 0, false
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for i := 0; i < len(op.Name); i++ {
		h ^= uint64(op.Name[i])
		h *= prime
	}
	mix(uint64(op.Kind))
	for i := 0; i < len(op.DType); i++ {
		h ^= uint64(op.DType[i])
		h *= prime
	}
	for _, d := range op.Dims {
		mix(uint64(d))
	}
	mix(uint64(op.Bytes))
	mix(uint64(op.FLOPs))
	return h, true
}

// Annotate writes predicted durations into every device op of the
// job. comms provides communicator membership from the collator;
// incomplete groups are extrapolated by stride (Megatron process
// groups are uniform-stride, so deduplicated jobs still get correct
// topology classification). Cancellation of ctx is observed between
// workers; a cancelled annotation returns ctx.Err() with the job
// partially annotated.
func (s *Suite) Annotate(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int) error {
	return s.AnnotateMemo(ctx, job, comms, sizes, nil)
}

// AnnotateMemo is Annotate with an optional shared estimate memo
// (nil behaves like Annotate).
func (s *Suite) AnnotateMemo(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int, memo *KernelMemo) error {
	return s.annotate(ctx, job, comms, sizes, memo, nil)
}

// AnnotateInto is AnnotateMemo writing predicted durations into the
// overlay instead of the ops themselves, leaving the job immutable:
// the capture-reuse path, where the simulator reads through the
// overlay and the trace is never deep-copied. The overlay must be
// bound to this job.
func (s *Suite) AnnotateInto(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int, memo *KernelMemo, ann *trace.Annotations) error {
	return s.annotate(ctx, job, comms, sizes, memo, ann)
}

// annotate computes every device op's predicted duration, writing
// either into the ops (ann nil) or the overlay.
func (s *Suite) annotate(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int, memo *KernelMemo, ann *trace.Annotations) error {
	world := 0
	for _, w := range job.Workers {
		if w.World > world {
			world = w.World
		}
	}
	for wi, w := range job.Workers {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range w.Ops {
			op := &w.Ops[i]
			var d time.Duration
			switch op.Kind {
			case trace.KindKernel, trace.KindMemcpy, trace.KindMemset:
				if memo != nil {
					if key, ok := kernelKey(op); ok {
						if hit, found := memo.m.Load(key); found {
							d = hit.(time.Duration)
						} else {
							d = s.EstimateKernel(op)
							memo.m.Store(key, d)
						}
						break
					}
				}
				d = s.EstimateKernel(op)
			case trace.KindCollective:
				if op.Coll.Seq < 0 {
					continue
				}
				ranks := trace.ExpandRanks(comms[op.Coll.CommID], sizes[op.Coll.CommID], world)
				d = s.EstimateCollective(op.Coll.Op, op.Coll.Bytes, ranks, op.Coll.NRanks)
			default:
				continue
			}
			if ann != nil {
				ann.Set(wi, op.Seq, d)
			} else {
				op.Dur = d
			}
		}
	}
	return nil
}

// MAPEByKernel evaluates the suite's per-kernel-name mean absolute
// percentage error over held-out profile samples.
func (s *Suite) MAPEByKernel(test []ProfileSample) map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for i := range test {
		ps := &test[i]
		if ps.Op.Kind == trace.KindCollective {
			continue
		}
		want := float64(ps.Dur)
		if want <= 0 {
			continue
		}
		got := float64(s.EstimateKernel(&ps.Op))
		name := ps.Op.Name
		sums[name] += math.Abs(got-want) / want
		counts[name]++
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}

// String summarizes the suite.
func (s *Suite) String() string {
	return fmt.Sprintf("estimator.Suite{%s: %d kernel forests}", s.cluster.Name, len(s.kernels))
}
