package estimator

import (
	"testing"
	"time"

	"maya/internal/hardware"
	"maya/internal/silicon"
	"maya/internal/trace"
)

func trainedSuite(t *testing.T, cluster hardware.Cluster, kind ProfileKind) (*Suite, map[string]float64) {
	t.Helper()
	oracle := silicon.NewOracle(cluster, 7)
	profile := SyntheticProfile(oracle, cluster, kind, 11)
	s, mape, err := TrainAndEvaluate(profile, cluster, TrainOptions{})
	if err != nil {
		t.Fatalf("TrainAndEvaluate: %v", err)
	}
	return s, mape
}

func TestGemmEstimatorAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cluster := hardware.DGXH100(4)
	_, mape := trainedSuite(t, cluster, ProfileLLM)
	for _, name := range []string{"cublasGemmEx", "cublasSgemmStridedBatched"} {
		got, ok := mape[name]
		if !ok {
			t.Fatalf("no MAPE for %s; have %v", name, mape)
		}
		if got > 0.10 {
			t.Errorf("%s MAPE = %.1f%%, want < 10%% (heavy-hitter kernels must predict well)", name, got*100)
		}
	}
}

func TestEstimatorTracksShapeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cluster := hardware.DGXH100(1)
	s, _ := trainedSuite(t, cluster, ProfileLLM)
	small := &trace.Op{Kind: trace.KindKernel, Name: "cublasGemmEx",
		Dims: []int{1, 512, 512, 512}, FLOPs: 2 * 512 * 512 * 512,
		Bytes: 2 * 3 * 512 * 512, DType: "bf16"}
	big := &trace.Op{Kind: trace.KindKernel, Name: "cublasGemmEx",
		Dims: []int{1, 8192, 8192, 8192}, FLOPs: 2 * 8192 * 8192 * 8192,
		Bytes: 2 * 3 * 8192 * 8192, DType: "bf16"}
	ts, tb := s.EstimateKernel(small), s.EstimateKernel(big)
	if tb < 100*ts {
		t.Errorf("big gemm %v not ≫ small gemm %v (4096x flops)", tb, ts)
	}
}

func TestCollectiveModelScalesWithSizeAndScope(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cluster := hardware.DGXH100(8)
	s, _ := trainedSuite(t, cluster, ProfileLLM)
	intra := []int{0, 1, 2, 3, 4, 5, 6, 7}
	inter := []int{0, 8, 16, 24, 32, 40, 48, 56}
	small := s.EstimateCollective("ncclAllReduce", 1<<22, intra, 8)
	large := s.EstimateCollective("ncclAllReduce", 1<<28, intra, 8)
	if large < 10*small {
		t.Errorf("allreduce 256MB (%v) not ≫ 4MB (%v)", large, small)
	}
	intraT := s.EstimateCollective("ncclAllReduce", 1<<28, intra, 8)
	interT := s.EstimateCollective("ncclAllReduce", 1<<28, inter, 8)
	if interT < 2*intraT {
		t.Errorf("inter-node allreduce (%v) should be much slower than NVSwitch (%v)", interT, intraT)
	}
}

func TestCollectiveEstimateVsTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cluster := hardware.DGXV100(2)
	oracle := silicon.NewOracle(cluster, 7)
	s, _ := trainedSuite(t, cluster, ProfileLLM)
	ranks := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, bytes := range []int64{1 << 24, 1 << 26, 1 << 28} {
		want := oracle.CollectiveTime("ncclAllReduce", bytes, ranks)
		got := s.EstimateCollective("ncclAllReduce", bytes, ranks, 8)
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.15 {
			t.Errorf("allreduce %d bytes: est %v vs truth %v (%.0f%% off)", bytes, got, want, rel*100)
		}
	}
}

func TestExpandRanks(t *testing.T) {
	cases := []struct {
		known []int
		size  int
		world int
		want  []int
	}{
		{[]int{0, 1, 2, 3}, 4, 8, []int{0, 1, 2, 3}},
		{[]int{0, 8}, 4, 32, []int{0, 8, 16, 24}},
		{[]int{0}, 4, 32, []int{0, 8, 16, 24}},
		{[]int{2}, 2, 4, []int{2, 0}},
	}
	for i, c := range cases {
		got := trace.ExpandRanks(c.known, c.size, c.world)
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestUnprofiledKernelFallsBackToAnalytical(t *testing.T) {
	s, err := TrainSuite(nil, hardware.DGXH100(1), TrainOptions{})
	if err != nil {
		t.Fatalf("TrainSuite(empty): %v", err)
	}
	op := &trace.Op{Kind: trace.KindKernel, Name: "never_profiled", FLOPs: 1 << 30, Bytes: 1 << 20, DType: "bf16"}
	if d := s.EstimateKernel(op); d <= 0 {
		t.Fatalf("fallback estimate = %v, want > 0", d)
	}
	if d := s.EstimateKernel(op); d > time.Second {
		t.Fatalf("fallback estimate = %v, implausibly large", d)
	}
}
