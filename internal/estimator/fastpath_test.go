package estimator

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"maya/internal/hardware"
	"maya/internal/prand"
	"maya/internal/trace"
)

// tinyProfile builds a deterministic kernel profile dense enough to
// train forests for each name, without going through the oracle.
func tinyProfile(names []string, perName int) []ProfileSample {
	rng := prand.New(5)
	var out []ProfileSample
	for _, name := range names {
		for i := 0; i < perName; i++ {
			m := int64(64 + rng.Intn(4096))
			op := trace.Op{
				Kind: trace.KindKernel, Name: name,
				Dims:  []int{1, int(m), int(m), int(m)},
				FLOPs: 2 * m * m * m, Bytes: 3 * 2 * m * m, DType: "bf16",
			}
			// A deterministic, shape-dependent "measurement".
			dur := time.Duration(op.FLOPs/50000 + op.Bytes/2000 + 3000)
			out = append(out, ProfileSample{Op: op, Dur: dur})
		}
	}
	return out
}

func TestSuiteTrainingDefaultsPinned(t *testing.T) {
	// The effective suite-training defaults. The forest package's
	// generic defaults are 24 trees / depth 14; suite training
	// deliberately overrides them, and these constants (plus this
	// test) are what keeps the two documented stories reconciled.
	o := TrainOptions{}.withDefaults()
	if o.Forest.Trees != DefaultSuiteTrees || DefaultSuiteTrees != 16 {
		t.Errorf("suite Trees default = %d (const %d), want 16", o.Forest.Trees, DefaultSuiteTrees)
	}
	if o.Forest.MaxDepth != DefaultSuiteMaxDepth || DefaultSuiteMaxDepth != 12 {
		t.Errorf("suite MaxDepth default = %d (const %d), want 12", o.Forest.MaxDepth, DefaultSuiteMaxDepth)
	}
	if o.MinSamples != DefaultMinSamples || DefaultMinSamples != 40 {
		t.Errorf("MinSamples default = %d (const %d), want 40", o.MinSamples, DefaultMinSamples)
	}
	if o.Workers < 1 {
		t.Errorf("Workers default = %d, want >= 1", o.Workers)
	}
}

func TestAppendKernelFeaturesMatchesKernelFeatures(t *testing.T) {
	ops := []trace.Op{
		{Kind: trace.KindKernel, Name: "g", Dims: []int{1, 512, 512, 512},
			FLOPs: 1 << 28, Bytes: 1 << 20, DType: "bf16"},
		{Kind: trace.KindKernel, Name: "conv", Dims: []int{8, 64, 56, 56, 128, 3, 3, 1, 0, 54, 54},
			FLOPs: 1 << 30, Bytes: 1 << 22, DType: "fp16"},
		{Kind: trace.KindKernel, Name: "triton", Dims: []int{1 << 20},
			FLOPs: 1 << 24, Bytes: 1 << 22, DType: "fp16",
			Extra: map[string]float64{"triton_instrs": 12, "triton_loads": 3}},
		{Kind: trace.KindMemcpy, Name: "MemcpyHtoD", Bytes: 1 << 24, MemKind: "HtoD"},
		{Kind: trace.KindMemset, Name: "Memset", Bytes: 1 << 16, DType: "weird"},
	}
	for i := range ops {
		want := KernelFeatures(&ops[i])
		if len(want) != featureLen {
			t.Fatalf("op %d: %d features, want %d", i, len(want), featureLen)
		}
		var buf [featureLen]float64
		got := AppendKernelFeatures(buf[:0], &ops[i])
		if !reflect.DeepEqual(want, got) {
			t.Errorf("op %d: AppendKernelFeatures = %v, KernelFeatures = %v", i, got, want)
		}
		// Appending to a non-empty dst extends rather than overwrites.
		pre := AppendKernelFeatures([]float64{7}, &ops[i])
		if pre[0] != 7 || !reflect.DeepEqual(pre[1:], want) {
			t.Errorf("op %d: append to non-empty dst corrupted the prefix", i)
		}
	}
}

func TestEstimateKernelAllocFree(t *testing.T) {
	cluster := hardware.DGXV100(1)
	s, err := TrainSuite(tinyProfile([]string{"k0"}, 80), cluster, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	forested := &trace.Op{Kind: trace.KindKernel, Name: "k0",
		Dims: []int{1, 1024, 1024, 1024}, FLOPs: 2 << 30, Bytes: 6 << 20, DType: "bf16"}
	analytical := &trace.Op{Kind: trace.KindKernel, Name: "never_profiled",
		FLOPs: 1 << 28, Bytes: 1 << 20, DType: "bf16"}
	if d := s.EstimateKernel(forested); d <= 0 {
		t.Fatalf("forest estimate = %v", d)
	}
	if n := testing.AllocsPerRun(200, func() { s.EstimateKernel(forested) }); n != 0 {
		t.Errorf("EstimateKernel (forest path) allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.EstimateKernel(analytical) }); n != 0 {
		t.Errorf("EstimateKernel (analytical path) allocates %v/op, want 0", n)
	}
}

func TestTrainSuiteParallelMatchesSerial(t *testing.T) {
	// Per-tree seeds are independently derived, so the worker count
	// must not change a single bit of the trained suite. Run with
	// -race in CI, this doubles as the training-pool race test.
	cluster := hardware.DGXV100(1)
	profile := tinyProfile([]string{"k0", "k1", "k2"}, 70)
	serial, err := TrainSuite(profile, cluster, TrainOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TrainSuite(profile, cluster, TrainOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.kernels) != 3 || len(parallel.kernels) != 3 {
		t.Fatalf("kernel forest counts: %d vs %d, want 3", len(serial.kernels), len(parallel.kernels))
	}
	if !reflect.DeepEqual(serial.kernels, parallel.kernels) {
		t.Fatal("parallel TrainSuite produced different forests than serial")
	}
}

// planFixtureJob builds a two-worker job covering every op class the
// annotation pass distinguishes: profiled kernels (with a duplicate
// shape), the analytical fallback, an Extra-carrying fused kernel,
// memory ops, matched and unmatched collectives, host delays and
// markers.
func planFixtureJob(t *testing.T) (*trace.Job, map[uint64][]int, map[uint64]int) {
	t.Helper()
	mk := func(rank int) *trace.Worker {
		w := &trace.Worker{Rank: rank, World: 2, Device: "test"}
		w.Append(trace.Op{Kind: trace.KindHostDelay, Dur: 5 * time.Microsecond})
		w.Append(trace.Op{Kind: trace.KindKernel, Name: "k0",
			Dims: []int{1, 256, 256, 256}, FLOPs: 2 << 24, Bytes: 3 << 17, DType: "bf16"})
		w.Append(trace.Op{Kind: trace.KindKernel, Name: "k0",
			Dims: []int{1, 256, 256, 256}, FLOPs: 2 << 24, Bytes: 3 << 17, DType: "bf16"})
		w.Append(trace.Op{Kind: trace.KindKernel, Name: "unprofiled",
			FLOPs: 1 << 22, Bytes: 1 << 18, DType: "fp16"})
		w.Append(trace.Op{Kind: trace.KindKernel, Name: "fused",
			Dims: []int{1 << 18}, FLOPs: 1 << 22, Bytes: 1 << 20, DType: "fp16",
			Extra: map[string]float64{"triton_instrs": 8, "triton_loads": 2}})
		w.Append(trace.Op{Kind: trace.KindMemcpy, Name: "MemcpyHtoD", Bytes: 1 << 20, MemKind: "HtoD"})
		w.Append(trace.Op{Kind: trace.KindCollective, Name: "ncclAllReduce", Bytes: 1 << 20,
			Coll: &trace.Collective{Op: "ncclAllReduce", CommID: 1, Seq: 0, NRanks: 2, Rank: rank, Peer: -1, Bytes: 1 << 20}})
		w.Append(trace.Op{Kind: trace.KindCollective, Name: "ncclAllReduce", Bytes: 1 << 10,
			Coll: &trace.Collective{Op: "ncclAllReduce", CommID: 1, Seq: -1, NRanks: 2, Rank: rank, Peer: -1, Bytes: 1 << 10}})
		w.Append(trace.Op{Kind: trace.KindMark, Name: "iter"})
		return w
	}
	job, err := trace.NewJob([]*trace.Worker{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	return job, map[uint64][]int{1: {0, 1}}, map[uint64]int{1: 2}
}

func TestEstimatePlanMatchesAnnotateInto(t *testing.T) {
	cluster := hardware.DGXV100(1)
	s, err := TrainSuite(tinyProfile([]string{"k0"}, 80), cluster, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	job, comms, sizes := planFixtureJob(t)
	ctx := context.Background()

	direct := trace.NewAnnotations(job)
	if direct == nil {
		t.Fatal("fixture job not positionally indexable")
	}
	if err := s.AnnotateInto(ctx, job, comms, sizes, nil, direct); err != nil {
		t.Fatal(err)
	}

	plan, err := s.BuildEstimatePlan(ctx, job, comms, sizes)
	if err != nil {
		t.Fatal(err)
	}
	planned := trace.NewAnnotations(job)
	if !plan.Fill(planned) {
		t.Fatal("plan.Fill rejected an overlay of its own job")
	}
	for wi, w := range job.Workers {
		for i := range w.Ops {
			if got, want := planned.Dur(wi, i), direct.Dur(wi, i); got != want {
				t.Fatalf("worker %d op %d (%v %s): plan %v != annotate %v",
					wi, i, w.Ops[i].Kind, w.Ops[i].Name, got, want)
			}
		}
	}
	if plan.Ops() != 2*len(job.Workers[0].Ops) {
		t.Fatalf("plan covers %d ops, want %d", plan.Ops(), 2*len(job.Workers[0].Ops))
	}

	// The memoized path must agree too (plan subsumes the memo).
	memo := NewKernelMemo()
	memoed := trace.NewAnnotations(job)
	if err := s.AnnotateInto(ctx, job, comms, sizes, memo, memoed); err != nil {
		t.Fatal(err)
	}
	for wi, w := range job.Workers {
		for i := range w.Ops {
			if memoed.Dur(wi, i) != planned.Dur(wi, i) {
				t.Fatalf("worker %d op %d: memo and plan disagree", wi, i)
			}
		}
	}

	// Mismatched layouts are rejected, not silently misapplied.
	other, _ := trace.NewJob([]*trace.Worker{{Rank: 0, World: 1}})
	if plan.Fill(trace.NewAnnotations(other)) {
		t.Fatal("plan.Fill accepted an overlay of a different job")
	}
}

func TestEstimatePlanHonorsCancellation(t *testing.T) {
	cluster := hardware.DGXV100(1)
	s, err := TrainSuite(nil, cluster, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	job, comms, sizes := planFixtureJob(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BuildEstimatePlan(ctx, job, comms, sizes); err != context.Canceled {
		t.Fatalf("BuildEstimatePlan(cancelled) = %v, want context.Canceled", err)
	}
}

func TestKernelFeaturesPropertyStable(t *testing.T) {
	// Randomized shapes: the append path and the allocating path agree
	// for arbitrary dims/work volumes and dtypes.
	dtypes := []string{"fp32", "fp16", "bf16", "fp8", "int8"}
	if err := quick.Check(func(seed uint64, nd uint8, flops, bytes int64) bool {
		rng := prand.New(seed)
		dims := make([]int, int(nd%12))
		for i := range dims {
			dims[i] = rng.Intn(1 << 16)
		}
		op := trace.Op{
			Kind: trace.KindKernel, Name: "p",
			Dims: dims, FLOPs: flops & (1<<40 - 1), Bytes: bytes & (1<<40 - 1),
			DType: dtypes[rng.Intn(len(dtypes))],
		}
		var buf [featureLen]float64
		return reflect.DeepEqual(KernelFeatures(&op), AppendKernelFeatures(buf[:0], &op))
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
