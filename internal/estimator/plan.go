package estimator

import (
	"context"
	"errors"
	"time"

	"maya/internal/trace"
)

// EstimatePlan is a capture-attached annotation plan: the resolved
// duration of every op of one immutable job against one suite, laid
// out row-major exactly like a trace.Annotations overlay. Building it
// pays the estimator once — each unique kernel shape (by kernelKey)
// is one forest walk, every collective one topology lookup — and
// every later annotate of the same (job, suite) pair is a single
// array copy into the pooled overlay: no hashing, no map probes, no
// forest walks.
//
// Plans generalize the former batch-local and search-wide KernelMemo
// layers. A memo cached per-shape estimates keyed by hash and still
// paid a hash plus a sync.Map probe per op per annotate; a plan
// resolves every position up front, so batch sweeps, FindRecipe
// trials and repeated Simulate calls against one capture skip
// per-op work entirely. Plans are immutable once built and safe for
// concurrent Fill.
type EstimatePlan struct {
	durs []time.Duration
}

// Ops returns how many op slots the plan covers.
func (p *EstimatePlan) Ops() int { return len(p.durs) }

// BuildEstimatePlan resolves every device op of the job against the
// suite. It is annotation by construction — one AnnotateInto pass
// (with a build-local shape memo so each unique kernel shape pays one
// forest walk) into a fresh overlay, snapshotted — so a Fill from the
// plan reproduces AnnotateInto exactly and cannot drift from it. Ops
// an annotation pass does not touch — host delays, events, markers,
// unmatched collectives — keep their base durations through the
// overlay's seeding. Cancellation of ctx is observed between workers.
//
// The job must be positionally indexable (op Seq == index), the same
// invariant overlays require; plans exist to fill overlays, so a job
// an overlay cannot address has no use for one.
func (s *Suite) BuildEstimatePlan(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int) (*EstimatePlan, error) {
	ann := trace.NewAnnotations(job)
	if ann == nil {
		return nil, errors.New("estimator: job is not positionally indexable, cannot build an estimate plan")
	}
	if err := s.AnnotateInto(ctx, job, comms, sizes, NewKernelMemo(), ann); err != nil {
		return nil, err
	}
	return &EstimatePlan{durs: ann.Snapshot()}, nil
}

// Fill copies the plan into the overlay, reporting false — leaving
// the overlay untouched — when the layouts do not match (an overlay
// bound to a different job).
func (p *EstimatePlan) Fill(ann *trace.Annotations) bool {
	return ann.FillFrom(p.durs)
}
