package estimator

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"maya/internal/forest"
	"maya/internal/hardware"
	"maya/internal/prand"
	"maya/internal/trace"
)

// ProfileSample is one profiled observation: an operation descriptor
// plus its measured duration. For collectives, Ranks carries the
// participating global ranks (topology).
type ProfileSample struct {
	Op    trace.Op
	Ranks []int
	Dur   time.Duration
}

// Measurer dispatches an operation on "real hardware" and reports
// its runtime — Maya's transparent profiling mode. The synthetic
// silicon oracle implements it; a real GPU binding would too.
type Measurer interface {
	Measure(op *trace.Op, ranks []int, sampleID int64) time.Duration
}

// ProfileKind selects which microbenchmark families to sweep.
type ProfileKind int

// Profile families.
const (
	// ProfileLLM covers transformer training kernels (GEMMs,
	// norms, softmax, elementwise, embedding, optimizer) and
	// collectives — the Megatron-LM workloads.
	ProfileLLM ProfileKind = iota
	// ProfileVision covers convolutions, pooling, batch-norm, loss
	// and torch.compile Triton kernels.
	ProfileVision
	// ProfileAll covers both.
	ProfileAll
)

// Effective suite-training defaults. The forest package's generic
// defaults (24 trees, depth 14) are deliberately overridden here:
// per-kernel runtime surfaces are smooth enough that 16 shallower
// trees match the deeper ensemble's held-out MAPE at ~60% of the
// training cost, and a suite trains one forest per kernel class.
// These constants are the single source of truth for what
// TrainOptions' zero values mean; a test pins them.
const (
	// DefaultSuiteTrees is the per-kernel forest size suite training
	// uses when TrainOptions.Forest.Trees is zero.
	DefaultSuiteTrees = 16
	// DefaultSuiteMaxDepth is the tree-depth cap suite training uses
	// when TrainOptions.Forest.MaxDepth is zero.
	DefaultSuiteMaxDepth = 12
	// DefaultMinSamples is the minimum per-kernel sample count to
	// train a forest; rarer kernels use the analytical fallback.
	DefaultMinSamples = 40
)

// TrainOptions tunes suite training.
type TrainOptions struct {
	// Forest configures the per-kernel forests. Zero Trees/MaxDepth
	// take the suite defaults (DefaultSuiteTrees/DefaultSuiteMaxDepth,
	// not the forest package's generic 24/14); other zero fields take
	// the forest package's defaults.
	Forest forest.Options
	// MinSamples is the minimum per-kernel sample count to train a
	// forest (default DefaultMinSamples); rarer kernels use the
	// analytical fallback.
	MinSamples int
	// Workers bounds the training worker pool, which spans kernel
	// classes and trees jointly (<= 0 means runtime.GOMAXPROCS(0)).
	// Per-tree seeds are independently derived, so the trained suite
	// is byte-identical for every worker count.
	Workers int
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.MinSamples == 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.Forest.Trees == 0 {
		o.Forest.Trees = DefaultSuiteTrees
	}
	if o.Forest.MaxDepth == 0 {
		o.Forest.MaxDepth = DefaultSuiteMaxDepth
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// TrainSuite fits per-kernel forests and the collective model from a
// profile. All (kernel class, tree) tasks run through one bounded
// worker pool (opts.Workers wide), so training scales with cores on
// both axes; the result is byte-identical to serial training.
func TrainSuite(profile []ProfileSample, cluster hardware.Cluster, opts TrainOptions) (*Suite, error) {
	opts = opts.withDefaults()
	byName := make(map[string][]forest.Sample)
	var colls []ProfileSample
	for i := range profile {
		ps := &profile[i]
		if ps.Dur <= 0 {
			continue
		}
		if ps.Op.Kind == trace.KindCollective {
			colls = append(colls, *ps)
			continue
		}
		byName[ps.Op.Name] = append(byName[ps.Op.Name], forest.Sample{
			X: KernelFeatures(&ps.Op),
			Y: math.Log(float64(ps.Dur)),
		})
	}
	s := &Suite{
		cluster: cluster,
		kernels: make(map[string]*forest.Forest, len(byName)),
		coll:    trainCollectiveModel(cluster, colls),
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var jobs []forest.TrainJob
	var jobNames []string
	for _, name := range names {
		samples := byName[name]
		if len(samples) < opts.MinSamples {
			continue
		}
		fopts := opts.Forest
		fopts.Seed = prand.Hash64("forest", cluster.Name, name)
		jobs = append(jobs, forest.TrainJob{Samples: samples, Opts: fopts})
		jobNames = append(jobNames, name)
	}
	forests, err := forest.TrainForests(jobs, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("estimator: training kernel forests: %w", err)
	}
	for i, name := range jobNames {
		s.kernels[name] = forests[i]
	}
	return s, nil
}

// TrainAndEvaluate splits the profile 80:20, trains on the larger
// share and reports held-out per-kernel MAPE — the evaluation behind
// the paper's Tables 7–9. The split is the shared seeded-permutation
// holdout (forest.SplitN), so it stays byte-identical to what
// forest.Split produces for the same seed and test count.
func TrainAndEvaluate(profile []ProfileSample, cluster hardware.Cluster, opts TrainOptions) (*Suite, map[string]float64, error) {
	train, test := forest.SplitN(profile, len(profile)/5, prand.Hash64("split", cluster.Name))
	s, err := TrainSuite(train, cluster, opts)
	if err != nil {
		return nil, nil, err
	}
	return s, s.MAPEByKernel(test), nil
}

// SyntheticProfile sweeps the heavy-hitter microbenchmark families —
// GEMMs, convolutions, Triton fusions, memory transfers and
// collectives — through the measurer, producing the dense part of
// the training corpus (Appendix B's ≈42k-point sweeps). The long tail
// of framework kernels is profiled by *scraping traces* of
// single-layer model runs (see the core package), exactly as the
// paper describes, so tail-kernel features match what workloads emit.
func SyntheticProfile(m Measurer, cluster hardware.Cluster, kind ProfileKind, seed uint64) []ProfileSample {
	g := &profileGen{
		m:       m,
		cluster: cluster,
		rng:     prand.New(prand.HashInts(seed, 0x9f0f11e)),
	}
	if kind == ProfileLLM || kind == ProfileAll {
		g.sweepGemms()
		g.sweepMemops()
		g.sweepCollectives()
	}
	if kind == ProfileVision || kind == ProfileAll {
		g.sweepConvs()
		g.sweepVisionGemms()
		g.sweepTriton()
		g.sweepMemops()
		g.sweepCollectives()
	}
	return g.out
}

type profileGen struct {
	m       Measurer
	cluster hardware.Cluster
	rng     *prand.SplitMix64
	out     []ProfileSample
	id      int64
}

func (g *profileGen) add(op trace.Op, ranks []int) {
	g.id++
	dur := g.m.Measure(&op, ranks, g.id)
	g.out = append(g.out, ProfileSample{Op: op, Ranks: ranks, Dur: dur})
}

func (g *profileGen) gemmOp(name string, batch, m, n, k int, dtype string) trace.Op {
	es := int64(hardware.DType(dtype).Size())
	b := int64(batch)
	return trace.Op{
		Kind:  trace.KindKernel,
		Name:  name,
		Dims:  []int{batch, m, n, k},
		FLOPs: 2 * b * int64(m) * int64(n) * int64(k),
		Bytes: b * es * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)),
		DType: dtype,
	}
}

// logDim draws a dimension log-uniformly in [lo, hi], snapped to a
// multiple of 8 (framework shapes are).
func (g *profileGen) logDim(lo, hi int) int {
	l := math.Log2(float64(lo))
	h := math.Log2(float64(hi))
	d := int(math.Exp2(l + g.rng.Float64()*(h-l)))
	d = d / 8 * 8
	if d < lo {
		d = lo
	}
	return d
}

func (g *profileGen) sweepGemms() {
	dtypes := []string{"bf16", "fp16", "fp32"}
	for i := 0; i < 2200; i++ {
		dt := dtypes[i%len(dtypes)]
		m := g.logDim(64, 131072)
		n := g.logDim(64, 32768)
		k := g.logDim(64, 32768)
		name := "cublasGemmEx"
		if dt == "fp32" {
			name = "cublasSgemm_v2"
		}
		g.add(g.gemmOp(name, 1, m, n, k, dt), nil)
	}
	for i := 0; i < 1400; i++ {
		dt := dtypes[i%2] // batched attention matmuls are half precision
		b := 1 << uint(g.rng.Intn(8))
		m := g.logDim(64, 8192)
		n := g.logDim(16, 8192)
		k := g.logDim(16, 8192)
		g.add(g.gemmOp("cublasSgemmStridedBatched", b, m, n, k, dt), nil)
	}
	for i := 0; i < 500; i++ {
		m := g.logDim(64, 65536)
		n := g.logDim(64, 16384)
		k := g.logDim(64, 16384)
		g.add(g.gemmOp("cublasLtMatmul", 1, m, n, k, "bf16"), nil)
	}
}

func (g *profileGen) sweepConvs() {
	names := []string{"cudnnConvolutionForward", "cudnnConvolutionBackwardData", "cudnnConvolutionBackwardFilter"}
	for i := 0; i < 3600; i++ {
		name := names[i%3]
		n := 1 << uint(g.rng.Intn(8)) // batch 1..128
		c := 1 << uint(3+g.rng.Intn(8))
		k := 1 << uint(3+g.rng.Intn(8))
		hw := []int{7, 14, 28, 56, 112, 224}[g.rng.Intn(6)]
		r := []int{1, 3, 3, 7}[g.rng.Intn(4)]
		stride := 1 + g.rng.Intn(2)
		oh := (hw-r)/stride + 1
		if oh <= 0 {
			continue
		}
		es := int64(2)
		flops := 2 * int64(n) * int64(k) * int64(oh) * int64(oh) * int64(c) * int64(r) * int64(r)
		bytes := es * (int64(n)*int64(c)*int64(hw)*int64(hw) + int64(k)*int64(c)*int64(r)*int64(r) + int64(n)*int64(k)*int64(oh)*int64(oh))
		g.add(trace.Op{
			Kind:  trace.KindKernel,
			Name:  name,
			Dims:  []int{n, c, hw, hw, k, r, r, stride, 0, oh, oh},
			FLOPs: flops,
			Bytes: bytes,
			DType: "fp16",
		}, nil)
	}
}

// sweepVisionGemms adds the dense-layer GEMM shapes vision training
// hits (classifier heads, small-batch fp32 paths).
func (g *profileGen) sweepVisionGemms() {
	for i := 0; i < 400; i++ {
		m := g.logDim(8, 4096)
		n := g.logDim(64, 8192)
		k := g.logDim(64, 8192)
		g.add(g.gemmOp("cublasSgemm_v2", 1, m, n, k, "fp32"), nil)
	}
	for i := 0; i < 300; i++ {
		m := g.logDim(8, 4096)
		n := g.logDim(64, 8192)
		k := g.logDim(64, 8192)
		g.add(g.gemmOp("cublasLtMatmul", 1, m, n, k, "fp16"), nil)
	}
}

// sweepTriton profiles compiler-fused kernels: runtime depends on the
// instruction mix, which the profile encodes as IR features
// (Appendix B's approach to generated-kernel explosion).
func (g *profileGen) sweepTriton() {
	for i := 0; i < 900; i++ {
		elems := int64(g.logDim(1024, 1<<26))
		instrs := float64(2 + g.rng.Intn(40))
		loads := float64(1 + g.rng.Intn(8))
		g.add(trace.Op{
			Kind:  trace.KindKernel,
			Name:  "triton",
			Dims:  []int{int(elems)},
			Bytes: elems * int64(loads+1) * 2,
			FLOPs: elems * int64(instrs),
			DType: "fp16",
			Extra: map[string]float64{"triton_instrs": instrs, "triton_loads": loads},
		}, nil)
	}
}

func (g *profileGen) sweepMemops() {
	kinds := []string{"HtoD", "DtoH", "DtoD"}
	for _, k := range kinds {
		for i := 0; i < 260; i++ {
			bytes := int64(g.logDim(4096, 1<<30))
			g.add(trace.Op{
				Kind:    trace.KindMemcpy,
				Name:    "Memcpy" + k,
				Bytes:   bytes,
				MemKind: k,
			}, nil)
		}
	}
	for i := 0; i < 200; i++ {
		bytes := int64(g.logDim(4096, 1<<30))
		g.add(trace.Op{Kind: trace.KindMemset, Name: "Memset", Bytes: bytes}, nil)
	}
}

// sweepCollectives profiles nccl-tests style: each op across
// participant counts, intra- and inter-node, over sizes from
// megabytes to gigabytes.
func (g *profileGen) sweepCollectives() {
	ops := []string{"ncclAllReduce", "ncclAllGather", "ncclReduceScatter", "ncclBroadcast", "ncclSend", "ncclAllToAll"}
	world := g.cluster.TotalGPUs()
	perNode := g.cluster.Node.GPUsPerNode

	var groups [][]int
	for _, n := range []int{2, 4, 8} {
		if n <= perNode {
			groups = append(groups, contiguous(0, n)) // intra-node
		}
	}
	if g.cluster.Nodes > 1 {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			if n <= g.cluster.Nodes*perNode {
				stride := world / n
				if stride < 1 {
					stride = 1
				}
				groups = append(groups, strided(0, n, stride)) // spans nodes
			}
		}
	}
	for _, op := range ops {
		for _, ranks := range groups {
			if op == "ncclSend" && len(ranks) != 2 {
				continue
			}
			for exp := 10; exp <= 34; exp++ { // 1KB .. 16GB
				for rep := 0; rep < 2; rep++ {
					bytes := int64(1) << uint(exp)
					bytes += int64(g.rng.Intn(1 << uint(exp-2)))
					peer := -1
					if op == "ncclSend" {
						peer = 1
					}
					g.add(trace.Op{
						Kind:  trace.KindCollective,
						Name:  op,
						Bytes: bytes,
						Coll: &trace.Collective{
							Op: op, CommID: 1, Seq: 0,
							NRanks: len(ranks), Rank: 0, Peer: peer, Bytes: bytes,
						},
					}, ranks)
				}
			}
		}
	}
}

func contiguous(start, n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = start + i
	}
	return r
}

func strided(start, n, stride int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = start + i*stride
	}
	return r
}

// SortedKernelMAPE renders a MAPE map as sorted rows for reports.
func SortedKernelMAPE(mape map[string]float64) []string {
	names := make([]string, 0, len(mape))
	for n := range mape {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]string, 0, len(names))
	for _, n := range names {
		rows = append(rows, fmt.Sprintf("%-48s %6.2f%%", n, mape[n]*100))
	}
	return rows
}
