package experiments

// Fig. 14: worker-deduplication ablation. Fixed parallelism, growing
// data-parallel degree: every added worker is redundant, so dedup
// should hold pipeline runtime flat while the no-dedup baseline
// scales with GPU count.

import (
	"context"
	"fmt"
	"time"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func init() {
	register("fig14", fig14)
}

func fig14(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Impact of worker deduplication on Maya's runtime",
		Header: []string{"setup", "workers", "no-dedup time", "dedup time", "dedup workers", "reduction"},
	}
	type scale struct {
		name    string
		cluster hardware.Cluster
		model   models.Transformer
		batch   int
	}
	scales := []scale{
		{"8xV100", hardware.DGXV100(1), models.GPT3_1_3B(), 64},
		{"16xV100", hardware.DGXV100(2), models.GPT3_1_3B(), 128},
		{"32xV100", hardware.DGXV100(4), models.GPT3_1_3B(), 256},
		{"32xH100", hardware.DGXH100(4), models.GPT3_18_4B(), 256},
		{"64xH100", hardware.DGXH100(8), models.GPT3_18_4B(), 512},
	}
	if e.Scale == Quick {
		scales = append(scales[:2], scales[3:]...)
	}
	for _, sc := range scales {
		pipe, err := e.Predictor(ctx, sc.cluster, estimator.ProfileLLM)
		if err != nil {
			return nil, err
		}
		// Fixed TP/PP; all growth goes to the data-parallel degree —
		// pure redundancy from the emulator's perspective. Recompute
		// and the distributed optimizer keep every scale within HBM.
		// Multiple iterations make the dynamic-dedup trade-off real:
		// the probe costs one iteration on every rank, full emulation
		// of the remaining iterations runs on unique ranks only.
		cfg := framework.MegatronConfig{
			Model: sc.model, NGPUs: sc.cluster.TotalGPUs(), GlobalBatch: sc.batch,
			TP: 2, PP: 2, MicroBatches: 4, ActRecompute: true, DistOptimizer: true,
			Iterations: 3,
		}
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return nil, err
		}

		noDedup := &core.Pipeline{Cluster: sc.cluster, Suite: pipe.Suite, Opts: core.Options{NoDedup: true}}
		dedup := &core.Pipeline{Cluster: sc.cluster, Suite: pipe.Suite, Opts: core.Options{}}

		// The ablation is about what deduplication saves in the
		// capture (emulate + collate) and downstream stages; the
		// stage-decomposed pipeline measures each leg explicitly.
		cf, err := noDedup.Capture(ctx, w)
		if err != nil {
			return nil, err
		}
		rf, err := noDedup.Simulate(ctx, cf, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		tFull := cf.EmulateTime + cf.CollateTime + rf.Stages.Estimate + rf.Stages.Simulate

		cd, err := dedup.Capture(ctx, w)
		if err != nil {
			return nil, err
		}
		rd, err := dedup.Simulate(ctx, cd, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		tDedup := cd.EmulateTime + cd.CollateTime + rd.Stages.Estimate + rd.Stages.Simulate

		if rf.OOM || rd.OOM {
			return nil, fmt.Errorf("fig14 %s: unexpected OOM", sc.name)
		}
		reduction := 1 - tDedup.Seconds()/tFull.Seconds()
		t.Rows = append(t.Rows, []string{
			sc.name, fmt.Sprint(rf.UniqueWorkers),
			tFull.Round(time.Millisecond).String(),
			tDedup.Round(time.Millisecond).String(),
			fmt.Sprint(rd.UniqueWorkers),
			pct(reduction),
		})
	}
	t.Notes = append(t.Notes, "paper: 74-94% runtime reduction, growing with cluster size")
	return t, nil
}
