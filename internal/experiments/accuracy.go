package experiments

// Prediction-quality experiments: Fig. 7 (predicted vs actual
// iteration times across configurations), Fig. 8 (cost impact of
// configuration selection), Fig. 9 (error CDFs) and Table 3 (oracle
// vs end-to-end error breakdown).

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"maya/internal/baselines"
	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/prand"
	"maya/internal/search"
)

func init() {
	register("fig7", fig7)
	register("fig8", fig8)
	register("fig9", fig9)
	register("table3", table3)
}

// setupSpec is one (model, cluster) evaluation scenario. Global batch
// sizes are scaled down from the paper's (256/512) to keep sweep
// wall-clock tractable; the comparison shape is unaffected.
type setupSpec struct {
	name        string
	model       models.Transformer
	cluster     hardware.Cluster
	globalBatch int
}

func accuracySetups() []setupSpec {
	return []setupSpec{
		{"GPT3-2.7B/8xV100", models.GPT3_2_7B(), hardware.DGXV100(1), 64},
		{"GPT3-2.7B/16xV100", models.GPT3_2_7B(), hardware.DGXV100(2), 64},
		{"GPT3-18.4B/32xH100", models.GPT3_18_4B(), hardware.DGXH100(4), 128},
		{"GPT3-18.4B/64xH100", models.GPT3_18_4B(), hardware.DGXH100(8), 128},
	}
}

// point is one evaluated configuration in a sweep.
type point struct {
	knobs  search.Knobs
	cfg    framework.MegatronConfig
	actual time.Duration
	// preds maps system name to predicted iteration time; absent
	// systems do not support the configuration.
	preds map[string]time.Duration
}

const mayaName = "Maya"

// sweep evaluates up to maxConfigs valid non-OOM configurations for a
// setup: actual deployment time plus every system's prediction.
func (e *Env) sweep(ctx context.Context, setup setupSpec, maxConfigs int) ([]point, error) {
	key := fmt.Sprintf("sweep/%s/%d", setup.name, maxConfigs)
	v, err := e.memo(key, func() (any, error) {
		pipe, err := e.Predictor(ctx, setup.cluster, estimator.ProfileLLM)
		if err != nil {
			return nil, err
		}
		oracle := e.Oracle(setup.cluster)
		problem := search.Problem{Model: setup.model, Cluster: setup.cluster, GlobalBatch: setup.globalBatch}

		// Candidate order: plain TP/PP points first (every baseline
		// supports those, so the comparison has common ground), then a
		// deterministically shuffled walk of the full space.
		all := search.MegatronSpace().Enumerate()
		rng := prand.New(prand.Hash64("sweep", setup.name))
		var candidates []search.Knobs
		for _, k := range all {
			if !k.ActRecompute && !k.SeqParallel && !k.DistOptimizer &&
				k.VirtualStages == 1 && (k.PP > 1 || k.MicroMult == 1) {
				candidates = append(candidates, k)
			}
		}
		plain := len(candidates)
		for _, pi := range rng.Perm(len(all)) {
			candidates = append(candidates, all[pi])
		}

		var pts []point
		plainKept := 0
		flops := setup.model.TrainFLOPsPerIter(setup.globalBatch)
		sys := baselines.All()
		for ci, knobs := range candidates {
			if len(pts) >= maxConfigs {
				break
			}
			if ci < plain && plainKept >= maxConfigs/3 {
				continue // keep room for the richer knob combinations
			}
			cfg, ok := problem.Build(knobs)
			if !ok {
				continue
			}
			if seen(pts, knobs) {
				continue
			}
			// Capture once; prediction and ground-truth measurement
			// both simulate from the same artifact, halving emulation
			// cost across the sweep.
			cap, err := pipe.Capture(ctx, m(cfg))
			if err != nil {
				return nil, err
			}
			if cap.OOM {
				continue
			}
			pred, err := pipe.Simulate(ctx, cap, flops, hardware.BF16)
			if err != nil {
				return nil, err
			}
			actual, err := pipe.Measure(ctx, cap, oracle, flops, hardware.BF16)
			if err != nil {
				return nil, err
			}
			p := point{
				knobs:  knobs,
				cfg:    cfg,
				actual: actual.IterTime,
				preds:  map[string]time.Duration{mayaName: pred.IterTime},
			}
			for _, s := range sys {
				if t, ok := s.Predict(cfg, setup.cluster); ok {
					p.preds[s.Name()] = t
				}
			}
			if ci < plain {
				plainKept++
			}
			pts = append(pts, p)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].actual < pts[j].actual })
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]point), nil
}

func seen(pts []point, k search.Knobs) bool {
	for _, p := range pts {
		if p.knobs == k {
			return true
		}
	}
	return false
}

// m wraps a validated config into the workload, panicking on the
// impossible (configs here already passed Build).
func m(cfg framework.MegatronConfig) *framework.Megatron {
	w, err := framework.NewMegatron(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: building validated config: %v", err))
	}
	return w
}

func systemOrder() []string {
	return []string{mayaName, "Proteus", "Calculon", "AMPeD"}
}

func fig7(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Predicted vs actual iteration time across configurations",
		Header: []string{"setup", "cfg", "recipe", "actual", "Maya", "Proteus", "Calculon", "AMPeD"},
	}
	n := e.Scale.pick(14, 48)
	for _, setup := range accuracySetups() {
		pts, err := e.sweep(ctx, setup, n)
		if err != nil {
			return nil, err
		}
		for i, p := range pts {
			row := []string{setup.name, fmt.Sprintf("%d", i), p.knobs.String(), dur2s(p.actual)}
			for _, sysName := range systemOrder() {
				if pt, ok := p.preds[sysName]; ok {
					row = append(row, dur2s(pt))
				} else {
					row = append(row, "unsupported")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, summaryRow(setup.name, pts))
	}
	t.Notes = append(t.Notes,
		"configs ranked by measured (actual) iteration time, as in the paper",
		"Calculon/AMPeD report unsupported on Volta (no bf16 model), matching the paper's omission")
	return t, nil
}

func summaryRow(name string, pts []point) []string {
	row := []string{name, "-", "MEAN ABS ERR", "-"}
	for _, sysName := range systemOrder() {
		var sum float64
		var n int
		for _, p := range pts {
			if pred, ok := p.preds[sysName]; ok {
				sum += relErr(pred, p.actual)
				n++
			}
		}
		if n == 0 {
			row = append(row, "n/a")
			continue
		}
		row = append(row, pct(sum/float64(n)))
	}
	return row
}

func relErr(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return math.Abs(float64(a-b)) / float64(b)
}

func fig8(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Cost of each system's selected configuration, normalized to optimal",
		Header: []string{"setup", "system", "selected recipe", "actual iter", "normalized cost"},
	}
	n := e.Scale.pick(14, 48)
	for _, setup := range accuracySetups() {
		pts, err := e.sweep(ctx, setup, n)
		if err != nil {
			return nil, err
		}
		if len(pts) == 0 {
			continue
		}
		optimal := pts[0].actual // pts sorted by actual
		t.Rows = append(t.Rows, []string{setup.name, "Optimal", pts[0].knobs.String(), dur2s(optimal), "1.00"})
		// Argmin ties break on recipe order, not actual-time order —
		// a system must not benefit from knowing which config is
		// really fastest.
		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return pts[order[a]].knobs.String() < pts[order[b]].knobs.String()
		})
		for _, sysName := range systemOrder() {
			best := -1
			for _, i := range order {
				pred, ok := pts[i].preds[sysName]
				if !ok {
					continue
				}
				if best < 0 || pred < pts[best].preds[sysName] {
					best = i
				}
			}
			if best < 0 {
				t.Rows = append(t.Rows, []string{setup.name, sysName, "unsupported", "-", "-"})
				continue
			}
			ratio := float64(pts[best].actual) / float64(optimal)
			t.Rows = append(t.Rows, []string{
				setup.name, sysName, pts[best].knobs.String(),
				dur2s(pts[best].actual), fmt.Sprintf("%.2f (+%.0f%%)", ratio, (ratio-1)*100),
			})
		}
	}
	t.Notes = append(t.Notes, "each system picks argmin over its own predictions; cost measured on actual deployment")
	return t, nil
}

func fig9(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "CDF of absolute prediction error",
		Header: []string{"setup", "system", "<1%", "<5%", "<10%", "<25%", "median", "p90"},
	}
	n := e.Scale.pick(14, 48)
	for _, setup := range accuracySetups() {
		pts, err := e.sweep(ctx, setup, n)
		if err != nil {
			return nil, err
		}
		for _, sysName := range systemOrder() {
			var errs []float64
			for _, p := range pts {
				if pred, ok := p.preds[sysName]; ok {
					errs = append(errs, relErr(pred, p.actual))
				}
			}
			if len(errs) == 0 {
				t.Rows = append(t.Rows, []string{setup.name, sysName, "-", "-", "-", "-", "-", "-"})
				continue
			}
			sort.Float64s(errs)
			frac := func(thr float64) string {
				n := sort.SearchFloat64s(errs, thr)
				return pct(float64(n) / float64(len(errs)))
			}
			t.Rows = append(t.Rows, []string{
				setup.name, sysName,
				frac(0.01), frac(0.05), frac(0.10), frac(0.25),
				pct(quantile(errs, 0.5)), pct(quantile(errs, 0.9)),
			})
		}
	}
	return t, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// table3 reproduces the oracle-vs-E2E error breakdown on V100.
func table3(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Error breakdown: oracle kernel times vs end-to-end (V100)",
		Header: []string{"model", "gpus", "BS", "TP", "PP", "GA", "oracle err", "e2e err"},
	}
	type row struct {
		model          models.Transformer
		gpus           int
		bs, tp, pp, ga int
	}
	rows := []row{
		{models.GPT3_1_3B(), 8, 16, 1, 2, 2},
		{models.GPT3_1_3B(), 8, 16, 2, 1, 2},
		{models.GPT3_1_3B(), 8, 16, 2, 2, 2},
		{models.GPT3_1_3B(), 8, 16, 2, 4, 2},
		{models.GPT3_1_3B(), 8, 16, 4, 2, 2},
		{models.GPT3_2_7B(), 8, 16, 1, 2, 2},
		{models.GPT3_2_7B(), 8, 16, 2, 1, 2},
		{models.GPT3_2_7B(), 8, 8, 2, 2, 2},
		{models.GPT3_2_7B(), 8, 8, 2, 4, 2},
		{models.GPT3_2_7B(), 8, 8, 4, 2, 2},
		{models.Llama2_7B(), 32, 16, 2, 8, 2},
		{models.Llama2_7B(), 32, 8, 2, 8, 4},
		{models.Llama2_7B(), 32, 16, 4, 4, 2},
		{models.Llama2_7B(), 32, 8, 8, 2, 2},
	}
	for _, r := range rows {
		cluster := hardware.DGXV100(r.gpus / 8)
		pipe, err := e.Predictor(ctx, cluster, estimator.ProfileLLM)
		if err != nil {
			return nil, err
		}
		oracle := e.Oracle(cluster)
		oraclePipe := &core.Pipeline{
			Cluster: cluster, Suite: pipe.Suite,
			Opts: core.Options{SelectiveLaunch: true, Oracle: oracle},
		}
		cfg := framework.MegatronConfig{
			Model: r.model, NGPUs: r.gpus, GlobalBatch: r.bs,
			TP: r.tp, PP: r.pp, MicroBatches: r.ga * r.pp,
		}
		if cfg.Validate() != nil || cfg.MicroBatchSize() < 1 {
			cfg.MicroBatches = r.ga
		}
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 row %+v: %w", r, err)
		}
		// One capture feeds all three columns: ground-truth
		// measurement, learned end-to-end prediction, and oracle
		// prediction — the oracle-vs-learned comparison never
		// re-emulates.
		cap, err := pipe.Capture(ctx, w)
		if err != nil {
			return nil, err
		}
		actual, err := pipe.Measure(ctx, cap, oracle, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		e2e, err := pipe.Simulate(ctx, cap, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		orc, err := oraclePipe.Simulate(ctx, cap, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		if actual.OOM {
			t.Rows = append(t.Rows, []string{r.model.Name, fmt.Sprint(r.gpus), fmt.Sprint(r.bs),
				fmt.Sprint(r.tp), fmt.Sprint(r.pp), fmt.Sprint(r.ga), "OOM", "OOM"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.model.Name, fmt.Sprint(r.gpus), fmt.Sprint(r.bs),
			fmt.Sprint(r.tp), fmt.Sprint(r.pp), fmt.Sprint(r.ga),
			pct(relErr(orc.IterTime, actual.IterTime)),
			pct(relErr(e2e.IterTime, actual.IterTime)),
		})
	}
	t.Notes = append(t.Notes, "oracle = Maya with ground-truth kernel times: isolates emulation+simulation error from estimator error")
	return t, nil
}
