package experiments

// fig17: per-worker stall attribution over a pipeline-parallel sweep.
// Not a figure of the source paper — it exercises the simulator's
// Breakdown observer the way detailed GPU simulators use per-event
// timelines. At fixed parallelism the pipeline fill/drain cost
// scales as (pp-1)/m, and in a trace-replay world it surfaces as
// collective straggler wait: a stage parked at a P2P recv while the
// activation is still being produced upstream. Growing the
// microbatch count must shrink that share — which the attribution
// shows directly, without eyeballing a timeline.

import (
	"context"
	"fmt"
	"time"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func init() {
	register("fig17", fig17)
}

func fig17(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "Where workers wait: stall attribution vs microbatch count (GPT-3 1.3B, tp2/pp2)",
		Header: []string{"microbatches", "iter time", "bubble", "coll-wait", "event-wait", "host-bound", "busy"},
	}
	cluster := hardware.DGXV100(1)
	base, err := e.Predictor(ctx, cluster, estimator.ProfileLLM)
	if err != nil {
		return nil, err
	}
	// Same suite, breakdown enabled: the observer is the only delta.
	pipe := &core.Pipeline{
		Cluster: base.Cluster, Suite: base.Suite,
		Opts: core.Options{SelectiveLaunch: true, Breakdown: true},
	}
	micros := []int{2, 4, 8}
	if e.Scale == Quick {
		micros = []int{2, 8}
	}
	for _, mb := range micros {
		w, err := framework.NewMegatron(framework.MegatronConfig{
			Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16,
			TP: 2, PP: 2, MicroBatches: mb,
		})
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Predict(ctx, w, 0, hardware.BF16)
		if err != nil {
			return nil, err
		}
		if rep.OOM {
			return nil, fmt.Errorf("fig17 mb=%d: unexpected OOM", mb)
		}
		if rep.Stalls == nil {
			return nil, fmt.Errorf("fig17 mb=%d: breakdown missing from report", mb)
		}
		// Shares of total worker-time: idle categories plus busy sum
		// to 1 across the fleet.
		tot := rep.Stalls.Total()
		span := tot.Span()
		if span == 0 {
			return nil, fmt.Errorf("fig17 mb=%d: zero span", mb)
		}
		frac := func(d time.Duration) string { return pct(d.Seconds() / span.Seconds()) }
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(mb), rep.IterTime.Round(time.Microsecond).String(),
			frac(tot.Bubble), frac(tot.CollectiveWait), frac(tot.EventWait),
			frac(tot.HostBound), frac(tot.Busy),
		})
	}
	t.Notes = append(t.Notes,
		"expectation: the pipeline bubble surfaces as collective (P2P) straggler wait and falls as microbatches grow ((pp-1)/m fill/drain cost)")
	return t, nil
}
