package experiments

// Table 1 (system capability matrix, asserted against the actual
// implementations) and Table 2 (per-knob resource effects, measured
// through emulation rather than asserted).

import (
	"context"
	"fmt"

	"maya/internal/baselines"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func init() {
	register("table1", table1)
	register("table2", table2)
}

// probeSupport checks whether a system accepts a config exercising
// one feature on an H100 cluster (where all baselines have dtype
// models).
func probeSupport(sys baselines.System, mutate func(*framework.MegatronConfig)) bool {
	cfg := framework.MegatronConfig{
		Model: models.GPT3_18_4B(), NGPUs: 32, GlobalBatch: 128,
		TP: 2, PP: 2, MicroBatches: 4,
	}
	mutate(&cfg)
	if err := cfg.Validate(); err != nil {
		return false
	}
	_, ok := sys.Predict(cfg, hardware.DGXH100(4))
	return ok
}

func table1(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Modeling-domain comparison (checked against the implementations)",
		Header: []string{"feature", "Maya", "Proteus", "Calculon", "AMPeD"},
	}
	features := []struct {
		name   string
		mutate func(*framework.MegatronConfig)
	}{
		{"data parallel", func(c *framework.MegatronConfig) { c.TP, c.PP = 1, 1; c.MicroBatches = 1 }},
		{"tensor parallel", func(c *framework.MegatronConfig) { c.TP = 4 }},
		{"pipeline parallel", func(c *framework.MegatronConfig) { c.PP = 4; c.MicroBatches = 8 }},
		{"sequence parallel", func(c *framework.MegatronConfig) { c.SeqParallel = true }},
		{"pipeline interleaving", func(c *framework.MegatronConfig) { c.VirtualStages = 2; c.MicroBatches = 8 }},
		{"distributed optimizer", func(c *framework.MegatronConfig) { c.DistOptimizer = true }},
		{"activation recomputation", func(c *framework.MegatronConfig) { c.ActRecompute = true }},
		{"gradient accumulation", func(c *framework.MegatronConfig) { c.TP, c.PP = 2, 1; c.MicroBatches = 8 }},
	}
	systems := baselines.All()
	for _, f := range features {
		row := []string{f.name, "yes"} // Maya's emulation is knob-agnostic
		for _, sys := range systems {
			if probeSupport(sys, f.mutate) {
				row = append(row, "yes")
			} else {
				row = append(row, "no")
			}
		}
		// Header order is Maya, Proteus, Calculon, AMPeD; baselines.All
		// returns Calculon, AMPeD, Proteus — reorder.
		row = []string{row[0], row[1], row[4], row[2], row[3]}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"transparent (no code changes)", "yes", "no", "no", "no"})
	t.Rows = append(t.Rows, []string{"workload agnostic", "yes", "yes", "no", "no"})
	return t, nil
}

func table2(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Measured effect of each knob on compute time, peak memory and network traffic",
		Header: []string{"knob", "iter time", "peak memory", "comm busy"},
	}
	cluster := hardware.DGXH100(4)
	pipe, err := e.Predictor(ctx, cluster, estimator.ProfileLLM)
	if err != nil {
		return nil, err
	}
	// The baseline must fit with headroom so every knob's effect is
	// measurable in both directions.
	base := framework.MegatronConfig{
		Model: models.GPT3_18_4B(), NGPUs: 32, GlobalBatch: 32,
		TP: 4, PP: 4, MicroBatches: 8,
	}
	measure := func(cfg framework.MegatronConfig) (iterS, mem, comm float64, err error) {
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		rep, err := pipe.Predict(ctx, w, 0, hardware.BF16)
		if err != nil {
			return 0, 0, 0, err
		}
		if rep.OOM {
			return 0, float64(rep.PeakMemBytes), 0, nil
		}
		return rep.IterTime.Seconds(), float64(rep.PeakMemBytes), rep.CommTime.Seconds(), nil
	}
	bi, bm, bc, err := measure(base)
	if err != nil {
		return nil, err
	}
	if bi == 0 {
		return nil, fmt.Errorf("table2: baseline %s does not fit (peak %.1f GiB)", base, bm/(1<<30))
	}
	arrow := func(delta float64) string {
		switch {
		case delta > 0.02:
			return fmt.Sprintf("up %+.0f%%", delta*100)
		case delta < -0.02:
			return fmt.Sprintf("down %+.0f%%", delta*100)
		default:
			return "~"
		}
	}
	knob := func(name string, mutate func(*framework.MegatronConfig)) error {
		cfg := base
		mutate(&cfg)
		i, m2, c2, err := measure(cfg)
		if err != nil {
			return err
		}
		if i == 0 {
			t.Rows = append(t.Rows, []string{name, "OOM", arrow(m2/bm - 1), "-"})
			return nil
		}
		t.Rows = append(t.Rows, []string{name, arrow(i/bi - 1), arrow(m2/bm - 1), arrow(c2/bc - 1)})
		return nil
	}
	steps := []struct {
		name   string
		mutate func(*framework.MegatronConfig)
	}{
		{"tensor parallel 4->8", func(c *framework.MegatronConfig) { c.TP = 8 }},
		{"pipeline parallel 4->8", func(c *framework.MegatronConfig) { c.PP = 8; c.MicroBatches = 16 }},
		{"microbatches 8->16", func(c *framework.MegatronConfig) { c.MicroBatches = 16 }},
		{"interleaving v1->v2", func(c *framework.MegatronConfig) { c.VirtualStages = 2 }},
		{"sequence parallel on", func(c *framework.MegatronConfig) { c.SeqParallel = true }},
		{"distributed optimizer on", func(c *framework.MegatronConfig) { c.DistOptimizer = true }},
		{"activation recomputation on", func(c *framework.MegatronConfig) { c.ActRecompute = true }},
	}
	for _, s := range steps {
		if err := knob(s.name, s.mutate); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("baseline: %s, iter %.2fs, peak %.1fGiB, comm %.2fs",
		base.String(), bi, bm/(1<<30), bc))
	return t, nil
}
