package experiments

// Fig. 2: sensitivity of optimal recipes to cluster size. A grid
// search per cluster size finds each deployment's best recipe by
// actual cost; the cross-deployment matrix then measures what using
// cluster i's recipe on cluster j costs relative to j's own optimum.

import (
	"context"
	"fmt"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/prand"
	"maya/internal/search"
)

func init() {
	register("fig2", fig2)
}

type crossBest struct {
	knobs search.Knobs
	iter  time.Duration
	mfu   float64
}

// crossEval measures the ACTUAL cost of a recipe on a cluster
// (deploy-and-time, like the paper's Fig. 2), returning ok=false on
// OOM or structural invalidity. Measurement is trace-driven — one
// capture, one physical replay — and since only ground truth is
// needed, no estimator suite is ever trained. Captures are used once
// and released (the sweep's evals map already deduplicates matrix
// revisits), so no trace data is retained across the experiment.
func (e *Env) crossEval(ctx context.Context, cluster hardware.Cluster, mdl models.Transformer, batch int, k search.Knobs) (crossBest, bool, error) {
	problem := search.Problem{Model: mdl, Cluster: cluster, GlobalBatch: batch}
	cfg, ok := problem.Build(k)
	if !ok {
		return crossBest{}, false, nil
	}
	w, err := framework.NewMegatron(cfg)
	if err != nil {
		return crossBest{}, false, err
	}
	pipe := e.Measurer(cluster)
	cap, err := pipe.Capture(ctx, w)
	if err != nil {
		return crossBest{}, false, err
	}
	if cap.OOM {
		return crossBest{}, false, nil
	}
	rep, err := pipe.Measure(ctx, cap, e.Oracle(cluster), mdl.TrainFLOPsPerIter(batch), hardware.BF16)
	if err != nil {
		return crossBest{}, false, err
	}
	return crossBest{knobs: k, iter: rep.IterTime, mfu: rep.MFU}, true, nil
}

func fig2(ctx context.Context, e *Env) (*Table, error) {
	mdl := models.GPT3_18_4B()
	sizes := []int{16, 32, 64, 128}
	// Global batch fixed across cluster sizes, as in the paper.
	const batch = 256

	// Candidate recipes: a deterministic sample of the space, shared
	// across cluster sizes so cross-deployment is meaningful.
	all := search.MegatronSpace().Enumerate()
	rng := prand.New(prand.Hash64("fig2"))
	perm := rng.Perm(len(all))
	budget := e.Scale.pick(28, 120)

	best := make(map[int]crossBest)
	evals := make(map[int]map[search.Knobs]crossBest)
	for _, n := range sizes {
		cluster := hardware.DGXH100(n / 8)
		evals[n] = make(map[search.Knobs]crossBest)
		found := 0
		for _, pi := range perm {
			if found >= budget {
				break
			}
			r, ok, err := e.crossEval(ctx, cluster, mdl, batch, all[pi])
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			found++
			evals[n][all[pi]] = r
			if b, have := best[n]; !have || r.iter < b.iter {
				best[n] = r
			}
		}
	}

	t := &Table{
		ID:     "fig2",
		Title:  "Optimal recipes shift with cluster size; cross-deployment cost matrix",
		Header: []string{"gpus", "optimal recipe", "iter", "MFU"},
	}
	for _, n := range sizes {
		b := best[n]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), b.knobs.String(), dur2s(b.iter), pct(b.mfu),
		})
	}

	// Cross matrix: reference config (row) deployed at other sizes
	// (column), cost normalized to the column's optimum.
	t.Rows = append(t.Rows, []string{"", "", "", ""})
	head := []string{"ref\\deploy"}
	for _, n := range sizes {
		head = append(head, fmt.Sprint(n))
	}
	t.Rows = append(t.Rows, head)
	for _, ref := range sizes {
		row := []string{fmt.Sprint(ref)}
		for _, dep := range sizes {
			r, ok := evals[dep][best[ref].knobs]
			if !ok {
				// Not in the sampled set for that size: evaluate now.
				cluster := hardware.DGXH100(dep / 8)
				var err error
				r, ok, err = e.crossEval(ctx, cluster, mdl, batch, best[ref].knobs)
				if err != nil {
					return nil, err
				}
			}
			if !ok {
				row = append(row, "OOM")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", float64(r.iter)/float64(best[dep].iter)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: recipes tuned for small clusters cost up to 1.74x when deployed at larger scale; OOM below the reference size")
	return t, nil
}
