// Package experiments regenerates every table and figure of the
// paper's evaluation from this repository's implementation. Each
// experiment is registered under the paper's artifact id ("fig7",
// "table3", ...) and renders the same rows/series the paper reports;
// DESIGN.md's experiment index maps ids to artifacts.
//
// Wall-clock budgets are controlled by the MAYA_EXP_SCALE environment
// variable: "quick" (default; suitable for `go test -bench`) evaluates
// reduced but representative sweeps, "full" widens them.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/hardware"
	"maya/internal/silicon"
	"maya/internal/workload"
)

// Scale selects experiment sweep sizes.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// ScaleFromEnv reads MAYA_EXP_SCALE.
func ScaleFromEnv() Scale {
	if strings.EqualFold(os.Getenv("MAYA_EXP_SCALE"), "full") {
		return Full
	}
	return Quick
}

// pick selects by scale.
func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, " "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, " note: %s\n", n)
	}
}

// Runner is an experiment entry point. Runners observe ctx through
// every pipeline call, so an experiment sweep can be cancelled.
type Runner func(context.Context, *Env) (*Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs lists the registered experiments, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(ctx context.Context, id string, env *Env) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(ctx, env)
}

// Env caches expensive shared state (trained suites, sweep results)
// across experiments in one process.
type Env struct {
	Scale Scale
	// Suites caches trained estimator suites. NewEnv wires the
	// process-wide default cache.
	Suites *core.SuiteCache

	mu    sync.Mutex
	memos map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewEnv builds an environment at the given scale.
func NewEnv(scale Scale) *Env {
	return &Env{Scale: scale, Suites: core.DefaultSuiteCache(), memos: make(map[string]*memoEntry)}
}

// memo runs fn once per key and caches its result. Context
// cancellations are transient, not results: an entry that failed
// with one is dropped so the next Run (with a live ctx) retries
// instead of replaying the stale cancellation forever.
func (e *Env) memo(key string, fn func() (any, error)) (any, error) {
	e.mu.Lock()
	m, ok := e.memos[key]
	if !ok {
		m = &memoEntry{}
		e.memos[key] = m
	}
	e.mu.Unlock()
	m.once.Do(func() { m.val, m.err = fn() })
	if m.err != nil && (errors.Is(m.err, context.Canceled) || errors.Is(m.err, context.DeadlineExceeded)) {
		e.mu.Lock()
		if e.memos[key] == m {
			delete(e.memos, key)
		}
		e.mu.Unlock()
	}
	return m.val, m.err
}

// Predictor returns the Maya pipeline for a cluster (cached suite).
func (e *Env) Predictor(ctx context.Context, cluster hardware.Cluster, kind estimator.ProfileKind) (*core.Pipeline, error) {
	oracle := core.DefaultOracle(cluster)
	suite, _, err := e.Suites.SuiteFor(ctx, cluster, oracle, kind)
	if err != nil {
		return nil, err
	}
	return &core.Pipeline{Cluster: cluster, Suite: suite, Opts: core.Options{SelectiveLaunch: true}}, nil
}

// Measurer returns a pipeline that only captures and measures: no
// estimator suite is trained or consulted, so experiments that need
// ground truth alone (fig2's deploy-and-time sweeps) skip training
// entirely.
func (e *Env) Measurer(cluster hardware.Cluster) *core.Pipeline {
	return &core.Pipeline{Cluster: cluster, Opts: core.Options{SelectiveLaunch: true}}
}

// CaptureOnce memoizes one capture per key, so experiments that
// evaluate the same workload several ways (predicted, oracle,
// actual; or the same recipe revisited by a cross matrix) pay
// emulation and collation once per (cluster, workload).
func (e *Env) CaptureOnce(ctx context.Context, pipe *core.Pipeline, key string, build func() (workload.Workload, error)) (*core.Capture, error) {
	v, err := e.memo("capture/"+pipe.Cluster.Name+"/"+key, func() (any, error) {
		w, err := build()
		if err != nil {
			return nil, err
		}
		return pipe.Capture(ctx, w)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Capture), nil
}

// MAPE returns the held-out per-kernel error map for a cluster.
func (e *Env) MAPE(ctx context.Context, cluster hardware.Cluster, kind estimator.ProfileKind) (map[string]float64, error) {
	oracle := core.DefaultOracle(cluster)
	_, mape, err := e.Suites.SuiteFor(ctx, cluster, oracle, kind)
	return mape, err
}

// Oracle returns the canonical silicon for a cluster.
func (e *Env) Oracle(cluster hardware.Cluster) *silicon.Oracle {
	return core.DefaultOracle(cluster)
}

func dur2s(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
