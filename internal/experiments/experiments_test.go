package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18",
		"table1", "table2", "table3", "table4", "table6", "table7", "table8",
		"table9", "table10", "netsim",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "fig99", NewEnv(Quick)); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"note text"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-column", "333333", "note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Capabilities(t *testing.T) {
	if testing.Short() {
		t.Skip("runs baseline probes")
	}
	tbl, err := Run(context.Background(), "table1", NewEnv(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// The matrix must match Table 1's key contrasts: Maya supports
	// everything; AMPeD rejects sequence parallelism.
	var seqRow []string
	for _, row := range tbl.Rows {
		if row[0] == "sequence parallel" {
			seqRow = row
		}
	}
	if seqRow == nil {
		t.Fatalf("no sequence-parallel row: %v", tbl.Rows)
	}
	if seqRow[1] != "yes" {
		t.Error("Maya must support sequence parallelism")
	}
	if seqRow[4] != "no" {
		t.Errorf("AMPeD must not support sequence parallelism: %v", seqRow)
	}
}

func TestTable4GeneralityAllRun(t *testing.T) {
	if testing.Short() {
		t.Skip("emulates the generality matrix")
	}
	tbl, err := Run(context.Background(), "table4", NewEnv(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 50 {
		t.Fatalf("only %d generality rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		status := row[len(row)-1]
		if strings.Contains(status, "FAIL") {
			t.Errorf("%s: %s", row[0], status)
		}
	}
}

func TestMemoSharesResults(t *testing.T) {
	e := NewEnv(Quick)
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := e.memo("k", func() (any, error) {
			calls++
			return 42, nil
		})
		if err != nil || v.(int) != 42 {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("memo ran %d times", calls)
	}
}
