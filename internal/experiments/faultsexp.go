package experiments

// Fig. 18: operational-fault sweep. A seeded MTBF failure process is
// walked over the simulated iteration schedule for a grid of
// checkpoint intervals: goodput falls as failures grow more frequent,
// and tighter checkpointing trades write overhead against lost work.
// Deterministic: the seeded plan makes every cell bit-identical
// across reruns. Published as BENCH_faults.json by the CI bench
// smoke.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/faults"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/workload"
)

func init() {
	register("fig18", fig18)
}

func fig18(ctx context.Context, e *Env) (*Table, error) {
	cluster := hardware.DGXV100(1)
	pipe, err := e.Predictor(ctx, cluster, estimator.ProfileLLM)
	if err != nil {
		return nil, err
	}
	// Fault scenarios address world ranks, so the capture keeps every
	// worker (no dedup). One capture serves the whole grid.
	noDedup := &core.Pipeline{Cluster: cluster, Suite: pipe.Suite, Opts: core.Options{NoDedup: true}}
	c, err := e.CaptureOnce(ctx, noDedup, "fig18-nodedup", func() (workload.Workload, error) {
		return framework.NewMegatron(framework.MegatronConfig{
			Model: models.GPT3_1_3B(), NGPUs: cluster.TotalGPUs(), GlobalBatch: 16,
			TP: 2, PP: 2, MicroBatches: 2,
		})
	})
	if err != nil {
		return nil, err
	}
	base, err := noDedup.Simulate(ctx, c, 0, hardware.BF16)
	if err != nil {
		return nil, err
	}

	iterations := e.Scale.pick(80, 400)
	mtbfs := []int{3, 10, 30} // iterations between failures, in expectation
	intervals := []int{1, 4, 16}
	if e.Scale == Full {
		mtbfs = []int{3, 10, 30, 100}
		intervals = []int{1, 2, 4, 8, 16}
	}

	t := &Table{
		ID:     "fig18",
		Title:  "Goodput under a seeded MTBF failure process vs checkpoint interval (8xV100, GPT-3 1.3B)",
		Header: []string{"MTBF (iters)", "ckpt every", "failures", "lost work", "ckpt cost", "goodput"},
	}
	for _, m := range mtbfs {
		for _, k := range intervals {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			plan := &faults.Plan{
				Seed:            1802, // one seed for the whole figure: cells differ only by the grid axes
				CheckpointEvery: k,
				CheckpointCost:  base.IterTime / 20,
				MTBF:            time.Duration(m) * base.IterTime,
				Detect:          base.IterTime / 2,
				Restore:         base.IterTime / 4,
				Iterations:      iterations,
			}
			pf := &core.Pipeline{Cluster: cluster, Suite: pipe.Suite, Opts: core.Options{NoDedup: true, Faults: plan}}
			rep, err := pf.Simulate(ctx, c, 0, hardware.BF16)
			if errors.Is(err, faults.ErrDiverged) {
				// Failures outrun recovery at this interval: the run
				// never finishes. Goodput is effectively zero — a
				// legitimate corner of the figure, not a malfunction.
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(m), fmt.Sprint(k), "-", "-", "-", "diverged",
				})
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("fig18 mtbf=%d ckpt=%d: %w", m, k, err)
			}
			rec := rep.Recovery
			if rec == nil {
				return nil, fmt.Errorf("fig18 mtbf=%d ckpt=%d: no recovery report", m, k)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(m), fmt.Sprint(k), fmt.Sprint(len(rec.Failures)),
				dur2s(rec.LostWork), dur2s(rec.CheckpointOverhead),
				fmt.Sprintf("%.3f", rec.Goodput),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d-iteration walk; detection %s, restore %s per failure", iterations, base.IterTime/2, base.IterTime/4),
		"frequent failures reward short checkpoint intervals; rare failures make the write overhead dominate",
	)
	return t, nil
}
