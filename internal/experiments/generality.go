package experiments

// Table 4 (framework/model generality) and Fig. 10 (ResNet-152 on
// 8xA40): Maya's emulation must run unmodified across DeepSpeed-style
// ZeRO stages with activation offload, FSDP, DDP and torch.compile,
// over both vision and NLP models, producing well-formed traces.

import (
	"context"
	"fmt"
	"time"

	"maya/internal/collator"
	"maya/internal/emulator"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/trace"
	"maya/internal/workload"
)

func init() {
	register("table4", table4)
	register("fig10", fig10)
}

// generalityWorkloads builds the (framework-config, model) matrix of
// Table 4.
func generalityWorkloads() ([]workload.Workload, error) {
	type combo struct {
		label    string
		strategy framework.DPStrategy
		offload  bool
		compile  bool
	}
	combos := []combo{
		{"pytorch-ddp", framework.DDP, false, false},
		{"pytorch-fsdp", framework.FSDP, false, false},
		{"pytorch-compile", framework.DDP, false, true},
		{"deepspeed-zero1", framework.ZeRO1, false, false},
		{"deepspeed-zero2", framework.ZeRO2, false, false},
		{"deepspeed-zero3", framework.ZeRO3, false, false},
		{"deepspeed-offload", framework.ZeRO2, true, false},
	}
	transformers := []models.Transformer{
		models.BERTLarge(), models.GPT3Small345M(), models.Llama2_7B(),
		models.T5Large(), models.ViTLarge(),
	}
	cnns := []models.CNN{
		models.ResNet152(), models.DenseNet201(), models.MobileNetV2(), models.VGG19(),
	}
	var out []workload.Workload
	for _, c := range combos {
		for i := range transformers {
			mdl := transformers[i]
			w, err := framework.NewDataParallel(framework.DataParallelConfig{
				Transformer: &mdl, NGPUs: 4, GlobalBatch: 8,
				Strategy: c.strategy, ActOffload: c.offload, Compile: c.compile,
			})
			if err != nil {
				return nil, fmt.Errorf("generality %s/%s: %w", c.label, mdl.Name, err)
			}
			out = append(out, w)
		}
		for i := range cnns {
			mdl := cnns[i]
			w, err := framework.NewDataParallel(framework.DataParallelConfig{
				CNN: &mdl, NGPUs: 4, GlobalBatch: 64,
				Strategy: c.strategy, ActOffload: c.offload, Compile: c.compile,
			})
			if err != nil {
				return nil, fmt.Errorf("generality %s/%s: %w", c.label, mdl.Name, err)
			}
			out = append(out, w)
		}
	}
	return out, nil
}

func table4(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "Framework/model generality: emulation produces valid traces",
		Header: []string{"workload", "ranks", "ops/rank", "kernels", "collectives", "memcpys", "peak mem", "status"},
	}
	cluster := hardware.A40Node()
	ws, err := generalityWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		em := emulator.New(emulator.Config{
			Rank: 0, World: w.World(), GPU: cluster.Node.GPU, Host: cluster.Host,
		})
		status := "ok"
		if err := w.Run(0, em); err != nil {
			status = "FAIL: " + err.Error()
		}
		tr := em.Trace()
		if tr.OOM {
			status = "oom"
		}
		if _, err := collator.Collate(ctx, []*trace.Worker{tr}, collator.Options{Validate: true}); err != nil {
			status = "collate FAIL: " + err.Error()
		}
		st := tr.Stats()
		t.Rows = append(t.Rows, []string{
			w.Name(), fmt.Sprint(w.World()), fmt.Sprint(st.Ops),
			fmt.Sprint(st.Kernels), fmt.Sprint(st.Collectives), fmt.Sprint(st.Memcpys),
			fmt.Sprintf("%.1fGiB", float64(tr.PeakBytes)/(1<<30)), status,
		})
	}
	t.Notes = append(t.Notes,
		"offload variants produce HtoD/DtoH memcpys with faithful shapes, per §7.2 Framework Generality")
	return t, nil
}

func fig10(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "ResNet-152 prediction accuracy on 8xA40 (heterogeneous links, torch.compile)",
		Header: []string{"cfg", "batch", "accum", "compile", "actual", "maya", "err"},
	}
	cluster := hardware.A40Node()
	pipe, err := e.Predictor(ctx, cluster, estimator.ProfileVision)
	if err != nil {
		return nil, err
	}
	oracle := e.Oracle(cluster)
	mdl := models.ResNet152()

	var within5, total int
	id := 0
	batches := []int{64, 128, 256, 512}
	accums := []int{1, 2, 4}
	if e.Scale == Quick {
		batches = []int{64, 256}
		accums = []int{1, 2}
	}
	for _, batch := range batches {
		for _, accum := range accums {
			for _, compile := range []bool{false, true} {
				m := mdl
				w, err := framework.NewDataParallel(framework.DataParallelConfig{
					CNN: &m, NGPUs: 8, GlobalBatch: batch, GradAccum: accum, Compile: compile,
				})
				if err != nil {
					return nil, err
				}
				flops := mdl.TrainFLOPsPerIter(batch)
				pred, err := pipe.Predict(ctx, w, flops, hardware.FP16)
				if err != nil {
					return nil, err
				}
				actual, err := pipe.MeasureActual(ctx, w, oracle, flops, hardware.FP16)
				if err != nil {
					return nil, err
				}
				if pred.OOM || actual.OOM {
					continue
				}
				errFrac := relErr(pred.IterTime, actual.IterTime)
				total++
				if errFrac < 0.05 {
					within5++
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(id), fmt.Sprint(batch), fmt.Sprint(accum), fmt.Sprint(compile),
					fmtMS(actual.IterTime), fmtMS(pred.IterTime), pct(errFrac),
				})
				id++
			}
		}
	}
	if total > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d/%d configurations within 5%% error (paper: over half)", within5, total))
	}
	return t, nil
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000)
}
