package experiments

// Hyperscale experiments (§7.4): Fig. 12 (predicted MFU and iteration
// time when scaling data parallelism to 12K GPUs) and Fig. 13 (Maya
// stack runtime when scaling to 16K GPUs). Collectives at these
// scales cannot be profiled, so the netsim (ASTRA-sim-style) model
// plugs into the estimator, and selective launch emulates only one
// rank per pipeline stage.

import (
	"context"
	"fmt"
	"time"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/netsim"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
}

// hyperscaleModel is GPT-3 145.6B, with depth reduced in quick mode
// (wall-clock only; the scaling trend is unaffected — the same
// per-layer work just repeats fewer times).
func hyperscaleModel(e *Env) models.Transformer {
	mdl := models.GPT3_145_6B()
	if e.Scale == Quick {
		mdl.Layers = 32
	}
	return mdl
}

func hyperscalePipeline(ctx context.Context, e *Env, nodes int) (*core.Pipeline, error) {
	cluster := hardware.DGXH100(nodes)
	// The estimator suite is trained once on a reference H100 cluster;
	// kernels do not depend on cluster size, collectives come from
	// netsim on the actual cluster.
	ref := hardware.DGXH100(8)
	suite, _, err := e.Suites.SuiteFor(ctx, ref, core.DefaultOracle(ref), estimator.ProfileLLM)
	if err != nil {
		return nil, err
	}
	suite = suite.WithCollectiveEstimator(netsim.New(cluster))
	return &core.Pipeline{
		Cluster: cluster,
		Suite:   suite,
		Opts:    core.Options{SelectiveLaunch: true},
	}, nil
}

func fig12(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Predicted MFU and iteration time scaling data parallelism (TP8/PP8 fixed)",
		Header: []string{"gpus", "dp", "iter time", "MFU", "comm busy", "exposed comm"},
	}
	mdl := hyperscaleModel(e)
	dps := []int{16, 32, 48, 64, 96, 192}
	if e.Scale == Quick {
		dps = []int{16, 32, 64, 192}
	}
	const globalBatch = 12288
	const microbatches = 64
	for _, dp := range dps {
		ngpus := 8 * 8 * dp
		pipe, err := hyperscalePipeline(ctx, e, ngpus/8)
		if err != nil {
			return nil, err
		}
		cfg := framework.MegatronConfig{
			Model: mdl, NGPUs: ngpus, GlobalBatch: globalBatch,
			TP: 8, PP: 8, MicroBatches: microbatches,
			DistOptimizer: true, ActRecompute: true,
		}
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Predict(ctx, w, mdl.TrainFLOPsPerIter(globalBatch), hardware.BF16)
		if err != nil {
			return nil, err
		}
		if rep.OOM {
			t.Rows = append(t.Rows, []string{fmt.Sprint(ngpus), fmt.Sprint(dp), "OOM", "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ngpus), fmt.Sprint(dp),
			dur2s(rep.IterTime), pct(rep.MFU),
			dur2s(rep.CommTime), dur2s(rep.ExposedComm),
		})
	}
	t.Notes = append(t.Notes,
		"expected sublinear scaling: iteration time drops with DP while communication overhead erodes MFU",
		"collectives modeled by the netsim (ASTRA-sim-style) plug-in; profiling at these scales is impossible")
	return t, nil
}

func fig13(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Maya stack runtime when scaling cluster size (selective launch)",
		Header: []string{"gpus", "unique workers", "emulate", "collate", "estimate", "simulate", "total"},
	}
	mdl := hyperscaleModel(e)
	scales := []int{1024, 2048, 4096, 8192, 16384}
	if e.Scale == Quick {
		scales = []int{1024, 4096, 16384}
	}
	for _, ngpus := range scales {
		pipe, err := hyperscalePipeline(ctx, e, ngpus/8)
		if err != nil {
			return nil, err
		}
		dp := ngpus / 64
		cfg := framework.MegatronConfig{
			Model: mdl, NGPUs: ngpus, GlobalBatch: 12 * dp, // batch scales with cluster
			TP: 8, PP: 8, MicroBatches: 12, DistOptimizer: true,
		}
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Predict(ctx, w, mdl.TrainFLOPsPerIter(cfg.GlobalBatch), hardware.BF16)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ngpus), fmt.Sprint(rep.UniqueWorkers),
			rep.Stages.Emulate.Round(time.Millisecond).String(),
			rep.Stages.Collate.Round(time.Millisecond).String(),
			rep.Stages.Estimate.Round(time.Millisecond).String(),
			rep.Stages.Simulate.Round(time.Millisecond).String(),
			rep.Stages.Total().Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes, "paper: 16K GPUs in ~25 minutes with 8 unique workers; runtime grows with trace size, not GPU count")
	return t, nil
}
