package experiments

// Tables 7-9: held-out per-kernel mean absolute percentage error of
// the trained runtime estimators on each architecture, plus a
// trace-coverage probe: a representative workload is captured once
// (emulate + collate only, no training) and its kernel launches are
// checked against the trained estimator set.

import (
	"context"
	"fmt"
	"sort"

	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/trace"
	"maya/internal/workload"
)

func init() {
	register("table7", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table7", hardware.DGXH100(4), estimator.ProfileLLM)
	})
	register("table8", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table8", hardware.DGXV100(2), estimator.ProfileLLM)
	})
	register("table9", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table9", hardware.A40Node(), estimator.ProfileVision)
	})
}

// coverageProbe captures a small representative workload for the
// profile kind and reports how many of its kernel launches are
// covered by trained estimators. The capture is memoized in the Env
// and shared across tables targeting the same cluster.
func coverageProbe(ctx context.Context, e *Env, cluster hardware.Cluster, kind estimator.ProfileKind, mape map[string]float64) (string, error) {
	var key string
	var build func() (workload.Workload, error)
	if kind == estimator.ProfileVision {
		key = "coverage/resnet152"
		build = func() (workload.Workload, error) {
			mdl := models.ResNet152()
			return framework.NewDataParallel(framework.DataParallelConfig{
				CNN: &mdl, NGPUs: 8, GlobalBatch: 64,
			})
		}
	} else {
		key = "coverage/gpt3-1.3b"
		build = func() (workload.Workload, error) {
			return framework.NewMegatron(framework.MegatronConfig{
				Model: models.GPT3_1_3B(), NGPUs: 8, GlobalBatch: 16,
				TP: 2, PP: 2, MicroBatches: 2,
			})
		}
	}
	cap, err := e.CaptureOnce(ctx, e.Measurer(cluster), key, build)
	if err != nil {
		return "", err
	}
	if cap.OOM {
		return "capture probe: representative workload OOMs on this cluster", nil
	}
	var launches, covered int
	names := map[string]bool{}
	for _, w := range cap.Job.Workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if op.Kind != trace.KindKernel {
				continue
			}
			launches++
			names[op.Name] = true
			if _, ok := mape[op.Name]; ok {
				covered++
			}
		}
	}
	return fmt.Sprintf("capture probe: %d/%d kernel launches (%d distinct names) of a captured %s trace have trained estimators",
		covered, launches, len(names), cap.Workload), nil
}

func kernelMAPETable(ctx context.Context, e *Env, id string, cluster hardware.Cluster, kind estimator.ProfileKind) (*Table, error) {
	mape, err := e.MAPE(ctx, cluster, kind)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Held-out per-kernel MAPE, %s estimators", cluster.Name),
		Header: []string{"kernel", "MAPE"},
	}
	names := make([]string, 0, len(mape))
	for n := range mape {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return mape[names[i]] < mape[names[j]] })
	var heavySum float64
	var heavyN int
	for _, n := range names {
		t.Rows = append(t.Rows, []string{n, pct(mape[n])})
		switch n {
		case "cublasGemmEx", "cublasSgemm_v2", "cublasSgemmStridedBatched",
			"cudnnConvolutionForward", "cudnnConvolutionBackwardData",
			"cudnnConvolutionBackwardFilter", "triton":
			heavySum += mape[n]
			heavyN++
		}
	}
	if heavyN > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"heavy-hitter kernels (GEMM/conv/triton) mean MAPE: %s — these dominate end-to-end time", pct(heavySum/float64(heavyN))))
	}
	cover, err := coverageProbe(ctx, e, cluster, kind, mape)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, cover,
		"large percentage errors concentrate in very short kernels, which do not affect end-to-end accuracy (paper's observation)")
	return t, nil
}
