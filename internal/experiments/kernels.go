package experiments

// Tables 7-9: held-out per-kernel mean absolute percentage error of
// the trained runtime estimators on each architecture.

import (
	"context"
	"fmt"
	"sort"

	"maya/internal/estimator"
	"maya/internal/hardware"
)

func init() {
	register("table7", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table7", hardware.DGXH100(4), estimator.ProfileLLM)
	})
	register("table8", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table8", hardware.DGXV100(2), estimator.ProfileLLM)
	})
	register("table9", func(ctx context.Context, e *Env) (*Table, error) {
		return kernelMAPETable(ctx, e, "table9", hardware.A40Node(), estimator.ProfileVision)
	})
}

func kernelMAPETable(ctx context.Context, e *Env, id string, cluster hardware.Cluster, kind estimator.ProfileKind) (*Table, error) {
	mape, err := e.MAPE(ctx, cluster, kind)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Held-out per-kernel MAPE, %s estimators", cluster.Name),
		Header: []string{"kernel", "MAPE"},
	}
	names := make([]string, 0, len(mape))
	for n := range mape {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return mape[names[i]] < mape[names[j]] })
	var heavySum float64
	var heavyN int
	for _, n := range names {
		t.Rows = append(t.Rows, []string{n, pct(mape[n])})
		switch n {
		case "cublasGemmEx", "cublasSgemm_v2", "cublasSgemmStridedBatched",
			"cudnnConvolutionForward", "cudnnConvolutionBackwardData",
			"cudnnConvolutionBackwardFilter", "triton":
			heavySum += mape[n]
			heavyN++
		}
	}
	if heavyN > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"heavy-hitter kernels (GEMM/conv/triton) mean MAPE: %s — these dominate end-to-end time", pct(heavySum/float64(heavyN))))
	}
	t.Notes = append(t.Notes, "large percentage errors concentrate in very short kernels, which do not affect end-to-end accuracy (paper's observation)")
	return t, nil
}
