package experiments

// Validation of the topology-aware network fabric: the hierarchical
// netsim model (per-collective algorithm selection on the declarative
// topology) versus the synthetic silicon's ground-truth collective
// times, with a flat single-fabric model as the ablation. Published
// as BENCH_netsim.json by the CI bench smoke.

import (
	"context"
	"fmt"
	"math"

	"maya/internal/hardware"
	"maya/internal/netsim"
	"maya/internal/topo"
)

func init() {
	register("netsim", netsimValidation)
}

// netsimHierBound is the published per-regime error bound of the
// hierarchical model against the collective benchmarks: the silicon's
// protocol-switch quirks wiggle truth by up to ±6%, and the model's
// algorithm selection may legitimately undercut the truth's fixed
// algorithm choice by a few percent more. The experiment fails if any
// regime's MAPE exceeds this bound.
const netsimHierBound = 0.15

// netsimGroup is one communicator shape of the validation sweep.
type netsimGroup struct {
	name  string
	ranks []int
}

func netsimValidation(ctx context.Context, e *Env) (*Table, error) {
	cluster := hardware.DGXH100(4) // 32 GPUs, 4 NVSwitch islands
	oracle := e.Oracle(cluster)
	hier := netsim.New(cluster)
	flatTopo, err := topo.ByName("flat", cluster)
	if err != nil {
		return nil, err
	}
	flat := netsim.NewWithTopology(cluster, flatTopo)

	contiguous := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	groups := []netsimGroup{
		{"intra-island (8)", contiguous(8)},
		{"cross-node pair", []int{0, 8}},
		{"one-per-node (4)", []int{0, 8, 16, 24}},
		{"world (32)", contiguous(32)},
	}
	ops := []string{
		"ncclAllReduce", "ncclAllGather", "ncclReduceScatter",
		"ncclBroadcast", "ncclAllToAll", "ncclSend",
	}
	var sizes []int64
	if e.Scale == Full {
		sizes = []int64{1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28}
	} else {
		sizes = []int64{1 << 20, 1 << 26}
	}

	t := &Table{
		ID:     "netsim",
		Title:  "Hierarchical network model vs ground-truth collectives (DGXH100 x4)",
		Header: []string{"communicator", "points", "hier MAPE", "hier max", "flat MAPE", "flat max"},
	}
	var worstMAPE float64
	for _, g := range groups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var hierSum, hierMax, flatSum, flatMax float64
		points := 0
		for _, op := range ops {
			// Send is point-to-point: only meaningful on the pair.
			if op == "ncclSend" && len(g.ranks) != 2 {
				continue
			}
			for _, b := range sizes {
				truth := oracle.CollectiveTime(op, b, g.ranks).Seconds()
				if truth <= 0 {
					continue
				}
				he := math.Abs(hier.EstimateCollective(op, b, g.ranks, len(g.ranks)).Seconds()-truth) / truth
				fe := math.Abs(flat.EstimateCollective(op, b, g.ranks, len(g.ranks)).Seconds()-truth) / truth
				hierSum += he
				flatSum += fe
				hierMax = math.Max(hierMax, he)
				flatMax = math.Max(flatMax, fe)
				points++
			}
		}
		hierMAPE := hierSum / float64(points)
		flatMAPE := flatSum / float64(points)
		worstMAPE = math.Max(worstMAPE, hierMAPE)
		t.Rows = append(t.Rows, []string{
			g.name, fmt.Sprint(points),
			pct(hierMAPE), pct(hierMax), pct(flatMAPE), pct(flatMax),
		})
		if hierMAPE > netsimHierBound {
			return nil, fmt.Errorf("experiments: netsim hierarchical model MAPE %.1f%% on %s exceeds the %.0f%% bound",
				hierMAPE*100, g.name, netsimHierBound*100)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("hierarchical model holds a %.0f%% per-regime MAPE bound (worst regime %.1f%%); truth includes the silicon's ±6%% protocol-switch quirks", netsimHierBound*100, worstMAPE*100),
		"flat ablation collapses the fabric to one level: its cross-node error is the fidelity the hierarchy buys",
	)
	return t, nil
}
