package experiments

// Configuration-search experiments: Fig. 11 (end-to-end search
// runtime and found-config quality), Fig. 15 (trial status
// breakdown), Fig. 16 (search-algorithm comparison), Table 6
// (per-stage runtime with and without optimizations) and Table 10
// (pruning-tactic coverage).

import (
	"context"
	"fmt"
	"sync"
	"time"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/search"
)

func init() {
	register("fig11", fig11)
	register("fig15", fig15)
	register("fig16", fig16)
	register("table6", table6)
	register("table10", table10)
}

func searchSetups() []setupSpec {
	return []setupSpec{
		{"GPT3-2.7B/8xV100", models.GPT3_2_7B(), hardware.DGXV100(1), 64},
		{"GPT3-2.7B/16xV100", models.GPT3_2_7B(), hardware.DGXV100(2), 64},
		{"GPT3-18.4B/32xH100", models.GPT3_18_4B(), hardware.DGXH100(4), 128},
		{"GPT3-18.4B/64xH100", models.GPT3_18_4B(), hardware.DGXH100(8), 128},
	}
}

// evaluatorFor builds the search evaluator backed by Maya's pipeline,
// with per-search stage-time accounting. ablate restores the
// simulate-everything path for capture-OOM trials (the Fig. 15
// verdict-fast-path ablation).
func (e *Env) evaluatorFor(ctx context.Context, setup setupSpec, opts core.Options, ablate bool, stages *core.StageTimings, mu *sync.Mutex) (search.Evaluator, error) {
	pipe, err := e.Predictor(ctx, setup.cluster, estimator.ProfileLLM)
	if err != nil {
		return nil, err
	}
	p := &core.Pipeline{Cluster: setup.cluster, Suite: pipe.Suite, Opts: opts}
	flops := setup.model.TrainFLOPsPerIter(setup.globalBatch)
	addStages := func(s core.StageTimings) {
		if stages == nil {
			return
		}
		mu.Lock()
		stages.Emulate += s.Emulate
		stages.Collate += s.Collate
		stages.Estimate += s.Estimate
		stages.Simulate += s.Simulate
		mu.Unlock()
	}
	return func(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (search.EvalResult, error) {
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return search.EvalResult{}, err
		}
		c, err := p.Capture(ctx, w)
		if err != nil {
			return search.EvalResult{}, err
		}
		if c.OOM && !ablate {
			// Verdict fast path: the emulator's memory accounting
			// already decided this trial; skip estimation + simulation.
			addStages(core.StageTimings{Emulate: c.EmulateTime, Collate: c.CollateTime})
			return search.EvalResult{OOM: true, PeakMem: c.PeakMemBytes, Verdict: true}, nil
		}
		rep, err := p.SimulateScratch(ctx, c, flops, hardware.BF16, nil, bound)
		if err != nil {
			return search.EvalResult{}, err
		}
		rep.Stages.Emulate, rep.Stages.Collate = c.EmulateTime, c.CollateTime
		addStages(rep.Stages)
		if rep.Truncated {
			return search.EvalResult{Truncated: true, PeakMem: rep.PeakMemBytes}, nil
		}
		return search.EvalResult{
			OOM: rep.OOM, IterTime: rep.IterTime, MFU: rep.MFU, PeakMem: rep.PeakMemBytes,
		}, nil
	}, nil
}

// searchOutcome runs (and memoizes) one CMA-ES search per setup.
func (e *Env) searchOutcome(ctx context.Context, setup setupSpec) (*search.Outcome, error) {
	v, err := e.memo("search/"+setup.name, func() (any, error) {
		eval, err := e.evaluatorFor(ctx, setup, core.Options{SelectiveLaunch: true}, false, nil, nil)
		if err != nil {
			return nil, err
		}
		return search.Run(
			ctx,
			search.Problem{Model: setup.model, Cluster: setup.cluster, GlobalBatch: setup.globalBatch},
			eval,
			search.Options{
				Algorithm: "cma",
				Budget:    e.Scale.pick(320, 2000),
				Parallel:  8,
				Seed:      7,
			})
	})
	if err != nil {
		return nil, err
	}
	return v.(*search.Outcome), nil
}

// gridOptimum finds the true predicted optimum by exhaustive grid
// (with caching and pruning, like the paper's reference run).
func (e *Env) gridOptimum(ctx context.Context, setup setupSpec) (*search.Outcome, error) {
	v, err := e.memo("grid/"+setup.name, func() (any, error) {
		eval, err := e.evaluatorFor(ctx, setup, core.Options{SelectiveLaunch: true}, false, nil, nil)
		if err != nil {
			return nil, err
		}
		return search.Run(
			ctx,
			search.Problem{Model: setup.model, Cluster: setup.cluster, GlobalBatch: setup.globalBatch},
			eval,
			search.Options{
				Algorithm:       "grid",
				Budget:          search.MegatronSpace().Size(),
				Parallel:        8,
				Seed:            7,
				EarlyStopWindow: -1, // grid must see everything
			})
	})
	if err != nil {
		return nil, err
	}
	return v.(*search.Outcome), nil
}

func fig11(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Configuration search: runtime and normalized cost vs grid optimum",
		Header: []string{"setup", "search time", "trials", "best recipe", "best iter", "grid-optimal iter", "norm cost"},
	}
	for _, setup := range searchSetups() {
		out, err := e.searchOutcome(ctx, setup)
		if err != nil {
			return nil, err
		}
		grid, err := e.gridOptimum(ctx, setup)
		if err != nil {
			return nil, err
		}
		norm := float64(out.Best.IterTime) / float64(grid.Best.IterTime)
		t.Rows = append(t.Rows, []string{
			setup.name,
			out.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d exec/%d total", out.Stats.Executed+out.Stats.Verdict+out.Stats.Dominated, len(out.History)),
			out.Best.Knobs.String(),
			dur2s(out.Best.IterTime),
			dur2s(grid.Best.IterTime),
			fmt.Sprintf("%.3f", norm),
		})
	}
	t.Notes = append(t.Notes, "paper: search completes under an hour per setup and lands within a few % of the grid optimum")
	return t, nil
}

func fig15(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Trial status breakdown during configuration search",
		Header: []string{"setup", "executed", "verdict", "dominated", "cached", "skipped", "invalid", "skipped frac"},
	}
	for _, setup := range searchSetups() {
		out, err := e.searchOutcome(ctx, setup)
		if err != nil {
			return nil, err
		}
		s := out.Stats
		// "Resolved" means the trial ran the pipeline in some form:
		// full execution, capture-verdict OOM, domination abort, or a
		// tactic skip. The skip fraction keeps its pre-fast-path
		// denominator (Executed then included verdicts and dominated
		// trials) so the paper comparison holds.
		resolved := s.Executed + s.Verdict + s.Dominated + s.Skipped
		frac := 0.0
		if resolved > 0 {
			frac = float64(s.Skipped) / float64(resolved)
		}
		t.Rows = append(t.Rows, []string{
			setup.name, fmt.Sprint(s.Executed), fmt.Sprint(s.Verdict), fmt.Sprint(s.Dominated),
			fmt.Sprint(s.Cached), fmt.Sprint(s.Skipped), fmt.Sprint(s.Invalid), pct(frac),
		})
	}
	t.Notes = append(t.Notes, "paper: pruning skips 20-30% of configurations")
	return t, nil
}

func fig16(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Search algorithms: best MFU vs unique valid configs sampled",
		Header: []string{"setup", "algorithm", "@25", "@50", "@100", "@200", "final MFU", "final iter"},
	}
	setups := []setupSpec{
		{"GPT3-2.7B/8xV100", models.GPT3_2_7B(), hardware.DGXV100(1), 64},
		{"GPT3-18.4B/64xH100", models.GPT3_18_4B(), hardware.DGXH100(8), 128},
	}
	algos := []string{"cma", "oneplusone", "pso", "twopointsde", "random", "grid"}
	budget := e.Scale.pick(140, 2000)
	for _, setup := range setups {
		for _, algo := range algos {
			key := fmt.Sprintf("fig16/%s/%s", setup.name, algo)
			v, err := e.memo(key, func() (any, error) {
				eval, err := e.evaluatorFor(ctx, setup, core.Options{SelectiveLaunch: true}, false, nil, nil)
				if err != nil {
					return nil, err
				}
				b := budget
				if algo == "grid" {
					b = search.MegatronSpace().Size()
				}
				return search.Run(
					ctx,
					search.Problem{Model: setup.model, Cluster: setup.cluster, GlobalBatch: setup.globalBatch},
					eval,
					search.Options{Algorithm: algo, Budget: b, Parallel: 8, Seed: 11, EarlyStopWindow: -1})
			})
			if err != nil {
				return nil, err
			}
			out := v.(*search.Outcome)
			row := []string{setup.name, algo}
			for _, at := range []int{25, 50, 100, 200} {
				row = append(row, pct(mfuAt(out, at)))
			}
			row = append(row, pct(out.Best.MFU), dur2s(out.Best.IterTime))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "paper: algorithms converge near-optimal after 200-300 unique valid configs, 60-75% better than grid")
	return t, nil
}

// mfuAt reads the best MFU once n unique valid configs were sampled.
func mfuAt(out *search.Outcome, n int) float64 {
	best := 0.0
	for _, p := range out.Trajectory {
		if p.UniqueValid > n {
			break
		}
		best = p.BestMFU
	}
	return best
}

func table6(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "Search runtime by stage, 32xH100, with and without optimizations",
		Header: []string{"variant", "emulate", "collate", "estimate", "simulate", "trials", "total search"},
	}
	setup := setupSpec{"GPT3-18.4B/32xH100", models.GPT3_18_4B(), hardware.DGXH100(4), 128}
	budget := e.Scale.pick(192, 640)

	type variant struct {
		name   string
		opts   core.Options
		ablate bool
		sopt   search.Options
	}
	variants := []variant{
		{
			name: "Maya (dedup+pruning+CMA)",
			opts: core.Options{SelectiveLaunch: true},
			sopt: search.Options{Algorithm: "cma", Budget: budget, Parallel: 8, Seed: 7},
		},
		{
			name:   "No optimizations (full emulation, grid, no pruning)",
			opts:   core.Options{NoDedup: true},
			ablate: true,
			sopt: search.Options{
				Algorithm: "grid", Budget: budget, Parallel: 8, Seed: 7,
				DisablePruning: true, EarlyStopWindow: -1, DominationSlack: -1,
			},
		},
	}
	for _, v := range variants {
		var stages core.StageTimings
		var mu sync.Mutex
		eval, err := e.evaluatorFor(ctx, setup, v.opts, v.ablate, &stages, &mu)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := search.Run(
			ctx,
			search.Problem{Model: setup.model, Cluster: setup.cluster, GlobalBatch: setup.globalBatch},
			eval, v.sopt)
		if err != nil && out == nil {
			return nil, err
		}
		// A grid prefix that finds no valid config is still a timing
		// measurement; stage costs are what this table reports.
		total := time.Since(start)
		t.Rows = append(t.Rows, []string{
			v.name,
			stages.Emulate.Round(time.Millisecond).String(),
			stages.Collate.Round(time.Millisecond).String(),
			stages.Estimate.Round(time.Millisecond).String(),
			stages.Simulate.Round(time.Millisecond).String(),
			fmt.Sprint(out.Stats.Executed + out.Stats.Verdict + out.Stats.Dominated),
			total.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes, "stage times summed across trials; paper reduces total search from >24h to 38min")
	return t, nil
}

func table10(ctx context.Context, e *Env) (*Table, error) {
	t := &Table{
		ID:     "table10",
		Title:  "Fidelity-preserving pruning tactics and their skip counts",
		Header: []string{"tactic", "skips (8xV100)", "skips (64xH100)"},
	}
	setups := []setupSpec{
		{"GPT3-2.7B/8xV100", models.GPT3_2_7B(), hardware.DGXV100(1), 64},
		{"GPT3-18.4B/64xH100", models.GPT3_18_4B(), hardware.DGXH100(8), 128},
	}
	counts := make([]map[string]int, len(setups))
	for i, setup := range setups {
		out, err := e.searchOutcome(ctx, setup)
		if err != nil {
			return nil, err
		}
		counts[i] = out.Stats.SkippedByTactic
	}
	for _, tac := range search.MegatronTactics() {
		t.Rows = append(t.Rows, []string{
			tac.Name, fmt.Sprint(counts[0][tac.Name]), fmt.Sprint(counts[1][tac.Name]),
		})
	}
	return t, nil
}
