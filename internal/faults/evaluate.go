package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"maya/internal/prand"
	"maya/internal/sim"
	"maya/internal/trace"
)

// ErrDiverged reports a walk that exhausted its restart budget:
// failures arrive faster than recovery completes, so the scenario
// never reaches its final iteration. For grid sweeps (fig18) this is
// a data point — goodput is effectively zero — not a malfunction;
// test with errors.Is.
var ErrDiverged = errors.New("faults: scenario diverged")

// Runner executes one engine run of the scenario's job with the given
// injection and observer attached (nil inj means fault-free, nil obs
// means unobserved). Evaluate calls it for the clean baseline and
// once per failure to price the wedge; the caller binds it to
// whatever engine strategy it uses (fresh, scratch-owned or pooled).
type Runner func(ctx context.Context, inj *sim.Injection, obs sim.Observer) (*sim.Report, error)

// maxRestartsDefault bounds recovery attempts when the plan doesn't.
const maxRestartsDefault = 1000

// pendingFailure is the next death from either failure source.
type pendingFailure struct {
	rank            int
	at              int64
	detect, restore int64
	fromMTBF        bool
}

// Evaluate walks the plan over the job's iteration structure and
// prices it into a RecoveryReport.
//
// The model is a renewal walk on the scenario wall clock. The
// perturbed report (the caller's straggler-injected run of the full
// trace; the plain run when the plan has no stragglers) supplies the
// iteration boundaries and per-iteration durations; iterations beyond
// the trace replay at its steady-state rate. Checkpoints commit after
// every CheckpointEvery-th iteration at CheckpointCost each. A death
// — explicit or drawn from the seeded MTBF process — costs its
// detection timeout plus a checkpoint restore, then rewinds the walk
// to the last committed iteration; the work since that commit is
// lost and redone. Each death is also injected into a real engine run
// at the trace position it interrupts, and the resulting wedge
// (which survivors stalled, from when) prices SurvivorIdle exactly
// rather than assuming the whole world idles.
//
// Everything derives from the plan's seed and simulated durations:
// two Evaluate calls with equal inputs return equal reports, bit for
// bit, regardless of engine pooling or caller concurrency.
func Evaluate(ctx context.Context, plan *Plan, job *trace.Job, perturbed *sim.Report, run Runner) (*sim.RecoveryReport, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	iterEnds := perturbed.IterEnds()
	if len(iterEnds) == 0 {
		return nil, fmt.Errorf("faults: trace has no %q marks; fault scenarios need iteration boundaries", trace.MarkIterEnd)
	}
	L := len(iterEnds)
	n := plan.Iterations
	if n == 0 {
		n = L
	}

	// Trace-time boundaries: bound[0] is setup end, bound[i] the end
	// of iteration i-1. Iterations beyond the trace replay the
	// steady-state rate.
	bound := make([]int64, L+1)
	bound[0] = setupEnd(perturbed)
	for i, e := range iterEnds {
		bound[i+1] = int64(e)
	}
	steady := int64(perturbed.IterTime())
	iterDur := func(i int) int64 {
		if i < L {
			return bound[i+1] - bound[i]
		}
		return steady
	}

	byRank := make(map[int]int, len(job.Workers))
	for _, wk := range job.Workers {
		byRank[wk.Rank] = len(byRank)
	}
	expl := plan.sortedFailures()
	for _, f := range expl {
		if _, ok := byRank[f.Rank]; !ok {
			return nil, fmt.Errorf("faults: failure targets rank %d absent from job (deduplicated capture? re-capture with dedup disabled)", f.Rank)
		}
	}

	baseInj, err := plan.Injection(job)
	if err != nil {
		return nil, err
	}
	clean := perturbed
	if baseInj != nil {
		if clean, err = run(ctx, nil, nil); err != nil {
			return nil, fmt.Errorf("faults: clean baseline: %w", err)
		}
	}
	cleanTime, err := horizonTime(clean, n)
	if err != nil {
		return nil, err
	}
	perturbedTime, err := horizonTime(perturbed, n)
	if err != nil {
		return nil, err
	}

	// Failure sources: the explicit list in death order, merged with
	// seeded Poisson arrivals. Both are consumed strictly in arrival
	// order, so the walk is a deterministic function of the plan.
	ei := 0
	rng := prand.New(plan.Seed)
	mtbf := int64(plan.MTBF)
	wall := bound[0]
	mtbfAt := int64(-1)
	gap := func() int64 {
		g := int64(-float64(mtbf) * math.Log(1-rng.Float64()))
		return max(g, 1)
	}
	if mtbf > 0 {
		mtbfAt = wall + gap()
	}
	arrival := 0
	peek := func() (pendingFailure, bool) {
		var best pendingFailure
		best.at = -1
		if ei < len(expl) {
			f := expl[ei]
			best = pendingFailure{rank: f.Rank, at: int64(f.At),
				detect: int64(f.Detect), restore: int64(f.Restore)}
		}
		if mtbfAt >= 0 && (best.at < 0 || mtbfAt < best.at) {
			h := prand.HashInts(plan.Seed, int64(arrival))
			victim := job.Workers[h%uint64(len(job.Workers))].Rank
			best = pendingFailure{rank: victim, at: mtbfAt, fromMTBF: true}
		}
		if best.at < 0 {
			return pendingFailure{}, false
		}
		if best.detect == 0 {
			best.detect = int64(plan.Detect)
		}
		if best.restore == 0 {
			best.restore = int64(plan.Restore)
		}
		return best, true
	}
	consume := func(f pendingFailure) {
		if f.fromMTBF {
			arrival++
			mtbfAt += gap()
		} else {
			ei++
		}
	}

	maxRestarts := plan.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = maxRestartsDefault
	}

	rep := &sim.RecoveryReport{
		World:           len(job.Workers),
		Iterations:      n,
		CheckpointEvery: plan.CheckpointEvery,
		CleanTime:       cleanTime,
		PerturbedTime:   perturbedTime,
	}
	committed := 0 // iterations durably checkpointed
	anchor := wall // wall time the committed state was reached
	i := 0         // next iteration to run
	rate := 1.0    // iteration-time multiplier from resizes
	world := len(job.Workers)
	attempts := 0
	resized := make([]bool, len(plan.Resizes))

	// fail rewinds the walk for a death at effAt interrupting the
	// walk with the trace position traceAt.
	fail := func(f pendingFailure, effAt, traceAt int64) error {
		attempts++
		if attempts > maxRestarts {
			return fmt.Errorf("%w: %d restarts exhausted (MTBF shorter than recovery time?)", ErrDiverged, maxRestarts)
		}
		inj := &sim.Injection{FailStop: &sim.FailStopAt{Worker: byRank[f.rank], At: traceAt}}
		if baseInj != nil {
			inj.Slowdown = baseInj.Slowdown
		}
		obs := NewObserver()
		if _, err := run(ctx, inj, obs); err != nil {
			return fmt.Errorf("faults: wedge run for rank %d at %v: %w", f.rank, time.Duration(traceAt), err)
		}
		detectEnd := traceAt + f.detect
		var idle int64
		wedged := 0
		for w := range job.Workers {
			if w == byRank[f.rank] {
				continue
			}
			if at, ok := obs.Wedged(w); ok {
				wedged++
				if detectEnd > at {
					idle += detectEnd - at
				}
			}
		}
		lost := effAt - anchor
		rep.Failures = append(rep.Failures, sim.FailureRecovery{
			Rank:          f.rank,
			At:            time.Duration(effAt),
			TraceAt:       time.Duration(traceAt),
			Detection:     time.Duration(f.detect),
			Restore:       time.Duration(f.restore),
			LostWork:      time.Duration(lost),
			SurvivorIdle:  time.Duration(idle),
			WedgedWorkers: wedged,
		})
		rep.LostWork += time.Duration(lost)
		rep.Redo += time.Duration(lost)
		rep.Detection += time.Duration(f.detect)
		rep.Restore += time.Duration(f.restore)
		rep.SurvivorIdle += time.Duration(idle)
		wall = effAt + f.detect + f.restore
		anchor = wall
		i = committed
		return nil
	}

	// traceBoundary maps completed-iteration count c to trace time,
	// clamping past-trace positions into the final trace iteration.
	traceBoundary := func(c int) int64 { return bound[min(c, L)] }

	for i < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Resizes take effect at their iteration boundary, once:
		// world changes are physical and survive rewinds.
		for ri := range plan.Resizes {
			rz := &plan.Resizes[ri]
			if resized[ri] || rz.AtIteration > i {
				continue
			}
			resized[ri] = true
			cost := int64(rz.Base)
			if rz.StateBytes > 0 {
				cost += int64(float64(rz.StateBytes) / rz.BWGBps)
			}
			rep.Resizes = append(rep.Resizes, sim.ResizeRecovery{
				AtIteration: i,
				OldWorld:    world,
				NewWorld:    rz.NewWorld,
				Reshard:     time.Duration(cost),
			})
			rep.Reshard += time.Duration(cost)
			wall += cost
			rate *= float64(world) / float64(rz.NewWorld)
			world = rz.NewWorld
		}

		d := max(int64(float64(iterDur(i))*rate), 1)
		if f, ok := peek(); ok {
			effAt := max(f.at, wall)
			if effAt < wall+d {
				// Death mid-iteration: map the interrupted fraction
				// into trace time (clamped to the last trace
				// iteration for beyond-trace replay).
				consume(f)
				ti := min(i, L-1)
				frac := float64(effAt-wall) / float64(d)
				traceAt := bound[ti] + int64(frac*float64(bound[ti+1]-bound[ti]))
				if err := fail(f, effAt, traceAt); err != nil {
					return nil, err
				}
				continue
			}
		}
		wall += d
		i++

		if plan.CheckpointEvery > 0 && i%plan.CheckpointEvery == 0 && i < n {
			c := int64(plan.CheckpointCost)
			if f, ok := peek(); ok {
				effAt := max(f.at, wall)
				if effAt < wall+c {
					// Death during the checkpoint write: the commit
					// never lands, so the rewind goes to the previous
					// checkpoint.
					consume(f)
					if err := fail(f, effAt, traceBoundary(i)); err != nil {
						return nil, err
					}
					continue
				}
			}
			wall += c
			committed = i
			anchor = wall
			rep.Checkpoints++
			rep.CheckpointOverhead += time.Duration(c)
		}
	}

	rep.TotalTime = time.Duration(wall)
	if wall > 0 {
		rep.Goodput = float64(rep.CleanTime) / float64(wall)
	}
	return rep, nil
}

// setupEnd recomputes the latest setup_end mark from a report.
func setupEnd(r *sim.Report) int64 {
	var t int64
	for _, marks := range r.Marks {
		for _, m := range marks {
			if m.Label == trace.MarkSetupEnd && int64(m.At) > t {
				t = int64(m.At)
			}
		}
	}
	return t
}

// horizonTime is the wall time for n iterations of a report's
// schedule: the trace's own boundary when n fits, extended at the
// steady-state rate beyond it.
func horizonTime(r *sim.Report, n int) (time.Duration, error) {
	ends := r.IterEnds()
	if len(ends) == 0 {
		return 0, fmt.Errorf("faults: baseline run has no %q marks", trace.MarkIterEnd)
	}
	if n <= len(ends) {
		return ends[n-1], nil
	}
	return ends[len(ends)-1] + time.Duration(n-len(ends))*r.IterTime(), nil
}
