package faults

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"maya/internal/sim"
	"maya/internal/trace"
)

// iterJob builds a 2-worker, 3-iteration job with clean timing:
// 2ms setup, then per iteration a 10ms kernel, a 1ms allreduce and a
// synced iter_end mark. Clean boundaries: setup_end at 2ms, iter ends
// at 13, 24, 35ms (11ms per iteration).
func iterJob(t *testing.T) *trace.Job {
	t.Helper()
	mk := func(rank int) *trace.Worker {
		w := &trace.Worker{Rank: rank, World: 2, Device: "test"}
		w.Append(trace.Op{Kind: trace.KindHostDelay, Dur: 2 * time.Millisecond})
		w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkSetupEnd})
		for k := range 3 {
			w.Append(trace.Op{Kind: trace.KindKernel, Name: "k", Stream: 0, Dur: 10 * time.Millisecond})
			w.Append(trace.Op{
				Kind: trace.KindCollective, Name: "ncclAllReduce", Stream: 0, Dur: time.Millisecond,
				Coll: &trace.Collective{Op: "ncclAllReduce", CommID: 0xc0, Seq: k, NRanks: 2, Rank: rank, Peer: -1},
			})
			w.Append(trace.Op{Kind: trace.KindDeviceSync})
			w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd})
		}
		return w
	}
	j, err := trace.NewJob([]*trace.Worker{mk(0), mk(1)})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	return j
}

// runner binds Evaluate's engine calls to a pooled run of j.
func runner(j *trace.Job) Runner {
	return func(ctx context.Context, inj *sim.Injection, obs sim.Observer) (*sim.Report, error) {
		return sim.RunPooled(ctx, j, sim.Options{Faults: inj, Observer: obs})
	}
}

// evalFixture runs the perturbed baseline for plan and evaluates it.
func evalFixture(t *testing.T, j *trace.Job, plan *Plan) *sim.RecoveryReport {
	t.Helper()
	ctx := context.Background()
	run := runner(j)
	inj, err := plan.Injection(j)
	if err != nil {
		t.Fatalf("Injection: %v", err)
	}
	perturbed, err := run(ctx, inj, nil)
	if err != nil {
		t.Fatalf("perturbed run: %v", err)
	}
	rep, err := Evaluate(ctx, plan, j, perturbed, run)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return rep
}

func TestEvaluateFaultFree(t *testing.T) {
	j := iterJob(t)
	rep := evalFixture(t, j, &Plan{})
	if got, want := rep.CleanTime, 35*time.Millisecond; got != want {
		t.Fatalf("clean time = %v, want %v", got, want)
	}
	if got, want := rep.TotalTime, 35*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
	if rep.Goodput != 1.0 {
		t.Fatalf("goodput = %v, want 1.0", rep.Goodput)
	}
	if rep.Iterations != 3 || rep.World != 2 || rep.Checkpoints != 0 {
		t.Fatalf("unexpected shape: %+v", rep)
	}
}

func TestEvaluateExplicitFailure(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{
		CheckpointEvery: 1,
		CheckpointCost:  time.Millisecond,
		Detect:          10 * time.Millisecond,
		Restore:         2 * time.Millisecond,
		Failures:        []FailStop{{Rank: 1, At: 30 * time.Millisecond}},
	}
	rep := evalFixture(t, j, plan)

	// Hand walk: setup to 2ms; iter 0 to 13ms, checkpoint to 14ms;
	// iter 1 to 25ms, checkpoint to 26ms; death at 30ms, 4/11 into
	// iteration 2 → trace position 24 + 4 = 28ms; lost work 4ms;
	// detection 10ms + restore 2ms → resume at 42ms; iteration 2
	// redone clean → 53ms. No checkpoint after the final iteration.
	if got, want := rep.TotalTime, 53*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(rep.Failures))
	}
	f := rep.Failures[0]
	want := sim.FailureRecovery{
		Rank: 1, At: 30 * time.Millisecond, TraceAt: 28 * time.Millisecond,
		Detection: 10 * time.Millisecond, Restore: 2 * time.Millisecond,
		LostWork: 4 * time.Millisecond,
		// Rank 1's in-flight 10ms kernel (24→34ms) completes after
		// death at 28ms; rank 0 wedges joining the iteration-2
		// allreduce at 34ms and idles until detection at 38ms.
		SurvivorIdle: 4 * time.Millisecond, WedgedWorkers: 1,
	}
	if f != want {
		t.Fatalf("failure record = %+v, want %+v", f, want)
	}
	if got, want := rep.Checkpoints, 2; got != want {
		t.Fatalf("checkpoints = %d, want %d", got, want)
	}
	if got, want := rep.CheckpointOverhead, 2*time.Millisecond; got != want {
		t.Fatalf("checkpoint overhead = %v, want %v", got, want)
	}
	if got, want := rep.Goodput, float64(35)/53; got != want {
		t.Fatalf("goodput = %v, want %v", got, want)
	}
}

func TestEvaluateNoCheckpointLosesEverything(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{Failures: []FailStop{{Rank: 0, At: 30 * time.Millisecond}}}
	rep := evalFixture(t, j, plan)
	// No checkpoints: the rewind goes to setup. Lost work is the
	// 28ms since setup ended; the walk replays all 3 iterations.
	if got, want := rep.LostWork, 28*time.Millisecond; got != want {
		t.Fatalf("lost work = %v, want %v", got, want)
	}
	if got, want := rep.TotalTime, 63*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
}

func TestEvaluateStragglerGoodput(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{Stragglers: []Straggler{{Ranks: []int{1}, Factor: 2}}}
	rep := evalFixture(t, j, plan)
	// Rank 1's kernels run 2x slow (20ms): each iteration takes 21ms
	// and the whole run 2 + 3*21 = 65ms against a 35ms clean
	// baseline.
	if got, want := rep.CleanTime, 35*time.Millisecond; got != want {
		t.Fatalf("clean time = %v, want %v", got, want)
	}
	if got, want := rep.PerturbedTime, 65*time.Millisecond; got != want {
		t.Fatalf("perturbed time = %v, want %v", got, want)
	}
	if got, want := rep.TotalTime, 65*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
	if got, want := rep.Goodput, float64(35)/65; got != want {
		t.Fatalf("goodput = %v, want %v", got, want)
	}
}

func TestEvaluateResize(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{Resizes: []Resize{{AtIteration: 1, NewWorld: 1, Base: 3 * time.Millisecond}}}
	rep := evalFixture(t, j, plan)
	// Iteration 0 at full speed (11ms), then a 3ms reshard pause and
	// 2x weak-scaling slowdown for iterations 1-2: 2 + 11 + 3 + 22 +
	// 22 = 60ms.
	if got, want := rep.TotalTime, 60*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
	if got, want := rep.Reshard, 3*time.Millisecond; got != want {
		t.Fatalf("reshard = %v, want %v", got, want)
	}
	wantRz := sim.ResizeRecovery{AtIteration: 1, OldWorld: 2, NewWorld: 1, Reshard: 3 * time.Millisecond}
	if len(rep.Resizes) != 1 || rep.Resizes[0] != wantRz {
		t.Fatalf("resizes = %+v, want [%+v]", rep.Resizes, wantRz)
	}
}

func TestEvaluateResizeBandwidthCost(t *testing.T) {
	j := iterJob(t)
	// 4 GiB of state over 4 GB/s: 4<<30 / 4 = 1<<30 ns on top of the
	// 1ms base.
	plan := &Plan{Resizes: []Resize{{AtIteration: 0, NewWorld: 2, StateBytes: 4 << 30, BWGBps: 4, Base: time.Millisecond}}}
	rep := evalFixture(t, j, plan)
	if got, want := rep.Reshard, time.Millisecond+time.Duration(1<<30); got != want {
		t.Fatalf("reshard = %v, want %v", got, want)
	}
}

func TestEvaluateIterationsExtendPastTrace(t *testing.T) {
	j := iterJob(t)
	rep := evalFixture(t, j, &Plan{Iterations: 5})
	// Steady-state iteration time is 11ms; two extra iterations
	// extend both the clean horizon and the walk identically.
	if got, want := rep.CleanTime, 57*time.Millisecond; got != want {
		t.Fatalf("clean time = %v, want %v", got, want)
	}
	if got, want := rep.TotalTime, 57*time.Millisecond; got != want {
		t.Fatalf("total time = %v, want %v", got, want)
	}
	if rep.Goodput != 1.0 {
		t.Fatalf("goodput = %v, want 1.0", rep.Goodput)
	}
}

func TestEvaluateMTBFDeterministic(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{
		Seed:            42,
		MTBF:            40 * time.Millisecond,
		CheckpointEvery: 1,
		CheckpointCost:  500 * time.Microsecond,
		Detect:          time.Millisecond,
		Restore:         time.Millisecond,
		Iterations:      40,
	}
	want := evalFixture(t, j, plan)
	if len(want.Failures) == 0 {
		t.Fatal("MTBF scenario drew no failures; pick a smaller MTBF")
	}
	// Rerun several times, including a fresh-engine runner: reports
	// must be bit-identical.
	fresh := func(ctx context.Context, inj *sim.Injection, obs sim.Observer) (*sim.Report, error) {
		return sim.Run(ctx, j, sim.Options{Faults: inj, Observer: obs})
	}
	ctx := context.Background()
	perturbed, err := fresh(ctx, nil, nil)
	if err != nil {
		t.Fatalf("perturbed: %v", err)
	}
	for range 3 {
		got := evalFixture(t, j, plan)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rerun diverged:\n got %+v\nwant %+v", got, want)
		}
		gotFresh, err := Evaluate(ctx, plan, j, perturbed, fresh)
		if err != nil {
			t.Fatalf("Evaluate fresh: %v", err)
		}
		if !reflect.DeepEqual(gotFresh, want) {
			t.Fatalf("fresh-engine run diverged:\n got %+v\nwant %+v", gotFresh, want)
		}
	}
}

func TestEvaluateConcurrentRace(t *testing.T) {
	j := iterJob(t)
	plan := &Plan{
		Seed: 7, MTBF: 60 * time.Millisecond, CheckpointEvery: 2,
		Detect: time.Millisecond, Restore: time.Millisecond, Iterations: 20,
		Stragglers: []Straggler{{EveryNth: 2, Factor: 1.5}},
	}
	want := evalFixture(t, j, plan)
	const workers = 8
	type out struct {
		rep *sim.RecoveryReport
		ok  bool
	}
	ch := make(chan out, workers)
	for range workers {
		go func() {
			defer func() { recover() }()
			rep := evalFixture(t, j, plan)
			ch <- out{rep, true}
		}()
	}
	for range workers {
		o := <-ch
		if !o.ok || !reflect.DeepEqual(o.rep, want) {
			t.Fatalf("concurrent evaluation diverged")
		}
	}
}

func TestEvaluateNonConvergence(t *testing.T) {
	j := iterJob(t)
	// A failure storm denser than recovery can outrun: every 1ms a
	// death, no checkpoints, so the walk never completes iteration 0.
	plan := &Plan{Seed: 1, MTBF: time.Millisecond, MaxRestarts: 10, Iterations: 3}
	run := runner(j)
	perturbed, err := run(context.Background(), nil, nil)
	if err != nil {
		t.Fatalf("perturbed: %v", err)
	}
	_, err = Evaluate(context.Background(), plan, j, perturbed, run)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestEvaluateMissingRank(t *testing.T) {
	// A single-worker job standing in for a deduplicated capture:
	// rank 1 is absent, so plans that target it must fail loudly.
	w := &trace.Worker{Rank: 0, World: 2, Device: "test"}
	w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkSetupEnd})
	w.Append(trace.Op{Kind: trace.KindKernel, Name: "k", Dur: time.Millisecond})
	w.Append(trace.Op{Kind: trace.KindDeviceSync})
	w.Append(trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd})
	j, err := trace.NewJob([]*trace.Worker{w})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if _, err := (&Plan{Stragglers: []Straggler{{Ranks: []int{1}, Factor: 2}}}).Injection(j); err == nil {
		t.Fatal("Injection accepted absent rank")
	}
	run := runner(j)
	perturbed, err := run(context.Background(), nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	plan := &Plan{Failures: []FailStop{{Rank: 1, At: time.Millisecond}}}
	if _, err := Evaluate(context.Background(), plan, j, perturbed, run); err == nil {
		t.Fatal("Evaluate accepted absent failure rank")
	}
}

func TestEvaluateNoIterMarks(t *testing.T) {
	w := &trace.Worker{Rank: 0, World: 1, Device: "test"}
	w.Append(trace.Op{Kind: trace.KindKernel, Name: "k", Dur: time.Millisecond})
	w.Append(trace.Op{Kind: trace.KindDeviceSync})
	j, err := trace.NewJob([]*trace.Worker{w})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	run := runner(j)
	perturbed, err := run(context.Background(), nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := Evaluate(context.Background(), &Plan{}, j, perturbed, run); err == nil {
		t.Fatal("Evaluate accepted a trace without iteration marks")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := &Plan{
		Seed: 9, CheckpointEvery: 4, CheckpointCost: 30 * time.Second,
		MTBF: 6 * time.Hour, Detect: 30 * time.Second, Restore: 2 * time.Minute,
		Iterations: 500,
		Stragglers: []Straggler{{Ranks: []int{3}, Factor: 1.4, Until: time.Minute}},
		Failures:   []FailStop{{Rank: 2, At: time.Hour}},
		Resizes:    []Resize{{AtIteration: 100, NewWorld: 6, StateBytes: 1 << 30, BWGBps: 25}},
	}
	var buf strings.Builder
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ParsePlan(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if !reflect.DeepEqual(got, plan) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, plan)
	}

	if _, err := ParsePlan(strings.NewReader(`{"mtfb_ns": 1}`)); err == nil {
		t.Fatal("ParsePlan accepted unknown field")
	}
	if _, err := ParsePlan(strings.NewReader(`{"stragglers":[{"factor":0}]}`)); err == nil {
		t.Fatal("ParsePlan accepted zero straggler factor")
	}
	if _, err := ParsePlan(strings.NewReader(`{"resizes":[{"at_iteration":0,"new_world":0}]}`)); err == nil {
		t.Fatal("ParsePlan accepted zero world resize")
	}
}

func TestStragglerSelectors(t *testing.T) {
	s := Straggler{Ranks: []int{5}, EveryNth: 4, Factor: 2}
	for rank, want := range map[int]bool{0: true, 4: true, 5: true, 3: false, 6: false} {
		if got := s.matches(rank); got != want {
			t.Fatalf("matches(%d) = %v, want %v", rank, got, want)
		}
	}
	all := Straggler{Factor: 2}
	if !all.matches(0) || !all.matches(17) {
		t.Fatal("selector-free straggler must match every rank")
	}
}
