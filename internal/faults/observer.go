package faults

import (
	"maya/internal/sim"
	"maya/internal/trace"
)

// Observer watches a fail-stop engine run and records, per worker,
// the collective stall that never resolved — the instant the worker
// wedged on the dead rank. Evaluate prices survivor idle time from
// these frontiers. One Observer serves one run; it is not safe for
// concurrent runs (each engine run gets its own).
type Observer struct {
	// open maps (worker, stream) to the begin time of an unresolved
	// collective stall. A stream holds at most one collective stall
	// at a time, so matching is exact.
	open map[stallKey]int64
}

type stallKey struct {
	w      int
	stream int64
}

// NewObserver returns an Observer ready to attach to one run.
func NewObserver() *Observer {
	return &Observer{open: make(map[stallKey]int64)}
}

// Wedged returns the earliest unresolved collective-stall begin for
// worker w, if any. The minimum over streams is order-independent,
// so the result is deterministic despite map storage.
func (o *Observer) Wedged(w int) (int64, bool) {
	var at int64
	found := false
	for k, t := range o.open {
		if k.w != w {
			continue
		}
		if !found || t < at {
			at, found = t, true
		}
	}
	return at, found
}

func (o *Observer) StallBegin(w int, stream int64, kind sim.StallKind, at int64) {
	if kind == sim.StallCollective {
		o.open[stallKey{w, stream}] = at
	}
}

func (o *Observer) StallEnd(w int, stream int64, kind sim.StallKind, begin, end int64) {
	if kind == sim.StallCollective {
		delete(o.open, stallKey{w, stream})
	}
}

func (o *Observer) OpStart(w int, stream int64, op *trace.Op, start, end int64) {}
func (o *Observer) OpEnd(w int, stream int64, op *trace.Op, start, end int64)   {}
func (o *Observer) CollectiveFired(w int, stream int64, op *trace.Op, key trace.CollKey, start, end int64) {
}
func (o *Observer) HostDelay(w int, start, end int64)  {}
func (o *Observer) Mark(w int, label string, at int64) {}
