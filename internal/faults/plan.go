// Package faults is Maya's deterministic fault-scenario layer: a
// serializable, seeded Plan describing stragglers, fail-stop deaths
// and elastic resizes, compiled onto the typed-event engine
// (internal/sim) and evaluated into a sim.RecoveryReport.
//
// The split of responsibilities follows the engine's grain. What the
// engine can express exactly — a device computing slowly, a rank
// vanishing mid-trace and wedging its collective partners — is
// injected as a sim.Injection and measured event-by-event. What spans
// many trace replays — detection timeouts, checkpoint rewinds,
// replayed iterations, re-shard pauses — is walked analytically over
// the trace's iteration boundaries by Evaluate, using engine runs to
// price each failure's wedge. Every decision derives from the plan's
// seed and simulated time, never from the host clock or map order, so
// a scenario's report is bit-identical across reruns, pooled engines
// and any caller concurrency.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"maya/internal/sim"
	"maya/internal/trace"
)

// Straggler selects ranks and slows their device compute by a
// multiplicative factor, optionally only inside a trace-time window.
// Selection: the named Ranks, plus every rank r with r % EveryNth ==
// 0 when EveryNth > 0; with neither selector, every rank straggles.
type Straggler struct {
	Ranks    []int         `json:"ranks,omitempty"`
	EveryNth int           `json:"every_nth,omitempty"`
	Factor   float64       `json:"factor"`
	From     time.Duration `json:"from_ns,omitempty"`
	Until    time.Duration `json:"until_ns,omitempty"`
}

// FailStop schedules one rank's death at a scenario wall-clock time.
// Detect and Restore override the plan's defaults when positive.
type FailStop struct {
	Rank    int           `json:"rank"`
	At      time.Duration `json:"at_ns"`
	Detect  time.Duration `json:"detect_ns,omitempty"`
	Restore time.Duration `json:"restore_ns,omitempty"`
}

// Resize changes the world size at an iteration boundary. The
// re-shard pause is Base plus StateBytes moved at BWGBps; iteration
// time then scales weakly by oldWorld/newWorld.
type Resize struct {
	AtIteration int           `json:"at_iteration"`
	NewWorld    int           `json:"new_world"`
	StateBytes  int64         `json:"state_bytes,omitempty"`
	BWGBps      float64       `json:"bw_gbps,omitempty"`
	Base        time.Duration `json:"base_ns,omitempty"`
}

// Plan is a complete fault scenario. The zero value is a no-op plan;
// a Plan is plain data and safe to share between concurrent
// evaluations.
type Plan struct {
	// Seed drives MTBF failure arrivals and victim selection.
	Seed uint64 `json:"seed,omitempty"`

	// CheckpointEvery commits a checkpoint after every k-th
	// iteration; 0 disables checkpointing, so a failure rewinds to
	// the start of training.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// CheckpointCost is the wall-clock pause per checkpoint write.
	CheckpointCost time.Duration `json:"checkpoint_cost_ns,omitempty"`

	// MTBF, when positive, draws fail-stop arrivals from a Poisson
	// process with this mean time between failures, victims chosen
	// uniformly by the seed. Explicit Failures compose with it.
	MTBF time.Duration `json:"mtbf_ns,omitempty"`
	// Detect is the default failure-detection timeout: how long
	// survivors stay wedged on a dead rank before the job reacts.
	Detect time.Duration `json:"detect_ns,omitempty"`
	// Restore is the default checkpoint-restore pause after detection.
	Restore time.Duration `json:"restore_ns,omitempty"`

	// Iterations extends the scenario past the trace: the walk
	// replays the trace's iterations and continues at its
	// steady-state rate up to this many. 0 means the trace's own
	// iteration count.
	Iterations int `json:"iterations,omitempty"`

	// MaxRestarts bounds recovery attempts before Evaluate gives up
	// (a scenario whose MTBF is shorter than its recovery time never
	// converges). 0 means the default of 1000.
	MaxRestarts int `json:"max_restarts,omitempty"`

	Stragglers []Straggler `json:"stragglers,omitempty"`
	Failures   []FailStop  `json:"failures,omitempty"`
	Resizes    []Resize    `json:"resizes,omitempty"`
}

// Validate checks the plan's internal consistency; job-dependent
// checks (rank presence) happen when the plan is bound to a trace.
func (p *Plan) Validate() error {
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("faults: checkpoint_every %d < 0", p.CheckpointEvery)
	}
	if p.CheckpointCost < 0 || p.MTBF < 0 || p.Detect < 0 || p.Restore < 0 {
		return errors.New("faults: negative duration in plan")
	}
	if p.Iterations < 0 {
		return fmt.Errorf("faults: iterations %d < 0", p.Iterations)
	}
	if p.MaxRestarts < 0 {
		return fmt.Errorf("faults: max_restarts %d < 0", p.MaxRestarts)
	}
	for i, s := range p.Stragglers {
		if s.Factor <= 0 {
			return fmt.Errorf("faults: straggler %d: factor %v must be > 0", i, s.Factor)
		}
		if s.EveryNth < 0 {
			return fmt.Errorf("faults: straggler %d: every_nth %d < 0", i, s.EveryNth)
		}
		if s.From < 0 || s.Until < 0 || (s.Until > 0 && s.Until <= s.From) {
			return fmt.Errorf("faults: straggler %d: bad window [%v, %v)", i, s.From, s.Until)
		}
		for _, r := range s.Ranks {
			if r < 0 {
				return fmt.Errorf("faults: straggler %d: negative rank %d", i, r)
			}
		}
	}
	for i, f := range p.Failures {
		if f.Rank < 0 {
			return fmt.Errorf("faults: failure %d: negative rank %d", i, f.Rank)
		}
		if f.At < 0 || f.Detect < 0 || f.Restore < 0 {
			return fmt.Errorf("faults: failure %d: negative duration", i)
		}
	}
	for i, r := range p.Resizes {
		if r.AtIteration < 0 {
			return fmt.Errorf("faults: resize %d: at_iteration %d < 0", i, r.AtIteration)
		}
		if r.NewWorld < 1 {
			return fmt.Errorf("faults: resize %d: new_world %d < 1", i, r.NewWorld)
		}
		if r.StateBytes < 0 || r.BWGBps < 0 || r.Base < 0 {
			return fmt.Errorf("faults: resize %d: negative cost", i)
		}
		if r.StateBytes > 0 && r.BWGBps <= 0 {
			return fmt.Errorf("faults: resize %d: state_bytes without bw_gbps", i)
		}
	}
	return nil
}

// ParsePlan decodes a JSON plan and validates it. Unknown fields are
// errors: a typo in a scenario file should fail loudly, not silently
// run a different experiment.
func ParsePlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// WriteJSON serializes the plan, indented for humans.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// matches reports whether the straggler clause selects rank r.
func (s *Straggler) matches(r int) bool {
	if len(s.Ranks) == 0 && s.EveryNth == 0 {
		return true
	}
	for _, want := range s.Ranks {
		if want == r {
			return true
		}
	}
	return s.EveryNth > 0 && r%s.EveryNth == 0
}

// Injection compiles the plan's stragglers onto the job's worker
// indexing. Fail-stop is not included — Evaluate injects deaths
// per-failure at positions it computes during the walk. Returns nil
// when the plan has no stragglers. Errors when a targeted rank is
// absent from the job: fault plans need the full worker set, so
// deduplicated captures must be taken with dedup disabled.
func (p *Plan) Injection(job *trace.Job) (*sim.Injection, error) {
	if len(p.Stragglers) == 0 {
		return nil, nil
	}
	byRank := make(map[int]int, len(job.Workers))
	for i, w := range job.Workers {
		byRank[w.Rank] = i
	}
	inj := &sim.Injection{Slowdown: make([]sim.SlowWindow, 0, len(p.Stragglers))}
	for i := range p.Stragglers {
		s := &p.Stragglers[i]
		for _, r := range s.Ranks {
			if _, ok := byRank[r]; !ok {
				return nil, fmt.Errorf("faults: straggler targets rank %d absent from job (deduplicated capture? re-capture with dedup disabled)", r)
			}
		}
		sw := sim.SlowWindow{
			Factor: make([]float64, len(job.Workers)),
			From:   int64(s.From),
			Until:  int64(s.Until),
		}
		for w, wk := range job.Workers {
			if s.matches(wk.Rank) {
				sw.Factor[w] = s.Factor
			}
		}
		inj.Slowdown = append(inj.Slowdown, sw)
	}
	return inj, nil
}

// sortedFailures returns the explicit failures ordered by time of
// death (stable on rank for equal times).
func (p *Plan) sortedFailures() []FailStop {
	out := append([]FailStop(nil), p.Failures...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}
