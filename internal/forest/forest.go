// Package forest implements random-forest regression from scratch:
// CART trees grown by variance reduction, combined by bagging with
// per-split feature subsampling. Maya's default kernel-runtime
// estimators are forests trained on profiling data, following the
// paper (§4.3) and prior work it cites.
//
// Everything is deterministic given the seed, so trained estimators
// — and therefore every prediction experiment — are reproducible.
// Determinism is independent of parallelism: every tree derives its
// own seed (prand.HashInts(seed, tree, ...)), so training with any
// worker count produces byte-identical forests.
//
// Training presorts each feature column once per forest; every tree
// represents its bootstrap as multiplicities over distinct samples,
// filters the shared sorted order into its active columns with one
// linear pass, and stably partitions those columns down the
// recursion. No node ever sorts.
//
// Trained forests are stored flattened — struct-of-arrays node
// storage shared by all trees of the ensemble — so Predict walks
// contiguous int32/float64 arrays instead of chasing per-node
// pointers. Leaves are encoded as negative child indices: child c >= 0
// is internal node c, child c < 0 is leaf value leaf[^c].
package forest

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"maya/internal/prand"
)

// Sample is one training observation.
type Sample struct {
	X []float64
	Y float64
}

// Options configures training. Zero fields take the package's generic
// defaults below. Suite training deliberately overrides Trees and
// MaxDepth (see estimator.TrainOptions, which pins Trees 16 and
// MaxDepth 12 for per-kernel forests).
type Options struct {
	Trees       int     // number of trees (default 24)
	MaxDepth    int     // maximum tree depth (default 14)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // features considered per split (default 0.7)
	SampleFrac  float64 // bootstrap fraction per tree (default 0.85)
	Seed        uint64
	// Workers bounds tree-training parallelism in Train (default 1,
	// serial). The forest is byte-identical for every worker count.
	// TrainForests ignores this field: its pool spans all jobs.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Trees == 0 {
		o.Trees = 24
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 14
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	if o.FeatureFrac == 0 {
		o.FeatureFrac = 0.7
	}
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.85
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Forest is a trained ensemble in flattened struct-of-arrays form:
// one contiguous node store shared by all trees. Internal node i
// splits on feature feat[i] at thresh[i]; its children are left[i]
// and right[i], where a non-negative child is another internal node
// and a negative child c encodes leaf value leaf[^c]. roots[t] is
// tree t's entry point (itself possibly a leaf encoding, for
// single-node trees).
type Forest struct {
	nFeatures int
	roots     []int32
	feat      []int32
	thresh    []float64
	left      []int32
	right     []int32
	leaf      []float64
}

// NumFeatures returns the feature dimensionality the forest expects.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// NumNodes returns the total internal-node count across all trees
// (sizing/diagnostics; leaves are stored separately).
func (f *Forest) NumNodes() int { return len(f.feat) }

// Predict returns the ensemble mean for x. The walk is allocation-
// free: each tree descends the flattened arrays until it hits a
// negative (leaf) index.
func (f *Forest) Predict(x []float64) float64 {
	feat, thresh, left, right, leaf := f.feat, f.thresh, f.left, f.right, f.leaf
	var sum float64
	for _, root := range f.roots {
		id := root
		for id >= 0 {
			if x[feat[id]] <= thresh[id] {
				id = left[id]
			} else {
				id = right[id]
			}
		}
		sum += leaf[^id]
	}
	return sum / float64(len(f.roots))
}

// Train fits a forest to the samples. opts.Workers > 1 trains trees
// through a bounded pool; the result is byte-identical to serial.
func Train(samples []Sample, opts Options) (*Forest, error) {
	fs, err := TrainForests([]TrainJob{{Samples: samples, Opts: opts}}, opts.Workers)
	if err != nil {
		return nil, err
	}
	return fs[0], nil
}

// TrainJob is one forest-training request for TrainForests.
type TrainJob struct {
	Samples []Sample
	Opts    Options
}

// TrainForests trains many forests through one bounded worker pool
// spanning every (forest, tree) task — the shape suite training
// wants, where a handful of kernel classes each grow a dozen trees
// and neither axis alone saturates the machine. workers < 1 means
// serial. Each job's feature columns are presorted once and shared
// read-only by all of its trees; each worker reuses its
// weight/partition scratch across the trees it grows. Because
// per-tree seeds are independently derived, the assembled forests
// are byte-identical regardless of worker count or scheduling order.
func TrainForests(jobs []TrainJob, workers int) ([]*Forest, error) {
	type task struct{ job, tree int }
	data := make([]*jobData, len(jobs))
	var tasks []task
	for j := range jobs {
		if len(jobs[j].Samples) == 0 {
			return nil, jobErr(len(jobs), j, errors.New("forest: no training samples"))
		}
		nf := len(jobs[j].Samples[0].X)
		for i, s := range jobs[j].Samples {
			if len(s.X) != nf {
				return nil, jobErr(len(jobs), j,
					fmt.Errorf("forest: sample %d has %d features, want %d", i, len(s.X), nf))
			}
		}
		data[j] = buildJobData(jobs[j].Samples, jobs[j].Opts.withDefaults())
		for t := 0; t < data[j].opts.Trees; t++ {
			tasks = append(tasks, task{j, t})
		}
	}

	trees := make([][]*flatTree, len(jobs))
	for j := range jobs {
		trees[j] = make([]*flatTree, data[j].opts.Trees)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b builder
			cur := -1
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				if tk.job != cur {
					b.bind(data[tk.job])
					cur = tk.job
				}
				trees[tk.job][tk.tree] = b.growTree(tk.tree)
			}
		}()
	}
	wg.Wait()

	out := make([]*Forest, len(jobs))
	for j := range jobs {
		f := &Forest{nFeatures: data[j].nf}
		for _, t := range trees[j] {
			f.appendTree(t)
		}
		out[j] = f
	}
	return out, nil
}

// jobErr contextualizes a validation error with its job index when
// the batch has more than one job.
func jobErr(njobs, j int, err error) error {
	if njobs == 1 {
		return err
	}
	return fmt.Errorf("forest: job %d: %w", j, err)
}

// jobData is one job's read-only training matrix, shared by every
// worker growing its trees: column-major features, targets, and each
// feature's sample order presorted by (value, index) — the sort paid
// once per forest instead of once per tree (let alone per node).
type jobData struct {
	opts  Options
	nf, n int
	k     int         // bootstrap draws per tree
	xcol  [][]float64 // xcol[f][i]: feature f of sample i
	ys    []float64   // ys[i]: target of sample i
	order [][]int32   // order[f]: sample indices sorted by (xcol[f], i)
	// live lists the features with at least two distinct values;
	// constant columns can never split (adjacent equal values are
	// always skipped), so dropping them up front changes nothing in
	// the grown trees while skipping their share of every filter and
	// partition pass. Kernel-feature matrices are full of them: a
	// memcpy class varies in exactly one of its fourteen features.
	live    []int
	liveSet []bool
}

func buildJobData(samples []Sample, opts Options) *jobData {
	n := len(samples)
	nf := len(samples[0].X)
	jd := &jobData{
		opts: opts, nf: nf, n: n,
		xcol:  make([][]float64, nf),
		ys:    make([]float64, n),
		order: make([][]int32, nf),
	}
	jd.k = int(float64(n) * opts.SampleFrac)
	if jd.k < 1 {
		jd.k = 1
	}
	for f := 0; f < nf; f++ {
		jd.xcol[f] = make([]float64, n)
	}
	for i := range samples {
		jd.ys[i] = samples[i].Y
		for f := 0; f < nf; f++ {
			jd.xcol[f][i] = samples[i].X[f]
		}
	}
	jd.liveSet = make([]bool, nf)
	for f := 0; f < nf; f++ {
		xf := jd.xcol[f]
		for i := 1; i < n; i++ {
			if xf[i] != xf[0] {
				jd.live = append(jd.live, f)
				jd.liveSet[f] = true
				break
			}
		}
		if !jd.liveSet[f] {
			continue
		}
		ord := make([]int32, n)
		for i := range ord {
			ord[i] = int32(i)
		}
		// The tie-break on index makes the order — and therefore the
		// whole forest — deterministic independent of the sort
		// algorithm.
		sort.Slice(ord, func(a, b int) bool {
			va, vb := xf[ord[a]], xf[ord[b]]
			if va != vb {
				return va < vb
			}
			return ord[a] < ord[b]
		})
		jd.order[f] = ord
	}
	return jd
}

// flatTree is one grown tree with tree-local node/leaf indices,
// merged into the forest's shared arrays by appendTree.
type flatTree struct {
	root   int32
	feat   []int32
	thresh []float64
	left   []int32
	right  []int32
	leaf   []float64
}

func (t *flatTree) addLeaf(value float64) int32 {
	t.leaf = append(t.leaf, value)
	return -int32(len(t.leaf)) // ^id == len(t.leaf)-1
}

func (t *flatTree) addSplit(feat int, thresh float64) int32 {
	t.feat = append(t.feat, int32(feat))
	t.thresh = append(t.thresh, thresh)
	t.left = append(t.left, 0)
	t.right = append(t.right, 0)
	return int32(len(t.feat) - 1)
}

// appendTree merges a tree into the forest's shared arrays, shifting
// node indices by the node offset and leaf encodings by the leaf
// offset.
func (f *Forest) appendTree(t *flatTree) {
	nodeOff := int32(len(f.feat))
	leafOff := int32(len(f.leaf))
	shift := func(c int32) int32 {
		if c >= 0 {
			return c + nodeOff
		}
		return c - leafOff
	}
	for _, c := range t.left {
		f.left = append(f.left, shift(c))
	}
	for _, c := range t.right {
		f.right = append(f.right, shift(c))
	}
	f.feat = append(f.feat, t.feat...)
	f.thresh = append(f.thresh, t.thresh...)
	f.leaf = append(f.leaf, t.leaf...)
	f.roots = append(f.roots, shift(t.root))
}

// builder grows trees over a shared jobData. A tree's bootstrap is a
// multiplicity vector over distinct samples; its active columns are
// the presorted orders filtered to drawn samples (one linear pass per
// feature), stably partitioned down the recursion. All scratch is
// reused across the trees a worker grows.
type builder struct {
	jd  *jobData
	rng *prand.SplitMix64

	w    []int32   // w[i]: bootstrap multiplicity of sample i
	cols [][]int32 // cols[f]: drawn sample indices in presorted order
	tmp  []int32   // partition scratch
	side []bool    // side[i]: sample i goes left in the current split
	perm []int     // feature-subset scratch
	t    flatTree  // tree under construction (arrays not reused)
}

// bind points the builder at a job, sizing scratch for it.
func (b *builder) bind(jd *jobData) {
	b.jd = jd
	grow := func(n int, s []int32) []int32 {
		if cap(s) < n {
			return make([]int32, n)
		}
		return s[:n]
	}
	b.w = grow(jd.n, b.w)
	b.tmp = grow(jd.n, b.tmp)
	if cap(b.side) < jd.n {
		b.side = make([]bool, jd.n)
	}
	b.side = b.side[:jd.n]
	if cap(b.perm) < jd.nf {
		b.perm = make([]int, jd.nf)
	}
	b.perm = b.perm[:jd.nf]
	for len(b.cols) < jd.nf {
		b.cols = append(b.cols, nil)
	}
	b.cols = b.cols[:jd.nf]
	for f := range b.cols {
		b.cols[f] = grow(jd.n, b.cols[f])
	}
}

// growTree draws the bootstrap, filters the shared sorted orders into
// the tree's active columns, and grows one tree. The returned tree's
// arrays are freshly allocated (they outlive the builder's scratch).
func (b *builder) growTree(tree int) *flatTree {
	jd := b.jd
	b.rng = prand.New(prand.HashInts(jd.opts.Seed, int64(tree), 0xf0e57))
	clear(b.w[:jd.n])
	for d := 0; d < jd.k; d++ {
		b.w[b.rng.Intn(jd.n)]++
	}
	b.t = flatTree{}
	if len(jd.live) == 0 {
		// Every feature is constant: the tree is one weighted-mean
		// leaf (no split could ever be accepted).
		var sum float64
		wTot := 0
		for i := 0; i < jd.n; i++ {
			sum += float64(b.w[i]) * jd.ys[i]
			wTot += int(b.w[i])
		}
		b.t.root = b.t.addLeaf(sum / float64(wTot))
	} else {
		m := 0
		for _, f := range jd.live {
			dst := b.cols[f][:0]
			for _, i := range jd.order[f] {
				if b.w[i] > 0 {
					dst = append(dst, i)
				}
			}
			b.cols[f] = dst
			m = len(dst)
		}
		b.t.root = b.grow(0, m, 0)
	}
	t := b.t
	b.t = flatTree{}
	return &t
}

// grow builds the subtree over segment [lo, hi) of the active column
// arrays, returning its node (or leaf) encoding.
func (b *builder) grow(lo, hi, depth int) int32 {
	mean, sse, sum, sumSq, wTot := b.segStats(lo, hi)
	if depth >= b.jd.opts.MaxDepth || wTot < 2*b.jd.opts.MinLeaf || sse < 1e-12 {
		return b.t.addLeaf(mean)
	}
	feat, thresh, ok := b.bestSplit(lo, hi, sse, sum, sumSq, float64(wTot))
	if !ok {
		return b.t.addLeaf(mean)
	}
	// The split feature's column is sorted, so the left side is the
	// <= thresh prefix. Counting against the actual predicate (rather
	// than trusting the scan position) keeps the midpoint-rounds-to-
	// the-right-value edge case safe; the MinLeaf guard then rejects
	// any degenerate partition.
	sIdx := b.countLeft(lo, hi, feat, thresh)
	wl := 0
	for _, i := range b.cols[feat][lo : lo+sIdx] {
		wl += int(b.w[i])
	}
	if wl < b.jd.opts.MinLeaf || wTot-wl < b.jd.opts.MinLeaf {
		return b.t.addLeaf(mean)
	}
	b.partition(lo, hi, feat, sIdx)
	id := b.t.addSplit(feat, thresh)
	left := b.grow(lo, lo+sIdx, depth+1)
	right := b.grow(lo+sIdx, hi, depth+1)
	b.t.left[id], b.t.right[id] = left, right
	return id
}

// segStats accumulates the segment's weighted target statistics in
// presorted (first-column) order.
func (b *builder) segStats(lo, hi int) (mean, sse, sum, sumSq float64, wTot int) {
	ys, w := b.jd.ys, b.w
	for _, i := range b.cols[b.jd.live[0]][lo:hi] {
		wf := float64(w[i])
		y := ys[i]
		wy := wf * y
		sum += wy
		sumSq += wy * y
		wTot += int(w[i])
	}
	n := float64(wTot)
	mean = sum / n
	sse = sumSq - sum*sum/n
	if sse < 0 {
		sse = 0
	}
	return mean, sse, sum, sumSq, wTot
}

// bestSplit scans a random feature subset for the split with the
// largest SSE reduction. Each candidate feature's samples are already
// in sorted order, so the scan is a single weighted pass of prefix
// sums — the O(n log n) per-node re-sort of the pointer-tree builder
// is gone.
func (b *builder) bestSplit(lo, hi int, parentSSE, sumY, sumSqY, wTot float64) (feat int, thresh float64, ok bool) {
	jd := b.jd
	k := int(math.Ceil(jd.opts.FeatureFrac * float64(jd.nf)))
	if k < 1 {
		k = 1
	}
	sel := b.rng.PermInto(b.perm)[:k]
	sort.Ints(sel) // deterministic evaluation order

	best := parentSSE - 1e-12
	minLeaf := jd.opts.MinLeaf
	ys, w := jd.ys, b.w
	for _, f := range sel {
		if !jd.liveSet[f] {
			continue // globally constant: no split exists
		}
		col := b.cols[f][lo:hi]
		xf := jd.xcol[f]
		if xf[col[0]] == xf[col[len(col)-1]] {
			continue // constant over this segment: the scan would find nothing
		}
		var sumL, sumSqL, wl float64
		sumR, sumSqR, wr := sumY, sumSqY, wTot
		for idx := 0; idx < len(col)-1; idx++ {
			i := col[idx]
			wf := float64(w[i])
			y := ys[i]
			wy := wf * y
			wyy := wy * y
			sumL += wy
			sumSqL += wyy
			sumR -= wy
			sumSqR -= wyy
			wl += wf
			wr -= wf
			xv := xf[i]
			xn := xf[col[idx+1]]
			if xn <= xv {
				continue // cannot split between equal values
			}
			if int(wl) < minLeaf || int(wr) < minLeaf {
				continue
			}
			sse := (sumSqL - sumL*sumL/wl) + (sumSqR - sumR*sumR/wr)
			if sse < best {
				best = sse
				feat = f
				thresh = (xv + xn) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// countLeft returns how many active samples of the segment satisfy
// x[feat] <= thresh, by binary search over the feature's sorted
// column.
func (b *builder) countLeft(lo, hi, feat int, thresh float64) int {
	col := b.cols[feat][lo:hi]
	xf := b.jd.xcol[feat]
	return sort.Search(len(col), func(i int) bool { return xf[col[i]] > thresh })
}

// partition stably splits every feature column's segment: left-going
// samples keep their sorted order in [lo, lo+sIdx), right-going ones
// in [lo+sIdx, hi) — which is what lets child nodes scan without
// re-sorting. Membership comes straight from the split feature's
// column (its <= thresh prefix IS the left side, so that column is
// already partitioned and is skipped), recorded in a byte sidecar so
// the other columns route without touching feature values.
func (b *builder) partition(lo, hi, feat int, sIdx int) {
	split := b.cols[feat][lo:hi]
	for _, i := range split[:sIdx] {
		b.side[i] = true
	}
	for _, i := range split[sIdx:] {
		b.side[i] = false
	}
	for _, f := range b.jd.live {
		if f == feat {
			continue
		}
		col := b.cols[f][lo:hi]
		// Lefts compact in place (their writes never pass the read
		// cursor); rights stage in scratch and copy back once.
		li, ri := 0, 0
		for _, i := range col {
			if b.side[i] {
				col[li] = i
				li++
			} else {
				b.tmp[ri] = i
				ri++
			}
		}
		copy(col[sIdx:], b.tmp[:ri])
	}
}

// MAPE computes mean absolute percentage error of the forest on a
// test set, with predictions and targets transformed by inv (pass
// identity when Y is the raw target).
func (f *Forest) MAPE(test []Sample, inv func(float64) float64) float64 {
	if inv == nil {
		inv = func(v float64) float64 { return v }
	}
	var total float64
	var n int
	for _, s := range test {
		want := inv(s.Y)
		if want == 0 {
			continue
		}
		got := inv(f.Predict(s.X))
		total += math.Abs(got-want) / math.Abs(want)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// SplitN deterministically partitions items by a seeded permutation,
// sending the first nTest permuted items to test and the rest to
// train — the one seeded holdout-split implementation shared by
// Split and estimator.TrainAndEvaluate.
func SplitN[T any](items []T, nTest int, seed uint64) (train, test []T) {
	if nTest < 0 {
		nTest = 0
	}
	if nTest > len(items) {
		nTest = len(items)
	}
	rng := prand.New(seed)
	perm := rng.Perm(len(items))
	test = make([]T, 0, nTest)
	train = make([]T, 0, len(items)-nTest)
	for i, p := range perm {
		if i < nTest {
			test = append(test, items[p])
		} else {
			train = append(train, items[p])
		}
	}
	return train, test
}

// Split partitions samples into train/test deterministically
// (fraction testFrac to test), for held-out evaluation.
func Split(samples []Sample, testFrac float64, seed uint64) (train, test []Sample) {
	return SplitN(samples, int(float64(len(samples))*testFrac), seed)
}
