// Package forest implements random-forest regression from scratch:
// CART trees grown by variance reduction, combined by bagging with
// per-split feature subsampling. Maya's default kernel-runtime
// estimators are forests trained on profiling data, following the
// paper (§4.3) and prior work it cites.
//
// Everything is deterministic given the seed, so trained estimators
// — and therefore every prediction experiment — are reproducible.
package forest

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"maya/internal/prand"
)

// Sample is one training observation.
type Sample struct {
	X []float64
	Y float64
}

// Options configures training. Zero fields take defaults.
type Options struct {
	Trees       int     // number of trees (default 24)
	MaxDepth    int     // maximum tree depth (default 14)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // features considered per split (default 0.7)
	SampleFrac  float64 // bootstrap fraction per tree (default 0.85)
	Seed        uint64
}

func (o Options) withDefaults() Options {
	if o.Trees == 0 {
		o.Trees = 24
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 14
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	if o.FeatureFrac == 0 {
		o.FeatureFrac = 0.7
	}
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.85
	}
	return o
}

// Forest is a trained ensemble.
type Forest struct {
	trees     []*node
	nFeatures int
}

type node struct {
	feature     int
	thresh      float64
	left, right *node
	value       float64 // leaf prediction
}

func (n *node) leaf() bool { return n.left == nil }

// Train fits a forest to the samples.
func Train(samples []Sample, opts Options) (*Forest, error) {
	if len(samples) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	opts = opts.withDefaults()
	nf := len(samples[0].X)
	for i, s := range samples {
		if len(s.X) != nf {
			return nil, fmt.Errorf("forest: sample %d has %d features, want %d", i, len(s.X), nf)
		}
	}
	f := &Forest{nFeatures: nf, trees: make([]*node, opts.Trees)}
	for t := 0; t < opts.Trees; t++ {
		rng := prand.New(prand.HashInts(opts.Seed, int64(t), 0xf0e57))
		idx := bootstrap(len(samples), opts.SampleFrac, rng)
		b := &builder{samples: samples, opts: opts, rng: rng}
		f.trees[t] = b.grow(idx, 0)
	}
	return f, nil
}

// NumFeatures returns the feature dimensionality the forest expects.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// Predict returns the ensemble mean for x.
func (f *Forest) Predict(x []float64) float64 {
	var sum float64
	for _, t := range f.trees {
		n := t
		for !n.leaf() {
			if x[n.feature] <= n.thresh {
				n = n.left
			} else {
				n = n.right
			}
		}
		sum += n.value
	}
	return sum / float64(len(f.trees))
}

func bootstrap(n int, frac float64, rng *prand.SplitMix64) []int {
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

type builder struct {
	samples []Sample
	opts    Options
	rng     *prand.SplitMix64
}

func (b *builder) grow(idx []int, depth int) *node {
	mean, sse := stats(b.samples, idx)
	if depth >= b.opts.MaxDepth || len(idx) < 2*b.opts.MinLeaf || sse < 1e-12 {
		return &node{value: mean}
	}
	feat, thresh, ok := b.bestSplit(idx, sse)
	if !ok {
		return &node{value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if b.samples[i].X[feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.opts.MinLeaf || len(right) < b.opts.MinLeaf {
		return &node{value: mean}
	}
	return &node{
		feature: feat,
		thresh:  thresh,
		left:    b.grow(left, depth+1),
		right:   b.grow(right, depth+1),
	}
}

// bestSplit scans a random feature subset for the split with the
// largest SSE reduction, using sorted prefix sums.
func (b *builder) bestSplit(idx []int, parentSSE float64) (feat int, thresh float64, ok bool) {
	nf := len(b.samples[idx[0]].X)
	k := int(math.Ceil(b.opts.FeatureFrac * float64(nf)))
	if k < 1 {
		k = 1
	}
	perm := b.rng.Perm(nf)[:k]
	sort.Ints(perm) // deterministic evaluation order

	best := parentSSE - 1e-12
	ok = false

	sorted := make([]int, len(idx))
	for _, f := range perm {
		copy(sorted, idx)
		ff := f
		sort.Slice(sorted, func(i, j int) bool {
			return b.samples[sorted[i]].X[ff] < b.samples[sorted[j]].X[ff]
		})
		// Prefix statistics.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range sorted {
			sumR += b.samples[i].Y
			sumSqR += b.samples[i].Y * b.samples[i].Y
		}
		n := float64(len(sorted))
		for pos := 0; pos < len(sorted)-1; pos++ {
			y := b.samples[sorted[pos]].Y
			sumL += y
			sumSqL += y * y
			sumR -= y
			sumSqR -= y * y
			xv := b.samples[sorted[pos]].X[ff]
			xn := b.samples[sorted[pos+1]].X[ff]
			if xn <= xv {
				continue // cannot split between equal values
			}
			nl := float64(pos + 1)
			nr := n - nl
			if int(nl) < b.opts.MinLeaf || int(nr) < b.opts.MinLeaf {
				continue
			}
			sse := (sumSqL - sumL*sumL/nl) + (sumSqR - sumR*sumR/nr)
			if sse < best {
				best = sse
				feat = ff
				thresh = (xv + xn) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

func stats(samples []Sample, idx []int) (mean, sse float64) {
	var sum, sumSq float64
	for _, i := range idx {
		sum += samples[i].Y
		sumSq += samples[i].Y * samples[i].Y
	}
	n := float64(len(idx))
	mean = sum / n
	sse = sumSq - sum*sum/n
	if sse < 0 {
		sse = 0
	}
	return mean, sse
}

// MAPE computes mean absolute percentage error of the forest on a
// test set, with predictions and targets transformed by inv (pass
// identity when Y is the raw target).
func (f *Forest) MAPE(test []Sample, inv func(float64) float64) float64 {
	if inv == nil {
		inv = func(v float64) float64 { return v }
	}
	var total float64
	var n int
	for _, s := range test {
		want := inv(s.Y)
		if want == 0 {
			continue
		}
		got := inv(f.Predict(s.X))
		total += math.Abs(got-want) / math.Abs(want)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Split partitions samples into train/test deterministically
// (fraction testFrac to test), for held-out evaluation.
func Split(samples []Sample, testFrac float64, seed uint64) (train, test []Sample) {
	rng := prand.New(seed)
	perm := rng.Perm(len(samples))
	nTest := int(float64(len(samples)) * testFrac)
	for i, p := range perm {
		if i < nTest {
			test = append(test, samples[p])
		} else {
			train = append(train, samples[p])
		}
	}
	return train, test
}
