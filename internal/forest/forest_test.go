package forest

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"maya/internal/prand"
)

// genSamples draws n points from f over [0,1]^d with optional noise.
func genSamples(n, d int, seed uint64, noise float64, f func([]float64) float64) []Sample {
	rng := prand.New(seed)
	out := make([]Sample, n)
	for i := range out {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := f(x)
		if noise > 0 {
			y += noise * rng.NormFloat64()
		}
		out[i] = Sample{X: x, Y: y}
	}
	return out
}

func TestFitsAdditiveFunction(t *testing.T) {
	f := func(x []float64) float64 { return 3*x[0] + x[1]*x[1] - 0.5*x[2] }
	train := genSamples(3000, 3, 1, 0.01, f)
	test := genSamples(300, 3, 2, 0, f)
	fr, err := Train(train, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for _, s := range test {
		d := fr.Predict(s.X) - s.Y
		mse += d * d
	}
	mse /= float64(len(test))
	if mse > 0.01 {
		t.Fatalf("test MSE = %v, want < 0.01", mse)
	}
}

func TestFitsStepFunction(t *testing.T) {
	// Trees should nail axis-aligned steps.
	f := func(x []float64) float64 {
		if x[0] > 0.5 {
			return 10
		}
		return -10
	}
	fr, err := Train(genSamples(1000, 2, 3, 0, f), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v := fr.Predict([]float64{0.9, 0.5}); math.Abs(v-10) > 0.5 {
		t.Fatalf("high side = %v", v)
	}
	if v := fr.Predict([]float64{0.1, 0.5}); math.Abs(v+10) > 0.5 {
		t.Fatalf("low side = %v", v)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := genSamples(500, 4, 5, 0.05, func(x []float64) float64 { return x[0] * x[3] })
	a, err := Train(train, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.1, 0.9, 0.7}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed, different forests")
	}
	c, _ := Train(train, Options{Seed: 10})
	if a.Predict(probe) == c.Predict(probe) {
		t.Fatal("different seeds produced identical forests (suspicious)")
	}
}

func TestPredictionsWithinTargetRange(t *testing.T) {
	// Property: a tree ensemble's prediction is a convex combination
	// of training targets, so it can never leave their range.
	if err := quick.Check(func(seed uint64) bool {
		train := genSamples(200, 3, seed, 0, func(x []float64) float64 { return math.Sin(6 * x[0]) })
		fr, err := Train(train, Options{Seed: seed, Trees: 8, MaxDepth: 6})
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range train {
			lo = math.Min(lo, s.Y)
			hi = math.Max(hi, s.Y)
		}
		rng := prand.New(seed + 1)
		for i := 0; i < 50; i++ {
			x := []float64{rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2}
			v := fr.Predict(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMAPEWithTransform(t *testing.T) {
	// Train in log space, evaluate MAPE in linear space.
	f := func(x []float64) float64 { return math.Log(1000 * (1 + 9*x[0])) }
	train := genSamples(2000, 2, 11, 0.005, f)
	test := genSamples(200, 2, 12, 0, f)
	fr, err := Train(train, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mape := fr.MAPE(test, math.Exp)
	if mape > 0.05 {
		t.Fatalf("MAPE = %.1f%%, want < 5%%", mape*100)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	samples := genSamples(100, 2, 13, 0, func(x []float64) float64 { return x[0] })
	train, test := Split(samples, 0.2, 42)
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split sizes = %d/%d", len(train), len(test))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: 0}, {X: []float64{1}, Y: 0}}
	if _, err := Train(bad, Options{}); err == nil {
		t.Fatal("expected error for inconsistent feature lengths")
	}
}

// refNode is the pointer-tree view of a flattened forest, for the
// bit-identity property test: the flat walk must agree exactly with
// the classic pointer walk over the same trees.
type refNode struct {
	feature     int
	thresh      float64
	left, right *refNode
	value       float64
}

// refTrees materializes the forest's flattened node store back into
// pointer trees.
func refTrees(f *Forest) []*refNode {
	var build func(id int32) *refNode
	build = func(id int32) *refNode {
		if id < 0 {
			return &refNode{value: f.leaf[^id]}
		}
		return &refNode{
			feature: int(f.feat[id]),
			thresh:  f.thresh[id],
			left:    build(f.left[id]),
			right:   build(f.right[id]),
		}
	}
	trees := make([]*refNode, len(f.roots))
	for i, r := range f.roots {
		trees[i] = build(r)
	}
	return trees
}

// refPredict is the pointer-tree ensemble walk, accumulating in tree
// order exactly like Forest.Predict.
func refPredict(trees []*refNode, x []float64) float64 {
	var sum float64
	for _, tr := range trees {
		n := tr
		for n.left != nil {
			if x[n.feature] <= n.thresh {
				n = n.left
			} else {
				n = n.right
			}
		}
		sum += n.value
	}
	return sum / float64(len(trees))
}

func TestFlatPredictMatchesPointerWalk(t *testing.T) {
	// Property: across randomized forests and inputs, the flattened
	// struct-of-arrays walk is bit-identical to the pointer-tree walk
	// (same comparisons, same leaf values, same summation order).
	if err := quick.Check(func(seed uint64) bool {
		train := genSamples(300, 4, seed, 0.05, func(x []float64) float64 {
			return x[0]*x[3] + math.Sin(4*x[1])
		})
		fr, err := Train(train, Options{Seed: seed, Trees: 6, MaxDepth: 7})
		if err != nil {
			return false
		}
		trees := refTrees(fr)
		rng := prand.New(seed ^ 0xabcdef)
		for i := 0; i < 100; i++ {
			// Probe beyond the training range too: out-of-range inputs
			// exercise every branch direction.
			x := []float64{
				rng.Float64()*3 - 1, rng.Float64()*3 - 1,
				rng.Float64()*3 - 1, rng.Float64()*3 - 1,
			}
			if fr.Predict(x) != refPredict(trees, x) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafEncodingRoundTrips(t *testing.T) {
	// Single-node trees encode their root as a leaf index; a constant
	// target forces exactly that shape.
	train := genSamples(50, 2, 23, 0, func([]float64) float64 { return 1.5 })
	fr, err := Train(train, Options{Seed: 3, Trees: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range fr.roots {
		if root >= 0 {
			t.Fatalf("constant-target tree has internal root %d", root)
		}
	}
	if v := fr.Predict([]float64{0.1, 0.9}); v != 1.5 {
		t.Fatalf("Predict = %v, want 1.5", v)
	}
}

func TestTrainParallelMatchesSerial(t *testing.T) {
	train := genSamples(1200, 5, 31, 0.05, func(x []float64) float64 {
		return 2*x[0] - x[1]*x[4] + x[2]
	})
	serial, err := Train(train, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Train(train, Options{Seed: 11, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel training produced a different forest than serial")
	}
}

func TestTrainForestsMatchesIndividualTrain(t *testing.T) {
	jobs := []TrainJob{
		{Samples: genSamples(400, 3, 41, 0.02, func(x []float64) float64 { return x[0] + x[1] }),
			Opts: Options{Seed: 1, Trees: 5, MaxDepth: 6}},
		{Samples: genSamples(250, 2, 43, 0.02, func(x []float64) float64 { return x[0] * x[1] }),
			Opts: Options{Seed: 2, Trees: 3, MaxDepth: 5}},
		{Samples: genSamples(90, 4, 47, 0, func(x []float64) float64 { return x[3] }),
			Opts: Options{Seed: 3, Trees: 8, MaxDepth: 4}},
	}
	batch, err := TrainForests(jobs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		lone, err := Train(job.Samples, job.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], lone) {
			t.Fatalf("job %d: pooled TrainForests result differs from lone Train", i)
		}
	}
}

func TestTrainForestsValidatesPerJob(t *testing.T) {
	good := genSamples(50, 2, 51, 0, func(x []float64) float64 { return x[0] })
	if _, err := TrainForests([]TrainJob{{Samples: good}, {}}, 2); err == nil {
		t.Fatal("expected error for empty job in batch")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: 0}, {X: []float64{1}, Y: 0}}
	if _, err := TrainForests([]TrainJob{{Samples: good}, {Samples: bad}}, 2); err == nil {
		t.Fatal("expected error for inconsistent features in batch")
	}
}

func TestOptionsDefaultsPinned(t *testing.T) {
	// The package's generic defaults. Suite training overrides Trees
	// and MaxDepth (pinned on the estimator side); this test keeps the
	// doc comments honest.
	o := Options{}.withDefaults()
	if o.Trees != 24 || o.MaxDepth != 14 || o.MinLeaf != 2 ||
		o.FeatureFrac != 0.7 || o.SampleFrac != 0.85 || o.Workers != 1 {
		t.Fatalf("generic forest defaults changed: %+v", o)
	}
}

func TestAllConstantFeaturesYieldMeanLeaf(t *testing.T) {
	// Every feature identical across samples: no split exists, every
	// tree is a single weighted-mean leaf, and predictions stay
	// within the target range.
	samples := make([]Sample, 60)
	for i := range samples {
		samples[i] = Sample{X: []float64{1, 2, 3}, Y: float64(i % 7)}
	}
	fr, err := Train(samples, Options{Seed: 5, Trees: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumNodes() != 0 {
		t.Fatalf("constant-feature forest has %d internal nodes, want 0", fr.NumNodes())
	}
	if v := fr.Predict([]float64{9, 9, 9}); v < 0 || v > 6 {
		t.Fatalf("Predict = %v, outside target range [0, 6]", v)
	}
}

func TestSplitNMatchesSplit(t *testing.T) {
	samples := genSamples(137, 2, 61, 0, func(x []float64) float64 { return x[1] })
	train1, test1 := Split(samples, 0.2, 99)
	train2, test2 := SplitN(samples, int(float64(len(samples))*0.2), 99)
	if !reflect.DeepEqual(train1, train2) || !reflect.DeepEqual(test1, test2) {
		t.Fatal("SplitN disagrees with Split for the same seed and test count")
	}
	// Degenerate bounds clamp instead of panicking.
	tr, te := SplitN(samples, -5, 1)
	if len(te) != 0 || len(tr) != len(samples) {
		t.Fatalf("SplitN(-5): %d/%d", len(tr), len(te))
	}
	tr, te = SplitN(samples, len(samples)+5, 1)
	if len(tr) != 0 || len(te) != len(samples) {
		t.Fatalf("SplitN(n+5): %d/%d", len(tr), len(te))
	}
}

func TestConstantTargetYieldsConstantForest(t *testing.T) {
	train := genSamples(100, 2, 17, 0, func([]float64) float64 { return 5 })
	fr, err := Train(train, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := fr.Predict([]float64{0.5, 0.5}); math.Abs(v-5) > 1e-9 {
		t.Fatalf("constant fit = %v", v)
	}
}
