package forest

import (
	"math"
	"testing"
	"testing/quick"

	"maya/internal/prand"
)

// genSamples draws n points from f over [0,1]^d with optional noise.
func genSamples(n, d int, seed uint64, noise float64, f func([]float64) float64) []Sample {
	rng := prand.New(seed)
	out := make([]Sample, n)
	for i := range out {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := f(x)
		if noise > 0 {
			y += noise * rng.NormFloat64()
		}
		out[i] = Sample{X: x, Y: y}
	}
	return out
}

func TestFitsAdditiveFunction(t *testing.T) {
	f := func(x []float64) float64 { return 3*x[0] + x[1]*x[1] - 0.5*x[2] }
	train := genSamples(3000, 3, 1, 0.01, f)
	test := genSamples(300, 3, 2, 0, f)
	fr, err := Train(train, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for _, s := range test {
		d := fr.Predict(s.X) - s.Y
		mse += d * d
	}
	mse /= float64(len(test))
	if mse > 0.01 {
		t.Fatalf("test MSE = %v, want < 0.01", mse)
	}
}

func TestFitsStepFunction(t *testing.T) {
	// Trees should nail axis-aligned steps.
	f := func(x []float64) float64 {
		if x[0] > 0.5 {
			return 10
		}
		return -10
	}
	fr, err := Train(genSamples(1000, 2, 3, 0, f), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v := fr.Predict([]float64{0.9, 0.5}); math.Abs(v-10) > 0.5 {
		t.Fatalf("high side = %v", v)
	}
	if v := fr.Predict([]float64{0.1, 0.5}); math.Abs(v+10) > 0.5 {
		t.Fatalf("low side = %v", v)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := genSamples(500, 4, 5, 0.05, func(x []float64) float64 { return x[0] * x[3] })
	a, err := Train(train, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.1, 0.9, 0.7}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed, different forests")
	}
	c, _ := Train(train, Options{Seed: 10})
	if a.Predict(probe) == c.Predict(probe) {
		t.Fatal("different seeds produced identical forests (suspicious)")
	}
}

func TestPredictionsWithinTargetRange(t *testing.T) {
	// Property: a tree ensemble's prediction is a convex combination
	// of training targets, so it can never leave their range.
	if err := quick.Check(func(seed uint64) bool {
		train := genSamples(200, 3, seed, 0, func(x []float64) float64 { return math.Sin(6 * x[0]) })
		fr, err := Train(train, Options{Seed: seed, Trees: 8, MaxDepth: 6})
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range train {
			lo = math.Min(lo, s.Y)
			hi = math.Max(hi, s.Y)
		}
		rng := prand.New(seed + 1)
		for i := 0; i < 50; i++ {
			x := []float64{rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2}
			v := fr.Predict(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMAPEWithTransform(t *testing.T) {
	// Train in log space, evaluate MAPE in linear space.
	f := func(x []float64) float64 { return math.Log(1000 * (1 + 9*x[0])) }
	train := genSamples(2000, 2, 11, 0.005, f)
	test := genSamples(200, 2, 12, 0, f)
	fr, err := Train(train, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mape := fr.MAPE(test, math.Exp)
	if mape > 0.05 {
		t.Fatalf("MAPE = %.1f%%, want < 5%%", mape*100)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	samples := genSamples(100, 2, 13, 0, func(x []float64) float64 { return x[0] })
	train, test := Split(samples, 0.2, 42)
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split sizes = %d/%d", len(train), len(test))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: 0}, {X: []float64{1}, Y: 0}}
	if _, err := Train(bad, Options{}); err == nil {
		t.Fatal("expected error for inconsistent feature lengths")
	}
}

func TestConstantTargetYieldsConstantForest(t *testing.T) {
	train := genSamples(100, 2, 17, 0, func([]float64) float64 { return 5 })
	fr, err := Train(train, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := fr.Predict([]float64{0.5, 0.5}); math.Abs(v-5) > 1e-9 {
		t.Fatalf("constant fit = %v", v)
	}
}
