package framework

import (
	"fmt"

	"maya/internal/cublas"
	"maya/internal/cuda"
	"maya/internal/cudnn"
	"maya/internal/models"
	"maya/internal/nccl"
	"maya/internal/workload"
)

// DPStrategy selects the data-parallel training stack (Table 4's
// generality matrix).
type DPStrategy int

// Strategies.
const (
	// DDP is PyTorch DistributedDataParallel: replicated model,
	// bucketed gradient all-reduce overlapped with backward.
	DDP DPStrategy = iota
	// ZeRO1 shards optimizer state (DeepSpeed stage 1).
	ZeRO1
	// ZeRO2 also shards gradients (reduce-scatter buckets).
	ZeRO2
	// ZeRO3 also shards parameters (all-gather per block).
	ZeRO3
	// FSDP is PyTorch fully-sharded data parallel (ZeRO-3 family).
	FSDP
)

// String implements fmt.Stringer.
func (s DPStrategy) String() string {
	switch s {
	case DDP:
		return "ddp"
	case ZeRO1:
		return "zero1"
	case ZeRO2:
		return "zero2"
	case ZeRO3:
		return "zero3"
	case FSDP:
		return "fsdp"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

func (s DPStrategy) shardsParams() bool { return s == ZeRO3 || s == FSDP }
func (s DPStrategy) shardsGrads() bool  { return s == ZeRO2 || s.shardsParams() }
func (s DPStrategy) shardsOpt() bool    { return s != DDP }

// DataParallelConfig describes a data-parallel-only training job —
// the DeepSpeed / PyTorch scripts of the generality study and the
// ResNet evaluation. Exactly one of Transformer or CNN must be set.
type DataParallelConfig struct {
	Transformer *models.Transformer
	CNN         *models.CNN

	NGPUs       int
	GlobalBatch int
	// GradAccum is the number of microbatches each replica
	// accumulates per step.
	GradAccum int
	Strategy  DPStrategy
	// ActOffload stages activations to host memory between forward
	// and backward (DeepSpeed activation offload).
	ActOffload bool
	// Compile enables torch.compile: pointwise chains fuse into
	// Triton kernels and dense layers lower to cublasLtMatmul.
	Compile bool
	// DType is the autocast precision (default fp16).
	DType      string
	Iterations int
}

func (c DataParallelConfig) withDefaults() DataParallelConfig {
	if c.DType == "" {
		c.DType = "fp16"
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.GradAccum == 0 {
		c.GradAccum = 1
	}
	return c
}

// Validate rejects inconsistent jobs.
func (c DataParallelConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case (c.Transformer == nil) == (c.CNN == nil):
		return fmt.Errorf("dataparallel: exactly one of Transformer or CNN must be set")
	case c.NGPUs < 1:
		return fmt.Errorf("dataparallel: %d GPUs", c.NGPUs)
	case c.GlobalBatch%(c.NGPUs*c.GradAccum) != 0:
		return fmt.Errorf("dataparallel: global batch %d not divisible by ngpus*gradaccum=%d",
			c.GlobalBatch, c.NGPUs*c.GradAccum)
	}
	return nil
}

// ModelName names the configured model.
func (c DataParallelConfig) ModelName() string {
	if c.Transformer != nil {
		return c.Transformer.Name
	}
	return c.CNN.Name
}

// MicroBatchSize is sequences (or images) per microbatch per replica.
func (c DataParallelConfig) MicroBatchSize() int {
	return c.GlobalBatch / (c.NGPUs * c.GradAccum)
}

// DataParallel is the workload implementation.
type DataParallel struct {
	cfg DataParallelConfig
}

var (
	_ workload.Workload          = (*DataParallel)(nil)
	_ workload.SelectiveLauncher = (*DataParallel)(nil)
	_ workload.GroupAware        = (*DataParallel)(nil)
	_ workload.ClassHinter       = (*DataParallel)(nil)
	_ workload.Fingerprinter     = (*DataParallel)(nil)
)

// NewDataParallel validates and builds the workload.
func NewDataParallel(cfg DataParallelConfig) (*DataParallel, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DataParallel{cfg: cfg}, nil
}

// Config returns the validated configuration.
func (d *DataParallel) Config() DataParallelConfig { return d.cfg }

// Name implements workload.Workload.
func (d *DataParallel) Name() string {
	n := d.cfg.Strategy.String() + "/" + d.cfg.ModelName()
	if d.cfg.Compile {
		n += "+compile"
	}
	if d.cfg.ActOffload {
		n += "+offload"
	}
	return n
}

// World implements workload.Workload.
func (d *DataParallel) World() int { return d.cfg.NGPUs }

// UniqueRanks implements workload.SelectiveLauncher: pure data
// parallelism means every rank is identical.
func (d *DataParallel) UniqueRanks() []int { return []int{0} }

// RankClasses implements workload.ClassHinter: one class holding all
// ranks — the verified counterpart of UniqueRanks, usable under
// dynamic dedup (vision and LLM DP jobs alike).
func (d *DataParallel) RankClasses() [][]int {
	class := make([]int, d.cfg.NGPUs)
	for i := range class {
		class[i] = i
	}
	return [][]int{class}
}

// Fingerprint implements workload.Fingerprinter: the model geometry
// plus every knob that shapes the emitted trace.
func (d *DataParallel) Fingerprint() string {
	c := d.cfg
	model := ""
	if c.Transformer != nil {
		t := c.Transformer
		model = fmt.Sprintf("tfm:%s,L%d,h%d,heads%d,ffn%d,seq%d,vocab%d,exp%d,topk%d,gated%t",
			t.Name, t.Layers, t.Hidden, t.Heads, t.FFN, t.Seq, t.Vocab,
			t.NumExperts, t.ExpertTopK(), t.GatedMLP)
	} else if c.CNN != nil {
		n := c.CNN
		model = fmt.Sprintf("cnn:%s,in%d,stem%+v,classes%d,fc%d", n.Name, n.Input, n.Stem, n.Classes, n.FCHidden)
		for _, s := range n.Stages {
			model += fmt.Sprintf(",st%+v", s)
		}
	}
	return fmt.Sprintf("dataparallel|%s|ngpus%d,gb%d,ga%d,%s,offload%t,compile%t,%s,it%d",
		model, c.NGPUs, c.GlobalBatch, c.GradAccum, c.Strategy, c.ActOffload, c.Compile,
		c.DType, c.Iterations)
}

// CommGroups implements workload.GroupAware.
func (d *DataParallel) CommGroups() map[uint64][]int {
	if d.cfg.NGPUs <= 1 {
		return nil
	}
	group := make([]int, d.cfg.NGPUs)
	for i := range group {
		group[i] = i
	}
	return map[uint64][]int{uint64(nccl.UniqueIDFor("dp", group)): group}
}

// Run implements workload.Workload.
func (d *DataParallel) Run(rank int, dev cuda.Device) error {
	if rank < 0 || rank >= d.cfg.NGPUs {
		return fmt.Errorf("dataparallel: rank %d out of range [0,%d)", rank, d.cfg.NGPUs)
	}
	r := &dpRunner{cfg: d.cfg, rank: rank, dev: dev}
	return r.run()
}

// dpBlock is one gradient bucket / sharding unit: a transformer layer
// or a CNN stage.
type dpBlock struct {
	name     string
	params   int64
	actBytes int64
	emitFwd  func()
	emitBwd  func()
}

type dpRunner struct {
	cfg  DataParallelConfig
	rank int
	dev  cuda.Device
	err  error

	blas    *cublas.Handle
	dnn     *cudnn.Handle
	compute cuda.Stream
	comm    cuda.Stream
	offload cuda.Stream
	dpc     *nccl.Communicator

	// mr provides the transformer kernel emission (TP=1 path of the
	// Megatron runner, reused so feature shapes match exactly).
	mr *megatronRunner

	es     int64
	mbs    int
	blocks []dpBlock
	params int64
	iter   int
}

func (r *dpRunner) check(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *dpRunner) malloc(bytes int64) cuda.DevicePtr {
	if r.err != nil {
		return 0
	}
	if bytes <= 0 {
		bytes = 1
	}
	p, err := r.dev.Malloc(bytes)
	r.check(err)
	return p
}

func (r *dpRunner) free(p cuda.DevicePtr) {
	if r.err != nil || p == 0 {
		return
	}
	r.check(r.dev.Free(p))
}

func (r *dpRunner) run() error {
	r.setup()
	for r.iter = 0; r.iter < r.cfg.Iterations && r.err == nil; r.iter++ {
		r.iteration()
	}
	if r.err != nil {
		return fmt.Errorf("dataparallel rank %d: %w", r.rank, r.err)
	}
	return nil
}

func (r *dpRunner) setup() {
	cfg := r.cfg
	r.es = 2
	if cfg.DType == "fp32" {
		r.es = 4
	}
	r.mbs = cfg.MicroBatchSize()
	var err error
	r.blas, err = cublas.Create(r.dev)
	r.check(err)
	if r.err != nil {
		return
	}
	r.check(r.blas.SetMathMode(cublas.TensorOpMath))
	r.compute = cuda.DefaultStream
	r.comm, err = r.dev.StreamCreate()
	r.check(err)
	if cfg.ActOffload {
		r.offload, err = r.dev.StreamCreate()
		r.check(err)
	}
	if cfg.NGPUs > 1 {
		group := make([]int, cfg.NGPUs)
		for i := range group {
			group[i] = i
		}
		r.dpc, err = nccl.CommInitRank(r.dev, cfg.NGPUs, r.rank, nccl.UniqueIDFor("dp", group))
		r.check(err)
	}

	if cfg.Transformer != nil {
		r.setupTransformer()
	} else {
		var derr error
		r.dnn, derr = cudnn.Create(r.dev)
		r.check(derr)
		r.setupCNN()
	}
	for _, b := range r.blocks {
		r.params += b.params
	}

	// Persistent memory: parameters (sharded for ZeRO-3/FSDP),
	// gradients (sharded for ZeRO-2+), optimizer state (sharded for
	// any ZeRO stage).
	dp := int64(cfg.NGPUs)
	w := r.params * r.es
	if cfg.Strategy.shardsParams() && dp > 1 {
		w = (w + dp - 1) / dp
	}
	g := r.params * 4
	if cfg.Strategy.shardsGrads() && dp > 1 {
		g = (g + dp - 1) / dp
	}
	optPerParam := int64(12) // Adam
	if cfg.CNN != nil {
		optPerParam = 8 // SGD momentum + fp32 master
	}
	o := r.params * optPerParam
	if cfg.Strategy.shardsOpt() && dp > 1 {
		o = (o + dp - 1) / dp
	}
	r.malloc(w)
	r.malloc(g)
	r.malloc(o)
	if r.err == nil {
		_, _, err = r.dev.MemGetInfo()
		r.check(err)
	}
	r.check(r.dev.Mark("setup_end"))
}

// setupTransformer builds per-layer blocks that reuse the Megatron
// emitter with TP=PP=1.
func (r *dpRunner) setupTransformer() {
	cfg := r.cfg
	mcfg := MegatronConfig{
		Model:        *cfg.Transformer,
		NGPUs:        1,
		GlobalBatch:  r.mbs,
		TP:           1,
		PP:           1,
		MicroBatches: 1,
		DType:        cfg.DType,
	}.withDefaults()
	r.mr = &megatronRunner{
		cfg:     mcfg,
		rank:    0,
		dev:     r.dev,
		blas:    r.blas,
		compute: r.compute,
		co:      rankCoords{},
		dp:      1,
		mbs:     r.mbs,
		d:       1,
		es:      r.es,
	}
	mdl := cfg.Transformer
	h := int64(mdl.Hidden)
	f := int64(mdl.FFN)
	mlpMats := int64(2)
	if mdl.GatedMLP {
		mlpMats = 3
	}
	layerParams := 4*h*h + mlpMats*h*f + 4*h
	s := float64(mdl.Seq)
	n := float64(r.mbs) * s
	a := float64(mdl.Heads)
	actPerLayer := int64(n*float64(h)*34 + 5*a*s*n)

	embParams := int64(mdl.Vocab)*h + int64(mdl.Seq)*h
	r.blocks = append(r.blocks, dpBlock{
		name:     "embedding",
		params:   embParams,
		actBytes: int64(n) * h * r.es,
		emitFwd:  func() { r.syncMR(); r.mr.emitEmbeddingForward() },
		emitBwd:  func() { r.syncMR(); r.mr.emitEmbeddingBackward() },
	})
	for l := 0; l < mdl.Layers; l++ {
		r.blocks = append(r.blocks, dpBlock{
			name:     fmt.Sprintf("layer%d", l),
			params:   layerParams,
			actBytes: actPerLayer,
			emitFwd:  func() { r.syncMR(); r.mr.emitLayerForward() },
			emitBwd:  func() { r.syncMR(); r.mr.emitLayerBackward() },
		})
	}
	r.blocks = append(r.blocks, dpBlock{
		name:     "head",
		params:   0, // tied with embedding
		actBytes: int64(n) * int64(mdl.Vocab) * r.es,
		emitFwd:  func() { r.syncMR(); r.mr.emitHeadForward() },
		emitBwd:  func() { r.syncMR(); r.mr.emitHeadBackward() },
	})
}

// syncMR propagates sticky errors between the two runner shells.
func (r *dpRunner) syncMR() {
	if r.mr.err == nil && r.err != nil {
		r.mr.err = r.err
	}
}

func (r *dpRunner) harvestMR() {
	if r.mr != nil {
		r.check(r.mr.err)
	}
}

func (r *dpRunner) iteration() {
	cfg := r.cfg
	dp := int64(cfg.NGPUs)
	gathered := make([]cuda.DevicePtr, len(r.blocks))
	acts := make([]cuda.DevicePtr, len(r.blocks))
	hostStaged := make([]bool, len(r.blocks))

	for mb := 0; mb < cfg.GradAccum && r.err == nil; mb++ {
		last := mb == cfg.GradAccum-1
		// Input batch: host-to-device.
		r.check(r.dev.MemcpyAsync(0, 0, r.inputBytes(), cuda.MemcpyHostToDevice, r.compute))

		for bi := range r.blocks {
			b := &r.blocks[bi]
			if cfg.Strategy.shardsParams() && r.dpc != nil && b.params > 0 {
				// Materialize the full block parameters.
				gathered[bi] = r.malloc(b.params * r.es)
				r.check(r.dpc.AllGather(b.params*r.es/dp, r.compute))
			}
			acts[bi] = r.malloc(b.actBytes)
			b.emitFwd()
			r.harvestMR()
			if cfg.ActOffload {
				// Stage activations to host on the offload stream.
				r.eventHandoff(r.compute, r.offload)
				r.check(r.dev.MemcpyAsync(0, acts[bi], b.actBytes, cuda.MemcpyDeviceToHost, r.offload))
				r.free(acts[bi])
				acts[bi] = 0
				hostStaged[bi] = true
			}
			if gathered[bi] != 0 {
				r.free(gathered[bi])
				gathered[bi] = 0
			}
		}

		for bi := len(r.blocks) - 1; bi >= 0 && r.err == nil; bi-- {
			b := &r.blocks[bi]
			if hostStaged[bi] {
				acts[bi] = r.malloc(b.actBytes)
				r.check(r.dev.MemcpyAsync(acts[bi], 0, b.actBytes, cuda.MemcpyHostToDevice, r.compute))
				hostStaged[bi] = false
			}
			if cfg.Strategy.shardsParams() && r.dpc != nil && b.params > 0 {
				gathered[bi] = r.malloc(b.params * r.es)
				r.check(r.dpc.AllGather(b.params*r.es/dp, r.compute))
			}
			b.emitBwd()
			r.harvestMR()
			r.free(acts[bi])
			acts[bi] = 0
			if gathered[bi] != 0 {
				r.free(gathered[bi])
				gathered[bi] = 0
			}
			if r.dpc != nil && b.params > 0 && (last || cfg.Strategy.shardsGrads()) {
				// Gradient bucket synchronization, overlapped on the
				// comm stream. ZeRO-2+ reduces every microbatch
				// (sharded accumulation); DDP/ZeRO-1 only after the
				// last.
				r.eventHandoff(r.compute, r.comm)
				if cfg.Strategy.shardsGrads() {
					r.check(r.dpc.ReduceScatter(b.params*4/dp, r.comm))
				} else {
					r.check(r.dpc.AllReduce(b.params*4, r.comm))
				}
			}
		}
	}
	if r.dpc != nil {
		// Join the reduction stream before stepping.
		r.eventHandoff(r.comm, r.compute)
	}
	r.optimizerStep()
	r.check(r.dev.DeviceSynchronize())
	r.check(r.dev.Mark("iter_end"))
}

// eventHandoff makes dst wait for work issued so far on src.
func (r *dpRunner) eventHandoff(src, dst cuda.Stream) {
	if r.err != nil {
		return
	}
	ev, err := r.dev.EventCreate()
	r.check(err)
	r.check(r.dev.EventRecord(ev, src))
	r.check(r.dev.StreamWaitEvent(dst, ev))
}

func (r *dpRunner) inputBytes() int64 {
	if r.cfg.Transformer != nil {
		return int64(r.mbs) * int64(r.cfg.Transformer.Seq) * 8
	}
	in := r.cfg.CNN.Input
	return int64(r.mbs) * 3 * int64(in) * int64(in) * 4
}

func (r *dpRunner) optimizerStep() {
	cfg := r.cfg
	dp := int64(cfg.NGPUs)
	stepParams := r.params
	if cfg.Strategy.shardsOpt() && dp > 1 {
		stepParams = (stepParams + dp - 1) / dp
	}
	r.kernel("reduce_kernel", []int{int(stepParams)}, stepParams*4, stepParams, "fp32")
	if r.dpc != nil {
		r.check(r.dpc.AllReduce(4, r.compute))
	}
	const chunk = 48 << 20
	for left := stepParams; left > 0; left -= chunk {
		n := left
		if n > chunk {
			n = chunk
		}
		r.kernel("multi_tensor_apply_kernel", []int{int(n)}, n*16, n*8, "fp32")
	}
	if cfg.Strategy.shardsOpt() && !cfg.Strategy.shardsParams() && r.dpc != nil {
		// ZeRO-1/2 re-broadcast updated parameters.
		r.check(r.dpc.AllGather(r.params*r.es/dp, r.compute))
	}
}

func (r *dpRunner) kernel(name string, dims []int, bytes, flops int64, dtype string) {
	if r.err != nil {
		return
	}
	r.check(r.dev.LaunchKernel(cuda.KernelDesc{
		Name:  name,
		Dims:  dims,
		Bytes: bytes,
		FLOPs: flops,
		DType: dtype,
	}, r.compute))
}
