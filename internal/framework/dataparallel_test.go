package framework

import (
	"testing"

	"maya/internal/emulator"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/trace"
)

func runDP(t *testing.T, cfg DataParallelConfig) *trace.Worker {
	t.Helper()
	w, err := NewDataParallel(cfg)
	if err != nil {
		t.Fatalf("NewDataParallel: %v", err)
	}
	em := emulator.New(emulator.Config{
		Rank: 0, World: w.World(), GPU: hardware.A40(), Host: hardware.EpycHost(),
	})
	if err := w.Run(0, em); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return em.Trace()
}

func tinyCNN() *models.CNN {
	c := models.CNN{
		Name:  "tinycnn",
		Input: 64,
		Stem:  models.ConvStage{In: 3, Out: 16, Kernel: 3, Stride: 2, Repeat: 1},
		Stages: []models.ConvStage{
			{In: 16, Out: 32, Kernel: 3, Stride: 2, Repeat: 2},
			{In: 32, Out: 64, Kernel: 3, Stride: 2, Repeat: 2, Bottleneck: true},
		},
		Classes: 10,
	}
	return &c
}

func tinyTransformer() *models.Transformer {
	m := models.Transformer{Name: "tinyT", Layers: 2, Hidden: 256, Heads: 4, FFN: 1024, Seq: 128, Vocab: 1600}
	return &m
}

func TestValidationRequiresExactlyOneModel(t *testing.T) {
	if _, err := NewDataParallel(DataParallelConfig{NGPUs: 1, GlobalBatch: 4}); err == nil {
		t.Fatal("no model accepted")
	}
	if _, err := NewDataParallel(DataParallelConfig{
		Transformer: tinyTransformer(), CNN: tinyCNN(), NGPUs: 1, GlobalBatch: 4,
	}); err == nil {
		t.Fatal("two models accepted")
	}
}

func TestDDPAllReducesOncePerBucket(t *testing.T) {
	tr := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 4, GlobalBatch: 16})
	st := tr.Stats()
	// stem + 2 stages + head = 4 buckets, plus the grad-norm scalar.
	if st.ByName["ncclAllReduce"] != 4+1 {
		t.Fatalf("allreduces = %d, byName %v", st.ByName["ncclAllReduce"], st.ByName)
	}
	if st.ByName["ncclReduceScatter"] != 0 {
		t.Fatal("DDP must not reduce-scatter")
	}
}

func TestZeRO3GathersParamsEachPass(t *testing.T) {
	tr := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 4, GlobalBatch: 16, Strategy: ZeRO3})
	st := tr.Stats()
	// Forward + backward gather per parametered block (4 blocks).
	if st.ByName["ncclAllGather"] < 8 {
		t.Fatalf("zero3 allgathers = %d, want >= 8 (%v)", st.ByName["ncclAllGather"], st.ByName)
	}
	if st.ByName["ncclReduceScatter"] < 4 {
		t.Fatalf("zero3 reduce-scatters = %d", st.ByName["ncclReduceScatter"])
	}
}

func TestActOffloadEmitsTransfers(t *testing.T) {
	plain := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 2, GlobalBatch: 8}).Stats()
	off := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 2, GlobalBatch: 8, ActOffload: true}).Stats()
	if off.ByName["MemcpyDtoH"] <= plain.ByName["MemcpyDtoH"] {
		t.Fatalf("offload DtoH = %d vs plain %d", off.ByName["MemcpyDtoH"], plain.ByName["MemcpyDtoH"])
	}
	if off.ByName["MemcpyHtoD"] <= plain.ByName["MemcpyHtoD"] {
		t.Fatalf("offload HtoD = %d vs plain %d", off.ByName["MemcpyHtoD"], plain.ByName["MemcpyHtoD"])
	}
}

func TestCompileFusesPointwiseIntoTriton(t *testing.T) {
	plain := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 1, GlobalBatch: 8}).Stats()
	comp := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 1, GlobalBatch: 8, Compile: true}).Stats()
	if comp.ByName["triton"] == 0 {
		t.Fatal("compile produced no triton kernels")
	}
	if plain.ByName["triton"] != 0 {
		t.Fatal("eager mode produced triton kernels")
	}
	if comp.ByName["batchnorm_fwd"] != 0 {
		t.Fatal("compile left unfused batchnorm")
	}
	if comp.ByName["cublasLtMatmul"] == 0 || plain.ByName["cublasLtMatmul"] != 0 {
		t.Fatalf("dense lowering: compile %d, eager %d",
			comp.ByName["cublasLtMatmul"], plain.ByName["cublasLtMatmul"])
	}
	if comp.Kernels >= plain.Kernels {
		t.Fatalf("fusion should reduce kernel count: %d vs %d", comp.Kernels, plain.Kernels)
	}
}

func TestShardingReducesPersistentMemory(t *testing.T) {
	peak := func(s DPStrategy) int64 {
		return runDP(t, DataParallelConfig{
			Transformer: tinyTransformer(), NGPUs: 4, GlobalBatch: 8, Strategy: s,
		}).PeakBytes
	}
	ddp := peak(DDP)
	z1 := peak(ZeRO1)
	z3 := peak(ZeRO3)
	if !(z1 < ddp) {
		t.Fatalf("zero1 peak %d !< ddp %d", z1, ddp)
	}
	if !(z3 < z1) {
		t.Fatalf("zero3 peak %d !< zero1 %d", z3, z1)
	}
}

func TestTransformerDPEmitsMegatronKernels(t *testing.T) {
	st := runDP(t, DataParallelConfig{Transformer: tinyTransformer(), NGPUs: 1, GlobalBatch: 4}).Stats()
	for _, name := range []string{"cublasGemmEx", "cuApplyLayerNorm", "masked_softmax_warp_forward", "indexSelectLargeIndex", "multi_tensor_apply_kernel"} {
		if st.ByName[name] == 0 {
			t.Errorf("missing kernel %s", name)
		}
	}
}

func TestGradAccumMultipliesWork(t *testing.T) {
	one := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 1, GlobalBatch: 8, GradAccum: 1}).Stats()
	four := runDP(t, DataParallelConfig{CNN: tinyCNN(), NGPUs: 1, GlobalBatch: 8, GradAccum: 4}).Stats()
	if four.Kernels < 3*one.Kernels {
		t.Fatalf("grad accum kernels %d vs %d", four.Kernels, one.Kernels)
	}
}
