package framework

import (
	"context"
	"testing"

	"maya/internal/collator"
	"maya/internal/trace"
)

func TestDualPipeScheduleStructure(t *testing.T) {
	const pp, m = 4, 8
	sched := BuildDualPipeSchedule(pp, m)
	d := 2 * pp
	seen := make(map[Action]bool)
	for p, actions := range sched {
		for _, a := range actions {
			owner := a.VStage
			if owner >= pp {
				owner = 2*pp - 1 - a.VStage
			}
			if owner != p {
				t.Fatalf("rank %d runs vstage %d (owner %d)", p, a.VStage, owner)
			}
			if seen[a] {
				t.Fatalf("duplicate %v", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != 2*d*m {
		t.Fatalf("actions = %d, want %d", len(seen), 2*d*m)
	}
	// Rank 0 hosts both the first and last virtual stage — DualPipe's
	// defining property.
	hasFirst, hasLast := false, false
	for _, a := range sched[0] {
		if a.VStage == 0 {
			hasFirst = true
		}
		if a.VStage == d-1 {
			hasLast = true
		}
	}
	if !hasFirst || !hasLast {
		t.Fatal("rank 0 must own both pipeline ends under DualPipe")
	}
}

func TestDualPipeValidation(t *testing.T) {
	base := MegatronConfig{Model: smallModel(), NGPUs: 4, GlobalBatch: 16, TP: 1, PP: 2, MicroBatches: 4, DualPipe: true}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid DualPipe config rejected: %v", err)
	}
	noPP := base
	noPP.PP, noPP.TP = 1, 2
	if noPP.Validate() == nil {
		t.Fatal("DualPipe without PP accepted")
	}
	both := base
	both.VirtualStages = 2
	if both.Validate() == nil {
		t.Fatal("DualPipe + interleaving accepted")
	}
}

func TestDualPipeWorkloadRunsAndCollates(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{
		Model: smallModel(), NGPUs: 2, GlobalBatch: 8, TP: 1, PP: 2, MicroBatches: 4, DualPipe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*trace.Worker
	for r := 0; r < 2; r++ {
		workers = append(workers, emulate(t, m, r))
	}
	if _, err := collator.Collate(context.Background(), workers, collator.Options{Validate: true}); err != nil {
		t.Fatalf("collation failed: %v", err)
	}
	// Rank 0 carries embedding AND head kernels (both pipeline ends).
	st := workers[0].Stats()
	if st.ByName["indexSelectLargeIndex"] == 0 {
		t.Error("rank 0 missing embedding kernels")
	}
	if st.ByName["nll_loss_forward_reduce_cuda_kernel_2d"] == 0 {
		t.Error("rank 0 missing loss kernels")
	}
}

func TestDualPipeBubbleCompetitiveWithInterleaving(t *testing.T) {
	// At equal chunk counts (2*pp virtual stages) the folded DualPipe
	// assignment must schedule as efficiently as standard
	// interleaving. (Full DualPipe also injects microbatches from
	// both pipeline ends, a further gain this unidirectional variant
	// does not model; what Maya demonstrates is that a *new schedule*
	// needs no modeling changes at all.)
	inter := replayMakespan(BuildPipelineSchedule(4, 2, 8), 4, 2, 8)
	dual := replayMakespan(BuildDualPipeSchedule(4, 8), 4, 2, 8)
	if dual > inter+inter/10 {
		t.Fatalf("DualPipe makespan %d much worse than interleaved %d", dual, inter)
	}
}
