package framework

// Kernel emission for transformer layers: the per-layer call
// sequences PyTorch + Megatron-LM produce, with the kernel names the
// paper's Appendix B profiles (cuBLAS GEMMs, apex layernorm and
// softmax kernels, fused dropout, embedding segment reductions).

// tokens returns the microbatch token count.
func (r *megatronRunner) tokens() int {
	return r.mbs * r.cfg.Model.Seq
}

// spTokens returns the token count sequence-parallel regions see.
func (r *megatronRunner) spTokens() int {
	if r.cfg.SeqParallel {
		return r.tokens() / r.cfg.TP
	}
	return r.tokens()
}

// gemm emits a mixed-precision GEMM through cuBLAS.
func (r *megatronRunner) gemm(m, n, k int) {
	if r.err != nil {
		return
	}
	r.check(r.blas.GemmEx(m, n, k, r.cfg.DType))
}

func (r *megatronRunner) batchedGemm(batch, m, n, k int) {
	if r.err != nil {
		return
	}
	r.check(r.blas.SgemmStridedBatched(batch, m, n, k, r.cfg.DType))
}

// layerNorm emits the apex fused layernorm over n tokens.
func (r *megatronRunner) layerNorm(n int) {
	h := r.cfg.Model.Hidden
	r.kernel("cuApplyLayerNorm", []int{n, h}, 2*r.es*int64(n)*int64(h), 8*int64(n)*int64(h), r.cfg.DType)
}

// layerNormBackward emits the apex layernorm gradient kernels.
func (r *megatronRunner) layerNormBackward(n int) {
	h := r.cfg.Model.Hidden
	nh := int64(n) * int64(h)
	r.kernel("cuComputeGradInput", []int{n, h}, 3*r.es*nh, 10*nh, r.cfg.DType)
	r.kernel("cuComputePartGradGammaBeta", []int{n, h}, 2*r.es*nh, 4*nh, r.cfg.DType)
	r.kernel("cuComputeGradGammaBeta", []int{h, 64}, r.es*int64(h)*64, int64(h)*64, r.cfg.DType)
}

func (r *megatronRunner) dropout(elems int64) {
	r.kernel("fused_dropout_kernel_vec", []int{int(elems)}, r.es*elems*5/2, elems, r.cfg.DType)
}

func (r *megatronRunner) residualAdd(elems int64) {
	r.kernel("vectorized_elementwise_kernel", []int{int(elems)}, 3*r.es*elems, elems, r.cfg.DType)
}

// tpForwardSync is the tensor-parallel synchronization after a
// row-parallel linear: all-reduce classically, reduce-scatter under
// sequence parallelism.
func (r *megatronRunner) tpForwardSync() {
	if r.tpc == nil {
		return
	}
	full := int64(r.tokens()) * int64(r.cfg.Model.Hidden) * r.es
	if r.cfg.SeqParallel {
		r.check(r.tpc.ReduceScatter(full/int64(r.cfg.TP), r.compute))
	} else {
		r.check(r.tpc.AllReduce(full, r.compute))
	}
}

// tpGatherInput is the all-gather that reassembles sequence-sharded
// activations before a column-parallel linear (sequence parallelism
// only).
func (r *megatronRunner) tpGatherInput() {
	if r.tpc == nil || !r.cfg.SeqParallel {
		return
	}
	shard := int64(r.spTokens()) * int64(r.cfg.Model.Hidden) * r.es
	r.check(r.tpc.AllGather(shard, r.compute))
}

// tpBackwardSync propagates input gradients across the TP group
// during backward.
func (r *megatronRunner) tpBackwardSync() {
	if r.tpc == nil {
		return
	}
	full := int64(r.tokens()) * int64(r.cfg.Model.Hidden) * r.es
	if r.cfg.SeqParallel {
		// Backward of (all-gather, reduce-scatter) is (reduce-scatter,
		// all-gather).
		r.check(r.tpc.ReduceScatter(full/int64(r.cfg.TP), r.compute))
	} else {
		r.check(r.tpc.AllReduce(full, r.compute))
	}
}

func (r *megatronRunner) tpGatherBackward() {
	if r.tpc == nil || !r.cfg.SeqParallel {
		return
	}
	shard := int64(r.spTokens()) * int64(r.cfg.Model.Hidden) * r.es
	r.check(r.tpc.AllGather(shard, r.compute))
}

// emitLayerForward issues one transformer layer's forward kernels.
func (r *megatronRunner) emitLayerForward() {
	cfg := r.cfg
	mdl := cfg.Model
	t := cfg.TP
	n := r.tokens()
	nSP := r.spTokens()
	s := mdl.Seq
	h := mdl.Hidden
	f := mdl.FFN
	heads := mdl.Heads / t
	headDim := h / mdl.Heads
	attnBatch := r.mbs * heads
	scoreElems := int64(attnBatch) * int64(s) * int64(s)

	// --- attention block ---
	r.layerNorm(nSP)
	r.tpGatherInput()
	r.gemm(n, 3*h/t, h) // fused QKV projection
	r.kernel("elementwise_kernel", []int{n, 3 * h / t}, 2*r.es*int64(n)*int64(3*h/t), 0, cfg.DType)
	r.batchedGemm(attnBatch, s, s, headDim) // scores = Q K^T
	r.kernel("masked_softmax_warp_forward", []int{attnBatch, s, s}, 2*r.es*scoreElems, 6*scoreElems, cfg.DType)
	r.dropout(scoreElems)
	r.batchedGemm(attnBatch, s, headDim, s) // context = P V
	r.kernel("unrolled_elementwise_kernel", []int{n, h / t}, 2*r.es*int64(n)*int64(h/t), 0, cfg.DType)
	r.gemm(n, h, h/t) // output projection (row parallel)
	r.tpForwardSync()
	r.dropout(int64(nSP) * int64(h))
	r.residualAdd(int64(nSP) * int64(h))

	// --- MLP block (dense or mixture-of-experts) ---
	r.layerNorm(nSP)
	r.tpGatherInput()
	if mdl.NumExperts > 0 {
		r.emitMoEForward()
	} else {
		r.gemm(n, f/t, h) // fc1 (column parallel)
		if mdl.GatedMLP {
			r.gemm(n, f/t, h) // gate projection
			r.kernel("vectorized_elementwise_kernel", []int{n, f / t}, 3*r.es*int64(n)*int64(f/t), int64(n)*int64(f/t), cfg.DType)
		}
		r.kernel("vectorized_elementwise_kernel", []int{n, f / t}, 2*r.es*int64(n)*int64(f/t), 8*int64(n)*int64(f/t), cfg.DType) // activation
		r.gemm(n, h, f/t)                                                                                                        // fc2 (row parallel)
		r.tpForwardSync()
	}
	r.dropout(int64(nSP) * int64(h))
	r.residualAdd(int64(nSP) * int64(h))
}

// emitLayerBackward issues one transformer layer's backward kernels:
// two GEMMs (data and weight gradients) per forward GEMM, the apex
// layernorm/softmax gradient kernels and the pointwise backwards.
func (r *megatronRunner) emitLayerBackward() {
	cfg := r.cfg
	mdl := cfg.Model
	t := cfg.TP
	n := r.tokens()
	nSP := r.spTokens()
	s := mdl.Seq
	h := mdl.Hidden
	f := mdl.FFN
	heads := mdl.Heads / t
	headDim := h / mdl.Heads
	attnBatch := r.mbs * heads
	scoreElems := int64(attnBatch) * int64(s) * int64(s)

	// --- MLP block backward (dense or mixture-of-experts) ---
	r.residualAdd(int64(nSP) * int64(h))
	r.dropout(int64(nSP) * int64(h))
	r.tpGatherBackward()
	if mdl.NumExperts > 0 {
		r.emitMoEBackward()
	} else {
		r.gemm(n, f/t, h)                                                                                                         // fc2 dgrad
		r.gemm(h, f/t, n)                                                                                                         // fc2 wgrad
		r.kernel("vectorized_elementwise_kernel", []int{n, f / t}, 3*r.es*int64(n)*int64(f/t), 10*int64(n)*int64(f/t), cfg.DType) // activation bwd
		if mdl.GatedMLP {
			r.gemm(n, h, f/t)
			r.gemm(h, f/t, n)
		}
		r.gemm(n, h, f/t) // fc1 dgrad
		r.gemm(h, f/t, n) // fc1 wgrad
		r.tpBackwardSync()
	}
	r.layerNormBackward(nSP)

	// --- attention block backward ---
	r.residualAdd(int64(nSP) * int64(h))
	r.dropout(int64(nSP) * int64(h))
	r.tpGatherBackward()
	r.gemm(n, h/t, h)                       // proj dgrad
	r.gemm(h, h/t, n)                       // proj wgrad
	r.batchedGemm(attnBatch, s, s, headDim) // dP = dO V^T
	r.batchedGemm(attnBatch, s, headDim, s) // dV = P^T dO
	r.kernel("masked_softmax_warp_backward", []int{attnBatch, s, s}, 3*r.es*scoreElems, 8*scoreElems, cfg.DType)
	r.dropout(scoreElems)
	r.batchedGemm(attnBatch, s, headDim, s) // dQ
	r.batchedGemm(attnBatch, headDim, s, s) // dK
	r.kernel("elementwise_kernel", []int{n, 3 * h / t}, 2*r.es*int64(n)*int64(3*h/t), 0, cfg.DType)
	r.gemm(n, h, 3*h/t) // qkv dgrad
	r.gemm(h, 3*h/t, n) // qkv wgrad
	r.tpBackwardSync()
	r.layerNormBackward(nSP)
}

// emitEmbeddingForward is the first pipeline stage's token and
// position embedding lookup.
func (r *megatronRunner) emitEmbeddingForward() {
	mdl := r.cfg.Model
	n := r.tokens()
	h := mdl.Hidden
	r.kernel("indexSelectLargeIndex", []int{n, h}, r.es*int64(n)*int64(h)+8*int64(n), 0, r.cfg.DType)
	if r.tpc != nil {
		// Vocab-parallel embedding: ranks zero rows they do not own,
		// then all-reduce the partial embeddings.
		r.check(r.tpc.AllReduce(int64(n)*int64(h)*r.es, r.compute))
	}
	r.kernel("vectorized_elementwise_kernel", []int{n, h}, 3*r.es*int64(n)*int64(h), int64(n)*int64(h), r.cfg.DType)
	r.dropout(int64(n) * int64(h))
}

// emitEmbeddingBackward is PyTorch's sparse embedding gradient: sort
// indices, segment the duplicates, accumulate — the radix-sort and
// segment-reduction kernel chain of Appendix B.
func (r *megatronRunner) emitEmbeddingBackward() {
	mdl := r.cfg.Model
	n := int64(r.tokens())
	h := int64(mdl.Hidden)
	dt := r.cfg.DType
	r.kernel("write_num_of_segments", []int{int(n)}, 8*n, 0, dt)
	r.kernel("RadixSortHistogramKernel", []int{int(n)}, 8*n, 2*n, dt)
	r.kernel("RadixSortExclusiveSumKernel", []int{int(n)}, 8*n, n, dt)
	r.kernel("RadixSortOnesweepKernel", []int{int(n)}, 16*n, 4*n, dt)
	r.kernel("at_cuda_detailcubDeviceScanInitKernel", []int{int(n)}, 4*n, 0, dt)
	r.kernel("at_cuda_detailcubDeviceScanKernel", []int{int(n)}, 8*n, 2*n, dt)
	r.kernel("compute_num_of_partial_segments", []int{int(n)}, 8*n, n, dt)
	r.kernel("krn_partials_per_segment", []int{int(n)}, 8*n, n, dt)
	r.kernel("krn_partial_segment_offset", []int{int(n)}, 8*n, n, dt)
	r.kernel("compute_grad_weight", []int{int(n), int(h)}, r.es*n*h+12*n, 2*n*h, dt)
	r.kernel("sum_and_scatter", []int{int(n), int(h)}, r.es*n*h+12*n, n*h, dt)
}

// emitHeadForward is the last stage's final layernorm, vocab-parallel
// LM head and cross-entropy loss.
func (r *megatronRunner) emitHeadForward() {
	cfg := r.cfg
	mdl := cfg.Model
	n := r.tokens()
	nSP := r.spTokens()
	v := mdl.Vocab / cfg.TP
	r.layerNorm(nSP)
	r.tpGatherInput()
	r.gemm(n, v, mdl.Hidden)
	logits := int64(n) * int64(v)
	r.kernel("softmax_warp_forward", []int{n, v}, 2*r.es*logits, 5*logits, cfg.DType)
	if r.tpc != nil {
		// Vocab-parallel loss: max and sum-exp reductions across TP.
		r.check(r.tpc.AllReduce(4*int64(n), r.compute))
		r.check(r.tpc.AllReduce(4*int64(n), r.compute))
	}
	r.kernel("nll_loss_forward_reduce_cuda_kernel_2d", []int{n}, 8*int64(n), 2*int64(n), cfg.DType)
}

// emitHeadBackward mirrors the head: loss gradient, head GEMM pair.
func (r *megatronRunner) emitHeadBackward() {
	cfg := r.cfg
	mdl := cfg.Model
	n := r.tokens()
	nSP := r.spTokens()
	v := mdl.Vocab / cfg.TP
	logits := int64(n) * int64(v)
	r.kernel("nll_loss_backward_reduce_cuda_kernel_2d", []int{n}, 8*int64(n), 2*int64(n), cfg.DType)
	r.kernel("softmax_warp_backward", []int{n, v}, 3*r.es*logits, 6*logits, cfg.DType)
	r.gemm(n, mdl.Hidden, v) // head dgrad
	r.gemm(mdl.Hidden, v, n) // head wgrad
	r.tpBackwardSync()
	r.layerNormBackward(nSP)
}
