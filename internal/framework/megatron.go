// Package framework contains the training programs Maya models: a
// Megatron-LM-style engine (3D parallelism, 1F1B and interleaved
// pipeline schedules, sequence parallelism, activation recomputation,
// gradient accumulation, distributed optimizer), DeepSpeed-style ZeRO
// with activation offload, FSDP, DDP, vision training and a
// torch.compile-style fusion mode.
//
// Everything in this package is *user code* from Maya's point of
// view: it only talks to the cuda/cublas/cudnn/nccl narrow waist and
// runs unmodified under the emulator, the profiler or the synthetic
// silicon. The kernel names, shapes, stream usage and collective
// patterns reproduce what the real frameworks emit (the kernel
// inventory of the paper's Appendix B).
package framework

import (
	"fmt"

	"maya/internal/cuda"
	"maya/internal/models"
	"maya/internal/nccl"
	"maya/internal/workload"
)

// MegatronConfig is a Megatron-LM training recipe: the paper's Table
// 5 knobs plus the model, batch and cluster-size inputs.
type MegatronConfig struct {
	Model models.Transformer
	// NGPUs is the world size; DP = NGPUs / (TP*PP).
	NGPUs int
	// GlobalBatch is the total sequences per iteration.
	GlobalBatch int
	// TP is the tensor-parallel degree.
	TP int
	// PP is the pipeline-parallel degree.
	PP int
	// MicroBatches is the number of microbatches each data-parallel
	// replica splits its share into (gradient accumulation when PP=1).
	MicroBatches int
	// VirtualStages interleaves the pipeline: each stage owns this
	// many model chunks (1 = classic 1F1B).
	VirtualStages int
	// DualPipe selects the DeepSeek bidirectional pipeline schedule:
	// the model splits into 2*PP chunks and rank p hosts stages p and
	// 2*PP-1-p, so activations flow from both ends and the bubble
	// shrinks. Mutually exclusive with VirtualStages>1. This is the
	// paper's §3.3 example of an optimization other modeling systems
	// must be rewritten for; under emulation it is just another
	// workload.
	DualPipe bool
	// SeqParallel shards layernorm/dropout activations along the
	// sequence dimension across the TP group.
	SeqParallel bool
	// ActRecompute recomputes layer forwards during backward, storing
	// only layer inputs.
	ActRecompute bool
	// DistOptimizer shards optimizer state across the DP group
	// (ZeRO-1 style reduce-scatter + all-gather).
	DistOptimizer bool
	// DType is the training precision (default bf16).
	DType string
	// Iterations is the number of training iterations to run
	// (default 1; each Megatron iteration includes its own pipeline
	// fill and drain, so one iteration is already steady state).
	Iterations int
	// NoDPOverlap disables overlapping gradient reduction with the
	// remaining backward compute (overlap is the Megatron default).
	NoDPOverlap bool
}

func (c MegatronConfig) withDefaults() MegatronConfig {
	if c.DType == "" {
		c.DType = "bf16"
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.VirtualStages == 0 {
		c.VirtualStages = 1
	}
	if c.MicroBatches == 0 {
		c.MicroBatches = 1
	}
	return c
}

// DP returns the data-parallel degree.
func (c MegatronConfig) DP() int { return c.NGPUs / (c.TP * c.PP) }

// MicroBatchSize returns sequences per microbatch per replica.
func (c MegatronConfig) MicroBatchSize() int {
	return c.GlobalBatch / (c.DP() * c.MicroBatches)
}

// Validate rejects inconsistent recipes; OOM is not checked here —
// it is discovered by the emulator's allocator, as on hardware.
func (c MegatronConfig) Validate() error {
	c = c.withDefaults()
	m := c.Model
	switch {
	case c.NGPUs < 1 || c.TP < 1 || c.PP < 1:
		return fmt.Errorf("megatron: degrees must be positive (ngpus=%d tp=%d pp=%d)", c.NGPUs, c.TP, c.PP)
	case c.NGPUs%(c.TP*c.PP) != 0:
		return fmt.Errorf("megatron: %d GPUs not divisible by TP*PP=%d", c.NGPUs, c.TP*c.PP)
	case m.Heads%c.TP != 0:
		return fmt.Errorf("megatron: %d heads not divisible by TP=%d", m.Heads, c.TP)
	case m.Hidden%c.TP != 0 || m.FFN%c.TP != 0:
		return fmt.Errorf("megatron: hidden/ffn not divisible by TP=%d", c.TP)
	case m.Vocab%c.TP != 0:
		return fmt.Errorf("megatron: vocab %d not divisible by TP=%d", m.Vocab, c.TP)
	case m.Layers%(c.PP*c.VirtualStages) != 0:
		return fmt.Errorf("megatron: %d layers not divisible by PP*V=%d", m.Layers, c.PP*c.VirtualStages)
	case c.VirtualStages > 1 && c.PP == 1:
		return fmt.Errorf("megatron: virtual stages need PP>1")
	case c.DualPipe && c.PP == 1:
		return fmt.Errorf("megatron: DualPipe needs PP>1")
	case c.DualPipe && c.VirtualStages > 1:
		return fmt.Errorf("megatron: DualPipe and interleaving are mutually exclusive")
	case c.DualPipe && m.Layers%(2*c.PP) != 0:
		return fmt.Errorf("megatron: %d layers not divisible by 2*PP=%d (DualPipe)", m.Layers, 2*c.PP)
	case c.SeqParallel && c.TP == 1:
		return fmt.Errorf("megatron: sequence parallelism needs TP>1")
	case c.SeqParallel && m.Seq%c.TP != 0:
		return fmt.Errorf("megatron: seq %d not divisible by TP=%d", m.Seq, c.TP)
	case c.GlobalBatch%(c.DP()*c.MicroBatches) != 0:
		return fmt.Errorf("megatron: global batch %d not divisible by DP*microbatches=%d",
			c.GlobalBatch, c.DP()*c.MicroBatches)
	case c.DistOptimizer && c.DP() == 1:
		// Accepted (it is a no-op), matching Megatron behavior.
	}
	return nil
}

// String summarizes the recipe.
func (c MegatronConfig) String() string {
	c = c.withDefaults()
	sched := ""
	if c.DualPipe {
		sched = " dualpipe"
	}
	return fmt.Sprintf("%s tp%d pp%d dp%d mb%d v%d sp=%t re=%t do=%t%s",
		c.Model.Name, c.TP, c.PP, c.DP(), c.MicroBatches, c.VirtualStages,
		c.SeqParallel, c.ActRecompute, c.DistOptimizer, sched)
}

// rankCoords is the 3D position of a global rank. Megatron orders
// tensor ranks fastest, then data, then pipeline.
type rankCoords struct {
	tp, dp, pp int
}

func (c MegatronConfig) coords(rank int) rankCoords {
	tp := rank % c.TP
	dp := (rank / c.TP) % c.DP()
	pp := rank / (c.TP * c.DP())
	return rankCoords{tp: tp, dp: dp, pp: pp}
}

func (c MegatronConfig) rankOf(co rankCoords) int {
	return co.pp*(c.TP*c.DP()) + co.dp*c.TP + co.tp
}

// tpGroup returns the global ranks of a coordinate's tensor group.
func (c MegatronConfig) tpGroup(co rankCoords) []int {
	g := make([]int, c.TP)
	for i := range g {
		g[i] = c.rankOf(rankCoords{tp: i, dp: co.dp, pp: co.pp})
	}
	return g
}

func (c MegatronConfig) dpGroup(co rankCoords) []int {
	g := make([]int, c.DP())
	for i := range g {
		g[i] = c.rankOf(rankCoords{tp: co.tp, dp: i, pp: co.pp})
	}
	return g
}

func (c MegatronConfig) ppGroup(co rankCoords) []int {
	g := make([]int, c.PP)
	for i := range g {
		g[i] = c.rankOf(rankCoords{tp: co.tp, dp: co.dp, pp: i})
	}
	return g
}

// embGroup ties the input and output embeddings across the first and
// last pipeline stages.
func (c MegatronConfig) embGroup(co rankCoords) []int {
	return []int{
		c.rankOf(rankCoords{tp: co.tp, dp: co.dp, pp: 0}),
		c.rankOf(rankCoords{tp: co.tp, dp: co.dp, pp: c.PP - 1}),
	}
}

// Megatron is the workload implementation.
type Megatron struct {
	cfg   MegatronConfig
	sched [][]Action
	// depth is the virtual pipeline depth; owner maps a virtual stage
	// to its physical rank within the pipeline group.
	depth int
	owner func(vs int) int
}

var (
	_ workload.Workload          = (*Megatron)(nil)
	_ workload.SelectiveLauncher = (*Megatron)(nil)
	_ workload.GroupAware        = (*Megatron)(nil)
	_ workload.ClassHinter       = (*Megatron)(nil)
	_ workload.Fingerprinter     = (*Megatron)(nil)
)

// NewMegatron validates the recipe and precomputes the pipeline
// schedule.
func NewMegatron(cfg MegatronConfig) (*Megatron, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Megatron{cfg: cfg}
	if cfg.DualPipe {
		m.depth = 2 * cfg.PP
		m.owner = func(vs int) int {
			if vs < cfg.PP {
				return vs
			}
			return 2*cfg.PP - 1 - vs
		}
		m.sched = BuildDualPipeSchedule(cfg.PP, cfg.MicroBatches)
	} else {
		m.depth = cfg.PP * cfg.VirtualStages
		m.owner = func(vs int) int { return vs % cfg.PP }
		m.sched = BuildPipelineSchedule(cfg.PP, cfg.VirtualStages, cfg.MicroBatches)
	}
	return m, nil
}

// Config returns the validated recipe (with defaults applied).
func (m *Megatron) Config() MegatronConfig { return m.cfg }

// Name implements workload.Workload.
func (m *Megatron) Name() string { return "megatron/" + m.cfg.Model.Name }

// World implements workload.Workload.
func (m *Megatron) World() int { return m.cfg.NGPUs }

// UniqueRanks implements workload.SelectiveLauncher: tensor- and
// data-parallel peers perform identical work, so one rank per
// pipeline stage covers all behaviors (§7.4 of the paper).
func (m *Megatron) UniqueRanks() []int {
	out := make([]int, m.cfg.PP)
	for p := range out {
		out[p] = m.cfg.rankOf(rankCoords{pp: p})
	}
	return out
}

// RankClasses implements workload.ClassHinter: ranks that share a
// pipeline stage are equivalent — tensor- and data-parallel peers
// (including expert-parallel MoE peers, whose local expert counts and
// collective shapes match across the DP group) perform identical work
// modulo communicator identities, which trace signatures ignore.
// Unlike UniqueRanks this claim is verified by the pipeline's
// sampling, so it is safe under dynamic dedup.
func (m *Megatron) RankClasses() [][]int {
	cfg := m.cfg
	stage := cfg.TP * cfg.DP()
	classes := make([][]int, cfg.PP)
	for p := range classes {
		class := make([]int, stage)
		for i := range class {
			class[i] = p*stage + i
		}
		classes[p] = class
	}
	return classes
}

// Fingerprint implements workload.Fingerprinter: a canonical
// rendering of everything that shapes the emitted trace — the model
// geometry and every schedule/parallelism knob.
func (m *Megatron) Fingerprint() string {
	c := m.cfg
	mdl := c.Model
	return fmt.Sprintf(
		"megatron|%s,L%d,h%d,heads%d,ffn%d,seq%d,vocab%d,exp%d,topk%d,gated%t|ngpus%d,gb%d,tp%d,pp%d,mb%d,v%d,dual%t,sp%t,re%t,do%t,%s,it%d,noov%t",
		mdl.Name, mdl.Layers, mdl.Hidden, mdl.Heads, mdl.FFN, mdl.Seq, mdl.Vocab,
		mdl.NumExperts, mdl.ExpertTopK(), mdl.GatedMLP,
		c.NGPUs, c.GlobalBatch, c.TP, c.PP, c.MicroBatches, c.VirtualStages,
		c.DualPipe, c.SeqParallel, c.ActRecompute, c.DistOptimizer, c.DType,
		c.Iterations, c.NoDPOverlap)
}

// Probe implements workload.Prober: a single-iteration variant used
// by dynamic deduplication to discover duplicate workers cheaply.
func (m *Megatron) Probe() workload.Workload {
	if m.cfg.Iterations == 1 {
		return m
	}
	cfg := m.cfg
	cfg.Iterations = 1
	p, err := NewMegatron(cfg)
	if err != nil {
		// The config already validated; a failing probe is impossible.
		panic(fmt.Sprintf("framework: probe construction: %v", err))
	}
	return p
}

// CommGroups implements workload.GroupAware: the full communicator
// layout derived from the parallelism configuration, which is what
// lets selective launch keep collective topology exact.
func (m *Megatron) CommGroups() map[uint64][]int {
	cfg := m.cfg
	out := make(map[uint64][]int)
	add := func(tag string, g []int) {
		out[uint64(nccl.UniqueIDFor(tag, g))] = g
	}
	for rank := 0; rank < cfg.NGPUs; rank++ {
		co := cfg.coords(rank)
		if cfg.TP > 1 {
			add("tp", cfg.tpGroup(co))
		}
		if cfg.PP > 1 {
			add("pp", cfg.ppGroup(co))
			if co.pp == 0 || co.pp == cfg.PP-1 {
				add("emb", cfg.embGroup(co))
			}
		}
		if cfg.DP() > 1 {
			add("dp", cfg.dpGroup(co))
		}
		if cfg.Model.NumExperts > 0 && cfg.epDegree() > 1 {
			add("ep", cfg.epGroup(co))
		}
	}
	return out
}

// Run implements workload.Workload: the unmodified training script
// for one rank.
func (m *Megatron) Run(rank int, dev cuda.Device) error {
	if rank < 0 || rank >= m.cfg.NGPUs {
		return fmt.Errorf("megatron: rank %d out of range [0,%d)", rank, m.cfg.NGPUs)
	}
	r, err := newMegatronRunner(m, rank, dev)
	if err != nil {
		return err
	}
	return r.run()
}
