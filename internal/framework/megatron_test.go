package framework

import (
	"errors"
	"strings"
	"testing"

	"maya/internal/collator"
	"maya/internal/cuda"
	"maya/internal/emulator"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/trace"
)

func smallModel() models.Transformer {
	return models.Transformer{
		Name: "tiny", Layers: 4, Hidden: 512, Heads: 8, FFN: 2048, Seq: 256, Vocab: 3200,
	}
}

func emulate(t *testing.T, m *Megatron, rank int) *trace.Worker {
	t.Helper()
	em := emulator.New(emulator.Config{
		Rank: rank, World: m.World(), GPU: hardware.H100(), Host: hardware.EpycHost(),
	})
	if err := m.Run(rank, em); err != nil {
		t.Fatalf("Run(rank %d): %v", rank, err)
	}
	return em.Trace()
}

func TestValidation(t *testing.T) {
	base := MegatronConfig{Model: smallModel(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*MegatronConfig)
		substr string
	}{
		{"indivisible world", func(c *MegatronConfig) { c.TP = 3 }, "divisible"},
		{"heads vs tp", func(c *MegatronConfig) { c.TP = 8; c.PP = 1 }, ""},
		{"layers vs pp*v", func(c *MegatronConfig) { c.PP = 8; c.TP = 1 }, "layers"},
		{"virtual without pp", func(c *MegatronConfig) { c.PP = 1; c.TP = 1; c.VirtualStages = 2 }, "PP>1"},
		{"seqpar without tp", func(c *MegatronConfig) { c.TP = 1; c.SeqParallel = true }, "TP>1"},
		{"batch divisibility", func(c *MegatronConfig) { c.GlobalBatch = 10 }, "batch"},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			// Some mutations may legitimately validate (heads vs tp:
			// 8 heads / 8 tp is fine); only fail when a substring was
			// demanded.
			if c.substr != "" {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if c.substr != "" && !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: err %q missing %q", c.name, err, c.substr)
		}
	}
}

func TestRankLayoutAndGroups(t *testing.T) {
	cfg := MegatronConfig{Model: smallModel(), NGPUs: 16, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2}.withDefaults()
	// rank = pp*(tp*dp) + dp*tp + tp; dp = 4.
	co := cfg.coords(11) // 11 = 1*8 + 1*2 + 1
	if co.tp != 1 || co.dp != 1 || co.pp != 1 {
		t.Fatalf("coords(11) = %+v", co)
	}
	if cfg.rankOf(co) != 11 {
		t.Fatalf("rankOf(coords(11)) = %d", cfg.rankOf(co))
	}
	tpg := cfg.tpGroup(co)
	if len(tpg) != 2 || tpg[0] != 10 || tpg[1] != 11 {
		t.Fatalf("tp group = %v", tpg)
	}
	dpg := cfg.dpGroup(co)
	if len(dpg) != 4 || dpg[0] != 9 || dpg[1] != 11 || dpg[2] != 13 || dpg[3] != 15 {
		t.Fatalf("dp group = %v", dpg)
	}
	ppg := cfg.ppGroup(co)
	if len(ppg) != 2 || ppg[0] != 3 || ppg[1] != 11 {
		t.Fatalf("pp group = %v", ppg)
	}
}

func TestUniqueRanksOnePerStage(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{Model: smallModel(), NGPUs: 16, GlobalBatch: 16, TP: 2, PP: 4, MicroBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	u := m.UniqueRanks()
	if len(u) != 4 {
		t.Fatalf("unique ranks = %v", u)
	}
	for i, r := range u {
		if m.cfg.coords(r).pp != i || m.cfg.coords(r).tp != 0 || m.cfg.coords(r).dp != 0 {
			t.Fatalf("unique rank %d = %d (coords %+v)", i, r, m.cfg.coords(r))
		}
	}
}

func TestCommGroupsMatchTraceMembership(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{Model: smallModel(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*trace.Worker
	for r := 0; r < 8; r++ {
		workers = append(workers, emulate(t, m, r))
	}
	comms, sizes, err := collator.CommMembership(workers)
	if err != nil {
		t.Fatal(err)
	}
	declared := m.CommGroups()
	if len(declared) == 0 {
		t.Fatal("no declared groups")
	}
	for id, want := range declared {
		got, ok := comms[id]
		if !ok {
			t.Fatalf("declared comm %#x missing from traces", id)
		}
		if len(got) != len(want) {
			t.Fatalf("comm %#x: traced %v vs declared %v", id, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("comm %#x: traced %v vs declared %v", id, got, want)
			}
		}
		if sizes[id] != len(want) {
			t.Fatalf("comm %#x size %d vs %d", id, sizes[id], len(want))
		}
	}
}

func TestDPAndTPPeersAreDuplicates(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{Model: smallModel(), NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*trace.Worker
	for r := 0; r < 8; r++ {
		workers = append(workers, emulate(t, m, r))
	}
	groups := collator.DuplicateGroups(workers)
	// tp2 x dp2 collapse: one representative per pipeline stage.
	if len(groups) != 2 {
		t.Fatalf("duplicate groups = %v, want one per stage", groups)
	}
}

func TestIterationMarksAndSync(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{
		Model: smallModel(), NGPUs: 2, GlobalBatch: 8, TP: 2, PP: 1, MicroBatches: 2, Iterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := emulate(t, m, 0)
	iters, setups := 0, 0
	for _, op := range tr.Ops {
		if op.Kind == trace.KindMark {
			switch op.Name {
			case trace.MarkIterEnd:
				iters++
			case trace.MarkSetupEnd:
				setups++
			}
		}
	}
	if iters != 3 || setups != 1 {
		t.Fatalf("marks: %d iter_end, %d setup_end", iters, setups)
	}
}

func TestSeqParallelChangesCollectivePattern(t *testing.T) {
	base := MegatronConfig{Model: smallModel(), NGPUs: 2, GlobalBatch: 8, TP: 2, PP: 1, MicroBatches: 1}
	countOps := func(cfg MegatronConfig) map[string]int {
		m, err := NewMegatron(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return emulate(t, m, 0).Stats().ByName
	}
	plain := countOps(base)
	sp := base
	sp.SeqParallel = true
	sharded := countOps(sp)
	if plain["ncclReduceScatter"] != 0 {
		t.Fatalf("plain TP should all-reduce, got %d reduce-scatters", plain["ncclReduceScatter"])
	}
	if sharded["ncclReduceScatter"] == 0 || sharded["ncclAllGather"] == 0 {
		t.Fatalf("sequence parallelism should reduce-scatter + all-gather: %v", sharded)
	}
	if sharded["ncclAllReduce"] >= plain["ncclAllReduce"] {
		t.Fatalf("sequence parallelism should replace all-reduces (%d vs %d)",
			sharded["ncclAllReduce"], plain["ncclAllReduce"])
	}
}

func TestRecomputeReplaysForwardKernels(t *testing.T) {
	base := MegatronConfig{Model: smallModel(), NGPUs: 1, GlobalBatch: 4, TP: 1, PP: 1, MicroBatches: 1}
	kernels := func(cfg MegatronConfig) int {
		m, err := NewMegatron(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return emulate(t, m, 0).Stats().Kernels
	}
	plain := kernels(base)
	rec := base
	rec.ActRecompute = true
	recomputed := kernels(rec)
	if recomputed <= plain {
		t.Fatalf("recompute kernels %d <= plain %d", recomputed, plain)
	}
}

func TestGradAccumulationScalesKernels(t *testing.T) {
	base := MegatronConfig{Model: smallModel(), NGPUs: 1, GlobalBatch: 8, TP: 1, PP: 1, MicroBatches: 1}
	m1, _ := NewMegatron(base)
	k1 := emulate(t, m1, 0).Stats().Kernels
	ga := base
	ga.MicroBatches = 4
	m4, _ := NewMegatron(ga)
	k4 := emulate(t, m4, 0).Stats().Kernels
	// 4 microbatches run ~4x the per-layer kernels (optimizer once).
	if k4 < 3*k1 {
		t.Fatalf("grad accumulation kernels %d vs %d", k4, k1)
	}
}

func TestOOMPropagatesAsTraceFlag(t *testing.T) {
	gpu := hardware.H100()
	gpu.MemBytes = 1 << 28 // 256 MiB: the tiny model's weights won't fit
	m, err := NewMegatron(MegatronConfig{Model: smallModel(), NGPUs: 1, GlobalBatch: 4, TP: 1, PP: 1, MicroBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	em := emulator.New(emulator.Config{GPU: gpu, Host: hardware.Host{}})
	err = m.Run(0, em)
	if err == nil {
		t.Fatal("expected OOM error")
	}
	if !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
	if !em.Trace().OOM {
		t.Fatal("trace not marked OOM")
	}
}

func TestTraceDeterminism(t *testing.T) {
	m, err := NewMegatron(MegatronConfig{Model: smallModel(), NGPUs: 4, GlobalBatch: 8, TP: 2, PP: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := emulate(t, m, 1)
	b := emulate(t, m, 1)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].SigString() != b.Ops[i].SigString() {
			t.Fatalf("op %d differs", i)
		}
	}
}
