package framework

// Mixture-of-experts layers (extension; paper §8 "Dynamic control
// flow"). Maya cannot model host-side gating whose control flow
// depends on tensor values, but expert-parallel MoE kernels with
// device-side routing keep control flow deterministic — the case the
// paper identifies as supported. Routing is modeled as balanced:
// every rank processes tokens*topk/ep tokens after dispatch, the same
// assumption expert-parallel kernel libraries make for capacity
// planning.

import (
	"fmt"

	"maya/internal/nccl"
)

// epDegree returns the expert-parallel width: experts shard across
// the largest divisor of the DP degree that divides the expert count
// (replicated beyond that).
func (c MegatronConfig) epDegree() int {
	if c.Model.NumExperts == 0 {
		return 1
	}
	ep := gcd(c.DP(), c.Model.NumExperts)
	if ep < 1 {
		ep = 1
	}
	return ep
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// epGroup returns this coordinate's expert-parallel block: a
// contiguous slice of its data-parallel group.
func (c MegatronConfig) epGroup(co rankCoords) []int {
	ep := c.epDegree()
	dpg := c.dpGroup(co)
	block := (co.dp / ep) * ep
	return dpg[block : block+ep]
}

// setupMoE initializes the expert-parallel communicator.
func (r *megatronRunner) setupMoE() {
	if r.cfg.Model.NumExperts == 0 || r.cfg.epDegree() <= 1 {
		return
	}
	g := r.cfg.epGroup(r.co)
	myPos := -1
	for i, rank := range g {
		if rank == r.rank {
			myPos = i
		}
	}
	if myPos < 0 {
		r.check(fmt.Errorf("megatron: rank %d missing from its ep group %v", r.rank, g))
		return
	}
	c, err := nccl.CommInitRank(r.dev, len(g), myPos, nccl.UniqueIDFor("ep", g))
	r.check(err)
	r.epc = c
}

// expertParamsPerLayer is this rank's MoE parameter share per layer.
func (r *megatronRunner) expertParamsPerLayer() int64 {
	mdl := r.cfg.Model
	if mdl.NumExperts == 0 {
		return 0
	}
	mats := int64(2)
	if mdl.GatedMLP {
		mats = 3
	}
	localExperts := int64(mdl.NumExperts / r.cfg.epDegree())
	h := int64(mdl.Hidden)
	f := int64(mdl.FFN)
	return localExperts*mats*h*f/int64(r.cfg.TP) + h*int64(mdl.NumExperts) // experts + replicated router
}

// emitMoEForward replaces the dense MLP block: router, dispatch
// all-to-all, local expert FFNs, combine all-to-all.
func (r *megatronRunner) emitMoEForward() {
	cfg := r.cfg
	mdl := cfg.Model
	t := cfg.TP
	n := r.tokens()
	h := mdl.Hidden
	f := mdl.FFN
	e := mdl.NumExperts
	topk := mdl.ExpertTopK()
	ep := cfg.epDegree()

	// Router: per-token expert scores plus device-side top-k.
	r.gemm(n, e, h)
	logits := int64(n) * int64(e)
	r.kernel("softmax_warp_forward", []int{n, e}, 2*r.es*logits, 5*logits, cfg.DType)
	r.kernel("RadixSortOnesweepKernel", []int{n, e}, 16*int64(n), 4*logits, cfg.DType)
	r.kernel("elementwise_kernel_with_index", []int{n, topk}, 8*int64(n)*int64(topk), 0, cfg.DType)

	routed := n * topk
	if r.epc != nil {
		// Dispatch: tokens shuffle to their experts' owners.
		r.check(r.epc.AllToAll(int64(routed)*int64(h)*r.es/int64(ep), r.compute))
	}
	// Local expert FFNs over the balanced shard.
	local := routed / ep
	if local < 1 {
		local = 1
	}
	r.gemm(local, f/t, h)
	if mdl.GatedMLP {
		r.gemm(local, f/t, h)
		r.kernel("vectorized_elementwise_kernel", []int{local, f / t}, 3*r.es*int64(local)*int64(f/t), int64(local)*int64(f/t), cfg.DType)
	}
	r.kernel("vectorized_elementwise_kernel", []int{local, f / t}, 2*r.es*int64(local)*int64(f/t), 8*int64(local)*int64(f/t), cfg.DType)
	r.gemm(local, h, f/t)
	r.tpForwardSync()
	if r.epc != nil {
		// Combine: expert outputs return to their tokens.
		r.check(r.epc.AllToAll(int64(routed)*int64(h)*r.es/int64(ep), r.compute))
	}
	// Weighted combination of top-k expert outputs.
	r.kernel("vectorized_elementwise_kernel", []int{n, h}, 3*r.es*int64(n)*int64(h), int64(n)*int64(h)*int64(topk), cfg.DType)
}

// emitMoEBackward mirrors the forward with gradient GEMM pairs.
func (r *megatronRunner) emitMoEBackward() {
	cfg := r.cfg
	mdl := cfg.Model
	t := cfg.TP
	n := r.tokens()
	h := mdl.Hidden
	f := mdl.FFN
	e := mdl.NumExperts
	topk := mdl.ExpertTopK()
	ep := cfg.epDegree()

	r.kernel("vectorized_elementwise_kernel", []int{n, h}, 3*r.es*int64(n)*int64(h), int64(n)*int64(h)*int64(topk), cfg.DType)
	routed := n * topk
	if r.epc != nil {
		r.check(r.epc.AllToAll(int64(routed)*int64(h)*r.es/int64(ep), r.compute))
	}
	local := routed / ep
	if local < 1 {
		local = 1
	}
	r.gemm(local, f/t, h) // fc2 dgrad
	r.gemm(h, f/t, local) // fc2 wgrad
	r.kernel("vectorized_elementwise_kernel", []int{local, f / t}, 3*r.es*int64(local)*int64(f/t), 10*int64(local)*int64(f/t), cfg.DType)
	if mdl.GatedMLP {
		r.gemm(local, h, f/t)
		r.gemm(h, f/t, local)
	}
	r.gemm(local, h, f/t) // fc1 dgrad
	r.gemm(h, f/t, local) // fc1 wgrad
	r.tpBackwardSync()
	if r.epc != nil {
		r.check(r.epc.AllToAll(int64(routed)*int64(h)*r.es/int64(ep), r.compute))
	}
	// Router backward.
	logits := int64(n) * int64(e)
	r.kernel("softmax_warp_backward", []int{n, e}, 3*r.es*logits, 6*logits, cfg.DType)
	r.gemm(n, h, e)
	r.gemm(h, e, n)
}
