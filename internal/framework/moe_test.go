package framework

import (
	"testing"

	"maya/internal/models"
)

func moeModel() models.Transformer {
	m := smallModel()
	m.NumExperts = 8
	m.TopK = 2
	return m
}

func TestMoEEmitsExpertParallelPattern(t *testing.T) {
	cfg := MegatronConfig{Model: moeModel(), NGPUs: 4, GlobalBatch: 8, TP: 1, PP: 1, MicroBatches: 1}
	m, err := NewMegatron(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := emulate(t, m, 0).Stats()
	// Dispatch + combine per layer per pass: 4 layers x (2 fwd + 2 bwd).
	if st.ByName["ncclAllToAll"] != 16 {
		t.Fatalf("all-to-alls = %d, want 16 (%v)", st.ByName["ncclAllToAll"], st.ByName)
	}
	// Router softmax present.
	if st.ByName["softmax_warp_forward"] == 0 {
		t.Fatal("no router softmax")
	}
}

func TestMoEDenseHasNoAllToAll(t *testing.T) {
	cfg := MegatronConfig{Model: smallModel(), NGPUs: 4, GlobalBatch: 8, TP: 1, PP: 1, MicroBatches: 1}
	m, err := NewMegatron(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := emulate(t, m, 0).Stats().ByName["ncclAllToAll"]; n != 0 {
		t.Fatalf("dense model emitted %d all-to-alls", n)
	}
}

func TestMoEShardsExpertMemory(t *testing.T) {
	// 4-way expert parallelism should hold ~1/4 of the expert weights
	// per rank compared to a single-GPU run.
	peak := func(ngpus, batch int) int64 {
		cfg := MegatronConfig{Model: moeModel(), NGPUs: ngpus, GlobalBatch: batch, TP: 1, PP: 1, MicroBatches: 1}
		m, err := NewMegatron(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return emulate(t, m, 0).PeakBytes
	}
	single := peak(1, 2)
	sharded := peak(4, 8) // same per-rank batch
	if sharded >= single {
		t.Fatalf("expert parallelism did not reduce memory: %d vs %d", sharded, single)
	}
}

func TestMoEEpDegree(t *testing.T) {
	cfg := MegatronConfig{Model: moeModel(), NGPUs: 8, GlobalBatch: 16, TP: 1, PP: 1, MicroBatches: 1}.withDefaults()
	if ep := cfg.epDegree(); ep != 8 {
		t.Fatalf("ep = %d, want 8 (gcd(dp=8, experts=8))", ep)
	}
	cfg.Model.NumExperts = 6
	if ep := cfg.epDegree(); ep != 2 {
		t.Fatalf("ep = %d, want 2 (gcd(8, 6))", ep)
	}
	cfg.TP = 2 // dp = 4
	cfg.Model.NumExperts = 8
	if ep := cfg.epDegree(); ep != 4 {
		t.Fatalf("ep = %d, want 4", ep)
	}
}

func TestMoEDuplicatesPreserved(t *testing.T) {
	// Balanced routing keeps DP peers identical — dedup must still
	// collapse them (the §8 condition for emulation to stay valid).
	cfg := MegatronConfig{Model: moeModel(), NGPUs: 4, GlobalBatch: 8, TP: 1, PP: 1, MicroBatches: 1}
	m, err := NewMegatron(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := emulate(t, m, 0)
	b := emulate(t, m, 1)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("rank op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].SigString() != b.Ops[i].SigString() {
			t.Fatalf("op %d differs between DP peers", i)
		}
	}
}

func TestMoEModelAccounting(t *testing.T) {
	dense := smallModel()
	moe := moeModel()
	if moe.Params() <= dense.Params() {
		t.Fatal("experts must add parameters")
	}
	// Active FLOPs scale with top-k, not expert count.
	fd := dense.TrainFLOPsPerIter(8)
	fm := moe.TrainFLOPsPerIter(8)
	if fm <= fd {
		t.Fatal("top-2 routing should cost more FLOPs than dense (k=2 > 1 expert-equivalent)")
	}
	if fm > 4*fd {
		t.Fatalf("MoE active FLOPs %.3g implausibly large vs dense %.3g", fm, fd)
	}
}
