package framework

import (
	"fmt"

	"maya/internal/cublas"
	"maya/internal/cuda"
	"maya/internal/nccl"
)

// megatronRunner executes one rank's training program. Device-API
// errors are sticky: helpers become no-ops once an error is recorded
// and run() reports it, keeping the emission code linear.
type megatronRunner struct {
	m    *Megatron
	cfg  MegatronConfig
	rank int
	dev  cuda.Device
	err  error

	blas    *cublas.Handle
	compute cuda.Stream
	comm    cuda.Stream // gradient-reduction stream (overlap)

	co rankCoords
	// communicators; nil when the group is trivial
	tpc, dpc, ppc, embc, epc *nccl.Communicator

	dp, mbs        int
	layersPerChunk int
	chunksPerRank  int
	d              int // virtual pipeline depth
	es             int64

	weights, grads, opt cuda.DevicePtr
	myParams            int64
	chunkParams         int64
	embParams           int64

	acts         map[[2]int]cuda.DevicePtr
	chunkBwdLeft []int
	iter         int
}

func newMegatronRunner(m *Megatron, rank int, dev cuda.Device) (*megatronRunner, error) {
	cfg := m.cfg
	r := &megatronRunner{
		m:    m,
		cfg:  cfg,
		rank: rank,
		dev:  dev,
		co:   cfg.coords(rank),
		dp:   cfg.DP(),
		mbs:  cfg.MicroBatchSize(),
		d:    m.depth,
		es:   2,
		acts: make(map[[2]int]cuda.DevicePtr),
	}
	if cfg.DType == "fp32" {
		r.es = 4
	}
	r.chunksPerRank = r.d / cfg.PP
	r.layersPerChunk = cfg.Model.Layers / r.d
	mlpMats := int64(2)
	if cfg.Model.GatedMLP {
		mlpMats = 3
	}
	h := int64(cfg.Model.Hidden)
	f := int64(cfg.Model.FFN)
	mlpParams := mlpMats * h * f / int64(cfg.TP)
	if cfg.Model.NumExperts > 0 {
		mlpParams = r.expertParamsPerLayer()
	}
	perLayer := 4*h*h/int64(cfg.TP) + mlpParams + 4*h
	r.chunkParams = int64(r.layersPerChunk) * perLayer
	r.embParams = int64(cfg.Model.Vocab)*h/int64(cfg.TP) + int64(cfg.Model.Seq)*h
	r.myParams = r.chunkParams * int64(r.chunksPerRank)
	if r.co.pp == m.owner(0) || r.co.pp == m.owner(r.d-1) {
		r.myParams += r.embParams
	}
	return r, nil
}

// check records the first error.
func (r *megatronRunner) check(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *megatronRunner) run() error {
	r.setup()
	for r.iter = 0; r.iter < r.cfg.Iterations && r.err == nil; r.iter++ {
		r.iteration()
	}
	if r.err != nil {
		return fmt.Errorf("megatron rank %d: %w", r.rank, r.err)
	}
	return nil
}

func (r *megatronRunner) setup() {
	var err error
	r.blas, err = cublas.Create(r.dev)
	r.check(err)
	if r.err != nil {
		return
	}
	r.check(r.blas.SetMathMode(cublas.TensorOpMath))
	r.compute = cuda.DefaultStream
	r.comm, err = r.dev.StreamCreate()
	r.check(err)

	// Process groups, Megatron initialization order.
	if r.cfg.TP > 1 {
		g := r.cfg.tpGroup(r.co)
		r.tpc = r.initComm("tp", g)
	}
	if r.cfg.PP > 1 {
		g := r.cfg.ppGroup(r.co)
		r.ppc = r.initComm("pp", g)
	}
	if r.dp > 1 {
		g := r.cfg.dpGroup(r.co)
		r.dpc = r.initComm("dp", g)
	}
	r.setupMoE()
	if r.cfg.PP > 1 && !r.cfg.DualPipe && (r.co.pp == 0 || r.co.pp == r.cfg.PP-1) {
		// First and last stage tie the embedding weights. Under
		// DualPipe both live on the same rank, so no group is needed.
		g := r.cfg.embGroup(r.co)
		r.embc = r.initComm("emb", g)
	}

	// Parameter, gradient and optimizer-state memory. Megatron keeps
	// bf16 params, fp32 main grads, and fp32 Adam state + master
	// params (sharded across DP with the distributed optimizer).
	r.weights = r.malloc(r.myParams * r.es)
	r.grads = r.malloc(r.myParams * 4)
	optBytes := r.myParams * 12
	if r.cfg.DistOptimizer && r.dp > 1 {
		optBytes = (optBytes + int64(r.dp) - 1) / int64(r.dp)
	}
	r.opt = r.malloc(optBytes)

	// Frameworks query free memory to size caching allocators.
	if r.err == nil {
		_, _, err = r.dev.MemGetInfo()
		r.check(err)
	}
	r.check(r.dev.Mark("setup_end"))
}

func (r *megatronRunner) initComm(tag string, group []int) *nccl.Communicator {
	if r.err != nil {
		return nil
	}
	myPos := -1
	for i, g := range group {
		if g == r.rank {
			myPos = i
		}
	}
	if myPos < 0 {
		r.check(fmt.Errorf("megatron: rank %d not in its own %s group %v", r.rank, tag, group))
		return nil
	}
	c, err := nccl.CommInitRank(r.dev, len(group), myPos, nccl.UniqueIDFor(tag, group))
	r.check(err)
	return c
}

func (r *megatronRunner) malloc(bytes int64) cuda.DevicePtr {
	if r.err != nil {
		return 0
	}
	p, err := r.dev.Malloc(bytes)
	r.check(err)
	return p
}

func (r *megatronRunner) free(p cuda.DevicePtr) {
	if r.err != nil || p == 0 {
		return
	}
	r.check(r.dev.Free(p))
}

// boundaryBytes is the size of the activation tensor crossing a
// pipeline-stage boundary.
func (r *megatronRunner) boundaryBytes() int64 {
	n := int64(r.mbs) * int64(r.cfg.Model.Seq)
	b := n * int64(r.cfg.Model.Hidden) * r.es
	if r.cfg.SeqParallel {
		b /= int64(r.cfg.TP)
	}
	return b
}

// chunkActBytes is the activation memory one microbatch pins in one
// virtual chunk between forward and backward.
func (r *megatronRunner) chunkActBytes(vs int) int64 {
	cfg := r.cfg
	s := float64(cfg.Model.Seq)
	h := float64(cfg.Model.Hidden)
	a := float64(cfg.Model.Heads)
	t := float64(cfg.TP)
	n := float64(r.mbs) * s // tokens per microbatch
	var perLayer float64
	switch {
	case cfg.ActRecompute:
		perLayer = 2 * n * h
		if cfg.SeqParallel {
			perLayer /= t
		}
	case cfg.SeqParallel:
		perLayer = n*h*34/t + 5*a*s*n/t
	default:
		perLayer = n*h*(10+24/t) + 5*a*s*n/t
	}
	total := float64(r.layersPerChunk)*perLayer + float64(r.boundaryBytes())
	if vs == r.d-1 {
		// Logits plus their gradient buffer for the vocab-parallel
		// loss.
		total += 2 * n * float64(cfg.Model.Vocab) / t * float64(r.es)
	}
	return int64(total)
}

// recomputeBufferBytes is the transient footprint of activation
// recomputation during backward: Megatron recomputes one layer at a
// time, so only a single layer's full activations are live.
func (r *megatronRunner) recomputeBufferBytes() int64 {
	cfg := r.cfg
	s := float64(cfg.Model.Seq)
	h := float64(cfg.Model.Hidden)
	a := float64(cfg.Model.Heads)
	t := float64(cfg.TP)
	n := float64(r.mbs) * s
	perLayer := n*h*(10+24/t) + 5*a*s*n/t
	if cfg.SeqParallel {
		perLayer = n*h*34/t + 5*a*s*n/t
	}
	return int64(perLayer)
}

// p2pTag builds the matching tag for the pipeline transfer whose
// consumer is virtual stage vs of microbatch mu (dir 0 = activations
// forward, 1 = gradients backward). Tags are unique per iteration so
// wait-map keys never collide.
func (r *megatronRunner) p2pTag(dir, vs, mu int) int {
	return ((r.iter*r.cfg.MicroBatches+mu)*r.d+vs)*2 + dir
}

func (r *megatronRunner) iteration() {
	cfg := r.cfg
	r.chunkBwdLeft = make([]int, r.chunksPerRank)
	for c := range r.chunkBwdLeft {
		r.chunkBwdLeft[c] = cfg.MicroBatches
	}
	for _, a := range r.m.sched[r.co.pp] {
		if r.err != nil {
			return
		}
		switch a.Kind {
		case ActForward:
			r.forward(a.VStage, a.Micro)
		case ActBackward:
			r.backward(a.VStage, a.Micro)
		}
	}
	r.gradSyncTail()
	r.optimizerStep()
	r.check(r.dev.DeviceSynchronize())
	r.check(r.dev.Mark("iter_end"))
}

func (r *megatronRunner) forward(vs, mu int) {
	cfg := r.cfg
	// Receive boundary activations from the previous virtual stage,
	// unless it lives on this same rank (interleaving wrap) or this
	// is the first stage (data loader instead).
	if vs == 0 {
		// Token ids for the microbatch: host-to-device copy.
		n := int64(r.mbs) * int64(cfg.Model.Seq)
		buf := r.malloc(8 * n)
		r.check(r.dev.MemcpyAsync(buf, 0, 8*n, cuda.MemcpyHostToDevice, r.compute))
		r.free(buf)
	} else if src := r.m.owner(vs - 1); src != r.co.pp {
		r.check(r.ppc.RecvTagged(r.boundaryBytes(), src, r.p2pTag(0, vs, mu), r.compute))
	}

	act := r.malloc(r.chunkActBytes(vs))
	r.acts[[2]int{vs, mu}] = act

	if vs == 0 {
		r.emitEmbeddingForward()
	}
	for l := 0; l < r.layersPerChunk; l++ {
		r.emitLayerForward()
	}
	if vs == r.d-1 {
		r.emitHeadForward()
	}

	if vs < r.d-1 {
		if dst := r.m.owner(vs + 1); dst != r.co.pp {
			r.sendAsync(dst, r.p2pTag(0, vs+1, mu))
		}
	}
}

// sendAsync issues a pipeline send without blocking the compute
// stream: an event hands the data off to a fresh stream, reproducing
// torch.distributed's independent isends. Synchronous sends on the
// compute stream would head-of-line-deadlock 1F1B (send-forward
// queued ahead of recv-backward on both peers), and a single shared
// send stream recreates the same deadlock between interleaved chunks
// — each in-flight send must be independent, as NCCL channels are.
func (r *megatronRunner) sendAsync(dst, tag int) {
	if r.err != nil {
		return
	}
	s, err := r.dev.StreamCreate()
	r.check(err)
	ev, err := r.dev.EventCreate()
	r.check(err)
	r.check(r.dev.EventRecord(ev, r.compute))
	r.check(r.dev.StreamWaitEvent(s, ev))
	r.check(r.ppc.SendTagged(r.boundaryBytes(), dst, tag, s))
}

func (r *megatronRunner) backward(vs, mu int) {
	cfg := r.cfg
	if vs < r.d-1 {
		if src := r.m.owner(vs + 1); src != r.co.pp {
			r.check(r.ppc.RecvTagged(r.boundaryBytes(), src, r.p2pTag(1, vs, mu), r.compute))
		}
	}

	var recompute cuda.DevicePtr
	if cfg.ActRecompute {
		recompute = r.malloc(r.recomputeBufferBytes())
		for l := 0; l < r.layersPerChunk; l++ {
			r.emitLayerForward() // recomputation replays the forward
		}
	}
	if vs == r.d-1 {
		r.emitHeadBackward()
	}
	for l := 0; l < r.layersPerChunk; l++ {
		r.emitLayerBackward()
	}
	if vs == 0 {
		r.emitEmbeddingBackward()
	}
	if recompute != 0 {
		r.free(recompute)
	}

	key := [2]int{vs, mu}
	r.free(r.acts[key])
	delete(r.acts, key)

	if vs > 0 {
		if dst := r.m.owner(vs - 1); dst != r.co.pp {
			r.sendAsync(dst, r.p2pTag(1, vs-1, mu))
		}
	}

	// Overlapped gradient reduction: when a chunk's last microbatch
	// finishes backward, its gradient bucket reduces on the comm
	// stream while other chunks keep computing.
	chunk := vs / cfg.PP
	r.chunkBwdLeft[chunk]--
	if r.chunkBwdLeft[chunk] == 0 && r.dpc != nil && !cfg.NoDPOverlap {
		r.reduceChunkGrads(chunk, r.comm, true)
	}
}

// reduceChunkGrads reduces one chunk's fp32 gradient bucket across
// the DP group.
func (r *megatronRunner) reduceChunkGrads(chunk int, stream cuda.Stream, syncEvent bool) {
	if r.dpc == nil || r.err != nil {
		return
	}
	if syncEvent {
		ev, err := r.dev.EventCreate()
		r.check(err)
		r.check(r.dev.EventRecord(ev, r.compute))
		r.check(r.dev.StreamWaitEvent(stream, ev))
	}
	gradBytes := r.chunkParams * 4
	if r.cfg.DistOptimizer {
		r.check(r.dpc.ReduceScatter(gradBytes/int64(r.dp), stream))
	} else {
		r.check(r.dpc.AllReduce(gradBytes, stream))
	}
}

// gradSyncTail completes gradient synchronization after the pipeline
// drains: join the overlapped reductions (or do them all now), plus
// the tied-embedding all-reduce.
func (r *megatronRunner) gradSyncTail() {
	cfg := r.cfg
	if r.dpc != nil {
		if cfg.NoDPOverlap {
			for c := 0; c < r.chunksPerRank; c++ {
				r.reduceChunkGrads(c, r.compute, false)
			}
		} else {
			// Compute stream waits for the reduction stream.
			ev, err := r.dev.EventCreate()
			r.check(err)
			r.check(r.dev.EventRecord(ev, r.comm))
			r.check(r.dev.StreamWaitEvent(r.compute, ev))
		}
	}
	if r.embc != nil {
		r.check(r.embc.AllReduce(int64(cfg.Model.Vocab)*int64(cfg.Model.Hidden)/int64(cfg.TP)*4, r.compute))
	}
}

func (r *megatronRunner) optimizerStep() {
	cfg := r.cfg
	stepParams := r.myParams
	if cfg.DistOptimizer && r.dp > 1 {
		stepParams = (stepParams + int64(r.dp) - 1) / int64(r.dp)
	}
	// Gradient-norm clipping: one reduction over local grads plus a
	// scalar all-reduce.
	r.kernel("reduce_kernel", []int{int(stepParams)}, stepParams*4, stepParams, "fp32")
	if r.dpc != nil {
		r.check(r.dpc.AllReduce(4, r.compute))
	}
	// Fused Adam over ~48M-element chunks.
	const chunk = 48 << 20
	for left := stepParams; left > 0; left -= chunk {
		n := left
		if n > chunk {
			n = chunk
		}
		r.kernel("multi_tensor_apply_kernel", []int{int(n)}, n*16, n*8, "fp32")
	}
	if cfg.DistOptimizer && r.dpc != nil {
		// Re-materialize bf16 params from the sharded master copy.
		r.check(r.dpc.AllGather(r.myParams*r.es/int64(r.dp), r.compute))
	}
}

// kernel emits one compute kernel on the compute stream.
func (r *megatronRunner) kernel(name string, dims []int, bytes, flops int64, dtype string) {
	if r.err != nil {
		return
	}
	r.check(r.dev.LaunchKernel(cuda.KernelDesc{
		Name:  name,
		Dims:  dims,
		Bytes: bytes,
		FLOPs: flops,
		DType: dtype,
	}, r.compute))
}
