package framework

import "fmt"

// ActionKind discriminates pipeline schedule steps.
type ActionKind uint8

// Pipeline actions.
const (
	// ActForward runs one microbatch through one virtual chunk.
	ActForward ActionKind = iota
	// ActBackward runs the corresponding backward pass.
	ActBackward
)

// Action is one step of a rank's pipeline program.
type Action struct {
	Kind ActionKind
	// VStage is the global virtual stage index in [0, PP*V); the
	// owning rank is VStage % PP and the local chunk VStage / PP.
	VStage int
	// Micro is the microbatch index.
	Micro int
}

// String implements fmt.Stringer.
func (a Action) String() string {
	k := "F"
	if a.Kind == ActBackward {
		k = "B"
	}
	return fmt.Sprintf("%s(v%d,m%d)", k, a.VStage, a.Micro)
}

// BuildPipelineSchedule computes a deadlock-free 1F1B schedule for a
// pipeline of pp stages, v virtual chunks per stage (interleaving)
// and m microbatches. It returns one ordered action list per physical
// stage.
//
// The schedule is produced by deterministic list scheduling over the
// task DAG — F(vs,μ) depends on F(vs-1,μ), B(vs,μ) on B(vs+1,μ) and
// B(D-1,μ) on F(D-1,μ) — with two policies that reproduce 1F1B:
// backward work always outranks forward work, and each virtual stage
// may keep at most D-vs microbatches in flight (the classic 1F1B
// in-flight bound, generalized to interleaving). For v=1 this yields
// exactly the textbook 1F1B schedule; for v>1 a looped variant whose
// bubble shrinks with v, the effect pipeline interleaving exists to
// produce. Activation lifetime (allocate at F, free at B) follows the
// schedule, so peak memory is schedule-accurate.
//
// Dependencies are honored at task *completion* times, so each rank's
// action order is a valid linearization of the global DAG: replaying
// the per-rank orders with blocking point-to-point transfers cannot
// deadlock.
func BuildPipelineSchedule(pp, v, m int) [][]Action {
	return BuildPipelineScheduleOwner(pp, pp*v, m, func(vs int) int { return vs % pp })
}

// BuildDualPipeSchedule computes a DualPipe-style schedule (DeepSeek's
// bidirectional pipeline, the paper's §3.3 example of a novel schedule
// that static performance models must be rewritten for): the model
// splits into 2*pp chunks and each rank owns a chunk from each end —
// rank p hosts virtual stages p and 2*pp-1-p, so the first rank also
// holds the last stage and backward work starts flowing while forward
// work still fills the pipe, increasing overlap and shrinking the
// bubble.
//
// Under Maya nothing else changes: the schedule emits the same device
// API calls and the simulator replays them — no analytical bubble
// formula needs rewriting, which is precisely the transparency
// argument.
func BuildDualPipeSchedule(pp, m int) [][]Action {
	return BuildPipelineScheduleOwner(pp, 2*pp, m, func(vs int) int {
		if vs < pp {
			return vs
		}
		return 2*pp - 1 - vs
	})
}

// BuildPipelineScheduleOwner is the generalized scheduler: d virtual
// stages assigned to pp physical ranks by the owner function.
func BuildPipelineScheduleOwner(pp, d, m int, owner func(int) int) [][]Action {
	if pp < 1 || d < pp || d%pp != 0 || m < 1 {
		panic(fmt.Sprintf("framework: invalid schedule params pp=%d d=%d m=%d", pp, d, m))
	}

	const unscheduled = int64(-1)
	fDoneAt := make([][]int64, d)
	bDoneAt := make([][]int64, d)
	for vs := 0; vs < d; vs++ {
		fDoneAt[vs] = make([]int64, m)
		bDoneAt[vs] = make([]int64, m)
		for mu := 0; mu < m; mu++ {
			fDoneAt[vs][mu] = unscheduled
			bDoneAt[vs][mu] = unscheduled
		}
	}
	fIssued := make([]int, d) // forwards issued per virtual stage
	bIssued := make([]int, d) // backwards issued per virtual stage

	type rankState struct {
		busyUntil int64
		actions   []Action
	}
	ranks := make([]rankState, pp)

	// owned[p] lists rank p's virtual stages, ascending.
	owned := make([][]int, pp)
	for vs := 0; vs < d; vs++ {
		p := owner(vs)
		if p < 0 || p >= pp {
			panic(fmt.Sprintf("framework: owner(%d) = %d out of range", vs, p))
		}
		owned[p] = append(owned[p], vs)
	}
	for p := range owned {
		if len(owned[p]) != d/pp {
			panic(fmt.Sprintf("framework: owner assigns %d stages to rank %d, want %d", len(owned[p]), p, d/pp))
		}
	}
	v := d / pp

	inflightCap := func(vs int) int {
		c := d - vs
		if c > m {
			c = m
		}
		if c < 1 {
			c = 1
		}
		return c
	}

	done := func(t int64, now int64) bool { return t != unscheduled && t <= now }

	// Readiness at time now; microbatches flow through each virtual
	// stage strictly in order (FIFO channels).
	fReady := func(vs int, now int64) (int, bool) {
		mu := fIssued[vs]
		if mu >= m {
			return 0, false
		}
		if vs > 0 && !done(fDoneAt[vs-1][mu], now) {
			return 0, false
		}
		if fIssued[vs]-bIssued[vs] >= inflightCap(vs) {
			return 0, false
		}
		return mu, true
	}
	bReady := func(vs int, now int64) (int, bool) {
		mu := bIssued[vs]
		if mu >= m {
			return 0, false
		}
		if vs == d-1 {
			if !done(fDoneAt[vs][mu], now) {
				return 0, false
			}
		} else if !done(bDoneAt[vs+1][mu], now) {
			return 0, false
		}
		return mu, true
	}

	const (
		fDur = int64(2)
		bDur = int64(4) // backward ≈ 2x forward
	)

	remaining := 2 * d * m
	var now int64
	for remaining > 0 {
		progressed := false
		for p := 0; p < pp; p++ {
			r := &ranks[p]
			if r.busyUntil > now {
				continue
			}
			// Backward first (1F1B), deepest owned stage first so
			// gradients drain; then forward, shallowest stage first.
			picked := false
			for c := v - 1; c >= 0 && !picked; c-- {
				vs := owned[p][c]
				if mu, ok := bReady(vs, now); ok {
					r.actions = append(r.actions, Action{Kind: ActBackward, VStage: vs, Micro: mu})
					bDoneAt[vs][mu] = now + bDur
					bIssued[vs]++
					r.busyUntil = now + bDur
					remaining--
					picked = true
				}
			}
			for c := 0; c < v && !picked; c++ {
				vs := owned[p][c]
				if mu, ok := fReady(vs, now); ok {
					r.actions = append(r.actions, Action{Kind: ActForward, VStage: vs, Micro: mu})
					fDoneAt[vs][mu] = now + fDur
					fIssued[vs]++
					r.busyUntil = now + fDur
					remaining--
					picked = true
				}
			}
			if picked {
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Advance to the next completion.
		next := int64(-1)
		for p := range ranks {
			if ranks[p].busyUntil > now && (next < 0 || ranks[p].busyUntil < next) {
				next = ranks[p].busyUntil
			}
		}
		if next < 0 {
			// No rank is busy and nothing is ready: the DAG and
			// in-flight bounds would have to be inconsistent, which
			// the constructor's invariants rule out.
			panic(fmt.Sprintf("framework: schedule stuck at pp=%d v=%d m=%d remaining=%d", pp, v, m, remaining))
		}
		now = next
	}
	out := make([][]Action, pp)
	for p := range ranks {
		out[p] = ranks[p].actions
	}
	return out
}

// MaxInFlight returns, per physical stage, the peak number of
// microbatch activations held at once under the schedule — the
// quantity that drives activation memory.
func MaxInFlight(sched [][]Action) []int {
	out := make([]int, len(sched))
	for p, actions := range sched {
		cur, peak := 0, 0
		for _, a := range actions {
			if a.Kind == ActForward {
				cur++
				if cur > peak {
					peak = cur
				}
			} else {
				cur--
			}
		}
		out[p] = peak
	}
	return out
}
