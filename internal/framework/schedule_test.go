package framework

import (
	"testing"
	"testing/quick"
)

// validateSchedule checks structural invariants of a pipeline
// schedule: every task exactly once, per-virtual-stage microbatch
// order strictly FIFO, every rank's list a valid linearization of the
// dependency DAG, and the in-flight bound respected.
func validateSchedule(t *testing.T, pp, v, m int, sched [][]Action) {
	t.Helper()
	d := pp * v
	if len(sched) != pp {
		t.Fatalf("pp=%d v=%d m=%d: %d rank lists", pp, v, m, len(sched))
	}
	seen := make(map[Action]bool)
	total := 0
	for p, actions := range sched {
		lastMicro := map[[2]int]int{} // (kind, vstage) -> last micro
		inflight := map[int]int{}     // vstage -> outstanding
		for _, a := range actions {
			if a.VStage%pp != p {
				t.Fatalf("rank %d executes foreign vstage %d", p, a.VStage)
			}
			if seen[a] {
				t.Fatalf("duplicate action %v", a)
			}
			seen[a] = true
			total++
			key := [2]int{int(a.Kind), a.VStage}
			if prev, ok := lastMicro[key]; ok && a.Micro != prev+1 {
				t.Fatalf("rank %d: %v out of microbatch order (prev %d)", p, a, prev)
			} else if !ok && a.Micro != 0 {
				t.Fatalf("rank %d: %v should start at micro 0", p, a)
			}
			lastMicro[key] = a.Micro
			if a.Kind == ActForward {
				inflight[a.VStage]++
				cap := d - a.VStage
				if cap > m {
					cap = m
				}
				if inflight[a.VStage] > cap {
					t.Fatalf("rank %d vstage %d exceeds in-flight cap %d", p, a.VStage, cap)
				}
			} else {
				inflight[a.VStage]--
			}
		}
	}
	if total != 2*d*m {
		t.Fatalf("pp=%d v=%d m=%d: %d actions, want %d", pp, v, m, total, 2*d*m)
	}
	for vs := 0; vs < d; vs++ {
		for mu := 0; mu < m; mu++ {
			if !seen[Action{Kind: ActForward, VStage: vs, Micro: mu}] {
				t.Fatalf("missing F(v%d,m%d)", vs, mu)
			}
			if !seen[Action{Kind: ActBackward, VStage: vs, Micro: mu}] {
				t.Fatalf("missing B(v%d,m%d)", vs, mu)
			}
		}
	}
}

func TestClassic1F1BStructure(t *testing.T) {
	const pp, m = 4, 8
	sched := BuildPipelineSchedule(pp, 1, m)
	validateSchedule(t, pp, 1, m, sched)

	// Stage p runs pp-1-p warmup forwards before its first backward —
	// the textbook 1F1B shape.
	for p := 0; p < pp; p++ {
		warmup := 0
		for _, a := range sched[p] {
			if a.Kind == ActBackward {
				break
			}
			warmup++
		}
		want := pp - p
		if want > m {
			want = m
		}
		// The first backward comes after (pp-p) forwards for the last
		// stages and pp-p or pp-p-1... accept the 1F1B band.
		if warmup < pp-p-1 || warmup > pp-p {
			t.Errorf("stage %d warmup = %d, want %d or %d", p, warmup, pp-p-1, pp-p)
		}
	}

	// Steady state alternates F and B on stage 0.
	mid := sched[0][pp : 2*m-pp]
	for i := 1; i < len(mid); i++ {
		if mid[i].Kind == mid[i-1].Kind {
			t.Fatalf("stage 0 not alternating in steady state: %v %v", mid[i-1], mid[i])
		}
	}
}

func TestMaxInFlightBoundsMemory(t *testing.T) {
	sched := BuildPipelineSchedule(4, 1, 16)
	peak := MaxInFlight(sched)
	for p, got := range peak {
		want := 4 - p
		if got != want {
			t.Errorf("stage %d in-flight = %d, want %d (1F1B bound)", p, got, want)
		}
	}
	// GPipe-like degenerate case: one microbatch, everything is 1.
	for _, got := range MaxInFlight(BuildPipelineSchedule(4, 1, 1)) {
		if got != 1 {
			t.Errorf("m=1 in-flight = %d", got)
		}
	}
}

func TestInterleavingReducesBubble(t *testing.T) {
	// Abstract makespan (unit F=2, B=4 as in the scheduler) shrinks
	// with virtual stages at equal total work.
	makespan := func(pp, v, m int) int {
		sched := BuildPipelineSchedule(pp, v, m)
		// Reconstruct per-rank busy time: each F is 2/v units of real
		// work, each B 4/v, so compare bubble fraction instead: count
		// actions per rank; a rank's work is constant, so the longest
		// *schedule length* tracks the bubble. Recompute via simple
		// replay with unit times scaled by 1/v.
		return replayMakespan(sched, pp, v, m)
	}
	m4 := makespan(4, 1, 8)
	m2 := makespan(4, 2, 8)
	if m2 >= m4 {
		t.Fatalf("interleaving did not reduce abstract makespan: v1=%d v2=%d", m4, m2)
	}
}

// replayMakespan replays a schedule with F=2/v, B=4/v unit times and
// cross-stage dependencies, returning the completion time.
func replayMakespan(sched [][]Action, pp, v, m int) int {
	d := pp * v
	fDone := make([][]int, d)
	bDone := make([][]int, d)
	for vs := range fDone {
		fDone[vs] = make([]int, m)
		bDone[vs] = make([]int, m)
		for mu := range fDone[vs] {
			fDone[vs][mu] = -1
			bDone[vs][mu] = -1
		}
	}
	pos := make([]int, pp)
	clock := make([]int, pp)
	fDur, bDur := 2, 4
	remaining := 2 * d * m
	for remaining > 0 {
		progressed := false
		for p := 0; p < pp; p++ {
			if pos[p] >= len(sched[p]) {
				continue
			}
			a := sched[p][pos[p]]
			ready := -1
			switch a.Kind {
			case ActForward:
				if a.VStage == 0 {
					ready = 0
				} else if t := fDone[a.VStage-1][a.Micro]; t >= 0 {
					ready = t
				}
			case ActBackward:
				if a.VStage == d-1 {
					if t := fDone[a.VStage][a.Micro]; t >= 0 {
						ready = t
					}
				} else if t := bDone[a.VStage+1][a.Micro]; t >= 0 {
					ready = t
				}
			}
			if ready < 0 {
				continue
			}
			start := clock[p]
			if ready > start {
				start = ready
			}
			dur := fDur
			if a.Kind == ActBackward {
				dur = bDur
			}
			end := start + dur/1 // per-action durations already scale with chunk size implicitly
			// Scale by 1/v: each chunk holds 1/v of the layers.
			end = start + dur/v
			if end == start {
				end = start + 1
			}
			clock[p] = end
			if a.Kind == ActForward {
				fDone[a.VStage][a.Micro] = end
			} else {
				bDone[a.VStage][a.Micro] = end
			}
			pos[p]++
			remaining--
			progressed = true
		}
		if !progressed {
			// Should never happen for valid schedules.
			panic("replay stuck")
		}
	}
	max := 0
	for _, c := range clock {
		if c > max {
			max = c
		}
	}
	return max
}

func TestScheduleInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(ppRaw, vRaw, mRaw uint8) bool {
		pp := int(ppRaw%6) + 1
		v := int(vRaw%3) + 1
		if pp == 1 {
			v = 1
		}
		m := int(mRaw%12) + 1
		sched := BuildPipelineSchedule(pp, v, m)
		// Reuse the testing validator by shelling through a sub-test
		// would lose the bool; re-validate inline (cheap checks).
		d := pp * v
		seen := make(map[Action]bool)
		for p, actions := range sched {
			for _, a := range actions {
				if a.VStage%pp != p || seen[a] {
					return false
				}
				seen[a] = true
			}
		}
		return len(seen) == 2*d*m
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := BuildPipelineSchedule(4, 2, 8)
	b := BuildPipelineSchedule(4, 2, 8)
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatal("nondeterministic schedule length")
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatal("nondeterministic schedule")
			}
		}
	}
}
