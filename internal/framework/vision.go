package framework

// CNN kernel emission: the cuDNN convolution call sequences, batch
// normalization, pooling and classifier/loss kernels vision training
// produces — and, under torch.compile, the Triton fusions that
// replace pointwise chains (Appendix B's A40 kernel inventory).

import (
	"fmt"

	"maya/internal/cuda"
	"maya/internal/cudnn"
	"maya/internal/models"
)

// convShape tracks one convolution's geometry while walking a CNN.
type convShape struct {
	n, c, hw, k, ksize, stride int
}

func (r *dpRunner) convKernel(sh convShape, which string) {
	if r.err != nil {
		return
	}
	x := r.cudnnTensor(sh.n, sh.c, sh.hw)
	f := r.cudnnFilter(sh.k, sh.c, sh.ksize)
	cd := r.cudnnConv(sh.ksize/2, sh.stride)
	if r.err != nil {
		return
	}
	switch which {
	case "fwd":
		r.check(r.dnn.ConvolutionForward(x, f, cd))
	case "bwdData":
		r.check(r.dnn.ConvolutionBackwardData(x, f, cd))
	case "bwdFilter":
		r.check(r.dnn.ConvolutionBackwardFilter(x, f, cd))
	default:
		r.check(fmt.Errorf("framework: unknown conv pass %q", which))
	}
}

func (r *dpRunner) cudnnTensor(n, c, hw int) *cudnn.TensorDesc {
	t := cudnn.NewTensorDesc()
	r.check(t.Set4D(n, c, hw, hw, r.cfg.DType))
	return t
}

func (r *dpRunner) cudnnFilter(k, c, ksize int) *cudnn.FilterDesc {
	f := cudnn.NewFilterDesc()
	r.check(f.Set4D(k, c, ksize, ksize))
	return f
}

func (r *dpRunner) cudnnConv(pad, stride int) *cudnn.ConvDesc {
	cd := cudnn.NewConvDesc()
	r.check(cd.Set2D(pad, pad, stride, stride))
	return cd
}

// bnAct emits batch-norm + activation for an NCHW tensor. Under
// torch.compile the pair fuses into one Triton kernel whose runtime
// features are its IR instruction counts.
func (r *dpRunner) bnAct(n, c, hw int, fwd bool) {
	elems := int64(n) * int64(c) * int64(hw) * int64(hw)
	if r.cfg.Compile {
		instrs, loads := 9.0, 3.0
		if !fwd {
			instrs, loads = 14.0, 5.0
		}
		r.tritonKernel(elems, instrs, loads)
		return
	}
	if fwd {
		r.kernel("batchnorm_fwd", []int{n, c, hw, hw}, 3*r.es*elems, 8*elems, r.cfg.DType)
		r.kernel("vectorized_elementwise_kernel", []int{int(elems)}, 2*r.es*elems, elems, r.cfg.DType)
	} else {
		r.kernel("batchnorm_bwd", []int{n, c, hw, hw}, 4*r.es*elems, 10*elems, r.cfg.DType)
		r.kernel("vectorized_elementwise_kernel", []int{int(elems)}, 3*r.es*elems, elems, r.cfg.DType)
	}
}

// tritonKernel emits a compiler-fused kernel with IR features.
func (r *dpRunner) tritonKernel(elems int64, instrs, loads float64) {
	if r.err != nil {
		return
	}
	r.check(r.dev.LaunchKernel(cuda.KernelDesc{
		Name:  "triton",
		Dims:  []int{int(elems)},
		Bytes: elems * int64(loads+1) * r.es,
		FLOPs: elems * int64(instrs),
		DType: r.cfg.DType,
		Extra: map[string]float64{"triton_instrs": instrs, "triton_loads": loads},
	}, r.compute))
}

// residualAdd for CNN skip connections.
func (r *dpRunner) cnnResidual(elems int64) {
	if r.cfg.Compile {
		r.tritonKernel(elems, 3, 2)
		return
	}
	r.kernel("vectorized_elementwise_kernel", []int{int(elems)}, 3*r.es*elems, elems, r.cfg.DType)
}

// setupCNN builds the per-stage blocks of the configured CNN.
func (r *dpRunner) setupCNN() {
	mdl := r.cfg.CNN
	n := r.mbs
	res := mdl.Input

	// Stem: conv + bn/act + max pool.
	stem := mdl.Stem
	stemRes := res / stem.Stride
	poolRes := stemRes / 2
	stemShape := convShape{n: n, c: stem.In, hw: res, k: stem.Out, ksize: stem.Kernel, stride: stem.Stride}
	r.blocks = append(r.blocks, dpBlock{
		name:     "stem",
		params:   int64(stem.In) * int64(stem.Out) * int64(stem.Kernel) * int64(stem.Kernel),
		actBytes: 2 * int64(n) * int64(stem.Out) * int64(stemRes) * int64(stemRes) * r.es,
		emitFwd: func() {
			r.convKernel(stemShape, "fwd")
			r.bnAct(n, stem.Out, stemRes, true)
			r.kernel("pooling_fwd_nhwc", []int{n, stem.Out, stemRes, stemRes, 3, 2},
				2*int64(n)*int64(stem.Out)*int64(stemRes)*int64(stemRes)*r.es, 0, r.cfg.DType)
		},
		emitBwd: func() {
			r.kernel("max_pool_backward_nhwc", []int{n, stem.Out, poolRes, poolRes, 3, 2},
				3*int64(n)*int64(stem.Out)*int64(poolRes)*int64(poolRes)*r.es, 0, r.cfg.DType)
			r.bnAct(n, stem.Out, stemRes, false)
			r.convKernel(stemShape, "bwdData")
			r.convKernel(stemShape, "bwdFilter")
		},
	})
	res = poolRes

	for si := range mdl.Stages {
		st := mdl.Stages[si]
		inRes := res
		outRes := res / st.Stride
		r.blocks = append(r.blocks, r.cnnStageBlock(si, st, n, inRes, outRes))
		res = outRes
	}

	// Head: global pool, classifier (and VGG-style dense stack), loss.
	last := mdl.Stages[len(mdl.Stages)-1].Out
	finalRes := res
	classes := mdl.Classes
	fcHidden := mdl.FCHidden
	headParams := int64(last) * int64(classes)
	if fcHidden > 0 {
		headParams = int64(last)*49*int64(fcHidden) + int64(fcHidden)*int64(fcHidden) + int64(fcHidden)*int64(classes)
	}
	r.blocks = append(r.blocks, dpBlock{
		name:     "head",
		params:   headParams,
		actBytes: int64(n) * int64(last+classes+fcHidden) * r.es * 2,
		emitFwd: func() {
			r.kernel("pooling_fwd_nhwc", []int{n, last, finalRes, finalRes, finalRes, 1},
				int64(n)*int64(last)*int64(finalRes)*int64(finalRes)*r.es, 0, r.cfg.DType)
			if fcHidden > 0 {
				r.fc(n, fcHidden, last*49)
				r.fc(n, fcHidden, fcHidden)
				r.fc(n, classes, fcHidden)
			} else {
				r.fc(n, classes, last)
			}
			logits := int64(n) * int64(classes)
			r.kernel("softmax_warp_forward", []int{n, classes}, 2*r.es*logits, 5*logits, r.cfg.DType)
			r.kernel("nll_loss_forward_reduce_cuda_kernel_2d", []int{n}, 8*int64(n), 2*int64(n), r.cfg.DType)
		},
		emitBwd: func() {
			logits := int64(n) * int64(classes)
			r.kernel("nll_loss_backward_reduce_cuda_kernel_2d", []int{n}, 8*int64(n), 2*int64(n), r.cfg.DType)
			r.kernel("softmax_warp_backward", []int{n, classes}, 3*r.es*logits, 6*logits, r.cfg.DType)
			if fcHidden > 0 {
				r.fc(n, fcHidden, classes)
				r.fc(classes, fcHidden, n)
				r.fc(n, fcHidden, fcHidden)
				r.fc(fcHidden, fcHidden, n)
				r.fc(n, last*49, fcHidden)
				r.fc(fcHidden, last*49, n)
			} else {
				r.fc(n, last, classes)
				r.fc(classes, last, n)
			}
			r.kernel("max_pool_backward_nhwc", []int{n, last, finalRes, finalRes, finalRes, 1},
				2*int64(n)*int64(last)*int64(finalRes)*int64(finalRes)*r.es, 0, r.cfg.DType)
		},
	})
}

// cnnStageBlock builds one repeated stage (ResNet bottlenecks or
// plain conv repeats).
func (r *dpRunner) cnnStageBlock(si int, st models.ConvStage, n, inRes, outRes int) dpBlock {
	var params int64
	emitOne := func(in int, res int, stride int, fwd bool) {
		if st.Bottleneck {
			mid := st.Out / 4
			shapes := []convShape{
				{n: n, c: in, hw: res, k: mid, ksize: 1, stride: stride},
				{n: n, c: mid, hw: res / stride, k: mid, ksize: st.Kernel, stride: 1},
				{n: n, c: mid, hw: res / stride, k: st.Out, ksize: 1, stride: 1},
			}
			if fwd {
				for _, sh := range shapes {
					r.convKernel(sh, "fwd")
					r.bnAct(n, sh.k, sh.hw/sh.stride, true)
				}
				r.cnnResidual(int64(n) * int64(st.Out) * int64(res/stride) * int64(res/stride))
			} else {
				r.cnnResidual(int64(n) * int64(st.Out) * int64(res/stride) * int64(res/stride))
				for i := len(shapes) - 1; i >= 0; i-- {
					sh := shapes[i]
					r.bnAct(n, sh.k, sh.hw/sh.stride, false)
					r.convKernel(sh, "bwdData")
					r.convKernel(sh, "bwdFilter")
				}
			}
			return
		}
		sh := convShape{n: n, c: in, hw: res, k: st.Out, ksize: st.Kernel, stride: stride}
		if fwd {
			r.convKernel(sh, "fwd")
			r.bnAct(n, st.Out, res/stride, true)
		} else {
			r.bnAct(n, st.Out, res/stride, false)
			r.convKernel(sh, "bwdData")
			r.convKernel(sh, "bwdFilter")
		}
	}

	if st.Bottleneck {
		mid := st.Out / 4
		params = int64(st.In)*int64(mid) + int64(mid)*int64(mid)*int64(st.Kernel*st.Kernel) + int64(mid)*int64(st.Out)
		if st.Repeat > 1 {
			per := int64(st.Out)*int64(mid) + int64(mid)*int64(mid)*int64(st.Kernel*st.Kernel) + int64(mid)*int64(st.Out)
			params += per * int64(st.Repeat-1)
		}
	} else {
		params = int64(st.In) * int64(st.Out) * int64(st.Kernel*st.Kernel)
		if st.Repeat > 1 {
			params += int64(st.Out) * int64(st.Out) * int64(st.Kernel*st.Kernel) * int64(st.Repeat-1)
		}
	}
	actBytes := int64(st.Repeat) * 3 * int64(n) * int64(st.Out) * int64(outRes) * int64(outRes) * r.es

	return dpBlock{
		name:     fmt.Sprintf("stage%d", si),
		params:   params,
		actBytes: actBytes,
		emitFwd: func() {
			emitOne(st.In, inRes, st.Stride, true)
			for rep := 1; rep < st.Repeat; rep++ {
				emitOne(st.Out, outRes, 1, true)
			}
		},
		emitBwd: func() {
			for rep := 1; rep < st.Repeat; rep++ {
				emitOne(st.Out, outRes, 1, false)
			}
			emitOne(st.In, inRes, st.Stride, false)
		},
	}
}

// fc emits a dense layer matmul: cublasLtMatmul under torch.compile,
// the classic Sgemm otherwise.
func (r *dpRunner) fc(m, n, k int) {
	if r.err != nil {
		return
	}
	if r.cfg.Compile {
		r.check(r.blas.LtMatmul(m, n, k, r.cfg.DType))
	} else {
		r.check(r.blas.SgemmV2(m, n, k))
	}
}
