// Package hardware describes the accelerator hardware Maya models:
// GPU microarchitectures, node topologies, interconnects and host CPUs.
//
// The catalog mirrors the clusters used in the paper's evaluation —
// DGX-H100 and DGX-V100 servers plus an 8xA40 node — but arbitrary
// clusters can be described with the same types. Everything is a plain
// value type: specs are immutable inputs to the emulator, the timing
// oracle, the estimators and the simulator.
package hardware

import (
	"fmt"
	"time"
)

// DType identifies a numeric element type used by kernels.
type DType string

// Data types that appear in training workloads.
const (
	FP32 DType = "fp32"
	FP16 DType = "fp16"
	BF16 DType = "bf16"
	FP8  DType = "fp8"
	INT8 DType = "int8"
)

// Size returns the element size in bytes.
func (d DType) Size() int64 {
	switch d {
	case FP32:
		return 4
	case FP16, BF16:
		return 2
	case FP8, INT8:
		return 1
	default:
		return 4
	}
}

// Arch identifies a GPU microarchitecture generation. The synthetic
// silicon model keys its architecture quirks on this value.
type Arch string

// Supported architectures.
const (
	Volta  Arch = "volta"
	Ampere Arch = "ampere"
	Hopper Arch = "hopper"
)

// GPU describes a single accelerator device.
type GPU struct {
	Name string // marketing name, e.g. "H100-SXM"
	Arch Arch

	// MemBytes is the HBM capacity available to the allocator.
	MemBytes int64
	// MemBWGBps is the peak HBM bandwidth in GB/s.
	MemBWGBps float64
	// SMs is the number of streaming multiprocessors.
	SMs int
	// ClockMHz is the boost clock.
	ClockMHz int

	// TensorTFLOPS maps data type to peak dense tensor-core throughput
	// in TFLOP/s. Types absent from the map fall back to VectorTFLOPS
	// (the device executes them on the general-purpose pipeline, the
	// way V100 handles bf16).
	TensorTFLOPS map[DType]float64
	// VectorTFLOPS is peak non-tensor-core FP32 throughput.
	VectorTFLOPS float64

	// LaunchOverhead is the device-side cost of starting a kernel
	// (scheduling, not host dispatch).
	LaunchOverhead time.Duration

	// NVLinkGBps is the per-GPU aggregate NVLink bandwidth in GB/s
	// (unidirectional) when the node topology provides NVLink.
	NVLinkGBps float64
}

// PeakTFLOPS returns the peak matmul throughput for dtype, falling
// back to the vector pipeline when no tensor-core path exists.
func (g GPU) PeakTFLOPS(dt DType) float64 {
	if v, ok := g.TensorTFLOPS[dt]; ok {
		return v
	}
	return g.VectorTFLOPS
}

// IntraTopology describes how GPUs inside one node are connected.
type IntraTopology string

// Node-internal topologies used by the paper's clusters.
const (
	// NVSwitch provides full-bandwidth all-to-all NVLink (DGX-H100).
	NVSwitch IntraTopology = "nvswitch"
	// CubeMesh is the asymmetric 8-GPU hybrid cube-mesh of DGX-V100.
	CubeMesh IntraTopology = "cubemesh"
	// PairwiseNVLink links GPUs in pairs; traffic between pairs
	// falls back to PCIe (the A40 node).
	PairwiseNVLink IntraTopology = "pairwise"
	// PCIeOnly has no NVLink at all.
	PCIeOnly IntraTopology = "pcie"
)

// InterconnectKind names the fabric between nodes.
type InterconnectKind string

// Inter-node fabrics.
const (
	InfiniBand InterconnectKind = "infiniband"
	RoCE       InterconnectKind = "roce"
	TCP        InterconnectKind = "tcp"
)

// Interconnect describes the network between nodes.
type Interconnect struct {
	Kind InterconnectKind
	// PerGPUGBps is the NIC bandwidth available per GPU in GB/s.
	PerGPUGBps float64
	// BaseLatency is the one-way small-message latency.
	BaseLatency time.Duration
}

// Node describes one server.
type Node struct {
	GPU         GPU
	GPUsPerNode int
	Topology    IntraTopology
	// PCIeGBps is the fallback bandwidth for device pairs without
	// NVLink and for host<->device transfers.
	PCIeGBps float64
	Inter    Interconnect
}

// Host models the CPU side that dispatches device work. The emulator
// uses it to synthesize hostDelay ops deterministically.
type Host struct {
	Name string
	// DispatchOverhead is the mean cost of one device-API call
	// (framework dispatch + driver entry).
	DispatchOverhead time.Duration
	// KernelPrepOverhead is extra per-kernel-launch host work
	// (argument marshalling, Python-layer bookkeeping).
	KernelPrepOverhead time.Duration
	// JitterFrac is the relative spread of the deterministic jitter
	// applied to host delays (0.15 = +/-15%).
	JitterFrac float64
}

// Cluster is a homogeneous collection of nodes plus the host spec of
// each server.
type Cluster struct {
	Name  string
	Node  Node
	Nodes int
	Host  Host
}

// TotalGPUs returns the number of devices in the cluster.
func (c Cluster) TotalGPUs() int { return c.Node.GPUsPerNode * c.Nodes }

// SameNode reports whether two global ranks live on one server.
func (c Cluster) SameNode(a, b int) bool {
	return a/c.Node.GPUsPerNode == b/c.Node.GPUsPerNode
}

// NodeOf returns the node index hosting a global rank.
func (c Cluster) NodeOf(rank int) int { return rank / c.Node.GPUsPerNode }

// Validate checks the cluster description for obvious mistakes.
func (c Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("hardware: cluster %q has %d nodes", c.Name, c.Nodes)
	}
	if c.Node.GPUsPerNode <= 0 {
		return fmt.Errorf("hardware: cluster %q has %d GPUs per node", c.Name, c.Node.GPUsPerNode)
	}
	if c.Node.GPU.MemBytes <= 0 {
		return fmt.Errorf("hardware: cluster %q GPU has no memory", c.Name)
	}
	if c.Node.GPU.MemBWGBps <= 0 {
		return fmt.Errorf("hardware: cluster %q GPU has no memory bandwidth", c.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (c Cluster) String() string {
	return fmt.Sprintf("%s: %d x %d x %s", c.Name, c.Nodes, c.Node.GPUsPerNode, c.Node.GPU.Name)
}

const gib = int64(1) << 30

// V100 is the 40GB Volta part used in the paper's DGX-V100 cluster.
// (The paper reports 40GB HBM per GPU; we follow the paper.)
func V100() GPU {
	return GPU{
		Name:      "V100",
		Arch:      Volta,
		MemBytes:  40 * gib,
		MemBWGBps: 900,
		SMs:       80,
		ClockMHz:  1530,
		TensorTFLOPS: map[DType]float64{
			FP16: 112,
			// No bf16 tensor cores on Volta: bf16 matmuls run on a
			// slow emulated path, which is why Calculon/AMPeD skip
			// Volta bf16 in the paper.
			BF16: 28,
		},
		VectorTFLOPS:   15.7,
		LaunchOverhead: 4 * time.Microsecond,
		NVLinkGBps:     150, // 300 GB/s bidirectional cube-mesh links
	}
}

// H100 is the 80GB Hopper SXM part of DGX-H100.
func H100() GPU {
	return GPU{
		Name:      "H100",
		Arch:      Hopper,
		MemBytes:  80 * gib,
		MemBWGBps: 3350,
		SMs:       132,
		ClockMHz:  1830,
		TensorTFLOPS: map[DType]float64{
			FP16: 989,
			BF16: 989,
			FP8:  1979,
		},
		VectorTFLOPS:   67,
		LaunchOverhead: 2500 * time.Nanosecond,
		NVLinkGBps:     450, // NVLink 4.0, 900 GB/s bidirectional
	}
}

// A40 is the 48GB Ampere workstation part used for the vision
// experiments.
func A40() GPU {
	return GPU{
		Name:      "A40",
		Arch:      Ampere,
		MemBytes:  48 * gib,
		MemBWGBps: 696,
		SMs:       84,
		ClockMHz:  1740,
		TensorTFLOPS: map[DType]float64{
			FP16: 150,
			BF16: 150,
		},
		VectorTFLOPS:   37,
		LaunchOverhead: 3 * time.Microsecond,
		NVLinkGBps:     56, // pairwise NVLink bridges
	}
}

// A100 is included for completeness of the catalog.
func A100() GPU {
	return GPU{
		Name:      "A100",
		Arch:      Ampere,
		MemBytes:  80 * gib,
		MemBWGBps: 2039,
		SMs:       108,
		ClockMHz:  1410,
		TensorTFLOPS: map[DType]float64{
			FP16: 312,
			BF16: 312,
		},
		VectorTFLOPS:   19.5,
		LaunchOverhead: 3 * time.Microsecond,
		NVLinkGBps:     300,
	}
}

// EpycHost models the AMD EPYC head nodes the paper ran the pipeline
// on.
func EpycHost() Host {
	return Host{
		Name:               "EPYC-7513",
		DispatchOverhead:   5 * time.Microsecond,
		KernelPrepOverhead: 9 * time.Microsecond,
		JitterFrac:         0.15,
	}
}

// DGXH100 builds the paper's H100 cluster: 8 GPUs per node, NVSwitch
// inside, 400Gb RoCE per GPU between nodes.
func DGXH100(nodes int) Cluster {
	return Cluster{
		Name: fmt.Sprintf("%dxH100", nodes*8),
		Node: Node{
			GPU:         H100(),
			GPUsPerNode: 8,
			Topology:    NVSwitch,
			PCIeGBps:    55,
			Inter: Interconnect{
				Kind:        RoCE,
				PerGPUGBps:  50, // 400 Gb/s per GPU pair
				BaseLatency: 5 * time.Microsecond,
			},
		},
		Nodes: nodes,
		Host:  EpycHost(),
	}
}

// DGXV100 builds the paper's V100 cluster: 8 GPUs per node, hybrid
// cube-mesh NVLink, 100Gb InfiniBand between nodes.
func DGXV100(nodes int) Cluster {
	return Cluster{
		Name: fmt.Sprintf("%dxV100", nodes*8),
		Node: Node{
			GPU:         V100(),
			GPUsPerNode: 8,
			Topology:    CubeMesh,
			PCIeGBps:    12,
			Inter: Interconnect{
				Kind:        InfiniBand,
				PerGPUGBps:  12.5, // 100 Gb/s
				BaseLatency: 3 * time.Microsecond,
			},
		},
		Nodes: nodes,
		Host:  EpycHost(),
	}
}

// A40Node builds the single 8xA40 node with pairwise NVLink used for
// the vision experiments.
func A40Node() Cluster {
	return Cluster{
		Name: "8xA40",
		Node: Node{
			GPU:         A40(),
			GPUsPerNode: 8,
			Topology:    PairwiseNVLink,
			PCIeGBps:    25,
			Inter: Interconnect{
				Kind:        TCP,
				PerGPUGBps:  3,
				BaseLatency: 20 * time.Microsecond,
			},
		},
		Nodes: 1,
		Host:  EpycHost(),
	}
}

// ByName returns a preset cluster for a short spec string such as
// "8xV100", "64xH100" or "8xA40". It is the parser the CLIs use.
func ByName(spec string) (Cluster, error) {
	var n int
	var gpu string
	if _, err := fmt.Sscanf(spec, "%dx%s", &n, &gpu); err != nil {
		return Cluster{}, fmt.Errorf("hardware: bad cluster spec %q (want e.g. 32xH100)", spec)
	}
	switch gpu {
	case "H100", "h100":
		if n%8 != 0 {
			return Cluster{}, fmt.Errorf("hardware: H100 clusters come in multiples of 8 GPUs, got %d", n)
		}
		return DGXH100(n / 8), nil
	case "V100", "v100":
		if n%8 != 0 {
			return Cluster{}, fmt.Errorf("hardware: V100 clusters come in multiples of 8 GPUs, got %d", n)
		}
		return DGXV100(n / 8), nil
	case "A40", "a40":
		if n != 8 {
			return Cluster{}, fmt.Errorf("hardware: only the 8xA40 node is cataloged, got %d", n)
		}
		return A40Node(), nil
	default:
		return Cluster{}, fmt.Errorf("hardware: unknown GPU %q", gpu)
	}
}
