// Package models is the model zoo: parameter, FLOP and geometry
// calculators for the architectures the paper evaluates — the GPT-3
// family, Llama-2, and the vision/NLP models of the generality study.
package models

import "fmt"

// Transformer describes a decoder- or encoder-style transformer.
type Transformer struct {
	Name   string
	Layers int
	Hidden int
	Heads  int
	// FFN is the feed-forward inner dimension (4*Hidden for GPT;
	// Llama uses a gated 11008).
	FFN int
	// GatedMLP marks SwiGLU-style MLPs with three projection matrices.
	GatedMLP bool
	Seq      int
	Vocab    int
	// NumExperts > 0 makes the MLP a mixture-of-experts layer with
	// TopK routing. Routing is modeled as balanced (the
	// deterministic-control-flow case the paper's §8 identifies as
	// supported: expert-parallel kernels without host-side gating).
	NumExperts int
	// TopK is the number of experts each token routes to (default 2
	// when NumExperts > 0).
	TopK int
}

// ExpertTopK returns the effective top-k routing width.
func (t Transformer) ExpertTopK() int {
	if t.NumExperts == 0 {
		return 0
	}
	if t.TopK == 0 {
		return 2
	}
	return t.TopK
}

// Params returns the total parameter count.
func (t Transformer) Params() int64 {
	h := int64(t.Hidden)
	f := int64(t.FFN)
	mats := int64(2)
	if t.GatedMLP {
		mats = 3
	}
	mlp := mats * h * f
	if t.NumExperts > 0 {
		mlp = int64(t.NumExperts)*mats*h*f + h*int64(t.NumExperts) // experts + router
	}
	perLayer := 4*h*h + mlp + 4*h // qkv+proj, mlp, layernorm params
	return int64(t.Layers)*perLayer + int64(t.Vocab)*h + int64(t.Seq)*h
}

// TrainFLOPsPerIter returns the forward+backward FLOPs for one
// iteration at the given global batch size, including the attention
// quadratic term and the LM head (the Megatron-LM accounting used to
// report MFU).
func (t Transformer) TrainFLOPsPerIter(globalBatch int) float64 {
	b := float64(globalBatch)
	s := float64(t.Seq)
	h := float64(t.Hidden)
	l := float64(t.Layers)
	v := float64(t.Vocab)
	f := float64(t.FFN)
	mlpMult := 2.0
	if t.GatedMLP {
		mlpMult = 3.0
	}
	if t.NumExperts > 0 {
		// Active parameters only: each token visits TopK experts.
		mlpMult *= float64(t.ExpertTopK())
	}
	// Per layer, per token, forward: 2*(4h^2) attn proj + 2*mlpMult*h*f
	// mlp + 4*h*s attention scores/context. Backward is 2x forward.
	perTokenLayer := 2*(4*h*h+mlpMult*h*f) + 4*h*s
	head := 2 * v * h
	return 3 * b * s * (l*perTokenLayer + head)
}

// String implements fmt.Stringer.
func (t Transformer) String() string {
	return fmt.Sprintf("%s (%.1fB params)", t.Name, float64(t.Params())/1e9)
}

// GPT3 family presets used throughout the evaluation.

// GPT3Small345M is the GPT-2/3 345M configuration (generality study).
func GPT3Small345M() Transformer {
	return Transformer{Name: "GPT3-345M", Layers: 24, Hidden: 1024, Heads: 16, FFN: 4096, Seq: 1024, Vocab: 51200}
}

// GPT3_1_3B is GPT-3 XL.
func GPT3_1_3B() Transformer {
	return Transformer{Name: "GPT3-1.3B", Layers: 24, Hidden: 2048, Heads: 16, FFN: 8192, Seq: 2048, Vocab: 51200}
}

// GPT3_2_7B is the 2.7B model evaluated on the V100 clusters.
func GPT3_2_7B() Transformer {
	return Transformer{Name: "GPT3-2.7B", Layers: 32, Hidden: 2560, Heads: 32, FFN: 10240, Seq: 2048, Vocab: 51200}
}

// GPT3_18_4B is the 18.4B model evaluated on the H100 clusters.
func GPT3_18_4B() Transformer {
	return Transformer{Name: "GPT3-18.4B", Layers: 40, Hidden: 6144, Heads: 48, FFN: 24576, Seq: 2048, Vocab: 51200}
}

// GPT3_145_6B is the hyperscale model of §7.4.
func GPT3_145_6B() Transformer {
	return Transformer{Name: "GPT3-145.6B", Layers: 96, Hidden: 11264, Heads: 88, FFN: 45056, Seq: 2048, Vocab: 51200}
}

// Llama2_7B with its gated MLP and 4K context.
func Llama2_7B() Transformer {
	return Transformer{Name: "Llama2-7B", Layers: 32, Hidden: 4096, Heads: 32, FFN: 11008, GatedMLP: true, Seq: 4096, Vocab: 32000}
}

// BERTLarge for the generality study.
func BERTLarge() Transformer {
	return Transformer{Name: "BERT-Large", Layers: 24, Hidden: 1024, Heads: 16, FFN: 4096, Seq: 512, Vocab: 30522}
}

// T5Large approximated as a 48-layer stack (24 encoder + 24 decoder).
func T5Large() Transformer {
	return Transformer{Name: "T5-Large", Layers: 48, Hidden: 1024, Heads: 16, FFN: 4096, Seq: 512, Vocab: 32128}
}

// ViTLarge treats patches as sequence positions.
func ViTLarge() Transformer {
	return Transformer{Name: "ViT-Large", Layers: 24, Hidden: 1024, Heads: 16, FFN: 4096, Seq: 577, Vocab: 1000}
}

// ByName looks up a transformer preset.
func ByName(name string) (Transformer, error) {
	switch name {
	case "gpt3-345m":
		return GPT3Small345M(), nil
	case "gpt3-1.3b":
		return GPT3_1_3B(), nil
	case "gpt3-2.7b":
		return GPT3_2_7B(), nil
	case "gpt3-18.4b":
		return GPT3_18_4B(), nil
	case "gpt3-145.6b":
		return GPT3_145_6B(), nil
	case "llama2-7b":
		return Llama2_7B(), nil
	case "bert-large":
		return BERTLarge(), nil
	case "t5-large":
		return T5Large(), nil
	case "vit-large":
		return ViTLarge(), nil
	default:
		return Transformer{}, fmt.Errorf("models: unknown transformer %q", name)
	}
}
