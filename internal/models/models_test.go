package models

import (
	"math"
	"testing"
)

func TestTransformerParamCounts(t *testing.T) {
	cases := []struct {
		model  Transformer
		wantB  float64
		within float64
	}{
		{GPT3_1_3B(), 1.3, 0.25},
		{GPT3_2_7B(), 2.7, 0.2},
		{GPT3_18_4B(), 18.4, 0.15},
		{GPT3_145_6B(), 145.6, 0.15},
		{Llama2_7B(), 6.7, 0.15},
	}
	for _, c := range cases {
		got := float64(c.model.Params()) / 1e9
		if math.Abs(got-c.wantB)/c.wantB > c.within {
			t.Errorf("%s params = %.2fB, want ~%.1fB", c.model.Name, got, c.wantB)
		}
	}
}

func TestTrainFLOPsScale(t *testing.T) {
	m := GPT3_2_7B()
	f1 := m.TrainFLOPsPerIter(64)
	f2 := m.TrainFLOPsPerIter(128)
	if math.Abs(f2/f1-2) > 1e-9 {
		t.Fatalf("flops not linear in batch: %v", f2/f1)
	}
	// ~6ND rule of thumb: 3 * 2 * params * tokens, within 2x for the
	// attention and head terms.
	approx := 6 * float64(m.Params()) * 64 * float64(m.Seq)
	if f1 < approx*0.8 || f1 > approx*2 {
		t.Fatalf("flops %.3g vs 6ND %.3g out of band", f1, approx)
	}
}

func TestCNNCounts(t *testing.T) {
	r := ResNet152()
	params := float64(r.Params()) / 1e6
	if params < 35 || params > 90 {
		t.Errorf("ResNet152 params = %.1fM, want ~60M", params)
	}
	f := r.TrainFLOPsPerIter(256)
	// ResNet-152 forward is ~11.5 GFLOPs/image at 224x224; train is
	// 3x that. Our staged approximation should land within 2.5x.
	want := 3.0 * 11.5e9 * 256
	if f < want/2.5 || f > want*2.5 {
		t.Errorf("ResNet152 train flops = %.3g, want ~%.3g", f, want)
	}
	if ResNet50().Params() >= r.Params() {
		t.Error("ResNet50 should be smaller than ResNet152")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gpt3-1.3b", "gpt3-2.7b", "gpt3-18.4b", "gpt3-145.6b", "llama2-7b", "bert-large", "t5-large", "vit-large"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("gpt5"); err == nil {
		t.Error("unknown model accepted")
	}
	for _, name := range []string{"resnet152", "resnet50", "densenet201", "mobilenetv2", "vgg19"} {
		if _, err := CNNByName(name); err != nil {
			t.Errorf("CNNByName(%q): %v", name, err)
		}
	}
}

func TestGatedMLPCountsExtraMatrix(t *testing.T) {
	plain := Transformer{Layers: 1, Hidden: 1024, Heads: 8, FFN: 4096, Seq: 128, Vocab: 1000}
	gated := plain
	gated.GatedMLP = true
	if gated.Params() <= plain.Params() {
		t.Fatal("gated MLP must add parameters")
	}
	if gated.TrainFLOPsPerIter(8) <= plain.TrainFLOPsPerIter(8) {
		t.Fatal("gated MLP must add FLOPs")
	}
}
