package models

import "fmt"

// ConvStage is a repeated convolution block in a CNN.
type ConvStage struct {
	// In/Out channels, kernel size, stride of the first repeat.
	In, Out, Kernel, Stride int
	// Repeat is how many times the block runs (stride 1 after the
	// first).
	Repeat int
	// Bottleneck marks ResNet-style 1x1/3x3/1x1 triplets.
	Bottleneck bool
}

// CNN describes a convolutional network as staged blocks.
type CNN struct {
	Name    string
	Input   int // square input resolution
	Stem    ConvStage
	Stages  []ConvStage
	Classes int
	// FCHidden adds VGG-style dense layers before the classifier.
	FCHidden int
}

// Params approximates the parameter count.
func (c CNN) Params() int64 {
	var p int64
	add := func(in, out, k, repeat int, bottleneck bool) {
		if bottleneck {
			mid := out / 4
			per := int64(in)*int64(mid) + int64(mid)*int64(mid)*int64(k)*int64(k) + int64(mid)*int64(out)
			p += per
			if repeat > 1 {
				per2 := int64(out)*int64(mid) + int64(mid)*int64(mid)*int64(k)*int64(k) + int64(mid)*int64(out)
				p += per2 * int64(repeat-1)
			}
			return
		}
		p += int64(in) * int64(out) * int64(k) * int64(k)
		if repeat > 1 {
			p += int64(out) * int64(out) * int64(k) * int64(k) * int64(repeat-1)
		}
	}
	add(c.Stem.In, c.Stem.Out, c.Stem.Kernel, c.Stem.Repeat, false)
	for _, s := range c.Stages {
		add(s.In, s.Out, s.Kernel, s.Repeat, s.Bottleneck)
	}
	last := c.Stages[len(c.Stages)-1].Out
	if c.FCHidden > 0 {
		p += int64(last)*49*int64(c.FCHidden) + int64(c.FCHidden)*int64(c.FCHidden) + int64(c.FCHidden)*int64(c.Classes)
	} else {
		p += int64(last) * int64(c.Classes)
	}
	return p
}

// TrainFLOPsPerIter approximates forward+backward FLOPs for one
// iteration at the given global batch.
func (c CNN) TrainFLOPsPerIter(globalBatch int) float64 {
	res := float64(c.Input)
	var fwd float64
	conv := func(in, out, k, stride, repeat int, bottleneck bool) {
		res /= float64(stride)
		area := res * res
		if bottleneck {
			mid := float64(out) / 4
			per := 2 * area * (float64(in)*mid + mid*mid*float64(k*k) + mid*float64(out))
			fwd += per
			if repeat > 1 {
				fwd += 2 * area * (float64(out)*mid + mid*mid*float64(k*k) + mid*float64(out)) * float64(repeat-1)
			}
			return
		}
		fwd += 2 * area * float64(in) * float64(out) * float64(k*k)
		if repeat > 1 {
			fwd += 2 * area * float64(out) * float64(out) * float64(k*k) * float64(repeat-1)
		}
	}
	conv(c.Stem.In, c.Stem.Out, c.Stem.Kernel, c.Stem.Stride, c.Stem.Repeat, false)
	for _, s := range c.Stages {
		conv(s.In, s.Out, s.Kernel, s.Stride, s.Repeat, s.Bottleneck)
	}
	return 3 * fwd * float64(globalBatch)
}

// String implements fmt.Stringer.
func (c CNN) String() string {
	return fmt.Sprintf("%s (%.1fM params)", c.Name, float64(c.Params())/1e6)
}

// ResNet152 is the paper's vision workload (Fig. 10).
func ResNet152() CNN {
	return CNN{
		Name:  "ResNet152",
		Input: 224,
		Stem:  ConvStage{In: 3, Out: 64, Kernel: 7, Stride: 2, Repeat: 1},
		Stages: []ConvStage{
			{In: 64, Out: 256, Kernel: 3, Stride: 2, Repeat: 3, Bottleneck: true},
			{In: 256, Out: 512, Kernel: 3, Stride: 2, Repeat: 8, Bottleneck: true},
			{In: 512, Out: 1024, Kernel: 3, Stride: 2, Repeat: 36, Bottleneck: true},
			{In: 1024, Out: 2048, Kernel: 3, Stride: 2, Repeat: 3, Bottleneck: true},
		},
		Classes: 1000,
	}
}

// ResNet50 for the generality matrix.
func ResNet50() CNN {
	r := ResNet152()
	r.Name = "ResNet50"
	r.Stages[1].Repeat = 4
	r.Stages[2].Repeat = 6
	return r
}

// DenseNet201 approximated with widening stages.
func DenseNet201() CNN {
	return CNN{
		Name:  "DenseNet201",
		Input: 224,
		Stem:  ConvStage{In: 3, Out: 64, Kernel: 7, Stride: 2, Repeat: 1},
		Stages: []ConvStage{
			{In: 64, Out: 128, Kernel: 3, Stride: 2, Repeat: 6},
			{In: 128, Out: 256, Kernel: 3, Stride: 2, Repeat: 12},
			{In: 256, Out: 448, Kernel: 3, Stride: 2, Repeat: 24},
			{In: 448, Out: 512, Kernel: 3, Stride: 2, Repeat: 16},
		},
		Classes: 1000,
	}
}

// MobileNetV2 approximated with thin 3x3 stages.
func MobileNetV2() CNN {
	return CNN{
		Name:  "MobileNetV2",
		Input: 224,
		Stem:  ConvStage{In: 3, Out: 32, Kernel: 3, Stride: 2, Repeat: 1},
		Stages: []ConvStage{
			{In: 32, Out: 24, Kernel: 3, Stride: 2, Repeat: 2},
			{In: 24, Out: 32, Kernel: 3, Stride: 2, Repeat: 3},
			{In: 32, Out: 96, Kernel: 3, Stride: 2, Repeat: 4},
			{In: 96, Out: 320, Kernel: 3, Stride: 2, Repeat: 4},
		},
		Classes: 1000,
	}
}

// VGG19 with its dense head.
func VGG19() CNN {
	return CNN{
		Name:  "VGG19",
		Input: 224,
		Stem:  ConvStage{In: 3, Out: 64, Kernel: 3, Stride: 1, Repeat: 2},
		Stages: []ConvStage{
			{In: 64, Out: 128, Kernel: 3, Stride: 2, Repeat: 2},
			{In: 128, Out: 256, Kernel: 3, Stride: 2, Repeat: 4},
			{In: 256, Out: 512, Kernel: 3, Stride: 2, Repeat: 4},
			{In: 512, Out: 512, Kernel: 3, Stride: 2, Repeat: 4},
		},
		Classes:  1000,
		FCHidden: 4096,
	}
}

// CNNByName looks up a CNN preset.
func CNNByName(name string) (CNN, error) {
	switch name {
	case "resnet152":
		return ResNet152(), nil
	case "resnet50":
		return ResNet50(), nil
	case "densenet201":
		return DenseNet201(), nil
	case "mobilenetv2":
		return MobileNetV2(), nil
	case "vgg19":
		return VGG19(), nil
	default:
		return CNN{}, fmt.Errorf("models: unknown CNN %q", name)
	}
}
