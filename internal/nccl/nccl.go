// Package nccl emulates the NCCL communicator API. Each worker
// initializes communicators with CommInitRank using a shared unique
// ID; collectives then carry (communicator, sequence) identifiers the
// collator uses to reconstruct the global communication pattern —
// which workers participate and in what topology — exactly as the
// paper describes.
//
// Because the training control flow never depends on the transferred
// values, no data moves and no inter-process synchronization is
// needed: every worker just records its side of each collective.
package nccl

import (
	"fmt"
	"sort"

	"maya/internal/cuda"
	"maya/internal/prand"
)

// UniqueID identifies a communicator across workers, standing in for
// ncclUniqueId. All members must present the same ID.
type UniqueID uint64

// UniqueIDFor derives a deterministic unique ID from a logical group
// tag (e.g. "tp", "dp") and the global ranks of the members. Real
// jobs broadcast an ID from rank 0; deriving it deterministically
// gives the same global identity without IPC, which the paper notes
// the emulator does not need.
func UniqueIDFor(tag string, globalRanks []int) UniqueID {
	sorted := append([]int(nil), globalRanks...)
	sort.Ints(sorted)
	h := prand.Hash64("nccl", tag)
	for _, r := range sorted {
		h = prand.HashInts(h, int64(r))
	}
	return UniqueID(h)
}

// Communicator is one worker's handle on a collective group, as
// returned by ncclCommInitRank.
type Communicator struct {
	dev    cuda.Device
	id     UniqueID
	nranks int
	rank   int

	seq      int         // per-communicator collective counter
	sendSeq  map[int]int // per-destination P2P counters
	recvSeq  map[int]int // per-source P2P counters
	groupLen int         // >0 while inside GroupStart/GroupEnd
	valid    bool
}

// CommInitRank initializes this worker's membership in a
// communicator. nranks is the group size and rank this worker's
// position within the group.
func CommInitRank(dev cuda.Device, nranks, rank int, id UniqueID) (*Communicator, error) {
	if dev == nil {
		return nil, fmt.Errorf("nccl: %w: nil device", cuda.ErrInvalidValue)
	}
	if nranks <= 0 || rank < 0 || rank >= nranks {
		return nil, fmt.Errorf("nccl: %w: rank %d of %d", cuda.ErrInvalidValue, rank, nranks)
	}
	c := &Communicator{
		dev:     dev,
		id:      id,
		nranks:  nranks,
		rank:    rank,
		sendSeq: make(map[int]int),
		recvSeq: make(map[int]int),
		valid:   true,
	}
	// Record the initialization so the collator can learn communicator
	// membership (which global ranks own which comm rank).
	err := dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     "ncclCommInitRank",
		CommID: uint64(id),
		Seq:    -1,
		NRanks: nranks,
		Rank:   rank,
		Peer:   -1,
	}, cuda.DefaultStream)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Destroy invalidates the communicator (ncclCommDestroy).
func (c *Communicator) Destroy() error {
	if !c.valid {
		return fmt.Errorf("nccl: %w", cuda.ErrInvalidHandle)
	}
	c.valid = false
	return nil
}

// NRanks returns the communicator size.
func (c *Communicator) NRanks() int { return c.nranks }

// Rank returns this worker's rank within the communicator.
func (c *Communicator) Rank() int { return c.rank }

// ID returns the communicator's global identity.
func (c *Communicator) ID() UniqueID { return c.id }

func (c *Communicator) collective(op string, bytes int64, s cuda.Stream) error {
	if !c.valid {
		return fmt.Errorf("nccl: %w", cuda.ErrInvalidHandle)
	}
	if bytes < 0 {
		return fmt.Errorf("nccl: %w: %s of %d bytes", cuda.ErrInvalidValue, op, bytes)
	}
	seq := c.seq
	c.seq++
	return c.dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     op,
		CommID: uint64(c.id),
		Seq:    seq,
		NRanks: c.nranks,
		Rank:   c.rank,
		Peer:   -1,
		Bytes:  bytes,
	}, s)
}

// AllReduce reduces bytes of payload across the group (ncclAllReduce).
func (c *Communicator) AllReduce(bytes int64, s cuda.Stream) error {
	return c.collective("ncclAllReduce", bytes, s)
}

// AllGather gathers each rank's bytes-sized shard (ncclAllGather).
// bytes is the per-rank contribution, as in nccl-tests.
func (c *Communicator) AllGather(bytes int64, s cuda.Stream) error {
	return c.collective("ncclAllGather", bytes, s)
}

// ReduceScatter reduces and scatters shards (ncclReduceScatter).
// bytes is the per-rank output size.
func (c *Communicator) ReduceScatter(bytes int64, s cuda.Stream) error {
	return c.collective("ncclReduceScatter", bytes, s)
}

// Broadcast sends root's bytes to all ranks (ncclBroadcast).
func (c *Communicator) Broadcast(bytes int64, root int, s cuda.Stream) error {
	if root < 0 || root >= c.nranks {
		return fmt.Errorf("nccl: %w: broadcast root %d of %d", cuda.ErrInvalidValue, root, c.nranks)
	}
	return c.collective("ncclBroadcast", bytes, s)
}

// AllToAll exchanges bytes-per-peer shards between all ranks.
func (c *Communicator) AllToAll(bytes int64, s cuda.Stream) error {
	return c.collective("ncclAllToAll", bytes, s)
}

// Barrier synchronizes the group (implemented by NCCL as a tiny
// all-reduce, which is also how frameworks spell it).
func (c *Communicator) Barrier(s cuda.Stream) error {
	return c.collective("ncclAllReduce", 4, s)
}

// Send transfers bytes to peer (ncclSend). The per-(src,dst) sequence
// number pairs it with the peer's matching Recv.
func (c *Communicator) Send(bytes int64, peer int, s cuda.Stream) error {
	if err := c.checkPeer(peer, bytes); err != nil {
		return err
	}
	seq := c.sendSeq[peer]
	c.sendSeq[peer]++
	return c.dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     "ncclSend",
		CommID: uint64(c.id),
		Seq:    seq,
		NRanks: c.nranks,
		Rank:   c.rank,
		Peer:   peer,
		Bytes:  bytes,
	}, s)
}

// SendTagged transfers bytes to peer with an explicit matching tag,
// the way frameworks realize deterministic P2P matching for complex
// pipeline schedules (Megatron's batched isend/irecv groups). The
// tag replaces the implicit per-pair sequence number.
func (c *Communicator) SendTagged(bytes int64, peer, tag int, s cuda.Stream) error {
	if err := c.checkPeer(peer, bytes); err != nil {
		return err
	}
	return c.dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     "ncclSend",
		CommID: uint64(c.id),
		Seq:    tag,
		NRanks: c.nranks,
		Rank:   c.rank,
		Peer:   peer,
		Bytes:  bytes,
	}, s)
}

// RecvTagged receives bytes from peer with an explicit matching tag.
func (c *Communicator) RecvTagged(bytes int64, peer, tag int, s cuda.Stream) error {
	if err := c.checkPeer(peer, bytes); err != nil {
		return err
	}
	return c.dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     "ncclRecv",
		CommID: uint64(c.id),
		Seq:    tag,
		NRanks: c.nranks,
		Rank:   c.rank,
		Peer:   peer,
		Bytes:  bytes,
	}, s)
}

// Recv receives bytes from peer (ncclRecv).
func (c *Communicator) Recv(bytes int64, peer int, s cuda.Stream) error {
	if err := c.checkPeer(peer, bytes); err != nil {
		return err
	}
	seq := c.recvSeq[peer]
	c.recvSeq[peer]++
	return c.dev.LaunchCollective(cuda.CollectiveDesc{
		Op:     "ncclRecv",
		CommID: uint64(c.id),
		Seq:    seq,
		NRanks: c.nranks,
		Rank:   c.rank,
		Peer:   peer,
		Bytes:  bytes,
	}, s)
}

func (c *Communicator) checkPeer(peer int, bytes int64) error {
	if !c.valid {
		return fmt.Errorf("nccl: %w", cuda.ErrInvalidHandle)
	}
	if peer < 0 || peer >= c.nranks || peer == c.rank {
		return fmt.Errorf("nccl: %w: peer %d of %d (self %d)", cuda.ErrInvalidValue, peer, c.nranks, c.rank)
	}
	if bytes < 0 {
		return fmt.Errorf("nccl: %w: p2p of %d bytes", cuda.ErrInvalidValue, bytes)
	}
	return nil
}
