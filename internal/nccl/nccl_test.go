package nccl

import (
	"errors"
	"testing"

	"maya/internal/cuda"
	"maya/internal/emulator"
	"maya/internal/hardware"
	"maya/internal/trace"
)

func dev(t *testing.T) *emulator.Emulator {
	t.Helper()
	return emulator.New(emulator.Config{GPU: hardware.H100(), Host: hardware.Host{}})
}

func TestUniqueIDDeterministicAndOrderInvariant(t *testing.T) {
	a := UniqueIDFor("tp", []int{0, 1, 2, 3})
	b := UniqueIDFor("tp", []int{3, 2, 1, 0})
	if a != b {
		t.Fatal("member order must not change the ID")
	}
	if UniqueIDFor("dp", []int{0, 1, 2, 3}) == a {
		t.Fatal("tag must change the ID")
	}
	if UniqueIDFor("tp", []int{0, 1, 2, 4}) == a {
		t.Fatal("membership must change the ID")
	}
}

func TestCommInitRecordsMembership(t *testing.T) {
	d := dev(t)
	c, err := CommInitRank(d, 4, 2, UniqueIDFor("tp", []int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if c.NRanks() != 4 || c.Rank() != 2 {
		t.Fatalf("comm = %d/%d", c.Rank(), c.NRanks())
	}
	tr := d.Trace()
	found := false
	for _, op := range tr.Ops {
		if op.Kind == trace.KindCollective && op.Coll.Op == "ncclCommInitRank" {
			found = true
			if op.Coll.Seq != -1 || op.Coll.Rank != 2 || op.Coll.NRanks != 4 {
				t.Fatalf("init record = %+v", op.Coll)
			}
		}
	}
	if !found {
		t.Fatal("no init record in trace")
	}
}

func TestSequenceNumbersAdvancePerCommunicator(t *testing.T) {
	d := dev(t)
	c1, _ := CommInitRank(d, 2, 0, 1)
	c2, _ := CommInitRank(d, 2, 0, 2)
	_ = c1.AllReduce(100, cuda.DefaultStream)
	_ = c1.AllGather(100, cuda.DefaultStream)
	_ = c2.AllReduce(100, cuda.DefaultStream)
	var seqs []int
	var comms []uint64
	for _, op := range d.Trace().Ops {
		if op.Kind == trace.KindCollective && op.Coll.Seq >= 0 {
			seqs = append(seqs, op.Coll.Seq)
			comms = append(comms, op.Coll.CommID)
		}
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 0 {
		t.Fatalf("seqs = %v (comms %v)", seqs, comms)
	}
}

func TestP2PSequencesArePerPeerPair(t *testing.T) {
	d := dev(t)
	c, _ := CommInitRank(d, 4, 0, 7)
	_ = c.Send(10, 1, cuda.DefaultStream)
	_ = c.Send(10, 2, cuda.DefaultStream)
	_ = c.Send(10, 1, cuda.DefaultStream)
	_ = c.Recv(10, 1, cuda.DefaultStream)
	var got []struct{ peer, seq int }
	for _, op := range d.Trace().Ops {
		if op.Kind == trace.KindCollective && op.Coll.Seq >= 0 {
			got = append(got, struct{ peer, seq int }{op.Coll.Peer, op.Coll.Seq})
		}
	}
	want := []struct{ peer, seq int }{{1, 0}, {2, 0}, {1, 1}, {1, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p2p seqs = %v, want %v", got, want)
		}
	}
}

func TestTaggedMatchingUsesExplicitTags(t *testing.T) {
	d := dev(t)
	c, _ := CommInitRank(d, 2, 0, 7)
	if err := c.SendTagged(10, 1, 42, cuda.DefaultStream); err != nil {
		t.Fatal(err)
	}
	ops := d.Trace().Ops
	last := ops[len(ops)-1]
	if last.Coll.Seq != 42 {
		t.Fatalf("tag = %d, want 42", last.Coll.Seq)
	}
}

func TestPeerValidation(t *testing.T) {
	d := dev(t)
	c, _ := CommInitRank(d, 2, 0, 7)
	if err := c.Send(10, 0, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("self-send err = %v", err)
	}
	if err := c.Send(10, 5, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("out-of-range peer err = %v", err)
	}
	if err := c.Broadcast(10, 9, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("bad root err = %v", err)
	}
}

func TestDestroyedCommunicatorRejected(t *testing.T) {
	d := dev(t)
	c, _ := CommInitRank(d, 2, 0, 7)
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := c.AllReduce(8, cuda.DefaultStream); !errors.Is(err, cuda.ErrInvalidHandle) {
		t.Fatalf("use after destroy err = %v", err)
	}
}

func TestBadInitArguments(t *testing.T) {
	d := dev(t)
	if _, err := CommInitRank(d, 0, 0, 1); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("nranks=0 err = %v", err)
	}
	if _, err := CommInitRank(d, 4, 4, 1); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("rank=nranks err = %v", err)
	}
	if _, err := CommInitRank(nil, 4, 0, 1); !errors.Is(err, cuda.ErrInvalidValue) {
		t.Fatalf("nil device err = %v", err)
	}
}
