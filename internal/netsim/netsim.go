// Package netsim is a hierarchical, topology-aware collective
// network model in the spirit of ASTRA-sim. Maya plugs it in as the
// collective estimator for cluster scales where profiled data cannot
// exist (the paper integrates ASTRA-sim for its 16K-GPU studies,
// §7.4).
//
// The model is built on an explicit topo.Topology: a communicator's
// rank set resolves to the fabric levels it spans, and every
// collective is priced under several candidate algorithms — a flat
// ring, a latency-optimized tree, and a hierarchical decomposition
// that phases the collective through each crossed level — with the
// cheapest candidate chosen per (op, bytes, span). That replaces the
// old hardcoded two-phase intra/inter split: the crossover between
// algorithms now emerges from message size, communicator span and
// level fan-out, and non-canonical fabrics (rail-optimized,
// oversubscribed, pods) are just different topologies.
package netsim

import (
	"math"
	"time"

	"maya/internal/hardware"
	"maya/internal/topo"
)

// Algorithm names a collective schedule the model can price.
type Algorithm string

// Candidate algorithms.
const (
	// AlgoDirect is a single transfer (send/recv, and the all-to-all
	// exchange, which has no algorithmic freedom in this model).
	AlgoDirect Algorithm = "direct"
	// AlgoRing is the bandwidth-optimal flat ring at the top crossed
	// level: minimal bytes on the wire, (n-1) latency hops.
	AlgoRing Algorithm = "ring"
	// AlgoTree is the latency-optimized binary tree: ceil(log2 n)
	// hops at a bandwidth discount (TreeBWEff).
	AlgoTree Algorithm = "tree"
	// AlgoHierarchical phases the collective through every crossed
	// fabric level — reduce-scatter locally, exchange shards above,
	// gather back down — so upper levels carry only 1/fanout of the
	// volume.
	AlgoHierarchical Algorithm = "hierarchical"
)

// TreeBWEff is the bandwidth efficiency of the tree schedule relative
// to a ring: trees halve the hop count but keep links idle while
// interior nodes turn data around.
const TreeBWEff = 0.7

// minDuration is the floor for degenerate collectives (single rank or
// zero bytes): pure launch overhead.
const minDuration = 10 * time.Microsecond

// Model predicts collective runtimes from first principles on a
// cluster topology.
type Model struct {
	cluster hardware.Cluster
	top     *topo.Topology
}

// New builds a network model on the cluster's canonical hierarchical
// topology.
func New(cluster hardware.Cluster) *Model {
	return NewWithTopology(cluster, topo.FromCluster(cluster))
}

// NewWithTopology builds a network model on an explicit topology
// (nil means the cluster's canonical one).
func NewWithTopology(cluster hardware.Cluster, t *topo.Topology) *Model {
	if t == nil {
		t = topo.FromCluster(cluster)
	}
	return &Model{cluster: cluster, top: t}
}

// Topology returns the fabric the model prices against.
func (m *Model) Topology() *topo.Topology { return m.top }

// Candidate is one priced algorithm: wire time (bandwidth term) and
// latency (hop term) kept separate so the congestion model can
// stretch only the bandwidth-bound part.
type Candidate struct {
	Algorithm Algorithm
	Xfer      time.Duration
	Lat       time.Duration
}

// Total is the candidate's uncongested duration.
func (c Candidate) Total() time.Duration { return c.Xfer + c.Lat }

// Estimate is a priced collective: the winning candidate plus the
// link domains its traffic occupies.
type Estimate struct {
	Candidate
	Links []int32
}

// EstimateCollective implements the estimator plug-in interface
// (estimator.CollectiveEstimator): the cheapest candidate's total.
func (m *Model) EstimateCollective(op string, bytes int64, ranks []int, nranks int) time.Duration {
	return m.Plan(op, bytes, ranks, nranks).Total()
}

// Plan resolves the communicator on the topology, prices every
// candidate algorithm and returns the cheapest with its link
// footprint.
func (m *Model) Plan(op string, bytes int64, ranks []int, nranks int) Estimate {
	n := nranks
	if n <= 0 {
		n = len(ranks)
	}
	if n <= 1 || bytes <= 0 {
		return Estimate{Candidate: Candidate{Algorithm: AlgoDirect, Lat: minDuration}}
	}
	path := m.top.Resolve(ranks, n)
	cands := m.Candidates(op, bytes, n, path)
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Total() < best.Total() {
			best = c
		}
	}
	return Estimate{Candidate: best, Links: path.Links}
}

// Candidates prices every applicable algorithm for a collective on a
// resolved path. Exported so the selection can be property-tested:
// Plan's choice is always the minimum-total candidate, and each
// candidate's total is monotone in bytes.
func (m *Model) Candidates(op string, bytes int64, n int, path topo.Path) []Candidate {
	top := path.Top()
	if top == 0 {
		top = 1 // degenerate path; price at the first fabric level
	}
	lvl := m.top.Levels[top]
	bw := lvl.BWGBps * 1e9
	lat := lvl.Latency.Seconds()
	b := float64(bytes)

	switch op {
	case "ncclSend", "ncclRecv":
		return []Candidate{{Algorithm: AlgoDirect, Xfer: dur(b / bw), Lat: dur(lat)}}
	case "ncclAllToAll":
		// Personalized exchange: every rank moves its whole buffer,
		// with one hop per peer at the crossed level's latency (a
		// single-node group pays intra latency, not inter).
		return []Candidate{{
			Algorithm: AlgoDirect,
			Xfer:      dur(1.5 * frac(n) * b * float64(n) / bw),
			Lat:       dur(float64(n) * lat),
		}}
	case "ncclAllReduce":
		vol := 2 * frac(n) * b
		cands := []Candidate{
			{Algorithm: AlgoRing, Xfer: dur(vol / bw), Lat: dur(2 * float64(n-1) * lat)},
			{Algorithm: AlgoTree, Xfer: dur(vol / (bw * TreeBWEff)), Lat: dur(2 * steps(n) * lat)},
		}
		return m.appendHier(cands, op, b, n, path, top)
	case "ncclAllGather", "ncclReduceScatter":
		vol := frac(n) * b * float64(n)
		cands := []Candidate{
			{Algorithm: AlgoRing, Xfer: dur(vol / bw), Lat: dur(float64(n-1) * lat)},
			{Algorithm: AlgoTree, Xfer: dur(vol / (bw * TreeBWEff)), Lat: dur(steps(n) * lat)},
		}
		return m.appendHier(cands, op, b, n, path, top)
	case "ncclBroadcast":
		cands := []Candidate{
			{Algorithm: AlgoRing, Xfer: dur(b / bw), Lat: dur(float64(n-1) * lat)},
			{Algorithm: AlgoTree, Xfer: dur(b / (bw * TreeBWEff)), Lat: dur(steps(n) * lat)},
		}
		return m.appendHier(cands, op, b, n, path, top)
	default:
		return []Candidate{{Algorithm: AlgoDirect, Xfer: dur(frac(n) * b / bw), Lat: dur(steps(n) * lat)}}
	}
}

// appendHier adds the hierarchical candidate when the path crosses
// more than one fabric level: phase the collective through each
// level, sharding the payload by the fan-out already covered so upper
// levels carry only their slice.
func (m *Model) appendHier(cands []Candidate, op string, b float64, n int, path topo.Path, top int) []Candidate {
	if top < 2 {
		return cands
	}
	var xfer, lat float64
	shard := 1.0
	for i := 1; i <= top; i++ {
		f := (path.Span[i-1] + path.Span[i] - 1) / path.Span[i]
		if f <= 1 {
			continue
		}
		bw := m.top.Levels[i].BWGBps * 1e9
		hop := m.top.Levels[i].Latency.Seconds()
		switch op {
		case "ncclAllReduce":
			xfer += 2 * frac(f) * (b / shard) / bw
			lat += 2 * steps(f) * hop
		case "ncclAllGather", "ncclReduceScatter":
			xfer += frac(f) * (b * float64(n) / shard) / bw
			lat += steps(f) * hop
		case "ncclBroadcast":
			xfer += b / bw
			lat += steps(f) * hop
		}
		shard *= float64(f)
	}
	return append(cands, Candidate{Algorithm: AlgoHierarchical, Xfer: dur(xfer), Lat: dur(lat)})
}

func dur(sec float64) time.Duration { return time.Duration(sec * 1e9) }

func frac(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) / float64(n)
}

func steps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}
