// Package netsim is a hierarchical, topology-aware collective
// network model in the spirit of ASTRA-sim. Maya plugs it in as the
// collective estimator for cluster scales where profiled data cannot
// exist (the paper integrates ASTRA-sim for its 16K-GPU studies,
// §7.4): collectives decompose into intra-node and inter-node phases
// over the modeled fabric instead of interpolating measurements.
package netsim

import (
	"math"
	"time"

	"maya/internal/hardware"
)

// Model predicts collective runtimes from first principles on a
// cluster topology.
type Model struct {
	cluster hardware.Cluster
}

// New builds a network model for the cluster.
func New(cluster hardware.Cluster) *Model {
	return &Model{cluster: cluster}
}

// linkBW returns effective intra-node bandwidth in bytes/s.
func (m *Model) intraBW() float64 {
	node := m.cluster.Node
	switch node.Topology {
	case hardware.NVSwitch:
		return node.GPU.NVLinkGBps * 0.85 * 1e9
	case hardware.CubeMesh:
		return node.GPU.NVLinkGBps * 0.55 * 1e9
	case hardware.PairwiseNVLink:
		return node.PCIeGBps * 0.65 * 1e9
	default:
		return node.PCIeGBps * 0.65 * 1e9
	}
}

func (m *Model) interBW() float64 {
	return m.cluster.Node.Inter.PerGPUGBps * 0.80 * 1e9
}

// groupShape analyzes which nodes a rank group touches.
func (m *Model) groupShape(ranks []int) (nodes int, perNode int) {
	seen := make(map[int]int)
	for _, r := range ranks {
		seen[m.cluster.NodeOf(r)]++
	}
	nodes = len(seen)
	if nodes == 0 {
		return 1, 1
	}
	perNode = (len(ranks) + nodes - 1) / nodes
	return nodes, perNode
}

// EstimateCollective implements the estimator plug-in interface: a
// two-phase (intra, inter) decomposition of each collective.
func (m *Model) EstimateCollective(op string, bytes int64, ranks []int, nranks int) time.Duration {
	n := nranks
	if n <= 0 {
		n = len(ranks)
	}
	if n <= 1 || bytes <= 0 {
		return 10 * time.Microsecond
	}
	nodes, perNode := m.groupShape(ranks)
	if len(ranks) < n && nodes > 1 {
		// Partial membership of a multi-node group: scale the node
		// estimate by the declared size.
		nodes = max(nodes, (n+perNode-1)/perNode)
	}
	intra := m.intraBW()
	inter := m.interBW()
	intraLat := 5e-6
	interLat := m.cluster.Node.Inter.BaseLatency.Seconds() + 6e-6

	b := float64(bytes)
	var sec float64
	switch op {
	case "ncclAllReduce":
		if nodes == 1 {
			sec = 2 * frac(n) * b / intra
			sec += 2 * steps(n) * intraLat
		} else {
			// Hierarchical: local reduce-scatter, inter-node
			// all-reduce on shards, local all-gather.
			g := float64(perNode)
			sec = 2 * frac(perNode) * b / intra
			sec += 2 * frac(nodes) * (b / g) / inter
			sec += 2*steps(perNode)*intraLat + 2*steps(nodes)*interLat
		}
	case "ncclAllGather", "ncclReduceScatter":
		total := b * float64(n)
		if nodes == 1 {
			sec = frac(n) * total / intra
			sec += steps(n) * intraLat
		} else {
			g := float64(perNode)
			sec = frac(perNode) * total / intra
			sec += frac(nodes) * (total / g) / inter
			sec += steps(perNode)*intraLat + steps(nodes)*interLat
		}
	case "ncclBroadcast":
		bw := intra
		lat := intraLat
		if nodes > 1 {
			bw = inter
			lat = interLat
		}
		sec = b/bw + steps(n)*lat
	case "ncclAllToAll":
		bw := intra
		if nodes > 1 {
			bw = inter
		}
		sec = 1.5*frac(n)*b*float64(n)/bw + float64(n)*interLat
	case "ncclSend", "ncclRecv":
		if nodes == 1 {
			sec = b/intra + intraLat
		} else {
			sec = b/(m.cluster.Node.Inter.PerGPUGBps*0.85*1e9) + interLat
		}
	default:
		bw := intra
		if nodes > 1 {
			bw = inter
		}
		sec = frac(n)*b/bw + steps(n)*interLat
	}
	return time.Duration(sec * 1e9)
}

func frac(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) / float64(n)
}

func steps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}
