package netsim

import (
	"reflect"
	"testing"
	"time"

	"maya/internal/hardware"
	"maya/internal/topo"
)

func contiguous(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Regression for the old send/recv inconsistency: p2p transfers inlined
// a 0.85 inter-bandwidth derate while group collectives used 0.80. Both
// now share topo.InterDerate, and the estimate is pinned exactly.
func TestSendRecvUnifiedInterDerate(t *testing.T) {
	c := hardware.DGXH100(2)
	m := New(c)
	b := int64(1 << 26)

	lvl := m.Topology().Levels[2]
	if got, want := lvl.BWGBps, c.Node.Inter.PerGPUGBps*topo.InterDerate; got != want {
		t.Fatalf("spine BW = %g GB/s, want %g (unified InterDerate)", got, want)
	}
	for _, op := range []string{"ncclSend", "ncclRecv"} {
		got := m.EstimateCollective(op, b, []int{0, 8}, 2)
		want := dur(float64(b)/(lvl.BWGBps*1e9)) + dur(lvl.Latency.Seconds())
		if got != want {
			t.Fatalf("%s inter = %v, want %v", op, got, want)
		}
		old := dur(float64(b)/(c.Node.Inter.PerGPUGBps*0.85*1e9)) + dur(lvl.Latency.Seconds())
		if got == old {
			t.Fatalf("%s inter still priced with the 0.85 derate (%v)", op, got)
		}
	}

	// Intra-island p2p rides the island fabric, not the NIC.
	intra := m.Topology().Levels[1]
	got := m.EstimateCollective("ncclSend", b, []int{0, 1}, 2)
	want := dur(float64(b)/(intra.BWGBps*1e9)) + dur(intra.Latency.Seconds())
	if got != want {
		t.Fatalf("intra send = %v, want %v", got, want)
	}
}

// Regression for the old all-to-all inconsistency: single-node groups
// were charged interLat per step. The latency term now comes from the
// level the group actually crosses.
func TestAllToAllLatencyMatchesCrossedLevel(t *testing.T) {
	c := hardware.DGXH100(4)
	m := New(c)
	b := int64(1 << 20)

	intra := m.Topology().Levels[1]
	est := m.Plan("ncclAllToAll", b, []int{0, 1, 2, 3}, 4)
	if want := dur(4 * intra.Latency.Seconds()); est.Lat != want {
		t.Fatalf("single-node alltoall lat = %v, want %v (intra)", est.Lat, want)
	}
	if want := dur(1.5 * frac(4) * float64(b) * 4 / (intra.BWGBps * 1e9)); est.Xfer != want {
		t.Fatalf("single-node alltoall xfer = %v, want %v", est.Xfer, want)
	}
	spine := m.Topology().Levels[2]
	if buggy := dur(4 * spine.Latency.Seconds()); est.Lat == buggy {
		t.Fatalf("single-node alltoall still charged inter latency %v", buggy)
	}

	// A group that does cross the spine pays inter latency per step.
	cross := m.Plan("ncclAllToAll", b, []int{0, 8}, 2)
	if want := dur(2 * spine.Latency.Seconds()); cross.Lat != want {
		t.Fatalf("cross-node alltoall lat = %v, want %v (inter)", cross.Lat, want)
	}
}

var gridOps = []string{
	"ncclAllReduce", "ncclAllGather", "ncclReduceScatter",
	"ncclBroadcast", "ncclAllToAll", "ncclSend",
}

// Property: at every (bytes, nranks) grid point the plan's choice is
// optimal among the priced candidates.
func TestSelectionOptimalOverGrid(t *testing.T) {
	m := New(hardware.DGXH100(8))
	for _, op := range gridOps {
		for _, n := range []int{2, 3, 4, 8, 12, 16, 32, 64} {
			ranks := contiguous(n)
			path := m.Topology().Resolve(ranks, n)
			for b := int64(1 << 10); b <= 1<<30; b <<= 2 {
				cands := m.Candidates(op, b, n, path)
				if len(cands) == 0 {
					t.Fatalf("%s n=%d b=%d: no candidates", op, n, b)
				}
				best := cands[0]
				for _, c := range cands[1:] {
					if c.Total() < best.Total() {
						best = c
					}
				}
				est := m.Plan(op, b, ranks, n)
				if est.Total() != best.Total() {
					t.Fatalf("%s n=%d b=%d: plan chose %s (%v), optimum is %s (%v)",
						op, n, b, est.Algorithm, est.Total(), best.Algorithm, best.Total())
				}
				found := false
				for _, c := range cands {
					if c == est.Candidate {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s n=%d b=%d: chosen %+v not among candidates", op, n, b, est.Candidate)
				}
			}
		}
	}
}

// Property: estimates stay monotone in bytes, including across the
// algorithm-crossover boundary (the min of increasing candidates is
// increasing).
func TestEstimateMonotoneAcrossCrossover(t *testing.T) {
	m := New(hardware.DGXH100(8))
	for _, op := range gridOps {
		for _, n := range []int{2, 4, 8, 16, 64} {
			ranks := contiguous(n)
			prev := time.Duration(-1)
			prevAlgo := Algorithm("")
			switched := false
			for b := int64(1 << 10); b <= 1<<30; b <<= 1 {
				est := m.Plan(op, b, ranks, n)
				if est.Total() < prev {
					t.Fatalf("%s n=%d: estimate fell %v -> %v at b=%d (algo %s -> %s)",
						op, n, prev, est.Total(), b, prevAlgo, est.Algorithm)
				}
				if prevAlgo != "" && est.Algorithm != prevAlgo {
					switched = true
				}
				prev, prevAlgo = est.Total(), est.Algorithm
			}
			// Intra-island multi-rank groups must actually cross over
			// (latency-bound tree at small sizes, ring at large).
			if n > 2 && n <= 8 && op == "ncclAllReduce" && !switched {
				t.Fatalf("%s n=%d: no algorithm crossover across the bytes sweep", op, n)
			}
		}
	}
}

// The crossover lands where it should: latency-optimized tree for
// small intra collectives, bandwidth-optimal ring for large ones, and
// hierarchical decomposition for large multi-node spans.
func TestCrossoverEndpoints(t *testing.T) {
	m := New(hardware.DGXH100(8))
	r8 := contiguous(8)
	if got := m.Plan("ncclAllReduce", 1<<14, r8, 8).Algorithm; got != AlgoTree {
		t.Fatalf("small intra allreduce chose %s, want %s", got, AlgoTree)
	}
	if got := m.Plan("ncclAllReduce", 1<<28, r8, 8).Algorithm; got != AlgoRing {
		t.Fatalf("large intra allreduce chose %s, want %s", got, AlgoRing)
	}
	r64 := contiguous(64)
	if got := m.Plan("ncclAllReduce", 1<<28, r64, 64).Algorithm; got != AlgoHierarchical {
		t.Fatalf("large multi-node allreduce chose %s, want %s", got, AlgoHierarchical)
	}
}

// Partial-membership groups (deduplicated captures observe only unique
// workers) resolve to the same plan — same cost, same link footprint —
// as the fully-expanded membership, including on multi-island pod
// fabrics.
func TestPartialMembershipMatchesExpandedGroup(t *testing.T) {
	c := hardware.DGXH100(8)
	top, err := topo.ByName("pods:2", c)
	if err != nil {
		t.Fatal(err)
	}
	m := NewWithTopology(c, top)
	for _, op := range gridOps {
		for _, b := range []int64{1 << 16, 1 << 26} {
			got := m.Plan(op, b, []int{0, 16}, 4)
			want := m.Plan(op, b, []int{0, 16, 32, 48}, 4)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s b=%d: partial plan %+v != expanded plan %+v", op, b, got, want)
			}
			if len(got.Links) == 0 {
				t.Fatalf("%s b=%d: multi-pod plan has empty link footprint", op, b)
			}
		}
	}
}

// Non-contiguous rank sets resolve through the real path, not a node
// count heuristic: a two-island group priced at spine bandwidth even
// when its ranks are not a uniform stride.
func TestNonContiguousGroupCrossesSpine(t *testing.T) {
	c := hardware.DGXH100(8)
	m := New(c)
	b := int64(1 << 26)
	// Ranks 0,1 on island 0 and 9,25 on islands 1,3: crosses the spine.
	est := m.Plan("ncclAllReduce", b, []int{0, 1, 9, 25}, 4)
	intra := m.Plan("ncclAllReduce", b, []int{0, 1, 2, 3}, 4)
	if est.Total() <= intra.Total() {
		t.Fatalf("non-contiguous multi-island group (%v) not slower than intra group (%v)",
			est.Total(), intra.Total())
	}
}
