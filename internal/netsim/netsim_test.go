package netsim

import (
	"testing"
	"time"

	"maya/internal/hardware"
)

func TestIntraFasterThanInter(t *testing.T) {
	m := New(hardware.DGXH100(8))
	intra := m.EstimateCollective("ncclAllReduce", 1<<28, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	inter := m.EstimateCollective("ncclAllReduce", 1<<28, []int{0, 8, 16, 24, 32, 40, 48, 56}, 8)
	if inter < 3*intra {
		t.Fatalf("inter %v not ≫ intra %v", inter, intra)
	}
}

func TestBytesMonotone(t *testing.T) {
	m := New(hardware.DGXH100(8))
	ranks := []int{0, 8, 16, 24}
	prev := time.Duration(0)
	for _, b := range []int64{1 << 20, 1 << 24, 1 << 28, 1 << 32} {
		d := m.EstimateCollective("ncclAllReduce", b, ranks, 4)
		if d <= prev {
			t.Fatalf("time not monotone in bytes: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestHierarchicalBeatsFlatInterForLargeGroups(t *testing.T) {
	// A 64-GPU group spread over 8 nodes should cost far less than 64
	// ranks all forced over the NIC serially: the intra phase absorbs
	// most of the volume.
	m := New(hardware.DGXH100(8))
	var group []int
	for i := 0; i < 64; i++ {
		group = append(group, i)
	}
	hier := m.EstimateCollective("ncclAllReduce", 1<<28, group, 64)
	flatBytes := 2.0 * 63 / 64 * float64(1<<28) / (50 * 0.8 * 1e9)
	if hier.Seconds() > flatBytes {
		t.Fatalf("hierarchical %v worse than flat ring %.3fs", hier, flatBytes)
	}
}

func TestPartialMembershipScales(t *testing.T) {
	m := New(hardware.DGXH100(128))
	// Only 2 of 128 declared ranks known (dedup): node count must be
	// inferred from the declared size, not the 2 observed ranks.
	partial := m.EstimateCollective("ncclAllReduce", 1<<28, []int{0, 512}, 128)
	full := make([]int, 128)
	for i := range full {
		full[i] = i * 8
	}
	complete := m.EstimateCollective("ncclAllReduce", 1<<28, full, 128)
	ratio := partial.Seconds() / complete.Seconds()
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("partial-membership estimate off by %0.1fx", ratio)
	}
}

func TestP2PAndSingleRank(t *testing.T) {
	m := New(hardware.DGXH100(2))
	if d := m.EstimateCollective("ncclAllReduce", 1<<30, []int{5}, 1); d > 100*time.Microsecond {
		t.Fatalf("singleton collective = %v", d)
	}
	intra := m.EstimateCollective("ncclSend", 1<<26, []int{0, 1}, 2)
	inter := m.EstimateCollective("ncclSend", 1<<26, []int{0, 8}, 2)
	if inter < 2*intra {
		t.Fatalf("inter-node send %v not ≫ NVSwitch send %v", inter, intra)
	}
}

func TestAllGatherScalesWithGroup(t *testing.T) {
	m := New(hardware.DGXH100(32))
	mk := func(n int) []int {
		r := make([]int, n)
		for i := range r {
			r[i] = i * 8
		}
		return r
	}
	// Per-rank shard fixed: total volume grows with n, so time must too.
	small := m.EstimateCollective("ncclAllGather", 1<<24, mk(4), 4)
	large := m.EstimateCollective("ncclAllGather", 1<<24, mk(32), 32)
	if large < 4*small {
		t.Fatalf("allgather n=32 (%v) not ≫ n=4 (%v)", large, small)
	}
}
