// Package prand provides small deterministic pseudo-random utilities
// shared across Maya's subsystems (host-delay jitter, synthetic
// silicon noise, forest bagging, search algorithms).
//
// Everything is seeded explicitly and reproducible across runs and
// platforms — experiments must be replayable bit-for-bit, which rules
// out math/rand's global state and time seeding.
package prand

import "math"

// SplitMix64 is a tiny, high-quality 64-bit PRNG (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"). The zero value
// is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a value uniform in [0, n). n must be positive.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	// Lemire's multiply-shift rejection-free reduction is fine here:
	// tiny bias is irrelevant for simulation noise.
	hi, _ := mul64(s.Uint64(), n)
	return hi
}

// Intn returns a value uniform in [0, n).
func (s *SplitMix64) Intn(n int) int { return int(s.Uint64n(uint64(n))) }

// Float64 returns a value uniform in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate (Box–Muller).
func (s *SplitMix64) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u2 := s.Float64(); u1 > 1e-300 {
			return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		}
	}
}

// Perm returns a random permutation of [0, n), Fisher–Yates.
func (s *SplitMix64) Perm(n int) []int {
	return s.PermInto(make([]int, n))
}

// PermInto fills p with a random permutation of [0, len(p)) and
// returns it — Perm without the allocation, for hot loops that reuse
// a scratch slice. It consumes the generator identically to Perm.
func (s *SplitMix64) PermInto(p []int) []int {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// Hash64 mixes an arbitrary byte string into a 64-bit value (FNV-1a
// followed by a SplitMix64 finalizer). Used to derive deterministic
// per-entity seeds, e.g. per-kernel silicon quirks.
func Hash64(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= prime
	}
	z := h
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashInts folds integers into an existing hash value.
func HashInts(h uint64, vals ...int64) uint64 {
	for _, v := range vals {
		h ^= uint64(v) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		h = z ^ (z >> 27)
	}
	return h
}
