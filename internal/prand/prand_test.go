package prand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	// PermInto must consume the generator identically to Perm, so the
	// allocation-free path is a drop-in replacement.
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		want := New(seed).Perm(n)
		buf := make([]int, n)
		got := New(seed).PermInto(buf)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// And the generators must be left in the same state.
		a, b := New(seed), New(seed)
		a.Perm(n)
		b.PermInto(buf)
		return a.Uint64() == b.Uint64()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64SeparatorMatters(t *testing.T) {
	if Hash64("ab", "c") == Hash64("a", "bc") {
		t.Fatal("Hash64 ignores part boundaries")
	}
	if Hash64("x") != Hash64("x") {
		t.Fatal("Hash64 not deterministic")
	}
}

func TestHashIntsSensitivity(t *testing.T) {
	base := HashInts(1, 2, 3)
	if base == HashInts(1, 3, 2) {
		t.Fatal("HashInts insensitive to order")
	}
	if base == HashInts(1, 2, 4) {
		t.Fatal("HashInts insensitive to values")
	}
	if base != HashInts(1, 2, 3) {
		t.Fatal("HashInts not deterministic")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}
