package search

import (
	"math"

	"maya/internal/prand"
)

// cmaes is a from-scratch Covariance Matrix Adaptation Evolution
// Strategy (Hansen & Ostermeier) — the search algorithm Maya-Search
// runs by default. Full covariance with rank-one and rank-μ updates;
// sampling uses a Cholesky factor, and the conjugate evolution path
// is tracked in z-space (whitened coordinates), which avoids an
// explicit C^(-1/2).
type cmaes struct {
	d      int
	lambda int
	mu     int
	rng    *prand.SplitMix64

	weights []float64
	mueff   float64
	cc, cs  float64
	c1, cmu float64
	damps   float64
	chiN    float64

	mean  []float64
	sigma float64
	cov   [][]float64
	pc    []float64
	ps    []float64

	// Per-generation state: sampled z vectors keyed by candidate.
	zs [][]float64
	xs [][]float64
}

func newCMAES(d, batch int, seed uint64) *cmaes {
	lambda := 4 + int(3*math.Log(float64(d)))
	if batch > lambda {
		lambda = batch
	}
	mu := lambda / 2
	c := &cmaes{
		d:      d,
		lambda: lambda,
		mu:     mu,
		rng:    prand.New(seed),
		sigma:  0.3,
	}
	c.weights = make([]float64, mu)
	var sum float64
	for i := 0; i < mu; i++ {
		c.weights[i] = math.Log(float64(mu)+0.5) - math.Log(float64(i)+1)
		sum += c.weights[i]
	}
	var sumSq float64
	for i := range c.weights {
		c.weights[i] /= sum
		sumSq += c.weights[i] * c.weights[i]
	}
	c.mueff = 1 / sumSq
	fd := float64(d)
	c.cc = (4 + c.mueff/fd) / (fd + 4 + 2*c.mueff/fd)
	c.cs = (c.mueff + 2) / (fd + c.mueff + 5)
	c.c1 = 2 / ((fd+1.3)*(fd+1.3) + c.mueff)
	c.cmu = math.Min(1-c.c1, 2*(c.mueff-2+1/c.mueff)/((fd+2)*(fd+2)+c.mueff))
	c.damps = 1 + 2*math.Max(0, math.Sqrt((c.mueff-1)/(fd+1))-1) + c.cs
	c.chiN = math.Sqrt(fd) * (1 - 1/(4*fd) + 1/(21*fd*fd))

	c.mean = make([]float64, d)
	for i := range c.mean {
		c.mean[i] = 0.5
	}
	c.cov = identity(d)
	c.pc = make([]float64, d)
	c.ps = make([]float64, d)
	return c
}

func identity(d int) [][]float64 {
	m := make([][]float64, d)
	for i := range m {
		m[i] = make([]float64, d)
		m[i][i] = 1
	}
	return m
}

// cholesky returns the lower-triangular factor of a symmetric
// positive-definite matrix, jittering the diagonal if needed.
func cholesky(a [][]float64) [][]float64 {
	d := len(a)
	l := make([][]float64, d)
	for i := range l {
		l[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 1e-12 {
					sum = 1e-12
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l
}

func (c *cmaes) generation() [][]float64 {
	l := cholesky(c.cov)
	c.zs = make([][]float64, c.lambda)
	c.xs = make([][]float64, c.lambda)
	for i := 0; i < c.lambda; i++ {
		z := make([]float64, c.d)
		for j := range z {
			z[j] = c.rng.NormFloat64()
		}
		y := matVec(l, z)
		x := make([]float64, c.d)
		for j := range x {
			x[j] = reflect01(c.mean[j] + c.sigma*y[j])
		}
		c.zs[i] = z
		c.xs[i] = x
	}
	out := make([][]float64, c.lambda)
	for i := range out {
		out[i] = append([]float64(nil), c.xs[i]...)
	}
	return out
}

func matVec(m [][]float64, v []float64) []float64 {
	out := make([]float64, len(m))
	for i := range m {
		var s float64
		for j := range v {
			s += m[i][j] * v[j]
		}
		out[i] = s
	}
	return out
}

func (c *cmaes) report(xs [][]float64, ys []float64) {
	if len(ys) < c.mu {
		return
	}
	order := sortedIndices(ys)

	// Effective y_i in sampling space: (x_i - mean)/sigma, which
	// respects the boundary reflection the candidates went through.
	yw := make([]float64, c.d)
	zw := make([]float64, c.d)
	newMean := make([]float64, c.d)
	copy(newMean, c.mean)
	ys2 := make([][]float64, c.mu)
	for r := 0; r < c.mu; r++ {
		i := order[r]
		w := c.weights[r]
		yi := make([]float64, c.d)
		for j := 0; j < c.d; j++ {
			yi[j] = (xs[i][j] - c.mean[j]) / c.sigma
			yw[j] += w * yi[j]
			if i < len(c.zs) {
				zw[j] += w * c.zs[i][j]
			}
		}
		ys2[r] = yi
	}
	for j := 0; j < c.d; j++ {
		newMean[j] = reflect01(c.mean[j] + c.sigma*yw[j])
	}

	// Step-size path in whitened coordinates.
	csf := math.Sqrt(c.cs * (2 - c.cs) * c.mueff)
	var psNorm float64
	for j := 0; j < c.d; j++ {
		c.ps[j] = (1-c.cs)*c.ps[j] + csf*zw[j]
		psNorm += c.ps[j] * c.ps[j]
	}
	psNorm = math.Sqrt(psNorm)

	// Covariance path.
	hsig := 0.0
	if psNorm/math.Sqrt(1-math.Pow(1-c.cs, 2))/c.chiN < 1.4+2/(float64(c.d)+1) {
		hsig = 1
	}
	ccf := math.Sqrt(c.cc * (2 - c.cc) * c.mueff)
	for j := 0; j < c.d; j++ {
		c.pc[j] = (1-c.cc)*c.pc[j] + hsig*ccf*yw[j]
	}

	// Covariance update: rank-one plus rank-μ.
	c1a := c.c1 * (1 - (1-hsig)*c.cc*(2-c.cc))
	for i := 0; i < c.d; i++ {
		for j := 0; j <= i; j++ {
			v := (1 - c1a - c.cmu) * c.cov[i][j]
			v += c.c1 * c.pc[i] * c.pc[j]
			for r := 0; r < c.mu; r++ {
				v += c.cmu * c.weights[r] * ys2[r][i] * ys2[r][j]
			}
			c.cov[i][j] = v
			c.cov[j][i] = v
		}
	}

	// Step-size adaptation.
	c.sigma *= math.Exp((c.cs / c.damps) * (psNorm/c.chiN - 1))
	if c.sigma > 0.6 {
		c.sigma = 0.6
	}
	if c.sigma < 0.01 {
		c.sigma = 0.01
	}
	c.mean = newMean
}
