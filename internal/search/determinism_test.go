package search

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"maya/internal/framework"
)

// truncEval is syntheticEval extended to honor the domination bound
// the way the real pipeline does: OOM points return a capture-style
// verdict, and any trial whose (synthetic) iteration time exceeds the
// bound comes back Truncated instead of finished.
func truncEval(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (EvalResult, error) {
	ev, err := syntheticEval(ctx, cfg, bound)
	if err != nil {
		return ev, err
	}
	if ev.OOM {
		return EvalResult{OOM: true, Verdict: true, PeakMem: ev.PeakMem}, nil
	}
	if bound > 0 && ev.IterTime > bound {
		return EvalResult{Truncated: true}, nil
	}
	return ev, nil
}

// stripElapsed zeroes the only wall-clock-dependent Outcome field so
// outcomes can be compared bit-for-bit.
func stripElapsed(o *Outcome) *Outcome {
	c := *o
	c.Elapsed = 0
	return &c
}

// TestOutcomeIndependentOfParallel is the seed-stability property:
// for any Parallel value and any repetition, Run produces a
// bit-identical Outcome — history order, stats, best, trajectory and
// stop reason — both with and without the domination-abort (TimeLimit)
// path. Run under -race this also exercises the worker pool for data
// races.
func TestOutcomeIndependentOfParallel(t *testing.T) {
	cases := []struct {
		name string
		eval Evaluator
		opts Options
	}{
		{"cma-no-limit", syntheticEval, Options{Algorithm: "cma", Budget: 240, Seed: 3, EarlyStopWindow: -1, DominationSlack: -1}},
		{"cma-truncating", truncEval, Options{Algorithm: "cma", Budget: 240, Seed: 3, EarlyStopWindow: -1}},
		{"random-truncating", truncEval, Options{Algorithm: "random", Budget: 320, Seed: 11, EarlyStopWindow: 20}},
		{"grid-truncating", truncEval, Options{Algorithm: "grid", Budget: 640, Seed: 1, EarlyStopWindow: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Parallel = 1
			base, err := Run(context.Background(), testProblem(), tc.eval, opts)
			if err != nil {
				t.Fatalf("Parallel=1: %v", err)
			}
			for _, par := range []int{4, 8, 8} {
				opts.Parallel = par
				got, err := Run(context.Background(), testProblem(), tc.eval, opts)
				if err != nil {
					t.Fatalf("Parallel=%d: %v", par, err)
				}
				if !reflect.DeepEqual(stripElapsed(base), stripElapsed(got)) {
					t.Fatalf("Parallel=%d outcome diverged from Parallel=1:\nstats %+v vs %+v\nstopped %q vs %q\nbest %+v vs %+v",
						par, base.Stats, got.Stats, base.Stopped, got.Stopped, base.Best, got.Best)
				}
			}
		})
	}
}

// TestDominationPreservesBest asserts the domination bound never
// truncates a potentially optimal trial: over the full grid — where
// the candidate stream is fixed, so the comparison is exact — the
// found optimum matches a run with domination disabled, and trials
// only move between the Executed, Dominated and Skipped buckets (a
// dominated twin can no longer donate its runtime to a tactic, so
// some skips become executions).
func TestDominationPreservesBest(t *testing.T) {
	opts := Options{Algorithm: "grid", Budget: MegatronSpace().Size(), Parallel: 8, Seed: 5, EarlyStopWindow: -1}
	with, err := Run(context.Background(), testProblem(), truncEval, opts)
	if err != nil {
		t.Fatalf("with domination: %v", err)
	}
	opts.DominationSlack = -1
	without, err := Run(context.Background(), testProblem(), truncEval, opts)
	if err != nil {
		t.Fatalf("without domination: %v", err)
	}
	if with.Stats.Dominated == 0 {
		t.Fatal("no trials dominated — the abort path never ran")
	}
	if with.Best.Knobs != without.Best.Knobs || with.Best.IterTime != without.Best.IterTime {
		t.Fatalf("domination changed the optimum: %+v vs %+v", with.Best, without.Best)
	}
	got := with.Stats.Executed + with.Stats.Dominated + with.Stats.Skipped
	want := without.Stats.Executed + without.Stats.Skipped
	if got != want {
		t.Fatalf("executed+dominated+skipped = %d, want %d", got, want)
	}
	if with.Stats.Verdict != without.Stats.Verdict || with.Stats.Invalid != without.Stats.Invalid {
		t.Fatalf("domination moved verdict/invalid accounting: %+v vs %+v", with.Stats, without.Stats)
	}
}

// TestVerdictAccountingInvariant asserts the verdict bucket is pure
// accounting: an evaluator returning capture verdicts produces the
// same search as one simulating its OOMs, with Executed+Verdict
// invariant.
func TestVerdictAccountingInvariant(t *testing.T) {
	opts := Options{Algorithm: "random", Budget: 400, Parallel: 8, Seed: 9, EarlyStopWindow: -1, DominationSlack: -1}
	verdicts, err := Run(context.Background(), testProblem(), truncEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(context.Background(), testProblem(), syntheticEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts.Stats.Verdict == 0 {
		t.Fatal("no verdict trials — the fast path never ran")
	}
	if verdicts.Stats.Executed+verdicts.Stats.Verdict != plain.Stats.Executed {
		t.Fatalf("Executed+Verdict = %d+%d, want %d", verdicts.Stats.Executed, verdicts.Stats.Verdict, plain.Stats.Executed)
	}
	if verdicts.Best.Knobs != plain.Best.Knobs || verdicts.Stopped != plain.Stopped {
		t.Fatalf("verdict accounting changed the search: best %v vs %v, stopped %q vs %q",
			verdicts.Best.Knobs, plain.Best.Knobs, verdicts.Stopped, plain.Stopped)
	}
	if !reflect.DeepEqual(verdicts.Trajectory, plain.Trajectory) {
		t.Fatal("verdict accounting changed the trajectory")
	}
}

// TestIncrementalTopMFUMatchesNaive drives the history with a
// randomized result stream — duplicates, OOMs, invalids, dominated
// and zero-MFU entries included — and checks the incrementally
// maintained leaderboard against a full rescan after every put.
func TestIncrementalTopMFUMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	space := MegatronSpace().Enumerate()
	h := newHistory()
	// A knob always resolves to the same result (evaluation is
	// deterministic), so a duplicate put re-puts the original — the
	// invariant the incremental leaderboard's dedup relies on.
	resolved := make(map[Knobs]*Result)
	for i := 0; i < 4000; i++ {
		k := space[rng.Intn(len(space))]
		r, ok := resolved[k]
		if !ok {
			r = &Result{Knobs: k, MFU: float64(rng.Intn(50)) / 50.0}
			switch rng.Intn(6) {
			case 0:
				r.OOM = true
			case 1:
				r.Invalid = true
			case 2:
				r.Dominated = true
				r.MFU = 0
			}
			resolved[k] = r
		}
		h.put(r)
		if got, want := h.topMFU(), naiveTopMFU(h, topN); !equalTop(got, want) {
			t.Fatalf("after %d puts: incremental %v, naive %v", i+1, got, want)
		}
	}
}
