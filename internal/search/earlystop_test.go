package search

import (
	"context"
	"sort"
	"testing"
)

// TestCountFresh pins which statuses advance the early-stop window:
// freshly resolved non-OOM trials — executed, skipped, dominated —
// and never cached repeats, OOMs or invalids.
func TestCountFresh(t *testing.T) {
	rs := []*Result{
		{Status: StatusExecuted},                   // counts
		{Status: StatusSkipped},                    // counts
		{Status: StatusDominated, Dominated: true}, // counts
		{Status: StatusCached},                     // cached: excluded
		{Status: StatusExecuted, OOM: true},        // OOM: excluded
		{Status: StatusVerdict, OOM: true},         // OOM verdict: excluded
		{Status: StatusInvalid, Invalid: true},     // invalid: excluded
	}
	if got := countFresh(rs); got != 3 {
		t.Fatalf("countFresh = %d, want 3", got)
	}
}

// TestEarlyStopExactWindow replays Options.EarlyStopWindow's
// documented rule over the search's own history — generation by
// generation, cached repeats excluded — and demands the search
// stopped at exactly the replayed point. A drift in either the
// semantics or the generation accounting breaks this test.
func TestEarlyStopExactWindow(t *testing.T) {
	const window = 20
	opts := Options{Algorithm: "random", Budget: 100000, Parallel: 8, Seed: 5, EarlyStopWindow: window}
	out, err := Run(context.Background(), testProblem(), truncEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stopped != "early stop: top-5 stable" {
		t.Fatalf("stopped = %q", out.Stopped)
	}
	if out.Stats.Cached == 0 {
		t.Fatal("want cached repeats in the run so their exclusion is exercised")
	}

	seen := make(map[Knobs]*Result)
	topOf := func() []float64 {
		var mfus []float64
		for _, r := range seen {
			if topEligible(r) {
				mfus = append(mfus, r.MFU)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(mfus)))
		if len(mfus) > topN {
			mfus = mfus[:topN]
		}
		return mfus
	}

	// Generations are Population-sized history chunks (the budget was
	// never hit), each closed by one trajectory point.
	pop := opts.withDefaults().Population
	stable := 0
	var lastTop []float64
	stoppedAt := -1
	gens := 0
	for pos := 0; pos < len(out.History); pos += pop {
		gen := out.History[pos:min(pos+pop, len(out.History))]
		gens++
		for _, r := range gen {
			if r.Status != StatusCached {
				seen[r.Knobs] = r
			}
		}
		top := topOf()
		if equalTop(top, lastTop) {
			stable += countFresh(gen)
		} else {
			stable = 0
			lastTop = top
		}
		if stable >= window {
			stoppedAt = pos + len(gen)
			break
		}
	}
	if stoppedAt != len(out.History) {
		t.Fatalf("replay stops after %d trials, search stopped after %d", stoppedAt, len(out.History))
	}
	if gens != len(out.Trajectory) {
		t.Fatalf("replayed %d generations, trajectory has %d points", gens, len(out.Trajectory))
	}
}
