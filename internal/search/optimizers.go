package search

import (
	"fmt"
	"sort"

	"maya/internal/prand"
)

// optimizer is the ask/tell protocol the trial scheduler drives. A
// generation proposes candidate vectors in [0,1)^d; report feeds the
// objective values (lower is better) back.
type optimizer interface {
	generation() [][]float64
	report(xs [][]float64, ys []float64)
}

// newOptimizer builds a named optimizer over a d-dimensional space.
// batch hints the desired candidates per generation (concurrency).
func newOptimizer(name string, space Space, batch int, seed uint64) (optimizer, error) {
	d := len(space.Dims())
	switch name {
	case "cma", "cmaes", "":
		return newCMAES(d, batch, seed), nil
	case "random":
		return &randomOpt{d: d, batch: batch, rng: prand.New(seed)}, nil
	case "grid":
		return &gridOpt{points: space.Enumerate(), space: space, batch: batch}, nil
	case "oneplusone":
		return newOnePlusOne(d, batch, seed), nil
	case "pso":
		return newPSO(d, max(batch, 10), seed), nil
	case "twopointsde":
		return newTwoPointsDE(d, max(batch, 12), seed), nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q", name)
	}
}

// randomOpt samples uniformly.
type randomOpt struct {
	d, batch int
	rng      *prand.SplitMix64
}

func (r *randomOpt) generation() [][]float64 {
	out := make([][]float64, r.batch)
	for i := range out {
		x := make([]float64, r.d)
		for j := range x {
			x[j] = r.rng.Float64()
		}
		out[i] = x
	}
	return out
}

func (r *randomOpt) report([][]float64, []float64) {}

// gridOpt walks the full enumeration.
type gridOpt struct {
	points []Knobs
	space  Space
	batch  int
	pos    int
}

func (g *gridOpt) generation() [][]float64 {
	dims := g.space.Dims()
	var out [][]float64
	for len(out) < g.batch && g.pos < len(g.points) {
		k := g.points[g.pos]
		g.pos++
		out = append(out, knobsToVector(g.space, k, dims))
	}
	return out
}

func (g *gridOpt) report([][]float64, []float64) {}

// knobsToVector inverts Space.FromVector (bin centers).
func knobsToVector(s Space, k Knobs, dims []int) []float64 {
	idx := []int{
		indexOfInt(s.TP, k.TP),
		indexOfInt(s.PP, k.PP),
		indexOfInt(s.MicroMult, k.MicroMult),
		indexOfInt(s.VirtualStages, k.VirtualStages),
		indexOfBool(s.ActRecompute, k.ActRecompute),
		indexOfBool(s.SeqParallel, k.SeqParallel),
		indexOfBool(s.DistOptimizer, k.DistOptimizer),
	}
	x := make([]float64, len(dims))
	for i := range x {
		x[i] = (float64(idx[i]) + 0.5) / float64(dims[i])
	}
	return x
}

func indexOfInt(s []int, v int) int {
	for i, e := range s {
		if e == v {
			return i
		}
	}
	return 0
}

func indexOfBool(s []bool, v bool) int {
	for i, e := range s {
		if e == v {
			return i
		}
	}
	return 0
}

// onePlusOne is a (1+λ)-ES with one-fifth success-rule step
// adaptation.
type onePlusOne struct {
	d, batch int
	rng      *prand.SplitMix64
	best     []float64
	bestY    float64
	sigma    float64
	started  bool
}

func newOnePlusOne(d, batch int, seed uint64) *onePlusOne {
	return &onePlusOne{d: d, batch: max(batch, 1), rng: prand.New(seed), sigma: 0.25, bestY: inf}
}

const inf = 1e30

func (o *onePlusOne) generation() [][]float64 {
	out := make([][]float64, o.batch)
	for i := range out {
		x := make([]float64, o.d)
		if !o.started {
			for j := range x {
				x[j] = o.rng.Float64()
			}
		} else {
			for j := range x {
				x[j] = reflect01(o.best[j] + o.sigma*o.rng.NormFloat64())
			}
		}
		out[i] = x
	}
	return out
}

func (o *onePlusOne) report(xs [][]float64, ys []float64) {
	improved := false
	for i, y := range ys {
		if y < o.bestY {
			o.bestY = y
			o.best = append([]float64(nil), xs[i]...)
			improved = true
		}
	}
	o.started = true
	if improved {
		o.sigma *= 1.6
	} else {
		o.sigma *= 0.85
	}
	if o.sigma < 0.02 {
		o.sigma = 0.02
	}
	if o.sigma > 0.5 {
		o.sigma = 0.5
	}
}

// pso is standard global-best particle swarm optimization.
type pso struct {
	d     int
	rng   *prand.SplitMix64
	pos   [][]float64
	vel   [][]float64
	pbest [][]float64
	pbY   []float64
	gbest []float64
	gbY   float64
}

func newPSO(d, swarm int, seed uint64) *pso {
	p := &pso{d: d, rng: prand.New(seed), gbY: inf}
	p.pos = make([][]float64, swarm)
	p.vel = make([][]float64, swarm)
	p.pbest = make([][]float64, swarm)
	p.pbY = make([]float64, swarm)
	for i := range p.pos {
		p.pos[i] = make([]float64, d)
		p.vel[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			p.pos[i][j] = p.rng.Float64()
			p.vel[i][j] = (p.rng.Float64() - 0.5) * 0.2
		}
		p.pbest[i] = append([]float64(nil), p.pos[i]...)
		p.pbY[i] = inf
	}
	return p
}

func (p *pso) generation() [][]float64 {
	out := make([][]float64, len(p.pos))
	for i := range p.pos {
		out[i] = append([]float64(nil), p.pos[i]...)
	}
	return out
}

func (p *pso) report(xs [][]float64, ys []float64) {
	const (
		w  = 0.72
		c1 = 1.49
		c2 = 1.49
	)
	for i := range xs {
		if i >= len(p.pos) {
			break
		}
		if ys[i] < p.pbY[i] {
			p.pbY[i] = ys[i]
			p.pbest[i] = append([]float64(nil), xs[i]...)
		}
		if ys[i] < p.gbY {
			p.gbY = ys[i]
			p.gbest = append([]float64(nil), xs[i]...)
		}
	}
	if p.gbest == nil {
		return
	}
	for i := range p.pos {
		for j := 0; j < p.d; j++ {
			r1, r2 := p.rng.Float64(), p.rng.Float64()
			p.vel[i][j] = w*p.vel[i][j] +
				c1*r1*(p.pbest[i][j]-p.pos[i][j]) +
				c2*r2*(p.gbest[j]-p.pos[i][j])
			if p.vel[i][j] > 0.3 {
				p.vel[i][j] = 0.3
			}
			if p.vel[i][j] < -0.3 {
				p.vel[i][j] = -0.3
			}
			p.pos[i][j] = reflect01(p.pos[i][j] + p.vel[i][j])
		}
	}
}

// twoPointsDE is differential evolution with two-point crossover
// (nevergrad's TwoPointsDE, the variant the paper's Appendix C runs).
type twoPointsDE struct {
	d    int
	rng  *prand.SplitMix64
	pop  [][]float64
	fit  []float64
	cand [][]float64
	tgt  []int
}

func newTwoPointsDE(d, popSize int, seed uint64) *twoPointsDE {
	de := &twoPointsDE{d: d, rng: prand.New(seed)}
	de.pop = make([][]float64, popSize)
	de.fit = make([]float64, popSize)
	for i := range de.pop {
		de.pop[i] = make([]float64, d)
		for j := range de.pop[i] {
			de.pop[i][j] = de.rng.Float64()
		}
		de.fit[i] = inf
	}
	return de
}

func (de *twoPointsDE) generation() [][]float64 {
	const f = 0.8
	n := len(de.pop)
	de.cand = de.cand[:0]
	de.tgt = de.tgt[:0]
	for i := 0; i < n; i++ {
		if de.fit[i] == inf {
			// Population not yet evaluated: propose it directly.
			de.cand = append(de.cand, append([]float64(nil), de.pop[i]...))
			de.tgt = append(de.tgt, i)
			continue
		}
		a, b, c := de.rng.Intn(n), de.rng.Intn(n), de.rng.Intn(n)
		mutant := make([]float64, de.d)
		for j := 0; j < de.d; j++ {
			mutant[j] = reflect01(de.pop[a][j] + f*(de.pop[b][j]-de.pop[c][j]))
		}
		// Two-point crossover between target and mutant.
		p1 := de.rng.Intn(de.d)
		p2 := de.rng.Intn(de.d)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		child := append([]float64(nil), de.pop[i]...)
		for j := p1; j <= p2; j++ {
			child[j] = mutant[j]
		}
		de.cand = append(de.cand, child)
		de.tgt = append(de.tgt, i)
	}
	return de.cand
}

func (de *twoPointsDE) report(xs [][]float64, ys []float64) {
	for i := range xs {
		if i >= len(de.tgt) {
			break
		}
		t := de.tgt[i]
		if ys[i] <= de.fit[t] {
			de.fit[t] = ys[i]
			de.pop[t] = append([]float64(nil), xs[i]...)
		}
	}
}

// reflect01 folds a coordinate back into [0,1).
func reflect01(v float64) float64 {
	for v < 0 || v >= 1 {
		if v < 0 {
			v = -v
		}
		if v >= 1 {
			v = 2 - v - 1e-9
		}
	}
	return v
}

// sortedIndices returns indices ordered by ascending value.
func sortedIndices(ys []float64) []int {
	idx := make([]int, len(ys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ys[idx[a]] < ys[idx[b]] })
	return idx
}
