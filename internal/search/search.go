package search

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"maya/internal/framework"
	"maya/internal/prand"
)

// EvalResult is what the evaluator (Maya's pipeline, or ground truth
// in oracle studies) reports for one recipe.
type EvalResult struct {
	OOM      bool
	IterTime time.Duration
	MFU      float64
	PeakMem  int64
	// Verdict marks an OOM resolved straight off the capture's
	// peak-memory verdict, without plan resolution or simulation —
	// the search accounts it separately from full executions.
	Verdict bool
	// Truncated marks a trial abandoned at the domination bound: the
	// simulation proved iteration time exceeds the bound and stopped.
	// Timing fields are not meaningful; the search records the trial
	// as dominated.
	Truncated bool
}

// Evaluator runs one trial. bound is the generation's domination
// bound (zero means none): an evaluator that can prove the recipe's
// iteration time exceeds bound may abandon the trial early and return
// Truncated instead of a full result. Implementations must be safe
// for concurrent use; Maya's pipeline is. The evaluator receives the
// search's ctx and should abort promptly once it is cancelled.
type Evaluator func(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (EvalResult, error)

// WorkerFactory builds one evaluator per search worker. Each of the
// Options.Parallel workers calls the factory exactly once at startup
// and uses the returned evaluator for every trial it runs, so the
// evaluator may own per-worker scratch (a persistent simulation
// engine, a reusable annotation overlay) without any locking. The
// returned evaluators need not be safe for concurrent use with each
// other's state, but must produce identical results for identical
// (cfg, bound) inputs regardless of which worker runs the trial —
// search determinism rests on that.
type WorkerFactory func(worker int) Evaluator

// Status classifies how a trial was resolved (Fig. 15).
type Status int

// Trial statuses.
const (
	// StatusExecuted trials ran the full emulation pipeline.
	StatusExecuted Status = iota
	// StatusCached trials repeated an already-evaluated point.
	StatusCached
	// StatusSkipped trials were resolved by a pruning tactic.
	StatusSkipped
	// StatusInvalid points violate structural constraints.
	StatusInvalid
	// StatusVerdict trials OOMed at capture time: the verdict came
	// straight off the emulator's memory accounting, with no plan
	// resolution or simulation.
	StatusVerdict
	// StatusDominated trials were abandoned mid-simulation once their
	// iteration time provably exceeded the generation's domination
	// bound.
	StatusDominated
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusExecuted:
		return "executed"
	case StatusCached:
		return "cached"
	case StatusSkipped:
		return "skipped"
	case StatusVerdict:
		return "verdict"
	case StatusDominated:
		return "dominated"
	default:
		return "invalid"
	}
}

// Result is one resolved trial.
type Result struct {
	Knobs   Knobs
	Config  framework.MegatronConfig
	Status  Status
	Invalid bool
	OOM     bool
	// Dominated marks a trial abandoned at the domination bound; its
	// IterTime/MFU are zero and pruning tactics must not transfer
	// runtimes from it.
	Dominated bool
	IterTime  time.Duration
	MFU       float64
	PeakMem   int64
	Tactic    string // pruning tactic that resolved a skipped trial
}

// Options configures a search run.
type Options struct {
	// Algorithm: "cma" (default), "random", "grid", "oneplusone",
	// "pso", "twopointsde".
	Algorithm string
	// Budget is the maximum number of sampled points (default 2000).
	Budget int
	// Parallel is the number of concurrent trials (default 8). It is
	// purely an execution resource: outcomes are bit-identical for any
	// Parallel value at a fixed Population.
	Parallel int
	// Population is the optimizer's generation size (default 8). It is
	// a search hyperparameter, deliberately decoupled from Parallel so
	// that adding workers never changes what the search explores.
	Population int
	// Seed drives the optimizer's randomness.
	Seed uint64
	// DisablePruning turns the Table-10 tactics off (ablation).
	DisablePruning bool
	// EarlyStopWindow stops the search when the top-5 MFU set is
	// unchanged for this many consecutive freshly-resolved non-OOM
	// trials — executed, tactic-skipped or dominated (default 20;
	// negative disables). Cached repeats of old points do not advance
	// the window: revisiting history is optimizer stagnation, not
	// evidence the frontier has settled.
	EarlyStopWindow int
	// DominationSlack scales the per-generation domination bound:
	// a trial is abandoned once its simulated clock provably exceeds
	// slack x the best completed-generation iteration time. Zero means
	// the default 1.5; negative disables domination abort. The bound
	// is fixed per generation from fully-completed generations only,
	// so outcomes are bit-identical for any Parallel value. Because
	// the bound always exceeds the incumbent best, no potentially
	// optimal trial is ever truncated.
	DominationSlack float64
	// DisableVerdictFastPath makes evaluators simulate capture-OOM
	// trials instead of returning the capture verdict directly (the
	// Fig. 15 ablation). Only consulted by evaluators; the search loop
	// itself just accounts verdicts separately.
	DisableVerdictFastPath bool
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = "cma"
	}
	if o.Budget == 0 {
		o.Budget = 2000
	}
	if o.Parallel == 0 {
		o.Parallel = 8
	}
	if o.Population == 0 {
		o.Population = 8
	}
	if o.EarlyStopWindow == 0 {
		o.EarlyStopWindow = 20
	}
	return o
}

// domSlack resolves the effective domination slack (0 disabled).
func (o Options) domSlack() float64 {
	switch {
	case o.DominationSlack < 0:
		return 0
	case o.DominationSlack == 0:
		return 1.5
	default:
		return o.DominationSlack
	}
}

// ProgressPoint records best-so-far quality against search effort —
// the Fig. 16 trajectories.
type ProgressPoint struct {
	UniqueValid int
	BestMFU     float64
	BestIter    time.Duration
}

// Stats aggregates trial accounting.
type Stats struct {
	Executed int
	Cached   int
	Skipped  int
	Invalid  int
	// Verdict counts trials resolved by the capture-time OOM verdict
	// alone (no simulation). In ablation mode these land in Executed
	// instead; Executed+Verdict is invariant.
	Verdict int
	// Dominated counts trials abandoned at the domination bound.
	Dominated int
	// SkippedByTactic breaks skips down per pruning rule.
	SkippedByTactic map[string]int
}

// Outcome is a completed search.
type Outcome struct {
	Best       *Result
	Stats      Stats
	History    []*Result
	Trajectory []ProgressPoint
	Elapsed    time.Duration
	Stopped    string // why the search ended
}

// Run executes a configuration search for the problem with one shared
// evaluator. It is RunWorkers with a constant factory; see there for
// the loop's semantics.
func Run(ctx context.Context, p Problem, eval Evaluator, opts Options) (*Outcome, error) {
	return RunWorkers(ctx, p, func(int) Evaluator { return eval }, opts)
}

// RunWorkers executes a configuration search for the problem over a
// fixed pool of Options.Parallel workers, each owning the evaluator
// its factory call returned for the whole run (worker-affine
// evaluation: per-worker scratch stays hot across trials, nothing is
// re-acquired per trial). Trial results are reduced in canonical
// generation order, and the domination bound is fixed per generation
// from completed generations only, so the Outcome is bit-identical
// for any Parallel value and any goroutine schedule.
//
// Cancelling ctx stops the trial loop: no further generations are
// issued, the in-flight trials abort through their own ctx
// observation, and RunWorkers returns the partial outcome (Stopped ==
// "cancelled") alongside ctx.Err().
func RunWorkers(ctx context.Context, p Problem, factory WorkerFactory, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	space := MegatronSpace()
	opt, err := newOptimizer(opts.Algorithm, space, opts.Population, prand.HashInts(opts.Seed, 0x5ea4c4))
	if err != nil {
		return nil, err
	}
	tactics := MegatronTactics()
	if opts.DisablePruning {
		tactics = nil
	}

	pool := startTrialPool(opts.Parallel, factory)
	defer pool.stop()

	h := newHistory()
	out := &Outcome{Stats: Stats{SkippedByTactic: make(map[string]int)}}
	start := time.Now()

	sampled := 0
	uniqueValid := 0
	stable := 0
	var lastTop []float64

	for sampled < opts.Budget {
		if ctx.Err() != nil {
			out.Stopped = "cancelled"
			break
		}
		gen := opt.generation()
		if len(gen) == 0 {
			out.Stopped = "space exhausted"
			break
		}
		if sampled+len(gen) > opts.Budget {
			gen = gen[:opts.Budget-sampled]
		}
		sampled += len(gen)

		// The domination bound is fixed before the generation runs,
		// from the best of fully-completed generations — a value every
		// goroutine schedule agrees on.
		var bound time.Duration
		if slack := opts.domSlack(); slack > 0 && out.Best != nil {
			bound = time.Duration(float64(out.Best.IterTime) * slack)
		}

		results := make([]*Result, len(gen))
		needEval := make([]int, 0, len(gen))

		// Resolve each candidate: invalid, cached, pruned or to-run.
		for i, x := range gen {
			k := space.FromVector(x)
			if prev, ok := h.get(k); ok {
				c := *prev
				c.Status = StatusCached
				results[i] = &c
				out.Stats.Cached++
				continue
			}
			cfg, ok := p.Build(k)
			if !ok {
				r := &Result{Knobs: k, Status: StatusInvalid, Invalid: true}
				results[i] = r
				h.put(r)
				out.Stats.Invalid++
				continue
			}
			if d, tac, ok := applyTactics(tactics, k, h); ok {
				r := &Result{
					Knobs: k, Config: cfg, Status: StatusSkipped,
					OOM: d.oom, IterTime: d.iterTime, MFU: d.mfu, Tactic: tac,
				}
				results[i] = r
				h.put(r)
				out.Stats.Skipped++
				out.Stats.SkippedByTactic[tac]++
				continue
			}
			results[i] = &Result{Knobs: k, Config: cfg, Status: StatusExecuted}
			needEval = append(needEval, i)
		}

		// Concurrent trials for the unresolved candidates, on the
		// persistent worker pool.
		if err := pool.run(ctx, results, needEval, bound); err != nil {
			if ctx.Err() != nil {
				out.Stopped = "cancelled"
				break
			}
			return nil, err
		}
		for _, i := range needEval {
			r := results[i]
			h.put(r)
			switch r.Status {
			case StatusVerdict:
				out.Stats.Verdict++
			case StatusDominated:
				out.Stats.Dominated++
			default:
				out.Stats.Executed++
			}
		}

		// Feed the optimizer and update progress tracking.
		ys := make([]float64, len(gen))
		for i, r := range results {
			ys[i] = objective(r, bound)
			out.History = append(out.History, r)
			if r.Status != StatusInvalid && !r.OOM && r.Status != StatusCached {
				uniqueValid++
			}
			if better(r, out.Best) {
				out.Best = r
			}
		}
		opt.report(gen, ys)
		out.Trajectory = append(out.Trajectory, ProgressPoint{
			UniqueValid: uniqueValid,
			BestMFU:     bestMFU(out.Best),
			BestIter:    bestIter(out.Best),
		})

		// Early stopping on a stable top-5 (by MFU) over non-OOM
		// trials.
		if opts.EarlyStopWindow > 0 {
			top := h.topMFU()
			if equalTop(top, lastTop) {
				stable += countFresh(results)
			} else {
				stable = 0
				lastTop = top
			}
			if stable >= opts.EarlyStopWindow && out.Best != nil {
				out.Stopped = "early stop: top-5 stable"
				break
			}
		}
	}
	if out.Stopped == "" {
		out.Stopped = "budget exhausted"
	}
	out.Elapsed = time.Since(start)
	if out.Stopped == "cancelled" {
		return out, ctx.Err()
	}
	if out.Best == nil {
		return out, fmt.Errorf("search: no valid configuration found in %d samples", sampled)
	}
	return out, nil
}

func applyTactics(tactics []Tactic, k Knobs, h *history) (derived, string, bool) {
	for _, t := range tactics {
		if d, ok := t.Apply(k, h); ok {
			return d, t.Name, true
		}
	}
	return derived{}, "", false
}

// trialPool is the fixed set of worker goroutines trials run on. Each
// worker builds its evaluator once (worker-affine scratch) and serves
// trial jobs for the pool's whole lifetime; generations borrow the
// pool via run.
type trialPool struct {
	work chan trialJob
	wg   sync.WaitGroup
}

type trialJob struct {
	ctx   context.Context
	r     *Result
	bound time.Duration
	err   *error
	done  *sync.WaitGroup
}

func startTrialPool(parallel int, factory WorkerFactory) *trialPool {
	p := &trialPool{work: make(chan trialJob)}
	for w := 0; w < parallel; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			eval := factory(w)
			for j := range p.work {
				runTrial(eval, j)
				j.done.Done()
			}
		}(w)
	}
	return p
}

func (p *trialPool) stop() {
	close(p.work)
	p.wg.Wait()
}

// run evaluates results[idx...] on the pool and blocks until the
// generation drains. Results land at their canonical positions in
// results, so reduction order is independent of scheduling; errors
// are reported in idx order.
func (p *trialPool) run(ctx context.Context, results []*Result, idx []int, bound time.Duration) error {
	if len(idx) == 0 {
		return nil
	}
	errs := make([]error, len(idx))
	var done sync.WaitGroup
	done.Add(len(idx))
	for n, i := range idx {
		p.work <- trialJob{r: results[i], bound: bound, err: &errs[n], ctx: ctx, done: &done}
	}
	done.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func runTrial(eval Evaluator, j trialJob) {
	if err := j.ctx.Err(); err != nil {
		*j.err = err
		return
	}
	r := j.r
	ev, err := eval(j.ctx, r.Config, j.bound)
	if err != nil {
		*j.err = fmt.Errorf("search: trial %s: %w", r.Knobs, err)
		return
	}
	switch {
	case ev.Truncated:
		r.Status = StatusDominated
		r.Dominated = true
		r.PeakMem = ev.PeakMem
	case ev.Verdict:
		r.Status = StatusVerdict
		r.OOM = true
		r.PeakMem = ev.PeakMem
	default:
		r.OOM = ev.OOM
		r.IterTime = ev.IterTime
		r.MFU = ev.MFU
		r.PeakMem = ev.PeakMem
	}
}

// objective is the minimized value: iteration time, with invalid, OOM
// and dominated points pushed out by graded penalties (the optimizer
// still senses direction). A dominated trial's true time is unknown
// beyond exceeding the bound, so the bound itself is the honest —
// and schedule-independent — stand-in.
func objective(r *Result, bound time.Duration) float64 {
	switch {
	case r.Invalid:
		return 1e9
	case r.OOM:
		return 1e6
	case r.Dominated:
		return bound.Seconds()
	default:
		return r.IterTime.Seconds()
	}
}

func better(r, best *Result) bool {
	if r.Invalid || r.OOM || r.Dominated || r.IterTime <= 0 {
		return false
	}
	return best == nil || r.IterTime < best.IterTime
}

func bestMFU(r *Result) float64 {
	if r == nil {
		return 0
	}
	return r.MFU
}

func bestIter(r *Result) time.Duration {
	if r == nil {
		return 0
	}
	return r.IterTime
}

// naiveTopMFU recomputes the top-n MFUs by scanning the whole
// history — the reference implementation history.topMFU's incremental
// bookkeeping is tested against.
func naiveTopMFU(h *history, n int) []float64 {
	var mfus []float64
	for _, r := range h.byKnobs {
		if topEligible(r) {
			mfus = append(mfus, r.MFU)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mfus)))
	if len(mfus) > n {
		mfus = mfus[:n]
	}
	return mfus
}

func equalTop(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countFresh counts the generation's freshly resolved non-OOM trials
// — executed, tactic-skipped or dominated — toward the early-stop
// stability window. Cached repeats of already-evaluated points are
// excluded (see Options.EarlyStopWindow).
func countFresh(rs []*Result) int {
	n := 0
	for _, r := range rs {
		if r.OOM || r.Invalid || r.Status == StatusCached {
			continue
		}
		n++
	}
	return n
}
