package search

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"maya/internal/framework"
	"maya/internal/prand"
)

// EvalResult is what the evaluator (Maya's pipeline, or ground truth
// in oracle studies) reports for one recipe.
type EvalResult struct {
	OOM      bool
	IterTime time.Duration
	MFU      float64
	PeakMem  int64
}

// Evaluator runs one trial. Implementations must be safe for
// concurrent use; Maya's pipeline is. The evaluator receives the
// search's ctx and should abort promptly once it is cancelled.
type Evaluator func(ctx context.Context, cfg framework.MegatronConfig) (EvalResult, error)

// Status classifies how a trial was resolved (Fig. 15).
type Status int

// Trial statuses.
const (
	// StatusExecuted trials ran the full emulation pipeline.
	StatusExecuted Status = iota
	// StatusCached trials repeated an already-evaluated point.
	StatusCached
	// StatusSkipped trials were resolved by a pruning tactic.
	StatusSkipped
	// StatusInvalid points violate structural constraints.
	StatusInvalid
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusExecuted:
		return "executed"
	case StatusCached:
		return "cached"
	case StatusSkipped:
		return "skipped"
	default:
		return "invalid"
	}
}

// Result is one resolved trial.
type Result struct {
	Knobs    Knobs
	Config   framework.MegatronConfig
	Status   Status
	Invalid  bool
	OOM      bool
	IterTime time.Duration
	MFU      float64
	PeakMem  int64
	Tactic   string // pruning tactic that resolved a skipped trial
}

// Options configures a search run.
type Options struct {
	// Algorithm: "cma" (default), "random", "grid", "oneplusone",
	// "pso", "twopointsde".
	Algorithm string
	// Budget is the maximum number of sampled points (default 2000).
	Budget int
	// Parallel is the number of concurrent trials (default 8).
	Parallel int
	// Seed drives the optimizer's randomness.
	Seed uint64
	// DisablePruning turns the Table-10 tactics off (ablation).
	DisablePruning bool
	// EarlyStopWindow stops the search when the top-5 MFU set is
	// unchanged for this many consecutive non-OOM trials (default 20;
	// negative disables).
	EarlyStopWindow int
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = "cma"
	}
	if o.Budget == 0 {
		o.Budget = 2000
	}
	if o.Parallel == 0 {
		o.Parallel = 8
	}
	if o.EarlyStopWindow == 0 {
		o.EarlyStopWindow = 20
	}
	return o
}

// ProgressPoint records best-so-far quality against search effort —
// the Fig. 16 trajectories.
type ProgressPoint struct {
	UniqueValid int
	BestMFU     float64
	BestIter    time.Duration
}

// Stats aggregates trial accounting.
type Stats struct {
	Executed int
	Cached   int
	Skipped  int
	Invalid  int
	// SkippedByTactic breaks skips down per pruning rule.
	SkippedByTactic map[string]int
}

// Outcome is a completed search.
type Outcome struct {
	Best       *Result
	Stats      Stats
	History    []*Result
	Trajectory []ProgressPoint
	Elapsed    time.Duration
	Stopped    string // why the search ended
}

// Run executes a configuration search for the problem. Cancelling
// ctx stops the trial loop: no further generations are issued, the
// in-flight trials abort through their own ctx observation, and Run
// returns the partial outcome (Stopped == "cancelled") alongside
// ctx.Err().
func Run(ctx context.Context, p Problem, eval Evaluator, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	space := MegatronSpace()
	opt, err := newOptimizer(opts.Algorithm, space, opts.Parallel, prand.HashInts(opts.Seed, 0x5ea4c4))
	if err != nil {
		return nil, err
	}
	tactics := MegatronTactics()
	if opts.DisablePruning {
		tactics = nil
	}

	h := newHistory()
	out := &Outcome{Stats: Stats{SkippedByTactic: make(map[string]int)}}
	start := time.Now()

	sampled := 0
	uniqueValid := 0
	stable := 0
	var lastTop []float64

	for sampled < opts.Budget {
		if ctx.Err() != nil {
			out.Stopped = "cancelled"
			break
		}
		gen := opt.generation()
		if len(gen) == 0 {
			out.Stopped = "space exhausted"
			break
		}
		if sampled+len(gen) > opts.Budget {
			gen = gen[:opts.Budget-sampled]
		}
		sampled += len(gen)

		results := make([]*Result, len(gen))
		needEval := make([]int, 0, len(gen))

		// Resolve each candidate: invalid, cached, pruned or to-run.
		for i, x := range gen {
			k := space.FromVector(x)
			if prev, ok := h.get(k); ok {
				c := *prev
				c.Status = StatusCached
				results[i] = &c
				out.Stats.Cached++
				continue
			}
			cfg, ok := p.Build(k)
			if !ok {
				r := &Result{Knobs: k, Status: StatusInvalid, Invalid: true}
				results[i] = r
				h.put(r)
				out.Stats.Invalid++
				continue
			}
			if d, tac, ok := applyTactics(tactics, k, h); ok {
				r := &Result{
					Knobs: k, Config: cfg, Status: StatusSkipped,
					OOM: d.oom, IterTime: d.iterTime, MFU: d.mfu, Tactic: tac,
				}
				results[i] = r
				h.put(r)
				out.Stats.Skipped++
				out.Stats.SkippedByTactic[tac]++
				continue
			}
			results[i] = &Result{Knobs: k, Config: cfg, Status: StatusExecuted}
			needEval = append(needEval, i)
		}

		// Concurrent trials for the unresolved candidates.
		if err := runTrials(ctx, eval, results, needEval, opts.Parallel); err != nil {
			if ctx.Err() != nil {
				out.Stopped = "cancelled"
				break
			}
			return nil, err
		}
		for _, i := range needEval {
			h.put(results[i])
			out.Stats.Executed++
		}

		// Feed the optimizer and update progress tracking.
		ys := make([]float64, len(gen))
		for i, r := range results {
			ys[i] = objective(r)
			out.History = append(out.History, r)
			if r.Status != StatusInvalid && !r.OOM && r.Status != StatusCached {
				uniqueValid++
			}
			if better(r, out.Best) {
				out.Best = r
			}
		}
		opt.report(gen, ys)
		out.Trajectory = append(out.Trajectory, ProgressPoint{
			UniqueValid: uniqueValid,
			BestMFU:     bestMFU(out.Best),
			BestIter:    bestIter(out.Best),
		})

		// Early stopping on a stable top-5 (by MFU) over non-OOM
		// trials.
		if opts.EarlyStopWindow > 0 {
			top := topMFU(h, 5)
			if equalTop(top, lastTop) {
				stable += countNonOOM(results)
			} else {
				stable = 0
				lastTop = top
			}
			if stable >= opts.EarlyStopWindow && out.Best != nil {
				out.Stopped = "early stop: top-5 stable"
				break
			}
		}
	}
	if out.Stopped == "" {
		out.Stopped = "budget exhausted"
	}
	out.Elapsed = time.Since(start)
	if out.Stopped == "cancelled" {
		return out, ctx.Err()
	}
	if out.Best == nil {
		return out, fmt.Errorf("search: no valid configuration found in %d samples", sampled)
	}
	return out, nil
}

func applyTactics(tactics []Tactic, k Knobs, h *history) (derived, string, bool) {
	for _, t := range tactics {
		if d, ok := t.Apply(k, h); ok {
			return d, t.Name, true
		}
	}
	return derived{}, "", false
}

func runTrials(ctx context.Context, eval Evaluator, results []*Result, idx []int, parallel int) error {
	sem := make(chan struct{}, parallel)
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for n, i := range idx {
		wg.Add(1)
		go func(n, i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[n] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[n] = err
				return
			}
			r := results[i]
			ev, err := eval(ctx, r.Config)
			if err != nil {
				errs[n] = fmt.Errorf("search: trial %s: %w", r.Knobs, err)
				return
			}
			r.OOM = ev.OOM
			r.IterTime = ev.IterTime
			r.MFU = ev.MFU
			r.PeakMem = ev.PeakMem
		}(n, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// objective is the minimized value: iteration time, with invalid and
// OOM points pushed out by large penalties (graded so the optimizer
// still senses direction).
func objective(r *Result) float64 {
	switch {
	case r.Invalid:
		return 1e9
	case r.OOM:
		return 1e6
	default:
		return r.IterTime.Seconds()
	}
}

func better(r, best *Result) bool {
	if r.Invalid || r.OOM || r.IterTime <= 0 {
		return false
	}
	return best == nil || r.IterTime < best.IterTime
}

func bestMFU(r *Result) float64 {
	if r == nil {
		return 0
	}
	return r.MFU
}

func bestIter(r *Result) time.Duration {
	if r == nil {
		return 0
	}
	return r.IterTime
}

func topMFU(h *history, n int) []float64 {
	var mfus []float64
	for _, r := range h.byKnobs {
		if !r.OOM && !r.Invalid && r.MFU > 0 {
			mfus = append(mfus, r.MFU)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mfus)))
	if len(mfus) > n {
		mfus = mfus[:n]
	}
	return mfus
}

func equalTop(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countNonOOM(rs []*Result) int {
	n := 0
	for _, r := range rs {
		if !r.OOM && !r.Invalid {
			n++
		}
	}
	return n
}
