package search

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

func TestSpaceSizeMatchesTable5(t *testing.T) {
	s := MegatronSpace()
	// 4*4*5*3*2*2*2 = 1920 points.
	if s.Size() != 1920 {
		t.Fatalf("space size = %d, want 1920", s.Size())
	}
	if len(s.Enumerate()) != 1920 {
		t.Fatalf("enumeration size mismatch")
	}
}

func TestFromVectorCoversSpace(t *testing.T) {
	s := MegatronSpace()
	if err := quick.Check(func(raw [7]uint16) bool {
		x := make([]float64, 7)
		for i, v := range raw {
			x[i] = float64(v) / 65536.0
		}
		k := s.FromVector(x)
		// Every produced knob value must come from the space.
		return indexOfInt(s.TP, k.TP) >= 0 && indexOfInt(s.PP, k.PP) >= 0 &&
			indexOfInt(s.MicroMult, k.MicroMult) >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKnobsVectorRoundTrip(t *testing.T) {
	s := MegatronSpace()
	dims := s.Dims()
	for _, k := range s.Enumerate() {
		x := knobsToVector(s, k, dims)
		if s.FromVector(x) != k {
			t.Fatalf("round trip failed for %v", k)
		}
	}
}

func TestProblemBuildConstraints(t *testing.T) {
	p := Problem{Model: models.GPT3_2_7B(), Cluster: hardware.DGXV100(1), GlobalBatch: 64}
	// TP beyond node size is never viable.
	if _, ok := p.Build(Knobs{TP: 8, PP: 2, MicroMult: 1, VirtualStages: 1}); ok {
		t.Fatal("tp*pp > ngpus accepted")
	}
	cfg, ok := p.Build(Knobs{TP: 2, PP: 2, MicroMult: 2, VirtualStages: 1})
	if !ok {
		t.Fatal("valid knobs rejected")
	}
	if cfg.MicroBatches != 4 { // mult * pp
		t.Fatalf("microbatches = %d", cfg.MicroBatches)
	}
	// Virtual stages collapse to 1 without pipeline parallelism.
	cfg, ok = p.Build(Knobs{TP: 2, PP: 1, MicroMult: 2, VirtualStages: 4})
	if !ok || cfg.VirtualStages != 1 {
		t.Fatalf("pp=1 virtual stages = %d (ok=%t)", cfg.VirtualStages, ok)
	}
}

// syntheticEval scores configs analytically so optimizer behavior can
// be tested quickly: a known optimum plus OOM region.
func syntheticEval(_ context.Context, cfg framework.MegatronConfig, _ time.Duration) (EvalResult, error) {
	// Optimum at tp=2, pp=4; penalty grows with distance.
	score := 1.0
	score += 0.3 * abs(cfg.TP-2)
	score += 0.2 * abs(cfg.PP-4)
	score += 0.05 * abs(cfg.MicroBatches-8)
	if cfg.SeqParallel {
		score -= 0.05
	}
	// No recomputation at high PP without seq parallel: "OOM".
	oom := !cfg.ActRecompute && !cfg.SeqParallel && cfg.PP == 1 && cfg.TP == 1
	mfu := 0.6 / score
	return EvalResult{
		OOM:      oom,
		IterTime: time.Duration(score * float64(time.Second)),
		MFU:      mfu,
	}, nil
}

func abs(v int) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}

func testProblem() Problem {
	return Problem{Model: models.GPT3_2_7B(), Cluster: hardware.DGXV100(2), GlobalBatch: 128}
}

func TestSearchFindsGoodConfigs(t *testing.T) {
	for _, algo := range []string{"cma", "random", "oneplusone", "pso", "twopointsde"} {
		out, err := Run(context.Background(), testProblem(), syntheticEval, Options{
			Algorithm: algo, Budget: 300, Parallel: 8, Seed: 3, EarlyStopWindow: -1,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if out.Best == nil || out.Best.OOM {
			t.Fatalf("%s: no best", algo)
		}
		// Synthetic optimum is 0.95s (tp2 pp4 mb8 sp); accept within 25%.
		if out.Best.IterTime > 1190*time.Millisecond {
			t.Errorf("%s: best %v (%s) too far from optimum", algo, out.Best.IterTime, out.Best.Knobs)
		}
	}
}

func TestGridFindsExactOptimum(t *testing.T) {
	out, err := Run(context.Background(), testProblem(), syntheticEval, Options{
		Algorithm: "grid", Budget: MegatronSpace().Size(), Parallel: 8, EarlyStopWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := out.Best
	if best.Knobs.TP != 2 || best.Knobs.PP != 4 || !best.Knobs.SeqParallel {
		t.Fatalf("grid best = %s", best.Knobs)
	}
	if out.Stopped != "space exhausted" && out.Stopped != "budget exhausted" {
		t.Fatalf("stopped = %q", out.Stopped)
	}
}

func TestCachingAvoidsReevaluation(t *testing.T) {
	var evals atomic.Int64
	counting := func(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (EvalResult, error) {
		evals.Add(1)
		return syntheticEval(ctx, cfg, bound)
	}
	out, err := Run(context.Background(), testProblem(), counting, Options{
		Algorithm: "random", Budget: 800, Parallel: 4, Seed: 5, EarlyStopWindow: -1, DisablePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Cached == 0 {
		t.Fatal("800 random samples of a 1920-point space should repeat")
	}
	if int(evals.Load()) != out.Stats.Executed {
		t.Fatalf("evaluator ran %d times, stats say %d", evals.Load(), out.Stats.Executed)
	}
}

func TestPruningSkipsAndPreservesBest(t *testing.T) {
	withPruning, err := Run(context.Background(), testProblem(), syntheticEval, Options{
		Algorithm: "grid", Budget: MegatronSpace().Size(), Parallel: 8, EarlyStopWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	withoutPruning, err := Run(context.Background(), testProblem(), syntheticEval, Options{
		Algorithm: "grid", Budget: MegatronSpace().Size(), Parallel: 8, EarlyStopWindow: -1, DisablePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withPruning.Stats.Skipped == 0 {
		t.Fatal("grid search with tactics should skip some configs")
	}
	// Fidelity preserved: the found optimum must match.
	if withPruning.Best.IterTime != withoutPruning.Best.IterTime {
		t.Fatalf("pruning changed the optimum: %v vs %v",
			withPruning.Best.IterTime, withoutPruning.Best.IterTime)
	}
	if withPruning.Stats.Executed >= withoutPruning.Stats.Executed {
		t.Fatalf("pruning did not reduce executions: %d vs %d",
			withPruning.Stats.Executed, withoutPruning.Stats.Executed)
	}
}

func TestEarlyStopping(t *testing.T) {
	out, err := Run(context.Background(), testProblem(), syntheticEval, Options{
		Algorithm: "random", Budget: 100000, Parallel: 8, Seed: 5, EarlyStopWindow: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stopped != "early stop: top-5 stable" {
		t.Fatalf("stopped = %q after %d results", out.Stopped, len(out.History))
	}
	if len(out.History) >= 100000 {
		t.Fatal("early stopping never triggered")
	}
}

func TestTrajectoryMonotone(t *testing.T) {
	out, err := Run(context.Background(), testProblem(), syntheticEval, Options{
		Algorithm: "cma", Budget: 200, Parallel: 8, Seed: 9, EarlyStopWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out.Trajectory); i++ {
		if out.Trajectory[i].BestMFU < out.Trajectory[i-1].BestMFU {
			t.Fatalf("best MFU regressed at %d", i)
		}
		if out.Trajectory[i].UniqueValid < out.Trajectory[i-1].UniqueValid {
			t.Fatalf("unique count regressed at %d", i)
		}
	}
}

func TestCMABeatsRandomOnQuadratic(t *testing.T) {
	// Optimizer-level sanity on a pure continuous objective.
	quad := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - 0.3 - 0.05*float64(i)
			s += d * d
		}
		return s
	}
	runOpt := func(name string) float64 {
		opt, err := newOptimizer(name, MegatronSpace(), 8, 17)
		if err != nil {
			t.Fatal(err)
		}
		best := inf
		for i := 0; i < 40; i++ {
			gen := opt.generation()
			ys := make([]float64, len(gen))
			for j, x := range gen {
				ys[j] = quad(x)
				if ys[j] < best {
					best = ys[j]
				}
			}
			opt.report(gen, ys)
		}
		return best
	}
	cma := runOpt("cma")
	rnd := runOpt("random")
	if cma > rnd {
		t.Fatalf("CMA-ES (%v) should beat random (%v) on a quadratic", cma, rnd)
	}
	if cma > 0.01 {
		t.Fatalf("CMA-ES best %v did not converge", cma)
	}
}

func TestSearchCancellationStopsTrials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	release := make(chan struct{})
	counting := func(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (EvalResult, error) {
		evals.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return EvalResult{}, ctx.Err()
		}
		return syntheticEval(ctx, cfg, bound)
	}
	done := make(chan struct{})
	var out *Outcome
	var err error
	go func() {
		defer close(done)
		out, err = Run(ctx, testProblem(), counting, Options{
			Algorithm: "random", Budget: 1000, Parallel: 4, Seed: 1, EarlyStopWindow: -1,
		})
	}()
	// Let a few trials start, then cancel while they are blocked.
	for evals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("search did not stop after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: err = %v, want context.Canceled", err)
	}
	if out == nil || out.Stopped != "cancelled" {
		t.Fatalf("outcome = %+v, want Stopped == cancelled", out)
	}
	// No further trials may be issued after cancellation settles.
	settled := evals.Load()
	close(release)
	time.Sleep(20 * time.Millisecond)
	if after := evals.Load(); after != settled {
		t.Fatalf("search kept issuing trials after cancel: %d -> %d", settled, after)
	}
}

func TestSearchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, testProblem(), syntheticEval, Options{Algorithm: "random", Budget: 50, Parallel: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Stats.Executed != 0 {
		t.Fatalf("pre-cancelled search executed %d trials", out.Stats.Executed)
	}
}
