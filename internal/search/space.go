// Package search implements Maya-Search: black-box configuration
// search over Megatron training recipes driven by Maya's emulation
// pipeline. It provides the Table-5 search space, a concurrent trial
// scheduler with caching, the fidelity-preserving pruning tactics of
// Appendix D, early stopping, and the ask/tell optimizers evaluated
// in Appendix C (CMA-ES, OnePlusOne, PSO, TwoPointsDE, random and
// grid search).
package search

import (
	"fmt"

	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
)

// Knobs is one point in the recipe space (Table 5).
type Knobs struct {
	TP            int
	PP            int
	MicroMult     int
	VirtualStages int
	ActRecompute  bool
	SeqParallel   bool
	DistOptimizer bool
}

// String implements fmt.Stringer.
func (k Knobs) String() string {
	return fmt.Sprintf("tp%d/pp%d/x%d/v%d/re=%t/sp=%t/do=%t",
		k.TP, k.PP, k.MicroMult, k.VirtualStages, k.ActRecompute, k.SeqParallel, k.DistOptimizer)
}

// Space is the cartesian search domain.
type Space struct {
	TP            []int
	PP            []int
	MicroMult     []int
	VirtualStages []int
	ActRecompute  []bool
	SeqParallel   []bool
	DistOptimizer []bool
}

// MegatronSpace returns the paper's Table 5 space.
func MegatronSpace() Space {
	return Space{
		TP:            []int{1, 2, 4, 8},
		PP:            []int{1, 2, 4, 8},
		MicroMult:     []int{1, 2, 4, 6, 8},
		VirtualStages: []int{1, 2, 4},
		ActRecompute:  []bool{false, true},
		SeqParallel:   []bool{false, true},
		DistOptimizer: []bool{false, true},
	}
}

// Dims returns the cardinality of each knob dimension.
func (s Space) Dims() []int {
	return []int{
		len(s.TP), len(s.PP), len(s.MicroMult), len(s.VirtualStages),
		len(s.ActRecompute), len(s.SeqParallel), len(s.DistOptimizer),
	}
}

// Size returns the number of points in the space.
func (s Space) Size() int {
	n := 1
	for _, d := range s.Dims() {
		n *= d
	}
	return n
}

// At maps per-dimension indices to knobs.
func (s Space) At(idx []int) Knobs {
	return Knobs{
		TP:            s.TP[idx[0]],
		PP:            s.PP[idx[1]],
		MicroMult:     s.MicroMult[idx[2]],
		VirtualStages: s.VirtualStages[idx[3]],
		ActRecompute:  s.ActRecompute[idx[4]],
		SeqParallel:   s.SeqParallel[idx[5]],
		DistOptimizer: s.DistOptimizer[idx[6]],
	}
}

// FromVector maps a continuous vector in [0,1)^d to knobs — the
// bridge between continuous optimizers and the discrete space.
func (s Space) FromVector(x []float64) Knobs {
	dims := s.Dims()
	idx := make([]int, len(dims))
	for i, d := range dims {
		v := x[i]
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = 0.999999
		}
		idx[i] = int(v * float64(d))
	}
	return s.At(idx)
}

// Enumerate lists every point (grid order).
func (s Space) Enumerate() []Knobs {
	dims := s.Dims()
	total := s.Size()
	out := make([]Knobs, 0, total)
	idx := make([]int, len(dims))
	for {
		out = append(out, s.At(idx))
		i := len(dims) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Problem fixes the model, cluster and batch the search optimizes.
type Problem struct {
	Model       models.Transformer
	Cluster     hardware.Cluster
	GlobalBatch int
}

// Build turns knobs into a runnable Megatron recipe; ok=false marks
// points that violate structural constraints (the optimizer learns to
// avoid them through penalties, and grid search skips them).
func (p Problem) Build(k Knobs) (framework.MegatronConfig, bool) {
	ngpus := p.Cluster.TotalGPUs()
	if k.TP > p.Cluster.Node.GPUsPerNode {
		// Tensor parallelism across node boundaries is never viable.
		return framework.MegatronConfig{}, false
	}
	if k.TP*k.PP > ngpus {
		return framework.MegatronConfig{}, false
	}
	micro := k.MicroMult
	if k.PP > 1 {
		micro = k.MicroMult * k.PP
	}
	v := k.VirtualStages
	if k.PP == 1 {
		v = 1
	}
	cfg := framework.MegatronConfig{
		Model:         p.Model,
		NGPUs:         ngpus,
		GlobalBatch:   p.GlobalBatch,
		TP:            k.TP,
		PP:            k.PP,
		MicroBatches:  micro,
		VirtualStages: v,
		ActRecompute:  k.ActRecompute,
		SeqParallel:   k.SeqParallel && k.TP > 1,
		DistOptimizer: k.DistOptimizer,
	}
	if err := cfg.Validate(); err != nil {
		return framework.MegatronConfig{}, false
	}
	if cfg.MicroBatchSize() < 1 {
		return framework.MegatronConfig{}, false
	}
	return cfg, true
}
