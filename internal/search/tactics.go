package search

import "time"

// Tactic is one fidelity-preserving pruning rule (Appendix D,
// Table 10): given a candidate and the evaluation history, it may
// resolve the candidate without running a trial, either by proving it
// OOMs or by transferring a known runtime. Tactics are conservative —
// no potentially optimal configuration is ever skipped.
type Tactic struct {
	Name string
	// Apply inspects the candidate against history and returns a
	// derived result with ok=true when the trial can be skipped.
	Apply func(k Knobs, h *history) (derived, bool)
}

type derived struct {
	oom      bool
	iterTime time.Duration
	mfu      float64
	from     Knobs
}

// topN is the size of the incrementally-maintained MFU leaderboard
// the early-stop criterion watches.
const topN = 5

// history indexes completed evaluations by knobs and maintains the
// top-N MFU leaderboard incrementally on put — a long search would
// otherwise rescan and re-sort the whole map every generation.
type history struct {
	byKnobs map[Knobs]*Result
	top     []float64 // descending, at most topN entries
}

func newHistory() *history {
	return &history{byKnobs: make(map[Knobs]*Result), top: make([]float64, 0, topN)}
}

func (h *history) get(k Knobs) (*Result, bool) {
	r, ok := h.byKnobs[k]
	return r, ok
}

func (h *history) put(r *Result) {
	// A duplicate knob inside one generation re-puts an identical
	// result; the map overwrite is harmless but the leaderboard must
	// count the point once, like a map scan would.
	if _, dup := h.byKnobs[r.Knobs]; !dup && topEligible(r) {
		h.insertTop(r.MFU)
	}
	h.byKnobs[r.Knobs] = r
}

// topEligible reports whether a result participates in the MFU
// leaderboard: a real, finished measurement.
func topEligible(r *Result) bool {
	return !r.OOM && !r.Invalid && !r.Dominated && r.MFU > 0
}

// insertTop inserts v into the descending leaderboard, dropping the
// smallest entry once it exceeds topN.
func (h *history) insertTop(v float64) {
	i := len(h.top)
	for i > 0 && h.top[i-1] < v {
		i--
	}
	if i >= topN {
		return
	}
	if len(h.top) < topN {
		h.top = append(h.top, 0)
	}
	copy(h.top[i+1:], h.top[i:])
	h.top[i] = v
}

// topMFU returns the current leaderboard. The slice is a copy: the
// caller may hold it across generations while the leaderboard keeps
// evolving.
func (h *history) topMFU() []float64 {
	return append([]float64(nil), h.top...)
}

// MegatronTactics returns the paper's four rules.
func MegatronTactics() []Tactic {
	return []Tactic{
		{
			// Activation recomputation strictly reduces memory: if
			// the recomputing twin OOMed, the non-recomputing config
			// must OOM too.
			Name: "act-recompute-oom",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.ActRecompute {
					return derived{}, false
				}
				twin := k
				twin.ActRecompute = true
				if r, ok := h.get(twin); ok && r.OOM {
					return derived{oom: true, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// Sequence parallelism reduces activation memory at no
			// communication cost: same reasoning.
			Name: "seq-parallel-oom",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.SeqParallel || k.TP == 1 {
					return derived{}, false
				}
				twin := k
				twin.SeqParallel = true
				if r, ok := h.get(twin); ok && r.OOM {
					return derived{oom: true, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// The distributed optimizer trades memory for
			// communication; if the config fits without it, enabling
			// it runs at effectively the same speed — transfer the
			// runtime.
			Name: "dist-opt-runtime",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if !k.DistOptimizer {
					return derived{}, false
				}
				twin := k
				twin.DistOptimizer = false
				if r, ok := h.get(twin); ok && !r.OOM && !r.Invalid && !r.Dominated {
					return derived{iterTime: r.IterTime, mfu: r.MFU, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// Without pipeline parallelism, utilization only degrades
			// as microbatch count grows: a smaller-multiplier twin's
			// runtime bounds (and approximates) this one.
			Name: "microbatch-runtime",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.PP != 1 || k.MicroMult == 1 {
					return derived{}, false
				}
				for mult := k.MicroMult - 1; mult >= 1; mult-- {
					twin := k
					twin.MicroMult = mult
					if r, ok := h.get(twin); ok && !r.OOM && !r.Invalid && !r.Dominated {
						return derived{iterTime: r.IterTime, mfu: r.MFU, from: twin}, true
					}
				}
				return derived{}, false
			},
		},
	}
}
