package search

import "time"

// Tactic is one fidelity-preserving pruning rule (Appendix D,
// Table 10): given a candidate and the evaluation history, it may
// resolve the candidate without running a trial, either by proving it
// OOMs or by transferring a known runtime. Tactics are conservative —
// no potentially optimal configuration is ever skipped.
type Tactic struct {
	Name string
	// Apply inspects the candidate against history and returns a
	// derived result with ok=true when the trial can be skipped.
	Apply func(k Knobs, h *history) (derived, bool)
}

type derived struct {
	oom      bool
	iterTime time.Duration
	mfu      float64
	from     Knobs
}

// history indexes completed evaluations by knobs.
type history struct {
	byKnobs map[Knobs]*Result
}

func newHistory() *history {
	return &history{byKnobs: make(map[Knobs]*Result)}
}

func (h *history) get(k Knobs) (*Result, bool) {
	r, ok := h.byKnobs[k]
	return r, ok
}

func (h *history) put(r *Result) {
	h.byKnobs[r.Knobs] = r
}

// MegatronTactics returns the paper's four rules.
func MegatronTactics() []Tactic {
	return []Tactic{
		{
			// Activation recomputation strictly reduces memory: if
			// the recomputing twin OOMed, the non-recomputing config
			// must OOM too.
			Name: "act-recompute-oom",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.ActRecompute {
					return derived{}, false
				}
				twin := k
				twin.ActRecompute = true
				if r, ok := h.get(twin); ok && r.OOM {
					return derived{oom: true, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// Sequence parallelism reduces activation memory at no
			// communication cost: same reasoning.
			Name: "seq-parallel-oom",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.SeqParallel || k.TP == 1 {
					return derived{}, false
				}
				twin := k
				twin.SeqParallel = true
				if r, ok := h.get(twin); ok && r.OOM {
					return derived{oom: true, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// The distributed optimizer trades memory for
			// communication; if the config fits without it, enabling
			// it runs at effectively the same speed — transfer the
			// runtime.
			Name: "dist-opt-runtime",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if !k.DistOptimizer {
					return derived{}, false
				}
				twin := k
				twin.DistOptimizer = false
				if r, ok := h.get(twin); ok && !r.OOM && !r.Invalid {
					return derived{iterTime: r.IterTime, mfu: r.MFU, from: twin}, true
				}
				return derived{}, false
			},
		},
		{
			// Without pipeline parallelism, utilization only degrades
			// as microbatch count grows: a smaller-multiplier twin's
			// runtime bounds (and approximates) this one.
			Name: "microbatch-runtime",
			Apply: func(k Knobs, h *history) (derived, bool) {
				if k.PP != 1 || k.MicroMult == 1 {
					return derived{}, false
				}
				for mult := k.MicroMult - 1; mult >= 1; mult-- {
					twin := k
					twin.MicroMult = mult
					if r, ok := h.get(twin); ok && !r.OOM && !r.Invalid {
						return derived{iterTime: r.IterTime, mfu: r.MFU, from: twin}, true
					}
				}
				return derived{}, false
			},
		},
	}
}
