package serve

import (
	"errors"
	"sync"
	"time"
)

// Admission errors, matchable with errors.Is. The handler layer maps
// them to 429 (throttled) and 503 (queue full).
var (
	// ErrThrottled marks a request rejected by its tenant's token
	// bucket: the tenant is over its sustained rate and burst.
	ErrThrottled = errors.New("serve: tenant over rate limit")
	// ErrQueueFull marks a request rejected because the service-wide
	// admission queue is at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
)

// maxTenantBuckets bounds the tenant-bucket map; beyond it the
// longest-idle buckets are pruned. An idle bucket regenerates at full
// burst, which only ever favors the returning tenant.
const maxTenantBuckets = 4096

// Admission is the front door of the service: a per-tenant token
// bucket (fairness — one hot tenant cannot starve the rest) in front
// of a bounded service-wide slot count (backpressure — beyond it,
// load-shed with 503 rather than queue without bound). Both checks
// are synchronous and non-blocking: an admitted request holds its
// slot until release; a rejected one costs nothing downstream.
type Admission struct {
	slots chan struct{}

	rate  float64 // tokens per second per tenant; <= 0 disables
	burst float64

	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// tokenBucket is one tenant's refillable allowance.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds an admission gate with the given total slot
// capacity (minimum 1) and per-tenant rate/burst. rate <= 0 disables
// tenant throttling (every tenant passes straight to the slot check).
func NewAdmission(capacity int, rate float64, burst int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &Admission{
		slots:   make(chan struct{}, capacity),
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// Admit charges the tenant n tokens (a batch of k predictions costs
// k) and claims one service slot. On success it returns the release
// function the caller must invoke when the request completes; on
// failure it returns ErrThrottled or ErrQueueFull and nothing is
// held.
func (a *Admission) Admit(tenant string, n int) (release func(), err error) {
	if n < 1 {
		n = 1
	}
	if !a.allow(tenant, float64(n)) {
		return nil, ErrThrottled
	}
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	default:
		return nil, ErrQueueFull
	}
}

// allow runs the tenant's token bucket: refill by elapsed time, then
// spend n if covered. A tenant over its allowance is refused but its
// bucket still refills — fairness is per unit time, not per attempt.
func (a *Admission) allow(tenant string, n float64) bool {
	if a.rate <= 0 {
		return true
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		if len(a.buckets) >= maxTenantBuckets {
			a.pruneLocked(now)
		}
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	b.tokens = min(a.burst, b.tokens+a.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// pruneLocked drops buckets idle long enough to have refilled to full
// burst — dropping them is behavior-neutral. Callers hold a.mu.
func (a *Admission) pruneLocked(now time.Time) {
	idle := time.Duration(float64(time.Second) * a.burst / a.rate)
	for t, b := range a.buckets {
		if now.Sub(b.last) > idle {
			delete(a.buckets, t)
		}
	}
}

// Depth reports how many admitted requests currently hold slots.
func (a *Admission) Depth() int { return len(a.slots) }

// Capacity reports the total slot capacity.
func (a *Admission) Capacity() int { return cap(a.slots) }
