package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock steps time manually for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                   { return c.t }
func (c *fakeClock) advance(d time.Duration)          { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                        { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(a *Admission, c *fakeClock) *Admission { a.now = c.now; return a }

func TestAdmissionTenantTokenBucket(t *testing.T) {
	clk := newFakeClock()
	// 2 tokens/sec, burst 4, plenty of slots.
	a := withClock(NewAdmission(100, 2, 4), clk)

	// The burst admits immediately; the fifth request is throttled.
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, err := a.Admit("alice", 1)
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := a.Admit("alice", 1); !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-burst admit: err = %v, want ErrThrottled", err)
	}

	// Fairness: a different tenant has its own allowance.
	if _, err := a.Admit("bob", 1); err != nil {
		t.Fatalf("other tenant throttled by alice's bucket: %v", err)
	}

	// Refill: 1s at 2 tokens/sec buys two more admissions.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if _, err := a.Admit("alice", 1); err != nil {
			t.Fatalf("post-refill admit %d: %v", i, err)
		}
	}
	if _, err := a.Admit("alice", 1); !errors.Is(err, ErrThrottled) {
		t.Fatalf("refill overshot: err = %v, want ErrThrottled", err)
	}

	// Batch charging: a batch of 3 needs 3 tokens at once.
	clk.advance(time.Second) // 2 tokens
	if _, err := a.Admit("alice", 3); !errors.Is(err, ErrThrottled) {
		t.Fatalf("batch of 3 with 2 tokens: err = %v, want ErrThrottled", err)
	}
	clk.advance(time.Second) // 4 tokens (capped at burst)
	if _, err := a.Admit("alice", 3); err != nil {
		t.Fatalf("batch of 3 with 4 tokens: %v", err)
	}
	for _, rel := range releases {
		rel()
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(2, 0, 1) // throttling off, 2 slots

	rel1, err := a.Admit("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Admit("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Depth(); got != 2 {
		t.Fatalf("Depth = %d, want 2", got)
	}
	if _, err := a.Admit("c", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue admit: err = %v, want ErrQueueFull", err)
	}
	rel1()
	if _, err := a.Admit("c", 1); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
}

func TestAdmissionDisabledThrottling(t *testing.T) {
	a := NewAdmission(1000, 0, 1)
	for i := 0; i < 100; i++ {
		rel, err := a.Admit("hammer", 1)
		if err != nil {
			t.Fatalf("admit %d with throttling disabled: %v", i, err)
		}
		rel()
	}
}

func TestAdmissionBucketPruning(t *testing.T) {
	clk := newFakeClock()
	a := withClock(NewAdmission(10, 1, 1), clk)

	// Fill the map to the bound with distinct tenants.
	for i := 0; i < maxTenantBuckets; i++ {
		a.allow(tenantName(i), 1)
	}
	if got := len(a.buckets); got != maxTenantBuckets {
		t.Fatalf("bucket count = %d, want %d", got, maxTenantBuckets)
	}
	// After everyone has fully refilled, a new tenant triggers the
	// prune and the map collapses.
	clk.advance(time.Hour)
	a.allow("fresh", 1)
	if got := len(a.buckets); got > 2 {
		t.Fatalf("bucket count after prune = %d, want <= 2", got)
	}
}

func tenantName(i int) string {
	return "tenant-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
}
