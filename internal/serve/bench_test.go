package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maya"
)

// BenchmarkServeSaturation drives the full HTTP stack — admission,
// coalescing, worker pool, predictor — with 2x-workers closed-loop
// clients and reports predictions/sec plus tail latency per worker
// count. Every request carries a distinct flops value, so requests
// never coalesce (flops is part of the prediction identity) yet all
// share one cached capture (flops is not part of the capture
// identity): the sweep isolates how simulation throughput scales
// with the pool.
func BenchmarkServeSaturation(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, err := New(Config{
				Cluster: maya.DGXV100(1), Profile: maya.ProfileLLM,
				Workers: workers, Queue: 64 * workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			post := func(flops float64) (int, error) {
				spec := smallSpec()
				spec.FLOPs = flops
				body, _ := json.Marshal(spec)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					return 0, err
				}
				resp.Body.Close()
				return resp.StatusCode, nil
			}
			// Warm the capture cache so the sweep measures simulate
			// throughput, not one-off emulation cost.
			if code, err := post(1); err != nil || code != http.StatusOK {
				b.Fatalf("warmup: status %d, err %v", code, err)
			}

			clients := 2 * workers
			var next atomic.Int64
			latencies := make([][]time.Duration, clients)
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						t0 := time.Now()
						code, err := post(float64(1e12 + i))
						if err != nil || code != http.StatusOK {
							b.Errorf("request %d: status %d, err %v", i, code, err)
							return
						}
						latencies[c] = append(latencies[c], time.Since(t0))
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			var all []time.Duration
			for _, ls := range latencies {
				all = append(all, ls...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			q := func(p float64) float64 {
				if len(all) == 0 {
					return 0
				}
				i := int(p * float64(len(all)-1))
				return float64(all[i]) / float64(time.Millisecond)
			}
			b.ReportMetric(float64(len(all))/elapsed.Seconds(), "pred/s")
			b.ReportMetric(q(0.50), "p50_ms")
			b.ReportMetric(q(0.99), "p99_ms")
		})
	}
}
