package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes every call through; consecutive failures
	// are counted toward the trip threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every call until the probe interval
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe call; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Call outcomes reported to a breaker. Context cancellation is
// deliberately "aborted" — a caller giving up on its own deadline
// says nothing about the dependency's health, so it neither trips nor
// heals the breaker (but it does release a half-open probe so the
// next caller can try again).
type breakerOutcome int

const (
	breakerSuccess breakerOutcome = iota
	breakerFailure
	breakerAborted
)

// Breaker is a per-dependency circuit breaker with the classic
// closed → open → half-open cycle. Closed, it counts consecutive
// failures and trips at the threshold. Open, it rejects calls without
// touching the dependency until probeAfter has elapsed, then flips to
// half-open and admits a single probe; the probe's success closes the
// circuit, its failure re-opens it for another probe interval.
//
// The service layer pairs a breaker rejection with the stale-result
// cache: an open breaker degrades to previously computed predictions
// instead of queueing doomed work behind a broken dependency.
//
// The clock is injectable so state transitions are deterministic
// under test and in the virtual-time resilience harness.
type Breaker struct {
	name       string
	threshold  int
	probeAfter time.Duration
	now        func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight

	trips      atomic.Int64
	probes     atomic.Int64
	recoveries atomic.Int64
	rejected   atomic.Int64
}

// NewBreaker builds a closed breaker tripping after threshold
// consecutive failures (minimum 1) and probing after probeAfter
// (minimum 1ms).
func NewBreaker(name string, threshold int, probeAfter time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if probeAfter < time.Millisecond {
		probeAfter = time.Millisecond
	}
	return &Breaker{name: name, threshold: threshold, probeAfter: probeAfter, now: time.Now}
}

// Allow reports whether a call to the dependency may proceed. A true
// return obligates the caller to Observe the call's outcome; a false
// return means the circuit is open (or a probe is already in flight)
// and the caller should degrade or reject without touching the
// dependency.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.probeAfter {
			b.state = BreakerHalfOpen
			b.probing = true
			b.probes.Add(1)
			return true
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			b.probes.Add(1)
			return true
		}
	}
	b.rejected.Add(1)
	return false
}

// Observe reports an allowed call's outcome. Success closes a
// half-open circuit (and resets the failure streak); failure trips a
// closed circuit at the threshold and immediately re-opens a
// half-open one; aborted only releases the probe slot.
func (b *Breaker) Observe(o breakerOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch o {
	case breakerSuccess:
		if b.state == BreakerHalfOpen {
			b.recoveries.Add(1)
		}
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
	case breakerFailure:
		switch b.state {
		case BreakerClosed:
			b.fails++
			if b.fails >= b.threshold {
				b.tripLocked()
			}
		case BreakerHalfOpen:
			b.tripLocked()
		case BreakerOpen:
			// A straggling call from before the trip: the circuit is
			// already open, nothing more to record.
		}
	case breakerAborted:
		b.probing = false
	}
}

// tripLocked opens the circuit. Callers hold b.mu.
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.trips.Add(1)
}

// State reports the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Name identifies the guarded dependency.
func (b *Breaker) Name() string { return b.name }

// Trips counts closed/half-open → open transitions.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Probes counts half-open probe calls admitted.
func (b *Breaker) Probes() int64 { return b.probes.Load() }

// Recoveries counts half-open → closed transitions.
func (b *Breaker) Recoveries() int64 { return b.recoveries.Load() }

// Rejected counts calls short-circuited without touching the
// dependency.
func (b *Breaker) Rejected() int64 { return b.rejected.Load() }

// ProbeAfter is the open → half-open probe interval.
func (b *Breaker) ProbeAfter() time.Duration { return b.probeAfter }

// outcomeOf classifies a prediction error for the breaker: nil is
// success, the caller's own cancellation is aborted, everything else
// — dependency errors, recovered panics, injected chaos — is failure.
func outcomeOf(err error) breakerOutcome {
	switch {
	case err == nil:
		return breakerSuccess
	case isCtxErr(err):
		return breakerAborted
	default:
		return breakerFailure
	}
}
