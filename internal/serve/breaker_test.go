package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"maya/internal/prand"
)

// breakerClock is an injectable test clock.
type breakerClock struct {
	mu sync.Mutex
	t  time.Time
}

func newBreakerClock() *breakerClock {
	return &breakerClock{t: time.Unix(0, 0).UTC()}
}

func (c *breakerClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *breakerClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerTransitions(t *testing.T) {
	clk := newBreakerClock()
	b := NewBreaker("predict", 3, time.Second)
	b.now = clk.now

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Observe(breakerFailure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	// A success resets the streak.
	b.Allow()
	b.Observe(breakerSuccess)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Observe(breakerFailure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("success did not reset the failure streak: %v", got)
	}

	// The third consecutive failure trips it.
	b.Allow()
	b.Observe(breakerFailure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state at threshold = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open: rejects without touching the dependency until the probe
	// interval elapses.
	if b.Allow() {
		t.Fatal("open breaker allowed a call before the probe interval")
	}
	if got := b.Rejected(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	// Probe interval elapsed: exactly one probe is admitted.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after the interval")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second call admitted while a probe is in flight")
	}

	// Probe failure re-opens for another full interval.
	b.Observe(breakerFailure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clk.advance(time.Second / 2)
	if b.Allow() {
		t.Fatal("re-opened breaker probed after half the interval")
	}

	// Probe success closes the circuit and counts a recovery.
	clk.advance(time.Second / 2)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Observe(breakerSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if got := b.Recoveries(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if got := b.Probes(); got != 2 {
		t.Fatalf("probes = %d, want 2", got)
	}
}

// An aborted probe (the caller's own cancellation) must release the
// probe slot without closing or re-opening the circuit — otherwise
// one cancelled client wedges the breaker half-open forever.
func TestBreakerAbortedReleasesProbe(t *testing.T) {
	clk := newBreakerClock()
	b := NewBreaker("predict", 1, time.Second)
	b.now = clk.now

	b.Allow()
	b.Observe(breakerFailure) // trip
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Observe(breakerAborted)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after aborted probe = %v, want half-open", got)
	}
	// The slot is free again: the next caller probes immediately.
	if !b.Allow() {
		t.Fatal("probe slot not released by the aborted outcome")
	}
	b.Observe(breakerSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestOutcomeOf(t *testing.T) {
	cases := []struct {
		err  error
		want breakerOutcome
	}{
		{nil, breakerSuccess},
		{context.Canceled, breakerAborted},
		{context.DeadlineExceeded, breakerAborted},
		{errors.New("boom"), breakerFailure},
		{ErrChaosOutage, breakerFailure},
	}
	for _, c := range cases {
		if got := outcomeOf(c.err); got != c.want {
			t.Errorf("outcomeOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestBreakerHammer drives concurrent Allow/Observe pairs through
// every transition under the race detector. The assertions are
// invariants, not exact counts: the interleaving is nondeterministic,
// the breaker's bookkeeping must not be.
func TestBreakerHammer(t *testing.T) {
	clk := newBreakerClock()
	b := NewBreaker("predict", 3, time.Millisecond)
	b.now = clk.now

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := prand.New(uint64(g) + 1)
			for i := 0; i < iters; i++ {
				if i%64 == 0 {
					clk.advance(time.Millisecond)
				}
				if !b.Allow() {
					continue
				}
				switch rng.Intn(3) {
				case 0:
					b.Observe(breakerSuccess)
				case 1:
					b.Observe(breakerFailure)
				default:
					b.Observe(breakerAborted)
				}
			}
		}(g)
	}
	wg.Wait()

	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid final state %d", s)
	}
	if b.Trips() < b.Recoveries() {
		t.Errorf("recoveries (%d) exceed trips (%d)", b.Recoveries(), b.Trips())
	}
	// Drive it back to a known state to prove it is not wedged.
	for b.State() != BreakerClosed {
		clk.advance(time.Millisecond)
		if b.Allow() {
			b.Observe(breakerSuccess)
		}
	}
}
