package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"maya"
	"maya/internal/prand"
)

// backend is the service's dependency boundary: the two predictor
// operations the serving layer actually calls. In production it is
// the shared *maya.Predictor; under a chaos plan it is wrapped by a
// shim that injects faults at exactly this boundary — the
// emulate-the-node / model-the-boundary split applied to the service
// itself, so recovery behavior is measured without a real outage.
type backend interface {
	Predict(ctx context.Context, w maya.Workload, opts ...maya.PredictOption) (*maya.Report, error)
	Capture(ctx context.Context, w maya.Workload, opts ...maya.PredictOption) (*maya.Trace, error)
}

// Chaos targets and kinds.
const (
	ChaosTargetPredict = "predict"
	ChaosTargetCapture = "capture"

	ChaosLatency = "latency" // add latency_ms to the call
	ChaosError   = "error"   // fail the call with ErrChaosInjected
	ChaosOutage  = "outage"  // fail the call with ErrChaosOutage
	ChaosPanic   = "panic"   // panic inside the call
)

// Injected chaos failures, matchable with errors.Is.
var (
	// ErrChaosOutage marks a call failed by an injected dependency
	// outage window.
	ErrChaosOutage = errors.New("chaos: injected predictor outage")
	// ErrChaosInjected marks a call failed by an injected error burst.
	ErrChaosInjected = errors.New("chaos: injected predictor error")
)

// ChaosEvent is one fault window. The window is measured on the chaos
// clock — elapsed time since the server booted (or virtual time in
// the resilience harness) — so a serialized plan replays identically
// against any boot.
type ChaosEvent struct {
	// Kind selects the fault: latency, error, outage or panic.
	Kind string `json:"kind"`
	// Target selects the dependency: predict (default) or capture.
	Target string `json:"target,omitempty"`
	// FromMS/UntilMS bound the window on the chaos clock; UntilMS 0
	// means open-ended.
	FromMS  int64 `json:"from_ms,omitempty"`
	UntilMS int64 `json:"until_ms,omitempty"`
	// LatencyMS is the added latency for kind "latency".
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// Fraction applies the fault to this fraction of calls inside the
	// window, selected deterministically from the plan seed and the
	// call index; 0 (or >= 1) hits every call.
	Fraction float64 `json:"fraction,omitempty"`
}

// contains reports whether the window covers elapsed time t.
func (e *ChaosEvent) contains(t time.Duration) bool {
	ms := t.Milliseconds()
	if ms < e.FromMS {
		return false
	}
	return e.UntilMS == 0 || ms < e.UntilMS
}

// ChaosPlan is a complete, serializable chaos scenario: a seed and an
// ordered list of fault windows. It is plain data, safe for
// concurrent use, and every decision derives from (seed, event index,
// call index, window) — never from unseeded randomness — so the same
// plan replayed against the same call sequence injects the same
// faults.
type ChaosPlan struct {
	Seed   uint64       `json:"seed,omitempty"`
	Events []ChaosEvent `json:"events"`
}

// Validate checks the plan's internal consistency.
func (p *ChaosPlan) Validate() error {
	for i := range p.Events {
		e := &p.Events[i]
		switch e.Kind {
		case ChaosLatency, ChaosError, ChaosOutage, ChaosPanic:
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q (have latency, error, outage, panic)", i, e.Kind)
		}
		switch e.Target {
		case "", ChaosTargetPredict, ChaosTargetCapture:
		default:
			return fmt.Errorf("chaos: event %d: unknown target %q (have predict, capture)", i, e.Target)
		}
		if e.FromMS < 0 || e.UntilMS < 0 {
			return fmt.Errorf("chaos: event %d: negative window bound", i)
		}
		if e.UntilMS != 0 && e.UntilMS <= e.FromMS {
			return fmt.Errorf("chaos: event %d: until_ms %d <= from_ms %d", i, e.UntilMS, e.FromMS)
		}
		if e.Kind == ChaosLatency && e.LatencyMS <= 0 {
			return fmt.Errorf("chaos: event %d: latency event needs latency_ms > 0", i)
		}
		if e.Fraction < 0 || e.Fraction > 1 {
			return fmt.Errorf("chaos: event %d: fraction %v outside [0, 1]", i, e.Fraction)
		}
	}
	return nil
}

// ReadChaosPlan parses and validates a JSON chaos plan (the -chaos
// flag's file format).
func ReadChaosPlan(r io.Reader) (*ChaosPlan, error) {
	var p ChaosPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// effect resolves which fault (if any) applies to call number `call`
// against `target` at elapsed time t: the first matching event in
// plan order wins. The fraction gate hashes (seed, event index, call
// index) through SplitMix64, so the affected subset is a pure
// function of the plan and the call sequence.
func (p *ChaosPlan) effect(target string, t time.Duration, call uint64) *ChaosEvent {
	for i := range p.Events {
		e := &p.Events[i]
		et := e.Target
		if et == "" {
			et = ChaosTargetPredict
		}
		if et != target || !e.contains(t) {
			continue
		}
		if e.Fraction > 0 && e.Fraction < 1 {
			rng := prand.New(p.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15) ^ (call * 0xBF58476D1CE4E5B9))
			if rng.Float64() >= e.Fraction {
				continue
			}
		}
		return e
	}
	return nil
}

// chaosBackend wraps the real backend with plan-driven fault
// injection: a test-only shim for the cmd/maya-serve -chaos flag and
// the in-process chaos tests. Call indices are per-target atomic
// counters; under single-threaded drivers (the resilience harness,
// sequential tests) the injected sequence is bit-identical across
// runs, and under concurrent load the per-window aggregate behavior
// is still plan-determined.
type chaosBackend struct {
	inner backend
	plan  *ChaosPlan

	// elapsed is the chaos clock (time since boot); overridable by
	// tests to step through windows without sleeping.
	elapsed func() time.Duration

	predictCalls atomic.Uint64
	captureCalls atomic.Uint64
	injected     atomic.Int64 // faults actually applied
}

func newChaosBackend(inner backend, plan *ChaosPlan) *chaosBackend {
	start := time.Now()
	return &chaosBackend{
		inner:   inner,
		plan:    plan,
		elapsed: func() time.Duration { return time.Since(start) },
	}
}

// apply resolves and executes the fault for one call; error kinds
// return their injected error, latency sleeps (honoring ctx), panic
// panics — exercising the service's recovery layers for real.
func (c *chaosBackend) apply(ctx context.Context, target string, call uint64) error {
	e := c.plan.effect(target, c.elapsed(), call)
	if e == nil {
		return nil
	}
	c.injected.Add(1)
	switch e.Kind {
	case ChaosOutage:
		return ErrChaosOutage
	case ChaosError:
		return ErrChaosInjected
	case ChaosPanic:
		panic("chaos: injected predictor panic")
	case ChaosLatency:
		t := time.NewTimer(time.Duration(e.LatencyMS) * time.Millisecond)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (c *chaosBackend) Predict(ctx context.Context, w maya.Workload, opts ...maya.PredictOption) (*maya.Report, error) {
	if err := c.apply(ctx, ChaosTargetPredict, c.predictCalls.Add(1)); err != nil {
		return nil, err
	}
	return c.inner.Predict(ctx, w, opts...)
}

func (c *chaosBackend) Capture(ctx context.Context, w maya.Workload, opts ...maya.PredictOption) (*maya.Trace, error) {
	if err := c.apply(ctx, ChaosTargetCapture, c.captureCalls.Add(1)); err != nil {
		return nil, err
	}
	return c.inner.Capture(ctx, w, opts...)
}
