package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestChaosPlanValidate(t *testing.T) {
	bad := []ChaosPlan{
		{Events: []ChaosEvent{{Kind: "meteor"}}},
		{Events: []ChaosEvent{{Kind: ChaosError, Target: "billing"}}},
		{Events: []ChaosEvent{{Kind: ChaosError, FromMS: -1}}},
		{Events: []ChaosEvent{{Kind: ChaosError, FromMS: 100, UntilMS: 50}}},
		{Events: []ChaosEvent{{Kind: ChaosLatency}}}, // latency needs latency_ms
		{Events: []ChaosEvent{{Kind: ChaosError, Fraction: 1.5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
	}
	good := ChaosPlan{Seed: 42, Events: []ChaosEvent{
		{Kind: ChaosOutage, Target: ChaosTargetPredict, FromMS: 1000, UntilMS: 3000},
		{Kind: ChaosLatency, LatencyMS: 50, Fraction: 0.5},
		{Kind: ChaosPanic, Target: ChaosTargetCapture, FromMS: 500},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestReadChaosPlan(t *testing.T) {
	p, err := ReadChaosPlan(strings.NewReader(
		`{"seed": 7, "events": [{"kind": "outage", "from_ms": 100, "until_ms": 200}]}`))
	if err != nil {
		t.Fatalf("valid plan: %v", err)
	}
	if p.Seed != 7 || len(p.Events) != 1 || p.Events[0].Kind != ChaosOutage {
		t.Fatalf("parsed plan: %+v", p)
	}
	// Unknown fields are a typo'd plan, not a silently ignored one.
	if _, err := ReadChaosPlan(strings.NewReader(`{"seed": 7, "evnts": []}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadChaosPlan(strings.NewReader(`{"events": [{"kind": "meteor"}]}`)); err == nil {
		t.Error("invalid plan accepted")
	}
}

// The fraction gate must be a pure function of (seed, event, call):
// the same plan hits the same calls on every replay, and a different
// seed selects a different subset.
func TestChaosEffectDeterminism(t *testing.T) {
	mkPlan := func(seed uint64) *ChaosPlan {
		return &ChaosPlan{Seed: seed, Events: []ChaosEvent{
			{Kind: ChaosError, FromMS: 0, UntilMS: 0, Fraction: 0.3},
		}}
	}
	hits := func(p *ChaosPlan) []bool {
		out := make([]bool, 200)
		for call := uint64(1); call <= 200; call++ {
			out[call-1] = p.effect(ChaosTargetPredict, time.Second, call) != nil
		}
		return out
	}
	a, b := hits(mkPlan(1)), hits(mkPlan(1))
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("fraction 0.3 hit %d/%d calls", n, len(a))
	}
	c := hits(mkPlan(2))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds selected the identical subset")
	}

	// Windows and targets gate the effect.
	p := &ChaosPlan{Events: []ChaosEvent{
		{Kind: ChaosOutage, FromMS: 1000, UntilMS: 2000},
	}}
	if p.effect(ChaosTargetPredict, 500*time.Millisecond, 1) != nil {
		t.Error("effect fired before its window")
	}
	if p.effect(ChaosTargetPredict, 1500*time.Millisecond, 1) == nil {
		t.Error("effect missing inside its window")
	}
	if p.effect(ChaosTargetPredict, 2500*time.Millisecond, 1) != nil {
		t.Error("effect fired after its window")
	}
	if p.effect(ChaosTargetCapture, 1500*time.Millisecond, 1) != nil {
		t.Error("predict event hit the capture target")
	}
}

// TestChaosDegradeAndRecover walks the full incident arc over HTTP:
// healthy traffic populates the stale cache, an injected outage trips
// the predictor breaker, requests degrade to stale 200s instead of
// erroring, and once the window closes a probe heals the circuit and
// fresh predictions resume. Both clocks — the chaos window clock and
// the breaker's probe clock — are injected, so the test steps through
// the incident deterministically instead of sleeping through it.
func TestChaosDegradeAndRecover(t *testing.T) {
	plan := &ChaosPlan{Events: []ChaosEvent{
		{Kind: ChaosOutage, Target: ChaosTargetPredict, FromMS: 3_600_000, UntilMS: 7_200_000},
	}}
	s, ts := newTestServer(t, func(c *Config) {
		c.Chaos = plan
		c.BreakerThreshold = 2
	})
	var elapsed time.Duration // the virtual chaos clock
	s.chaos.elapsed = func() time.Duration { return elapsed }
	clk := newBreakerClock()
	s.pbreaker.now = clk.now

	// Phase 1 — healthy: a fresh prediction lands in the stale cache.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy predict: %d (%s)", resp.StatusCode, raw)
	}
	if got := s.degrade.len(); got != 1 {
		t.Fatalf("degrade cache entries = %d, want 1", got)
	}

	// Phase 2 — inside the outage window: failures trip the breaker.
	elapsed = 90 * time.Minute
	for i := 0; i < 2; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("outage predict %d: %d (%s)", i, resp.StatusCode, raw)
		}
	}
	if got := s.pbreaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state after outage failures = %v, want open", got)
	}

	// Breaker open (probe clock frozen, so no probe sneaks through):
	// the cached identity degrades to a stale 200; an uncached identity
	// gets a clean 503.
	resp, raw = postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	var res PredictResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !res.Degraded || res.Report == nil {
		t.Fatalf("degraded predict: status %d, degraded %v (%s)", resp.StatusCode, res.Degraded, raw)
	}
	if res.StaleMS < 0 {
		t.Fatalf("degraded result with negative staleness: %+v", res)
	}
	other := smallSpec()
	other.MicroBatches = 4 // never computed: no stale cover
	oresp, oraw := postJSON(t, ts.URL+"/v1/predict", other, nil)
	if oresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached predict under open breaker: %d (%s)", oresp.StatusCode, oraw)
	}
	if got := s.metrics.Degraded.Load(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// Phase 3 — window closed, probe interval elapsed: the next
	// request is the probe, it succeeds, the circuit closes, fresh
	// predictions resume.
	elapsed = 3 * time.Hour
	clk.advance(2 * time.Second)
	resp, raw = postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	var fresh PredictResult
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || fresh.Degraded {
		t.Fatalf("post-recovery predict: status %d, degraded %v (%s)", resp.StatusCode, fresh.Degraded, raw)
	}
	if got := s.pbreaker.State(); got != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", got)
	}
	if got := s.pbreaker.Recoveries(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

// An injected panic must surface as a recovered 500, not a dead
// process — chaos exercises the service's real recovery layers.
func TestChaosPanicRecovered(t *testing.T) {
	plan := &ChaosPlan{Events: []ChaosEvent{
		{Kind: ChaosPanic, Target: ChaosTargetPredict},
	}}
	s, ts := newTestServer(t, func(c *Config) { c.Chaos = plan })
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", resp.StatusCode, raw)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}
	if got := s.chaos.injected.Load(); got != 1 {
		t.Errorf("injected faults = %d, want 1", got)
	}
}
