package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// coalescer merges concurrent identical predictions into one
// execution. It is single-flight, not a cache: an entry lives exactly
// as long as its computation, so the memory cost is bounded by
// concurrency and results stay fresh (the durable reuse layers — the
// capture cache and capture-attached estimate plans — sit below).
//
// The capture cache already guarantees one *capture* per key; the
// coalescer extends that to the whole prediction, so N identical
// in-flight requests also share one annotate + simulate.
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*flight

	// leads counts computations executed; joins counts callers that
	// attached to an in-flight computation instead.
	leads atomic.Int64
	joins atomic.Int64
}

// flight is one in-flight computation and its eventual outcome.
type flight struct {
	ready chan struct{} // closed when done
	out   *predictOutcome
	err   error
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: make(map[string]*flight)}
}

// do returns fn's outcome for key, executing it only if no identical
// call is in flight; otherwise it waits for the leader, honoring its
// own ctx. shared reports whether this caller joined another's
// execution. Following the repo's single-flight idiom, a follower
// whose leader was cancelled retries while its own ctx is live (and
// likely becomes the leader).
func (c *coalescer) do(ctx context.Context, key string, fn func() (*predictOutcome, error)) (out *predictOutcome, shared bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}

		c.mu.Lock()
		if f, ok := c.inflight[key]; ok {
			c.joins.Add(1)
			c.mu.Unlock()
			select {
			case <-f.ready:
				if f.err != nil && isCtxErr(f.err) && ctx.Err() == nil {
					continue
				}
				return f.out, true, f.err
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
		}
		f := &flight{ready: make(chan struct{})}
		c.inflight[key] = f
		c.leads.Add(1)
		c.mu.Unlock()

		f.out, f.err = fn()

		c.mu.Lock()
		if c.inflight[key] == f {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		close(f.ready)
		return f.out, false, f.err
	}
}

// waiters reports how many callers are currently attached (leader
// included) — observability for tests and metrics.
func (c *coalescer) inflightKeys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
