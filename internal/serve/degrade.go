package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"maya"
)

// degradeCache is the graceful-degradation layer: a bounded LRU of
// the last successfully computed report per prediction identity
// (predictKey). When the circuit breaker is open or the shedder is
// rejecting, a request whose identity has a cached result is answered
// with that stale report marked `"degraded": true` instead of an
// error — the contract being that a slightly stale prediction of a
// deterministic simulation beats a 503 for interactive what-if
// traffic. It is only consulted on the degraded path; healthy
// requests always recompute (the coalescer and capture cache below
// keep that cheap), so staleness is bounded by the length of the
// incident, not the cache's lifetime.
type degradeCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	now     func() time.Time

	hits   atomic.Int64
	misses atomic.Int64
	serves atomic.Int64
}

type staleEntry struct {
	key    string
	report *maya.Report
	at     time.Time // when the fresh result was computed
}

// newDegradeCache returns an empty cache bounded to max entries
// (minimum 1).
func newDegradeCache(max int) *degradeCache {
	if max < 1 {
		max = 1
	}
	return &degradeCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		now:     time.Now,
	}
}

// put records a fresh successful report for key. Reports are
// immutable once returned by the predictor, so the cache shares the
// pointer.
func (c *degradeCache) put(key string, r *maya.Report) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &staleEntry{key: key, report: r, at: c.now()}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&staleEntry{key: key, report: r, at: c.now()})
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*staleEntry).key)
	}
}

// get returns the stale report for key and its age, if one is cached.
func (c *degradeCache) get(key string) (*maya.Report, time.Duration, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*staleEntry)
	age := c.now().Sub(e.at)
	c.mu.Unlock()
	c.hits.Add(1)
	return e.report, age, true
}

// len reports how many identities have a cached result.
func (c *degradeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
