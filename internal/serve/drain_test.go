package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maya"
)

// TestDrainUnderLoadWithBreakerOpen is the graceful-shutdown
// acceptance test: with the predictor breaker open and a storm of
// clients being answered from the stale cache, Drain + Shutdown must
// complete cleanly — every in-flight degraded response finishes,
// nothing wedges, and requests after the flip get the draining 503.
func TestDrainUnderLoadWithBreakerOpen(t *testing.T) {
	cfg := Config{Cluster: maya.DGXV100(1), Profile: maya.ProfileLLM, Workers: 4}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A real net listener + http.Server, because httptest's Close does
	// not exercise the Shutdown drain semantics under test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	// Populate the stale cache with one healthy prediction, then trip
	// the predictor breaker (frozen clock: no probe reopens it).
	resp, raw := postJSON(t, url+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup predict: %d (%s)", resp.StatusCode, raw)
	}
	clk := newBreakerClock()
	s.pbreaker.now = clk.now
	for i := 0; i < s.cfg.BreakerThreshold; i++ {
		if !s.pbreaker.Allow() {
			t.Fatalf("breaker rejected before the threshold (i=%d)", i)
		}
		s.pbreaker.Observe(breakerFailure)
	}
	if got := s.pbreaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}

	// The storm: concurrent clients looping degraded requests. Each
	// exits on the first draining 503 (or records anything unexpected)
	// — so every response, including those in flight when Drain flips,
	// ran to completion.
	specBody, err := json.Marshal(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var (
		wg         sync.WaitGroup
		degraded   atomic.Int64
		drained    atomic.Int64
		unexpected atomic.Int64
		firstOdd   atomic.Value
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(specBody))
				if err != nil {
					unexpected.Add(1)
					firstOdd.CompareAndSwap(nil, fmt.Sprintf("transport error: %v", err))
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var res PredictResult
				json.Unmarshal(raw, &res)
				switch {
				case resp.StatusCode == http.StatusOK && res.Degraded && res.Report != nil:
					degraded.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable && s.Draining():
					drained.Add(1)
					return
				default:
					unexpected.Add(1)
					firstOdd.CompareAndSwap(nil, fmt.Sprintf("status %d body %s", resp.StatusCode, raw))
					return
				}
			}
		}()
	}

	// Let the storm serve degraded traffic before pulling the plug.
	deadline := time.Now().Add(10 * time.Second)
	for degraded.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("storm served only %d degraded responses", degraded.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM path: Drain (stop admitting, snapshot state) with the
	// storm still running. Every client winds down through a complete
	// response — degraded 200s in flight finish, then the 503.
	s.Drain()
	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d unexpected responses during the storm; first: %v", n, firstOdd.Load())
	}
	if got := drained.Load(); got != clients {
		t.Errorf("clients ended on a draining 503 = %d, want %d", got, clients)
	}
	if degraded.Load() < clients {
		t.Errorf("degraded responses = %d, want >= %d", degraded.Load(), clients)
	}

	// Shutdown returns nil: no wedged handlers, clean exit.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}
	if s.metrics.InFlight.Load() != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", s.metrics.InFlight.Load())
	}
}
