package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// numLatencyBuckets counts the finite histogram bounds; bucket
// numLatencyBuckets (one past) is the implicit +Inf catch-all.
const numLatencyBuckets = 16

// latencyBucketsMS are the upper bounds (milliseconds) of the serving
// latency histogram, log-spaced from sub-millisecond cache hits to
// the multi-second captures of large topologies.
var latencyBucketsMS = [numLatencyBuckets]float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000,
}

// histogram is a fixed-bucket latency histogram with atomic counters:
// recording is lock-free and wait-free, and snapshots for /metrics or
// quantile estimates never block request threads.
type histogram struct {
	counts [numLatencyBuckets + 1]atomic.Int64
	sumUS  atomic.Int64 // sum in microseconds: integer, so atomically addable
	total  atomic.Int64
}

// observe records one latency in milliseconds.
func (h *histogram) observe(ms float64) {
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumUS.Add(int64(ms * 1000))
	h.total.Add(1)
}

// quantile estimates the q-th latency quantile (0 < q < 1) in
// milliseconds by linear interpolation inside the target bucket.
// Samples beyond the last finite bound report that bound. Zero
// samples report 0.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = latencyBucketsMS[i-1]
			}
			if i >= len(latencyBucketsMS) {
				return latencyBucketsMS[len(latencyBucketsMS)-1]
			}
			hi := latencyBucketsMS[i]
			frac := (target - cum) / n
			return lo + (hi-lo)*math.Min(1, math.Max(0, frac))
		}
		cum += n
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// mean returns the average recorded latency in milliseconds.
func (h *histogram) mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / 1000 / float64(n)
}

// writeProm renders the histogram in Prometheus text exposition
// format under the given metric name (unit: seconds, per convention).
func (h *histogram) writeProm(w io.Writer, name string) {
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(latencyBucketsMS) {
			le = fmt.Sprintf("%g", latencyBucketsMS[i]/1000)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumUS.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}

// Metrics is the serving-layer instrumentation: request outcomes,
// coalescing effectiveness, admission pressure and latency
// distributions. Every field is an atomic or an atomic-bucket
// histogram, so the /metrics endpoint can poll continuously without
// contending with the request path.
type Metrics struct {
	// Request outcomes, by disposition.
	Requests  atomic.Int64 // everything that reached the service layer
	OK        atomic.Int64 // 200s
	BadInput  atomic.Int64 // 400s
	Throttled atomic.Int64 // 429s (tenant token bucket or overload shed)
	Rejected  atomic.Int64 // 503s (queue full, breaker open or draining)
	Deadline  atomic.Int64 // 504s (request deadline exceeded)
	Failed    atomic.Int64 // 500s (pipeline errors)

	// Resilience outcomes. Shed counts queue-delay/deadline-aware
	// 429s from the Shedder (a subset of the 429s Throttled counts);
	// Degraded counts stale results served with `"degraded": true`
	// while shedding or with a breaker open.
	Shed     atomic.Int64
	Degraded atomic.Int64

	// Predictions counts prediction items served (a batch of k counts
	// k); Executed counts predictions actually run by a coalescing
	// leader; Coalesced counts followers that shared a leader's
	// result. Executed + Coalesced == Predictions for served items.
	Predictions atomic.Int64
	Executed    atomic.Int64
	Coalesced   atomic.Int64

	// Captures counts /v1/capture runs; TraceUploads counts accepted
	// /v1/traces uploads; TraceServes counts trace downloads.
	Captures     atomic.Int64
	TraceUploads atomic.Int64
	TraceServes  atomic.Int64

	// Panics counts prediction executions recovered from a panic and
	// answered as 500s: the serving layer turns a crashing predictor
	// into an error instead of a dead process.
	Panics atomic.Int64

	// InFlight gauges requests admitted and not yet answered.
	InFlight atomic.Int64

	// Latency is end-to-end request latency (admission to response
	// body); QueueWait is time spent waiting for a prediction worker;
	// QueueWaitAtReject records the estimated queue wait at each shed
	// rejection — the delay the shedder refused to impose.
	Latency           histogram
	QueueWait         histogram
	QueueWaitAtReject histogram
}
