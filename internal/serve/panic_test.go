package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPredictPanicRecovery injects a panicking predictor through the
// test gate: the request answers 500 instead of killing the process,
// maya_panics_total counts it, and — because the recovery happens
// inside the coalescing leader's closure — the flight completes, so
// a retry of the same spec starts fresh and succeeds.
func TestPredictPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var calls atomic.Int64
	s.testGate = func() {
		if calls.Add(1) == 1 {
			panic("boom")
		}
	}

	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "panicked") {
		t.Fatalf("body does not report the panic: %s", raw)
	}
	if got := s.Metrics().Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}

	// The server is alive and the panicked flight is not wedged: the
	// identical spec succeeds on retry.
	resp, raw = postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mbody), "maya_panics_total 1") {
		t.Fatalf("/metrics missing maya_panics_total 1:\n%s", mbody)
	}
}

// TestBatchPanicIsolated panics every prediction of a batch: batch
// items execute on their own goroutines, where an unrecovered panic
// is fatal to the whole process, so both must come back as per-item
// 500 results with the server still standing.
func TestBatchPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.testGate = func() { panic("boom") }

	a, b := smallSpec(), smallSpec()
	b.MicroBatches = 4 // distinct key: its own coalescing flight and goroutine
	resp, raw := postJSON(t, ts.URL+"/v1/predict", batchEnvelope{Requests: []PredictSpec{a, b}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	var br batchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	for i, res := range br.Results {
		if res.Report != nil || !strings.Contains(res.Error, "panicked") {
			t.Errorf("item %d not isolated: %+v", i, res)
		}
	}
	if got := s.Metrics().Panics.Load(); got != 2 {
		t.Errorf("Panics = %d, want 2", got)
	}

	s.testGate = nil
	resp, raw = postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
}
