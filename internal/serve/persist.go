package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"maya"
)

// Snapshot errors, matchable with errors.Is.
var (
	// ErrSnapshotFormat marks a state file that is not a trace-store
	// snapshot at all (bad magic, or framing too corrupt to continue).
	ErrSnapshotFormat = errors.New("serve: not a maya trace-store snapshot")
	// ErrSnapshotEntry marks one corrupt entry inside an otherwise
	// readable snapshot; recovery skips the entry and keeps going.
	ErrSnapshotEntry = errors.New("serve: corrupt trace-store snapshot entry")
)

// snapMagic heads every snapshot file; the trailing byte is the
// snapshot format version.
var snapMagic = []byte("MAYASNAP\x01")

// Framing sanity bounds: lengths beyond these mean the framing itself
// is corrupt (e.g. a bit flip inside a length field), at which point
// recovery stops rather than reading garbage.
const (
	maxSnapMetaLen  = 1 << 20   // 1 MiB of JSON meta
	maxSnapTraceLen = 256 << 20 // 256 MiB per serialized trace
)

// SnapshotStats reports what a restore found. Skipped entries carry a
// typed EntryErr (errors.Is ErrSnapshotEntry) describing the first
// corruption seen; the store still serves every entry that validated.
type SnapshotStats struct {
	Loaded   int   `json:"loaded"`
	Skipped  int   `json:"skipped"`
	EntryErr error `json:"-"`
}

// snapshot writes the store's entries — oldest first, so replaying
// put() on restore reproduces the LRU recency order — as
// length-framed (meta JSON, raw trace) pairs. The raw bytes are the
// trace's own versioned, checksummed envelope (WriteTo), so every
// entry is independently verifiable on the way back in.
func (s *traceStore) snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := w.Write(snapMagic); err != nil {
		return err
	}
	var lenBuf [4]byte
	writeFrame := func(b []byte) error {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := w.Write(b)
		return err
	}
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		st := el.Value.(*storedTrace)
		meta, err := json.Marshal(st.meta)
		if err != nil {
			return err
		}
		if err := writeFrame(meta); err != nil {
			return err
		}
		if err := writeFrame(st.raw); err != nil {
			return err
		}
	}
	return nil
}

// persist atomically replaces the snapshot at path: write to a temp
// file in the same directory, fsync, rename. A crash at any point —
// including SIGKILL mid-write — leaves either the old snapshot or the
// new one, never a torn file.
func (s *traceStore) persist(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".maya-snap-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	if err := s.snapshot(bw); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: installing snapshot: %w", err)
	}
	return nil
}

// restoreTraceStore rebuilds a store from the snapshot at path. A
// missing file is an empty store. Every entry re-validates through
// maya.ReadTrace (magic, version, checksum) and a meta cross-check;
// corrupt entries are skipped with a typed error in the stats, and
// recovery continues with the next frame. Only unreadable framing —
// bad magic, an insane length — aborts the walk, returning whatever
// loaded before it alongside an ErrSnapshotFormat-wrapped error.
func restoreTraceStore(path string, maxEntries int) (*traceStore, SnapshotStats, error) {
	store := newTraceStore(maxEntries)
	var stats SnapshotStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return store, stats, nil
	}
	if err != nil {
		return store, stats, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapMagic) {
		return store, stats, fmt.Errorf("%w: bad magic in %s", ErrSnapshotFormat, path)
	}
	skip := func(err error) {
		stats.Skipped++
		if stats.EntryErr == nil {
			stats.EntryErr = fmt.Errorf("%w: %v", ErrSnapshotEntry, err)
		}
	}
	readFrame := func(bound int) ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if int(n) > bound {
			return nil, fmt.Errorf("%w: frame length %d exceeds bound %d", ErrSnapshotFormat, n, bound)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	for {
		metaRaw, err := readFrame(maxSnapMetaLen)
		if errors.Is(err, io.EOF) {
			return store, stats, nil // clean end of snapshot
		}
		if err != nil {
			// Truncation or corrupt framing: what loaded so far still
			// serves; the tail is lost and reported as such.
			stats.Skipped++
			if !errors.Is(err, ErrSnapshotFormat) {
				err = fmt.Errorf("%w: truncated snapshot: %v", ErrSnapshotFormat, err)
			}
			return store, stats, err
		}
		raw, err := readFrame(maxSnapTraceLen)
		if err != nil {
			stats.Skipped++
			if !errors.Is(err, ErrSnapshotFormat) {
				err = fmt.Errorf("%w: truncated snapshot: %v", ErrSnapshotFormat, err)
			}
			return store, stats, err
		}
		var meta TraceMeta
		if err := json.Unmarshal(metaRaw, &meta); err != nil {
			skip(fmt.Errorf("meta: %v", err))
			continue
		}
		if meta.Fingerprint == "" {
			skip(errors.New("meta missing fingerprint"))
			continue
		}
		// The payload carries its own checksummed envelope; a flipped
		// bit anywhere inside fails here and only costs this entry.
		tr, err := maya.ReadTrace(bytes.NewReader(raw))
		if err != nil {
			skip(fmt.Errorf("trace %s: %v", meta.Fingerprint, err))
			continue
		}
		if tr.Workload() != meta.Workload || tr.TotalWorkers() != meta.TotalWorkers {
			skip(fmt.Errorf("trace %s: meta does not match payload", meta.Fingerprint))
			continue
		}
		store.put(raw, meta)
		stats.Loaded++
	}
}
