package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"maya"
)

// testTraceBlob captures one real trace (oracle annotation, no
// training) and returns its serialized envelope plus store meta, the
// same shape handleCapture archives.
func testTraceBlob(t *testing.T, microBatches int) ([]byte, TraceMeta) {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.MicroBatches = microBatches
	wl, _, err := spec.build(pred.Cluster())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pred.Capture(t.Context(), wl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), TraceMeta{
		Fingerprint:   fingerprintOf(buf.Bytes()),
		Workload:      tr.Workload(),
		Cluster:       tr.Cluster(),
		TotalWorkers:  tr.TotalWorkers(),
		UniqueWorkers: tr.UniqueWorkers(),
		PeakMemBytes:  tr.PeakMemBytes(),
		OOM:           tr.OOM(),
		SizeBytes:     buf.Len(),
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	blobA, metaA := testTraceBlob(t, 2)
	blobB, metaB := testTraceBlob(t, 4)

	store := newTraceStore(8)
	store.put(blobA, metaA)
	store.put(blobB, metaB)
	// Touch A so the LRU order is B (oldest), A (newest).
	if _, ok := store.get(metaA.Fingerprint); !ok {
		t.Fatal("lost entry A")
	}

	path := filepath.Join(t.TempDir(), "traces.snap")
	if err := store.persist(path); err != nil {
		t.Fatal(err)
	}

	restored, stats, err := restoreTraceStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 2 || stats.Skipped != 0 || stats.EntryErr != nil {
		t.Fatalf("stats = %+v", stats)
	}
	for _, m := range []TraceMeta{metaA, metaB} {
		st, ok := restored.get(m.Fingerprint)
		if !ok {
			t.Fatalf("restored store missing %s", m.Fingerprint)
		}
		if st.meta != m {
			t.Errorf("meta changed across the snapshot: %+v vs %+v", st.meta, m)
		}
		want := blobA
		if m.Fingerprint == metaB.Fingerprint {
			want = blobB
		}
		if !bytes.Equal(st.raw, want) {
			t.Errorf("raw bytes changed across the snapshot for %s", m.Fingerprint)
		}
	}

	// Recency order survived: capacity pressure evicts B (the LRU
	// tail), not the recently touched A.
	restored2, _, err := restoreTraceStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	blobC, metaC := testTraceBlob(t, 8)
	restored2.max = 2
	restored2.put(blobC, metaC)
	if _, ok := restored2.get(metaB.Fingerprint); ok {
		t.Error("LRU tail (B) survived capacity pressure; recency order lost in the snapshot")
	}
	if _, ok := restored2.get(metaA.Fingerprint); !ok {
		t.Error("recently used entry (A) evicted; recency order lost in the snapshot")
	}

	// A missing snapshot is an empty store, not an error.
	empty, stats, err := restoreTraceStore(filepath.Join(t.TempDir(), "nope.snap"), 8)
	if err != nil || stats.Loaded != 0 || empty.len() != 0 {
		t.Fatalf("missing snapshot: store %d entries, stats %+v, err %v", empty.len(), stats, err)
	}
}

// TestSnapshotCorruptEntry mirrors TestReadTraceCorruption at the
// store level: a flipped bit inside one entry's payload must skip
// exactly that entry with a typed error, and every other entry must
// recover.
func TestSnapshotCorruptEntry(t *testing.T) {
	blobA, metaA := testTraceBlob(t, 2)
	blobB, metaB := testTraceBlob(t, 4)
	blobC, metaC := testTraceBlob(t, 8)

	store := newTraceStore(8)
	store.put(blobA, metaA)
	store.put(blobB, metaB)
	store.put(blobC, metaC)
	path := filepath.Join(t.TempDir(), "traces.snap")
	if err := store.persist(path); err != nil {
		t.Fatal(err)
	}

	// Locate the middle entry's payload by walking the framing, then
	// flip one bit in it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(snapMagic)
	frame := func() (start, end int) {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		start, end = off, off+n
		off = end
		return
	}
	frame()              // entry 0 meta
	frame()              // entry 0 raw
	frame()              // entry 1 meta
	s, e := frame()      // entry 1 raw (= blobB, snapshot is oldest-first)
	raw[(s+e)/2] ^= 0x01 // one flipped bit mid-payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	restored, stats, err := restoreTraceStore(path, 8)
	if err != nil {
		t.Fatalf("per-entry corruption must not fail the restore: %v", err)
	}
	if stats.Loaded != 2 || stats.Skipped != 1 {
		t.Fatalf("stats = %+v, want 2 loaded / 1 skipped", stats)
	}
	if !errors.Is(stats.EntryErr, ErrSnapshotEntry) {
		t.Fatalf("EntryErr = %v, want ErrSnapshotEntry", stats.EntryErr)
	}
	if _, ok := restored.get(metaB.Fingerprint); ok {
		t.Error("corrupt entry served")
	}
	for _, m := range []TraceMeta{metaA, metaC} {
		st, ok := restored.get(m.Fingerprint)
		if !ok {
			t.Fatalf("healthy entry %s lost to a neighbor's corruption", m.Fingerprint)
		}
		if _, err := maya.ReadTrace(bytes.NewReader(st.raw)); err != nil {
			t.Errorf("recovered entry %s does not parse: %v", m.Fingerprint, err)
		}
	}
}

func TestSnapshotTruncatedAndBadMagic(t *testing.T) {
	blobA, metaA := testTraceBlob(t, 2)
	blobB, metaB := testTraceBlob(t, 4)
	store := newTraceStore(8)
	store.put(blobA, metaA)
	store.put(blobB, metaB)
	path := filepath.Join(t.TempDir(), "traces.snap")
	if err := store.persist(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated mid-second-entry: the first entry still recovers, the
	// tail is reported as a format error.
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	restored, stats, err := restoreTraceStore(path, 8)
	if !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("truncated restore err = %v, want ErrSnapshotFormat", err)
	}
	if stats.Loaded != 1 || restored.len() != 1 {
		t.Fatalf("truncated restore: %d loaded (stats %+v), want 1", restored.len(), stats)
	}

	// Not a snapshot at all.
	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := restoreTraceStore(path, 8); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("bad magic err = %v, want ErrSnapshotFormat", err)
	}
}

// TestTraceStoreEvictionAccounting pins the store bound: evictions at
// capacity are counted and observed, never silent.
func TestTraceStoreEvictionAccounting(t *testing.T) {
	blobA, metaA := testTraceBlob(t, 2)
	blobB, metaB := testTraceBlob(t, 4)
	blobC, metaC := testTraceBlob(t, 8)

	store := newTraceStore(2)
	var evicted []string
	store.onEvict = func(m TraceMeta) { evicted = append(evicted, m.Fingerprint) }
	store.put(blobA, metaA)
	store.put(blobB, metaB)
	if got := store.Evictions(); got != 0 {
		t.Fatalf("evictions below capacity = %d, want 0", got)
	}
	store.put(blobC, metaC)
	if store.len() != 2 {
		t.Fatalf("store size = %d, want the bound 2", store.len())
	}
	if got := store.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if len(evicted) != 1 || evicted[0] != metaA.Fingerprint {
		t.Fatalf("onEvict saw %v, want the LRU tail %s", evicted, metaA.Fingerprint)
	}
	if _, ok := store.get(metaA.Fingerprint); ok {
		t.Error("evicted entry still served")
	}
}

// TestServerStateRecovery is the crash-safety acceptance test over
// the real endpoints: a server killed without Drain (the snapshot
// written eagerly at put time stands in for the SIGKILL survivor)
// restores every checksummed trace on reboot, and a corrupted
// snapshot entry is skipped with the rest recovered.
func TestServerStateRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.snap")

	// Boot 1: capture a trace; the store snapshots on put, so a
	// SIGKILL after the response still has it on disk.
	_, ts := newTestServer(t, func(c *Config) { c.StatePath = path })
	resp, raw := postJSON(t, ts.URL+"/v1/capture", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture: %d (%s)", resp.StatusCode, raw)
	}
	var meta TraceMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot written at put time: %v", err)
	}

	// Boot 2: a fresh server on the same state path serves the trace
	// without re-capturing.
	s2, ts2 := newTestServer(t, func(c *Config) { c.StatePath = path })
	if s2.snapStats.Loaded != 1 || s2.snapStats.Skipped != 0 {
		t.Fatalf("boot 2 snapshot stats = %+v, want 1 loaded", s2.snapStats)
	}
	get, err := http.Get(ts2.URL + "/v1/traces/" + meta.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("recovered trace get: %d", get.StatusCode)
	}
	if _, err := maya.ReadTrace(bytes.NewReader(blob)); err != nil {
		t.Fatalf("recovered trace does not parse: %v", err)
	}
	hresp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var hb healthzBody
	if err := json.Unmarshal(hraw, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.TracesRecovered != 1 || hb.TracesStored != 1 {
		t.Fatalf("healthz recovery stats: %+v", hb)
	}

	// Corrupt the snapshot's only entry: boot 3 must come up serving,
	// with the entry skipped and reported.
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap[len(snap)-20] ^= 0x01
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, ts3 := newTestServer(t, func(c *Config) { c.StatePath = path })
	if s3.snapStats.Loaded != 0 || s3.snapStats.Skipped != 1 {
		t.Fatalf("boot 3 snapshot stats = %+v, want 0 loaded / 1 skipped", s3.snapStats)
	}
	if !errors.Is(s3.snapStats.EntryErr, ErrSnapshotEntry) {
		t.Fatalf("boot 3 EntryErr = %v, want ErrSnapshotEntry", s3.snapStats.EntryErr)
	}
	// The degraded boot still predicts.
	presp, praw := postJSON(t, ts3.URL+"/v1/predict", smallSpec(), nil)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("boot 3 predict: %d (%s)", presp.StatusCode, praw)
	}
}
