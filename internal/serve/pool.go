package serve

import (
	"context"
	"sync/atomic"
)

// Pool bounds how many predictions execute simultaneously. The Maya
// pipeline already pools its expensive per-run state process-wide
// (simulation engines, annotation overlays); capping concurrent
// predictions keeps that reuse high — roughly worker-count engines
// ever live — instead of letting a traffic burst mint one engine per
// request. Callers queue on the semaphore, observing their own ctx,
// so a deadlined request stops waiting instead of holding a slot it
// can no longer use.
type Pool struct {
	slots chan struct{}

	busy    atomic.Int64 // jobs currently executing
	waiting atomic.Int64 // jobs queued for a slot
	done    atomic.Int64 // jobs completed
}

// NewPool returns a pool executing at most workers predictions at
// once (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Run executes fn on a pool slot, waiting for one if all workers are
// busy. It returns ctx's error if the wait is cancelled first; fn's
// own result travels out of band (the closure).
func (p *Pool) Run(ctx context.Context, fn func()) error {
	p.waiting.Add(1)
	select {
	case p.slots <- struct{}{}:
		p.waiting.Add(-1)
	case <-ctx.Done():
		p.waiting.Add(-1)
		return ctx.Err()
	}
	p.busy.Add(1)
	defer func() {
		p.busy.Add(-1)
		p.done.Add(1)
		<-p.slots
	}()
	fn()
	return nil
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.slots) }

// Busy reports how many predictions are executing right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Waiting reports how many jobs are queued for a slot.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }

// Completed reports how many jobs have finished.
func (p *Pool) Completed() int64 { return p.done.Load() }
