package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers, jobs = 3, 20
	p := NewPool(workers)

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Run(context.Background(), func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Let the pool fill, then release everyone.
	for p.Busy() < workers {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := peak.Load(); got != workers {
		t.Errorf("peak concurrency = %d, want %d", got, workers)
	}
	if got := p.Completed(); got != jobs {
		t.Errorf("completed = %d, want %d", got, jobs)
	}
	if p.Busy() != 0 || p.Waiting() != 0 {
		t.Errorf("pool not quiescent: busy=%d waiting=%d", p.Busy(), p.Waiting())
	}
}

func TestPoolRunHonorsContextWhileQueued(t *testing.T) {
	p := NewPool(1)
	hold := make(chan struct{})
	started := make(chan struct{})
	go p.Run(context.Background(), func() { close(started); <-hold })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Run(ctx, func() { t.Error("queued job ran after cancellation") })
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Run: err = %v, want context.Canceled", err)
	}
	close(hold)
}
