package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"

	"maya"
)

// ResilienceConfig shapes one deterministic chaos run: a virtual-time
// discrete-event walk of the service control plane — the real
// Shedder, Breaker and degradeCache implementations on an injected
// clock — against a modeled predictor dependency whose behavior comes
// from the ChaosPlan. Predictions are modeled as a fixed service time
// (the emulate-the-node/model-the-boundary split: the policy layer is
// exercised for real, the dependency is modeled), so the whole run is
// a pure function of the config and plan seed — bit-identical across
// reruns, per the repo's determinism discipline.
type ResilienceConfig struct {
	// Plan is the chaos scenario (required; predict-target events
	// apply).
	Plan *ChaosPlan
	// Workers is the prediction pool size (default 4).
	Workers int
	// Service is the modeled per-prediction service time (default
	// 10ms).
	Service time.Duration
	// Arrival is the inter-arrival time of requests; Service/Workers
	// is exactly saturation, half of that is 2x overload (default:
	// saturation).
	Arrival time.Duration
	// Duration bounds the run in virtual time (default 8s).
	Duration time.Duration
	// Deadline is every request's deadline (default 250ms).
	Deadline time.Duration
	// Keys rotates requests across this many distinct prediction
	// identities (default 4) — the degrade cache's working set.
	Keys int
	// Bucket is the goodput-timeline bucket width (default 100ms).
	Bucket time.Duration

	// Control-plane knobs; zero values take the server defaults.
	ShedTarget       time.Duration
	ShedInterval     time.Duration
	BreakerThreshold int
	BreakerProbe     time.Duration
	// FailFast is how quickly the dependency answers an injected
	// error or outage (default 1ms).
	FailFast time.Duration
}

// ResilienceBucket is one goodput-timeline slot.
type ResilienceBucket struct {
	StartMS  int64 `json:"start_ms"`
	OK       int   `json:"ok"`
	Degraded int   `json:"degraded"`
	Shed     int   `json:"shed"`
	Rejected int   `json:"rejected"`
	Failed   int   `json:"failed"`
}

// ResilienceReport is the run's outcome: response classes, breaker
// activity, bounded-latency evidence and the goodput recovery time
// after the last outage window.
type ResilienceReport struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`       // fresh predictions served
	Degraded int `json:"degraded"` // stale results served during shed/open
	Shed     int `json:"shed"`     // 429-class rejections (no stale cover)
	Rejected int `json:"rejected"` // breaker short-circuits (no stale cover)
	Failed   int `json:"failed"`   // dependency errors + deadline expiries

	BreakerTrips      int64 `json:"breaker_trips"`
	BreakerProbes     int64 `json:"breaker_probes"`
	BreakerRecoveries int64 `json:"breaker_recoveries"`

	// P99ResponseMS is the 99th percentile time-to-response over
	// accepted requests (fresh + degraded) — the bounded-latency
	// claim: shedding answers immediately, so nothing queues past its
	// deadline.
	P99ResponseMS float64 `json:"p99_response_ms"`
	// PreFaultGoodputRPS is the fresh-prediction rate before the
	// first fault window opens.
	PreFaultGoodputRPS float64 `json:"pre_fault_goodput_rps"`
	// RecoveryMS is how long after the last outage window closed the
	// fresh-prediction rate recovered to >= 90% of PreFaultGoodputRPS
	// (bucket granularity); -1 if it never did.
	RecoveryMS int64 `json:"recovery_ms"`

	Buckets []ResilienceBucket `json:"buckets"`
}

// completion is one in-flight modeled prediction finishing at a
// virtual time.
type completion struct {
	at      time.Duration
	seq     int
	key     string
	service time.Duration // actual busy time on the worker
	outcome breakerOutcome
}

// completionHeap orders completions by (time, sequence) — the same
// strict ordering discipline the simulation engine uses, so the walk
// is deterministic.
type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)       { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any         { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h completionHeap) peek() *completion { return &h[0] }

// RunResilience executes one deterministic chaos run and reports
// goodput, shed/degraded/failed classes and recovery time. The same
// config (including the plan seed) always produces a byte-identical
// report.
func RunResilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	if cfg.Plan == nil {
		return nil, errors.New("serve: resilience run needs a chaos plan")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Service <= 0 {
		cfg.Service = 10 * time.Millisecond
	}
	if cfg.Arrival <= 0 {
		cfg.Arrival = cfg.Service / time.Duration(cfg.Workers)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 8 * time.Second
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 250 * time.Millisecond
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 4
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 100 * time.Millisecond
	}
	if cfg.ShedTarget <= 0 {
		cfg.ShedTarget = defaultShedTarget
	}
	if cfg.ShedInterval <= 0 {
		cfg.ShedInterval = defaultShedInterval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = defaultBreakerProbe
	}
	if cfg.FailFast <= 0 {
		cfg.FailFast = time.Millisecond
	}

	// The real control-plane components on a virtual clock.
	base := time.Unix(0, 0).UTC()
	var vnow time.Duration
	clock := func() time.Time { return base.Add(vnow) }
	shed := NewShedder(cfg.ShedTarget, cfg.ShedInterval)
	shed.now = clock
	br := NewBreaker("predict", cfg.BreakerThreshold, cfg.BreakerProbe)
	br.now = clock
	stale := newDegradeCache(cfg.Keys)
	stale.now = clock
	staleReport := &maya.Report{} // counted, never inspected

	workers := make([]time.Duration, cfg.Workers) // per-worker free-at
	var pending completionHeap
	inSystem := 0
	var calls uint64

	rep := &ResilienceReport{}
	nBuckets := int(cfg.Duration/cfg.Bucket) + 1
	// Generous tail: completions can land past Duration.
	buckets := make([]ResilienceBucket, nBuckets+int(cfg.Deadline/cfg.Bucket)+2)
	bucketOf := func(t time.Duration) *ResilienceBucket {
		i := int(t / cfg.Bucket)
		if i < 0 {
			i = 0
		}
		if i >= len(buckets) {
			i = len(buckets) - 1
		}
		return &buckets[i]
	}
	var accepted []time.Duration // time-to-response of OK + degraded

	// drain processes completions due at or before t, in (time, seq)
	// order: the completion's effects — EWMA update, breaker
	// observation, stale-cache refresh — happen at its own virtual
	// time, as they would in the live server.
	drain := func(t time.Duration) {
		for len(pending) > 0 && pending.peek().at <= t {
			c := heap.Pop(&pending).(completion)
			vnow = c.at
			inSystem--
			shed.Observe(c.service)
			br.Observe(c.outcome)
			if c.outcome == breakerSuccess {
				stale.put(c.key, staleReport)
			}
		}
		vnow = t
	}

	for seq := 0; ; seq++ {
		t := time.Duration(seq) * cfg.Arrival
		if t >= cfg.Duration {
			break
		}
		drain(t)
		rep.Requests++
		key := fmt.Sprintf("k%d", seq%cfg.Keys)

		// Stage 1: shedding (queue-delay + deadline-aware).
		est := shed.EstimateWait(inSystem, cfg.Workers)
		if v := shed.Decide(est, cfg.Deadline); v != ShedAdmit {
			if _, _, ok := stale.get(key); ok {
				rep.Degraded++
				bucketOf(t).Degraded++
				accepted = append(accepted, 0)
			} else {
				rep.Shed++
				bucketOf(t).Shed++
			}
			continue
		}
		// Stage 2: circuit breaker, degrading when open.
		if !br.Allow() {
			if _, _, ok := stale.get(key); ok {
				rep.Degraded++
				bucketOf(t).Degraded++
				accepted = append(accepted, 0)
			} else {
				rep.Rejected++
				bucketOf(t).Rejected++
			}
			continue
		}
		// Stage 3: the modeled dependency call on the earliest-free
		// worker (ties to the lowest index — deterministic).
		w := 0
		for i := 1; i < cfg.Workers; i++ {
			if workers[i] < workers[w] {
				w = i
			}
		}
		start := max(t, workers[w])
		calls++
		var c completion
		c.seq = seq
		c.key = key
		if e := cfg.Plan.effect(ChaosTargetPredict, start, calls); e != nil {
			switch e.Kind {
			case ChaosOutage, ChaosError, ChaosPanic:
				// Fail fast: the dependency answers an error (or a
				// recovered panic) almost immediately.
				c.at = start + cfg.FailFast
				c.service = cfg.FailFast
				c.outcome = breakerFailure
				rep.Failed++
				bucketOf(c.at).Failed++
			case ChaosLatency:
				svc := cfg.Service + time.Duration(e.LatencyMS)*time.Millisecond
				c.at = start + svc
				c.service = svc
				c.outcome = breakerSuccess
			}
		} else {
			c.at = start + cfg.Service
			c.service = cfg.Service
			c.outcome = breakerSuccess
		}
		if c.outcome == breakerSuccess {
			if c.at-t > cfg.Deadline {
				// The request's context expires first: a 504, and the
				// worker is released at the cancellation point.
				c.at = t + cfg.Deadline
				c.service = c.at - start
				c.outcome = breakerAborted
				rep.Failed++
				bucketOf(c.at).Failed++
			} else {
				rep.OK++
				bucketOf(c.at).OK++
				accepted = append(accepted, c.at-t)
			}
		}
		workers[w] = c.at
		inSystem++
		heap.Push(&pending, c)
	}
	drain(cfg.Duration + cfg.Deadline + time.Second) // flush everything

	rep.BreakerTrips = br.Trips()
	rep.BreakerProbes = br.Probes()
	rep.BreakerRecoveries = br.Recoveries()

	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	if n := len(accepted); n > 0 {
		i := int(0.99 * float64(n-1))
		rep.P99ResponseMS = float64(accepted[i].Nanoseconds()) / 1e6
	}

	// Pre-fault goodput and recovery, against the plan's fault span.
	firstFrom, lastUntil := int64(-1), int64(-1)
	for _, e := range cfg.Plan.Events {
		if firstFrom < 0 || e.FromMS < firstFrom {
			firstFrom = e.FromMS
		}
		until := e.UntilMS
		if until == 0 {
			until = cfg.Duration.Milliseconds()
		}
		if until > lastUntil {
			lastUntil = until
		}
	}
	trim := len(buckets)
	for trim > 0 && buckets[trim-1] == (ResilienceBucket{StartMS: buckets[trim-1].StartMS}) {
		trim--
	}
	for i := range buckets {
		buckets[i].StartMS = int64(i) * cfg.Bucket.Milliseconds()
	}
	rep.Buckets = buckets[:trim]
	if firstFrom > 0 {
		var pre int
		var preBuckets int
		for _, b := range rep.Buckets {
			if b.StartMS+cfg.Bucket.Milliseconds() <= firstFrom {
				pre += b.OK
				preBuckets++
			}
		}
		if preBuckets > 0 {
			rep.PreFaultGoodputRPS = float64(pre) / (float64(preBuckets) * cfg.Bucket.Seconds())
		}
	}
	rep.RecoveryMS = -1
	if lastUntil >= 0 && rep.PreFaultGoodputRPS > 0 {
		want := 0.9 * rep.PreFaultGoodputRPS * cfg.Bucket.Seconds()
		for _, b := range rep.Buckets {
			if b.StartMS < lastUntil {
				continue
			}
			if float64(b.OK) >= want {
				rep.RecoveryMS = b.StartMS - lastUntil
				break
			}
		}
	}
	return rep, nil
}
