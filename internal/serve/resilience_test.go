package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// outagePlan is the acceptance scenario: a 2-second total predictor
// outage in the middle of the run.
func outagePlan() *ChaosPlan {
	return &ChaosPlan{Seed: 42, Events: []ChaosEvent{
		{Kind: ChaosOutage, Target: ChaosTargetPredict, FromMS: 2000, UntilMS: 4000},
	}}
}

// acceptanceConfig drives the service at 2x saturation: 4 workers at
// 10ms service absorb one arrival per 2.5ms; arrivals come every
// 1.25ms.
func acceptanceConfig() ResilienceConfig {
	return ResilienceConfig{
		Plan:         outagePlan(),
		Workers:      4,
		Service:      10 * time.Millisecond,
		Arrival:      1250 * time.Microsecond,
		Duration:     8 * time.Second,
		Deadline:     250 * time.Millisecond,
		Keys:         4,
		Bucket:       100 * time.Millisecond,
		BreakerProbe: 500 * time.Millisecond,
	}
}

// TestResilienceAcceptance is the ISSUE's acceptance criterion: under
// a seeded chaos plan with a 2s predictor outage at 2x saturation,
// the service sheds or degrades rather than queueing past deadlines
// (p99 over accepted responses stays bounded by the deadline), and
// goodput recovers to >= 90% of the pre-fault rate within one breaker
// probe interval of the outage ending.
func TestResilienceAcceptance(t *testing.T) {
	cfg := acceptanceConfig()
	rep, err := RunResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	// Overload + outage must surface as shedding and degradation, not
	// as unbounded queueing.
	if rep.Shed+rep.Degraded == 0 {
		t.Fatalf("2x overload shed/degraded nothing: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("outage served no stale results: %+v", rep)
	}
	if rep.BreakerTrips == 0 {
		t.Fatalf("outage never tripped the breaker: %+v", rep)
	}
	if rep.BreakerRecoveries == 0 {
		t.Fatalf("breaker never recovered: %+v", rep)
	}
	// Bounded latency: every accepted response (fresh or degraded)
	// answered within the deadline — nothing rotted in the queue.
	if ms := float64(cfg.Deadline.Milliseconds()); rep.P99ResponseMS > ms {
		t.Errorf("p99 response %.1fms exceeds the %gms deadline", rep.P99ResponseMS, ms)
	}
	// Goodput recovery: back to >= 90% of pre-fault within one probe
	// interval (bucket granularity) of the outage closing.
	if rep.PreFaultGoodputRPS <= 0 {
		t.Fatalf("no pre-fault goodput measured: %+v", rep)
	}
	maxRecovery := (cfg.BreakerProbe + cfg.Bucket).Milliseconds()
	if rep.RecoveryMS < 0 || rep.RecoveryMS > maxRecovery {
		t.Errorf("recovery took %dms, want within %dms", rep.RecoveryMS, maxRecovery)
	}
}

// TestResilienceDeterministic asserts the chaos harness's core
// contract: the same plan seed and config produce a byte-identical
// report on every rerun.
func TestResilienceDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := RunResilience(acceptanceConfig())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("reruns of the same plan diverged:\n%s\n%s", a, b)
	}

	// A different seed with a fractional fault actually changes the
	// injected subset (guards against the seed being ignored).
	frac := func(seed uint64) []byte {
		plan := &ChaosPlan{Seed: seed, Events: []ChaosEvent{
			{Kind: ChaosError, Target: ChaosTargetPredict, FromMS: 1000, UntilMS: 7000, Fraction: 0.2},
		}}
		cfg := acceptanceConfig()
		cfg.Plan = plan
		rep, err := RunResilience(cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(rep)
		return raw
	}
	if bytes.Equal(frac(1), frac(2)) {
		t.Error("different plan seeds produced identical fractional-fault runs")
	}
	if !bytes.Equal(frac(1), frac(1)) {
		t.Error("same fractional-fault seed diverged")
	}
}

func TestResilienceValidation(t *testing.T) {
	if _, err := RunResilience(ResilienceConfig{}); err == nil {
		t.Error("run without a plan accepted")
	}
	bad := ResilienceConfig{Plan: &ChaosPlan{Events: []ChaosEvent{{Kind: "meteor"}}}}
	if _, err := RunResilience(bad); err == nil {
		t.Error("run with an invalid plan accepted")
	}
}
