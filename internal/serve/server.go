// Package serve is Maya's multi-tenant prediction service layer: an
// HTTP/JSON front over one shared maya.Predictor, built for heavy
// interactive what-if traffic. A request flows admission → coalesce →
// pool → predict:
//
//   - Admission: a per-tenant token bucket (X-Maya-Tenant) in front of
//     a bounded service-wide queue — fairness first, then load-shedding
//     instead of unbounded queueing.
//   - Coalescing: concurrent identical predictions single-flight into
//     one execution, on top of the predictor's fingerprinted capture
//     cache — N identical in-flight requests pay one capture and one
//     simulate.
//   - Pool: a bounded worker count executes predictions, keeping the
//     process-wide simulation-engine pool hot.
//   - Predict: the ordinary maya.Predictor pipeline, with the request
//     deadline mapped onto the context cancellation every layer
//     already observes.
//
// Endpoints: POST /v1/predict (single or batch), POST /v1/capture,
// GET /v1/traces/{fingerprint}, POST /v1/traces, GET /metrics
// (Prometheus text), GET /healthz (build info, cache stats).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maya"
	"maya/internal/buildinfo"
)

// Config shapes a Server. The zero value of every optional field
// selects a sensible default; Cluster is required.
type Config struct {
	// Cluster is the hardware every prediction targets.
	Cluster maya.Cluster
	// Topology is the network-fabric spec the predictor models the
	// cluster with ("" or "auto" derives it from the hardware; see
	// maya.WithTopology for the spec grammar). Validated by New.
	Topology string
	// Congestion makes every prediction resolve collectives against
	// link-level contention (maya.WithCongestion).
	Congestion bool
	// Profile selects the estimator profile (default ProfileLLM).
	Profile maya.ProfileKind
	// Workers bounds concurrent predictions (default GOMAXPROCS).
	Workers int
	// Queue bounds admitted-but-unfinished requests (default
	// 4*Workers).
	Queue int
	// TenantRate and TenantBurst shape the per-tenant token bucket:
	// sustained predictions/sec and burst allowance. TenantRate <= 0
	// disables tenant throttling.
	TenantRate  float64
	TenantBurst int
	// CaptureCacheSize bounds the fingerprinted capture LRU shared by
	// all requests (default 256).
	CaptureCacheSize int
	// TraceStoreSize bounds the /v1/traces store (default 128).
	TraceStoreSize int
	// DefaultDeadline applies to requests without deadline_ms;
	// MaxDeadline clamps what requests may ask for. Defaults: 30s, 2m.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Preload lists extra estimator suites to warm at boot, as
	// "CLUSTERSPEC" or "CLUSTERSPEC/PROFILE" entries (e.g. "8xV100",
	// "32xH100/llm"). The serving cluster's own suite is always
	// warmed.
	Preload []string

	// ShedTarget and ShedInterval shape overload shedding: when the
	// estimated queue wait stays above ShedTarget for ShedInterval,
	// arrivals whose wait estimate is still above target are shed
	// with 429 (CoDel-style); independently, a request whose estimate
	// exceeds its own remaining deadline is shed immediately.
	// Defaults: 150ms, 1s.
	ShedTarget   time.Duration
	ShedInterval time.Duration
	// BreakerThreshold consecutive dependency failures trip the
	// per-dependency circuit breakers; BreakerProbe is the open →
	// half-open probe interval. Defaults: 5, 1s.
	BreakerThreshold int
	BreakerProbe     time.Duration
	// DegradeCacheSize bounds the stale-result cache serving
	// `"degraded": true` answers while shedding or with a breaker
	// open (default 256).
	DegradeCacheSize int
	// StatePath, when set, persists the trace store there: an atomic
	// snapshot after every accepted trace and on drain, restored at
	// boot with per-entry checksum validation (corrupt entries are
	// skipped, not fatal).
	StatePath string
	// Chaos, when set, wraps the predictor dependency in a
	// fault-injecting shim driven by the plan — the test-only chaos
	// harness behind cmd/maya-serve's -chaos flag.
	Chaos *ChaosPlan
	// Logf, when set, receives operational log lines (evictions,
	// snapshot recovery problems). nil discards them.
	Logf func(format string, args ...any)
}

// Server is the service instance: one predictor, its caches, and the
// admission/coalescing/pool machinery. Create with New, expose with
// Handler, warm with Warm, retire with Drain.
type Server struct {
	cfg     Config
	pred    *maya.Predictor
	backend backend // the predictor, or the chaos shim around it
	chaos   *chaosBackend
	adm     *Admission
	pool    *Pool
	co      *coalescer
	metrics *Metrics
	store   *traceStore
	mux     *http.ServeMux
	build   buildinfo.Info
	started time.Time

	// Resilience layer: queue-delay shedding, per-dependency circuit
	// breakers and the stale-result degradation cache.
	shed      *Shedder
	pbreaker  *Breaker // guards Predict
	cbreaker  *Breaker // guards Capture
	degrade   *degradeCache
	snapStats SnapshotStats
	stateMu   sync.Mutex // serializes snapshot writes

	draining atomic.Bool

	// testGate, when set (tests only), is called by each coalescing
	// leader on its pool slot before predicting — a hold point that
	// lets tests pile provably-concurrent identical requests onto one
	// leader.
	testGate func()
}

// Resilience defaults, shared with the virtual-time harness.
const (
	defaultShedTarget       = 150 * time.Millisecond
	defaultShedInterval     = time.Second
	defaultBreakerThreshold = 5
	defaultBreakerProbe     = time.Second
)

// logfTo logs through an optional sink.
func logfTo(logf func(string, ...any), format string, args ...any) {
	if logf != nil {
		logf(format, args...)
	}
}

// New builds a Server for the cluster. It trains nothing: call Warm
// to pay estimator training at boot instead of on the first learned
// request.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 32
	}
	if cfg.CaptureCacheSize <= 0 {
		cfg.CaptureCacheSize = 256
	}
	if cfg.TraceStoreSize <= 0 {
		cfg.TraceStoreSize = 128
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	if cfg.ShedTarget <= 0 {
		cfg.ShedTarget = defaultShedTarget
	}
	if cfg.ShedInterval <= 0 {
		cfg.ShedInterval = defaultShedInterval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = defaultBreakerProbe
	}
	if cfg.DegradeCacheSize <= 0 {
		cfg.DegradeCacheSize = 256
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, err
		}
	}
	popts := []maya.PredictorOption{
		maya.WithEstimatorCache(maya.NewEstimatorCache()),
		maya.WithCaptureCache(maya.NewCaptureCache(cfg.CaptureCacheSize)),
		maya.WithTopology(cfg.Topology),
	}
	if cfg.Congestion {
		popts = append(popts, maya.WithCongestion())
	}
	pred, err := maya.NewPredictor(cfg.Cluster, cfg.Profile, popts...)
	if err != nil {
		return nil, err
	}
	store := newTraceStore(cfg.TraceStoreSize)
	var snapStats SnapshotStats
	if cfg.StatePath != "" {
		var err error
		store, snapStats, err = restoreTraceStore(cfg.StatePath, cfg.TraceStoreSize)
		if err != nil {
			// A broken snapshot must never keep the service down:
			// serve with whatever recovered, and say so.
			logfTo(cfg.Logf, "serve: trace-store snapshot %s: %v (recovered %d, skipped %d)",
				cfg.StatePath, err, snapStats.Loaded, snapStats.Skipped)
		} else if snapStats.EntryErr != nil {
			logfTo(cfg.Logf, "serve: trace-store snapshot %s: %v (recovered %d, skipped %d)",
				cfg.StatePath, snapStats.EntryErr, snapStats.Loaded, snapStats.Skipped)
		}
	}
	s := &Server{
		cfg:      cfg,
		pred:     pred,
		backend:  pred,
		adm:      NewAdmission(cfg.Queue, cfg.TenantRate, cfg.TenantBurst),
		pool:     NewPool(cfg.Workers),
		co:       newCoalescer(),
		metrics:  &Metrics{},
		store:    store,
		mux:      http.NewServeMux(),
		build:    buildinfo.Get(),
		started:  time.Now(),
		shed:     NewShedder(cfg.ShedTarget, cfg.ShedInterval),
		pbreaker: NewBreaker("predict", cfg.BreakerThreshold, cfg.BreakerProbe),
		cbreaker: NewBreaker("capture", cfg.BreakerThreshold, cfg.BreakerProbe),
		degrade:  newDegradeCache(cfg.DegradeCacheSize),
	}
	s.snapStats = snapStats
	s.store.onEvict = func(meta TraceMeta) {
		logfTo(cfg.Logf, "serve: trace store at capacity, evicted %s (%s on %s, %d bytes)",
			meta.Fingerprint, meta.Workload, meta.Cluster, meta.SizeBytes)
	}
	if cfg.Chaos != nil {
		s.chaos = newChaosBackend(pred, cfg.Chaos)
		s.backend = s.chaos
	}
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/capture", s.handleCapture)
	s.mux.HandleFunc("GET /v1/traces/{fingerprint}", s.handleTraceGet)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Predictor exposes the shared predictor (tests, embedders).
func (s *Server) Predictor() *maya.Predictor { return s.pred }

// Metrics exposes the serving counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Warm trains the serving cluster's estimator suite plus every
// Preload entry, so learned predictions pay no training latency.
func (s *Server) Warm(ctx context.Context) error {
	if err := s.pred.Warm(ctx); err != nil {
		return fmt.Errorf("serve: warming %s: %w", s.cfg.Cluster.Name, err)
	}
	for _, entry := range s.cfg.Preload {
		spec, profName, _ := strings.Cut(strings.TrimSpace(entry), "/")
		cluster, err := maya.ClusterByName(spec)
		if err != nil {
			return fmt.Errorf("serve: preload %q: %w", entry, err)
		}
		kind := s.cfg.Profile
		if profName != "" {
			if kind, err = ParseProfile(profName); err != nil {
				return fmt.Errorf("serve: preload %q: %w", entry, err)
			}
		}
		if err := s.pred.EstimatorCache().Warm(ctx, cluster, kind); err != nil {
			return fmt.Errorf("serve: preload %q: %w", entry, err)
		}
	}
	return nil
}

// persistState snapshots the trace store to StatePath (atomic
// temp-file + rename). A no-op when persistence is off; write
// problems are logged, never surfaced to the request that triggered
// the snapshot — durability is best-effort, serving is not.
func (s *Server) persistState() {
	if s.cfg.StatePath == "" {
		return
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if err := s.store.persist(s.cfg.StatePath); err != nil {
		logfTo(s.cfg.Logf, "serve: persisting trace store: %v", err)
	}
}

// Drain flips the server into drain mode: new requests are refused
// with 503 (and /healthz reports draining, so balancers stop routing)
// while in-flight requests run to completion, and the trace store is
// snapshotted a final time. Pair it with http.Server.Shutdown, which
// waits for those in-flight handlers.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.persistState()
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ParseProfile parses an estimator profile name.
func ParseProfile(name string) (maya.ProfileKind, error) {
	switch strings.ToLower(name) {
	case "llm":
		return maya.ProfileLLM, nil
	case "vision":
		return maya.ProfileVision, nil
	case "all":
		return maya.ProfileAll, nil
	}
	return 0, fmt.Errorf("unknown profile %q (have llm, vision, all)", name)
}

// profileName is ParseProfile's inverse, for /healthz.
func profileName(k maya.ProfileKind) string {
	switch k {
	case maya.ProfileLLM:
		return "llm"
	case maya.ProfileVision:
		return "vision"
	default:
		return "all"
	}
}

// tenantOf extracts the request's tenant identity. Untagged requests
// pool into the "default" tenant: they share one bucket rather than
// bypassing fairness.
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Maya-Tenant")); t != "" {
		return t
	}
	return "default"
}

// errorBody is the JSON error envelope of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a prediction error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// countStatus folds a response status into the outcome counters.
func (s *Server) countStatus(status int) {
	switch status {
	case http.StatusOK:
		s.metrics.OK.Add(1)
	case http.StatusBadRequest:
		s.metrics.BadInput.Add(1)
	case http.StatusTooManyRequests:
		s.metrics.Throttled.Add(1)
	case http.StatusServiceUnavailable:
		s.metrics.Rejected.Add(1)
	case http.StatusGatewayTimeout:
		s.metrics.Deadline.Add(1)
	default:
		s.metrics.Failed.Add(1)
	}
}

// PredictResult is one prediction's wire answer: the report on
// success, an error otherwise, plus serving metadata (whether this
// request shared a coalesced execution, and how long the executing
// leader waited for a worker).
type PredictResult struct {
	Report    *maya.Report `json:"report,omitempty"`
	Error     string       `json:"error,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	// Degraded marks a stale cached report served because the service
	// was shedding or the predictor breaker was open; StaleMS is the
	// result's age.
	Degraded    bool    `json:"degraded,omitempty"`
	StaleMS     float64 `json:"stale_ms,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms"`

	status      int    // internal: HTTP status this result maps to
	shed        string // internal: shed verdict, sent as X-Maya-Shed
	retryAfterS int    // internal: Retry-After seconds on shed 429s
}

// batchEnvelope is the wire form of a batch predict call.
type batchEnvelope struct {
	Requests []PredictSpec `json:"requests"`
}

// batchResponse answers a batch predict call positionally.
type batchResponse struct {
	Results []PredictResult `json:"results"`
}

// parsePredictBody accepts either one PredictSpec object or a
// {"requests": [...]} batch, returning the specs and whether the call
// was a batch.
func parsePredictBody(body []byte) ([]PredictSpec, bool, error) {
	var env batchEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Requests != nil {
		if len(env.Requests) == 0 {
			return nil, true, errors.New("empty requests array")
		}
		return env.Requests, true, nil
	}
	var one PredictSpec
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, false, fmt.Errorf("malformed request body: %v", err)
	}
	return []PredictSpec{one}, false, nil
}

// requestCtx derives the request's deadline context: the largest
// deadline any spec asked for, defaulted and clamped by server
// config, layered over the connection context so client disconnects
// still cancel the pipeline.
func (s *Server) requestCtx(r *http.Request, specs []PredictSpec) (context.Context, context.CancelFunc) {
	var ms int64
	for i := range specs {
		if specs[i].DeadlineMS > ms {
			ms = specs[i].DeadlineMS
		}
	}
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// predictOutcome is what a coalescing flight produces.
type predictOutcome struct {
	report      *maya.Report
	queueWaitMS float64
}

// handlePredict serves POST /v1/predict: admission, then each spec
// through coalesce → pool → predict. Batch items are isolated — one
// failing spec reports its own error, its neighbors still answer.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		s.countStatus(http.StatusServiceUnavailable)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	specs, batch, err := parsePredictBody(body)
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, err := s.adm.Admit(tenantOf(r), len(specs))
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrThrottled) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		s.countStatus(status)
		writeError(w, status, "%v", err)
		return
	}
	defer release()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.Latency.observe(float64(time.Since(start).Nanoseconds()) / 1e6) }()

	ctx, cancel := s.requestCtx(r, specs)
	defer cancel()

	results := make([]PredictResult, len(specs))
	if len(specs) == 1 {
		results[0] = s.predictOne(ctx, &specs[0])
	} else {
		var wg sync.WaitGroup
		for i := range specs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i] = s.predictOne(ctx, &specs[i])
			}()
		}
		wg.Wait()
	}

	if batch {
		// Batch responses are positional and always 200; per-item
		// status lives in each result.
		for i := range results {
			s.countStatus(results[i].status)
		}
		writeJSON(w, http.StatusOK, batchResponse{Results: results})
		return
	}
	res := results[0]
	s.countStatus(res.status)
	if res.shed != "" {
		w.Header().Set("X-Maya-Shed", res.shed)
	}
	if res.retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.retryAfterS))
	}
	writeJSON(w, res.status, res)
}

// recovered converts a recovered prediction panic into an error,
// counting it in maya_panics_total.
func (s *Server) recovered(v any) error {
	s.metrics.Panics.Add(1)
	return fmt.Errorf("internal error: prediction panicked: %v", v)
}

// degradedResult answers with the stale cached report for key, marked
// degraded, when one exists — the graceful path behind an open
// breaker or an overloaded queue.
func (s *Server) degradedResult(key string) (PredictResult, bool) {
	rep, age, ok := s.degrade.get(key)
	if !ok {
		return PredictResult{}, false
	}
	s.metrics.Degraded.Add(1)
	s.degrade.serves.Add(1)
	return PredictResult{
		Report:   rep,
		Degraded: true,
		StaleMS:  float64(age.Nanoseconds()) / 1e6,
		status:   http.StatusOK,
	}, true
}

// predictOne runs one spec through shed → breaker → coalesce → pool →
// predict. Panics are recovered into 500s at two layers: inside the
// pool closure, so a crashing leader still completes its coalescing
// flight (followers get the error instead of waiting on a flight that
// never finishes), and around the whole path, because batch items run
// on their own goroutines where an unrecovered panic kills the
// process. Shed and breaker rejections fall back to the stale-result
// cache before answering 429/503.
func (s *Server) predictOne(ctx context.Context, spec *PredictSpec) (res PredictResult) {
	defer func() {
		if v := recover(); v != nil {
			res = PredictResult{Error: s.recovered(v).Error(), status: http.StatusInternalServerError}
		}
	}()
	s.metrics.Predictions.Add(1)
	w, opts, err := spec.build(s.cfg.Cluster)
	if err != nil {
		return PredictResult{Error: err.Error(), status: http.StatusBadRequest}
	}
	key := spec.predictKey(s.cfg.Cluster, w)

	// Overload shedding: estimate the queue wait this request would
	// face and refuse early — stale answer if we have one, 429 with a
	// Retry-After hint otherwise — rather than let it rot in the queue.
	est := s.shed.EstimateWait(s.adm.Depth(), s.pool.Workers())
	var remaining time.Duration
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
	}
	if v := s.shed.Decide(est, remaining); v != ShedAdmit {
		s.metrics.Shed.Add(1)
		s.metrics.QueueWaitAtReject.observe(float64(est.Nanoseconds()) / 1e6)
		if res, ok := s.degradedResult(key); ok {
			res.shed = v.String()
			return res
		}
		msg := fmt.Sprintf("overloaded: estimated queue wait %v above target %v",
			est.Round(time.Millisecond), s.shed.Target())
		if v == ShedDeadline {
			msg = fmt.Sprintf("estimated queue wait %v exceeds remaining deadline %v",
				est.Round(time.Millisecond), remaining.Round(time.Millisecond))
		}
		return PredictResult{
			Error:       msg,
			status:      http.StatusTooManyRequests,
			shed:        v.String(),
			retryAfterS: retryAfterS(est),
		}
	}

	// Circuit breaker: a broken predictor fails fast into the stale
	// cache instead of burning pool slots on doomed calls.
	if !s.pbreaker.Allow() {
		if res, ok := s.degradedResult(key); ok {
			return res
		}
		return PredictResult{Error: "predictor circuit open", status: http.StatusServiceUnavailable}
	}
	out, shared, err := s.co.do(ctx, key, func() (*predictOutcome, error) {
		o := &predictOutcome{}
		var perr error
		queued := time.Now()
		runErr := s.pool.Run(ctx, func() {
			defer func() {
				if v := recover(); v != nil {
					perr = s.recovered(v)
				}
			}()
			o.queueWaitMS = float64(time.Since(queued).Nanoseconds()) / 1e6
			s.metrics.QueueWait.observe(o.queueWaitMS)
			if s.testGate != nil {
				s.testGate()
			}
			s.metrics.Executed.Add(1)
			execStart := time.Now()
			o.report, perr = s.backend.Predict(ctx, w, opts...)
			s.shed.Observe(time.Since(execStart))
		})
		if runErr != nil {
			return nil, runErr
		}
		return o, perr
	})
	// Every Allow()ed caller observes — including coalescing followers,
	// whose shared error is evidence too, and crucially a half-open
	// probe whose caller got cancelled (aborted releases the probe slot
	// so the breaker cannot wedge half-open).
	s.pbreaker.Observe(outcomeOf(err))
	if shared {
		s.metrics.Coalesced.Add(1)
	}
	if err != nil {
		return PredictResult{Error: err.Error(), Coalesced: shared, status: statusFor(err)}
	}
	s.degrade.put(key, out.report)
	return PredictResult{
		Report:      out.report,
		Coalesced:   shared,
		QueueWaitMS: out.queueWaitMS,
		status:      http.StatusOK,
	}
}

// handleCapture serves POST /v1/capture: run (or reuse) the capture
// for a spec, archive its serialized form in the trace store, and
// answer with the fingerprint handle GET /v1/traces accepts.
func (s *Server) handleCapture(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		s.countStatus(http.StatusServiceUnavailable)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var spec PredictSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	release, err := s.adm.Admit(tenantOf(r), 1)
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrThrottled) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		s.countStatus(status)
		writeError(w, status, "%v", err)
		return
	}
	defer release()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.Latency.observe(float64(time.Since(start).Nanoseconds()) / 1e6) }()

	ctx, cancel := s.requestCtx(r, []PredictSpec{spec})
	defer cancel()

	wl, _, err := spec.build(s.cfg.Cluster)
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.cbreaker.Allow() {
		s.countStatus(http.StatusServiceUnavailable)
		writeError(w, http.StatusServiceUnavailable, "capture circuit open")
		return
	}
	var tr *maya.Trace
	var capErr error
	var capOpts []maya.PredictOption
	if spec.Seed != 0 {
		capOpts = append(capOpts, maya.WithSeed(spec.Seed))
	}
	if runErr := s.pool.Run(ctx, func() {
		defer func() {
			if v := recover(); v != nil {
				capErr = s.recovered(v)
			}
		}()
		tr, capErr = s.backend.Capture(ctx, wl, capOpts...)
	}); runErr != nil {
		capErr = runErr
	}
	s.cbreaker.Observe(outcomeOf(capErr))
	if capErr != nil {
		status := statusFor(capErr)
		s.countStatus(status)
		writeError(w, status, "%v", capErr)
		return
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		s.countStatus(http.StatusInternalServerError)
		writeError(w, http.StatusInternalServerError, "serializing trace: %v", err)
		return
	}
	meta := TraceMeta{
		Fingerprint:   fingerprintOf([]byte(spec.captureKey(s.cfg.Cluster, wl))),
		Workload:      tr.Workload(),
		Cluster:       tr.Cluster(),
		TotalWorkers:  tr.TotalWorkers(),
		UniqueWorkers: tr.UniqueWorkers(),
		PeakMemBytes:  tr.PeakMemBytes(),
		OOM:           tr.OOM(),
		SizeBytes:     buf.Len(),
	}
	s.store.put(buf.Bytes(), meta)
	s.persistState()
	s.metrics.Captures.Add(1)
	s.countStatus(http.StatusOK)
	writeJSON(w, http.StatusOK, meta)
}

// handleTraceGet serves GET /v1/traces/{fingerprint}: the serialized
// trace, loadable anywhere with maya.ReadTrace (or `maya simulate
// -trace`).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	fp := r.PathValue("fingerprint")
	st, ok := s.store.get(fp)
	if !ok {
		s.countStatus(http.StatusNotFound)
		writeError(w, http.StatusNotFound, "no trace with fingerprint %q", fp)
		return
	}
	s.metrics.TraceServes.Add(1)
	s.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Maya-Workload", st.meta.Workload)
	w.Header().Set("X-Maya-Cluster", st.meta.Cluster)
	w.Write(st.raw)
}

// handleTraceUpload serves POST /v1/traces: accept a serialized trace
// (validated end to end — magic, version, checksum, payload) and
// archive it under a content fingerprint.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	raw, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	tr, err := maya.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		s.countStatus(http.StatusBadRequest)
		switch {
		case errors.Is(err, maya.ErrTraceVersion):
			writeError(w, http.StatusBadRequest, "unsupported trace version: %v", err)
		case errors.Is(err, io.ErrUnexpectedEOF):
			writeError(w, http.StatusBadRequest, "truncated trace: %v", err)
		default:
			writeError(w, http.StatusBadRequest, "invalid trace: %v", err)
		}
		return
	}
	meta := TraceMeta{
		Fingerprint:   fingerprintOf(raw),
		Workload:      tr.Workload(),
		Cluster:       tr.Cluster(),
		TotalWorkers:  tr.TotalWorkers(),
		UniqueWorkers: tr.UniqueWorkers(),
		PeakMemBytes:  tr.PeakMemBytes(),
		OOM:           tr.OOM(),
		SizeBytes:     len(raw),
	}
	s.store.put(raw, meta)
	s.persistState()
	s.metrics.TraceUploads.Add(1)
	s.countStatus(http.StatusOK)
	writeJSON(w, http.StatusOK, meta)
}

// healthzBody is the /healthz JSON shape.
type healthzBody struct {
	Status         string                 `json:"status"` // "ok" or "draining"
	Build          buildinfo.Info         `json:"build"`
	Cluster        string                 `json:"cluster"`
	Topology       string                 `json:"topology"`
	Congestion     bool                   `json:"congestion"`
	Profile        string                 `json:"profile"`
	Workers        int                    `json:"workers"`
	UptimeS        float64                `json:"uptime_s"`
	EstimatorCache maya.CacheStats        `json:"estimator_cache"`
	CaptureCache   maya.CaptureCacheStats `json:"capture_cache"`
	TracesStored   int                    `json:"traces_stored"`

	// Resilience state: whether overload shedding is active, each
	// dependency breaker's position, how many identities have a stale
	// fallback, and what boot recovery found in the snapshot.
	Shedding        bool              `json:"shedding"`
	Breakers        map[string]string `json:"breakers"`
	DegradeEntries  int               `json:"degrade_entries"`
	TracesRecovered int               `json:"traces_recovered"`
	TracesSkipped   int               `json:"traces_skipped"`
}

// handleHealthz serves GET /healthz. A draining server answers 503 so
// load balancers stop routing to it while in-flight work completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthzBody{
		Status:         status,
		Build:          s.build,
		Cluster:        s.cfg.Cluster.Name,
		Topology:       s.pred.Topology(),
		Congestion:     s.pred.CongestionDefault(),
		Profile:        profileName(s.cfg.Profile),
		Workers:        s.pool.Workers(),
		UptimeS:        time.Since(s.started).Seconds(),
		EstimatorCache: s.pred.EstimatorCache().Stats(),
		CaptureCache:   s.pred.CaptureCache().Stats(),
		TracesStored:   s.store.len(),
		Shedding:       s.shed.Shedding(),
		Breakers: map[string]string{
			s.pbreaker.Name(): s.pbreaker.State().String(),
			s.cbreaker.Name(): s.cbreaker.State().String(),
		},
		DegradeEntries:  s.degrade.len(),
		TracesRecovered: s.snapStats.Loaded,
		TracesSkipped:   s.snapStats.Skipped,
	})
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format: serving counters, latency histograms, pool and admission
// gauges, and the estimator/capture cache stats (whose snapshots are
// lock-free, so continuous polling never contends with requests).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	var b bytes.Buffer
	counter := func(name string, v int64) { fmt.Fprintf(&b, "%s %d\n", name, v) }

	counter("maya_serve_requests_total", m.Requests.Load())
	counter("maya_serve_requests_ok_total", m.OK.Load())
	counter("maya_serve_requests_bad_input_total", m.BadInput.Load())
	counter("maya_serve_throttled_total", m.Throttled.Load())
	counter("maya_serve_rejected_total", m.Rejected.Load())
	counter("maya_serve_deadline_total", m.Deadline.Load())
	counter("maya_serve_failed_total", m.Failed.Load())
	counter("maya_panics_total", m.Panics.Load())
	counter("maya_serve_predictions_total", m.Predictions.Load())
	counter("maya_serve_predictions_executed_total", m.Executed.Load())
	counter("maya_serve_predictions_coalesced_total", m.Coalesced.Load())
	counter("maya_serve_captures_total", m.Captures.Load())
	counter("maya_serve_trace_uploads_total", m.TraceUploads.Load())
	counter("maya_serve_trace_serves_total", m.TraceServes.Load())
	counter("maya_serve_inflight", m.InFlight.Load())
	counter("maya_serve_pool_workers", int64(s.pool.Workers()))
	counter("maya_serve_pool_busy", int64(s.pool.Busy()))
	counter("maya_serve_pool_waiting", int64(s.pool.Waiting()))
	counter("maya_serve_pool_completed_total", s.pool.Completed())
	counter("maya_serve_admission_depth", int64(s.adm.Depth()))
	counter("maya_serve_admission_capacity", int64(s.adm.Capacity()))
	counter("maya_serve_traces_stored", int64(s.store.len()))
	counter("maya_serve_trace_store_evictions_total", s.store.Evictions())
	fmt.Fprintf(&b, "maya_serve_uptime_seconds %g\n", time.Since(s.started).Seconds())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	counter("maya_serve_draining", draining)

	es := s.pred.EstimatorCache().Stats()
	counter("maya_estimator_cache_hits_total", es.Hits)
	counter("maya_estimator_cache_misses_total", es.Misses)
	counter("maya_estimator_cache_trained_total", es.Trained)
	counter("maya_estimator_cache_evictions_total", es.Evictions)
	counter("maya_estimator_cache_errors_total", es.Errors)
	counter("maya_estimator_cache_entries", int64(es.Entries))

	cs := s.pred.CaptureCache().Stats()
	counter("maya_capture_cache_hits_total", cs.Hits)
	counter("maya_capture_cache_misses_total", cs.Misses)
	counter("maya_capture_cache_evictions_total", cs.Evictions)
	counter("maya_capture_cache_errors_total", cs.Errors)
	counter("maya_capture_cache_entries", int64(cs.Entries))

	// Resilience: shedding, per-dependency breakers, degradation.
	counter("maya_serve_shed_total", m.Shed.Load())
	counter("maya_serve_degraded_total", m.Degraded.Load())
	shedding := int64(0)
	if s.shed.Shedding() {
		shedding = 1
	}
	counter("maya_serve_shedding", shedding)
	for _, br := range []*Breaker{s.pbreaker, s.cbreaker} {
		fmt.Fprintf(&b, "maya_serve_breaker_state{dep=%q} %d\n", br.Name(), int(br.State()))
		fmt.Fprintf(&b, "maya_serve_breaker_trips_total{dep=%q} %d\n", br.Name(), br.Trips())
		fmt.Fprintf(&b, "maya_serve_breaker_probes_total{dep=%q} %d\n", br.Name(), br.Probes())
		fmt.Fprintf(&b, "maya_serve_breaker_recoveries_total{dep=%q} %d\n", br.Name(), br.Recoveries())
		fmt.Fprintf(&b, "maya_serve_breaker_rejected_total{dep=%q} %d\n", br.Name(), br.Rejected())
	}
	counter("maya_serve_degrade_cache_entries", int64(s.degrade.len()))
	counter("maya_serve_degrade_hits_total", s.degrade.hits.Load())
	counter("maya_serve_degrade_misses_total", s.degrade.misses.Load())
	if s.chaos != nil {
		counter("maya_serve_chaos_injected_total", s.chaos.injected.Load())
	}

	m.Latency.writeProm(&b, "maya_serve_latency_seconds")
	m.QueueWait.writeProm(&b, "maya_serve_queue_wait_seconds")
	m.QueueWaitAtReject.writeProm(&b, "maya_serve_queue_wait_at_reject_seconds")

	fmt.Fprintf(&b, "maya_serve_topology_info{topology=%q} 1\n", s.pred.Topology())
	congested := int64(0)
	if s.pred.CongestionDefault() {
		congested = 1
	}
	counter("maya_serve_congestion_enabled", congested)

	fmt.Fprintf(&b, "maya_build_info{version=%q,revision=%q} 1\n",
		s.build.Version, s.build.Revision)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(b.Bytes())
}
