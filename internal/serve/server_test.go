package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maya"
)

// smallSpec is the fast test recipe: 8 ranks, 2 unique after dedup,
// oracle annotation so no estimator training is needed.
func smallSpec() PredictSpec {
	return PredictSpec{
		Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
		Annotation: annOracle,
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Cluster: maya.DGXV100(1), Profile: maya.ProfileLLM, Workers: 4}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, v any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, val := range hdr {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestPredictEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)

	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, raw)
	}
	var res PredictResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if res.Report == nil || res.Report.IterTime <= 0 {
		t.Fatalf("implausible report: %s", raw)
	}
	if res.Report.TotalWorkers != 8 || res.Report.UniqueWorkers != 2 {
		t.Errorf("report workers = %d/%d, want 2/8", res.Report.UniqueWorkers, res.Report.TotalWorkers)
	}
	if res.Report.MFU <= 0 {
		t.Errorf("MFU not derived from the model preset: %+v", res.Report)
	}
	if res.Coalesced {
		t.Error("lone request marked coalesced")
	}

	// The HTTP answer matches the library called directly.
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	w, opts, err := spec.build(pred.Cluster())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pred.Predict(t.Context(), w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IterTime != direct.IterTime || res.Report.PeakMemBytes != direct.PeakMemBytes {
		t.Errorf("served report diverges from direct prediction:\nserved %+v\ndirect %+v", res.Report, direct)
	}
	if got := s.Metrics().OK.Load(); got != 1 {
		t.Errorf("OK counter = %d, want 1", got)
	}
}

func TestPredictBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)

	good := smallSpec()
	bad := smallSpec()
	bad.Model = "no-such-model"
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		batchEnvelope{Requests: []PredictSpec{good, bad, good}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, raw)
	}
	var br batchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(br.Results))
	}
	if br.Results[0].Report == nil || br.Results[2].Report == nil {
		t.Errorf("good specs failed: %s", raw)
	}
	if br.Results[1].Error == "" || br.Results[1].Report != nil {
		t.Errorf("bad spec did not fail in isolation: %+v", br.Results[1])
	}
}

func TestPredictValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []PredictSpec{
		{},                   // no model
		{Model: "gpt3-1.3b"}, // no batch
		{Model: "gpt3-1.3b", GlobalBatch: 16, Annotation: "psychic"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, DType: "fp64"},
		{Model: "gpt3-1.3b", GlobalBatch: 16, Cluster: "64xH100"}, // wrong cluster
	}
	for i, spec := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", spec, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400 (body %s)", i, resp.StatusCode, raw)
		}
	}
}

// TestPredictCoalescing is the acceptance test of the ISSUE: N
// concurrent identical predictions must perform exactly one capture
// and one simulate. The leader is held on its pool slot until every
// follower has provably joined the flight, so the assertion is
// deterministic, not racy.
func TestPredictCoalescing(t *testing.T) {
	const followers = 7
	s, ts := newTestServer(t, nil)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testGate = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	type answer struct {
		status int
		res    PredictResult
	}
	answers := make(chan answer, followers+1)
	post := func() {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
		var res PredictResult
		json.Unmarshal(raw, &res)
		answers <- answer{resp.StatusCode, res}
	}

	// Leader in flight, held at the gate...
	go post()
	<-entered
	// ...then the identical followers, waited into the flight.
	for i := 0; i < followers; i++ {
		go post()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.co.joins.Load() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", s.co.joins.Load(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	var iter time.Duration
	for i := 0; i < followers+1; i++ {
		a := <-answers
		if a.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, a.status)
		}
		if a.res.Report == nil {
			t.Fatalf("request %d: no report", i)
		}
		if iter == 0 {
			iter = a.res.Report.IterTime
		} else if a.res.Report.IterTime != iter {
			t.Errorf("coalesced answers disagree: %v vs %v", a.res.Report.IterTime, iter)
		}
	}

	// Exactly one execution — one capture, one simulate — served all
	// eight requests.
	if got := s.Metrics().Executed.Load(); got != 1 {
		t.Errorf("predictions executed = %d, want exactly 1", got)
	}
	if got := s.Metrics().Coalesced.Load(); got != followers {
		t.Errorf("coalesced followers = %d, want %d", got, followers)
	}
	cs := s.Predictor().CaptureCache().Stats()
	if cs.Misses != 1 {
		t.Errorf("capture cache misses = %d, want exactly 1 capture", cs.Misses)
	}
	if cs.Hits != 0 {
		t.Errorf("capture cache hits = %d, want 0 (followers never reached the cache)", cs.Hits)
	}
	if got := s.Metrics().Predictions.Load(); got != followers+1 {
		t.Errorf("predictions served = %d, want %d", got, followers+1)
	}

	// A later identical request reuses the capture (cache hit) but
	// simulates afresh: single-flight, not a result cache.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: %d (%s)", resp.StatusCode, raw)
	}
	if got := s.Predictor().CaptureCache().Stats().Hits; got != 1 {
		t.Errorf("follow-up capture cache hits = %d, want 1", got)
	}
	if got := s.Metrics().Executed.Load(); got != 2 {
		t.Errorf("executed after follow-up = %d, want 2", got)
	}
}

func TestTenantThrottling(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.TenantRate = 0.001 // effectively: the burst and nothing more
		c.TenantBurst = 2
	})

	hdrA := map[string]string{"X-Maya-Tenant": "alice"}
	for i := 0; i < 2; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), hdrA)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d (%s)", i, resp.StatusCode, raw)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/predict", smallSpec(), hdrA)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A different tenant is unaffected — that is the fairness claim.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(),
		map[string]string{"X-Maya-Tenant": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob throttled by alice's bucket: %d (%s)", resp.StatusCode, raw)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Queue = 1
	})
	release := make(chan struct{})
	s.testGate = func() { <-release }

	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
		done <- resp.StatusCode
	}()
	// Wait until the first request holds the only admission slot.
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.Depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status with full queue = %d, want 503 (%s)", resp.StatusCode, raw)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
}

func TestCaptureAndTraceRoundtrip(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Capture: run and archive.
	resp, raw := postJSON(t, ts.URL+"/v1/capture", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture status = %d (%s)", resp.StatusCode, raw)
	}
	var meta TraceMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Fingerprint == "" || meta.SizeBytes <= 0 || meta.UniqueWorkers != 2 {
		t.Fatalf("implausible capture meta: %+v", meta)
	}

	// Download: the bytes parse as a Trace with matching identity.
	get, err := http.Get(ts.URL + "/v1/traces/" + meta.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(get.Body)
	get.Body.Close()
	if err != nil || get.StatusCode != http.StatusOK {
		t.Fatalf("trace get: status %d, err %v", get.StatusCode, err)
	}
	tr, err := maya.ReadTrace(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("served trace does not parse: %v", err)
	}
	if tr.Workload() != meta.Workload || tr.TotalWorkers() != meta.TotalWorkers {
		t.Errorf("served trace identity mismatch: %v vs %+v", tr, meta)
	}

	// Unknown fingerprint is a 404.
	get404, err := http.Get(ts.URL + "/v1/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	get404.Body.Close()
	if get404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, want 404", get404.StatusCode)
	}

	// Upload: the same blob re-imports under a content fingerprint.
	up, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	upRaw, _ := io.ReadAll(up.Body)
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		t.Fatalf("trace upload: status %d (%s)", up.StatusCode, upRaw)
	}
	var upMeta TraceMeta
	if err := json.Unmarshal(upRaw, &upMeta); err != nil {
		t.Fatal(err)
	}
	if upMeta.Workload != meta.Workload {
		t.Errorf("upload meta mismatch: %+v vs %+v", upMeta, meta)
	}

	// Garbage and truncated uploads are 400s, not 500s.
	for name, body := range map[string][]byte{
		"garbage":   []byte("not a maya trace"),
		"truncated": blob[:len(blob)/2],
	} {
		up, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		up.Body.Close()
		if up.StatusCode != http.StatusBadRequest {
			t.Errorf("%s upload: status %d, want 400", name, up.StatusCode)
		}
	}
	if got := s.Metrics().TraceUploads.Load(); got != 1 {
		t.Errorf("trace uploads = %d, want 1 (rejects must not count)", got)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if _, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil); len(raw) == 0 {
		t.Fatal("no predict response")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, metric := range []string{
		"maya_serve_requests_ok_total 1",
		"maya_serve_predictions_executed_total 1",
		"maya_capture_cache_misses_total 1",
		"maya_serve_latency_seconds_count 1",
		"maya_serve_pool_workers 4",
		"maya_build_info",
		// Resilience series: breaker state per dependency, shed and
		// degraded counters, the queue-wait-at-rejection histogram and
		// the trace-store eviction counter.
		`maya_serve_breaker_state{dep="predict"} 0`,
		`maya_serve_breaker_state{dep="capture"} 0`,
		`maya_serve_breaker_trips_total{dep="predict"} 0`,
		`maya_serve_breaker_recoveries_total{dep="predict"} 0`,
		"maya_serve_shed_total 0",
		"maya_serve_degraded_total 0",
		"maya_serve_shedding 0",
		"maya_serve_queue_wait_at_reject_seconds_count 0",
		"maya_serve_trace_store_evictions_total 0",
		"maya_serve_degrade_cache_entries 1",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q\n%s", metric, text)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d (%s)", hresp.StatusCode, hraw)
	}
	var hb healthzBody
	if err := json.Unmarshal(hraw, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Cluster != "8xV100" || hb.Workers != 4 {
		t.Errorf("healthz body: %+v", hb)
	}
	if hb.Build.GoVersion == "" {
		t.Errorf("healthz missing build info: %+v", hb.Build)
	}
	if hb.CaptureCache.Misses != 1 {
		t.Errorf("healthz capture cache misses = %d, want 1", hb.CaptureCache.Misses)
	}
	if hb.Shedding {
		t.Error("healthz reports shedding on an idle server")
	}
	if hb.Breakers["predict"] != "closed" || hb.Breakers["capture"] != "closed" {
		t.Errorf("healthz breakers = %v, want both closed", hb.Breakers)
	}
	if hb.DegradeEntries != 1 {
		t.Errorf("healthz degrade entries = %d, want 1 (the predict above)", hb.DegradeEntries)
	}

	// Drain: /healthz flips to 503/"draining", predicts are refused.
	s.Drain()
	dresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	draw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503 (%s)", dresp.StatusCode, draw)
	}
	presp, praw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining predict status = %d, want 503 (%s)", presp.StatusCode, praw)
	}
}

func TestRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.DefaultDeadline = 50 * time.Millisecond
	})
	// Hold the only gate long past the deadline: the prediction's ctx
	// expires and the request answers 504.
	s.testGate = func() { time.Sleep(200 * time.Millisecond) }
	spec := smallSpec()
	resp, raw := postJSON(t, ts.URL+"/v1/predict", spec, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, raw)
	}
	if got := s.Metrics().Deadline.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

func TestWarmPreload(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.Preload = []string{"8xA40/vision"}
	})
	if err := s.Warm(t.Context()); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	stats := s.Predictor().EstimatorCache().Stats()
	if stats.Trained != 2 {
		t.Fatalf("suites trained = %d, want 2 (own cluster + preload)", stats.Trained)
	}
	// Learned predictions now hit the warmed suite: no extra training.
	w, opts, err := (&PredictSpec{Model: "gpt3-1.3b", GlobalBatch: 16, TP: 2, PP: 2,
		MicroBatches: 2, Annotation: annLearned}).build(s.cfg.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predictor().Predict(t.Context(), w, opts...); err != nil {
		t.Fatal(err)
	}
	after := s.Predictor().EstimatorCache().Stats()
	if after.Trained != 2 {
		t.Errorf("learned predict retrained: %d suites", after.Trained)
	}
	if after.Hits == stats.Hits {
		t.Errorf("learned predict did not hit the warmed cache: %+v", after)
	}

	bad, _ := New(Config{Cluster: maya.DGXV100(1), Preload: []string{"9000xQPU"}})
	if err := bad.Warm(t.Context()); err == nil {
		t.Error("Warm accepted an unparseable preload entry")
	}
}

func TestTopologyAndCongestionSurfaced(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Topology = "oversub:2"
		c.Congestion = true
	})
	if got := s.Predictor().Topology(); got != "oversub:2" {
		t.Fatalf("predictor topology = %q, want oversub:2", got)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var hb healthzBody
	if err := json.Unmarshal(hraw, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Topology != "oversub:2" || !hb.Congestion {
		t.Errorf("healthz topology/congestion = %q/%v, want oversub:2/true", hb.Topology, hb.Congestion)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mraw)
	for _, metric := range []string{
		`maya_serve_topology_info{topology="oversub:2"} 1`,
		"maya_serve_congestion_enabled 1",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q\n%s", metric, text)
		}
	}

	// Defaults: the auto fabric, congestion off.
	dflt, dts := newTestServer(t, nil)
	if got := dflt.Predictor().Topology(); got != "auto" {
		t.Errorf("default topology = %q, want auto", got)
	}
	dresp, err := http.Get(dts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	draw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	dtext := string(draw)
	for _, metric := range []string{
		`maya_serve_topology_info{topology="auto"} 1`,
		"maya_serve_congestion_enabled 0",
	} {
		if !strings.Contains(dtext, metric) {
			t.Errorf("default /metrics missing %q", metric)
		}
	}

	// An unparseable fabric spec fails at construction, not first use.
	if _, err := New(Config{Cluster: maya.DGXV100(1), Topology: "mesh:banana"}); err == nil {
		t.Error("New accepted an invalid topology spec")
	}
}
