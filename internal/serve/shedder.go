package serve

import (
	"math"
	"sync"
	"time"
)

// ShedVerdict is an admission decision from the overload shedder.
type ShedVerdict int

const (
	// ShedAdmit lets the request proceed to the worker pool.
	ShedAdmit ShedVerdict = iota
	// ShedDeadline rejects a request whose estimated queue wait
	// already exceeds its remaining deadline: it would expire in the
	// queue, so answering 429 now costs nothing and frees the queue
	// for requests that can still make it.
	ShedDeadline
	// ShedOverload rejects because queue delay has exceeded the
	// target for a sustained interval (the CoDel criterion): the
	// service is past saturation and admitting more only grows the
	// queue.
	ShedOverload
)

func (v ShedVerdict) String() string {
	switch v {
	case ShedAdmit:
		return "admit"
	case ShedDeadline:
		return "deadline"
	case ShedOverload:
		return "overload"
	}
	return "invalid"
}

// Shedder is queue-delay-based admission control, CoDel-style: the
// controlled variable is *estimated queueing delay*, not queue
// length, so the policy adapts to how expensive predictions currently
// are. The estimate is depth beyond the worker count times the
// EWMA-smoothed service time divided by workers — how long a new
// arrival would wait for a pool slot.
//
// Two rules shed:
//
//   - Deadline-aware early rejection: if the estimate exceeds the
//     request's remaining deadline, the request is doomed — reject
//     immediately with 429/Retry-After instead of letting it expire
//     in the queue (a 504 after burning a slot).
//   - Sustained overload: when the estimate stays above the target
//     delay for a full interval, the shedder enters shedding state
//     and rejects every arrival whose wait estimate is still above
//     target, capping the standing queue at roughly target×capacity.
//     The state clears as soon as the estimate drops back under the
//     target — transient bursts shorter than the interval are
//     absorbed by the queue, exactly CoDel's good-queue/bad-queue
//     distinction.
//
// The clock is injectable for deterministic tests and the
// virtual-time resilience harness.
type Shedder struct {
	target   time.Duration // queue delay to keep under
	interval time.Duration // how long delay must exceed target before shedding
	now      func() time.Time

	mu         sync.Mutex
	avgSvcNS   float64   // EWMA of observed service time
	aboveSince time.Time // zero when the estimate is under target
	shedding   bool
}

// ewmaAlpha weights new service-time observations; 1/8 follows the
// TCP RTT estimator.
const ewmaAlpha = 0.125

// NewShedder builds a shedder with the given target queue delay
// (minimum 1ms) and sustained-overload interval (minimum the target).
func NewShedder(target, interval time.Duration) *Shedder {
	if target < time.Millisecond {
		target = time.Millisecond
	}
	if interval < target {
		interval = target
	}
	return &Shedder{target: target, interval: interval, now: time.Now}
}

// Observe feeds one completed prediction's service time into the
// EWMA.
func (s *Shedder) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.avgSvcNS == 0 {
		s.avgSvcNS = float64(d.Nanoseconds())
		return
	}
	s.avgSvcNS += ewmaAlpha * (float64(d.Nanoseconds()) - s.avgSvcNS)
}

// AvgService reports the smoothed service-time estimate (zero until
// the first observation).
func (s *Shedder) AvgService() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.avgSvcNS)
}

// EstimateWait estimates how long a new arrival would wait for a pool
// slot, given how many requests are currently in the system (admitted
// and unfinished) and the worker count: the depth beyond the workers,
// served at avg-service per worker. Zero until the first service-time
// observation.
func (s *Shedder) EstimateWait(inSystem, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	queued := inSystem - workers
	if queued <= 0 {
		return 0
	}
	s.mu.Lock()
	avg := s.avgSvcNS
	s.mu.Unlock()
	return time.Duration(avg * float64(queued) / float64(workers))
}

// Decide returns the admission verdict for a request with the given
// estimated queue wait and remaining deadline (0 = no deadline
// known). It also advances the overload state machine — Decide is the
// shedder's clock tick, called once per arriving prediction.
func (s *Shedder) Decide(est, remaining time.Duration) ShedVerdict {
	if remaining > 0 && est > remaining {
		return ShedDeadline
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if est > s.target {
		if s.aboveSince.IsZero() {
			s.aboveSince = now
		}
		if !s.shedding && now.Sub(s.aboveSince) >= s.interval {
			s.shedding = true
		}
	} else {
		s.aboveSince = time.Time{}
		s.shedding = false
	}
	if s.shedding {
		return ShedOverload
	}
	return ShedAdmit
}

// Shedding reports whether the shedder is currently in sustained
// overload state.
func (s *Shedder) Shedding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedding
}

// Target is the configured queue-delay target.
func (s *Shedder) Target() time.Duration { return s.target }

// retryAfterS converts a queue-wait estimate into a Retry-After hint
// in whole seconds (minimum 1).
func retryAfterS(est time.Duration) int {
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
