package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestShedderEWMAAndEstimate(t *testing.T) {
	s := NewShedder(100*time.Millisecond, time.Second)

	// No observations yet: the estimate is zero, so boot-time traffic
	// is never shed on a cold estimator.
	if got := s.EstimateWait(100, 4); got != 0 {
		t.Fatalf("cold estimate = %v, want 0", got)
	}

	s.Observe(40 * time.Millisecond)
	if got := s.AvgService(); got != 40*time.Millisecond {
		t.Fatalf("first observation avg = %v, want 40ms", got)
	}
	// EWMA: 40 + 0.125*(120-40) = 50ms.
	s.Observe(120 * time.Millisecond)
	if got := s.AvgService(); got != 50*time.Millisecond {
		t.Fatalf("avg after second observation = %v, want 50ms", got)
	}

	// 12 in system, 4 workers: 8 queued, served 4-wide at 50ms each →
	// 100ms wait.
	if got := s.EstimateWait(12, 4); got != 100*time.Millisecond {
		t.Fatalf("estimate = %v, want 100ms", got)
	}
	// At or under the worker count nothing queues.
	if got := s.EstimateWait(4, 4); got != 0 {
		t.Fatalf("estimate with free workers = %v, want 0", got)
	}
}

func TestShedderDeadlineVerdict(t *testing.T) {
	s := NewShedder(100*time.Millisecond, time.Second)
	// A request whose estimated wait exceeds its remaining deadline is
	// doomed: shed immediately, regardless of overload state.
	if got := s.Decide(300*time.Millisecond, 200*time.Millisecond); got != ShedDeadline {
		t.Fatalf("verdict = %v, want deadline", got)
	}
	// Enough deadline left: admitted (no sustained overload yet).
	if got := s.Decide(300*time.Millisecond, 2*time.Second); got != ShedAdmit {
		t.Fatalf("verdict = %v, want admit", got)
	}
	// No deadline known: the deadline rule never fires.
	if got := s.Decide(300*time.Millisecond, 0); got != ShedAdmit {
		t.Fatalf("verdict with no deadline = %v, want admit", got)
	}
}

// TestShedderSustainedOverload exercises the CoDel criterion on an
// injected clock: above-target estimates must persist for the full
// interval before shedding starts, and shedding stops the moment the
// estimate drops back under target.
func TestShedderSustainedOverload(t *testing.T) {
	clk := newBreakerClock()
	s := NewShedder(100*time.Millisecond, time.Second)
	s.now = clk.now

	over := 150 * time.Millisecond
	under := 50 * time.Millisecond

	// A transient burst shorter than the interval is absorbed.
	if got := s.Decide(over, 0); got != ShedAdmit {
		t.Fatalf("first above-target tick = %v, want admit", got)
	}
	clk.advance(500 * time.Millisecond)
	if got := s.Decide(over, 0); got != ShedAdmit {
		t.Fatalf("mid-interval tick = %v, want admit", got)
	}
	clk.advance(400 * time.Millisecond)
	if got := s.Decide(under, 0); got != ShedAdmit {
		t.Fatalf("burst ended = %v, want admit", got)
	}
	if s.Shedding() {
		t.Fatal("shedding after a sub-interval burst")
	}

	// Sustained overload: above target for >= interval flips the state.
	for i := 0; i < 3; i++ {
		if got := s.Decide(over, 0); got != ShedAdmit {
			t.Fatalf("tick %d before interval elapsed = %v, want admit", i, got)
		}
		clk.advance(400 * time.Millisecond)
	}
	if got := s.Decide(over, 0); got != ShedOverload {
		t.Fatalf("verdict after sustained overload = %v, want overload", got)
	}
	if !s.Shedding() {
		t.Fatal("Shedding() false while shedding")
	}
	// Still above target: keeps shedding without waiting again.
	clk.advance(10 * time.Millisecond)
	if got := s.Decide(over, 0); got != ShedOverload {
		t.Fatal("shedding state did not persist above target")
	}

	// Estimate back under target: shedding clears immediately.
	if got := s.Decide(under, 0); got != ShedAdmit {
		t.Fatalf("verdict after recovery = %v, want admit", got)
	}
	if s.Shedding() {
		t.Fatal("shedding did not clear when the estimate recovered")
	}
}

// TestShedOverHTTP drives the deadline-aware shed path end to end: a
// request whose estimated queue wait exceeds its deadline_ms answers
// 429 with Retry-After and X-Maya-Shed before touching the queue —
// and the same doomed request answers a degraded 200 instead when its
// identity has a stale result.
func TestShedOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Workers = 1 })

	// A healthy request seeds the degrade cache for its identity.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", smallSpec(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup predict: %d (%s)", resp.StatusCode, raw)
	}
	// Make the service look expensive (10s per prediction) and occupy
	// the only worker, so any queued arrival faces a hopeless wait.
	s.shed.mu.Lock()
	s.shed.avgSvcNS = float64((10 * time.Second).Nanoseconds())
	s.shed.mu.Unlock()
	release := make(chan struct{})
	var relOnce sync.Once
	releaseHolder := func() { relOnce.Do(func() { close(release) }) }
	defer releaseHolder()
	s.testGate = func() { <-release }
	holder := smallSpec()
	holder.MicroBatches = 4
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		postJSON(t, ts.URL+"/v1/predict", holder, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.Depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// An uncached identity with a tight deadline: shed with 429,
	// Retry-After from the wait estimate, verdict in X-Maya-Shed.
	doomed := smallSpec()
	doomed.MicroBatches = 8
	doomed.DeadlineMS = 500
	resp, raw = postJSON(t, ts.URL+"/v1/predict", doomed, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed request status = %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Maya-Shed"); got != "deadline" {
		t.Errorf("X-Maya-Shed = %q, want deadline", got)
	}
	if got := resp.Header.Get("Retry-After"); got != "10" {
		t.Errorf("Retry-After = %q, want 10 (the 10s wait estimate)", got)
	}

	// The cached identity with the same tight deadline degrades to a
	// stale 200 instead.
	cached := smallSpec()
	cached.DeadlineMS = 500
	resp, raw = postJSON(t, ts.URL+"/v1/predict", cached, nil)
	var res PredictResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !res.Degraded || res.Report == nil {
		t.Fatalf("cached doomed request: status %d, degraded %v (%s)", resp.StatusCode, res.Degraded, raw)
	}

	if got := s.metrics.Shed.Load(); got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}
	if got := s.metrics.QueueWaitAtReject.total.Load(); got != 2 {
		t.Errorf("queue-wait-at-reject samples = %d, want 2", got)
	}
	if got := s.metrics.Degraded.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	releaseHolder()
	<-holderDone
}

func TestRetryAfterS(t *testing.T) {
	cases := []struct {
		est  time.Duration
		want int
	}{
		{0, 1},
		{200 * time.Millisecond, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := retryAfterS(c.est); got != c.want {
			t.Errorf("retryAfterS(%v) = %d, want %d", c.est, got, c.want)
		}
	}
}
