package serve

import (
	"fmt"
	"strings"

	"maya"
	"maya/internal/models"
	"maya/internal/workload"
)

// PredictSpec is the wire form of one prediction (or capture)
// request: a Megatron-style recipe by model preset name, plus the
// per-call knobs of the prediction. The service fronts one cluster;
// the spec's world size is always that cluster's GPU count, so the
// same spec is portable across deployments. Cluster, when set, is an
// assertion: a spec pinned to a different cluster than the server's
// is rejected rather than silently re-targeted.
type PredictSpec struct {
	// Cluster optionally asserts which cluster the caller believes it
	// is talking to (e.g. "32xH100").
	Cluster string `json:"cluster,omitempty"`

	// Model is a preset name (gpt3-1.3b, gpt3-18.4b, llama2-7b, ...).
	Model string `json:"model"`
	// GlobalBatch is the global batch size in sequences.
	GlobalBatch int `json:"global_batch"`
	// TP, PP, MicroBatches, VirtualStages shape the parallelism.
	TP            int `json:"tp,omitempty"`
	PP            int `json:"pp,omitempty"`
	MicroBatches  int `json:"micro_batches,omitempty"`
	VirtualStages int `json:"virtual_stages,omitempty"`
	// SeqParallel, ActRecompute, DistOptimizer are the recipe toggles.
	SeqParallel   bool `json:"seq_parallel,omitempty"`
	ActRecompute  bool `json:"act_recompute,omitempty"`
	DistOptimizer bool `json:"dist_optimizer,omitempty"`

	// Annotation selects kernel-time annotation: "learned" (default),
	// "oracle", "physical" or "netsim".
	Annotation string `json:"annotation,omitempty"`
	// DType is the training precision MFU normalizes by: "bf16"
	// (default), "fp16" or "fp32".
	DType string `json:"dtype,omitempty"`
	// FLOPs overrides the per-iteration model FLOPs; 0 derives it from
	// the model preset, so MFU is reported by default.
	FLOPs float64 `json:"flops,omitempty"`
	// Seed namespaces the synthetic silicon's measurement randomness.
	Seed uint64 `json:"seed,omitempty"`
	// DeadlineMS bounds this request's wall clock; 0 uses the server
	// default, and values above the server maximum are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Annotation modes.
const (
	annLearned  = "learned"
	annOracle   = "oracle"
	annPhysical = "physical"
	annNetsim   = "netsim"
)

// normalize fills defaults and validates enumerations; it does not
// touch recipe arithmetic (NewMegatron owns that).
func (s *PredictSpec) normalize() error {
	if s.Model == "" {
		return fmt.Errorf("missing model")
	}
	if s.GlobalBatch <= 0 {
		return fmt.Errorf("global_batch must be positive, got %d", s.GlobalBatch)
	}
	if s.TP <= 0 {
		s.TP = 1
	}
	if s.PP <= 0 {
		s.PP = 1
	}
	if s.MicroBatches <= 0 {
		s.MicroBatches = 1
	}
	if s.VirtualStages <= 0 {
		s.VirtualStages = 1
	}
	switch s.Annotation {
	case "":
		s.Annotation = annLearned
	case annLearned, annOracle, annPhysical, annNetsim:
	default:
		return fmt.Errorf("unknown annotation %q (have learned, oracle, physical, netsim)", s.Annotation)
	}
	switch strings.ToLower(s.DType) {
	case "":
		s.DType = string(maya.BF16)
	case string(maya.BF16), string(maya.FP16), string(maya.FP32):
		s.DType = strings.ToLower(s.DType)
	default:
		return fmt.Errorf("unknown dtype %q (have bf16, fp16, fp32)", s.DType)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be non-negative, got %d", s.DeadlineMS)
	}
	return nil
}

// build materializes the spec against the serving cluster: the
// workload, the per-iteration FLOPs, and the PredictOptions of the
// call. Specs asserting a different cluster fail here.
func (s *PredictSpec) build(cluster maya.Cluster) (maya.Workload, []maya.PredictOption, error) {
	if err := s.normalize(); err != nil {
		return nil, nil, err
	}
	if s.Cluster != "" && s.Cluster != cluster.Name {
		return nil, nil, fmt.Errorf("spec targets cluster %q but this server models %q", s.Cluster, cluster.Name)
	}
	mdl, err := models.ByName(s.Model)
	if err != nil {
		return nil, nil, err
	}
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: mdl, NGPUs: cluster.TotalGPUs(), GlobalBatch: s.GlobalBatch,
		TP: s.TP, PP: s.PP, MicroBatches: s.MicroBatches, VirtualStages: s.VirtualStages,
		SeqParallel: s.SeqParallel, ActRecompute: s.ActRecompute, DistOptimizer: s.DistOptimizer,
	})
	if err != nil {
		return nil, nil, err
	}
	flops := s.FLOPs
	if flops == 0 {
		flops = mdl.TrainFLOPsPerIter(s.GlobalBatch)
	}
	opts := []maya.PredictOption{
		maya.WithModelFLOPs(flops),
		maya.WithDType(maya.DType(s.DType)),
	}
	switch s.Annotation {
	case annOracle:
		opts = append(opts, maya.WithOracleAnnotation())
	case annPhysical:
		opts = append(opts, maya.WithPhysicalReplay())
	case annNetsim:
		opts = append(opts, maya.WithNetSim())
	}
	if s.Seed != 0 {
		opts = append(opts, maya.WithSeed(s.Seed))
	}
	return w, opts, nil
}

// predictKey is the coalescing identity of the full prediction: the
// workload's canonical capture fingerprint plus every knob that can
// change the simulated result. Two requests with equal keys are
// interchangeable, so concurrent ones share one capture AND one
// simulate.
func (s *PredictSpec) predictKey(cluster maya.Cluster, w maya.Workload) string {
	fp := "nofp:" + s.Model // workloads are always Megatron here, but stay safe
	if f, ok := w.(workload.Fingerprinter); ok {
		fp = f.Fingerprint()
	}
	return fmt.Sprintf("%s|cluster=%s|ann=%s|dtype=%s|flops=%g|seed=%d",
		fp, cluster.Name, s.Annotation, s.DType, s.FLOPs, s.Seed)
}

// captureKey is the trace-store identity of the spec's capture:
// everything capture-relevant, nothing annotation-specific.
func (s *PredictSpec) captureKey(cluster maya.Cluster, w maya.Workload) string {
	fp := "nofp:" + s.Model
	if f, ok := w.(workload.Fingerprinter); ok {
		fp = f.Fingerprint()
	}
	return fmt.Sprintf("%s|cluster=%s|seed=%d", fp, cluster.Name, s.Seed)
}
