package serve

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
)

// TraceMeta describes one stored trace, the JSON shape /v1/capture
// and /v1/traces answer with.
type TraceMeta struct {
	// Fingerprint is the opaque handle GET /v1/traces/{fingerprint}
	// accepts.
	Fingerprint string `json:"fingerprint"`
	// Workload and Cluster identify what was captured where.
	Workload string `json:"workload"`
	Cluster  string `json:"cluster"`
	// TotalWorkers / UniqueWorkers are the world size and the ranks
	// actually emulated after dedup.
	TotalWorkers  int `json:"total_workers"`
	UniqueWorkers int `json:"unique_workers"`
	// PeakMemBytes / OOM carry the memory verdict.
	PeakMemBytes int64 `json:"peak_mem_bytes"`
	OOM          bool  `json:"oom,omitempty"`
	// SizeBytes is the serialized trace size.
	SizeBytes int `json:"size_bytes"`
}

// traceStore is a bounded LRU of serialized traces keyed by
// fingerprint: captures made through /v1/capture and uploads accepted
// by POST /v1/traces, served back by GET /v1/traces/{fingerprint}.
// Entries hold the serialized bytes (immutable), so serving a trace
// is one map lookup and one write.
type traceStore struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	// evictions counts entries dropped at capacity; onEvict, when
	// set, observes each one (metrics + logging — it must not
	// re-enter the store, as it runs under the lock).
	evictions atomic.Int64
	onEvict   func(meta TraceMeta)
}

type storedTrace struct {
	raw  []byte
	meta TraceMeta
}

// newTraceStore returns an empty store bounded to maxEntries
// (minimum 1).
func newTraceStore(maxEntries int) *traceStore {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &traceStore{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// put stores a serialized trace under its fingerprint, evicting the
// least-recently-used entries beyond capacity. Re-putting an existing
// fingerprint refreshes it.
func (s *traceStore) put(raw []byte, meta TraceMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[meta.Fingerprint]; ok {
		el.Value = &storedTrace{raw: raw, meta: meta}
		s.lru.MoveToFront(el)
		return
	}
	s.entries[meta.Fingerprint] = s.lru.PushFront(&storedTrace{raw: raw, meta: meta})
	for s.lru.Len() > s.max {
		back := s.lru.Back()
		s.lru.Remove(back)
		evicted := back.Value.(*storedTrace).meta
		delete(s.entries, evicted.Fingerprint)
		s.evictions.Add(1)
		if s.onEvict != nil {
			s.onEvict(evicted)
		}
	}
}

// Evictions counts entries dropped at capacity since boot.
func (s *traceStore) Evictions() int64 { return s.evictions.Load() }

// get returns the stored trace for a fingerprint, refreshing its
// recency.
func (s *traceStore) get(fp string) (*storedTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[fp]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*storedTrace), true
}

// len reports how many traces are stored.
func (s *traceStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// fingerprintOf derives the opaque store handle from any canonical
// identity string (a capture key, or raw uploaded bytes).
func fingerprintOf(identity []byte) string {
	h := fnv.New64a()
	h.Write(identity)
	return strconv.FormatUint(h.Sum64(), 16)
}
