// Package silicon is the synthetic hardware that stands in for the
// paper's real GPU clusters (see DESIGN.md, substitutions). It plays
// three roles:
//
//   - ground truth: a deterministic timing oracle maps every kernel,
//     memory operation and collective to its "true" duration on a
//     given cluster — a roofline model dressed with per-architecture
//     quirks, tile-quantization effects and size-dependent
//     inefficiencies that a learned estimator can mostly, but not
//     fully, recover;
//   - profiler: Measure adds measurement noise on top of the truth,
//     producing the microbenchmark samples estimators train on
//     (Maya's transparent profiling mode);
//   - deployment: Annotate + the simulator's physical mode (launch
//     jitter, SM contention) realize "run the workload on the real
//     cluster and time it", the baseline every prediction experiment
//     compares against.
//
// The oracle is intentionally *not* importable by the estimator
// training features: estimators see only profiled samples, never the
// formula, mirroring the epistemic position of the real system.
package silicon

import (
	"context"
	"math"
	"time"

	"maya/internal/hardware"
	"maya/internal/prand"
	"maya/internal/sim"
	"maya/internal/trace"
)

// DefaultSeed is the canonical silicon seed: every experiment models
// the same "hardware", and systems that profile real machines (Maya's
// estimators, Proteus) observe the same truth.
const DefaultSeed uint64 = 0xC1A0

// Oracle produces ground-truth timings for one cluster.
type Oracle struct {
	cluster hardware.Cluster
	seed    uint64
}

// NewOracle builds the timing oracle. The seed shapes the hidden
// quirk structure: different seeds are "different silicon".
func NewOracle(cluster hardware.Cluster, seed uint64) *Oracle {
	return &Oracle{cluster: cluster, seed: seed}
}

// Cluster returns the modeled cluster.
func (o *Oracle) Cluster() hardware.Cluster { return o.cluster }

// kernelClass buckets kernels by execution character.
type kernelClass int

const (
	classGemm kernelClass = iota
	classConv
	classNorm
	classSoftmax
	classElementwise
	classReduce
	classEmbedding
	classSort
	classTriton
	classLoss
	classPool
	classOther
)

func classify(name string) kernelClass {
	switch name {
	case "cublasSgemm_v2", "cublasGemmEx", "cublasSgemmStridedBatched", "cublasLtMatmul":
		return classGemm
	case "cudnnConvolutionForward", "cudnnConvolutionBackwardData", "cudnnConvolutionBackwardFilter":
		return classConv
	case "cuApplyLayerNorm", "cuComputeGradInput", "cuComputePartGradGammaBeta",
		"cuComputeGradGammaBeta", "batchnorm_fwd", "batchnorm_bwd":
		return classNorm
	case "masked_softmax_warp_forward", "masked_softmax_warp_backward",
		"scaled_masked_softmax_warp_forward", "scaled_masked_softmax_warp_backward",
		"softmax_warp_forward", "softmax_warp_backward":
		return classSoftmax
	case "vectorized_elementwise_kernel", "unrolled_elementwise_kernel", "elementwise_kernel",
		"elementwise_kernel_with_index", "fused_dropout_kernel_vec", "triu_tril_kernel",
		"index_elementwise_kernel", "CatArrayBatchedCopy", "CatArrayBatchedCopy_aligned16_contig",
		"distribution_elementwise_grid_stride_kernel":
		return classElementwise
	case "reduce_kernel", "multi_tensor_apply_kernel", "tensor_kernel_scan_innermost_dim":
		return classReduce
	case "indexSelectLargeIndex", "compute_grad_weight", "sum_and_scatter",
		"krn_partial_segment_offset", "krn_partials_per_segment",
		"compute_num_of_partial_segments", "write_num_of_segments":
		return classEmbedding
	case "RadixSortOnesweepKernel", "RadixSortHistogramKernel", "RadixSortExclusiveSumKernel",
		"at_cuda_detailcubDeviceScanKernel", "at_cuda_detailcubDeviceScanInitKernel",
		"thrustcuda_cubcore_kernel_agent":
		return classSort
	case "triton":
		return classTriton
	case "nll_loss_forward_reduce_cuda_kernel_2d", "nll_loss_backward_reduce_cuda_kernel_2d":
		return classLoss
	case "pooling_fwd_nhwc", "max_pool_backward_nhwc":
		return classPool
	default:
		return classOther
	}
}

// computeEff returns the fraction of peak FLOPs a class reaches on an
// architecture.
func (o *Oracle) computeEff(c kernelClass) float64 {
	arch := o.cluster.Node.GPU.Arch
	switch c {
	case classGemm:
		switch arch {
		case hardware.Hopper:
			return 0.72
		case hardware.Ampere:
			return 0.66
		default:
			return 0.62
		}
	case classConv:
		switch arch {
		case hardware.Hopper:
			return 0.58
		case hardware.Ampere:
			return 0.55
		default:
			return 0.50
		}
	case classTriton:
		return 0.45
	default:
		return 0.30
	}
}

// memEff returns the fraction of peak HBM bandwidth a class reaches.
func (o *Oracle) memEff(c kernelClass) float64 {
	switch c {
	case classElementwise, classReduce:
		return 0.78
	case classNorm, classSoftmax:
		return 0.62
	case classEmbedding:
		return 0.38
	case classSort:
		return 0.30
	case classTriton:
		return 0.80
	case classLoss, classPool:
		return 0.55
	default:
		return 0.50
	}
}

// tileUtil models tile-quantization losses for GEMM-like kernels:
// dimensions that do not fill the tensor-core tiles waste cycles.
func tileUtil(dims []int) float64 {
	// dims = [batch, m, n, k] for GEMMs; convs carry their own layout
	// and skip this (their eff already reflects implicit GEMM).
	if len(dims) < 4 {
		return 1
	}
	m, n, k := dims[1], dims[2], dims[3]
	u := func(d, tile int) float64 {
		if d <= 0 {
			return 1
		}
		full := (d + tile - 1) / tile * tile
		return float64(d) / float64(full)
	}
	util := (u(m, 128) + u(n, 128) + u(k, 64)) / 3
	// Very skinny GEMMs lose additional occupancy.
	if m < 64 || n < 64 {
		util *= 0.7
	}
	return util
}

// quirk is the hidden structure of the silicon: a smooth
// shape-dependent component (learnable from profiles) plus a rough
// component (irreducible estimator error), both deterministic in the
// seed, the architecture and the kernel identity. Short kernels are
// noisier, matching the paper's observation that tiny kernels carry
// large percentage errors.
func (o *Oracle) quirk(name string, dims []int, baseNS float64) float64 {
	h := prand.Hash64("quirk", string(o.cluster.Node.GPU.Arch), name)
	rng := prand.New(h)
	smooth := 0.0
	for i, d := range dims {
		if i >= 6 {
			break
		}
		freq := 0.5 + rng.Float64()*1.5
		phase := rng.Float64() * 2 * math.Pi
		ld := math.Log2(float64(d) + 1)
		smooth += 0.035 * math.Sin(freq*ld+phase)
	}
	// Rough component: a deterministic per-shape wiggle the regressor
	// cannot resolve. Amplitude grows as kernels shrink. This is the
	// irreducible estimator error that keeps end-to-end prediction in
	// the paper's few-percent band rather than artificially exact.
	smallness := 1.0 / (1.0 + baseNS/5000.0) // ~1 below 5us, ->0 for long kernels
	roughAmp := 0.045 + 0.12*smallness
	rh := h
	for _, d := range dims {
		rh = prand.HashInts(rh, int64(d))
	}
	rough := (prand.New(rh).Float64()*2 - 1) * roughAmp
	f := 1 + smooth + rough
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// KernelTime returns the true duration of a device op (kernel,
// memcpy or memset) on this silicon, without measurement noise.
func (o *Oracle) KernelTime(op *trace.Op) time.Duration {
	gpu := o.cluster.Node.GPU
	switch op.Kind {
	case trace.KindMemcpy:
		return o.memcpyTime(op)
	case trace.KindMemset:
		bw := gpu.MemBWGBps * 1e9 * 0.85
		ns := float64(op.Bytes)/bw*1e9 + 1500
		return time.Duration(ns)
	case trace.KindKernel:
		// handled below
	default:
		return 0
	}

	c := classify(op.Name)
	dt := hardware.DType(op.DType)
	if dt == "" {
		dt = hardware.FP32
	}
	peak := gpu.PeakTFLOPS(dt) * 1e12
	bw := gpu.MemBWGBps * 1e9

	ce := o.computeEff(c)
	if c == classGemm {
		ce *= tileUtil(op.Dims)
	}
	if c == classTriton && op.Extra != nil {
		// Fused kernels: heavier instruction mixes run slower per
		// element; the instruction count is the feature the paper
		// extracts from the compiler IR.
		if instr, ok := op.Extra["triton_instrs"]; ok && instr > 0 {
			ce /= 1 + 0.04*instr
		}
	}

	tc := 0.0
	if op.FLOPs > 0 && peak > 0 {
		tc = float64(op.FLOPs) / (peak * ce)
	}
	tm := 0.0
	if op.Bytes > 0 {
		tm = float64(op.Bytes) / (bw * o.memEff(c))
	}
	ns := math.Max(tc, tm) * 1e9
	ns += float64(gpu.LaunchOverhead.Nanoseconds())
	ns *= o.quirk(op.Name, op.Dims, ns)
	if ns < 800 {
		ns = 800 // floor: nothing completes faster than a short kernel
	}
	return time.Duration(ns)
}

func (o *Oracle) memcpyTime(op *trace.Op) time.Duration {
	node := o.cluster.Node
	var bwGBps float64
	var lat float64
	switch op.MemKind {
	case "HtoD", "DtoH":
		bwGBps = node.PCIeGBps * 0.8
		lat = 8000
	case "DtoD":
		bwGBps = node.GPU.MemBWGBps * 0.65
		lat = 2000
	default: // HtoH
		bwGBps = 20
		lat = 1000
	}
	ns := float64(op.Bytes)/(bwGBps*1e9)*1e9 + lat
	ns *= o.quirk("Memcpy"+op.MemKind, []int{int(op.Bytes >> 12)}, ns)
	return time.Duration(ns)
}

// CollectiveTime returns the true on-the-wire duration of a
// collective among the given global ranks.
func (o *Oracle) CollectiveTime(opName string, bytes int64, ranks []int) time.Duration {
	n := len(ranks)
	if n <= 1 {
		return 10 * time.Microsecond
	}
	node := o.cluster.Node
	intra := o.allSameNode(ranks)

	var busBW float64 // GB/s along the algorithm's bottleneck
	var lat float64   // ns per algorithm step
	if intra {
		busBW, lat = o.intraBus(n, ranks)
	} else {
		// Real NCCL runs the bandwidth-bound collectives
		// hierarchically when a multi-node communicator has several
		// ranks per node: an NVLink phase inside each node and an
		// inter-node phase on 1/perNode of the payload.
		if nodes := o.nodeSpan(ranks); nodes > 1 && n > nodes {
			switch opName {
			case "ncclAllReduce", "ncclAllGather", "ncclReduceScatter":
				return o.hierCollectiveTime(opName, bytes, n, nodes)
			}
		}
		busBW = node.Inter.PerGPUGBps * 0.80
		lat = float64(node.Inter.BaseLatency.Nanoseconds()) + 6000
	}

	steps := math.Ceil(math.Log2(float64(n)))
	frac := float64(n-1) / float64(n)
	var ns float64
	switch opName {
	case "ncclAllReduce":
		ns = 2 * frac * float64(bytes) / (busBW * 1e9) * 1e9
		ns += 2 * steps * lat
	case "ncclAllGather", "ncclReduceScatter":
		ns = frac * float64(bytes) * float64(n) / (busBW * 1e9) * 1e9
		ns += steps * lat
	case "ncclBroadcast":
		ns = float64(bytes)/(busBW*1e9)*1e9 + steps*lat
	case "ncclAllToAll":
		ns = 1.5*frac*float64(bytes)*float64(n)/(busBW*1e9)*1e9 + float64(n)*lat
	case "ncclSend", "ncclRecv":
		link := busBW
		if !intra {
			link = node.Inter.PerGPUGBps * 0.85
		}
		ns = float64(bytes)/(link*1e9)*1e9 + lat
	default:
		ns = frac*float64(bytes)/(busBW*1e9)*1e9 + steps*lat
	}

	// Size/participant-bucket quirks: protocol switches (LL, LL128,
	// Simple) create steps in real NCCL bandwidth curves.
	return time.Duration(ns * o.wiggle(opName, bytes, n, intra))
}

// wiggle is the size/participant-bucket quirk factor: protocol
// switches (LL, LL128, Simple) create steps in real NCCL bandwidth
// curves.
func (o *Oracle) wiggle(opName string, bytes int64, n int, intra bool) float64 {
	bucket := 0
	if bytes > 0 {
		bucket = int(math.Log2(float64(bytes))) / 2
	}
	h := prand.Hash64("coll", string(o.cluster.Node.GPU.Arch), opName)
	h = prand.HashInts(h, int64(bucket), int64(n), boolToInt(intra))
	return 1 + (prand.New(h).Float64()*2-1)*0.06
}

// intraBus returns the bus bandwidth (GB/s) and per-step latency (ns)
// of an intra-node collective among n ranks.
func (o *Oracle) intraBus(n int, ranks []int) (busBW, lat float64) {
	node := o.cluster.Node
	switch node.Topology {
	case hardware.NVSwitch:
		return node.GPU.NVLinkGBps * 0.85, 4500
	case hardware.CubeMesh:
		return node.GPU.NVLinkGBps * 0.55, 6000
	case hardware.PairwiseNVLink:
		if n == 2 && paired(ranks) {
			return node.GPU.NVLinkGBps * 0.80, 8000
		}
		return node.PCIeGBps * 0.65, 8000
	default:
		return node.PCIeGBps * 0.65, 9000
	}
}

// hierCollectiveTime is the two-phase truth for bandwidth-bound
// collectives on multi-node groups with several ranks per node:
// phase 1 inside each node over NVLink, phase 2 across nodes on
// 1/perNode of the payload.
func (o *Oracle) hierCollectiveTime(opName string, bytes int64, n, nodes int) time.Duration {
	node := o.cluster.Node
	m := (n + nodes - 1) / nodes // ranks per node
	intraBW, intraLat := o.intraBus(m, nil)
	interBW := node.Inter.PerGPUGBps * 0.80
	interLat := float64(node.Inter.BaseLatency.Nanoseconds()) + 6000
	b := float64(bytes)
	fm := float64(m-1) / float64(m)
	fn := float64(nodes-1) / float64(nodes)
	sm := math.Ceil(math.Log2(float64(m)))
	sn := math.Ceil(math.Log2(float64(nodes)))
	var ns float64
	switch opName {
	case "ncclAllReduce":
		ns = 2*fm*b/(intraBW*1e9)*1e9 + 2*sm*intraLat
		ns += 2*fn*(b/float64(m))/(interBW*1e9)*1e9 + 2*sn*interLat
	case "ncclAllGather", "ncclReduceScatter":
		out := b * float64(n)
		ns = fm*out/(intraBW*1e9)*1e9 + sm*intraLat
		ns += fn*(out/float64(m))/(interBW*1e9)*1e9 + sn*interLat
	}
	return time.Duration(ns * o.wiggle(opName, bytes, n, false))
}

// nodeSpan counts the nodes a (stride-ordered) rank set touches.
func (o *Oracle) nodeSpan(ranks []int) int {
	cnt, last := 0, -1
	for _, r := range ranks {
		if nd := o.cluster.NodeOf(r); nd != last {
			cnt++
			last = nd
		}
	}
	return cnt
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (o *Oracle) allSameNode(ranks []int) bool {
	if len(ranks) == 0 {
		return true
	}
	n0 := o.cluster.NodeOf(ranks[0])
	for _, r := range ranks[1:] {
		if o.cluster.NodeOf(r) != n0 {
			return false
		}
	}
	return true
}

// paired reports whether two ranks share a pairwise NVLink bridge
// (adjacent even/odd local ordinals).
func paired(ranks []int) bool {
	if len(ranks) != 2 {
		return false
	}
	a, b := ranks[0], ranks[1]
	if a > b {
		a, b = b, a
	}
	return a%2 == 0 && b == a+1
}

// Measure returns a profiled observation of an op: truth plus
// log-normal measurement noise, distinct per sampleID. ranks supply
// collective topology and may be nil for compute ops.
func (o *Oracle) Measure(op *trace.Op, ranks []int, sampleID int64) time.Duration {
	var truth time.Duration
	if op.Kind == trace.KindCollective {
		truth = o.CollectiveTime(op.Coll.Op, op.Coll.Bytes, ranks)
	} else {
		truth = o.KernelTime(op)
	}
	h := prand.Hash64("measure", op.Name)
	h = prand.HashInts(h, int64(op.Bytes), int64(op.FLOPs), sampleID, int64(o.seed))
	z := prand.New(h).NormFloat64()
	return time.Duration(float64(truth) * math.Exp(0.015*z))
}

// Annotate writes ground-truth durations into every device op of the
// job. comms maps communicator IDs to the ordered global ranks of
// their members and sizes to their declared sizes (both from the
// collator); membership left partial by deduplication is expanded by
// stride so collective topology stays truthful. Cancellation of ctx
// is observed between workers.
func (o *Oracle) Annotate(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int) error {
	return o.annotate(ctx, job, comms, sizes, nil)
}

// AnnotateInto is Annotate writing ground-truth durations into the
// overlay instead of the ops themselves, leaving the job immutable —
// the capture-reuse path. The overlay must be bound to this job.
func (o *Oracle) AnnotateInto(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int, ann *trace.Annotations) error {
	return o.annotate(ctx, job, comms, sizes, ann)
}

// annotate computes every device op's ground-truth duration, writing
// either into the ops (ann nil) or the overlay.
func (o *Oracle) annotate(ctx context.Context, job *trace.Job, comms map[uint64][]int, sizes map[uint64]int, ann *trace.Annotations) error {
	world := 0
	for _, w := range job.Workers {
		if w.World > world {
			world = w.World
		}
	}
	for wi, w := range job.Workers {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range w.Ops {
			op := &w.Ops[i]
			var d time.Duration
			switch op.Kind {
			case trace.KindKernel, trace.KindMemcpy, trace.KindMemset:
				d = o.KernelTime(op)
			case trace.KindCollective:
				if op.Coll.Seq < 0 {
					continue
				}
				ranks := trace.ExpandRanks(comms[op.Coll.CommID], sizes[op.Coll.CommID], world)
				if len(ranks) == 0 {
					ranks = trace.ExpandRanks([]int{w.Rank}, op.Coll.NRanks, world)
				}
				d = o.CollectiveTime(op.Coll.Op, op.Coll.Bytes, ranks)
			default:
				continue
			}
			if ann != nil {
				ann.Set(wi, op.Seq, d)
			} else {
				op.Dur = d
			}
		}
	}
	return nil
}

// PhysicalOptions returns the simulator options for "actual"
// deployment runs: effects present on hardware that Maya's predictor
// intentionally omits (§8 of the paper).
func PhysicalOptions(seed uint64, participants map[trace.CollKey]int) sim.Options {
	return sim.Options{
		Participants:   participants,
		JitterFrac:     0.012,
		CommContention: 0.06,
		Seed:           seed,
	}
}

// MeasureActual is "deploy the job on the cluster and time it": the
// trace is annotated with ground truth and replayed in physical mode
// on a pooled engine. The job itself is never mutated: ground truth
// lands in a pooled duration overlay the simulator reads through
// (falling back to annotating a deep copy for jobs the overlay cannot
// index). An optional observer (nil for none) watches the replay.
// Cancelling ctx aborts both the annotation and the replay.
func MeasureActual(ctx context.Context, job *trace.Job, oracle *Oracle, comms map[uint64][]int, sizes map[uint64]int, participants map[trace.CollKey]int, seed uint64, obs sim.Observer) (*sim.Report, error) {
	opts := PhysicalOptions(seed, participants)
	opts.Observer = obs
	ann := trace.AcquireAnnotations(job)
	defer ann.Release()
	actual := job
	if ann == nil {
		actual = job.Clone()
	}
	if err := oracle.annotate(ctx, actual, comms, sizes, ann); err != nil {
		return nil, err
	}
	opts.Annotations = ann
	return sim.RunPooled(ctx, actual, opts)
}
