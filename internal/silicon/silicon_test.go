package silicon

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"maya/internal/hardware"
	"maya/internal/trace"
)

func gemmOp(m, n, k int, dtype string) *trace.Op {
	return &trace.Op{
		Kind: trace.KindKernel, Name: "cublasGemmEx",
		Dims:  []int{1, m, n, k},
		FLOPs: 2 * int64(m) * int64(n) * int64(k),
		Bytes: 2 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)),
		DType: dtype,
	}
}

func TestKernelTimeDeterministic(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	op := gemmOp(1024, 1024, 1024, "bf16")
	if o.KernelTime(op) != o.KernelTime(op) {
		t.Fatal("oracle not deterministic")
	}
}

func TestKernelTimeScalesWithWork(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	small := o.KernelTime(gemmOp(512, 512, 512, "bf16"))
	big := o.KernelTime(gemmOp(4096, 4096, 4096, "bf16"))
	// 512x more FLOPs; the small GEMM is floored by launch overhead,
	// so expect a large but sub-512x ratio.
	if big < 40*small {
		t.Fatalf("big gemm %v not ≫ small %v", big, small)
	}
	// The large GEMM must sit near its roofline: 2*4096^3 flops at
	// ~70% of 989 TFLOPS is ~200us; accept a 2x band for quirks.
	if big < 100*time.Microsecond || big > 400*time.Microsecond {
		t.Fatalf("4096^3 bf16 gemm = %v, outside plausible H100 band", big)
	}
}

func TestArchitecturesDiffer(t *testing.T) {
	h100 := NewOracle(hardware.DGXH100(1), DefaultSeed)
	v100 := NewOracle(hardware.DGXV100(1), DefaultSeed)
	op := gemmOp(4096, 4096, 4096, "bf16")
	th, tv := h100.KernelTime(op), v100.KernelTime(op)
	// H100 bf16 is ~35x V100's emulated bf16 peak; allow a wide band.
	if float64(tv)/float64(th) < 10 {
		t.Fatalf("V100 %v vs H100 %v: ratio %0.1f too small", tv, th, float64(tv)/float64(th))
	}
	// fp16 runs on V100 tensor cores: much faster than V100 bf16.
	tvFP16 := v100.KernelTime(gemmOp(4096, 4096, 4096, "fp16"))
	if float64(tv)/float64(tvFP16) < 2 {
		t.Fatalf("V100 bf16 %v should be ≫ fp16 %v", tv, tvFP16)
	}
}

func TestShortKernelsFloored(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	op := &trace.Op{Kind: trace.KindKernel, Name: "elementwise_kernel", Bytes: 64, DType: "bf16"}
	if d := o.KernelTime(op); d < 500*time.Nanosecond {
		t.Fatalf("kernel %v below launch floor", d)
	}
}

func TestCollectiveScaling(t *testing.T) {
	o := NewOracle(hardware.DGXH100(8), DefaultSeed)
	intra := []int{0, 1, 2, 3, 4, 5, 6, 7}
	inter := []int{0, 8, 16, 24}
	small := o.CollectiveTime("ncclAllReduce", 1<<20, intra)
	big := o.CollectiveTime("ncclAllReduce", 1<<30, intra)
	if big < 100*small {
		t.Fatalf("1GiB allreduce %v not ≫ 1MiB %v", big, small)
	}
	intraT := o.CollectiveTime("ncclAllReduce", 1<<28, intra)
	interT := o.CollectiveTime("ncclAllReduce", 1<<28, inter)
	if interT < 3*intraT {
		t.Fatalf("inter-node %v should be ≫ NVSwitch %v", interT, intraT)
	}
}

func TestPairwiseNVLinkTopology(t *testing.T) {
	o := NewOracle(hardware.A40Node(), DefaultSeed)
	paired := o.CollectiveTime("ncclAllReduce", 1<<26, []int{0, 1})
	unpaired := o.CollectiveTime("ncclAllReduce", 1<<26, []int{0, 2})
	if unpaired < 2*paired {
		t.Fatalf("cross-pair allreduce %v should be ≫ NVLink pair %v", unpaired, paired)
	}
}

func TestSingleRankCollectiveTrivial(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	if d := o.CollectiveTime("ncclAllReduce", 1<<30, []int{3}); d > 100*time.Microsecond {
		t.Fatalf("1-rank collective = %v", d)
	}
}

func TestMeasurementNoiseSmallAndSeeded(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	op := gemmOp(2048, 2048, 2048, "bf16")
	truth := o.KernelTime(op)
	var worst float64
	for i := int64(0); i < 100; i++ {
		m := o.Measure(op, nil, i)
		rel := math.Abs(float64(m-truth)) / float64(truth)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.10 {
		t.Fatalf("measurement noise %0.1f%% too large", worst*100)
	}
	if o.Measure(op, nil, 1) == o.Measure(op, nil, 2) {
		t.Fatal("sample ids should vary measurements")
	}
	if o.Measure(op, nil, 1) != o.Measure(op, nil, 1) {
		t.Fatal("same sample id must reproduce")
	}
}

func TestMemcpyTimes(t *testing.T) {
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	h2d := o.KernelTime(&trace.Op{Kind: trace.KindMemcpy, Name: "MemcpyHtoD", MemKind: "HtoD", Bytes: 1 << 30})
	d2d := o.KernelTime(&trace.Op{Kind: trace.KindMemcpy, Name: "MemcpyDtoD", MemKind: "DtoD", Bytes: 1 << 30})
	if h2d < 5*d2d {
		t.Fatalf("PCIe copy %v should be ≫ HBM copy %v", h2d, d2d)
	}
}

func TestAnnotateFillsDeviceWork(t *testing.T) {
	w := &trace.Worker{Rank: 0, World: 2}
	w.Append(*gemmOp(256, 256, 256, "bf16"))
	w.Append(trace.Op{Kind: trace.KindHostDelay, Dur: time.Microsecond})
	w.Append(trace.Op{Kind: trace.KindCollective, Coll: &trace.Collective{
		Op: "ncclAllReduce", CommID: 5, Seq: 0, NRanks: 2, Rank: 0, Peer: -1, Bytes: 1 << 20}})
	job, err := trace.NewJob([]*trace.Worker{w})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	o.Annotate(context.Background(), job, map[uint64][]int{5: {0, 1}}, map[uint64]int{5: 2})
	if job.Workers[0].Ops[0].Dur == 0 {
		t.Fatal("kernel not annotated")
	}
	if job.Workers[0].Ops[1].Dur != time.Microsecond {
		t.Fatal("host delay must be preserved")
	}
	if job.Workers[0].Ops[2].Dur == 0 {
		t.Fatal("collective not annotated")
	}
}

func TestAnnotateExpandsPartialMembership(t *testing.T) {
	// Only one member of a declared 4-rank comm is present (dedup):
	// the collective must still be timed as a 4-rank group, not a
	// trivial singleton.
	w := &trace.Worker{Rank: 0, World: 16}
	w.Append(trace.Op{Kind: trace.KindCollective, Coll: &trace.Collective{
		Op: "ncclAllReduce", CommID: 5, Seq: 0, NRanks: 4, Rank: 0, Peer: -1, Bytes: 1 << 26}})
	job, _ := trace.NewJob([]*trace.Worker{w})
	o := NewOracle(hardware.DGXV100(2), DefaultSeed)
	o.Annotate(context.Background(), job, map[uint64][]int{5: {0}}, map[uint64]int{5: 4})
	got := job.Workers[0].Ops[0].Dur
	want := o.CollectiveTime("ncclAllReduce", 1<<26, []int{0, 4, 8, 12})
	if got != want {
		t.Fatalf("partial membership time %v, want expanded-group %v", got, want)
	}
	if got < 10*time.Microsecond*2 {
		t.Fatal("collective degenerated to singleton timing")
	}
}

func TestQuirkBounded(t *testing.T) {
	// Property: ground truth never deviates unboundedly from the
	// roofline — quirks stay within a sane envelope.
	o := NewOracle(hardware.DGXH100(1), DefaultSeed)
	if err := quick.Check(func(mRaw, nRaw, kRaw uint16) bool {
		m := int(mRaw%4096) + 64
		n := int(nRaw%4096) + 64
		k := int(kRaw%4096) + 64
		op := gemmOp(m, n, k, "bf16")
		d := o.KernelTime(op)
		gpu := hardware.H100()
		ideal := float64(op.FLOPs) / (gpu.PeakTFLOPS(hardware.BF16) * 1e12)
		// Never faster than ideal peak, never 100x slower.
		return d.Seconds() >= ideal*0.9 && d.Seconds() < ideal*100+1e-3
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
