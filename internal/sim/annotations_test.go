package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"maya/internal/trace"
)

// overlayJob builds a small two-worker job with event sync, a
// collective and host delays — every duration source the engine
// reads — left unannotated.
func overlayJob(t *testing.T) *trace.Job {
	t.Helper()
	mkWorker := func(rank int) *trace.Worker {
		w := &trace.Worker{Rank: rank, World: 2}
		w.Append(trace.Op{Kind: trace.KindHostDelay, Dur: 3 * time.Microsecond})
		w.Append(trace.Op{Kind: trace.KindKernel, Name: "gemm", Stream: 1})
		w.Append(trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 9, EventVer: 1})
		w.Append(trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 9, EventVer: 1})
		w.Append(trace.Op{Kind: trace.KindCollective, Stream: 2, Coll: &trace.Collective{
			Op: "ncclAllReduce", CommID: 7, Seq: 0, NRanks: 2, Rank: rank, Peer: -1, Bytes: 1 << 20,
		}})
		w.Append(trace.Op{Kind: trace.KindMemcpy, MemKind: "DtoH", Stream: 1, Bytes: 4096})
		w.Append(trace.Op{Kind: trace.KindDeviceSync})
		return w
	}
	job, err := trace.NewJob([]*trace.Worker{mkWorker(0), mkWorker(1)})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// annotate writes the same synthetic durations either into a clone's
// ops or into an overlay over the original.
func annotateFor(job *trace.Job, ann *trace.Annotations) *trace.Job {
	target := job
	if ann == nil {
		target = job.Clone()
	}
	for wi, w := range target.Workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if !op.IsDeviceWork() {
				continue
			}
			d := time.Duration(10+wi*3+i) * time.Microsecond
			if ann != nil {
				ann.Set(wi, op.Seq, d)
			} else {
				op.Dur = d
			}
		}
	}
	return target
}

// TestOverlayRunMatchesCloneRun pins the overlay contract: a run that
// reads durations through Options.Annotations over the pristine job
// is bit-identical to a run over an annotated deep copy — in
// prediction mode and in physical mode (jitter + contention), where
// collective and kernel durations both feed the jitter draws.
func TestOverlayRunMatchesCloneRun(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"prediction", Options{}},
		{"physical", Options{JitterFrac: 0.012, CommContention: 0.06, Seed: 99}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			job := overlayJob(t)

			cloned := annotateFor(job, nil)
			want, err := Run(context.Background(), cloned, mode.opts)
			if err != nil {
				t.Fatal(err)
			}

			ann := trace.NewAnnotations(job)
			if ann == nil {
				t.Fatal("job not positionally indexable")
			}
			annotateFor(job, ann)
			optsAnn := mode.opts
			optsAnn.Annotations = ann
			got, err := Run(context.Background(), job, optsAnn)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("overlay run diverged from clone run:\nclone:   %+v\noverlay: %+v", want, got)
			}
			// The overlay run must not have touched the job.
			for _, w := range job.Workers {
				for i := range w.Ops {
					if w.Ops[i].IsDeviceWork() && w.Ops[i].Dur != 0 {
						t.Fatalf("overlay run mutated the job: worker %d op %d Dur=%v", w.Rank, i, w.Ops[i].Dur)
					}
				}
			}
		})
	}
}
