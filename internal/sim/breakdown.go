package sim

import (
	"time"

	"maya/internal/trace"
)

// StallBreakdown attributes one worker's idle time — everything that
// is neither compute nor communication on its device — to a cause.
// The categories partition idle time; attribution priority when
// causes overlap is collective-wait, then event-wait, then
// host-bound, with the unexplained remainder reported as pipeline
// bubble.
type StallBreakdown struct {
	// EventWait is idle time while a stream was parked on a
	// cudaStreamWaitEvent whose event had not been recorded.
	EventWait time.Duration
	// CollectiveWait is idle time between a stream arriving at a
	// collective and the last participant arriving — waiting for
	// stragglers, the paper's emergent pipeline-coupling cost.
	CollectiveWait time.Duration
	// HostBound is idle time overlapping measured host CPU stretches:
	// the device starved because the host was still dispatching.
	HostBound time.Duration
	// Bubble is the remaining idle time — dependency gaps with no
	// local cause, e.g. a pipeline stage waiting for activations that
	// are not yet in flight.
	Bubble time.Duration
	// Busy is the complement: the union of compute and communication
	// time on the worker's device. Busy + Idle() spans the worker's
	// run.
	Busy time.Duration
}

// Idle sums the attributed idle time.
func (s StallBreakdown) Idle() time.Duration {
	return s.EventWait + s.CollectiveWait + s.HostBound + s.Bubble
}

// Span is the worker's full simulated time, busy plus idle.
func (s StallBreakdown) Span() time.Duration { return s.Busy + s.Idle() }

// Breakdown is an Observer that attributes per-worker stall time. Use
// one per run:
//
//	bd := sim.NewBreakdown()
//	rep, err := sim.RunPooled(ctx, job, sim.Options{Observer: bd})
//	stalls := bd.Result(rep)
//
// Result is terminal — it consumes the collected intervals.
type Breakdown struct {
	busy  [][]interval // compute + comm, per worker
	ev    [][]interval // event-wait stalls
	coll  [][]interval // collective straggler waits
	hostd [][]interval // measured host CPU stretches
}

// NewBreakdown returns an empty breakdown collector.
func NewBreakdown() *Breakdown { return &Breakdown{} }

func grow(g [][]interval, w int) [][]interval {
	for len(g) <= w {
		g = append(g, nil)
	}
	return g
}

func (b *Breakdown) add(g *[][]interval, w int, start, end int64, comm bool) {
	if end <= start {
		return
	}
	*g = grow(*g, w)
	(*g)[w] = append((*g)[w], interval{start: start, end: end, comm: comm})
}

// OpStart implements Observer.
func (b *Breakdown) OpStart(int, int64, *trace.Op, int64, int64) {}

// OpEnd implements Observer.
func (b *Breakdown) OpEnd(w int, _ int64, _ *trace.Op, start, end int64) {
	b.add(&b.busy, w, start, end, false)
}

// CollectiveFired implements Observer.
func (b *Breakdown) CollectiveFired(w int, _ int64, _ *trace.Op, _ trace.CollKey, start, end int64) {
	b.add(&b.busy, w, start, end, true)
}

// StallBegin implements Observer.
func (b *Breakdown) StallBegin(int, int64, StallKind, int64) {}

// StallEnd implements Observer.
func (b *Breakdown) StallEnd(w int, _ int64, kind StallKind, begin, end int64) {
	if kind == StallCollective {
		b.add(&b.coll, w, begin, end, false)
	} else {
		b.add(&b.ev, w, begin, end, false)
	}
}

// HostDelay implements Observer.
func (b *Breakdown) HostDelay(w int, start, end int64) {
	b.add(&b.hostd, w, start, end, false)
}

// Mark implements Observer.
func (b *Breakdown) Mark(int, string, int64) {}

// Result attributes each worker's idle time against the finished
// run's report (which supplies the per-worker span). The slice is
// indexed like the report's per-worker fields.
func (b *Breakdown) Result(r *Report) []StallBreakdown {
	out := make([]StallBreakdown, len(r.HostEnd))
	for w := range out {
		span := int64(r.HostEnd[w])
		var busyU, evU, collU, hostU []interval
		if w < len(b.busy) {
			busyU = unionize(b.busy[w])
		}
		if w < len(b.ev) {
			evU = unionize(b.ev[w])
		}
		if w < len(b.coll) {
			collU = unionize(b.coll[w])
		}
		if w < len(b.hostd) {
			hostU = unionize(b.hostd[w])
		}
		idle := complementWithin(busyU, span)
		cw := overlapLen(idle, collU)
		idle = subtractSets(idle, collU)
		ew := overlapLen(idle, evU)
		idle = subtractSets(idle, evU)
		hb := overlapLen(idle, hostU)
		rest := unionLen(idle) - hb
		out[w] = StallBreakdown{
			EventWait:      time.Duration(ew),
			CollectiveWait: time.Duration(cw),
			HostBound:      time.Duration(hb),
			Bubble:         time.Duration(rest),
			Busy:           time.Duration(unionLen(busyU)),
		}
	}
	return out
}
