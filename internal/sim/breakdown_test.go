package sim

import (
	"context"
	"testing"
	"time"

	"maya/internal/trace"
)

func runWithBreakdown(t *testing.T, j *trace.Job, opts Options) (*Report, []StallBreakdown) {
	t.Helper()
	bd := NewBreakdown()
	opts.Observer = Observers(opts.Observer, bd)
	r, err := Run(context.Background(), j, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r, bd.Result(r)
}

func TestBreakdownCollectiveStragglerWait(t *testing.T) {
	// Rank 0 reaches the all-reduce at 10ms, rank 1 at 30ms: rank 0's
	// 20ms of straggler time must be attributed to CollectiveWait.
	w0 := worker(0, 2,
		kernel(0, 10*time.Millisecond),
		coll(0, 42, 0, 2, 0, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	w1 := worker(1, 2,
		kernel(0, 30*time.Millisecond),
		coll(0, 42, 0, 2, 1, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	_, stalls := runWithBreakdown(t, job(t, w0, w1), Options{})
	if got, want := stalls[0].CollectiveWait, 20*time.Millisecond; got != want {
		t.Fatalf("rank 0 collective wait = %v, want %v", got, want)
	}
	if got := stalls[1].CollectiveWait; got != 0 {
		t.Fatalf("rank 1 (the straggler) collective wait = %v, want 0", got)
	}
	// Busy: rank 0 = 10ms compute + 20ms comm; span 50ms; no other idle.
	if got, want := stalls[0].Busy, 30*time.Millisecond; got != want {
		t.Fatalf("rank 0 busy = %v, want %v", got, want)
	}
	if got, want := stalls[0].Span(), 50*time.Millisecond; got != want {
		t.Fatalf("rank 0 span = %v, want %v", got, want)
	}
	if stalls[0].EventWait != 0 || stalls[0].HostBound != 0 || stalls[0].Bubble != 0 {
		t.Fatalf("rank 0 misattributed: %+v", stalls[0])
	}
}

func TestBreakdownEventWait(t *testing.T) {
	// Stream 2 waits 10ms for stream 1's event before its own kernel.
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 7, EventVer: 1},
		trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 7, EventVer: 1},
		kernel(2, 5*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	_, stalls := runWithBreakdown(t, job(t, w), Options{})
	// Stream 1 is busy 0-10 while stream 2 waits 0-10: the device is
	// not idle, so nothing is attributable — attribution only carves
	// up device-idle time.
	if got := stalls[0].EventWait; got != 0 {
		t.Fatalf("event wait behind busy compute = %v, want 0 (device not idle)", got)
	}
	if got, want := stalls[0].Busy, 15*time.Millisecond; got != want {
		t.Fatalf("busy = %v, want %v", got, want)
	}

	// Same wait with an idle device: the host records the event late
	// (after a host-side delay), so stream 2's stall is real idle time.
	w2 := worker(0, 1,
		trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 9, EventVer: 1},
		hostDelay(10*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 9, EventVer: 1},
		kernel(2, 5*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	_, stalls2 := runWithBreakdown(t, job(t, w2), Options{})
	// The 10ms gap overlaps both the event stall and the host delay;
	// event-wait outranks host-bound in the attribution order.
	if got, want := stalls2[0].EventWait, 10*time.Millisecond; got != want {
		t.Fatalf("event wait = %v, want %v (stalls: %+v)", got, want, stalls2[0])
	}
	if got := stalls2[0].HostBound; got != 0 {
		t.Fatalf("host bound = %v, want 0 (claimed by event wait)", got)
	}
}

func TestBreakdownHostBoundAndBubble(t *testing.T) {
	// 10ms kernel, 15ms host gap, 10ms kernel: 5ms of device idle
	// overlaps the host stretch (10..15) — host-bound. Then a worker
	// whose device idles with no cause at all: bubble.
	w := worker(0, 1,
		kernel(0, 10*time.Millisecond),
		hostDelay(15*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	_, stalls := runWithBreakdown(t, job(t, w), Options{})
	if got, want := stalls[0].HostBound, 5*time.Millisecond; got != want {
		t.Fatalf("host bound = %v, want %v (stalls: %+v)", got, want, stalls[0])
	}
	if got := stalls[0].Bubble; got != 0 {
		t.Fatalf("bubble = %v, want 0", got)
	}
	if got, want := stalls[0].Span(), 25*time.Millisecond; got != want {
		t.Fatalf("span = %v, want %v", got, want)
	}
}

func TestBreakdownPipelineBubbleFromP2P(t *testing.T) {
	// The two-stage toy pipeline of TestPipelineBubbleEmergesFromP2P:
	// stage 1 idles until the first activation arrives. Its wait at
	// the recv is collective-straggler time — the P2P flavor of a
	// pipeline bubble.
	const f = 10 * time.Millisecond
	xfer := time.Millisecond
	send := func(seq int) trace.Op {
		return trace.Op{Kind: trace.KindCollective, Name: "ncclSend", Stream: 0, Dur: xfer,
			Coll: &trace.Collective{Op: "ncclSend", CommID: 3, Seq: seq, NRanks: 2, Rank: 0, Peer: 1, Bytes: 1024}}
	}
	recv := func(seq int) trace.Op {
		return trace.Op{Kind: trace.KindCollective, Name: "ncclRecv", Stream: 0, Dur: xfer,
			Coll: &trace.Collective{Op: "ncclRecv", CommID: 3, Seq: seq, NRanks: 2, Rank: 1, Peer: 0, Bytes: 1024}}
	}
	w0 := worker(0, 2, kernel(0, f), send(0), kernel(0, f), send(1), trace.Op{Kind: trace.KindDeviceSync})
	w1 := worker(1, 2, recv(0), kernel(0, f), recv(1), kernel(0, f), trace.Op{Kind: trace.KindDeviceSync})
	r, stalls := runWithBreakdown(t, job(t, w0, w1), Options{})
	// Stage 1: parked at recv0 during [0,10) — the fill bubble. Both
	// ranks reach recv1 at 21, so it adds no straggler time.
	if got, want := stalls[1].CollectiveWait, 10*time.Millisecond; got != want {
		t.Fatalf("stage-1 fill wait = %v, want %v (stalls: %+v)", got, want, stalls[1])
	}
	if got := stalls[1].Bubble; got != 0 {
		t.Fatalf("stage-1 unattributed bubble = %v, want 0", got)
	}
	// Each worker's attribution spans exactly its own run.
	for w := range stalls {
		if got, want := stalls[w].Span(), r.HostEnd[w]; got != want {
			t.Fatalf("worker %d span = %v, want host end %v", w, got, want)
		}
	}
}

func TestBreakdownThroughPhysicalMode(t *testing.T) {
	// Attribution must hold under jitter + contention too: categories
	// still partition each worker's span.
	r, stalls := runWithBreakdown(t, physicalFixture(t), Options{
		JitterFrac: 0.05, CommContention: 0.5, Seed: 99,
	})
	for w, s := range stalls {
		if got, want := s.Span(), r.HostEnd[w]; got != want {
			t.Fatalf("worker %d span %v != host end %v (%+v)", w, got, want, s)
		}
	}
}
